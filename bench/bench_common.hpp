// Shared infrastructure for the figure-reproduction benchmarks: dataset
// provisioning (generated once, cached on disk) and timing helpers.
//
// Dataset sizes scale to the host; the paper's absolute numbers (90M-177M
// particles per timestep on a Cray XT4) are not reproducible on a
// workstation, but every measured effect is a shape effect (see DESIGN.md).
// Override sizes with:
//   QDV_BENCH_SERIAL_PARTICLES   (default 4,000,000; Figures 11-13)
//   QDV_BENCH_SCALING_PARTICLES  (default 200,000 per timestep; Figures 14-17)
//   QDV_BENCH_SCALING_TIMESTEPS  (default 100)
//   QDV_BENCH_DATA_DIR           (default ./qdv_bench_data)
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "io/dataset.hpp"
#include "sim/wakefield.hpp"

namespace qdv::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

inline std::filesystem::path data_root() {
  if (const char* env = std::getenv("QDV_BENCH_DATA_DIR")) return env;
  return "qdv_bench_data";
}

/// One-timestep dataset for the serial benchmarks (Figures 11-13).
inline std::filesystem::path ensure_serial_dataset() {
  const std::size_t particles = env_size("QDV_BENCH_SERIAL_PARTICLES", 4'000'000);
  const std::filesystem::path dir =
      data_root() / ("serial_" + std::to_string(particles));
  if (!std::filesystem::exists(dir / "qdv_manifest.txt")) {
    std::cerr << "[bench] generating serial dataset (" << particles
              << " particles, 1 timestep) in " << dir << " ...\n";
    const sim::WakefieldConfig cfg = sim::WakefieldConfig::preset_bench(particles, 1);
    io::IndexConfig index_config;
    index_config.nbins = 1024;
    const std::uint64_t bytes = sim::generate_dataset(cfg, dir, index_config);
    std::cerr << "[bench] wrote " << (bytes >> 20) << " MiB\n";
  }
  return dir;
}

/// Multi-timestep dataset for the scalability benchmarks (Figures 14-17).
inline std::filesystem::path ensure_scaling_dataset() {
  const std::size_t particles = env_size("QDV_BENCH_SCALING_PARTICLES", 200'000);
  const std::size_t timesteps = env_size("QDV_BENCH_SCALING_TIMESTEPS", 100);
  const std::filesystem::path dir =
      data_root() /
      ("scaling_" + std::to_string(particles) + "x" + std::to_string(timesteps));
  if (!std::filesystem::exists(dir / "qdv_manifest.txt")) {
    std::cerr << "[bench] generating scaling dataset (" << timesteps << " x "
              << particles << " particles) in " << dir << " ...\n";
    const sim::WakefieldConfig cfg =
        sim::WakefieldConfig::preset_bench(particles, timesteps);
    io::IndexConfig index_config;
    index_config.nbins = 1024;
    const std::uint64_t bytes = sim::generate_dataset(cfg, dir, index_config);
    std::cerr << "[bench] wrote " << (bytes >> 20) << " MiB\n";
  }
  return dir;
}

/// Run a ClusterRun-producing callable @p reps times and keep the
/// element-wise minimum task time (and the smallest wall time). Filters the
/// host-environment noise (writeback, reclaim stalls) that would otherwise
/// dominate a makespan, which is a max-statistic.
template <typename Fn>
auto best_cluster_run(Fn&& fn, int reps = 2) {
  auto best = fn();
  for (int r = 1; r < reps; ++r) {
    const auto next = fn();
    for (std::size_t t = 0; t < best.task_seconds.size(); ++t)
      best.task_seconds[t] = std::min(best.task_seconds[t], next.task_seconds[t]);
    best.wall_seconds = std::min(best.wall_seconds, next.wall_seconds);
  }
  return best;
}

/// Best-of-N wall-clock timing of a callable; keeps repeating until the
/// accumulated time passes @p min_total (so sub-millisecond operations are
/// still measured meaningfully) or @p max_reps is reached.
template <typename Fn>
double time_best(Fn&& fn, int max_reps = 5, double min_total = 0.05) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  double total = 0.0;
  for (int rep = 0; rep < max_reps; ++rep) {
    const auto start = clock::now();
    fn();
    const double s = std::chrono::duration<double>(clock::now() - start).count();
    best = std::min(best, s);
    total += s;
    if (total >= min_total && rep >= 1) break;
  }
  return best;
}

}  // namespace qdv::bench
