// Shared infrastructure for the figure-reproduction benchmarks: dataset
// provisioning (generated once, cached on disk) and timing helpers.
//
// Dataset sizes scale to the host; the paper's absolute numbers (90M-177M
// particles per timestep on a Cray XT4) are not reproducible on a
// workstation, but every measured effect is a shape effect (see DESIGN.md).
// Override sizes with:
//   QDV_BENCH_SERIAL_PARTICLES   (default 4,000,000; Figures 11-13)
//   QDV_BENCH_SCALING_PARTICLES  (default 200,000 per timestep; Figures 14-17)
//   QDV_BENCH_SCALING_TIMESTEPS  (default 100)
//   QDV_BENCH_DATA_DIR           (default ./qdv_bench_data)
// Machine-readable results: pass `--json <path>` (or set QDV_BENCH_JSON) to
// any figure benchmark and it writes a JSON array of
//   {"bench": ..., "label": ..., "seconds": ..., <extra metrics>}
// rows next to its human-readable stdout. scripts/run_benchmarks.sh
// assembles the per-bench files into BENCH_kernels.json.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bitmap/index_segments.hpp"
#include "bitmap/kernels.hpp"
#include "io/dataset.hpp"
#include "sim/wakefield.hpp"

namespace qdv::bench {

/// Reconstruction of the pre-kernel ("scalar") two-step range evaluation,
/// used as the old side of the old/new kernel rows: pairwise-tree or_many
/// over the touched bin segments and a per-bit candidate resolve. Segments
/// are decoded at construction so both old and new sides measure warm
/// evaluation (the engine caches decoded segments in its memory budget).
class ScalarTwoStepRef {
 public:
  ScalarTwoStepRef(const io::TimestepTable& table, const std::string& variable,
                   const Interval& iv)
      : values_(table.column(variable)), iv_(iv), nrows_(table.num_rows()) {
    const SegmentedBitmapIndex* idx = table.value_index(variable);
    if (idx == nullptr)
      throw std::runtime_error("ScalarTwoStepRef: no lazy index for " + variable);
    const detail::BinCoverage cov = detail::classify_bins(idx->bins(), iv);
    for (std::ptrdiff_t b = cov.full_lo; b <= cov.full_hi; ++b)
      full_.push_back(idx->decode_segment(static_cast<std::size_t>(b)));
    for (const std::size_t b : cov.partial)
      partial_.push_back(idx->decode_segment(b));
    if (!idx->outside_empty())
      partial_.push_back(idx->decode_segment(idx->outside_segment()));
  }

  BitVector evaluate() const {
    std::vector<const BitVector*> ops;
    ops.reserve(full_.size());
    for (const BitVector& b : full_) ops.push_back(&b);
    BitVector hits = kern::ref::or_many_pairwise(ops, nrows_);
    ops.clear();
    for (const BitVector& b : partial_) ops.push_back(&b);
    const BitVector candidates = kern::ref::or_many_pairwise(ops, nrows_);
    std::vector<std::uint32_t> verified;
    candidates.for_each_set([&](std::uint64_t row) {
      if (iv_.contains(values_[row]))
        verified.push_back(static_cast<std::uint32_t>(row));
    });
    if (verified.empty()) return hits;
    return hits | BitVector::from_positions(verified, nrows_);
  }

 private:
  std::span<const double> values_;
  Interval iv_;
  std::uint64_t nrows_;
  std::vector<BitVector> full_;
  std::vector<BitVector> partial_;
};

/// Pre-kernel conditional 2D histogram gather (the other half of the old
/// path): per-bit for_each_set + per-value Bins::locate over uniform
/// domain bins. Shared by the fig12 and fig14/15 old/new rows.
inline Histogram2D scalar_hist2d(const io::TimestepTable& table,
                                 const std::string& x, const std::string& y,
                                 std::size_t nbins, const BitVector& rows) {
  Histogram2D h;
  const auto [xlo, xhi] = table.domain(x);
  const auto [ylo, yhi] = table.domain(y);
  h.xbins = make_uniform_bins(xlo, xhi > xlo ? xhi : xlo + 1.0, nbins);
  h.ybins = make_uniform_bins(ylo, yhi > ylo ? yhi : ylo + 1.0, nbins);
  h.counts.assign(nbins * nbins, 0);
  const std::span<const double> xs = table.column(x);
  const std::span<const double> ys = table.column(y);
  rows.for_each_set([&](std::uint64_t row) {
    const std::ptrdiff_t bx = h.xbins.locate(xs[row]);
    const std::ptrdiff_t by = h.ybins.locate(ys[row]);
    if (bx >= 0 && by >= 0)
      ++h.counts[static_cast<std::size_t>(bx) * nbins +
                 static_cast<std::size_t>(by)];
  });
  return h;
}

inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

inline std::filesystem::path data_root() {
  if (const char* env = std::getenv("QDV_BENCH_DATA_DIR")) return env;
  return "qdv_bench_data";
}

/// One-timestep dataset for the serial benchmarks (Figures 11-13).
inline std::filesystem::path ensure_serial_dataset() {
  const std::size_t particles = env_size("QDV_BENCH_SERIAL_PARTICLES", 4'000'000);
  const std::filesystem::path dir =
      data_root() / ("serial_" + std::to_string(particles));
  if (!std::filesystem::exists(dir / "qdv_manifest.txt")) {
    std::cerr << "[bench] generating serial dataset (" << particles
              << " particles, 1 timestep) in " << dir << " ...\n";
    const sim::WakefieldConfig cfg = sim::WakefieldConfig::preset_bench(particles, 1);
    io::IndexConfig index_config;
    index_config.nbins = 1024;
    const std::uint64_t bytes = sim::generate_dataset(cfg, dir, index_config);
    std::cerr << "[bench] wrote " << (bytes >> 20) << " MiB\n";
  }
  return dir;
}

/// Multi-timestep dataset for the scalability benchmarks (Figures 14-17).
inline std::filesystem::path ensure_scaling_dataset() {
  const std::size_t particles = env_size("QDV_BENCH_SCALING_PARTICLES", 200'000);
  const std::size_t timesteps = env_size("QDV_BENCH_SCALING_TIMESTEPS", 100);
  const std::filesystem::path dir =
      data_root() /
      ("scaling_" + std::to_string(particles) + "x" + std::to_string(timesteps));
  if (!std::filesystem::exists(dir / "qdv_manifest.txt")) {
    std::cerr << "[bench] generating scaling dataset (" << timesteps << " x "
              << particles << " particles) in " << dir << " ...\n";
    const sim::WakefieldConfig cfg =
        sim::WakefieldConfig::preset_bench(particles, timesteps);
    io::IndexConfig index_config;
    index_config.nbins = 1024;
    const std::uint64_t bytes = sim::generate_dataset(cfg, dir, index_config);
    std::cerr << "[bench] wrote " << (bytes >> 20) << " MiB\n";
  }
  return dir;
}

/// Collects benchmark rows and writes them as a JSON array when a path was
/// given via `--json <path>` on the command line or the QDV_BENCH_JSON
/// environment variable (argv wins). Rows are written on destruction; with
/// no path configured the reporter is inert.
class JsonReporter {
 public:
  JsonReporter(std::string bench, int argc, char** argv)
      : bench_(std::move(bench)) {
    for (int i = 1; i + 1 < argc; ++i)
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
    if (path_.empty())
      if (const char* env = std::getenv("QDV_BENCH_JSON")) path_ = env;
  }

  ~JsonReporter() {
    if (path_.empty()) return;
    std::ofstream out(path_);
    out << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i)
      out << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    out << "]\n";
    if (out)
      std::cerr << "[bench] wrote " << rows_.size() << " JSON rows to "
                << path_ << "\n";
    else
      std::cerr << "[bench] FAILED to write JSON to " << path_ << "\n";
  }

  bool enabled() const { return !path_.empty(); }

  /// One measurement row; @p extra holds additional numeric metrics
  /// (e.g. {"hits", 1e4} or {"speedup_vs_scalar", 2.4}).
  void row(const std::string& label, double seconds,
           std::initializer_list<std::pair<const char*, double>> extra = {}) {
    char buf[64];
    std::string r = "  {\"bench\": \"" + bench_ + "\", \"label\": \"" + label +
                    "\"";
    std::snprintf(buf, sizeof(buf), "%.9g", seconds);
    r += std::string(", \"seconds\": ") + buf;
    for (const auto& [key, value] : extra) {
      std::snprintf(buf, sizeof(buf), "%.9g", value);
      r += std::string(", \"") + key + "\": " + buf;
    }
    r += "}";
    rows_.push_back(std::move(r));
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<std::string> rows_;
};

/// Run a ClusterRun-producing callable @p reps times and keep the
/// element-wise minimum task time (and the smallest wall time). Filters the
/// host-environment noise (writeback, reclaim stalls) that would otherwise
/// dominate a makespan, which is a max-statistic.
template <typename Fn>
auto best_cluster_run(Fn&& fn, int reps = 2) {
  auto best = fn();
  for (int r = 1; r < reps; ++r) {
    const auto next = fn();
    for (std::size_t t = 0; t < best.task_seconds.size(); ++t)
      best.task_seconds[t] = std::min(best.task_seconds[t], next.task_seconds[t]);
    best.wall_seconds = std::min(best.wall_seconds, next.wall_seconds);
  }
  return best;
}

/// Best-of-N wall-clock timing of a callable; keeps repeating until the
/// accumulated time passes @p min_total (so sub-millisecond operations are
/// still measured meaningfully) or @p max_reps is reached.
template <typename Fn>
double time_best(Fn&& fn, int max_reps = 5, double min_total = 0.05) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  double total = 0.0;
  for (int rep = 0; rep < max_reps; ++rep) {
    const auto start = clock::now();
    fn();
    const double s = std::chrono::duration<double>(clock::now() - start).count();
    best = std::min(best, s);
    total += s;
    if (total >= min_total && rep >= 1) break;
  }
  return best;
}

}  // namespace qdv::bench
