// Ablation: bitmap-index binning strategies (google-benchmark).
//
// DESIGN.md calls out the binning choices inherited from FastBit: bin count,
// uniform vs quantile boundaries, and precision binning (which answers
// low-precision range queries from the index alone, with no candidate
// check). This bench measures index build time, range-query time and the
// candidate-check volume across those choices.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bitmap/bitmap_index.hpp"
#include "bitmap/bins.hpp"

namespace {

using namespace qdv;

std::vector<double> make_column(std::size_t n, std::uint64_t seed) {
  std::vector<double> values(n);
  std::uint64_t state = seed;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (double& v : values) {
    // Heavy-tailed mixture resembling the momentum column: mostly small,
    // a few percent spread to large values.
    const double u = static_cast<double>(next() >> 11) * 0x1.0p-53;
    const double t = static_cast<double>(next() >> 11) * 0x1.0p-53;
    v = (u < 0.95) ? t * 2e9 : 2e9 + t * 1.1e11;
  }
  return values;
}

Bins bins_for_strategy(int strategy, std::span<const double> values, std::size_t nbins) {
  switch (strategy) {
    case 0:
      return make_uniform_bins(0.0, 1.15e11, nbins);
    case 1:
      return make_quantile_bins(values, nbins);
    default:
      return make_precision_bins(0.0, 1.15e11, 3, nbins);
  }
}

void BM_IndexBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto nbins = static_cast<std::size_t>(state.range(1));
  const int strategy = static_cast<int>(state.range(2));
  const std::vector<double> values = make_column(n, 11);
  const Bins bins = bins_for_strategy(strategy, values, nbins);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BitmapIndex::build(values, bins));
  }
  state.counters["rows"] = static_cast<double>(n);
  state.counters["bins"] = static_cast<double>(bins.num_bins());
}

void BM_RangeQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto nbins = static_cast<std::size_t>(state.range(1));
  const int strategy = static_cast<int>(state.range(2));
  const std::vector<double> values = make_column(n, 13);
  const BitmapIndex index =
      BitmapIndex::build(values, bins_for_strategy(strategy, values, nbins));
  // Mid-bin threshold: forces a candidate check for non-precision bins.
  const Interval iv = Interval::greater_than(7.05e10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.evaluate(iv, values));
  }
  state.counters["candidates"] =
      static_cast<double>(index.evaluate_approx(iv).candidates.count());
  state.counters["index_mb"] =
      static_cast<double>(index.memory_bytes()) / (1024.0 * 1024.0);
}

void BM_PrecisionBinningAnswersIndexOnly(benchmark::State& state) {
  // Low-precision constant (1-digit: 7e10) against a precision-binned
  // index: the candidate set must be empty, making the query index-only.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> values = make_column(n, 17);
  const BitmapIndex index =
      BitmapIndex::build(values, make_precision_bins(0.0, 1.15e11, 2, 1u << 14));
  const Interval iv = Interval::greater_than(7e10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.evaluate(iv, values));
  }
  state.counters["candidates"] =
      static_cast<double>(index.evaluate_approx(iv).candidates.count());
}

}  // namespace

// strategy: 0 = uniform, 1 = quantile, 2 = precision
BENCHMARK(BM_IndexBuild)
    ->ArgsProduct({{1 << 20}, {64, 1024}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RangeQuery)
    ->ArgsProduct({{1 << 20}, {64, 256, 1024}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PrecisionBinningAnswersIndexOnly)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
