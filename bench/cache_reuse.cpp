// Selection-reuse benchmark for the engine pipeline: the same focus query
// drives a count, the adjacent pair histograms, and a parallel-coordinates
// render — cold (empty cache, every view pays the index evaluation) vs warm
// (the first view fills the cache, the rest hit it). Reported as per-view
// timings, the overall cold/warm speedup, and the engine's hit rate.
//
// This is the workload shape the paper's interactivity claim rests on: one
// selection feeding many linked views.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/selection.hpp"
#include "core/session.hpp"

int main() {
  using namespace qdv;

  const auto dir = bench::ensure_serial_dataset();
  core::ExplorationSession session = core::ExplorationSession::open(dir);
  core::Engine& engine = session.engine();
  const std::size_t t = 0;
  const std::vector<std::string> axes = {"x", "y", "px", "py"};
  const std::string focus = "px > 1e10 && px < 9e10 && y > 0";
  session.set_focus(focus);

  std::printf("# Selection reuse: count + pair histograms + PC render of one focus\n");
  std::printf("# dataset: %llu particles; focus: %s\n",
              static_cast<unsigned long long>(engine.dataset().table(t).num_rows()),
              focus.c_str());
  std::printf("%s\n", session.focus().explain().c_str());

  const auto run_views = [&](double* view_seconds, bool clear_before_each) {
    const auto timed = [&](std::size_t i, auto&& fn) {
      if (clear_before_each) engine.clear_cache();
      using clock = std::chrono::steady_clock;
      const auto start = clock::now();
      fn();
      view_seconds[i] = std::chrono::duration<double>(clock::now() - start).count();
    };
    timed(0, [&] { (void)session.focus_count(t); });
    timed(1, [&] {
      (void)session.pair_histograms(t, axes, 256, session.focus());
    });
    timed(2, [&] { (void)session.render_parallel_coordinates(t, axes); });
    return view_seconds[0] + view_seconds[1] + view_seconds[2];
  };

  // Pre-warm the column cache: the effect measured here is query-evaluation
  // reuse, not disk I/O.
  for (const std::string& name : axes) (void)engine.dataset().table(t).column(name);

  // Cold: the cache is emptied before every view, so each one re-evaluates
  // the focus — the pre-redesign behavior, where every
  // ExplorationSession call re-ran TimestepTable::query().
  double cold_views[3] = {0, 0, 0};
  const double cold = run_views(cold_views, /*clear_before_each=*/true);
  const core::EngineStats cold_stats = engine.stats();

  // Warm: one shared cache across the views (the last cold view already
  // filled it), so every evaluation of the same focus is served from it.
  double warm_views[3] = {0, 0, 0};
  const double warm = run_views(warm_views, /*clear_before_each=*/false);
  const core::EngineStats warm_stats = engine.stats();

  const std::uint64_t warm_hits = warm_stats.hits - cold_stats.hits;
  const std::uint64_t warm_misses = warm_stats.misses - cold_stats.misses;

  std::printf("\n%12s %14s %14s\n", "view", "cold(s)", "warm(s)");
  const char* names[3] = {"count", "pair-hists", "pc-render"};
  for (int i = 0; i < 3; ++i)
    std::printf("%12s %14.4f %14.4f\n", names[i], cold_views[i], warm_views[i]);
  std::printf("%12s %14.4f %14.4f\n", "total", cold, warm);
  std::printf("\n# cold pass: %llu misses, %llu hits\n",
              static_cast<unsigned long long>(cold_stats.misses),
              static_cast<unsigned long long>(cold_stats.hits));
  std::printf("# warm pass: %llu misses, %llu hits (hit rate %.0f%%)\n",
              static_cast<unsigned long long>(warm_misses),
              static_cast<unsigned long long>(warm_hits),
              warm_hits + warm_misses
                  ? 100.0 * static_cast<double>(warm_hits) /
                        static_cast<double>(warm_hits + warm_misses)
                  : 0.0);
  std::printf("# warm speedup: %.2fx\n", warm > 0.0 ? cold / warm : 0.0);
  return 0;
}
