// Figure 12 of the paper: serial computation of conditional 2D histograms
// (1024x1024 bins) as a function of the number of hits, swept via px
// thresholds of the form `px > t`.
//
// Expected shape (paper, Section V-A2): FastBit is dramatically faster for
// selective conditions (its cost follows the hit count through the
// index-evaluate + gather two-step), while the Custom sequential scan is
// roughly flat in the hit count; the curves cross when the selection
// approaches the full record count, because FastBit's intermediate hit array
// becomes as expensive as the scan itself.
//
// The Scalar-Ref column is the pre-kernel gather (per-bit for_each_set +
// per-value Bins::locate) over the same condition bitvector: the
// FastBit-Regular / Scalar-Ref ratio is the dense-block kernel speedup,
// recorded as old/new rows in the JSON output (--json / QDV_BENCH_JSON).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/custom_scan.hpp"
#include "io/timestep_table.hpp"

int main(int argc, char** argv) {
  using namespace qdv;
  const auto dir = bench::ensure_serial_dataset();
  const io::Dataset dataset = io::Dataset::open(dir);
  const io::TimestepTable& table = dataset.table(0);
  const std::uint64_t rows = table.num_rows();
  (void)table.column("x");
  (void)table.column("px");
  bench::JsonReporter json("fig12_conditional_hist", argc, argv);

  // Thresholds targeting hit counts 10, 100, ..., ~rows/2: the k-th largest
  // px value, found via nth_element on a copy of the column.
  std::vector<std::uint64_t> targets;
  for (std::uint64_t k = 10; k < rows / 2; k *= 10) targets.push_back(k);
  targets.push_back(rows / 2);

  const auto px = table.column("px");
  std::vector<double> thresholds;
  {
    std::vector<double> copy(px.begin(), px.end());
    for (const std::uint64_t k : targets) {
      auto nth = copy.begin() + static_cast<std::ptrdiff_t>(k);
      std::nth_element(copy.begin(), nth, copy.end(), std::greater<double>());
      thresholds.push_back(*nth);
    }
  }

  const HistogramEngine fastbit = table.engine(EvalMode::kAuto);
  const core::CustomScan custom(table);
  constexpr std::size_t kBins = 1024;

  std::printf("# Figure 12: serial conditional 2D histograms (x, px), 1024x1024 bins\n");
  std::printf("# dataset: %llu particles; condition: px > t\n",
              static_cast<unsigned long long>(rows));
  std::printf("%14s %20s %20s %20s %20s\n", "hits", "FastBit-Regular(s)",
              "FastBit-Adaptive(s)", "Custom-Regular(s)", "Scalar-Ref(s)");

  double small_fb = 0.0, small_custom = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const QueryPtr cond = Query::compare("px", CompareOp::kGt, thresholds[i]);
    const BitVector selected = table.query(*cond);
    const std::uint64_t hits = selected.count();
    const double t_regular = bench::time_best(
        [&] { (void)fastbit.histogram2d("x", "px", kBins, kBins, cond.get()); });
    const double t_adaptive = bench::time_best([&] {
      (void)fastbit.histogram2d("x", "px", kBins, kBins, cond.get(),
                                BinningMode::kAdaptive);
    });
    const double t_custom = bench::time_best(
        [&] { (void)custom.histogram2d("x", "px", kBins, kBins, cond.get()); });
    // Old/new kernel rows. Full path: pre-PR two-step (pairwise OR tree +
    // per-bit resolve, reconstructed by ScalarTwoStepRef) + scalar gather,
    // against the production histogram2d(condition) call. Gather-only:
    // identical precomputed condition bitvector on both sides.
    const bench::ScalarTwoStepRef scalar_ref(table, "px",
                                             Interval::greater_than(thresholds[i]));
    const double t_full_old = bench::time_best([&] {
      (void)bench::scalar_hist2d(table, "x", "px", kBins, scalar_ref.evaluate());
    });
    const double t_gather_old = bench::time_best(
        [&] { (void)bench::scalar_hist2d(table, "x", "px", kBins, selected); });
    const double t_gather_new = bench::time_best(
        [&] { (void)fastbit.histogram2d("x", "px", kBins, kBins, selected); });
    std::printf("%14llu %20.4f %20.4f %20.4f %20.4f\n",
                static_cast<unsigned long long>(hits), t_regular, t_adaptive,
                t_custom, t_full_old);
    const double h = static_cast<double>(hits);
    json.row("hist2d_cond/fastbit_adaptive", t_adaptive, {{"hits", h}});
    json.row("hist2d_cond/custom_scan", t_custom, {{"hits", h}});
    json.row("hist2d_cond/full_scalar_old", t_full_old, {{"hits", h}});
    json.row("hist2d_cond/full_kernel_new", t_regular,
             {{"hits", h},
              {"speedup_vs_scalar", t_regular > 0.0 ? t_full_old / t_regular : 0.0}});
    json.row("hist2d_cond/gather_scalar_old", t_gather_old, {{"hits", h}});
    json.row("hist2d_cond/gather_kernel_new", t_gather_new,
             {{"hits", h},
              {"speedup_vs_scalar",
               t_gather_new > 0.0 ? t_gather_old / t_gather_new : 0.0}});
    if (i == 0) {
      small_fb = t_regular;
      small_custom = t_custom;
    }
  }

  std::printf("\n# shape checks (paper Section V-A2):\n");
  std::printf("#   selective queries: FastBit %.1fx faster than Custom at ~10 hits\n",
              small_custom / small_fb);
  std::printf("#   expect FastBit cost to grow with hits and approach/exceed the\n");
  std::printf("#   flat Custom scan as hits -> O(records)\n");
  return 0;
}
