// Figures 16 and 17 of the paper: parallel particle tracking over all
// timesteps, and the resulting strong-scaling speedups.
//
// The paper selects ~500 particles with `px > 1e11` and traces them across
// 100 timesteps (1.5TB): FastBit needed 0.15s on 100 nodes, while the
// legacy scripts took hours. We select a ~500-particle search set with the
// same kind of momentum threshold and run the id query against every
// timestep with the id index (FastBit) and the O(N log S) sequential scan
// (Custom), reporting modeled makespans for 1..100 virtual nodes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/custom_scan.hpp"
#include "parallel/par_ops.hpp"

int main() {
  using namespace qdv;

  const auto dir = bench::ensure_scaling_dataset();
  const io::Dataset dataset = io::Dataset::open(dir);
  // One host thread: per-task timings free of host-core contention (the
  // makespan model composes them into virtual-node times; DESIGN.md S6).
  par::VirtualCluster cluster(1);
  const std::vector<std::size_t> nodes = {1, 2, 5, 10, 20, 50, 100};

  // Build the ~500-particle search set: the 500 highest-px particles of the
  // last timestep (equivalent to the paper's px > 1e11 threshold query).
  const std::size_t t_sel = dataset.num_timesteps() - 1;
  std::vector<std::uint64_t> ids;
  {
    const io::TimestepTable& table = dataset.table(t_sel);
    const auto px = table.column("px");
    const auto id_column = table.id_column("id");
    std::vector<std::uint32_t> order(px.size());
    for (std::uint32_t r = 0; r < px.size(); ++r) order[r] = r;
    const std::size_t want = std::min<std::size_t>(500, order.size());
    std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(want),
                     order.end(),
                     [&](std::uint32_t a, std::uint32_t b) { return px[a] > px[b]; });
    order.resize(want);
    for (const std::uint32_t r : order) ids.push_back(id_column[r]);
    dataset.drop_cache();
  }

  std::printf("# Figures 16/17: parallel particle tracking\n");
  std::printf("# dataset: %zu timesteps; search set: %zu ids (highest-px particles)\n",
              dataset.num_timesteps(), ids.size());
  std::printf("# time(P) = modeled makespan under strided assignment (DESIGN.md S6)\n\n");

  // Warm the page cache once, then take element-wise best-of-2 task times
  // (the makespan is a max-statistic; see bench_common.hpp).
  cluster.run(dataset.num_timesteps(), [&](std::size_t t) {
    (void)dataset.open_table(t)->id_column("id");
  });
  std::uint64_t total_hits = 0;
  const par::ClusterRun fast_run = bench::best_cluster_run([&] {
    auto result = par::parallel_track(dataset, ids, EvalMode::kAuto, cluster);
    total_hits = result.total_hits;
    return result.run;
  });

  // Custom baseline: O(N log S) scan per timestep.
  const par::ClusterRun custom_run = bench::best_cluster_run([&] {
    return cluster.run(dataset.num_timesteps(), [&](std::size_t t) {
      const auto table = dataset.open_table(t);
      (void)core::CustomScan(*table).find_ids(ids);
    });
  });

  std::printf("# Figure 16: timings (seconds)\n%-10s %14s %14s %10s\n", "nodes",
              "FastBit(s)", "Custom(s)", "ratio");
  for (const std::size_t p : nodes) {
    const double tf = fast_run.makespan(p);
    const double tc = custom_run.makespan(p);
    std::printf("%-10zu %14.5f %14.5f %9.1fx\n", p, tf, tc, tc / tf);
  }

  std::printf("\n# Figure 17: speedup relative to 1 node (ideal = node count)\n");
  std::printf("%-10s %14s %14s\n", "nodes", "FastBit", "Custom");
  for (const std::size_t p : nodes)
    std::printf("%-10zu %14.2f %14.2f\n", p, fast_run.speedup(p),
                custom_run.speedup(p));

  std::printf("\n# shape checks (paper Section V-C):\n");
  std::printf("#   tracked %llu total appearances of %zu particles across %zu steps\n",
              static_cast<unsigned long long>(total_hits), ids.size(),
              dataset.num_timesteps());
  std::printf("#   FastBit vs Custom at 1 node: %.1fx faster\n",
              custom_run.makespan(1) / fast_run.makespan(1));
  std::printf("#   FastBit time at 100 nodes: %.4fs (paper: 0.15s for 500 ids on 1.5TB)\n",
              fast_run.makespan(100));
  return 0;
}
