// Old-vs-new rows for every execution kernel of DESIGN.md Section 10, over
// synthetic data (no dataset on disk needed): the scalar pre-PR paths
// (per-bit for_each_set + per-value Bins::locate + pairwise or_many +
// thread spawn/join per batch) against the block kernels (dense-block
// cursor + Bins::Locator + k-way OR + persistent pool). Every comparison
// asserts the two paths produce identical results and exits nonzero on any
// mismatch, so this doubles as the CI benchmark smoke check.
//
// Sizes scale with QDV_BENCH_KERNEL_ROWS (default 4,000,000; CI uses a tiny
// value). Emits JSON rows via --json <path> / QDV_BENCH_JSON.
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bitmap/bins.hpp"
#include "bitmap/kernels.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace qdv;

int mismatches = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "[bench_kernels] MISMATCH: %s\n", what);
    ++mismatches;
  }
}

std::uint64_t g_state = 0x9E3779B97F4A7C15ull;
std::uint64_t next_rand() {
  g_state ^= g_state << 13;
  g_state ^= g_state >> 7;
  g_state ^= g_state << 17;
  return g_state;
}

BitVector make_selected(std::uint64_t nbits, double selectivity) {
  BitVector v;
  const auto threshold =
      static_cast<std::uint64_t>(selectivity * 18446744073709551615.0);
  for (std::uint64_t i = 0; i < nbits; ++i) v.append_bit(next_rand() <= threshold);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rows = bench::env_size("QDV_BENCH_KERNEL_ROWS", 4'000'000);
  bench::JsonReporter json("kernels", argc, argv);

  std::vector<double> xs(rows);
  std::vector<double> ys(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    xs[i] = static_cast<double>(next_rand() % 1000003) / 1000003.0;
    ys[i] = static_cast<double>(next_rand() % 1000003) / 1000003.0;
  }

  std::printf("# kernel microbenchmarks: %zu rows\n", rows);
  std::printf("%-44s %14s %14s %10s\n", "kernel", "scalar(s)", "block(s)",
              "speedup");
  const auto report = [&](const std::string& label, double scalar,
                          double block) {
    std::printf("%-44s %14.5f %14.5f %9.2fx\n", label.c_str(), scalar, block,
                block > 0.0 ? scalar / block : 0.0);
    json.row(label + "/scalar", scalar);
    json.row(label + "/kernel", block,
             {{"speedup_vs_scalar", block > 0.0 ? scalar / block : 0.0}});
  };

  // ---- conditional 2D histogram gather (the fig12 inner loop) ----
  const Bins xbins = make_uniform_bins(0.0, 1.0, 1024);
  const Bins ybins = make_uniform_bins(0.0, 1.0, 1024);
  for (const double sel : {1e-4, 1e-2, 0.1, 0.5}) {
    const BitVector selected = make_selected(rows, sel);
    std::vector<std::uint64_t> counts_scalar(1024 * 1024);
    std::vector<std::uint64_t> counts_block(1024 * 1024);
    const double t_scalar = bench::time_best([&] {
      std::fill(counts_scalar.begin(), counts_scalar.end(), 0);
      selected.for_each_set([&](std::uint64_t row) {
        const std::ptrdiff_t bx = xbins.locate(xs[row]);
        const std::ptrdiff_t by = ybins.locate(ys[row]);
        if (bx >= 0 && by >= 0)
          ++counts_scalar[static_cast<std::size_t>(bx) * 1024 +
                          static_cast<std::size_t>(by)];
      });
    });
    const Bins::Locator xloc = xbins.locator();
    const Bins::Locator yloc = ybins.locator();
    const double t_block = bench::time_best([&] {
      std::fill(counts_block.begin(), counts_block.end(), 0);
      kern::gather_hist2d(selected, 0, rows, xs.data(), ys.data(), xloc, yloc,
                          1024, counts_block.data());
    });
    expect(counts_scalar == counts_block, "hist2d gather counts");
    char label[64];
    std::snprintf(label, sizeof(label), "hist2d_gather/sel=%g", sel);
    report(label, t_scalar, t_block);
  }

  // ---- unconditional 1D histogram (branchless binning + sharded tally) ----
  {
    const Bins bins = make_uniform_bins(0.0, 1.0, 1024);
    std::vector<std::uint64_t> counts_scalar(1024);
    std::vector<std::uint64_t> counts_block(1024);
    const double t_scalar = bench::time_best([&] {
      std::fill(counts_scalar.begin(), counts_scalar.end(), 0);
      for (std::size_t i = 0; i < rows; ++i) {
        const std::ptrdiff_t b = bins.locate(xs[i]);
        if (b >= 0) ++counts_scalar[static_cast<std::size_t>(b)];
      }
    });
    const Bins::Locator locate = bins.locator();
    const double t_block = bench::time_best([&] {
      std::fill(counts_block.begin(), counts_block.end(), 0);
      kern::sharded_tally(
          rows, counts_block.size(), counts_block.data(),
          [&](std::uint64_t begin, std::uint64_t end, std::uint64_t* counts) {
            for (std::uint64_t i = begin; i < end; ++i) {
              const std::ptrdiff_t b = locate(xs[i]);
              if (b >= 0) ++counts[static_cast<std::size_t>(b)];
            }
          });
    });
    expect(counts_scalar == counts_block, "hist1d counts");
    report("hist1d_uncond/1024bins", t_scalar, t_block);
  }

  // ---- to_positions (two-step gather's position materialization) ----
  for (const double sel : {1e-3, 0.1, 0.9}) {
    const BitVector selected = make_selected(rows, sel);
    std::vector<std::uint32_t> pos_scalar;
    const double t_scalar = bench::time_best([&] {
      pos_scalar.clear();
      selected.for_each_set([&](std::uint64_t p) {
        pos_scalar.push_back(static_cast<std::uint32_t>(p));
      });
    });
    std::vector<std::uint32_t> pos_block;
    const double t_block = bench::time_best(
        [&] { kern::to_positions_blocked(selected, pos_block); });
    expect(pos_scalar == pos_block, "to_positions");
    char label[64];
    std::snprintf(label, sizeof(label), "to_positions/sel=%g", sel);
    report(label, t_scalar, t_block);
  }

  // ---- k-way OR (the multi-bin range probe shape) ----
  for (const std::size_t fanin : {8u, 64u, 256u}) {
    std::vector<BitVector> bins_bitmaps;
    bins_bitmaps.reserve(fanin);
    // Disjoint equality-encoded bin bitmaps, ~rows/fanin bits each.
    for (std::size_t b = 0; b < fanin; ++b)
      bins_bitmaps.push_back(make_selected(rows, 1.0 / static_cast<double>(fanin)));
    std::vector<const BitVector*> ops;
    for (const BitVector& b : bins_bitmaps) ops.push_back(&b);
    BitVector out_pair, out_kway;
    const double t_scalar = bench::time_best(
        [&] { out_pair = kern::ref::or_many_pairwise(ops, rows); });
    const double t_block =
        bench::time_best([&] { out_kway = kern::or_many_kway(ops, rows); });
    expect(out_pair == out_kway, "or_many result");
    char label[64];
    std::snprintf(label, sizeof(label), "or_many/fanin=%zu", fanin);
    report(label, t_scalar, t_block);
  }

  // ---- batch dispatch: thread spawn/join per batch vs persistent pool ----
  {
    constexpr int kBatches = 200;
    constexpr std::size_t kTasks = 16;
    const std::size_t nthreads = 4;
    std::atomic<std::uint64_t> sink{0};
    const auto work = [&](std::size_t t) {
      sink.fetch_add(t + 1, std::memory_order_relaxed);
    };
    const double t_scalar = bench::time_best([&] {
      for (int b = 0; b < kBatches; ++b) {
        std::atomic<std::size_t> nextt{0};
        std::vector<std::thread> workers;
        for (std::size_t w = 0; w < nthreads; ++w)
          workers.emplace_back([&] {
            for (;;) {
              const std::size_t t = nextt.fetch_add(1);
              if (t >= kTasks) return;
              work(t);
            }
          });
        for (std::thread& w : workers) w.join();
      }
    });
    par::ThreadPool pool(nthreads);
    const double t_block = bench::time_best([&] {
      for (int b = 0; b < kBatches; ++b) pool.parallel_for(kTasks, nthreads, work);
    });
    expect(sink.load() > 0, "dispatch sink");
    report("batch_dispatch/200x16tasks", t_scalar, t_block);
  }

  if (mismatches > 0) {
    std::fprintf(stderr, "[bench_kernels] %d kernel/reference mismatches\n",
                 mismatches);
    return 1;
  }
  std::printf("# all kernel results match their scalar references\n");
  return 0;
}
