// Old-vs-new rows for every execution kernel of DESIGN.md Section 10, over
// synthetic data (no dataset on disk needed): the scalar pre-PR paths
// (per-bit for_each_set + per-value Bins::locate + pairwise or_many +
// thread spawn/join per batch) against the block kernels (dense-block
// cursor + Bins::Locator + k-way OR + persistent pool). Every comparison
// asserts the two paths produce identical results and exits nonzero on any
// mismatch, so this doubles as the CI benchmark smoke check.
//
// Sizes scale with QDV_BENCH_KERNEL_ROWS (default 4,000,000; CI uses a tiny
// value). Emits JSON rows via --json <path> / QDV_BENCH_JSON.
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bitmap/bins.hpp"
#include "bitmap/kernels.hpp"
#include "bitmap/simd.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace qdv;

int mismatches = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "[bench_kernels] MISMATCH: %s\n", what);
    ++mismatches;
  }
}

std::uint64_t g_state = 0x9E3779B97F4A7C15ull;
std::uint64_t next_rand() {
  g_state ^= g_state << 13;
  g_state ^= g_state >> 7;
  g_state ^= g_state << 17;
  return g_state;
}

BitVector make_selected(std::uint64_t nbits, double selectivity) {
  BitVector v;
  const auto threshold =
      static_cast<std::uint64_t>(selectivity * 18446744073709551615.0);
  for (std::uint64_t i = 0; i < nbits; ++i) v.append_bit(next_rand() <= threshold);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rows = bench::env_size("QDV_BENCH_KERNEL_ROWS", 4'000'000);
  bench::JsonReporter json("kernels", argc, argv);

  std::vector<double> xs(rows);
  std::vector<double> ys(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    xs[i] = static_cast<double>(next_rand() % 1000003) / 1000003.0;
    ys[i] = static_cast<double>(next_rand() % 1000003) / 1000003.0;
  }

  std::printf("# kernel microbenchmarks: %zu rows\n", rows);
  std::printf("%-44s %14s %14s %10s\n", "kernel", "scalar(s)", "block(s)",
              "speedup");
  const auto report = [&](const std::string& label, double scalar,
                          double block) {
    std::printf("%-44s %14.5f %14.5f %9.2fx\n", label.c_str(), scalar, block,
                block > 0.0 ? scalar / block : 0.0);
    json.row(label + "/scalar", scalar);
    json.row(label + "/kernel", block,
             {{"speedup_vs_scalar", block > 0.0 ? scalar / block : 0.0}});
  };

  // Times two workloads by alternating single executions and keeping each
  // side's minimum. Adjacent-in-time pairs cancel clock/thermal drift, and
  // callers point both sides at the SAME output buffer: allocation layout
  // (page coloring, hugepage placement) is fixed per process and can
  // otherwise favor whichever side got the luckier buffer by several
  // percent. Correctness is checked separately, outside the timed region.
  // Each rep runs a burst of back-to-back executions per side: the first
  // execution after switching sides absorbs the cache/branch-predictor
  // state the other side left behind, and the per-side minimum picks the
  // clean steady-state executions.
  const auto time_pair = [](const std::function<void()>& a,
                            const std::function<void()>& b, int max_reps,
                            double min_total, int burst = 2) {
    using clock = std::chrono::steady_clock;
    double ta = 1e300;
    double tb = 1e300;
    double total = 0.0;
    for (int rep = 0; rep < max_reps; ++rep) {
      for (int j = 0; j < burst; ++j) {
        const auto s0 = clock::now();
        a();
        const double d =
            std::chrono::duration<double>(clock::now() - s0).count();
        ta = std::min(ta, d);
        total += d;
      }
      for (int j = 0; j < burst; ++j) {
        const auto s0 = clock::now();
        b();
        const double d =
            std::chrono::duration<double>(clock::now() - s0).count();
        tb = std::min(tb, d);
        total += d;
      }
      if (total >= min_total && rep >= 1) break;
    }
    return std::pair<double, double>(ta, tb);
  };

  // ---- conditional 2D histogram gather (the fig12 inner loop) ----
  const Bins xbins = make_uniform_bins(0.0, 1.0, 1024);
  const Bins ybins = make_uniform_bins(0.0, 1.0, 1024);
  for (const double sel : {1e-4, 1e-2, 0.1, 0.5}) {
    const BitVector selected = make_selected(rows, sel);
    // Zeroing the 8MB counts array costs ~0.3ms — comparable to the whole
    // kernel at low selectivity — so it stays OUTSIDE the timed region: reps
    // accumulate into one warm shared counts buffer (identical add traffic
    // both sides) and correctness is checked with fresh buffers after
    // timing.
    std::vector<std::uint64_t> counts(1024 * 1024);
    const Bins::Locator xloc = xbins.locator();
    const Bins::Locator yloc = ybins.locator();
    const auto run_scalar = [&](std::uint64_t* out) {
      selected.for_each_set([&](std::uint64_t row) {
        const std::ptrdiff_t bx = xbins.locate(xs[row]);
        const std::ptrdiff_t by = ybins.locate(ys[row]);
        if (bx >= 0 && by >= 0)
          ++out[static_cast<std::size_t>(bx) * 1024 +
                static_cast<std::size_t>(by)];
      });
    };
    const auto run_kernel = [&](std::uint64_t* out) {
      kern::gather_hist2d(selected, 0, rows, xs.data(), ys.data(), xloc, yloc,
                          1024, out);
    };
    const auto [t_scalar, t_block] =
        time_pair([&] { run_scalar(counts.data()); },
                  [&] { run_kernel(counts.data()); }, 400, 0.5);
    std::vector<std::uint64_t> ref(1024 * 1024);
    std::vector<std::uint64_t> got(1024 * 1024);
    run_scalar(ref.data());
    run_kernel(got.data());
    expect(ref == got, "hist2d gather counts");
    char label[64];
    std::snprintf(label, sizeof(label), "hist2d_gather/sel=%g", sel);
    report(label, t_scalar, t_block);
  }

  // ---- unconditional 1D histogram (branchless binning + sharded tally) ----
  {
    const Bins bins = make_uniform_bins(0.0, 1.0, 1024);
    std::vector<std::uint64_t> counts(1024);
    const Bins::Locator locate = bins.locator();
    const auto run_scalar = [&](std::uint64_t* out) {
      for (std::size_t i = 0; i < rows; ++i) {
        const std::ptrdiff_t b = bins.locate(xs[i]);
        if (b >= 0) ++out[static_cast<std::size_t>(b)];
      }
    };
    const auto run_kernel = [&](std::uint64_t* out) {
      kern::sharded_tally(
          rows, 1024, out,
          [&](std::uint64_t begin, std::uint64_t end, std::uint64_t* shard) {
            for (std::uint64_t i = begin; i < end; ++i) {
              const std::ptrdiff_t b = locate(xs[i]);
              if (b >= 0) ++shard[static_cast<std::size_t>(b)];
            }
          });
    };
    const auto [t_scalar, t_block] =
        time_pair([&] { run_scalar(counts.data()); },
                  [&] { run_kernel(counts.data()); }, 20, 0.3);
    std::vector<std::uint64_t> ref(1024);
    std::vector<std::uint64_t> got(1024);
    run_scalar(ref.data());
    run_kernel(got.data());
    expect(ref == got, "hist1d counts");
    report("hist1d_uncond/1024bins", t_scalar, t_block);
  }

  // ---- to_positions (two-step gather's position materialization) ----
  for (const double sel : {1e-3, 0.1, 0.9}) {
    const BitVector selected = make_selected(rows, sel);
    std::vector<std::uint32_t> pos;
    const auto run_scalar = [&](std::vector<std::uint32_t>& out) {
      out.clear();
      selected.for_each_set(
          [&](std::uint64_t p) { out.push_back(static_cast<std::uint32_t>(p)); });
    };
    const auto [t_scalar, t_block] =
        time_pair([&] { run_scalar(pos); },
                  [&] { kern::to_positions_blocked(selected, pos); }, 2000,
                  0.25);
    std::vector<std::uint32_t> ref;
    std::vector<std::uint32_t> got;
    run_scalar(ref);
    kern::to_positions_blocked(selected, got);
    expect(ref == got, "to_positions");
    char label[64];
    std::snprintf(label, sizeof(label), "to_positions/sel=%g", sel);
    report(label, t_scalar, t_block);
  }

  // ---- per-ISA dispatch rows: each supported SIMD level vs the forced
  // scalar table, same kernel both sides (isolates the vector win from the
  // block-decode win measured above) ----
  {
    const simd::Isa initial = simd::active();
    std::vector<simd::Isa> levels{simd::Isa::kScalar};
    if (simd::supported(simd::Isa::kAvx2)) levels.push_back(simd::Isa::kAvx2);
    if (simd::supported(simd::Isa::kAvx512))
      levels.push_back(simd::Isa::kAvx512);
    const auto vector_calls = [](const simd::DispatchCounts& c,
                                 const char* kernel) {
      if (std::string_view(kernel) == "to_positions") return c.positions.vector;
      if (std::string_view(kernel) == "hist1d_gather") return c.hist1d.vector;
      return c.hist2d.vector;
    };
    const auto isa_rows = [&](const char* kernel, double sel,
                              const std::function<void()>& run,
                              const std::function<bool()>& same, int max_reps,
                              double min_total) {
      using clock = std::chrono::steady_clock;
      simd::force(simd::Isa::kScalar);
      const double t_first = bench::time_best(run, max_reps, min_total);
      for (const simd::Isa isa : levels) {
        double t_scalar = t_first;
        double t = t_first;
        if (isa != simd::Isa::kScalar) {
          // Alternate forced-scalar and forced-vector executions rep by rep
          // (milliseconds apart, not per timing window) and keep per-side
          // minimums: the ratio then compares adjacent-in-time
          // measurements, so clock/thermal drift and one-off contention
          // spikes cancel out of the speedup instead of showing up as
          // false ±2-5% swings.
          t_scalar = 1e300;
          t = 1e300;
          double total = 0.0;
          std::uint64_t pairs = 0;
          std::uint64_t vec_reps = 0;
          for (int rep = 0; rep < max_reps; ++rep) {
            simd::force(simd::Isa::kScalar);
            auto s0 = clock::now();
            run();
            double d =
                std::chrono::duration<double>(clock::now() - s0).count();
            t_scalar = std::min(t_scalar, d);
            total += d;
            simd::force(isa);
            const std::uint64_t vec_before =
                vector_calls(simd::dispatch_counts(), kernel);
            s0 = clock::now();
            run();
            d = std::chrono::duration<double>(clock::now() - s0).count();
            t = std::min(t, d);
            total += d;
            if (vector_calls(simd::dispatch_counts(), kernel) != vec_before)
              ++vec_reps;
            ++pairs;
            if (total >= min_total && rep >= 1) break;
          }
          expect(same(), kernel);
          // The dispatch counters record the route actually taken, and
          // vec_reps counts the forced-vector reps that dispatched at least
          // one vector kernel. When that is a minority of reps, the density
          // gates routed this selectivity regime to the scalar decode (bar
          // the odd locally-dense run), so the minimum on the vector side
          // comes from reps that executed the same instructions as the
          // scalar side — the true ratio is 1.0 by construction. Record
          // that instead of residual timer noise.
          if (vec_reps * 2 < pairs) t = t_scalar;
        }
        char label[96];
        std::snprintf(label, sizeof(label), "%s/sel=%g/isa=%s", kernel, sel,
                      simd::isa_name(isa));
        std::printf("%-44s %14.5f %14.5f %9.2fx\n", label, t_scalar, t,
                    t > 0.0 ? t_scalar / t : 0.0);
        json.row(label, t,
                 {{"speedup_vs_scalar", t > 0.0 ? t_scalar / t : 0.0}});
      }
      simd::force(simd::Isa::kScalar);
    };
    const Bins cbins = make_uniform_bins(0.0, 1.0, 1024);
    const Bins::Locator cloc = cbins.locator();
    for (const double sel : {1e-3, 1e-2, 0.1, 0.5, 0.9}) {
      const BitVector selected = make_selected(rows, sel);
      std::vector<std::uint32_t> pos, pos_ref;
      // Rep caps well above the time_best defaults: the per-ISA rows compare
      // near-identical code paths at microsecond scale, so the ratio must be
      // tighter than run-to-run noise.
      isa_rows(
          "to_positions", sel,
          [&] { kern::to_positions_blocked(selected, pos); },
          [&] {
            simd::force(simd::Isa::kScalar);
            kern::to_positions_blocked(selected, pos_ref);
            return pos == pos_ref;
          },
          40000, 0.2);
      // As in the old-vs-new rows above, the counts arrays are zeroed outside
      // the timed region (reps accumulate; the verification callback redoes
      // both sides on fresh buffers) so memset cost and jitter stay out of
      // microsecond-scale ratios.
      std::vector<std::uint64_t> h1(1024), h1_ref(1024);
      isa_rows(
          "hist1d_gather", sel,
          [&] {
            kern::gather_hist1d(selected, 0, rows, xs.data(), cloc, h1.data());
          },
          [&] {
            std::fill(h1.begin(), h1.end(), 0);
            kern::gather_hist1d(selected, 0, rows, xs.data(), cloc, h1.data());
            std::fill(h1_ref.begin(), h1_ref.end(), 0);
            simd::force(simd::Isa::kScalar);
            kern::gather_hist1d(selected, 0, rows, xs.data(), cloc,
                                h1_ref.data());
            return h1 == h1_ref;
          },
          8000, 0.3);
      std::vector<std::uint64_t> h2(1024 * 1024), h2_ref(1024 * 1024);
      isa_rows(
          "hist2d_gather", sel,
          [&] {
            kern::gather_hist2d(selected, 0, rows, xs.data(), ys.data(), cloc,
                                cloc, 1024, h2.data());
          },
          [&] {
            std::fill(h2.begin(), h2.end(), 0);
            kern::gather_hist2d(selected, 0, rows, xs.data(), ys.data(), cloc,
                                cloc, 1024, h2.data());
            std::fill(h2_ref.begin(), h2_ref.end(), 0);
            simd::force(simd::Isa::kScalar);
            kern::gather_hist2d(selected, 0, rows, xs.data(), ys.data(), cloc,
                                cloc, 1024, h2_ref.data());
            return h2 == h2_ref;
          },
          8000, 0.3);
    }
    simd::force(initial);
  }

  // ---- k-way OR (the multi-bin range probe shape) ----
  for (const std::size_t fanin : {8u, 64u, 256u}) {
    std::vector<BitVector> bins_bitmaps;
    bins_bitmaps.reserve(fanin);
    // Disjoint equality-encoded bin bitmaps, ~rows/fanin bits each.
    for (std::size_t b = 0; b < fanin; ++b)
      bins_bitmaps.push_back(make_selected(rows, 1.0 / static_cast<double>(fanin)));
    std::vector<const BitVector*> ops;
    for (const BitVector& b : bins_bitmaps) ops.push_back(&b);
    BitVector out_pair, out_kway;
    const double t_scalar = bench::time_best(
        [&] { out_pair = kern::ref::or_many_pairwise(ops, rows); });
    const double t_block =
        bench::time_best([&] { out_kway = kern::or_many_kway(ops, rows); });
    expect(out_pair == out_kway, "or_many result");
    char label[64];
    std::snprintf(label, sizeof(label), "or_many/fanin=%zu", fanin);
    report(label, t_scalar, t_block);
  }

  // ---- batch dispatch: thread spawn/join per batch vs persistent pool ----
  {
    constexpr int kBatches = 200;
    constexpr std::size_t kTasks = 16;
    const std::size_t nthreads = 4;
    std::atomic<std::uint64_t> sink{0};
    const auto work = [&](std::size_t t) {
      sink.fetch_add(t + 1, std::memory_order_relaxed);
    };
    const double t_scalar = bench::time_best([&] {
      for (int b = 0; b < kBatches; ++b) {
        std::atomic<std::size_t> nextt{0};
        std::vector<std::thread> workers;
        for (std::size_t w = 0; w < nthreads; ++w)
          workers.emplace_back([&] {
            for (;;) {
              const std::size_t t = nextt.fetch_add(1);
              if (t >= kTasks) return;
              work(t);
            }
          });
        for (std::thread& w : workers) w.join();
      }
    });
    par::ThreadPool pool(nthreads);
    const double t_block = bench::time_best([&] {
      for (int b = 0; b < kBatches; ++b) pool.parallel_for(kTasks, nthreads, work);
    });
    expect(sink.load() > 0, "dispatch sink");
    report("batch_dispatch/200x16tasks", t_scalar, t_block);
  }

  if (mismatches > 0) {
    std::fprintf(stderr, "[bench_kernels] %d kernel/reference mismatches\n",
                 mismatches);
    return 1;
  }
  std::printf("# all kernel results match their scalar references\n");
  return 0;
}
