// Figure 13 of the paper: serial processing of identifier queries
// (`id IN (...)`) as a function of the search-set size.
//
// Expected shape (paper, Section V-B): FastBit answers through the id index
// in time proportional to the number of records found — about four orders of
// magnitude faster than the Custom O(N log S) sequential scan for small
// sets, with the gap narrowing to a few x at ~20M-scale sets.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/custom_scan.hpp"
#include "io/timestep_table.hpp"

int main() {
  using namespace qdv;

  const auto dir = bench::ensure_serial_dataset();
  const io::Dataset dataset = io::Dataset::open(dir);
  const io::TimestepTable& table = dataset.table(0);
  const std::uint64_t rows = table.num_rows();
  const auto id_column = table.id_column("id");
  const IdIndex* index = table.id_index("id");
  if (index == nullptr) {
    std::fprintf(stderr, "fig13: dataset has no id index\n");
    return 1;
  }
  const core::CustomScan custom(table);

  std::printf("# Figure 13: serial identifier queries (id IN ...)\n");
  std::printf("# dataset: %llu particles, 1 timestep\n",
              static_cast<unsigned long long>(rows));
  std::printf("%14s %18s %18s %12s\n", "set size", "FastBit(s)", "Custom(s)",
              "speedup");

  // Search sets drawn from existing ids with a stride, so every probe hits.
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t k = 10; k <= rows / 2; k *= 10) sizes.push_back(k);

  double first_ratio = 0.0, last_ratio = 0.0;
  for (const std::uint64_t size : sizes) {
    std::vector<std::uint64_t> search;
    search.reserve(size);
    const std::uint64_t stride = rows / size;
    for (std::uint64_t i = 0; i < size; ++i)
      search.push_back(id_column[i * stride]);

    std::vector<std::uint32_t> fast_rows, scan_rows;
    const double t_fast =
        bench::time_best([&] { fast_rows = index->lookup_rows(search); });
    const double t_scan = bench::time_best([&] { scan_rows = custom.find_ids(search); },
                                           /*max_reps=*/3);
    if (fast_rows != scan_rows) {
      std::fprintf(stderr, "fig13: result mismatch at size %llu\n",
                   static_cast<unsigned long long>(size));
      return 1;
    }
    const double ratio = t_scan / t_fast;
    std::printf("%14llu %18.6f %18.6f %11.1fx\n",
                static_cast<unsigned long long>(size), t_fast, t_scan, ratio);
    if (size == sizes.front()) first_ratio = ratio;
    last_ratio = ratio;
  }

  std::printf("\n# shape checks (paper Section V-B):\n");
  std::printf("#   small sets: FastBit %.0fx faster (paper reports ~10^4x)\n",
              first_ratio);
  std::printf("#   largest set: gap narrows to %.1fx (paper reports ~3x at 20M)\n",
              last_ratio);
  return 0;
}
