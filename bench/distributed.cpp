// Distributed execution benchmark: the same conditional histogram/count
// workload run through 1, 2, and 4 real worker processes behind a
// dist::Coordinator, with a single-process core::Engine as the correctness
// oracle (every merged result is checked bit for bit before it is timed).
//
// Two numbers are reported per worker count:
//   - wall seconds: honest end-to-end scatter/gather time on THIS host.
//     On a single-core container the workers time-share one CPU, so wall
//     time cannot show parallel speedup; it mainly bounds the protocol +
//     merge overhead.
//   - model seconds: the makespan model used throughout the fig14-17
//     benches — per shard the WORKER-measured compute seconds, per query
//     the max over shards (critical path), summed over the workload. With
//     near-equal row windows this is what an N-core host would observe,
//     and speedup_model = model(1 worker) / model(N workers).
// host_cpus is recorded in every row so readers can tell which regime the
// wall numbers came from.
//
// Workers are spawned with QDV_THREADS=1 so per-shard compute seconds
// measure one shard on one core (the model's unit), not the engine's own
// thread pool fighting the other workers for the same cores.
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/selection.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker.hpp"

namespace {

using namespace qdv;

struct WorkItem {
  dist::ShardKind kind;
  std::string query;  // empty = match-all
  std::string var_x;
  std::string var_y;
  std::size_t nxbins = 64;
  std::size_t nybins = 64;
};

struct BatchModel {
  // Per work-item worker compute seconds, element-wise min across reps
  // (max_shard = critical path, sum_shard = total work).
  std::vector<double> max_shard;
  std::vector<double> sum_shard;

  double model_seconds() const {
    double s = 0.0;
    for (const double m : max_shard) s += m;
    return s;
  }
  double work_seconds() const {
    double s = 0.0;
    for (const double m : sum_shard) s += m;
    return s;
  }
};

std::string format_threshold(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

/// The per-timestep workload: one conditional count, one conditional 1D
/// histogram, one conditional 2D histogram, one unconditional 1D histogram
/// — the distributable slice of the paper's Figure 14/15 query mix.
std::vector<WorkItem> make_workload(const std::string& condition) {
  return {
      {dist::ShardKind::kCount, condition, "", "", 0, 0},
      {dist::ShardKind::kHist1, condition, "px", "", 256, 0},
      {dist::ShardKind::kHist2, condition, "x", "px", 64, 64},
      {dist::ShardKind::kHist1, "", "px", "", 256, 0},
  };
}

void check_equal(bool ok, const char* what) {
  if (!ok) throw std::runtime_error(std::string("distributed/direct mismatch: ") + what);
}

/// Bit-identity guard: every merged partial must equal the single-process
/// engine's answer. Runs once per worker count, before timing.
void verify_batch(dist::Coordinator& coordinator, const core::Engine& direct,
                  std::size_t timesteps, const std::vector<WorkItem>& workload) {
  for (std::size_t t = 0; t < timesteps; ++t) {
    for (const WorkItem& w : workload) {
      const dist::GatherResult r = coordinator.execute(
          w.kind, t, w.query, w.var_x, w.var_y, w.nxbins, w.nybins);
      check_equal(r.ok, r.error.c_str());
      const core::Selection sel =
          w.query.empty() ? direct.all() : direct.select(w.query);
      switch (w.kind) {
        case dist::ShardKind::kCount:
          check_equal(r.count == sel.count(t), "count");
          break;
        case dist::ShardKind::kHist1: {
          const Histogram1D h = sel.histogram1d(t, w.var_x, w.nxbins);
          check_equal(r.hist1d.bins == h.bins, "hist1 edges");
          check_equal(r.hist1d.counts == h.counts, "hist1 counts");
          break;
        }
        case dist::ShardKind::kHist2: {
          const Histogram2D h =
              sel.histogram2d(t, w.var_x, w.var_y, w.nxbins, w.nybins);
          check_equal(r.hist2d.xbins == h.xbins && r.hist2d.ybins == h.ybins,
                      "hist2 edges");
          check_equal(r.hist2d.counts == h.counts, "hist2 counts");
          break;
        }
        case dist::ShardKind::kBits:
          check_equal(r.ids == sel.ids(t), "ids");
          break;
      }
    }
  }
}

/// One full pass of the workload over every timestep; records per-item
/// worker compute seconds into @p model (element-wise min across passes).
void run_batch(dist::Coordinator& coordinator, std::size_t timesteps,
               const std::vector<WorkItem>& workload, BatchModel& model) {
  const std::size_t items = timesteps * workload.size();
  if (model.max_shard.empty()) {
    model.max_shard.assign(items, 1e300);
    model.sum_shard.assign(items, 1e300);
  }
  std::size_t i = 0;
  for (std::size_t t = 0; t < timesteps; ++t) {
    for (const WorkItem& w : workload) {
      const dist::GatherResult r = coordinator.execute(
          w.kind, t, w.query, w.var_x, w.var_y, w.nxbins, w.nybins);
      if (!r.ok) throw std::runtime_error("remote error: " + r.error);
      model.max_shard[i] = std::min(model.max_shard[i], r.max_shard_seconds);
      model.sum_shard[i] = std::min(model.sum_shard[i], r.sum_shard_seconds);
      ++i;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Worker re-entry: the coordinator sweep spawns copies of this binary as
  // `bench_distributed --worker <dataset> <socket>` (same trick as
  // test_dist, so the bench needs no qdv_tool on PATH).
  if (argc == 4 && std::string(argv[1]) == "--worker")
    return dist::run_worker(argv[2], argv[3]);

  const std::size_t particles =
      bench::env_size("QDV_BENCH_DIST_PARTICLES", 500'000);
  const std::size_t timesteps = bench::env_size("QDV_BENCH_DIST_TIMESTEPS", 4);
  const std::filesystem::path dir =
      bench::data_root() /
      ("dist_" + std::to_string(particles) + "x" + std::to_string(timesteps));
  if (!std::filesystem::exists(dir / "qdv_manifest.txt")) {
    std::fprintf(stderr, "[bench] generating dist dataset (%zu x %zu) in %s ...\n",
                 timesteps, particles, dir.c_str());
    const sim::WakefieldConfig cfg =
        sim::WakefieldConfig::preset_bench(particles, timesteps);
    io::IndexConfig index_config;
    index_config.nbins = 1024;
    (void)sim::generate_dataset(cfg, dir, index_config);
  }

  bench::JsonReporter json("distributed", argc, argv);
  const core::Engine direct{io::Dataset::open(dir)};
  const io::Dataset& dataset = direct.dataset();
  const double host_cpus =
      static_cast<double>(std::max(1u, std::thread::hardware_concurrency()));

  // Moderate-selectivity condition (~10% of records), same recipe as the
  // fig14/15 bench: the 90th px percentile of a middle timestep.
  double threshold = 0.0;
  {
    const auto pxcol = dataset.table(timesteps / 2).column("px");
    std::vector<double> copy(pxcol.begin(), pxcol.end());
    auto nth = copy.begin() + static_cast<std::ptrdiff_t>(copy.size() / 10);
    std::nth_element(copy.begin(), nth, copy.end(), std::greater<double>());
    threshold = *nth;
  }
  const std::string condition = "px > " + format_threshold(threshold);
  const std::vector<WorkItem> workload = make_workload(condition);

  std::printf("# Distributed scatter/gather benchmark\n");
  std::printf("# dataset: %zu timesteps x %zu particles; condition: %s\n",
              timesteps, particles, condition.c_str());
  std::printf("# workload: %zu queries (count + cond hist1/hist2 + uncond hist1 per timestep)\n",
              timesteps * workload.size());
  std::printf("# host CPUs: %.0f (wall times time-share them; model = per-worker\n",
              host_cpus);
  std::printf("#   compute makespan, the fig14-17 measurement model)\n\n");

  // Warm the page cache (and the direct engine's caches for the verify
  // pass) before any timing.
  for (std::size_t t = 0; t < timesteps; ++t) {
    (void)dataset.table(t).column("x");
    (void)dataset.table(t).column("px");
  }

  const std::string exe = dist::self_exe_path(argv[0]);
  double model_1 = 0.0;
  double wall_1 = 0.0;
  std::printf("%-10s %12s %12s %12s %14s %14s\n", "workers", "wall_s",
              "model_s", "work_s", "speedup_model", "speedup_wall");
  for (const std::size_t nworkers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    dist::DistConfig config;
    config.connect_timeout = std::chrono::milliseconds(15000);
    config.request_timeout = std::chrono::milliseconds(60000);
    dist::Coordinator coordinator(io::Dataset::open(dir), config);
    for (std::size_t w = 0; w < nworkers; ++w) {
      std::string sock = (dir / "bench_w").string();
      sock += std::to_string(nworkers);
      sock += "_";
      sock += std::to_string(w);
      sock += ".sock";
      const pid_t pid = dist::spawn_worker_process(
          exe, {"--worker", dir.string(), sock}, {{"QDV_THREADS", "1"}});
      coordinator.attach_worker(sock, pid);
    }

    // Correctness first (also warms every worker's engine and window
    // caches), then repeated timed passes: wall keeps the best pass, the
    // model keeps element-wise minima — on a time-shared host a shard's
    // CPU time is occasionally inflated by context-switch cache pollution,
    // and the min over many passes recovers the clean dedicated-core cost.
    verify_batch(coordinator, direct, timesteps, workload);
    BatchModel model;
    const double wall = bench::time_best(
        [&] { run_batch(coordinator, timesteps, workload, model); },
        /*max_reps=*/12, /*min_total=*/0.25);

    const double model_s = model.model_seconds();
    if (nworkers == 1) {
      model_1 = model_s;
      wall_1 = wall;
    }
    const double speedup_model = model_s > 0.0 ? model_1 / model_s : 0.0;
    const double speedup_wall = wall > 0.0 ? wall_1 / wall : 0.0;
    std::printf("%-10zu %12.4f %12.4f %12.4f %14.2f %14.2f\n", nworkers, wall,
                model_s, model.work_seconds(), speedup_model, speedup_wall);

    const dist::DistStats stats = coordinator.stats();
    if (stats.deaths != 0 || stats.alive != nworkers)
      throw std::runtime_error("worker died during the benchmark");
    json.row("distributed/workers_" + std::to_string(nworkers), wall,
             {{"workers", static_cast<double>(nworkers)},
              {"model_seconds", model_s},
              {"work_seconds", model.work_seconds()},
              {"speedup_model", speedup_model},
              {"speedup_wall", speedup_wall},
              {"scatters", static_cast<double>(stats.scatters)},
              {"host_cpus", host_cpus}});
  }

  std::printf("\n# verified: every merged result bit-identical to the local engine\n");
  std::printf("# speedup_model is the makespan-model speedup (DESIGN.md S6/S13);\n");
  std::printf("# on a %.0f-CPU host the wall column %s show real parallelism\n",
              host_cpus, host_cpus > 1.5 ? "can" : "cannot");
  return 0;
}
