// Figure 11 of the paper: serial computation of unconditional 2D histograms
// as a function of bin count (32^2 ... 2048^2).
//
// Series: FastBit-Regular (index-backed engine, uniform bins),
//         FastBit-Adaptive (equal-weight bins via oversample+merge),
//         Custom-Regular (sequential scan with nested bin-count arrays).
//
// Expected shape (paper, Section V-A1): roughly flat in the bin count, since
// every variant touches all records; FastBit slightly faster than Custom
// (flat vs nested count array); adaptive costs a small constant more than
// uniform (bin merge step).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/custom_scan.hpp"
#include "io/timestep_table.hpp"

int main() {
  using namespace qdv;

  const auto dir = bench::ensure_serial_dataset();
  const io::Dataset dataset = io::Dataset::open(dir);
  const io::TimestepTable& table = dataset.table(0);
  const std::uint64_t rows = table.num_rows();

  // Warm the column cache so the sweep measures computation, not cold I/O
  // (the paper's serial study also reuses a hot workstation cache).
  (void)table.column("x");
  (void)table.column("px");

  const HistogramEngine fastbit = table.engine(EvalMode::kAuto);
  const core::CustomScan custom(table);

  std::printf("# Figure 11: serial unconditional 2D histograms (x, px)\n");
  std::printf("# dataset: %llu particles, 1 timestep\n",
              static_cast<unsigned long long>(rows));
  std::printf("%10s %22s %22s %22s\n", "bins", "FastBit-Regular(s)",
              "FastBit-Adaptive(s)", "Custom-Regular(s)");

  double first_fb = 0.0, last_fb = 0.0;
  double sum_fb = 0.0, sum_custom = 0.0, sum_adaptive = 0.0;
  const std::vector<std::size_t> bin_counts = {32, 64, 128, 256, 512, 1024, 2048};
  for (const std::size_t bins : bin_counts) {
    const double t_regular = bench::time_best(
        [&] { (void)fastbit.histogram2d("x", "px", bins, bins); });
    const double t_adaptive = bench::time_best([&] {
      (void)fastbit.histogram2d("x", "px", bins, bins, nullptr, BinningMode::kAdaptive);
    });
    const double t_custom = bench::time_best(
        [&] { (void)custom.histogram2d("x", "px", bins, bins); });
    std::printf("%10zu %22.4f %22.4f %22.4f\n", bins, t_regular, t_adaptive, t_custom);
    if (bins == bin_counts.front()) first_fb = t_regular;
    if (bins == bin_counts.back()) last_fb = t_regular;
    sum_fb += t_regular;
    sum_adaptive += t_adaptive;
    sum_custom += t_custom;
  }

  std::printf("\n# shape checks (paper Section V-A1):\n");
  std::printf("#   flat in bins: FastBit time at 2048^2 / 32^2 = %.2fx\n",
              last_fb / first_fb);
  std::printf("#   FastBit vs Custom (mean over sweep): %.2fx faster\n",
              sum_custom / sum_fb);
  std::printf("#   adaptive overhead vs uniform (mean): %.2fx\n",
              sum_adaptive / sum_fb);
  return 0;
}
