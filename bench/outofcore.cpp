// Out-of-core io benchmark (DESIGN.md Section 9): eager whole-file loading
// vs mmap-backed lazy loading.
//
//   1. Cold start — time-to-first-answer of one selective query against a
//      freshly opened dataset: eager (whole column + whole index
//      deserialized) vs lazy (segment directory + touched segments only).
//   2. O(touched columns) — a query probing k of the 7 value columns reads
//      O(k) column bytes, verified via the engine's resident/loaded stats.
//   3. Budget sweep — the same workload under shrinking byte budgets:
//      completion time degrades gracefully while resident bytes stay under
//      the ceiling.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/selection.hpp"

namespace {

using namespace qdv;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// A selective range query on @p var, cutting at 60% of its global domain.
std::string cut_query(const io::Dataset& ds, const std::string& var) {
  const auto [lo, hi] = ds.global_domain(var);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s > %.6g", var.c_str(),
                lo + 0.6 * (hi - lo));
  return buf;
}

}  // namespace

int main() {
  const auto dir = bench::ensure_serial_dataset();
  const std::vector<std::string> vars = {"px", "x", "y", "z", "py", "pz", "xrel"};

  // ---------------------------------------------------------- cold start ---
  std::printf("# Out-of-core io: eager whole-file vs lazy mmap loading\n\n");
  std::printf("%-28s %12s %16s\n", "cold-start (one query)", "seconds",
              "bytes loaded");
  double eager_seconds = 0.0, lazy_seconds = 0.0;
  {
    io::OpenOptions options;
    options.mode = io::LoadMode::kEager;
    const auto start = std::chrono::steady_clock::now();
    const io::Dataset ds = io::Dataset::open(dir, options);
    const std::string q = cut_query(ds, "px");
    const std::uint64_t count = ds.table(0).query(q).count();
    eager_seconds = seconds_since(start);
    // Eager loading reads whole files: the column plus the full index.
    const std::uint64_t bytes =
        std::filesystem::file_size(ds.step_dir(0) / "px.f64") +
        std::filesystem::file_size(ds.step_dir(0) / "px.bmi");
    std::printf("%-28s %12.4f %16llu   (%llu hits)\n", "eager", eager_seconds,
                static_cast<unsigned long long>(bytes),
                static_cast<unsigned long long>(count));
  }
  {
    const auto start = std::chrono::steady_clock::now();
    const io::Dataset ds = io::Dataset::open(dir);
    const std::string q = cut_query(ds, "px");
    const std::uint64_t count = ds.table(0).query(q).count();
    lazy_seconds = seconds_since(start);
    const io::MemoryBudgetStats s = ds.memory_budget()->stats();
    std::printf("%-28s %12.4f %16llu   (%llu hits)\n", "lazy (mmap+segments)",
                lazy_seconds, static_cast<unsigned long long>(s.loaded_bytes),
                static_cast<unsigned long long>(count));
  }
  if (lazy_seconds > 0.0)
    std::printf("# cold-start speedup: %.2fx\n\n", eager_seconds / lazy_seconds);

  // --------------------------------------------------- O(touched columns) ---
  std::printf("%-10s %18s %18s %14s\n", "k columns", "column B loaded",
              "segment B loaded", "of total B");
  for (std::size_t k = 1; k <= vars.size(); ++k) {
    const core::Engine engine = core::Engine::open(dir);
    std::string query;
    for (std::size_t i = 0; i < k; ++i) {
      if (i) query += " && ";
      query += cut_query(engine.dataset(), vars[i]);
    }
    (void)engine.select(query).count(0);
    const core::EngineStats s = engine.stats();
    const std::uint64_t total_column_bytes =
        vars.size() * engine.dataset().table(0).num_rows() * sizeof(double);
    std::printf("%-10zu %18llu %18llu %13.1f%%\n", k,
                static_cast<unsigned long long>(s.column_bytes),
                static_cast<unsigned long long>(s.segment_bytes),
                100.0 * static_cast<double>(s.column_bytes) /
                    static_cast<double>(total_column_bytes));
  }

  // ---------------------------------------------------------- budget sweep ---
  std::printf("\n%-14s %12s %12s %14s %14s\n", "budget", "seconds",
              "evictions", "resident B", "loaded B");
  const std::uint64_t unlimited = io::MemoryBudget::kUnlimited;
  for (const std::uint64_t budget :
       {std::uint64_t{4} << 20, std::uint64_t{16} << 20, std::uint64_t{64} << 20,
        unlimited}) {
    io::OpenOptions options;
    options.budget_bytes = budget;
    const core::Engine engine(io::Dataset::open(dir, options));
    std::vector<std::string> queries;
    for (const std::string& var : vars)
      queries.push_back(cut_query(engine.dataset(), var));
    const auto start = std::chrono::steady_clock::now();
    for (int round = 0; round < 2; ++round)  // cold + warm pass
      for (const std::string& q : queries) (void)engine.select(q).count(0);
    const double elapsed = seconds_since(start);
    const core::EngineStats s = engine.stats();
    char label[32];
    if (budget == unlimited)
      std::snprintf(label, sizeof(label), "unlimited");
    else
      std::snprintf(label, sizeof(label), "%llu MiB",
                    static_cast<unsigned long long>(budget >> 20));
    std::printf("%-14s %12.4f %12llu %14llu %14llu\n", label, elapsed,
                static_cast<unsigned long long>(s.evictions + s.io_evictions),
                static_cast<unsigned long long>(s.resident_bytes),
                static_cast<unsigned long long>(s.loaded_bytes));
  }
  return 0;
}
