// Figures 14 and 15 of the paper: parallel computation of unconditional and
// conditional histograms over a multi-timestep dataset, and the resulting
// strong-scaling speedups for 1..100 virtual nodes.
//
// The measurement model matches the paper's setup: per-timestep files are
// statically assigned to nodes in a strided fashion and nodes work
// independently, so time(P) = max over nodes of that node's summed task
// time (see DESIGN.md Section 6). Each task computes five 1024^2 histogram
// pairs for the position and momentum fields of one timestep, exactly the
// paper's workload; the conditional variant uses `px > 7e10`.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "core/custom_scan.hpp"
#include "parallel/par_ops.hpp"

namespace {

using namespace qdv;

const std::vector<std::pair<std::string, std::string>> kPairs = {
    {"x", "px"}, {"y", "py"}, {"z", "pz"}, {"x", "y"}, {"px", "py"}};
constexpr std::size_t kBins = 1024;

/// Custom baseline task set: sequential-scan histograms per timestep.
par::ClusterRun run_custom(const io::Dataset& dataset, const QueryPtr& condition,
                           par::VirtualCluster& cluster) {
  return cluster.run(dataset.num_timesteps(), [&](std::size_t t) {
    const auto table = dataset.open_table(t);
    const core::CustomScan scan(*table);
    for (const auto& [vx, vy] : kPairs)
      (void)scan.histogram2d(vx, vy, kBins, kBins,
                             condition ? condition.get() : nullptr);
  });
}

/// Pre-kernel FastBit task set: the same two-step conditional workload, but
/// through the pre-PR scalar pipeline — pairwise OR tree + per-bit resolve
/// (bench::ScalarTwoStepRef) and the element-at-a-time gather (per-bit
/// for_each_set + per-value Bins::locate). The FastBit-Cond / Scalar-Ref
/// ratio is the kernel-layer speedup on this machine.
par::ClusterRun run_scalar_ref(const io::Dataset& dataset, double threshold,
                               par::VirtualCluster& cluster) {
  return cluster.run(dataset.num_timesteps(), [&](std::size_t t) {
    const auto table = dataset.open_table(t);
    const bench::ScalarTwoStepRef scalar_ref(
        *table, "px", Interval::greater_than(threshold));
    for (const auto& [vx, vy] : kPairs) {
      // Two-step per pair, exactly like the pre-PR
      // HistogramEngine::histogram2d(condition) call the workload made
      // (decoded segments stay warm across pairs, as the budget cache kept
      // them pre-PR).
      (void)bench::scalar_hist2d(*table, vx, vy, kBins, scalar_ref.evaluate());
    }
  });
}

void print_series(const char* label, const par::ClusterRun& run,
                  const std::vector<std::size_t>& nodes) {
  std::printf("%-16s", label);
  for (const std::size_t p : nodes) std::printf(" %12.4f", run.makespan(p));
  std::printf("\n");
}

void print_speedup(const char* label, const par::ClusterRun& run,
                   const std::vector<std::size_t>& nodes) {
  std::printf("%-16s", label);
  for (const std::size_t p : nodes) std::printf(" %12.2f", run.speedup(p));
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto dir = bench::ensure_scaling_dataset();
  const io::Dataset dataset = io::Dataset::open(dir);
  bench::JsonReporter json("fig14_15_parallel_hist", argc, argv);
  // One host thread: per-task timings free of host-core contention (the
  // makespan model composes them into virtual-node times; DESIGN.md S6).
  par::VirtualCluster cluster(1);

  const QueryPtr condition = parse_query("px > 7e10");
  // Moderate-selectivity condition (~10% of records) for the old/new kernel
  // rows: the paper's 7e10 threshold selects almost nothing in scaled-down
  // surrogate data, so it only measures fixed overhead. The threshold is
  // the 90th px percentile of a middle timestep.
  double mid_threshold = 0.0;
  {
    const auto pxcol = dataset.table(dataset.num_timesteps() / 2).column("px");
    std::vector<double> copy(pxcol.begin(), pxcol.end());
    auto nth = copy.begin() + static_cast<std::ptrdiff_t>(copy.size() / 10);
    std::nth_element(copy.begin(), nth, copy.end(), std::greater<double>());
    mid_threshold = *nth;
  }
  const QueryPtr condition_mid =
      Query::compare("px", CompareOp::kGt, mid_threshold);
  const std::vector<std::size_t> nodes = {1, 2, 5, 10, 20, 50, 100};

  std::printf("# Figures 14/15: parallel histogram computation\n");
  std::printf("# dataset: %zu timesteps; workload: 5 pairs @ 1024^2 per timestep\n",
              dataset.num_timesteps());
  std::printf("# conditional query: px > 7e10\n");
  std::printf("# time(P) = modeled makespan under strided assignment (DESIGN.md S6)\n\n");

  // Warm the page cache once (freshly generated datasets otherwise charge
  // writeback and cold-read costs to whichever batch runs first).
  cluster.run(dataset.num_timesteps(), [&](std::size_t t) {
    const auto table = dataset.open_table(t);
    for (const auto& [vx, vy] : kPairs) {
      (void)table->column(vx);
      (void)table->column(vy);
    }
  });

  par::HistogramWorkload fb_uncond;
  fb_uncond.pairs = kPairs;
  fb_uncond.nbins = kBins;
  const auto r_fb_uncond = bench::best_cluster_run(
      [&] { return par::parallel_histograms(dataset, fb_uncond, cluster).run; });

  par::HistogramWorkload fb_cond = fb_uncond;
  fb_cond.condition = condition;
  const auto r_fb_cond = bench::best_cluster_run(
      [&] { return par::parallel_histograms(dataset, fb_cond, cluster).run; });

  const auto r_custom_uncond =
      bench::best_cluster_run([&] { return run_custom(dataset, nullptr, cluster); });
  const auto r_custom_cond =
      bench::best_cluster_run([&] { return run_custom(dataset, condition, cluster); });
  par::HistogramWorkload fb_mid = fb_uncond;
  fb_mid.condition = condition_mid;
  const auto r_fb_mid = bench::best_cluster_run(
      [&] { return par::parallel_histograms(dataset, fb_mid, cluster).run; });
  const auto r_scalar_mid = bench::best_cluster_run(
      [&] { return run_scalar_ref(dataset, mid_threshold, cluster); });

  // Engine-shared variant: the conditional bitvectors live in the engine
  // cache, so the second batch (and any later view of the same selection)
  // skips the index work entirely.
  const core::Engine engine(dataset);
  const auto r_engine_cold = par::parallel_histograms(engine, fb_cond, cluster).run;
  const core::EngineStats cold_stats = engine.stats();
  const auto r_engine_warm = par::parallel_histograms(engine, fb_cond, cluster).run;
  const core::EngineStats warm_stats = engine.stats();

  std::printf("# Figure 14: timings (seconds)\n%-16s", "nodes");
  for (const std::size_t p : nodes) std::printf(" %12zu", p);
  std::printf("\n");
  print_series("FastBit-Uncond", r_fb_uncond, nodes);
  print_series("Custom-Uncond", r_custom_uncond, nodes);
  print_series("FastBit-Cond", r_fb_cond, nodes);
  print_series("FastBit-CondMid", r_fb_mid, nodes);
  print_series("Scalar-CondMid", r_scalar_mid, nodes);
  print_series("Custom-Cond", r_custom_cond, nodes);
  print_series("Engine-Cold", r_engine_cold, nodes);
  print_series("Engine-Warm", r_engine_warm, nodes);

  // Old/new kernel rows (single-node makespans). The *CondMid pair runs the
  // same moderate-selectivity conditional workload through the pre-PR
  // scalar pipeline and the kernel layer respectively.
  const double t_old = r_scalar_mid.makespan(1);
  const double t_new = r_fb_mid.makespan(1);
  json.row("parallel_hist/fastbit_uncond", r_fb_uncond.makespan(1));
  json.row("parallel_hist/custom_uncond", r_custom_uncond.makespan(1));
  json.row("parallel_hist/fastbit_cond_7e10", r_fb_cond.makespan(1));
  json.row("parallel_hist/custom_cond_7e10", r_custom_cond.makespan(1));
  json.row("parallel_hist/condmid_scalar_old", t_old,
           {{"threshold", mid_threshold}});
  json.row("parallel_hist/condmid_kernel_new", t_new,
           {{"threshold", mid_threshold},
            {"speedup_vs_scalar", t_new > 0.0 ? t_old / t_new : 0.0}});
  json.row("parallel_hist/engine_cold", r_engine_cold.makespan(1));
  json.row("parallel_hist/engine_warm", r_engine_warm.makespan(1));

  std::printf("\n# Figure 15: speedup relative to 1 node (ideal = node count)\n%-16s",
              "nodes");
  for (const std::size_t p : nodes) std::printf(" %12zu", p);
  std::printf("\n");
  print_speedup("FastBit-Uncond", r_fb_uncond, nodes);
  print_speedup("Custom-Uncond", r_custom_uncond, nodes);
  print_speedup("FastBit-Cond", r_fb_cond, nodes);
  print_speedup("Custom-Cond", r_custom_cond, nodes);

  std::printf("\n# shape checks (paper Section V-C):\n");
  std::printf("#   unconditional: FastBit ~ Custom (both examine all records): %.2fx\n",
              r_custom_uncond.makespan(1) / r_fb_uncond.makespan(1));
  std::printf("#   conditional: FastBit keeps its advantage in parallel: %.2fx\n",
              r_custom_cond.makespan(1) / r_fb_cond.makespan(1));
  std::printf("#   speedup at 100 nodes: FastBit-Cond %.1f, Custom-Cond %.1f\n",
              r_fb_cond.speedup(100), r_custom_cond.speedup(100));
  const std::uint64_t warm_hits = warm_stats.hits - cold_stats.hits;
  const std::uint64_t warm_misses = warm_stats.misses - cold_stats.misses;
  std::printf("#   engine cache: warm batch %.2fx faster than cold (hit rate %.0f%%)\n",
              r_engine_warm.makespan(1) > 0.0
                  ? r_engine_cold.makespan(1) / r_engine_warm.makespan(1)
                  : 0.0,
              warm_hits + warm_misses
                  ? 100.0 * static_cast<double>(warm_hits) /
                        static_cast<double>(warm_hits + warm_misses)
                  : 0.0);
  std::printf("#   (host wall time for the FastBit-Uncond batch: %.2fs on %zu threads)\n",
              r_fb_uncond.wall_seconds, cluster.host_threads());
  return 0;
}
