// Ablation: equality-encoded vs range-encoded bitmap indices
// (google-benchmark).
//
// FastBit's default equality encoding ORs O(bins-in-range) bitmaps per
// range condition; range encoding answers any contiguous bin range with two
// cumulative bitmaps but stores denser, less compressible bitmaps. This
// bench quantifies both sides of that trade for the paper's dominant query
// shape (`px > t` thresholds).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bitmap/bitmap_index.hpp"
#include "bitmap/interval_index.hpp"
#include "bitmap/range_index.hpp"

namespace {

using namespace qdv;

std::vector<double> make_column(std::size_t n, std::uint64_t seed) {
  std::vector<double> values(n);
  std::uint64_t state = seed;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (double& v : values)
    v = static_cast<double>(next() >> 11) * 0x1.0p-53 * 1e11;
  return values;
}

// Threshold sweeping selectivity: fraction of the domain above the cut.
double threshold_for(int permille) { return 1e11 * (1.0 - permille / 1000.0); }

void BM_EqualityThreshold(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto nbins = static_cast<std::size_t>(state.range(1));
  const Interval iv = Interval::greater_than(threshold_for(state.range(2)));
  const std::vector<double> values = make_column(n, 21);
  const BitmapIndex index =
      BitmapIndex::build(values, make_uniform_bins(0.0, 1e11, nbins));
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.evaluate(iv, values));
  }
  state.counters["index_mb"] =
      static_cast<double>(index.memory_bytes()) / (1024.0 * 1024.0);
}

void BM_RangeEncodedThreshold(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto nbins = static_cast<std::size_t>(state.range(1));
  const Interval iv = Interval::greater_than(threshold_for(state.range(2)));
  const std::vector<double> values = make_column(n, 21);
  const RangeEncodedIndex index =
      RangeEncodedIndex::build(values, make_uniform_bins(0.0, 1e11, nbins));
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.evaluate(iv, values));
  }
  state.counters["index_mb"] =
      static_cast<double>(index.memory_bytes()) / (1024.0 * 1024.0);
}

void BM_IntervalEncodedThreshold(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto nbins = static_cast<std::size_t>(state.range(1));
  const Interval iv = Interval::greater_than(threshold_for(state.range(2)));
  const std::vector<double> values = make_column(n, 21);
  const IntervalEncodedIndex index =
      IntervalEncodedIndex::build(values, make_uniform_bins(0.0, 1e11, nbins));
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.evaluate(iv, values));
  }
  state.counters["index_mb"] =
      static_cast<double>(index.memory_bytes()) / (1024.0 * 1024.0);
}

void BM_EqualityBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto nbins = static_cast<std::size_t>(state.range(1));
  const std::vector<double> values = make_column(n, 22);
  const Bins bins = make_uniform_bins(0.0, 1e11, nbins);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BitmapIndex::build(values, bins));
  }
}

void BM_RangeEncodedBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto nbins = static_cast<std::size_t>(state.range(1));
  const std::vector<double> values = make_column(n, 22);
  const Bins bins = make_uniform_bins(0.0, 1e11, nbins);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RangeEncodedIndex::build(values, bins));
  }
}

}  // namespace

// args: rows, bins, selectivity (permille of domain above the threshold)
BENCHMARK(BM_EqualityThreshold)
    ->ArgsProduct({{1 << 20}, {128, 1024}, {1, 100, 500}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RangeEncodedThreshold)
    ->ArgsProduct({{1 << 20}, {128, 1024}, {1, 100, 500}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IntervalEncodedThreshold)
    ->ArgsProduct({{1 << 20}, {128, 1024}, {1, 100, 500}})
    ->Unit(benchmark::kMicrosecond);
// Builds sweep fewer bins: range-encoded construction is O(bins x rows).
BENCHMARK(BM_EqualityBuild)
    ->ArgsProduct({{1 << 19}, {32, 128}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RangeEncodedBuild)
    ->ArgsProduct({{1 << 19}, {32, 128}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
