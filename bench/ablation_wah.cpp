// Ablation: WAH-compressed bitvector operations across bit densities and
// run structures (google-benchmark).
//
// DESIGN.md calls out WAH compression as the core design choice inherited
// from FastBit: logical operations must cost O(compressed words), not
// O(bits). This bench quantifies that across densities, and reports the
// compression ratio as a counter (words per 31-bit group; 1.0 = no
// compression win).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bitmap/bitmap_index.hpp"
#include "bitmap/bitvector.hpp"

namespace {

using qdv::BitVector;

/// Deterministic run-structured bitvector: alternating runs with mean run
/// length `31 / density`-ish, so low density -> long fills.
BitVector make_vector(std::uint64_t nbits, double flip_prob, std::uint64_t seed) {
  BitVector v;
  std::uint64_t state = seed;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  bool value = false;
  std::uint64_t pos = 0;
  while (pos < nbits) {
    // Geometric run length with mean 1/flip_prob.
    const double u = static_cast<double>(next() >> 11) * 0x1.0p-53;
    auto run = static_cast<std::uint64_t>(1.0 + (-std::log(1.0 - u) / flip_prob));
    run = std::min(run, nbits - pos);
    v.append_run(value, run);
    value = !value;
    pos += run;
  }
  return v;
}

void BM_WahAnd(benchmark::State& state) {
  const auto nbits = static_cast<std::uint64_t>(state.range(0));
  const double flip = 1.0 / static_cast<double>(state.range(1));
  const BitVector a = make_vector(nbits, flip, 1);
  const BitVector b = make_vector(nbits, flip, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a & b);
  }
  state.counters["words_per_group"] =
      static_cast<double>(a.word_count()) /
      (static_cast<double>(nbits) / BitVector::kGroupBits);
  state.counters["bits"] = static_cast<double>(nbits);
}

void BM_WahOr(benchmark::State& state) {
  const auto nbits = static_cast<std::uint64_t>(state.range(0));
  const double flip = 1.0 / static_cast<double>(state.range(1));
  const BitVector a = make_vector(nbits, flip, 3);
  const BitVector b = make_vector(nbits, flip, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a | b);
  }
}

void BM_WahCount(benchmark::State& state) {
  const auto nbits = static_cast<std::uint64_t>(state.range(0));
  const double flip = 1.0 / static_cast<double>(state.range(1));
  const BitVector a = make_vector(nbits, flip, 5);
  for (auto _ : state) {
    // Cache-defeating copy so count() does real work each iteration.
    BitVector copy = a;
    benchmark::DoNotOptimize(copy.count());
  }
}

void BM_WahToPositions(benchmark::State& state) {
  const auto nbits = static_cast<std::uint64_t>(state.range(0));
  const double flip = 1.0 / static_cast<double>(state.range(1));
  const BitVector a = make_vector(nbits, flip, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.to_positions());
  }
  state.counters["set_bits"] = static_cast<double>(a.count());
}

void BM_OrManyTreeReduction(benchmark::State& state) {
  // The or_many pairwise reduction used when assembling range queries from
  // many bin bitmaps.
  const auto nops = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kBits = 1u << 20;
  std::vector<BitVector> vs;
  vs.reserve(nops);
  for (std::size_t i = 0; i < nops; ++i)
    vs.push_back(make_vector(kBits, 1.0 / 2048.0, 100 + i));
  for (auto _ : state) {
    std::vector<const BitVector*> ops;
    ops.reserve(vs.size());
    for (const auto& v : vs) ops.push_back(&v);
    benchmark::DoNotOptimize(qdv::or_many(std::move(ops), kBits));
  }
}

}  // namespace

// Sweep: 1M and 8M bits; mean run lengths 4 (dense/noisy) to 4096 (sparse).
BENCHMARK(BM_WahAnd)
    ->ArgsProduct({{1 << 20, 8 << 20}, {4, 64, 1024, 4096}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WahOr)
    ->ArgsProduct({{1 << 20, 8 << 20}, {4, 64, 1024, 4096}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WahCount)
    ->ArgsProduct({{8 << 20}, {4, 1024}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WahToPositions)
    ->ArgsProduct({{8 << 20}, {64, 4096}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OrManyTreeReduction)->Arg(8)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
