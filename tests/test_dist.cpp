// Differential suite of the distributed execution subsystem. A fleet of
// real worker processes (this binary re-exec'ed with --worker) behind a
// dist::Coordinator must answer counts, id queries, and uniform-bin
// histograms bit-identically to a single-process core::Engine — across 1,
// 2, and 4 workers, through a seeded fuzz leg (the same random-AST
// machinery as test_fuzz_query, via fuzz_common.hpp), after a worker is
// SIGKILLed and its window is re-sharded onto the survivors, and through
// the svc::QueryService distributed path. Plus pure-logic legs for the
// wire framing (round-trip, truncation, version mismatch against a live
// worker) and the shard manifest (partition, reassign, text round-trip).
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/selection.hpp"
#include "dist/coordinator.hpp"
#include "dist/shard.hpp"
#include "dist/wire.hpp"
#include "dist/worker.hpp"
#include "fuzz_common.hpp"
#include "svc/query_service.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;
namespace fuzz = qdv::test::fuzz;

// ------------------------------------------------------------------ wire ---

void test_wire_round_trip() {
  dist::WireWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.f64(-0.1);  // not exactly representable: must survive bit-exactly
  w.str("shard query text with spaces");
  const std::string payload = w.take();

  dist::WireReader r(payload);
  CHECK_EQ(r.u8(), 7u);
  CHECK_EQ(r.u16(), 65535u);
  CHECK_EQ(r.u32(), 0xdeadbeefu);
  CHECK_EQ(r.u64(), 0x0123456789abcdefull);
  CHECK_EQ(r.f64(), -0.1);
  CHECK_EQ(r.str(), std::string("shard query text with spaces"));
  CHECK_EQ(r.remaining(), 0u);
  CHECK_THROWS(r.u8());  // past the end: truncated frame

  dist::ShardQuery q;
  q.kind = dist::ShardKind::kHist2;
  q.timestep = 3;
  q.row_begin = 100;
  q.row_end = 250;
  q.nxbins = 16;
  q.nybins = 8;
  q.var_x = "a";
  q.var_y = "c";
  q.query = "(a > 0 && b < 5)";
  const dist::ShardQuery back = dist::ShardQuery::decode(q.encode());
  CHECK(back.kind == q.kind);
  CHECK_EQ(back.timestep, q.timestep);
  CHECK_EQ(back.row_begin, q.row_begin);
  CHECK_EQ(back.row_end, q.row_end);
  CHECK_EQ(back.nxbins, q.nxbins);
  CHECK_EQ(back.nybins, q.nybins);
  CHECK_EQ(back.var_x, q.var_x);
  CHECK_EQ(back.var_y, q.var_y);
  CHECK_EQ(back.query, q.query);

  // A truncated ShardQuery payload is an error, not garbage.
  CHECK_THROWS(dist::ShardQuery::decode(q.encode().substr(0, 10)));
}

/// A hand-built frame with a bumped wire version against a live in-process
/// worker: the worker must answer with a clear kError naming both versions
/// (the version check lives in Channel::recv, which the worker serves
/// through, so this exercises the real reject path end to end).
void test_wire_version_mismatch() {
  const std::filesystem::path dir = fuzz::write_random_dataset(
      "dist_wire_ver", /*timesteps=*/1, /*rows=*/50, /*seed=*/0xabc,
      /*index_bins=*/8);
  const std::filesystem::path sock = dir / "w.sock";
  dist::WorkerServer worker(dir, sock);
  worker.start();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, sock.c_str(), sock.string().size() + 1);
  int fd = -1;
  for (int attempt = 0; fd < 0 && attempt < 100; ++attempt) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    CHECK(fd >= 0);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
      ::close(fd);
      fd = -1;
      ::usleep(10000);
    }
  }
  CHECK(fd >= 0);

  // Header: magic u32 | version u16 | type u16 | seq u32 | payload u32,
  // little-endian, with version = kWireVersion + 1.
  const auto put_le = [](std::string& out, std::uint64_t v, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  };
  std::string bad;
  put_le(bad, dist::kWireMagic, 4);
  put_le(bad, dist::kWireVersion + 1, 2);
  put_le(bad, 3 /* kHeartbeat */, 2);
  put_le(bad, 42, 4);
  put_le(bad, 0, 4);
  CHECK(::send(fd, bad.data(), bad.size(), 0) ==
        static_cast<ssize_t>(bad.size()));

  // The reply comes back in the current version; read it with a Channel.
  dist::Channel reply(fd, std::chrono::milliseconds(5000));
  const dist::Frame frame = reply.recv();
  CHECK(frame.type == dist::MsgType::kError);
  dist::WireReader r(frame.payload);
  const std::string message = r.str();
  CHECK(message.find("version mismatch") != std::string::npos);
  CHECK(message.find(std::to_string(dist::kWireVersion + 1)) !=
        std::string::npos);
  worker.stop();
}

// -------------------------------------------------------------- manifest ---

void test_partition_rows() {
  // Near-equal contiguous windows, remainder spread over the earlier
  // workers, tiling [0, nrows) exactly.
  const std::vector<std::size_t> workers = {0, 1, 2};
  const auto parts = dist::partition_rows(10, workers);
  CHECK_EQ(parts.size(), 3u);
  CHECK_EQ(parts[0].begin, 0u);
  CHECK_EQ(parts[0].end, 4u);  // 10 = 4 + 3 + 3
  CHECK_EQ(parts[1].begin, 4u);
  CHECK_EQ(parts[1].end, 7u);
  CHECK_EQ(parts[2].begin, 7u);
  CHECK_EQ(parts[2].end, 10u);

  // Fewer rows than workers: empty windows are omitted entirely.
  const auto tiny = dist::partition_rows(2, workers);
  CHECK_EQ(tiny.size(), 2u);
  CHECK_EQ(tiny[0].end - tiny[0].begin, 1u);
  CHECK_EQ(tiny[1].end - tiny[1].begin, 1u);

  CHECK_THROWS(dist::partition_rows(5, std::vector<std::size_t>{}));
}

void test_manifest_reassign_and_text() {
  const std::vector<std::uint64_t> rows = {100, 7, 0};
  dist::ShardManifest m = dist::ShardManifest::build(rows, /*num_workers=*/3);
  CHECK_EQ(m.num_timesteps(), 3u);
  CHECK_EQ(m.ranges(0).size(), 3u);
  CHECK_EQ(m.ranges(2).size(), 0u);  // empty timestep: no windows

  // Text round-trip before the reassign.
  CHECK(dist::ShardManifest::from_text(m.to_text()) == m);

  // Worker 1 dies: its windows land on 0 and 2, still tiling every step.
  const std::size_t moved = m.reassign(1, std::vector<bool>{true, false, true});
  CHECK(moved > 0);
  for (std::size_t t = 0; t < 3; ++t) {
    std::uint64_t covered = 0;
    std::uint64_t cursor = 0;
    for (const dist::ShardRange& r : m.ranges(t)) {
      CHECK(r.worker != 1u);
      CHECK_EQ(r.begin, cursor);  // sorted and contiguous
      cursor = r.end;
      covered += r.end - r.begin;
    }
    CHECK_EQ(covered, rows[t]);
  }
  CHECK(dist::ShardManifest::from_text(m.to_text()) == m);

  // Nobody left alive: reassign must refuse, not divide by zero.
  dist::ShardManifest dead = dist::ShardManifest::build(rows, 2);
  CHECK_THROWS(dead.reassign(0, std::vector<bool>{false, false}));
}

// ---------------------------------------------------------------- fleets ---

/// A coordinator plus the worker processes it scattered over (this test
/// binary re-exec'ed via --worker). The coordinator's destructor shuts the
/// fleet down and reaps every pid.
struct Fleet {
  std::unique_ptr<dist::Coordinator> coordinator;
  std::vector<pid_t> pids;
};

Fleet start_fleet(const std::filesystem::path& dir, std::size_t n,
                  dist::DistConfig config) {
  Fleet fleet;
  fleet.coordinator =
      std::make_unique<dist::Coordinator>(io::Dataset::open(dir.string()), config);
  const std::string exe = dist::self_exe_path();
  CHECK(!exe.empty());
  for (std::size_t w = 0; w < n; ++w) {
    std::string sock_name = "w";
    sock_name += std::to_string(w);
    sock_name += ".sock";
    const std::filesystem::path sock = dir / sock_name;
    std::filesystem::remove(sock);
    fleet.pids.push_back(dist::spawn_worker_process(
        exe, {"--worker", dir.string(), sock.string()}));
    fleet.coordinator->attach_worker(sock, fleet.pids.back());
  }
  return fleet;
}

dist::DistConfig quiet_config() {
  dist::DistConfig config;
  config.heartbeats = false;  // deterministic: only in-query detection
  config.connect_timeout = std::chrono::milliseconds(3000);
  config.request_timeout = std::chrono::milliseconds(15000);
  return config;
}

/// Assert one scatter/gather of every kind against the direct engine.
void check_query_matches(dist::Coordinator& coordinator,
                         const core::Engine& direct, std::size_t timestep,
                         const std::string& query) {
  const core::Selection sel =
      query.empty() ? direct.all() : direct.select(query);

  const auto count =
      coordinator.execute(dist::ShardKind::kCount, timestep, query);
  CHECK(count.ok);
  CHECK_EQ(count.count, sel.count(timestep));

  const auto ids = coordinator.execute(dist::ShardKind::kBits, timestep, query);
  CHECK(ids.ok);
  CHECK(ids.ids == sel.ids(timestep));

  const auto h1 = coordinator.execute(dist::ShardKind::kHist1, timestep, query,
                                      "a", "", 32);
  const Histogram1D d1 = sel.histogram1d(timestep, "a", 32);
  CHECK(h1.ok);
  CHECK(h1.hist1d.bins.edges() == d1.bins.edges());
  CHECK(h1.hist1d.counts == d1.counts);

  const auto h2 = coordinator.execute(dist::ShardKind::kHist2, timestep, query,
                                      "a", "c", 12, 8);
  const Histogram2D d2 = sel.histogram2d(timestep, "a", "c", 12, 8);
  CHECK(h2.ok);
  CHECK(h2.hist2d.xbins.edges() == d2.xbins.edges());
  CHECK(h2.hist2d.ybins.edges() == d2.ybins.edges());
  CHECK(h2.hist2d.counts == d2.counts);
}

// ---------------------------------------------------------- differential ---

void test_differential_vs_single_process(const std::filesystem::path& dir,
                                         const core::Engine& direct) {
  const std::vector<std::string> queries = {
      "",  // selects all: the distributed twin of Engine::all()
      "a > 0",
      "(a > -50 && b < 5)",
      "(b == 2.5 || c > 500)",
      "!(a > 0)",
      "a > 1e9",  // empty answer on every shard
  };
  for (const std::size_t nworkers : {1u, 2u, 4u}) {
    Fleet fleet = start_fleet(dir, nworkers, quiet_config());
    CHECK_EQ(fleet.coordinator->live_workers(), nworkers);
    for (const std::string& q : queries)
      for (std::size_t t = 0; t < direct.num_timesteps(); ++t)
        check_query_matches(*fleet.coordinator, direct, t, q);
    const dist::DistStats stats = fleet.coordinator->stats();
    CHECK_EQ(stats.deaths, 0u);
    CHECK_EQ(stats.retries, 0u);
    CHECK(stats.scatters >= queries.size() * direct.num_timesteps());
    CHECK_EQ(stats.scatters, stats.gathers);  // nothing failed or was lost
  }
}

void test_fuzz_differential(const std::filesystem::path& dir,
                            const core::Engine& direct) {
  Fleet fleet = start_fleet(dir, 2, quiet_config());
  std::uint64_t state = 0xd15717ull;
  const std::size_t iters = fuzz::iterations(15);
  for (std::size_t i = 0; i < iters; ++i) {
    const QueryPtr q = fuzz::random_query(state, 1 + fuzz::next(state) % 3);
    const std::string text = q->to_string();
    const std::size_t t = fuzz::next(state) % direct.num_timesteps();
    const core::Selection sel = direct.select(q);
    const auto count = fleet.coordinator->execute(dist::ShardKind::kCount, t, text);
    CHECK(count.ok);
    CHECK_EQ(count.count, sel.count(t));
    const auto ids = fleet.coordinator->execute(dist::ShardKind::kBits, t, text);
    CHECK(ids.ok);
    CHECK(ids.ids == sel.ids(t));
  }
}

// --------------------------------------------------------------- backoff ---

void test_backoff_delay() {
  using std::chrono::milliseconds;
  // Same seed, same sequence — a failing chaos run replays exactly.
  std::uint64_t s1 = 42, s2 = 42;
  std::vector<milliseconds> a, b;
  for (int k = 0; k < 8; ++k) {
    a.push_back(dist::backoff_delay(k, milliseconds(5), milliseconds(200), s1));
    b.push_back(dist::backoff_delay(k, milliseconds(5), milliseconds(200), s2));
  }
  CHECK(a == b);
  // Each delay sits inside the jittered exponential envelope:
  // [0.5, 1.0) x min(base * 2^k, max), never below 1 ms.
  for (int k = 0; k < 8; ++k) {
    const double nominal = std::min(5.0 * std::ldexp(1.0, k), 200.0);
    CHECK(a[k] >= milliseconds(1));
    CHECK(a[k].count() >= static_cast<std::int64_t>(0.5 * nominal));
    CHECK(a[k].count() <= static_cast<std::int64_t>(nominal));
  }
  // A different seed jitters differently.
  std::uint64_t s3 = 43;
  std::vector<milliseconds> c;
  for (int k = 0; k < 8; ++k)
    c.push_back(dist::backoff_delay(k, milliseconds(5), milliseconds(200), s3));
  CHECK(c != a);
}

/// The coordinator backs off (through the injectable sleeper, so the test
/// takes no real wall-clock hit) before re-touching a failed worker — even
/// when the reconnect then fails and the worker is declared dead.
void test_retry_backoff_sleeper(const std::filesystem::path& dir,
                                const core::Engine& direct) {
  dist::DistConfig config = quiet_config();
  config.connect_timeout = std::chrono::milliseconds(200);
  config.backoff_base = std::chrono::milliseconds(4);
  config.backoff_max = std::chrono::milliseconds(32);
  config.backoff_seed = 77;
  auto dmutex = std::make_shared<std::mutex>();
  auto delays = std::make_shared<std::vector<std::chrono::milliseconds>>();
  config.backoff_sleep = [dmutex, delays](std::chrono::milliseconds d) {
    std::lock_guard<std::mutex> lock(*dmutex);
    delays->push_back(d);
  };
  Fleet fleet = start_fleet(dir, 2, config);
  ::kill(fleet.pids[0], SIGKILL);
  // Still the exact answer — and the backoff ran before the dead worker's
  // reconnect attempt.
  check_query_matches(*fleet.coordinator, direct, 0, "a > 0");
  {
    std::lock_guard<std::mutex> lock(*dmutex);
    CHECK(!delays->empty());
    for (const std::chrono::milliseconds d : *delays) {
      CHECK(d >= std::chrono::milliseconds(1));
      CHECK(d <= config.backoff_max);
    }
  }
  CHECK_EQ(fleet.coordinator->live_workers(), 1u);
  CHECK_EQ(fleet.coordinator->stats().deaths, 1u);
}

// -------------------------------------------------------------- failures ---

void test_worker_kill_reshard(const std::filesystem::path& dir,
                              const core::Engine& direct) {
  dist::DistConfig config = quiet_config();
  config.connect_timeout = std::chrono::milliseconds(300);  // fast dead-reconnect
  Fleet fleet = start_fleet(dir, 3, config);
  const std::string query = "(a > 0 && c < 500)";

  // Healthy first: all three workers answer.
  check_query_matches(*fleet.coordinator, direct, 0, query);

  // Kill one worker outright. The next execute() must hit the broken
  // channel, fail the bounded reconnect (nobody listens there anymore),
  // declare the worker dead, re-shard its window onto the survivors, and
  // still return the bit-identical answer.
  ::kill(fleet.pids[1], SIGKILL);
  for (std::size_t t = 0; t < direct.num_timesteps(); ++t)
    check_query_matches(*fleet.coordinator, direct, t, query);

  CHECK_EQ(fleet.coordinator->live_workers(), 2u);
  const dist::DistStats stats = fleet.coordinator->stats();
  CHECK_EQ(stats.deaths, 1u);
  CHECK(stats.reshards > 0);
  CHECK(!stats.per_worker[1].alive);
  CHECK(stats.per_worker[1].failures > 0);

  // The updated manifest never references the dead worker again.
  const dist::ShardManifest m = fleet.coordinator->manifest_snapshot();
  for (std::size_t t = 0; t < m.num_timesteps(); ++t)
    for (const dist::ShardRange& r : m.ranges(t)) CHECK(r.worker != 1u);

  // A fresh query after the re-shard runs clean on the survivors.
  check_query_matches(*fleet.coordinator, direct, 0, "b >= 0");
}

void test_heartbeat_death_detection(const std::filesystem::path& dir,
                                    const core::Engine& direct) {
  dist::DistConfig config;
  config.heartbeats = true;
  config.heartbeat_interval = std::chrono::milliseconds(50);
  config.heartbeat_misses = 2;
  config.connect_timeout = std::chrono::milliseconds(300);
  config.request_timeout = std::chrono::milliseconds(15000);
  Fleet fleet = start_fleet(dir, 2, config);
  check_query_matches(*fleet.coordinator, direct, 0, "a > 0");

  // Kill a worker between queries: the heartbeat thread (helped by the
  // waitpid child check) must notice without any query traffic.
  ::kill(fleet.pids[0], SIGKILL);
  bool detected = false;
  for (int i = 0; i < 200 && !detected; ++i) {  // <= 10 s
    detected = fleet.coordinator->live_workers() == 1;
    if (!detected) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  CHECK(detected);
  CHECK_EQ(fleet.coordinator->stats().deaths, 1u);

  // The very next query runs on the survivor, no in-query failures needed.
  check_query_matches(*fleet.coordinator, direct, 0, "a > 0");
}

// ------------------------------------------------------------------- svc ---

void test_service_distributed_path(const std::filesystem::path& dir,
                                   const core::Engine& direct) {
  svc::QueryService service{core::Engine::open(dir.string())};
  Fleet fleet = start_fleet(dir, 2, quiet_config());
  std::shared_ptr<dist::Coordinator> coordinator{std::move(fleet.coordinator)};
  service.set_distributor(coordinator);
  CHECK(service.distributor() == coordinator);

  const auto session = service.open_session("dist-test");
  const std::string query = "(a > 0 && b < 5)";
  const core::Selection sel = direct.select(query);

  svc::Request count;
  count.kind = svc::RequestKind::kCount;
  count.query = query;
  count.timestep = 1;
  const auto count_result = service.execute(session, count);
  CHECK(count_result->status == svc::Status::kOk);
  CHECK_EQ(count_result->count, sel.count(1));

  svc::Request ids;
  ids.kind = svc::RequestKind::kIds;
  ids.query = query;
  ids.timestep = 0;
  const auto ids_result = service.execute(session, ids);
  CHECK(ids_result->status == svc::Status::kOk);
  CHECK(ids_result->ids == sel.ids(0));

  svc::Request hist;
  hist.kind = svc::RequestKind::kHistogram1D;
  hist.query = query;
  hist.timestep = 0;
  hist.var_x = "a";
  hist.nxbins = 24;
  const auto hist_result = service.execute(session, hist);
  CHECK(hist_result->status == svc::Status::kOk);
  const Histogram1D d1 = sel.histogram1d(0, "a", 24);
  CHECK(hist_result->hist1d.bins.edges() == d1.bins.edges());
  CHECK(hist_result->hist1d.counts == d1.counts);

  // Adaptive binning is not distributable: it must run locally and still
  // answer correctly (no fallback counter bump — it never tried to
  // scatter).
  svc::Request adaptive = hist;
  adaptive.binning = BinningMode::kAdaptive;
  const auto adaptive_result = service.execute(session, adaptive);
  CHECK(adaptive_result->status == svc::Status::kOk);
  const Histogram1D da =
      sel.histogram1d(0, "a", 24, BinningMode::kAdaptive);
  CHECK(adaptive_result->hist1d.counts == da.counts);

  // A bad variable surfaces as a clean error through the remote path.
  svc::Request bad = hist;
  bad.var_x = "no_such_variable";
  const auto bad_result = service.execute(session, bad);
  CHECK(bad_result->status == svc::Status::kError);
  CHECK(!bad_result->error.empty());

  const svc::ServiceStats stats = service.stats();
  CHECK_EQ(stats.dist_workers, 2u);
  CHECK_EQ(stats.dist_alive, 2u);
  CHECK(stats.dist_queries >= 4);  // count + ids + hist1 + bad
  CHECK(stats.dist_scatters >= 2 * stats.dist_queries);
  CHECK_EQ(stats.dist_local_fallbacks, 0u);
  CHECK_EQ(stats.dist_per_worker.size(), 2u);
  CHECK(stats.dist_per_worker[0].requests > 0);
  CHECK(stats.dist_per_worker[1].requests > 0);

  service.close_session(session);
  service.set_distributor(nullptr);
  CHECK(service.distributor() == nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  // Re-exec'ed worker mode: `test_dist --worker <dataset> <socket>` runs a
  // real worker process (what start_fleet spawns).
  if (argc == 4 && std::string_view(argv[1]) == "--worker")
    return qdv::dist::run_worker(argv[2], argv[3]);

  test_wire_round_trip();
  test_wire_version_mismatch();
  test_partition_rows();
  test_manifest_reassign_and_text();

  // One shared dataset (and one direct single-process engine as the ground
  // truth) for every process-spawning leg.
  const std::filesystem::path dir = fuzz::write_random_dataset(
      "dist_diff", /*timesteps=*/2, /*rows=*/500, /*seed=*/0xd157,
      /*index_bins=*/24);
  const qdv::core::Engine direct = qdv::core::Engine::open(dir.string());

  test_backoff_delay();
  test_differential_vs_single_process(dir, direct);
  test_fuzz_differential(dir, direct);
  test_retry_backoff_sleeper(dir, direct);
  test_worker_kill_reshard(dir, direct);
  test_heartbeat_death_detection(dir, direct);
  test_service_distributed_path(dir, direct);
  return qdv::test::finish("test_dist");
}
