// Out-of-core io layer: MappedFile/ColumnHandle lifecycle, segment-wise
// index decoding equivalence, MemoryBudget accounting and eviction, and the
// budget edge cases — eviction under a tiny budget mid-query, a column
// larger than the whole budget (streaming scan), concurrent selections
// sharing one mapped file, and O(touched-columns) load volume.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include "agg/pyramid.hpp"
#include "bitmap/index_segments.hpp"
#include "core/selection.hpp"
#include "io/mapped_file.hpp"
#include "io/memory_budget.hpp"
#include "parallel/prefetch.hpp"
#include "sim/wakefield.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;

const std::filesystem::path& dataset_dir() {
  static const std::filesystem::path dir = [] {
    const std::filesystem::path d = qdv::test::scratch_dir("outofcore");
    sim::WakefieldConfig cfg = sim::WakefieldConfig::preset_2d(400, /*seed=*/7);
    io::IndexConfig index_config;
    index_config.nbins = 64;
    CHECK(sim::generate_dataset(cfg, d, index_config) > 0);
    return d;
  }();
  return dir;
}

void test_mapped_file_and_column_handle() {
  const std::filesystem::path dir = qdv::test::scratch_dir("outofcore_map");
  const std::filesystem::path file = dir / "col.f64";
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i * 0.5);
  {
    std::ofstream out(file, std::ios::binary);
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(double)));
  }

  const auto mapped = io::MappedFile::map(file);
  CHECK_EQ(mapped->size(), values.size() * sizeof(double));
  CHECK_EQ(mapped->path(), file);

  io::ColumnHandle<double> handle(file, values.size());
  CHECK(!handle.loaded());
  CHECK(handle.values().empty());
  CHECK_EQ(handle.bytes(), values.size() * sizeof(double));
  const std::span<const double> loaded = handle.load();
  CHECK(handle.loaded());
  CHECK_EQ(loaded.size(), values.size());
  bool equal = true;
  for (std::size_t i = 0; i < values.size(); ++i)
    if (loaded[i] != values[i]) equal = false;
  CHECK(equal);

  // release() drops pages but never the mapping: the same span re-reads
  // identical data (refaulted from the file).
  handle.release();
  CHECK(handle.loaded());
  equal = true;
  for (std::size_t i = 0; i < values.size(); ++i)
    if (loaded[i] != values[i]) equal = false;
  CHECK(equal);

  // A short file is detected at load time.
  io::ColumnHandle<double> truncated(file, values.size() + 1);
  CHECK_THROWS(truncated.load());

  // Empty files map to empty spans.
  const std::filesystem::path empty = dir / "empty.f64";
  std::ofstream(empty, std::ios::binary).flush();
  CHECK_EQ(io::MappedFile::map(empty)->size(), 0u);

  // Heap fallback (QDV_NO_MMAP) serves identical bytes.
  ::setenv("QDV_NO_MMAP", "1", 1);
  const auto heap = io::MappedFile::map(file);
  ::unsetenv("QDV_NO_MMAP");
  CHECK(!heap->backed_by_mmap());
  CHECK_EQ(heap->size(), mapped->size());
  CHECK(std::equal(heap->bytes().begin(), heap->bytes().end(),
                   mapped->bytes().begin()));
}

void test_segmented_index_matches_eager() {
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i)
    values.push_back((i * 37 % 101) * 1.37 - 19.0);
  const Bins bins = make_uniform_bins(-19.0, 120.0, 48);
  const BitmapIndex eager = BitmapIndex::build(values, bins);
  const std::filesystem::path file =
      qdv::test::scratch_dir("outofcore_seg") / "col.bmi";
  {
    std::ofstream out(file, std::ios::binary);
    eager.save(out);
  }

  const auto mapped = io::MappedFile::map(file);
  const SegmentedBitmapIndex lazy =
      SegmentedBitmapIndex::open(mapped->bytes(), mapped);
  CHECK_EQ(lazy.num_rows(), eager.num_rows());
  CHECK(lazy.bins() == eager.bins());
  CHECK_EQ(lazy.num_segments(), bins.num_bins() + 1);

  // Every per-bin segment decodes to the eager index's bitmap.
  for (std::size_t b = 0; b < bins.num_bins(); ++b)
    CHECK(lazy.decode_segment(b) == eager.bin_bitmap(b));

  // Evaluation equivalence across interval shapes (with and without a
  // caching fetch hook).
  io::MemoryBudget cache;
  const auto fetch = [&](std::size_t s) {
    const std::string key = "seg|" + std::to_string(s);
    if (auto hit = cache.get(key, io::ResidentClass::kIndexSegment))
      return std::static_pointer_cast<const BitVector>(hit);
    auto decoded = std::make_shared<const BitVector>(lazy.decode_segment(s));
    cache.put(key, decoded, decoded->memory_bytes(),
              io::ResidentClass::kIndexSegment);
    return std::shared_ptr<const BitVector>(decoded);
  };
  for (const Interval& iv :
       {Interval::greater_than(40.0), Interval::at_most(-3.5),
        Interval::between(0.0, 55.0), Interval::at_least(119.0),
        Interval::between(-100.0, 300.0), Interval::greater_than(200.0)}) {
    const BitVector expect = eager.evaluate(iv, values);
    CHECK(lazy.evaluate(iv, values) == expect);
    CHECK(lazy.evaluate(iv, values, fetch) == expect);
  }
  CHECK(cache.stats().of(io::ResidentClass::kIndexSegment).hits > 0);
}

void test_memory_budget_accounting() {
  io::MemoryBudget budget(1000);
  auto payload = [](std::size_t n) {
    return std::shared_ptr<const void>(new char[n],
                                       [](const void* p) { delete[] static_cast<const char*>(p); });
  };
  budget.put("a", payload(1), 400, io::ResidentClass::kColumn);
  budget.put("b", payload(1), 400, io::ResidentClass::kColumn);
  CHECK_EQ(budget.stats().resident_bytes, 800u);
  CHECK(budget.get("a", io::ResidentClass::kColumn) != nullptr);

  // "c" exceeds the ceiling: the LRU tail ("b") goes first.
  budget.put("c", payload(1), 300, io::ResidentClass::kBitVector);
  CHECK(budget.get("b", io::ResidentClass::kColumn) == nullptr);
  CHECK(budget.get("a", io::ResidentClass::kColumn) != nullptr);
  CHECK(budget.stats().resident_bytes <= 1000u);
  CHECK(budget.stats().evictions >= 1);

  // An entry larger than the whole budget is admitted then evicted; the
  // returned pin (held by the caller) keeps the payload alive meanwhile.
  bool released = false;
  budget.put("huge", payload(1), 5000, io::ResidentClass::kColumn,
             [&released] { released = true; });
  CHECK(budget.get("huge", io::ResidentClass::kColumn) == nullptr);
  CHECK(released);

  // Pinned entries are charged but never evicted.
  budget.put("pin", nullptr, 900, io::ResidentClass::kIndexSegment, {}, true);
  budget.put("d", payload(1), 900, io::ResidentClass::kColumn);
  const auto s = budget.stats();
  CHECK_EQ(s.of(io::ResidentClass::kIndexSegment).bytes, 900u);
  CHECK(budget.get("d", io::ResidentClass::kColumn) == nullptr);  // evicted

  // Per-class entry caps evict only that class.
  budget.clear();
  budget.set_class_entry_cap(io::ResidentClass::kBitVector, 2);
  budget.put("x", payload(1), 1, io::ResidentClass::kColumn);
  budget.put("v1", payload(1), 1, io::ResidentClass::kBitVector);
  budget.put("v2", payload(1), 1, io::ResidentClass::kBitVector);
  budget.put("v3", payload(1), 1, io::ResidentClass::kBitVector);
  CHECK_EQ(budget.stats().of(io::ResidentClass::kBitVector).entries, 2u);
  CHECK(budget.get("x", io::ResidentClass::kColumn) != nullptr);
  CHECK(budget.get("v1", io::ResidentClass::kBitVector) == nullptr);
}

/// Scan-mode reference counts, computed on a private unbudgeted table.
std::vector<std::uint64_t> reference_counts(const std::vector<const char*>& texts,
                                            std::size_t t) {
  const io::Dataset ds = io::Dataset::open(dataset_dir());
  const auto table = ds.open_table(t);
  std::vector<std::uint64_t> counts;
  for (const char* text : texts)
    counts.push_back(table->query(text, EvalMode::kScan).count());
  return counts;
}

const std::vector<const char*>& corpus() {
  static const std::vector<const char*> texts = {
      "px > 8.872e10",
      "px > 1e10 && px < 9e10",
      "px > 1e10 && y > 0 && xrel < 0.9",
      "!(px <= 1e9 || xrel >= 0.9)",
      "y > 0 && y < 1e-5",
  };
  return texts;
}

void test_tiny_budget_mid_query_eviction() {
  // A budget far below the dataset's working set: every query must still
  // answer exactly, with evictions happening between (and inside) queries.
  io::OpenOptions options;
  options.budget_bytes = 4 << 10;
  const core::Engine engine(io::Dataset::open(dataset_dir(), options));
  const std::size_t t = 37;
  const std::vector<std::uint64_t> expect = reference_counts(corpus(), t);
  for (int round = 0; round < 2; ++round)
    for (std::size_t i = 0; i < corpus().size(); ++i)
      CHECK_EQ(engine.select(corpus()[i]).count(t), expect[i]);
  const core::EngineStats s = engine.stats();
  CHECK(s.budget_bytes == (4u << 10));
  CHECK(s.resident_bytes <= s.budget_bytes);
  CHECK(s.io_evictions + s.evictions > 0);
  CHECK(s.loaded_bytes > s.budget_bytes);  // far more flowed through than fits
}

void test_pyramid_partial_residency() {
  // The pair pyramid's fine levels (256x256 leaf counts alone are 512 KiB)
  // dwarf a 4 KiB budget: zoom serves must stay bit-exact through partial
  // residency — level pins survive eviction — while kPyramid levels cycle
  // through the LRU, and the below-resolution fallback must stay exact too.
  io::OpenOptions options;
  options.budget_bytes = 4 << 10;
  const core::Engine engine(io::Dataset::open(dataset_dir(), options));
  const std::size_t t = 37;
  const auto pyr = engine.dataset().table(t).pyramid2d("x", "px");
  CHECK(pyr != nullptr);
  CHECK(pyr->total_count_bytes() > options.budget_bytes);
  const std::vector<double>& xe = pyr->leaf_edges(0);
  const std::vector<double>& ye = pyr->leaf_edges(1);
  const double xw = xe.back() - xe.front(), yw = ye.back() - ye.front();

  const core::Selection sel = engine.all();
  for (const std::size_t nbins : {8u, 16u, 64u}) {
    for (const double f : {0.0, 0.13, 0.31}) {
      const core::Zoom2DResult a = sel.zoom_histogram2d(
          t, "x", "px", xe.front() + f * xw, xe.back() - 0.05 * xw,
          ye.front() + f * yw, ye.back(), nbins, nbins, core::ZoomMode::kAuto);
      const core::Zoom2DResult e = sel.zoom_histogram2d(
          t, "x", "px", xe.front() + f * xw, xe.back() - 0.05 * xw,
          ye.front() + f * yw, ye.back(), nbins, nbins, core::ZoomMode::kExact);
      CHECK(a.pyramid);
      CHECK(a.hist.counts == e.hist.counts);
      CHECK(a.hist.xbins.edges() == e.hist.xbins.edges());
      CHECK(a.hist.ybins.edges() == e.hist.ybins.edges());
    }
  }
  // Deep zoom below the leaf resolution: the exact-kernel fallback answers
  // under the same tiny budget (columns stream through it).
  const core::Zoom1DResult deep_a = sel.zoom_histogram1d(
      t, "px", ye.front() + 0.400 * yw, ye.front() + 0.401 * yw, 64,
      core::ZoomMode::kAuto);
  const core::Zoom1DResult deep_e = sel.zoom_histogram1d(
      t, "px", ye.front() + 0.400 * yw, ye.front() + 0.401 * yw, 64,
      core::ZoomMode::kExact);
  CHECK(!deep_a.pyramid);
  CHECK(deep_a.hist.counts == deep_e.hist.counts);

  const core::EngineStats s = engine.stats();
  CHECK(s.pyramid_served > 0);
  CHECK(s.pyramid_fallback > 0);
  CHECK(s.pyramid_evictions > 0);  // levels really cycled through the LRU
  CHECK(s.io_evictions > 0);
  CHECK(s.resident_bytes <= s.budget_bytes);
}

void test_column_larger_than_budget() {
  // 1 KiB budget vs ~3 KiB columns: every column access overflows the whole
  // budget and must stream through (mmap pages fault in and are dropped).
  io::OpenOptions options;
  options.budget_bytes = 1 << 10;
  const io::Dataset ds = io::Dataset::open(dataset_dir(), options);
  const std::size_t t = 37;
  CHECK(ds.table(t).num_rows() * sizeof(double) > options.budget_bytes);

  // Pure scan evaluation (columns only) and index evaluation both complete.
  const core::Engine scan_engine(ds, EvalMode::kScan);
  const core::Engine auto_engine(io::Dataset::open(dataset_dir(), options));
  const std::vector<std::uint64_t> expect = reference_counts(corpus(), t);
  for (std::size_t i = 0; i < corpus().size(); ++i) {
    CHECK_EQ(scan_engine.select(corpus()[i]).count(t), expect[i]);
    CHECK_EQ(auto_engine.select(corpus()[i]).count(t), expect[i]);
  }

  // Spans handed out before an eviction stay valid afterwards (the mapping
  // survives; only residency was dropped).
  const io::TimestepTable& table = ds.table(t);
  const std::span<const double> px = table.column("px");
  for (const char* var : {"x", "y", "xrel"}) (void)table.column(var);
  const auto fresh = ds.open_table(t);
  const std::span<const double> expect_px = fresh->column("px");
  bool equal = px.size() == expect_px.size();
  for (std::size_t i = 0; equal && i < px.size(); ++i)
    if (px[i] != expect_px[i]) equal = false;
  CHECK(equal);
}

void test_concurrent_selections_share_mapped_file() {
  io::OpenOptions options;
  options.budget_bytes = 32 << 10;  // keep eviction pressure on
  const core::Engine engine(io::Dataset::open(dataset_dir(), options));
  const std::size_t t = 37;
  const std::vector<std::uint64_t> expect = reference_counts(corpus(), t);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&, w] {
      for (int round = 0; round < 4; ++round) {
        const std::size_t i = (w + round) % corpus().size();
        const core::Selection sel = engine.select(corpus()[i]);
        if (sel.count(t) != expect[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  CHECK_EQ(mismatches.load(), 0);
}

void test_touched_columns_only() {
  // A query touching k of the 7 value columns must read O(k) column bytes,
  // not O(all columns). Scan evaluation states it exactly: one variable ->
  // exactly one column's bytes resident.
  const std::size_t t = 37;
  {
    const core::Engine scan(io::Dataset::open(dataset_dir()), EvalMode::kScan);
    const std::uint64_t rows = scan.dataset().table(t).num_rows();
    (void)scan.select("px > 3.7e10").count(t);
    CHECK_EQ(scan.stats().column_bytes, rows * sizeof(double));
    (void)scan.select("px > 3.7e10 && y > 0 && x >= 0").count(t);
    CHECK_EQ(scan.stats().column_bytes, 3 * rows * sizeof(double));
  }
  {
    // The index path reads at most the probed column (often none at all —
    // index-only answers skip the candidate check entirely).
    const core::Engine engine = core::Engine::open(dataset_dir());
    const std::uint64_t rows = engine.dataset().table(t).num_rows();
    (void)engine.select("px > 3.7e10").count(t);
    CHECK(engine.stats().column_bytes <= rows * sizeof(double));
  }
}

void test_prefetcher() {
  io::Dataset ds = io::Dataset::open(dataset_dir());
  const std::size_t steps = ds.num_timesteps();
  par::Prefetcher prefetch(ds, /*max_queue=*/steps);
  for (std::size_t t = 0; t < steps; ++t)
    while (!prefetch.request(t, {"px", "id"}))  // full queue: retry
      prefetch.wait_idle();
  CHECK(!prefetch.request(steps + 5, {"px"}));  // out of range: dropped
  prefetch.wait_idle();
  CHECK_EQ(prefetch.completed(), steps);
  // Everything the traversal needs is already resident.
  std::uint64_t expected_bytes = 0;
  for (std::size_t t = 0; t < steps; ++t)
    expected_bytes += ds.table(t).num_rows() * sizeof(double);
  const io::MemoryBudgetStats s = ds.memory_budget()->stats();
  CHECK(s.of(io::ResidentClass::kColumn).bytes >= expected_bytes);
}

}  // namespace

int main() {
  test_mapped_file_and_column_handle();
  test_segmented_index_matches_eager();
  test_memory_budget_accounting();
  test_tiny_budget_mid_query_eviction();
  test_pyramid_partial_residency();
  test_column_larger_than_budget();
  test_concurrent_selections_share_mapped_file();
  test_touched_columns_only();
  test_prefetcher();
  return qdv::test::finish("test_outofcore");
}
