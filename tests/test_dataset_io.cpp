// End-to-end dataset layer: generate a tiny wakefield dataset, reopen it,
// and verify query evaluation (index vs scan), id lookups, the session API
// (focus counts, selected ids, tracking), and the beam phenomenology the
// examples rely on.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/custom_scan.hpp"
#include "core/session.hpp"
#include "core/statistics.hpp"
#include "io/export.hpp"
#include "sim/wakefield.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;

const std::filesystem::path& dataset_dir() {
  static const std::filesystem::path dir = [] {
    const std::filesystem::path d = qdv::test::scratch_dir("dataset_io");
    sim::WakefieldConfig cfg = sim::WakefieldConfig::preset_2d(300, /*seed=*/11);
    io::IndexConfig index_config;
    index_config.nbins = 64;
    const std::uint64_t bytes = sim::generate_dataset(cfg, d, index_config);
    CHECK(bytes > 0);
    return d;
  }();
  return dir;
}

void test_open_and_metadata() {
  const io::Dataset ds = io::Dataset::open(dataset_dir());
  CHECK_EQ(ds.num_timesteps(), 38u);
  CHECK_EQ(ds.variables().size(), 7u);
  const io::TimestepTable& table = ds.table(0);
  CHECK(table.num_rows() >= 150);
  CHECK(table.has_indices());
  CHECK_EQ(table.column("x").size(), table.num_rows());
  CHECK_EQ(table.id_column("id").size(), table.num_rows());
  const auto [lo, hi] = ds.global_domain("px");
  CHECK(hi > lo);
  CHECK(ds.disk_bytes() > 0);
  CHECK_THROWS(ds.global_domain("nope"));
  CHECK_THROWS(io::Dataset::open(dataset_dir() / "missing"));
}

void test_index_vs_scan() {
  const io::Dataset ds = io::Dataset::open(dataset_dir());
  const io::TimestepTable& table = ds.table(37);
  for (const char* text :
       {"px > 8.872e10", "px > 8.872e10 && y > 0", "px <= 1e9 || xrel >= 0.9",
        "!(px > 1e10)", "y > 0 && y < 1e-5"}) {
    const BitVector via_index = table.query(text, EvalMode::kAuto);
    const BitVector via_scan = table.query(text, EvalMode::kScan);
    CHECK(via_index.to_positions() == via_scan.to_positions());
  }
}

void test_beam_phenomenology() {
  core::ExplorationSession session = core::ExplorationSession::open(dataset_dir());
  const std::size_t t_last = session.num_timesteps() - 1;
  // The paper's selection threshold isolates both beams at the end.
  session.set_focus("px > 8.872e10");
  const std::uint64_t beams = session.focus_count(t_last);
  CHECK(beams > 0);
  CHECK(beams < session.dataset().table(t_last).num_rows() / 2);
  // Compound query narrows but stays nonzero.
  session.set_focus("px > 8.872e10 && y > 0");
  const std::uint64_t upper = session.focus_count(t_last);
  CHECK(upper > 0);
  CHECK(upper < beams);
  // Beam ids live in the reserved namespace, and both beams are present.
  session.set_focus("px > 8.872e10");
  const std::vector<std::uint64_t> ids = session.selected_ids(t_last);
  CHECK_EQ(ids.size(), beams);
  bool first = false, second = false;
  for (const std::uint64_t id : ids) {
    if (id < (1ull << 40)) continue;
    (((id - (1ull << 40)) >> 32) == 0 ? first : second) = true;
  }
  CHECK(first);
  CHECK(second);
  // No beam exists before injection at t=14.
  session.set_focus("px > 8.872e10");
  CHECK_EQ(session.focus_count(10), 0u);
}

void test_tracking() {
  core::ExplorationSession session = core::ExplorationSession::open(dataset_dir());
  const std::size_t t_last = session.num_timesteps() - 1;
  session.set_focus("px > 8.872e10");
  std::vector<std::uint64_t> ids = session.selected_ids(t_last);
  CHECK(!ids.empty());
  const core::ParticleTracks tracks = session.track(ids, 10, t_last, {"x", "px"});
  CHECK_EQ(tracks.timesteps().size(), t_last - 10 + 1);
  CHECK_EQ(tracks.count_present(0), 0u);                        // t=10: not injected
  CHECK_EQ(tracks.count_present(t_last - 10), ids.size());      // all present at end
  // Momentum ramps up after injection.
  const double px_mid = tracks.mean(20 - 10, "px");
  const double px_end = tracks.mean(t_last - 10, "px");
  CHECK(px_mid > 0);
  CHECK(px_end > px_mid);
  CHECK(std::isnan(tracks.value(0, "px", 0)));
}

void test_id_queries_match_scan() {
  const io::Dataset ds = io::Dataset::open(dataset_dir());
  const io::TimestepTable& table = ds.table(20);
  const auto id_col = table.id_column("id");
  std::vector<std::uint64_t> search;
  for (std::size_t i = 0; i < id_col.size(); i += 7) search.push_back(id_col[i]);
  const IdIndex* index = table.id_index("id");
  CHECK(index != nullptr);
  const core::CustomScan scan(table);
  CHECK(index->lookup_rows(search) == scan.find_ids(search));
}

void test_stats_and_export() {
  const io::Dataset ds = io::Dataset::open(dataset_dir());
  const io::TimestepTable& table = ds.table(37);
  const QueryPtr cond = parse_query("px > 8.872e10");
  const core::SummaryStats s = core::conditional_stats(table, "px", cond.get());
  CHECK(s.count > 0);
  CHECK(s.min > 8.872e10);
  CHECK(s.mean >= s.min && s.mean <= s.max);
  const core::SummaryStats all = core::conditional_stats(table, "px");
  CHECK_EQ(all.count, table.num_rows());

  const Histogram2D h = table.engine().histogram2d("x", "px", 16, 16, cond.get());
  CHECK_EQ(h.total(), s.count);
  const auto csv = qdv::test::scratch_dir("csv") / "hist.csv";
  io::export_csv(csv, h);
  CHECK(std::filesystem::file_size(csv) > 20);
}

}  // namespace

int main() {
  test_open_and_metadata();
  test_index_vs_scan();
  test_beam_phenomenology();
  test_tracking();
  test_id_queries_match_scan();
  test_stats_and_export();
  return qdv::test::finish("test_dataset_io");
}
