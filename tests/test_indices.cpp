// Index encodings against a brute-force reference: equality, range, and
// interval encodings must produce identical exact answers for every query
// shape, including values outside the binned range; the id index must match
// a sequential scan.
#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "bitmap/bitmap_index.hpp"
#include "bitmap/interval_index.hpp"
#include "bitmap/range_index.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;

std::vector<double> make_values(std::size_t n, std::uint64_t seed) {
  std::vector<double> values(n);
  std::uint64_t state = seed;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (double& v : values)
    v = static_cast<double>(next() >> 11) * 0x1.0p-53 * 120.0 - 10.0;
  return values;
}

std::vector<std::uint32_t> brute_force(std::span<const double> values,
                                       const Interval& iv) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t r = 0; r < values.size(); ++r)
    if (iv.contains(values[r])) out.push_back(r);
  return out;
}

template <typename Index>
void check_index(const Index& index, std::span<const double> values,
                 const Interval& iv, const char* label) {
  const BitVector answer = index.evaluate(iv, values);
  const std::vector<std::uint32_t> expect = brute_force(values, iv);
  if (answer.to_positions() != expect) {
    std::fprintf(stderr, "%s mismatch: lo=%g hi=%g got %zu expect %zu\n", label,
                 iv.lo, iv.hi, answer.to_positions().size(), expect.size());
    ++qdv::test::failures;
  }
  // The approximate answer must bracket the exact one.
  const auto approx = index.evaluate_approx(iv);
  CHECK((approx.hits & ~answer).count() == 0);  // no false certain hits
  CHECK((answer & ~(approx.hits | approx.candidates)).count() == 0);
}

void test_value_indices() {
  const std::vector<double> values = make_values(5000, 99);
  // Bins deliberately narrower than the data range: rows fall outside.
  for (const std::size_t nbins : {1u, 2u, 3u, 7u, 64u}) {
    const Bins bins = make_uniform_bins(0.0, 100.0, nbins);
    const BitmapIndex eq = BitmapIndex::build(values, bins);
    const RangeEncodedIndex range = RangeEncodedIndex::build(values, bins);
    const IntervalEncodedIndex interval = IntervalEncodedIndex::build(values, bins);
    const std::vector<Interval> queries = {
        Interval::greater_than(50.0),  Interval::greater_than(-100.0),
        Interval::greater_than(99.99), Interval::less_than(0.5),
        Interval::at_least(25.0),      Interval::at_most(75.0),
        Interval::between(10.0, 20.0), Interval::between(-5.0, 110.0),
        Interval::between(33.3, 33.4), Interval::greater_than(200.0),
        Interval::between(50.0, 50.0),
    };
    for (const Interval& iv : queries) {
      check_index(eq, values, iv, "equality");
      check_index(range, values, iv, "range");
      check_index(interval, values, iv, "interval");
    }
  }
}

void test_precision_binning_index_only() {
  // An inclusive threshold on a bin edge of a precision-binned index: the
  // candidate set must be empty (index-only answer). The strict form keeps
  // one candidate bin: values exactly equal to the edge must be excluded.
  const std::vector<double> values = make_values(2000, 7);
  const BitmapIndex index =
      BitmapIndex::build(values, make_precision_bins(-10.0, 110.0, 2, 1u << 14));
  const auto inclusive = index.evaluate_approx(Interval::at_least(70.0));
  CHECK_EQ(inclusive.candidates.count(), 0u);
  const auto strict = index.evaluate_approx(Interval::greater_than(70.0));
  CHECK(strict.candidates.count() <= values.size() / 10);  // one bin of twelve
  check_index(index, values, Interval::at_least(70.0), "precision");
  check_index(index, values, Interval::greater_than(70.0), "precision-strict");
}

void test_serialization() {
  const std::vector<double> values = make_values(3000, 21);
  const BitmapIndex index =
      BitmapIndex::build(values, make_uniform_bins(0.0, 100.0, 32));
  std::stringstream stream;
  index.save(stream);
  const BitmapIndex loaded = BitmapIndex::load(stream);
  const Interval iv = Interval::greater_than(42.0);
  CHECK(index.evaluate(iv, values) == loaded.evaluate(iv, values));
  CHECK_EQ(index.num_rows(), loaded.num_rows());
}

void test_id_index() {
  std::vector<std::uint64_t> ids;
  std::uint64_t state = 5;
  for (std::size_t i = 0; i < 4000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    ids.push_back(state >> 20);
  }
  const IdIndex index = IdIndex::build(ids);
  std::vector<std::uint64_t> search = {ids[0], ids[100], ids[3999], 42, ids[100]};
  const std::vector<std::uint32_t> rows = index.lookup_rows(search);
  // Reference: sequential scan.
  std::vector<std::uint64_t> sorted(search);
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint32_t> expect;
  for (std::uint32_t r = 0; r < ids.size(); ++r)
    if (std::binary_search(sorted.begin(), sorted.end(), ids[r]))
      expect.push_back(r);
  CHECK(rows == expect);
  CHECK_EQ(index.lookup_row(42), -1);
  CHECK_EQ(index.lookup_row(ids[100]), 100);

  std::stringstream stream;
  index.save(stream);
  const IdIndex loaded = IdIndex::load(stream);
  CHECK(loaded.lookup_rows(search) == expect);
}

}  // namespace

int main() {
  test_value_indices();
  test_precision_binning_index_only();
  test_serialization();
  test_id_index();
  return qdv::test::finish("test_indices");
}
