// Parallel layer: the strided makespan model, task timing, and the batched
// histogram/tracking operations over a small multi-timestep dataset.
#include <atomic>
#include <cmath>
#include <vector>

#include "parallel/par_ops.hpp"
#include "sim/wakefield.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;

void test_makespan_model() {
  par::ClusterRun run;
  run.task_seconds = {1.0, 2.0, 3.0, 4.0};
  // Strided assignment on 2 nodes: node0 = {t0, t2} = 4s, node1 = {t1, t3} = 6s.
  CHECK_EQ(run.makespan(1), 10.0);
  CHECK_EQ(run.makespan(2), 6.0);
  CHECK_EQ(run.makespan(4), 4.0);
  CHECK_EQ(run.makespan(100), 4.0);  // more nodes than tasks: slowest task
  CHECK(std::abs(run.speedup(2) - 10.0 / 6.0) < 1e-12);
  CHECK_EQ(run.speedup(1), 1.0);
}

void test_cluster_executes_all_tasks() {
  for (const std::size_t threads : {1u, 4u}) {
    par::VirtualCluster cluster(threads);
    CHECK_EQ(cluster.host_threads(), threads);
    std::atomic<std::size_t> done{0};
    std::vector<std::atomic<int>> seen(17);
    const par::ClusterRun run = cluster.run(17, [&](std::size_t t) {
      seen[t].fetch_add(1);
      done.fetch_add(1);
    });
    CHECK_EQ(done.load(), 17u);
    for (const auto& s : seen) CHECK_EQ(s.load(), 1);
    CHECK_EQ(run.task_seconds.size(), 17u);
    for (const double s : run.task_seconds) CHECK(s >= 0.0);
    CHECK(run.wall_seconds >= 0.0);
  }
}

void test_cluster_propagates_exceptions() {
  par::VirtualCluster cluster(2);
  CHECK_THROWS(cluster.run(4, [](std::size_t t) {
    if (t == 2) throw std::runtime_error("boom");
  }));
}

void test_batched_operations() {
  const std::filesystem::path dir = qdv::test::scratch_dir("parallel");
  sim::WakefieldConfig cfg = sim::WakefieldConfig::preset_bench(800, 4, 5);
  io::IndexConfig index_config;
  index_config.nbins = 64;
  sim::generate_dataset(cfg, dir, index_config);
  const io::Dataset dataset = io::Dataset::open(dir);
  par::VirtualCluster cluster(1);

  par::HistogramWorkload workload;
  workload.pairs = {{"x", "px"}, {"y", "py"}};
  workload.nbins = 32;
  const par::HistogramBatch uncond =
      par::parallel_histograms(dataset, workload, cluster);
  CHECK_EQ(uncond.run.task_seconds.size(), dataset.num_timesteps());
  std::uint64_t rows = 0;
  for (std::size_t t = 0; t < dataset.num_timesteps(); ++t)
    rows += dataset.table(t).num_rows();
  CHECK_EQ(uncond.total_records, rows * workload.pairs.size());

  workload.condition = parse_query("px > 1e9");
  const par::HistogramBatch cond =
      par::parallel_histograms(dataset, workload, cluster);
  CHECK(cond.total_records < uncond.total_records);
  CHECK(cond.total_records > 0);

  // Track the beam ids: they are present in every timestep of the bench
  // preset, so total hits = ids x timesteps.
  std::vector<std::uint64_t> ids;
  for (std::uint64_t k = 0; k < 10; ++k) ids.push_back((1ull << 40) + k);
  const par::TrackBatch tracked =
      par::parallel_track(dataset, ids, EvalMode::kAuto, cluster);
  CHECK_EQ(tracked.total_hits, ids.size() * dataset.num_timesteps());
  const par::TrackBatch scanned =
      par::parallel_track(dataset, ids, EvalMode::kScan, cluster);
  CHECK_EQ(scanned.total_hits, tracked.total_hits);
}

}  // namespace

int main() {
  test_makespan_model();
  test_cluster_executes_all_tasks();
  test_cluster_propagates_exceptions();
  test_batched_operations();
  return qdv::test::finish("test_parallel");
}
