// Histogram engine: the index-backed two-step conditional evaluation must
// agree bin-for-bin with the sequential-scan baseline; adaptive binning
// preserves totals and flattens occupancy.
#include <cstdint>
#include <vector>

#include "core/custom_scan.hpp"
#include "io/dataset.hpp"
#include "sim/wakefield.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;

const std::filesystem::path& dataset_dir() {
  static const std::filesystem::path dir = [] {
    const std::filesystem::path d = qdv::test::scratch_dir("histogram");
    sim::WakefieldConfig cfg = sim::WakefieldConfig::preset_bench(2000, 2, 3);
    io::IndexConfig index_config;
    index_config.nbins = 128;
    sim::generate_dataset(cfg, d, index_config);
    return d;
  }();
  return dir;
}

void test_unconditional_matches_scan() {
  const io::Dataset ds = io::Dataset::open(dataset_dir());
  const io::TimestepTable& table = ds.table(0);
  const HistogramEngine engine = table.engine();
  const core::CustomScan custom(table);
  const Histogram2D fast = engine.histogram2d("x", "px", 32, 32);
  const Histogram2D slow = custom.histogram2d("x", "px", 32, 32);
  CHECK(fast.counts == slow.counts);
  CHECK_EQ(fast.total(), table.num_rows());
  CHECK(fast.nonempty_bins() > 0);
  CHECK(fast.max_count() > 0);
}

void test_conditional_matches_scan() {
  const io::Dataset ds = io::Dataset::open(dataset_dir());
  const io::TimestepTable& table = ds.table(1);
  const HistogramEngine engine = table.engine();
  const core::CustomScan custom(table);
  for (const char* text : {"px > 1e10", "px > 1e10 && y > 0", "xrel < 0.5"}) {
    const QueryPtr cond = parse_query(text);
    const Histogram2D fast = engine.histogram2d("x", "px", 24, 24, cond.get());
    const Histogram2D slow = custom.histogram2d("x", "px", 24, 24, cond.get());
    CHECK(fast.counts == slow.counts);
    CHECK_EQ(fast.total(), table.query(*cond).count());
  }
}

void test_scan_mode_engine() {
  // The engine in forced-scan mode must agree with the indexed mode.
  const io::Dataset ds = io::Dataset::open(dataset_dir());
  const io::TimestepTable& table = ds.table(0);
  const QueryPtr cond = parse_query("px > 5e9");
  const Histogram2D indexed =
      table.engine(EvalMode::kAuto).histogram2d("x", "px", 16, 16, cond.get());
  const Histogram2D scanned =
      table.engine(EvalMode::kScan).histogram2d("x", "px", 16, 16, cond.get());
  CHECK(indexed.counts == scanned.counts);
}

void test_adaptive_binning() {
  const io::Dataset ds = io::Dataset::open(dataset_dir());
  const io::TimestepTable& table = ds.table(0);
  const HistogramEngine engine = table.engine();
  const Histogram1D uniform = engine.histogram1d("px", 16);
  const Histogram1D adaptive =
      engine.histogram1d("px", 16, nullptr, BinningMode::kAdaptive);
  CHECK_EQ(uniform.total(), adaptive.total());
  // Equal-weight bins flatten the occupancy of the skewed momentum column.
  CHECK(adaptive.max_count() < uniform.max_count());
  const Histogram2D adaptive2d =
      engine.histogram2d("x", "px", 16, 16, nullptr, BinningMode::kAdaptive);
  CHECK_EQ(adaptive2d.total(), table.num_rows());
}

void test_density() {
  Histogram2D h;
  h.xbins = make_uniform_bins(0.0, 2.0, 2);   // width 1
  h.ybins = make_uniform_bins(0.0, 4.0, 2);   // width 2
  h.counts.assign(4, 0);
  h.at(0, 0) = 10;
  CHECK_EQ(h.density(0, 0), 5.0);  // 10 / (1 * 2)
  CHECK_EQ(h.density(1, 1), 0.0);
  CHECK_EQ(h.nonempty_bins(), 1u);
}

}  // namespace

int main() {
  test_unconditional_matches_scan();
  test_conditional_matches_scan();
  test_scan_mode_engine();
  test_adaptive_binning();
  test_density();
  return qdv::test::finish("test_histogram");
}
