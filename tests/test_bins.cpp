// Binning strategies: uniform locate arithmetic, quantile bins, precision
// bins (round constants land exactly on edges), and equal-weight merging.
#include <vector>

#include "bitmap/bins.hpp"
#include "bitmap/histogram.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;

void test_uniform() {
  const Bins bins = make_uniform_bins(0.0, 10.0, 10);
  CHECK_EQ(bins.num_bins(), 10u);
  CHECK(bins.is_uniform());
  CHECK_EQ(bins.locate(-0.001), -1);
  CHECK_EQ(bins.locate(0.0), 0);
  CHECK_EQ(bins.locate(0.999), 0);
  CHECK_EQ(bins.locate(1.0), 1);
  CHECK_EQ(bins.locate(9.5), 9);
  CHECK_EQ(bins.locate(10.0), 9);  // last bin is closed
  CHECK_EQ(bins.locate(10.001), -1);
}

void test_quantile() {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i < 900 ? i * 0.001 : i * 1.0);
  const Bins bins = make_quantile_bins(values, 10);
  CHECK(bins.num_bins() >= 2);
  CHECK(bins.num_bins() <= 10);
  // Roughly equal occupancy in each quantile bin.
  std::vector<std::size_t> counts(bins.num_bins(), 0);
  for (const double v : values) {
    const std::ptrdiff_t b = bins.locate(v);
    CHECK(b >= 0);
    if (b >= 0) ++counts[static_cast<std::size_t>(b)];
  }
  for (const std::size_t c : counts) CHECK(c >= 50);
}

void test_precision() {
  // 2 significant digits over [0, 1.15e11]: edges on multiples of 1e10, so
  // the bench's 7e10 threshold needs no candidate check.
  const Bins bins = make_precision_bins(0.0, 1.15e11, 2, 1u << 14);
  bool has_7e10 = false;
  for (const double e : bins.edges())
    if (e == 7e10) has_7e10 = true;
  CHECK(has_7e10);
  CHECK(bins.edges().front() <= 0.0);
  CHECK(bins.edges().back() >= 1.15e11);
  // Coarsening respects max_bins.
  const Bins coarse = make_precision_bins(0.0, 1.15e11, 3, 64);
  CHECK(coarse.num_bins() <= 64);
}

void test_equal_weight() {
  Histogram1D fine;
  fine.bins = make_uniform_bins(0.0, 1.0, 100);
  fine.counts.assign(100, 0);
  // 90% of the mass in [0.2, 0.3).
  for (std::size_t i = 20; i < 30; ++i) fine.counts[i] = 900;
  for (std::size_t i = 0; i < 100; ++i) fine.counts[i] += 10;
  const Bins bins = make_equal_weight_bins(fine, 6);
  CHECK(bins.num_bins() >= 2);
  CHECK(bins.num_bins() <= 6);
  // Most edges concentrate inside the dense band.
  std::size_t inside = 0;
  for (const double e : bins.edges())
    if (e >= 0.2 && e <= 0.31) ++inside;
  CHECK(inside >= 3);
}

void test_invalid() {
  CHECK_THROWS(make_uniform_bins(1.0, 1.0, 4));
  CHECK_THROWS(make_uniform_bins(0.0, 1.0, 0));
  CHECK_THROWS(Bins({1.0}));
  CHECK_THROWS(Bins({2.0, 1.0}));
}

}  // namespace

int main() {
  test_uniform();
  test_quantile();
  test_precision();
  test_equal_weight();
  test_invalid();
  return qdv::test::finish("test_bins");
}
