// Query expression parser: structure, operator precedence, numeric forms,
// and rejection of malformed input.
#include <stdexcept>

#include "core/query.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;

void test_simple_comparison() {
  const QueryPtr q = parse_query("px > 8.872e10");
  CHECK(q->kind() == Query::Kind::kCompare);
  const auto& cq = static_cast<const CompareQuery&>(*q);
  CHECK_EQ(cq.variable(), std::string("px"));
  CHECK(cq.op() == CompareOp::kGt);
  CHECK_EQ(cq.value(), 8.872e10);
}

void test_operators() {
  CHECK(static_cast<const CompareQuery&>(*parse_query("a < 1")).op() ==
        CompareOp::kLt);
  CHECK(static_cast<const CompareQuery&>(*parse_query("a <= 1")).op() ==
        CompareOp::kLe);
  CHECK(static_cast<const CompareQuery&>(*parse_query("a >= 1")).op() ==
        CompareOp::kGe);
  CHECK(static_cast<const CompareQuery&>(*parse_query("a == 1")).op() ==
        CompareOp::kEq);
  CHECK_EQ(static_cast<const CompareQuery&>(*parse_query("a > -2.5e-3")).value(),
           -2.5e-3);
}

void test_conjunction() {
  const QueryPtr q = parse_query("px > 8.872e10 && y > 0");
  CHECK(q->kind() == Query::Kind::kAnd);
  const auto& aq = static_cast<const AndQuery&>(*q);
  CHECK(aq.lhs().kind() == Query::Kind::kCompare);
  CHECK(aq.rhs().kind() == Query::Kind::kCompare);
}

void test_precedence_and_parens() {
  // && binds tighter than ||: a || (b && c).
  const QueryPtr q = parse_query("a > 1 || b > 2 && c > 3");
  CHECK(q->kind() == Query::Kind::kOr);
  const auto& oq = static_cast<const OrQuery&>(*q);
  CHECK(oq.rhs().kind() == Query::Kind::kAnd);

  const QueryPtr p = parse_query("(a > 1 || b > 2) && c > 3");
  CHECK(p->kind() == Query::Kind::kAnd);

  const QueryPtr n = parse_query("!(a > 1)");
  CHECK(n->kind() == Query::Kind::kNot);
}

void test_to_string_reparses() {
  const QueryPtr q = parse_query("px > 8.872e10 && (y > 0 || x <= -1)");
  const QueryPtr again = parse_query(q->to_string());
  CHECK_EQ(q->to_string(), again->to_string());
}

void test_to_string_round_trip_corpus() {
  // Nested / negated expressions must re-parse to an identical tree; the
  // fixed point is reached after one round (to_string fully parenthesizes).
  const char* corpus[] = {
      "px > 8.872e10",
      "a < 1 && b >= 2",
      "a > 1 || b > 2 && c > 3",
      "!(a > 1 || b < 2) && c == 3",
      "!(!(a <= 0.5))",
      "(a > 1 && (b < 2 || !(c >= 3))) || d == 4",
      "!(!(a > 1 && !(b < 2)))",
  };
  for (const char* text : corpus) {
    const QueryPtr q = parse_query(text);
    const QueryPtr again = parse_query(q->to_string());
    CHECK_EQ(q->to_string(), again->to_string());
  }
}

void test_to_string_double_precision() {
  // to_string uses shortest-round-trip formatting, so constants that are
  // not exactly representable in 6 significant digits survive unchanged.
  for (const double value :
       {0.1 + 0.2, 1.0 / 3.0, 8.872e10 + 0.125, 1e300, 5e-324, -2.5e-3}) {
    const QueryPtr q = Query::compare("x", CompareOp::kLt, value);
    const QueryPtr again = parse_query(q->to_string());
    CHECK_EQ(static_cast<const CompareQuery&>(*again).value(), value);
  }
}

void test_id_in_key_is_content_sensitive() {
  // Equal-size search sets must not share a textual key (to_string doubles
  // as the engine's cache key).
  const QueryPtr a = Query::id_in("id", {1, 2, 3});
  const QueryPtr b = Query::id_in("id", {1, 2, 4});
  const QueryPtr c = Query::id_in("id", {3, 2, 1, 2});
  CHECK(a->to_string() != b->to_string());
  CHECK_EQ(a->to_string(), c->to_string());  // sorted + deduped
}

void test_builders() {
  const QueryPtr idq = Query::id_in("id", {5, 3, 5, 1});
  const auto& iq = static_cast<const IdInQuery&>(*idq);
  CHECK(iq.ids() == (std::vector<std::uint64_t>{1, 3, 5}));  // sorted, deduped
  const QueryPtr both =
      Query::land(idq, Query::compare("x", CompareOp::kGt, 0.5));
  CHECK(both->kind() == Query::Kind::kAnd);
}

void test_malformed() {
  CHECK_THROWS(parse_query(""));
  CHECK_THROWS(parse_query("px >"));
  CHECK_THROWS(parse_query("px 8.8"));
  CHECK_THROWS(parse_query("px > 1 &&"));
  CHECK_THROWS(parse_query("(px > 1"));
  CHECK_THROWS(parse_query("px > 1 extra"));
  CHECK_THROWS(parse_query("> 1"));
}

}  // namespace

int main() {
  test_simple_comparison();
  test_operators();
  test_conjunction();
  test_precedence_and_parens();
  test_to_string_reparses();
  test_to_string_round_trip_corpus();
  test_to_string_double_precision();
  test_id_in_key_is_content_sensitive();
  test_builders();
  test_malformed();
  return qdv::test::finish("test_query");
}
