// svc::QueryService functional suite: request kinds against direct
// Selection answers, deterministic in-flight coalescing and result-cache
// reuse, priority and per-client fairness dispatch order (observed through
// Result::sequence while the pool is gated), session byte budgets, the
// line protocol round-trip, and the unix-socket server end-to-end.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "core/selection.hpp"
#include "fuzz_common.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/wakefield.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;

const std::filesystem::path& dataset_dir() {
  static const std::filesystem::path dir = [] {
    const std::filesystem::path d = qdv::test::scratch_dir("service");
    sim::WakefieldConfig cfg = sim::WakefieldConfig::preset_2d(300, /*seed=*/21);
    cfg.num_timesteps = 8;
    io::IndexConfig index_config;
    index_config.nbins = 64;
    CHECK(sim::generate_dataset(cfg, d, index_config) > 0);
    return d;
  }();
  return dir;
}

/// Occupies every worker of the global pool until release(): while held,
/// nothing submitted to the pool can start, so queued service flights stay
/// queued — the deterministic window the coalescing/ordering tests need.
class PoolGate {
 public:
  PoolGate() {
    const std::size_t n = par::ThreadPool::global().size();
    for (std::size_t i = 0; i < n; ++i)
      par::ThreadPool::global().submit([this] {
        std::unique_lock<std::mutex> lock(mutex_);
        ++held_;
        changed_.notify_all();
        changed_.wait(lock, [this] { return open_; });
        --held_;
        changed_.notify_all();
      });
    std::unique_lock<std::mutex> lock(mutex_);
    changed_.wait(lock, [&] { return held_ == n; });
  }

  void release() {
    std::unique_lock<std::mutex> lock(mutex_);
    open_ = true;
    changed_.notify_all();
    changed_.wait(lock, [this] { return held_ == 0; });
  }

  ~PoolGate() { release(); }

 private:
  std::mutex mutex_;
  std::condition_variable changed_;
  std::size_t held_ = 0;
  bool open_ = false;
};

svc::Request count_request(const std::string& query, std::size_t t,
                           svc::Priority pri = svc::Priority::kNormal) {
  svc::Request r;
  r.kind = svc::RequestKind::kCount;
  r.query = query;
  r.timestep = t;
  r.priority = pri;
  return r;
}

void test_request_kinds_match_selection() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  svc::QueryService service{core::Engine::open(dataset_dir())};
  const auto session = service.open_session("kinds");
  const std::string query = "px > 1e9 && y > 0";
  const std::size_t t = 5;
  const core::Selection sel = engine.select(query);

  svc::Request r = count_request(query, t);
  CHECK_EQ(service.execute(session, r)->count, sel.count(t));

  r.kind = svc::RequestKind::kIds;
  CHECK(service.execute(session, r)->ids == sel.ids(t));

  r.kind = svc::RequestKind::kHistogram1D;
  r.var_x = "px";
  r.nxbins = 32;
  const svc::ResultPtr h1 = service.execute(session, r);
  CHECK(h1->hist1d.counts == sel.histogram1d(t, "px", 32).counts);

  r.kind = svc::RequestKind::kHistogram2D;
  r.var_y = "x";
  r.nybins = 16;
  const svc::ResultPtr h2 = service.execute(session, r);
  CHECK(h2->hist2d.counts == sel.histogram2d(t, "px", "x", 32, 16).counts);

  r.kind = svc::RequestKind::kSummary;
  const svc::ResultPtr sm = service.execute(session, r);
  CHECK_EQ(sm->summary.count, sel.summary(t, "px").count);
  CHECK_EQ(sm->summary.mean, sel.summary(t, "px").mean);

  // Errors surface as kError results, not exceptions.
  CHECK_EQ(service.execute(session, count_request("px >", 0))->status,
           svc::Status::kError);
  CHECK_EQ(service.execute(session, count_request("px > 0", 999))->status,
           svc::Status::kError);
  CHECK_EQ(service.execute(77777, count_request("px > 0", 0))->status,
           svc::Status::kError);
  const svc::ServiceStats stats = service.stats();
  CHECK_EQ(stats.failed, 3u);
  CHECK(stats.latency_samples > 0);
}

void test_result_cache_and_semantic_coalescing() {
  svc::QueryService service{core::Engine::open(dataset_dir())};
  const auto session = service.open_session("cache");
  const svc::ResultPtr first =
      service.execute(session, count_request("px > 1e9 && y > 0", 3));
  CHECK_EQ(first->served, svc::Served::kExecuted);
  const svc::ResultPtr again =
      service.execute(session, count_request("px > 1e9 && y > 0", 3));
  CHECK_EQ(again->served, svc::Served::kCached);
  CHECK_EQ(again->count, first->count);
  // The cache key is the *canonical* plan key: a semantically identical
  // spelling hits the same entry.
  const svc::ResultPtr swapped =
      service.execute(session, count_request("y > 0 && px > 1e9", 3));
  CHECK_EQ(swapped->served, svc::Served::kCached);
  CHECK_EQ(swapped->count, first->count);
  const svc::ServiceStats stats = service.stats();
  CHECK_EQ(stats.executed, 1u);
  CHECK_EQ(stats.result_cache_hits, 2u);
}

void test_inflight_coalescing_single_flight() {
  svc::ServiceConfig config;
  config.cache_results = false;  // isolate in-flight attachment
  config.max_concurrency = 1;
  svc::QueryService service{core::Engine::open(dataset_dir()), config};
  const auto session = service.open_session("coalesce");

  std::vector<svc::ResultFuture> futures;
  {
    PoolGate gate;
    // Leader + four duplicates queue while the pool is gated: the
    // duplicates must attach to the leader's flight, not enqueue.
    for (int i = 0; i < 5; ++i)
      futures.push_back(service.submit(session, count_request("px > 2e9", 2)));
    const svc::ServiceStats mid = service.stats();
    CHECK_EQ(mid.queue_depth, 1u);
    CHECK_EQ(mid.coalesce_hits, 4u);
    gate.release();
  }
  service.drain();
  const svc::ResultPtr leader = futures.front().get();
  for (auto& f : futures) {
    CHECK(f.get() == leader);  // one shared Result object
    CHECK_EQ(f.get()->status, svc::Status::kOk);
  }
  const svc::ServiceStats stats = service.stats();
  CHECK_EQ(stats.executed, 1u);
  CHECK_EQ(stats.completed, 5u);
  CHECK(stats.coalesce_rate() > 0.4);
}

void test_priority_and_fairness_order() {
  svc::ServiceConfig config;
  config.cache_results = false;
  config.max_concurrency = 1;
  svc::QueryService service{core::Engine::open(dataset_dir()), config};
  const auto flooder = service.open_session("flooder");
  const auto polite = service.open_session("polite");

  std::vector<svc::ResultFuture> batch;
  svc::ResultFuture interactive;
  svc::ResultFuture polite_one;
  {
    PoolGate gate;
    // The flooder queues four batch requests, then "polite" one batch
    // request, then the flooder one interactive request.
    for (int i = 0; i < 4; ++i)
      batch.push_back(service.submit(
          flooder, count_request("px > " + std::to_string(3 + i) + "e9", 1,
                                 svc::Priority::kBatch)));
    polite_one = service.submit(
        polite, count_request("y > 0", 1, svc::Priority::kBatch));
    interactive = service.submit(
        flooder, count_request("x > 0", 1, svc::Priority::kInteractive));
    gate.release();
  }
  service.drain();
  // Interactive beats every queued batch request regardless of order.
  CHECK_EQ(interactive.get()->sequence, 1u);
  // Within the batch class, the deficit scheduler alternates sessions: the
  // flooder executes one, then polite (weight 0 vs 2) runs before the
  // flooder's remaining three.
  CHECK(polite_one.get()->sequence <= 3u);
  for (auto& f : batch) CHECK(f.get()->status == svc::Status::kOk);
}

void test_session_byte_budget() {
  svc::ServiceConfig config;
  config.cache_results = false;
  config.max_concurrency = 1;
  svc::QueryService service{core::Engine::open(dataset_dir()), config};
  // 100-byte in-flight budget: one count fits (64), ids of a whole
  // timestep never does, and a second concurrent count is over budget.
  const auto tight = service.open_session("tight", 100);

  svc::Request ids = count_request("px > 0", 0);
  ids.kind = svc::RequestKind::kIds;
  CHECK_EQ(service.execute(tight, ids)->status, svc::Status::kRejectedBudget);

  {
    PoolGate gate;
    const svc::ResultFuture a = service.submit(tight, count_request("px > 1e9", 0));
    const svc::ResultFuture b = service.submit(tight, count_request("px > 2e9", 0));
    CHECK_EQ(b.get()->status, svc::Status::kRejectedBudget);
    gate.release();
    service.drain();
    CHECK_EQ(a.get()->status, svc::Status::kOk);
  }
  // Budget released once the flight drained: the same request is admitted.
  CHECK_EQ(service.execute(tight, count_request("px > 3e9", 0))->status,
           svc::Status::kOk);
  const svc::ServiceStats stats = service.stats();
  CHECK_EQ(stats.rejected_budget, 2u);

  // Queue cap: with a gated pool and max_queue 2, the third distinct
  // request bounces.
  svc::ServiceConfig tiny;
  tiny.cache_results = false;
  tiny.max_queue = 2;
  svc::QueryService small{core::Engine::open(dataset_dir()), tiny};
  const auto session = small.open_session("q");
  {
    PoolGate gate;
    (void)small.submit(session, count_request("px > 1e9", 0));
    (void)small.submit(session, count_request("px > 2e9", 0));
    const svc::ResultFuture rejected =
        small.submit(session, count_request("px > 3e9", 0));
    CHECK_EQ(rejected.get()->status, svc::Status::kRejectedQueue);
    gate.release();
  }
  small.drain();
}

void test_protocol_round_trip() {
  const char* lines[] = {
      "hello v=3",
      "count t=3 q=px > 1e9 && y > 0",
      "ids t=0 limit=5 q=px > 2e9",
      "hist1 t=2 x=px bins=32 q=y > 0",
      "hist2 t=1 x=px y=x bins=32 ybins=16 adaptive=1 pri=0 q=px > 1e9",
      "sum t=4 x=px",
      "zoom1 t=0 x=px bins=32 vlo=-1.5 vhi=2.25 q=y > 0",
      "zoom2 t=0 x=x y=px bins=32 ybins=16 vlo=0.125 vhi=0.5 ylo=-2 yhi=2 exact=1",
      "count t=0",
      "brush create name=sel q=px > 1e9 && y > 0",
      "brush refine name=sel q=x > 0",
      "brush invert name=sel",
      "brush combine name=sel with=other op=andnot",
      "brush drop name=sel",
      "count t=2 brush=sel",
      "hist1 t=1 x=px bins=16 brush=sel",
      "stats",
      "ping",
      "quit",
  };
  for (const char* line : lines) {
    svc::WireRequest wire;
    std::string error;
    CHECK(svc::parse_request_line(line, wire, error));
    // format -> parse -> format is a fixed point.
    const std::string formatted = svc::format_request_line(wire);
    svc::WireRequest reparsed;
    CHECK(svc::parse_request_line(formatted, reparsed, error));
    CHECK_EQ(svc::format_request_line(reparsed), formatted);
  }
  svc::WireRequest wire;
  std::string error;
  CHECK(!svc::parse_request_line("count t=x", wire, error));
  CHECK(!svc::parse_request_line("frobnicate t=1", wire, error));
  CHECK(!svc::parse_request_line("", wire, error));
  CHECK(!svc::parse_request_line("count bogus", wire, error));

  // hello parses its version and rejects malformed greetings.
  CHECK(svc::parse_request_line("hello v=7", wire, error));
  CHECK(wire.op == svc::WireRequest::Op::kHello);
  CHECK_EQ(wire.hello_version, 7u);
  CHECK(!svc::parse_request_line("hello", wire, error));
  CHECK(!svc::parse_request_line("hello v=x", wire, error));
  CHECK(!svc::parse_request_line("hello bogus=1", wire, error));
}

/// The strict numeric field parsers: the whole token must parse. Every
/// fixture here was accepted by the lax strtoull/strtod wire layer the v5
/// sweep replaced (trailing garbage silently truncated, overflow clamped,
/// non-finite doubles admitted into viewport math).
void test_strict_numeric_field_parsing() {
  std::size_t n = 0;
  CHECK(svc::parse_size("10", n));
  CHECK_EQ(n, 10u);
  CHECK(svc::parse_size("0", n));
  CHECK(!svc::parse_size("5junk", n));
  CHECK(!svc::parse_size("", n));
  CHECK(!svc::parse_size("-1", n));
  CHECK(!svc::parse_size("1e3", n));
  CHECK(!svc::parse_size(" 7", n));
  CHECK(!svc::parse_size("7 ", n));
  CHECK(!svc::parse_size("0x10", n));
  CHECK(!svc::parse_size("99999999999999999999999", n));  // overflow

  double d = 0.0;
  CHECK(svc::parse_double("3.25", d));
  CHECK_EQ(d, 3.25);
  CHECK(svc::parse_double("-2e4", d));
  CHECK(svc::parse_double("0", d));
  CHECK(!svc::parse_double("1.5x", d));
  CHECK(!svc::parse_double("", d));
  CHECK(!svc::parse_double("inf", d));
  CHECK(!svc::parse_double("-inf", d));
  CHECK(!svc::parse_double("nan", d));
  CHECK(!svc::parse_double("1e999", d));  // overflows to +inf

  // The same strictness surfaces through whole request lines.
  svc::WireRequest wire;
  std::string error;
  CHECK(!svc::parse_request_line("count t=5junk q=px > 0", wire, error));
  CHECK(!svc::parse_request_line("count t=99999999999999999999999", wire, error));
  CHECK(!svc::parse_request_line("hist1 t=0 x=px bins=1e3 q=y > 0", wire, error));
  CHECK(!svc::parse_request_line("ids t=0 limit=-4 q=y > 0", wire, error));
  CHECK(!svc::parse_request_line("zoom1 t=0 x=px bins=8 vlo=inf vhi=1", wire, error));
  CHECK(!svc::parse_request_line("zoom1 t=0 x=px bins=8 vlo=nan vhi=1", wire, error));
  CHECK(!svc::parse_request_line("hist2 t=0 x=px y=x bins=8 ybins=8junk q=y > 0",
                                 wire, error));
  CHECK(!svc::parse_request_line("count t=1 deadline=50ms", wire, error));
  CHECK(!svc::parse_request_line("count t=1 pri=9", wire, error));

  // Malformed brush lines reject with typed parse errors.
  CHECK(!svc::parse_request_line("brush", wire, error));
  CHECK(!svc::parse_request_line("brush frobnicate name=b", wire, error));
  CHECK(!svc::parse_request_line("brush create q=px > 0", wire, error));
  CHECK(!svc::parse_request_line("brush create name=b", wire, error));
  CHECK(!svc::parse_request_line("brush invert name=b q=px > 0", wire, error));
  CHECK(!svc::parse_request_line("brush combine name=b with=c op=xor", wire, error));
  CHECK(!svc::parse_request_line("brush combine name=b op=and", wire, error));
  CHECK(!svc::parse_request_line("brush drop name=b with=c", wire, error));
}

/// A hand-driven socket session (no SocketClient, so no automatic
/// handshake): the server must reject a wrong-version hello and a missing
/// greeting with explicit `err protocol version mismatch` lines, while a
/// well-greeted session proceeds normally.
void test_protocol_version_handshake() {
  svc::QueryService service{core::Engine::open(dataset_dir())};
  svc::SocketServer server(
      service, qdv::test::scratch_dir("service_hello") / "qdv.sock");
  server.start();

  const auto raw_session = [&](const std::string& first_line) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string path = server.socket_path().string();
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = -1;
    for (int attempt = 0; fd < 0 && attempt < 100; ++attempt) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      CHECK(fd >= 0);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) != 0) {
        ::close(fd);
        fd = -1;
        ::usleep(10000);
      }
    }
    CHECK(fd >= 0);
    const std::string out = first_line + "\n";
    CHECK(::send(fd, out.data(), out.size(), 0) ==
          static_cast<ssize_t>(out.size()));
    std::string reply;
    char ch = 0;
    while (reply.find('\n') == std::string::npos &&
           ::recv(fd, &ch, 1, 0) == 1)
      reply.push_back(ch);
    ::close(fd);
    return reply;
  };

  // Stale client: wrong version in the greeting.
  const std::string stale = raw_session("hello v=1");
  CHECK(stale.find("err protocol version mismatch") == 0u);
  CHECK(stale.find("v1") != std::string::npos);
  CHECK(stale.find("v" + std::to_string(svc::kProtocolVersion)) !=
        std::string::npos);

  // Pre-versioning client: first line is not a greeting at all.
  const std::string ungreeted = raw_session("ping");
  CHECK(ungreeted.find("err protocol version mismatch") == 0u);
  CHECK(ungreeted.find("hello v=" + std::to_string(svc::kProtocolVersion)) !=
        std::string::npos);

  // Matching greeting: answered ok, and the session is fully usable —
  // including a redundant mid-session hello.
  const std::string greeted = raw_session("hello v=" +
                                          std::to_string(svc::kProtocolVersion));
  CHECK_EQ(greeted, "ok qdv v=" + std::to_string(svc::kProtocolVersion) + "\n");
  svc::SocketClient client(server.socket_path());  // auto-handshake
  CHECK_EQ(client.request("ping"), "ok pong");
  CHECK_EQ(client.request("hello v=" + std::to_string(svc::kProtocolVersion)),
           "ok qdv v=" + std::to_string(svc::kProtocolVersion));
  server.stop();
}

void test_socket_server_end_to_end() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  svc::QueryService service{core::Engine::open(dataset_dir())};
  svc::SocketServer server(
      service, qdv::test::scratch_dir("service_sock") / "qdv.sock");
  server.start();

  svc::SocketClient client(server.socket_path());
  CHECK_EQ(client.request("ping"), "ok pong");

  const core::Selection sel = engine.select("px > 1e9");
  std::string body;
  CHECK(svc::parse_response_line(
      client.request("count t=2 q=px > 1e9"), body));
  CHECK_EQ(body.find("count=" + std::to_string(sel.count(2))), 0u);

  CHECK(svc::parse_response_line(client.request("sum t=2 x=px q=px > 1e9"), body));
  CHECK(body.find("mean=") != std::string::npos);

  CHECK(!svc::parse_response_line(client.request("count t=2 q=px >"), body));
  CHECK(!svc::parse_response_line(client.request("bogus"), body));

  // A second concurrent connection gets its own session.
  std::thread other([&] {
    svc::SocketClient c2(server.socket_path());
    std::string b;
    CHECK(svc::parse_response_line(c2.request("ids t=2 limit=3 q=px > 1e9"), b));
    CHECK(b.find("ids=") != std::string::npos);
    CHECK(svc::parse_response_line(c2.request("stats"), b));
    CHECK(b.find("submitted=") != std::string::npos);
  });
  other.join();
  CHECK_EQ(client.request("quit"), "ok bye");
  server.stop();
  CHECK(server.connections() >= 2);
  CHECK(!std::filesystem::exists(server.socket_path()));
}

/// Brush verbs end-to-end over the wire: create/refine/invert/combine/drop
/// round-trip with epoch-carrying responses, answers match the equivalent
/// Selection, and every error class comes back as a typed `err` that
/// leaves the connection usable.
void test_brush_wire_session() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  svc::ServiceConfig config;
  config.max_brushes_per_session = 2;
  svc::QueryService service{core::Engine::open(dataset_dir()), config};
  svc::SocketServer server(
      service, qdv::test::scratch_dir("service_brush") / "qdv.sock");
  server.start();
  svc::SocketClient client(server.socket_path());

  std::string body;
  CHECK(svc::parse_response_line(
      client.request("brush create name=sel q=px > 1e9"), body));
  CHECK(body.find("brush=sel") != std::string::npos);
  CHECK(body.find("epoch=1") != std::string::npos);
  const core::Selection sel = engine.select("px > 1e9");
  CHECK(svc::parse_response_line(client.request("count t=2 brush=sel"), body));
  CHECK_EQ(body.find("count=" + std::to_string(sel.count(2))), 0u);
  CHECK(body.find("epoch=1") != std::string::npos);

  // refine bumps the epoch; the answer moves to the conjunction.
  CHECK(svc::parse_response_line(
      client.request("brush refine name=sel q=y > 0"), body));
  CHECK(body.find("epoch=2") != std::string::npos);
  const core::Selection refined = engine.select("px > 1e9 && y > 0");
  CHECK(svc::parse_response_line(client.request("count t=2 brush=sel"), body));
  CHECK_EQ(body.find("count=" + std::to_string(refined.count(2))), 0u);
  CHECK(body.find("epoch=2") != std::string::npos);

  // invert, then subtract a second brush; differential twin via Selection.
  CHECK(svc::parse_response_line(
      client.request("brush create name=other q=x > 0"), body));
  CHECK(svc::parse_response_line(client.request("brush invert name=sel"), body));
  CHECK(body.find("epoch=3") != std::string::npos);
  CHECK(svc::parse_response_line(
      client.request("brush combine name=sel with=other op=andnot"), body));
  CHECK(body.find("epoch=4") != std::string::npos);
  const core::Selection combined =
      engine.select("!(px > 1e9 && y > 0) && !(x > 0)");
  CHECK(svc::parse_response_line(client.request("count t=1 brush=sel"), body));
  CHECK_EQ(body.find("count=" + std::to_string(combined.count(1))), 0u);

  // Typed errors — and the connection stays usable after each.
  CHECK(!svc::parse_response_line(client.request("count t=0 brush=nosuch"), body));
  CHECK(!svc::parse_response_line(
      client.request("count t=0 brush=sel q=px > 0"), body));  // both given
  CHECK(!svc::parse_response_line(
      client.request("zoom1 t=0 x=px bins=8 vlo=0 vhi=1 brush=sel"), body));
  CHECK(!svc::parse_response_line(
      client.request("brush create name=sel q=px > 0"), body));  // duplicate
  CHECK(!svc::parse_response_line(
      client.request("brush refine name=sel q=px >"), body));  // bad predicate
  CHECK(!svc::parse_response_line(
      client.request("brush refine name=nosuch q=px > 0"), body));
  CHECK(svc::parse_response_line(client.request("count t=1 brush=sel"), body));
  CHECK_EQ(body.find("count=" + std::to_string(combined.count(1))), 0u);

  // Brush cap (2 per session here): drop frees a slot, the cap rejects.
  CHECK(svc::parse_response_line(client.request("brush drop name=other"), body));
  CHECK(svc::parse_response_line(
      client.request("brush create name=b2 q=y > 0"), body));
  CHECK(!svc::parse_response_line(
      client.request("brush create name=b3 q=x > 0"), body));

  // Brushes are session-scoped: a second connection neither sees nor can
  // drop this one's, and may reuse the name.
  std::thread other([&] {
    svc::SocketClient c2(server.socket_path());
    std::string b;
    CHECK(!svc::parse_response_line(c2.request("count t=0 brush=sel"), b));
    CHECK(!svc::parse_response_line(c2.request("brush drop name=sel"), b));
    CHECK(svc::parse_response_line(
        c2.request("brush create name=sel q=y > 0"), b));
  });
  other.join();

  // c2's connection teardown drops its brush; ours still holds sel + b2.
  for (int i = 0; i < 500 && service.stats().brush_count != 2; ++i)
    ::usleep(10000);
  const svc::ServiceStats stats = service.stats();
  CHECK_EQ(stats.brush_count, 2u);
  CHECK_EQ(stats.brush_stale_hits, 0u);
  CHECK(stats.brush_queries >= 4u);
  CHECK(svc::parse_response_line(client.request("stats"), body));
  CHECK(body.find("brush_creates=") != std::string::npos);
  CHECK(body.find("brush_stale=0") != std::string::npos);

  server.stop();
  // Server teardown closes every session, releasing all brush state.
  CHECK_EQ(service.stats().brush_count, 0u);
}

/// The session-leak fix: a client that vanishes mid-conversation — work
/// submitted, response unread, no quit — must release its open_sessions
/// slot and its live brushes exactly once, leaving the server serviceable.
void test_abrupt_disconnect_releases_session_state() {
  svc::QueryService service{core::Engine::open(dataset_dir())};
  svc::SocketServer server(
      service, qdv::test::scratch_dir("service_kill") / "qdv.sock");
  server.start();
  const std::uint64_t base_sessions = service.stats().open_sessions;

  const auto doomed_client = [&](int which) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string path = server.socket_path().string();
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = -1;
    for (int attempt = 0; fd < 0 && attempt < 100; ++attempt) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      CHECK(fd >= 0);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) != 0) {
        ::close(fd);
        fd = -1;
        ::usleep(10000);
      }
    }
    CHECK(fd >= 0);
    const auto send_line = [&](const std::string& text) {
      const std::string out = text + "\n";
      CHECK(::send(fd, out.data(), out.size(), 0) ==
            static_cast<ssize_t>(out.size()));
    };
    const auto read_reply = [&] {
      std::string reply;
      char ch = 0;
      while (reply.find('\n') == std::string::npos && ::recv(fd, &ch, 1, 0) == 1)
        reply.push_back(ch);
      return reply;
    };
    send_line("hello v=" + std::to_string(svc::kProtocolVersion));
    CHECK(read_reply().find("ok qdv") == 0u);
    send_line("brush create name=doomed q=px > " + std::to_string(which) + "e9");
    CHECK(read_reply().find("ok brush=doomed") == 0u);
    // Fire queries and hang up without reading a byte of the answers: the
    // serve thread is mid-execute (or blocked writing) when the peer dies.
    send_line("count t=3 brush=doomed");
    send_line("ids t=2 limit=64 q=y > 0");
    ::close(fd);
  };
  for (int i = 0; i < 3; ++i) doomed_client(i + 1);

  // Teardown is asynchronous; poll until every doomed session is gone.
  for (int i = 0; i < 500; ++i) {
    const svc::ServiceStats s = service.stats();
    if (s.open_sessions == base_sessions && s.brush_count == 0) break;
    ::usleep(10000);
  }
  const svc::ServiceStats after = service.stats();
  CHECK_EQ(after.open_sessions, base_sessions);
  CHECK_EQ(after.brush_count, 0u);

  // And the server is still fully serviceable.
  svc::SocketClient client(server.socket_path());
  CHECK_EQ(client.request("ping"), "ok pong");
  std::string body;
  CHECK(svc::parse_response_line(client.request("count t=0 q=px > 1e9"), body));
  server.stop();
}

/// Malformed query text through the wire — plain queries and brush verbs
/// alike: every probe answers with a typed ok/err line (never a hang, a
/// crash, or a dropped connection), and the session stays usable.
void test_malformed_query_text_probes() {
  svc::QueryService service{core::Engine::open(dataset_dir())};
  svc::SocketServer server(
      service, qdv::test::scratch_dir("service_malform") / "qdv.sock");
  server.start();
  svc::SocketClient client(server.socket_path());

  const char* bases[] = {"px > 1e9 && y > 0", "x > 0 || y < 0", "!(px > 2e9)"};
  std::uint64_t state = 0xfeedfaceULL;
  std::string body;
  std::size_t rejected = 0;
  const std::size_t probes = std::max<std::size_t>(test::fuzz::iterations(), 64);
  for (std::size_t i = 0; i < probes; ++i) {
    const std::string probe = test::fuzz::malform(state, bases[i % 3]);
    const std::string line =
        (i % 4 == 0)
            ? "brush create name=p" + std::to_string(i) + " q=" + probe
            : "count t=" + std::to_string(i % 8) + " q=" + probe;
    const std::string reply = client.request(line);
    CHECK(reply.rfind("ok", 0) == 0 || reply.rfind("err", 0) == 0);
    if (!svc::parse_response_line(reply, body)) {
      ++rejected;
    } else if (i % 4 == 0) {
      // A probe that happened to parse created a real brush; drop it so
      // the session's brush cap never interferes with later probes.
      CHECK(svc::parse_response_line(
          client.request("brush drop name=p" + std::to_string(i)), body));
    }
  }
  CHECK(rejected > 0);  // the corpus really does exercise the error path
  CHECK_EQ(client.request("ping"), "ok pong");
  CHECK_EQ(service.stats().brush_count, 0u);
  server.stop();
}

}  // namespace

int main() {
  test_request_kinds_match_selection();
  test_result_cache_and_semantic_coalescing();
  test_inflight_coalescing_single_flight();
  test_priority_and_fairness_order();
  test_session_byte_budget();
  test_protocol_round_trip();
  test_strict_numeric_field_parsing();
  test_protocol_version_handshake();
  test_socket_server_end_to_end();
  test_brush_wire_session();
  test_abrupt_disconnect_releases_session_state();
  test_malformed_query_text_probes();
  return qdv::test::finish("test_service");
}
