// svc::QueryService functional suite: request kinds against direct
// Selection answers, deterministic in-flight coalescing and result-cache
// reuse, priority and per-client fairness dispatch order (observed through
// Result::sequence while the pool is gated), session byte budgets, the
// line protocol round-trip, and the unix-socket server end-to-end.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "core/selection.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/wakefield.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;

const std::filesystem::path& dataset_dir() {
  static const std::filesystem::path dir = [] {
    const std::filesystem::path d = qdv::test::scratch_dir("service");
    sim::WakefieldConfig cfg = sim::WakefieldConfig::preset_2d(300, /*seed=*/21);
    cfg.num_timesteps = 8;
    io::IndexConfig index_config;
    index_config.nbins = 64;
    CHECK(sim::generate_dataset(cfg, d, index_config) > 0);
    return d;
  }();
  return dir;
}

/// Occupies every worker of the global pool until release(): while held,
/// nothing submitted to the pool can start, so queued service flights stay
/// queued — the deterministic window the coalescing/ordering tests need.
class PoolGate {
 public:
  PoolGate() {
    const std::size_t n = par::ThreadPool::global().size();
    for (std::size_t i = 0; i < n; ++i)
      par::ThreadPool::global().submit([this] {
        std::unique_lock<std::mutex> lock(mutex_);
        ++held_;
        changed_.notify_all();
        changed_.wait(lock, [this] { return open_; });
        --held_;
        changed_.notify_all();
      });
    std::unique_lock<std::mutex> lock(mutex_);
    changed_.wait(lock, [&] { return held_ == n; });
  }

  void release() {
    std::unique_lock<std::mutex> lock(mutex_);
    open_ = true;
    changed_.notify_all();
    changed_.wait(lock, [this] { return held_ == 0; });
  }

  ~PoolGate() { release(); }

 private:
  std::mutex mutex_;
  std::condition_variable changed_;
  std::size_t held_ = 0;
  bool open_ = false;
};

svc::Request count_request(const std::string& query, std::size_t t,
                           svc::Priority pri = svc::Priority::kNormal) {
  svc::Request r;
  r.kind = svc::RequestKind::kCount;
  r.query = query;
  r.timestep = t;
  r.priority = pri;
  return r;
}

void test_request_kinds_match_selection() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  svc::QueryService service{core::Engine::open(dataset_dir())};
  const auto session = service.open_session("kinds");
  const std::string query = "px > 1e9 && y > 0";
  const std::size_t t = 5;
  const core::Selection sel = engine.select(query);

  svc::Request r = count_request(query, t);
  CHECK_EQ(service.execute(session, r)->count, sel.count(t));

  r.kind = svc::RequestKind::kIds;
  CHECK(service.execute(session, r)->ids == sel.ids(t));

  r.kind = svc::RequestKind::kHistogram1D;
  r.var_x = "px";
  r.nxbins = 32;
  const svc::ResultPtr h1 = service.execute(session, r);
  CHECK(h1->hist1d.counts == sel.histogram1d(t, "px", 32).counts);

  r.kind = svc::RequestKind::kHistogram2D;
  r.var_y = "x";
  r.nybins = 16;
  const svc::ResultPtr h2 = service.execute(session, r);
  CHECK(h2->hist2d.counts == sel.histogram2d(t, "px", "x", 32, 16).counts);

  r.kind = svc::RequestKind::kSummary;
  const svc::ResultPtr sm = service.execute(session, r);
  CHECK_EQ(sm->summary.count, sel.summary(t, "px").count);
  CHECK_EQ(sm->summary.mean, sel.summary(t, "px").mean);

  // Errors surface as kError results, not exceptions.
  CHECK_EQ(service.execute(session, count_request("px >", 0))->status,
           svc::Status::kError);
  CHECK_EQ(service.execute(session, count_request("px > 0", 999))->status,
           svc::Status::kError);
  CHECK_EQ(service.execute(77777, count_request("px > 0", 0))->status,
           svc::Status::kError);
  const svc::ServiceStats stats = service.stats();
  CHECK_EQ(stats.failed, 3u);
  CHECK(stats.latency_samples > 0);
}

void test_result_cache_and_semantic_coalescing() {
  svc::QueryService service{core::Engine::open(dataset_dir())};
  const auto session = service.open_session("cache");
  const svc::ResultPtr first =
      service.execute(session, count_request("px > 1e9 && y > 0", 3));
  CHECK_EQ(first->served, svc::Served::kExecuted);
  const svc::ResultPtr again =
      service.execute(session, count_request("px > 1e9 && y > 0", 3));
  CHECK_EQ(again->served, svc::Served::kCached);
  CHECK_EQ(again->count, first->count);
  // The cache key is the *canonical* plan key: a semantically identical
  // spelling hits the same entry.
  const svc::ResultPtr swapped =
      service.execute(session, count_request("y > 0 && px > 1e9", 3));
  CHECK_EQ(swapped->served, svc::Served::kCached);
  CHECK_EQ(swapped->count, first->count);
  const svc::ServiceStats stats = service.stats();
  CHECK_EQ(stats.executed, 1u);
  CHECK_EQ(stats.result_cache_hits, 2u);
}

void test_inflight_coalescing_single_flight() {
  svc::ServiceConfig config;
  config.cache_results = false;  // isolate in-flight attachment
  config.max_concurrency = 1;
  svc::QueryService service{core::Engine::open(dataset_dir()), config};
  const auto session = service.open_session("coalesce");

  std::vector<svc::ResultFuture> futures;
  {
    PoolGate gate;
    // Leader + four duplicates queue while the pool is gated: the
    // duplicates must attach to the leader's flight, not enqueue.
    for (int i = 0; i < 5; ++i)
      futures.push_back(service.submit(session, count_request("px > 2e9", 2)));
    const svc::ServiceStats mid = service.stats();
    CHECK_EQ(mid.queue_depth, 1u);
    CHECK_EQ(mid.coalesce_hits, 4u);
    gate.release();
  }
  service.drain();
  const svc::ResultPtr leader = futures.front().get();
  for (auto& f : futures) {
    CHECK(f.get() == leader);  // one shared Result object
    CHECK_EQ(f.get()->status, svc::Status::kOk);
  }
  const svc::ServiceStats stats = service.stats();
  CHECK_EQ(stats.executed, 1u);
  CHECK_EQ(stats.completed, 5u);
  CHECK(stats.coalesce_rate() > 0.4);
}

void test_priority_and_fairness_order() {
  svc::ServiceConfig config;
  config.cache_results = false;
  config.max_concurrency = 1;
  svc::QueryService service{core::Engine::open(dataset_dir()), config};
  const auto flooder = service.open_session("flooder");
  const auto polite = service.open_session("polite");

  std::vector<svc::ResultFuture> batch;
  svc::ResultFuture interactive;
  svc::ResultFuture polite_one;
  {
    PoolGate gate;
    // The flooder queues four batch requests, then "polite" one batch
    // request, then the flooder one interactive request.
    for (int i = 0; i < 4; ++i)
      batch.push_back(service.submit(
          flooder, count_request("px > " + std::to_string(3 + i) + "e9", 1,
                                 svc::Priority::kBatch)));
    polite_one = service.submit(
        polite, count_request("y > 0", 1, svc::Priority::kBatch));
    interactive = service.submit(
        flooder, count_request("x > 0", 1, svc::Priority::kInteractive));
    gate.release();
  }
  service.drain();
  // Interactive beats every queued batch request regardless of order.
  CHECK_EQ(interactive.get()->sequence, 1u);
  // Within the batch class, the deficit scheduler alternates sessions: the
  // flooder executes one, then polite (weight 0 vs 2) runs before the
  // flooder's remaining three.
  CHECK(polite_one.get()->sequence <= 3u);
  for (auto& f : batch) CHECK(f.get()->status == svc::Status::kOk);
}

void test_session_byte_budget() {
  svc::ServiceConfig config;
  config.cache_results = false;
  config.max_concurrency = 1;
  svc::QueryService service{core::Engine::open(dataset_dir()), config};
  // 100-byte in-flight budget: one count fits (64), ids of a whole
  // timestep never does, and a second concurrent count is over budget.
  const auto tight = service.open_session("tight", 100);

  svc::Request ids = count_request("px > 0", 0);
  ids.kind = svc::RequestKind::kIds;
  CHECK_EQ(service.execute(tight, ids)->status, svc::Status::kRejectedBudget);

  {
    PoolGate gate;
    const svc::ResultFuture a = service.submit(tight, count_request("px > 1e9", 0));
    const svc::ResultFuture b = service.submit(tight, count_request("px > 2e9", 0));
    CHECK_EQ(b.get()->status, svc::Status::kRejectedBudget);
    gate.release();
    service.drain();
    CHECK_EQ(a.get()->status, svc::Status::kOk);
  }
  // Budget released once the flight drained: the same request is admitted.
  CHECK_EQ(service.execute(tight, count_request("px > 3e9", 0))->status,
           svc::Status::kOk);
  const svc::ServiceStats stats = service.stats();
  CHECK_EQ(stats.rejected_budget, 2u);

  // Queue cap: with a gated pool and max_queue 2, the third distinct
  // request bounces.
  svc::ServiceConfig tiny;
  tiny.cache_results = false;
  tiny.max_queue = 2;
  svc::QueryService small{core::Engine::open(dataset_dir()), tiny};
  const auto session = small.open_session("q");
  {
    PoolGate gate;
    (void)small.submit(session, count_request("px > 1e9", 0));
    (void)small.submit(session, count_request("px > 2e9", 0));
    const svc::ResultFuture rejected =
        small.submit(session, count_request("px > 3e9", 0));
    CHECK_EQ(rejected.get()->status, svc::Status::kRejectedQueue);
    gate.release();
  }
  small.drain();
}

void test_protocol_round_trip() {
  const char* lines[] = {
      "hello v=3",
      "count t=3 q=px > 1e9 && y > 0",
      "ids t=0 limit=5 q=px > 2e9",
      "hist1 t=2 x=px bins=32 q=y > 0",
      "hist2 t=1 x=px y=x bins=32 ybins=16 adaptive=1 pri=0 q=px > 1e9",
      "sum t=4 x=px",
      "zoom1 t=0 x=px bins=32 vlo=-1.5 vhi=2.25 q=y > 0",
      "zoom2 t=0 x=x y=px bins=32 ybins=16 vlo=0.125 vhi=0.5 ylo=-2 yhi=2 exact=1",
      "count t=0",
      "stats",
      "ping",
      "quit",
  };
  for (const char* line : lines) {
    svc::WireRequest wire;
    std::string error;
    CHECK(svc::parse_request_line(line, wire, error));
    // format -> parse -> format is a fixed point.
    const std::string formatted = svc::format_request_line(wire);
    svc::WireRequest reparsed;
    CHECK(svc::parse_request_line(formatted, reparsed, error));
    CHECK_EQ(svc::format_request_line(reparsed), formatted);
  }
  svc::WireRequest wire;
  std::string error;
  CHECK(!svc::parse_request_line("count t=x", wire, error));
  CHECK(!svc::parse_request_line("frobnicate t=1", wire, error));
  CHECK(!svc::parse_request_line("", wire, error));
  CHECK(!svc::parse_request_line("count bogus", wire, error));

  // hello parses its version and rejects malformed greetings.
  CHECK(svc::parse_request_line("hello v=7", wire, error));
  CHECK(wire.op == svc::WireRequest::Op::kHello);
  CHECK_EQ(wire.hello_version, 7u);
  CHECK(!svc::parse_request_line("hello", wire, error));
  CHECK(!svc::parse_request_line("hello v=x", wire, error));
  CHECK(!svc::parse_request_line("hello bogus=1", wire, error));
}

/// A hand-driven socket session (no SocketClient, so no automatic
/// handshake): the server must reject a wrong-version hello and a missing
/// greeting with explicit `err protocol version mismatch` lines, while a
/// well-greeted session proceeds normally.
void test_protocol_version_handshake() {
  svc::QueryService service{core::Engine::open(dataset_dir())};
  svc::SocketServer server(
      service, qdv::test::scratch_dir("service_hello") / "qdv.sock");
  server.start();

  const auto raw_session = [&](const std::string& first_line) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string path = server.socket_path().string();
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = -1;
    for (int attempt = 0; fd < 0 && attempt < 100; ++attempt) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      CHECK(fd >= 0);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) != 0) {
        ::close(fd);
        fd = -1;
        ::usleep(10000);
      }
    }
    CHECK(fd >= 0);
    const std::string out = first_line + "\n";
    CHECK(::send(fd, out.data(), out.size(), 0) ==
          static_cast<ssize_t>(out.size()));
    std::string reply;
    char ch = 0;
    while (reply.find('\n') == std::string::npos &&
           ::recv(fd, &ch, 1, 0) == 1)
      reply.push_back(ch);
    ::close(fd);
    return reply;
  };

  // Stale client: wrong version in the greeting.
  const std::string stale = raw_session("hello v=1");
  CHECK(stale.find("err protocol version mismatch") == 0u);
  CHECK(stale.find("v1") != std::string::npos);
  CHECK(stale.find("v" + std::to_string(svc::kProtocolVersion)) !=
        std::string::npos);

  // Pre-versioning client: first line is not a greeting at all.
  const std::string ungreeted = raw_session("ping");
  CHECK(ungreeted.find("err protocol version mismatch") == 0u);
  CHECK(ungreeted.find("hello v=" + std::to_string(svc::kProtocolVersion)) !=
        std::string::npos);

  // Matching greeting: answered ok, and the session is fully usable —
  // including a redundant mid-session hello.
  const std::string greeted = raw_session("hello v=" +
                                          std::to_string(svc::kProtocolVersion));
  CHECK_EQ(greeted, "ok qdv v=" + std::to_string(svc::kProtocolVersion) + "\n");
  svc::SocketClient client(server.socket_path());  // auto-handshake
  CHECK_EQ(client.request("ping"), "ok pong");
  CHECK_EQ(client.request("hello v=" + std::to_string(svc::kProtocolVersion)),
           "ok qdv v=" + std::to_string(svc::kProtocolVersion));
  server.stop();
}

void test_socket_server_end_to_end() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  svc::QueryService service{core::Engine::open(dataset_dir())};
  svc::SocketServer server(
      service, qdv::test::scratch_dir("service_sock") / "qdv.sock");
  server.start();

  svc::SocketClient client(server.socket_path());
  CHECK_EQ(client.request("ping"), "ok pong");

  const core::Selection sel = engine.select("px > 1e9");
  std::string body;
  CHECK(svc::parse_response_line(
      client.request("count t=2 q=px > 1e9"), body));
  CHECK_EQ(body.find("count=" + std::to_string(sel.count(2))), 0u);

  CHECK(svc::parse_response_line(client.request("sum t=2 x=px q=px > 1e9"), body));
  CHECK(body.find("mean=") != std::string::npos);

  CHECK(!svc::parse_response_line(client.request("count t=2 q=px >"), body));
  CHECK(!svc::parse_response_line(client.request("bogus"), body));

  // A second concurrent connection gets its own session.
  std::thread other([&] {
    svc::SocketClient c2(server.socket_path());
    std::string b;
    CHECK(svc::parse_response_line(c2.request("ids t=2 limit=3 q=px > 1e9"), b));
    CHECK(b.find("ids=") != std::string::npos);
    CHECK(svc::parse_response_line(c2.request("stats"), b));
    CHECK(b.find("submitted=") != std::string::npos);
  });
  other.join();
  CHECK_EQ(client.request("quit"), "ok bye");
  server.stop();
  CHECK(server.connections() >= 2);
  CHECK(!std::filesystem::exists(server.socket_path()));
}

}  // namespace

int main() {
  test_request_kinds_match_selection();
  test_result_cache_and_semantic_coalescing();
  test_inflight_coalescing_single_flight();
  test_priority_and_fairness_order();
  test_session_byte_budget();
  test_protocol_round_trip();
  test_protocol_version_handshake();
  test_socket_server_end_to_end();
  return qdv::test::finish("test_service");
}
