// Property-based differential fuzzer for the query pipeline (random AST /
// dataset machinery shared with test_dist via fuzz_common.hpp). Fixed-seed
// random ASTs over a random table must (1) round-trip exactly through
// parse(to_string(q)) — raw and canonicalized — and (2) produce
// bit-identical selections through the planner/index path and a naive
// sequential scan. A second phase replays a random query stream against an
// eager in-memory dataset and a lazy SegmentedBitmapIndex dataset under a
// randomly shrunk MemoryBudget: answers must stay bit-identical while
// evictions are actually happening. A third phase fuzzes the zoom tier
// (DESIGN.md §14): random viewport/zoom sequences — and four concurrent
// zoom sessions, for the TSan job — where kAuto (pyramid) and kExact must
// agree bit for bit whatever route kAuto picks.
//
// ctest runs a reduced iteration count; set QDV_FUZZ_ITERS for a deep run.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/selection.hpp"
#include "fuzz_common.hpp"
#include "io/checksum.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;
namespace fuzz = qdv::test::fuzz;

void test_round_trip_and_plan_vs_scan() {
  const std::filesystem::path dir =
      fuzz::write_random_dataset("fuzz_query", /*timesteps=*/1, /*rows=*/500,
                                 /*seed=*/0x5eed, /*index_bins=*/32);
  const core::Engine engine = core::Engine::open(dir);
  const io::TimestepTable& table = engine.dataset().table(0);
  std::uint64_t state = 0xf22dull;
  const std::size_t iters = fuzz::iterations();
  for (std::size_t i = 0; i < iters; ++i) {
    const QueryPtr q = fuzz::random_query(state, 1 + fuzz::next(state) % 3);

    // Exact text round-trip, raw and canonicalized.
    const std::string text = q->to_string();
    CHECK_EQ(parse_query(text)->to_string(), text);
    const QueryPtr canonical = core::canonicalize(q);
    const std::string canonical_text = canonical->to_string();
    CHECK_EQ(parse_query(canonical_text)->to_string(), canonical_text);
    // Canonicalization is a fixed point.
    CHECK_EQ(core::canonicalize(canonical)->to_string(), canonical_text);

    // Planner/index execution vs a naive sequential scan of the ORIGINAL
    // tree: bit-identical selections.
    const core::Selection planned = engine.select(q);
    const BitVector scanned = table.query(*q, EvalMode::kScan);
    CHECK(planned.bits(0)->to_positions() == scanned.to_positions());
    CHECK_EQ(planned.count(0), scanned.count());
  }
}

void test_out_of_core_differential() {
  const std::filesystem::path dir = fuzz::write_random_dataset(
      "fuzz_outofcore", /*timesteps=*/3, /*rows=*/400,
      /*seed=*/0xacedu, /*index_bins=*/24);
  io::OpenOptions eager_options;
  eager_options.mode = io::LoadMode::kEager;
  const core::Engine eager{io::Dataset::open(dir, eager_options)};

  std::uint64_t state = 0xb1e55ull;
  io::OpenOptions lazy_options;  // kLazy: mmap + SegmentedBitmapIndex
  lazy_options.budget_bytes = 2048 + fuzz::next(state) % 8192;
  core::Engine lazy{io::Dataset::open(dir, lazy_options)};

  const std::size_t iters = fuzz::iterations();
  for (std::size_t i = 0; i < iters; ++i) {
    const QueryPtr q = fuzz::random_query(state, 1 + fuzz::next(state) % 3);
    for (std::size_t t = 0; t < 3; ++t) {
      const auto expect = eager.select(q).bits(t)->to_positions();
      const auto got = lazy.select(q).bits(t)->to_positions();
      CHECK(got == expect);
    }
    // Keep moving the budget mid-stream so evictions interleave
    // with decodes rather than only happening between queries.
    if (i % 5 == 4)
      lazy.set_memory_budget(1024 + fuzz::next(state) % 16384);
  }
  // The whole point: answers stayed identical while the lazy engine was
  // actually evicting columns/segments under budget pressure.
  const core::EngineStats stats = lazy.stats();
  CHECK(stats.io_evictions > 0);
  CHECK(stats.loaded_bytes > stats.resident_bytes);
}

// One random zoom request: random variable and viewport (mostly inside the
// domain, sometimes narrow enough to force the exact fallback, sometimes
// fully outside), random bin count, and — half the time — a random
// predicate whose shape decides servability on its own. The property is
// mode-independence: kAuto (pyramid tier when servable) and kExact must
// agree bit for bit on counts and edges, whatever route kAuto picks.
void check_random_zoom(const core::Engine& engine, std::uint64_t& state,
                       std::size_t timesteps) {
  const auto& vars = fuzz::variables();
  const std::size_t t = fuzz::next(state) % timesteps;
  const std::string& var = vars[fuzz::next(state) % vars.size()];
  const auto [dlo, dhi] = engine.dataset().global_domain(var);
  const double span = (dhi - dlo) * (fuzz::next(state) % 8 == 0
                                         ? 0.002
                                         : 0.1 + 0.9 * fuzz::uniform(state, 0, 1));
  const double lo = fuzz::uniform(state, dlo - 0.2 * (dhi - dlo), dhi);
  const std::size_t nbins = 4 + fuzz::next(state) % 61;
  core::Selection sel = engine.all();
  if (fuzz::next(state) % 2 == 0)
    sel = engine.select(fuzz::random_query(state, 1 + fuzz::next(state) % 2));

  if (fuzz::next(state) % 4 != 0) {
    const core::Zoom1DResult a = sel.zoom_histogram1d(
        t, var, lo, lo + span, nbins, core::ZoomMode::kAuto);
    const core::Zoom1DResult e = sel.zoom_histogram1d(
        t, var, lo, lo + span, nbins, core::ZoomMode::kExact);
    CHECK(a.hist.counts == e.hist.counts);
    CHECK(a.hist.bins.edges() == e.hist.bins.edges());
  } else {
    // 2D zoom over the (a, b) pair pyramid's plane.
    const auto [ylo_d, yhi_d] = engine.dataset().global_domain(vars[1]);
    const double ylo = fuzz::uniform(state, ylo_d, yhi_d);
    const double yspan = (yhi_d - ylo_d) * (0.1 + 0.8 * fuzz::uniform(state, 0, 1));
    const core::Zoom2DResult a = sel.zoom_histogram2d(
        t, vars[0], vars[1], lo, lo + span, ylo, ylo + yspan, nbins, nbins,
        core::ZoomMode::kAuto);
    const core::Zoom2DResult e = sel.zoom_histogram2d(
        t, vars[0], vars[1], lo, lo + span, ylo, ylo + yspan, nbins, nbins,
        core::ZoomMode::kExact);
    CHECK(a.hist.counts == e.hist.counts);
    CHECK(a.hist.xbins.edges() == e.hist.xbins.edges());
    CHECK(a.hist.ybins.edges() == e.hist.ybins.edges());
  }
}

void test_zoom_differential() {
  const std::filesystem::path dir = fuzz::write_random_dataset(
      "fuzz_zoom", /*timesteps=*/2, /*rows=*/600,
      /*seed=*/0x200fu, /*index_bins=*/32);
  const core::Engine engine = core::Engine::open(dir);
  std::uint64_t state = 0x51deull;
  const std::size_t iters = fuzz::iterations();
  for (std::size_t i = 0; i < iters; ++i)
    check_random_zoom(engine, state, 2);
  // The leg must have exercised both routes, not just the fallback.
  const core::EngineStats stats = engine.stats();
  CHECK(stats.pyramid_served > 0);
  CHECK(stats.pyramid_fallback > 0);
}

// Concurrent zoom sessions against one shared engine: the lazily-loaded
// pyramid levels, the zoom stats counters, and the bitvector cache are all
// shared mutable state — this leg exists for the TSan job as much as for
// the differential property itself.
void test_zoom_concurrent() {
  const std::filesystem::path dir = fuzz::write_random_dataset(
      "fuzz_zoom_mt", /*timesteps=*/2, /*rows=*/500,
      /*seed=*/0xc0ffu, /*index_bins=*/24);
  const core::Engine engine = core::Engine::open(dir);
  const std::size_t iters = std::max<std::size_t>(fuzz::iterations() / 4, 10);
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < 4; ++w)
    threads.emplace_back([&engine, w, iters] {
      std::uint64_t state = 0x7007ull + w * 0x9e3779b97f4a7c15ull;
      for (std::size_t i = 0; i < iters; ++i)
        check_random_zoom(engine, state, 2);
    });
  for (std::thread& th : threads) th.join();
  CHECK(engine.stats().pyramid_served > 0);
}

// Flip 1-4 random bytes of @p file in place (the sidecar stays pristine,
// so the damage is detectable).
void flip_bytes(const std::filesystem::path& file, std::uint64_t& state) {
  const std::uintmax_t size = std::filesystem::file_size(file);
  if (size == 0) return;
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  const std::size_t flips = 1 + fuzz::next(state) % 4;
  for (std::size_t i = 0; i < flips; ++i) {
    const std::uint64_t pos = fuzz::next(state) % size;
    f.seekg(static_cast<std::streamoff>(pos));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^
                             static_cast<char>(1 + fuzz::next(state) % 255));
    f.seekp(static_cast<std::streamoff>(pos));
    f.write(&byte, 1);
  }
  CHECK(f.good());
}

// Corruption leg (DESIGN.md §15): each iteration copies a pristine dataset,
// flips a few bytes of one random .bmi / .pyr / .f64 artifact, and replays
// random queries and zooms against a fresh engine (alternating eager/lazy).
// The property: every answer is bit-identical to the pristine scan/exact
// reference (degradation chose a clean path) or fails with the typed
// io::IntegrityError (the damage was ground truth) — never a crash, never
// silently wrong bits.
void test_corruption_differential() {
  const std::filesystem::path pristine = fuzz::write_random_dataset(
      "fuzz_corrupt_src", /*timesteps=*/1, /*rows=*/400,
      /*seed=*/0xdead5eedull, /*index_bins=*/24);
  const core::Engine reference = core::Engine::open(pristine);
  const io::TimestepTable& ref_table = reference.dataset().table(0);

  std::vector<std::filesystem::path> victims;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(pristine)) {
    const std::string ext = entry.path().extension().string();
    if (ext == ".bmi" || ext == ".pyr" || ext == ".f64")
      victims.push_back(std::filesystem::relative(entry.path(), pristine));
  }
  CHECK(victims.size() >= 9);  // 3 .bmi + 3 .f64 + 3+1 .pyr per timestep

  std::uint64_t state = 0xc0dedbadull;
  const std::size_t iters = std::max<std::size_t>(fuzz::iterations(200), 200);
  std::size_t matched = 0;
  std::size_t typed_errors = 0;
  std::uint64_t demotions = 0;
  const std::filesystem::path work =
      qdv::test::scratch_dir("fuzz_corrupt_work") / "ds";
  for (std::size_t i = 0; i < iters; ++i) {
    std::filesystem::remove_all(work);
    std::filesystem::copy(pristine, work,
                          std::filesystem::copy_options::recursive);
    flip_bytes(work / victims[fuzz::next(state) % victims.size()], state);

    try {
      io::OpenOptions options;
      if (i % 2 == 0) options.mode = io::LoadMode::kEager;
      core::Engine engine{io::Dataset::open(work, options)};
      for (int qn = 0; qn < 3; ++qn) {
        const QueryPtr q = fuzz::random_query(state, 1 + fuzz::next(state) % 2);
        try {
          const auto got = engine.select(q).bits(0)->to_positions();
          CHECK(got == ref_table.query(*q, EvalMode::kScan).to_positions());
          ++matched;
        } catch (const io::IntegrityError&) {
          ++typed_errors;
        }
      }
      // One zoom: kAuto and kExact on the SAME damaged store must stay
      // mode-independent — a quarantined pyramid is absent for both, so
      // they re-resolve to identical geometry. (Comparing against the
      // pristine engine would be wrong: pyramid availability legitimately
      // changes viewport snapping.)
      const auto& vars = fuzz::variables();
      const std::string& var = vars[fuzz::next(state) % vars.size()];
      const auto [dlo, dhi] = reference.dataset().global_domain(var);
      const double lo = fuzz::uniform(state, dlo, dhi);
      const double span = (dhi - dlo) * (0.1 + 0.8 * fuzz::uniform(state, 0, 1));
      const std::size_t nbins = 8 + fuzz::next(state) % 25;
      try {
        const core::Zoom1DResult got = engine.all().zoom_histogram1d(
            0, var, lo, lo + span, nbins, core::ZoomMode::kAuto);
        const core::Zoom1DResult want = engine.all().zoom_histogram1d(
            0, var, lo, lo + span, nbins, core::ZoomMode::kExact);
        CHECK(got.hist.counts == want.hist.counts);
        CHECK(got.hist.bins.edges() == want.hist.bins.edges());
        ++matched;
      } catch (const io::IntegrityError&) {
        ++typed_errors;
      }
      demotions += engine.stats().integrity_demotions;
    } catch (const io::IntegrityError&) {
      ++typed_errors;  // eager open of a damaged ground-truth artifact
    }
  }
  // The leg must have seen all three outcomes: clean degraded answers,
  // typed ground-truth failures, and actual quarantines.
  CHECK(matched > 0);
  CHECK(typed_errors > 0);
  CHECK(demotions > 0);
  std::printf("corruption: %zu matched, %zu typed errors, %llu demotions\n",
              matched, typed_errors,
              static_cast<unsigned long long>(demotions));
}

}  // namespace

int main() {
  test_round_trip_and_plan_vs_scan();
  test_out_of_core_differential();
  test_zoom_differential();
  test_zoom_concurrent();
  test_corruption_differential();
  return qdv::test::finish("test_fuzz_query");
}
