// Property-based differential fuzzer for the query pipeline. Fixed-seed
// random ASTs over a random table must (1) round-trip exactly through
// parse(to_string(q)) — raw and canonicalized — and (2) produce
// bit-identical selections through the planner/index path and a naive
// sequential scan. A second phase replays a random query stream against an
// eager in-memory dataset and a lazy SegmentedBitmapIndex dataset under a
// randomly shrunk MemoryBudget: answers must stay bit-identical while
// evictions are actually happening.
//
// ctest runs a reduced iteration count; set QDV_FUZZ_ITERS for a deep run.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bitmap/bitmap_index.hpp"
#include "core/selection.hpp"
#include "io/dataset.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;

std::uint64_t next(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

double uniform(std::uint64_t& state, double lo, double hi) {
  return lo + (hi - lo) * (static_cast<double>(next(state) % 1000003) / 1000003.0);
}

std::size_t iterations() {
  if (const char* env = std::getenv("QDV_FUZZ_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 60;  // reduced count for tier-1; deep runs override
}

const std::vector<std::string>& fuzz_variables() {
  static const std::vector<std::string> vars = {"a", "b", "c"};
  return vars;
}

template <typename T>
void write_binary(const std::filesystem::path& file, const std::vector<T>& data) {
  std::ofstream out(file, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(T)));
  CHECK(out.good());
}

/// Random single-variable column: each variable gets a different shape so
/// the fuzz queries cross uniform, clustered (duplicate-heavy, so `==`
/// matches rows), and skewed positive data.
std::vector<double> random_column(const std::string& var, std::size_t rows,
                                  std::uint64_t& state) {
  std::vector<double> values(rows);
  for (double& v : values) {
    if (var == "a") {
      v = uniform(state, -100.0, 100.0);
    } else if (var == "b") {
      v = 0.5 * static_cast<double>(next(state) % 41) - 10.0;  // 0.5 grid
    } else {
      const double u = uniform(state, 0.0, 10.0);
      v = u * u * u;  // skewed, [0, 1000]
    }
  }
  return values;
}

/// Write a complete random dataset (columns + bitmap/id indices + meta +
/// manifest) the io layer can open in either load mode.
std::filesystem::path write_random_dataset(const std::string& name,
                                           std::size_t timesteps,
                                           std::size_t rows, std::uint64_t seed,
                                           std::size_t index_bins) {
  const std::filesystem::path dir = qdv::test::scratch_dir(name);
  std::uint64_t state = seed | 1;
  const auto& vars = fuzz_variables();
  std::vector<std::pair<double, double>> global(
      vars.size(), {1e300, -1e300});
  for (std::size_t t = 0; t < timesteps; ++t) {
    const std::filesystem::path step = dir / io::step_dir_name(t);
    std::filesystem::create_directories(step);
    std::ofstream meta(step / "meta.txt");
    meta.precision(17);
    meta << "rows " << rows << "\n";
    for (std::size_t v = 0; v < vars.size(); ++v) {
      const std::vector<double> column = random_column(vars[v], rows, state);
      double lo = column.front(), hi = column.front();
      for (const double x : column) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      meta << "domain " << vars[v] << ' ' << lo << ' ' << hi << "\n";
      global[v].first = std::min(global[v].first, lo);
      global[v].second = std::max(global[v].second, hi);
      write_binary(step / (vars[v] + ".f64"), column);
      const BitmapIndex index = BitmapIndex::build(
          column, make_uniform_bins(lo, hi > lo ? hi : lo + 1.0, index_bins));
      std::ofstream out(step / (vars[v] + ".bmi"), std::ios::binary);
      index.save(out);
    }
    // Shuffled unique ids so id lookups exercise real permutations.
    std::vector<std::uint64_t> ids(rows);
    for (std::size_t i = 0; i < rows; ++i) ids[i] = 1000 + i;
    for (std::size_t i = rows; i > 1; --i)
      std::swap(ids[i - 1], ids[next(state) % i]);
    write_binary(step / "id.u64", ids);
    const IdIndex id_index = IdIndex::build(ids);
    std::ofstream out(step / "id.idi", std::ios::binary);
    id_index.save(out);
  }
  std::ofstream manifest(dir / io::kManifestName);
  manifest.precision(17);
  manifest << "qdv_dataset 1\n";
  manifest << "timesteps " << timesteps << "\n";
  manifest << "variables";
  for (const auto& v : vars) manifest << ' ' << v;
  manifest << "\n";
  for (std::size_t v = 0; v < vars.size(); ++v)
    manifest << "domain " << vars[v] << ' ' << global[v].first << ' '
             << global[v].second << "\n";
  return dir;
}

/// Random comparison leaf. Values mostly land inside the variable's domain
/// (interesting selectivities), sometimes outside (empty / full answers),
/// and for the clustered variable often exactly on a stored value so `==`
/// and boundary comparisons hit real rows.
QueryPtr random_leaf(std::uint64_t& state) {
  const auto& vars = fuzz_variables();
  const std::string& var = vars[next(state) % vars.size()];
  static constexpr CompareOp kOps[] = {CompareOp::kLt, CompareOp::kLe,
                                       CompareOp::kGt, CompareOp::kGe,
                                       CompareOp::kEq};
  const CompareOp op = kOps[next(state) % 5];
  double value = 0.0;
  if (var == "a") {
    value = uniform(state, -120.0, 120.0);
  } else if (var == "b") {
    value = 0.5 * static_cast<double>(next(state) % 45) - 11.0;  // on-grid
  } else {
    value = uniform(state, -10.0, 1100.0);
  }
  return Query::compare(var, op, value);
}

QueryPtr random_query(std::uint64_t& state, std::size_t depth) {
  const std::uint64_t r = next(state) % 100;
  if (depth == 0 || r < 50) return random_leaf(state);
  if (r < 72) return Query::land(random_query(state, depth - 1),
                                 random_query(state, depth - 1));
  if (r < 92) return Query::lor(random_query(state, depth - 1),
                                random_query(state, depth - 1));
  return Query::lnot(random_query(state, depth - 1));
}

void test_round_trip_and_plan_vs_scan() {
  const std::filesystem::path dir =
      write_random_dataset("fuzz_query", /*timesteps=*/1, /*rows=*/500,
                           /*seed=*/0x5eed, /*index_bins=*/32);
  const core::Engine engine = core::Engine::open(dir);
  const io::TimestepTable& table = engine.dataset().table(0);
  std::uint64_t state = 0xf22dull;
  const std::size_t iters = iterations();
  for (std::size_t i = 0; i < iters; ++i) {
    const QueryPtr q = random_query(state, 1 + next(state) % 3);

    // Exact text round-trip, raw and canonicalized.
    const std::string text = q->to_string();
    CHECK_EQ(parse_query(text)->to_string(), text);
    const QueryPtr canonical = core::canonicalize(q);
    const std::string canonical_text = canonical->to_string();
    CHECK_EQ(parse_query(canonical_text)->to_string(), canonical_text);
    // Canonicalization is a fixed point.
    CHECK_EQ(core::canonicalize(canonical)->to_string(), canonical_text);

    // Planner/index execution vs a naive sequential scan of the ORIGINAL
    // tree: bit-identical selections.
    const core::Selection planned = engine.select(q);
    const BitVector scanned = table.query(*q, EvalMode::kScan);
    CHECK(planned.bits(0)->to_positions() == scanned.to_positions());
    CHECK_EQ(planned.count(0), scanned.count());
  }
}

void test_out_of_core_differential() {
  const std::filesystem::path dir =
      write_random_dataset("fuzz_outofcore", /*timesteps=*/3, /*rows=*/400,
                           /*seed=*/0xacedu, /*index_bins=*/24);
  io::OpenOptions eager_options;
  eager_options.mode = io::LoadMode::kEager;
  const core::Engine eager{io::Dataset::open(dir, eager_options)};

  std::uint64_t state = 0xb1e55ull;
  io::OpenOptions lazy_options;  // kLazy: mmap + SegmentedBitmapIndex
  lazy_options.budget_bytes = 2048 + next(state) % 8192;
  core::Engine lazy{io::Dataset::open(dir, lazy_options)};

  const std::size_t iters = iterations();
  for (std::size_t i = 0; i < iters; ++i) {
    const QueryPtr q = random_query(state, 1 + next(state) % 3);
    for (std::size_t t = 0; t < 3; ++t) {
      const auto expect = eager.select(q).bits(t)->to_positions();
      const auto got = lazy.select(q).bits(t)->to_positions();
      CHECK(got == expect);
    }
    // Keep moving the budget mid-stream so evictions interleave
    // with decodes rather than only happening between queries.
    if (i % 5 == 4)
      lazy.set_memory_budget(1024 + next(state) % 16384);
  }
  // The whole point: answers stayed identical while the lazy engine was
  // actually evicting columns/segments under budget pressure.
  const core::EngineStats stats = lazy.stats();
  CHECK(stats.io_evictions > 0);
  CHECK(stats.loaded_bytes > stats.resident_bytes);
}

}  // namespace

int main() {
  test_round_trip_and_plan_vs_scan();
  test_out_of_core_differential();
  return qdv::test::finish("test_fuzz_query");
}
