// Property-based differential fuzzer for the query pipeline (random AST /
// dataset machinery shared with test_dist via fuzz_common.hpp). Fixed-seed
// random ASTs over a random table must (1) round-trip exactly through
// parse(to_string(q)) — raw and canonicalized — and (2) produce
// bit-identical selections through the planner/index path and a naive
// sequential scan. A second phase replays a random query stream against an
// eager in-memory dataset and a lazy SegmentedBitmapIndex dataset under a
// randomly shrunk MemoryBudget: answers must stay bit-identical while
// evictions are actually happening.
//
// ctest runs a reduced iteration count; set QDV_FUZZ_ITERS for a deep run.
#include <cstdint>
#include <string>

#include "core/selection.hpp"
#include "fuzz_common.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;
namespace fuzz = qdv::test::fuzz;

void test_round_trip_and_plan_vs_scan() {
  const std::filesystem::path dir =
      fuzz::write_random_dataset("fuzz_query", /*timesteps=*/1, /*rows=*/500,
                                 /*seed=*/0x5eed, /*index_bins=*/32);
  const core::Engine engine = core::Engine::open(dir);
  const io::TimestepTable& table = engine.dataset().table(0);
  std::uint64_t state = 0xf22dull;
  const std::size_t iters = fuzz::iterations();
  for (std::size_t i = 0; i < iters; ++i) {
    const QueryPtr q = fuzz::random_query(state, 1 + fuzz::next(state) % 3);

    // Exact text round-trip, raw and canonicalized.
    const std::string text = q->to_string();
    CHECK_EQ(parse_query(text)->to_string(), text);
    const QueryPtr canonical = core::canonicalize(q);
    const std::string canonical_text = canonical->to_string();
    CHECK_EQ(parse_query(canonical_text)->to_string(), canonical_text);
    // Canonicalization is a fixed point.
    CHECK_EQ(core::canonicalize(canonical)->to_string(), canonical_text);

    // Planner/index execution vs a naive sequential scan of the ORIGINAL
    // tree: bit-identical selections.
    const core::Selection planned = engine.select(q);
    const BitVector scanned = table.query(*q, EvalMode::kScan);
    CHECK(planned.bits(0)->to_positions() == scanned.to_positions());
    CHECK_EQ(planned.count(0), scanned.count());
  }
}

void test_out_of_core_differential() {
  const std::filesystem::path dir = fuzz::write_random_dataset(
      "fuzz_outofcore", /*timesteps=*/3, /*rows=*/400,
      /*seed=*/0xacedu, /*index_bins=*/24);
  io::OpenOptions eager_options;
  eager_options.mode = io::LoadMode::kEager;
  const core::Engine eager{io::Dataset::open(dir, eager_options)};

  std::uint64_t state = 0xb1e55ull;
  io::OpenOptions lazy_options;  // kLazy: mmap + SegmentedBitmapIndex
  lazy_options.budget_bytes = 2048 + fuzz::next(state) % 8192;
  core::Engine lazy{io::Dataset::open(dir, lazy_options)};

  const std::size_t iters = fuzz::iterations();
  for (std::size_t i = 0; i < iters; ++i) {
    const QueryPtr q = fuzz::random_query(state, 1 + fuzz::next(state) % 3);
    for (std::size_t t = 0; t < 3; ++t) {
      const auto expect = eager.select(q).bits(t)->to_positions();
      const auto got = lazy.select(q).bits(t)->to_positions();
      CHECK(got == expect);
    }
    // Keep moving the budget mid-stream so evictions interleave
    // with decodes rather than only happening between queries.
    if (i % 5 == 4)
      lazy.set_memory_budget(1024 + fuzz::next(state) % 16384);
  }
  // The whole point: answers stayed identical while the lazy engine was
  // actually evicting columns/segments under budget pressure.
  const core::EngineStats stats = lazy.stats();
  CHECK(stats.io_evictions > 0);
  CHECK(stats.loaded_bytes > stats.resident_bytes);
}

}  // namespace

int main() {
  test_round_trip_and_plan_vs_scan();
  test_out_of_core_differential();
  return qdv::test::finish("test_fuzz_query");
}
