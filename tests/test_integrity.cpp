// Integrity layer suite (DESIGN.md §15): CRC32C vectors and chaining, the
// checksum sidecar round-trip, fsck over pristine / damaged / sidecar-less
// datasets, deterministic fault-injector behavior, quarantine-and-demote
// degradation against a pristine reference, and the hardened service edges
// (deadline expiry, load shedding, and their wire statuses).
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/selection.hpp"
#include "fault/fault.hpp"
#include "fuzz_common.hpp"
#include "io/checksum.hpp"
#include "svc/protocol.hpp"
#include "svc/query_service.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;
namespace fuzz = qdv::test::fuzz;

// ----------------------------------------------------------------- crc32c ---

void test_crc32c_vectors() {
  // The CRC-32C check value: crc of the ASCII digits "123456789".
  const char digits[] = "123456789";
  CHECK_EQ(io::crc32c(digits, 9), 0xE3069283u);
  CHECK_EQ(io::crc32c(nullptr, 0), 0u);
  // Chaining: the crc of a split buffer equals the one-shot crc.
  const std::uint32_t head = io::crc32c(digits, 4);
  CHECK_EQ(io::crc32c(digits + 4, 5, head), 0xE3069283u);
  // Any flipped bit changes the sum.
  char copy[9];
  std::copy(digits, digits + 9, copy);
  copy[5] ^= 0x10;
  CHECK(io::crc32c(copy, 9) != 0xE3069283u);
}

void test_crc32c_file() {
  const std::filesystem::path dir = qdv::test::scratch_dir("integrity_crcfile");
  const std::filesystem::path file = dir / "blob.bin";
  std::string data(70000, '\0');  // bigger than one streaming chunk
  std::uint64_t state = 0xc4c32c;
  for (char& c : data) c = static_cast<char>(fuzz::next(state));
  {
    std::ofstream out(file, std::ios::binary);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  CHECK_EQ(io::crc32c_file(file), io::crc32c(data.data(), data.size()));
  CHECK_THROWS(io::crc32c_file(dir / "no_such_file"));
}

// ---------------------------------------------------------------- sidecar ---

void test_sidecar_round_trip() {
  const std::filesystem::path dir = qdv::test::scratch_dir("integrity_sidecar");
  CHECK(io::ChecksumSet::load_dir(dir) == nullptr);  // no sidecar yet

  io::ChecksumSet set;
  set.set_file("x.f64", 800, 0xdeadbeefu);
  set.set_file("x.bmi", 96, 0x77u);
  set.add_section("x.bmi", 0, 64, 0x1234u);
  set.add_section("x.bmi", 64, 32, 0x5678u);
  set.save_dir(dir);

  const auto back = io::ChecksumSet::load_dir(dir);
  CHECK(back != nullptr);
  const io::ChecksumSet::FileSum* f = back->file("x.f64");
  CHECK(f != nullptr && f->size == 800 && f->crc == 0xdeadbeefu);
  CHECK(back->file("missing") == nullptr);
  const io::ChecksumSet::Section* s = back->section("x.bmi", 64, 32);
  CHECK(s != nullptr && s->crc == 0x5678u);
  CHECK(back->section("x.bmi", 64, 33) == nullptr);  // exact match only
  CHECK(back->sections("x.bmi") != nullptr &&
        back->sections("x.bmi")->size() == 2);
  const std::vector<std::string> names = back->file_names();
  CHECK_EQ(names.size(), 2u);
  CHECK(std::find(names.begin(), names.end(), "x.f64") != names.end());

  // A malformed sidecar is a loud error, not a silent "unverified".
  {
    std::ofstream out(dir / io::kChecksumSidecarName);
    out << "qdv_checksums 1\nfile broken\n";
  }
  CHECK_THROWS(io::ChecksumSet::load_dir(dir));
}

// ------------------------------------------------------------------- fsck ---

void flip_byte_at(const std::filesystem::path& file, std::uint64_t offset) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
  CHECK(f.good());
}

void test_fsck() {
  const std::filesystem::path dir = fuzz::write_random_dataset(
      "integrity_fsck", /*timesteps=*/1, /*rows=*/300, /*seed=*/0xf5c4,
      /*index_bins=*/16);

  // Pristine: everything checks out, nothing is damaged.
  io::FsckReport clean = io::fsck_dataset(dir);
  CHECK(!clean.damaged());
  CHECK(clean.ok > 0);
  CHECK_EQ(clean.failed, 0u);

  // One flipped byte deep inside a .bmi: fsck names the file as failed and
  // drills into its sections to localize the damage.
  const std::filesystem::path bmi = dir / io::step_dir_name(0) / "a.bmi";
  flip_byte_at(bmi, std::filesystem::file_size(bmi) - 9);
  io::FsckReport damaged = io::fsck_dataset(dir);
  CHECK(damaged.damaged());
  CHECK(damaged.failed > 0);
  CHECK(damaged.sections_checked > 0);
  bool named = false;
  for (const io::FsckEntry& e : damaged.entries)
    if (e.status == io::FsckEntry::Status::kFailed &&
        e.rel.find("a.bmi") != std::string::npos)
      named = true;
  CHECK(named);

  // Dropping a sidecar turns that directory's artifacts into "unverified",
  // never into failures — pre-checksum datasets keep working.
  std::filesystem::remove(dir / io::step_dir_name(0) /
                          io::kChecksumSidecarName);
  io::FsckReport legacy = io::fsck_dataset(dir);
  CHECK(!legacy.damaged());
  CHECK(legacy.unverified > 0);

  CHECK_THROWS(io::fsck_dataset(dir / "not_a_dataset"));
}

// --------------------------------------------------------- fault injector ---

void test_fault_injector() {
  std::string error;
  CHECK(fault::configure("seed:7,spec:file.flip@1.0", &error));
  CHECK(fault::enabled());
  CHECK(fault::roll(fault::Site::kFile, fault::Kind::kBitFlip));
  CHECK(!fault::roll(fault::Site::kWire, fault::Kind::kBitFlip));  // other site
  CHECK(!fault::roll(fault::Site::kFile, fault::Kind::kEintr));    // other kind
  const std::uint64_t d1 = fault::draw();
  const std::uint64_t d2 = fault::draw();
  CHECK(fault::injected(fault::Site::kFile, fault::Kind::kBitFlip) >= 1);
  CHECK(fault::injected_total() >= 1);

  // Same seed, same stream: a failing chaos run replays exactly.
  CHECK(fault::configure("seed:7,spec:file.flip@1.0", &error));
  CHECK(fault::roll(fault::Site::kFile, fault::Kind::kBitFlip));
  CHECK_EQ(fault::draw(), d1);
  CHECK_EQ(fault::draw(), d2);

  // Malformed specs are rejected and leave the previous schedule running.
  CHECK(!fault::configure("spec:bogus", &error));
  CHECK(!error.empty());
  CHECK(fault::enabled());

  fault::reset();
  CHECK(!fault::enabled());
  CHECK(!fault::roll(fault::Site::kFile, fault::Kind::kBitFlip));
  CHECK_EQ(fault::injected_total(), 0u);
}

// ------------------------------------------------------------ degradation ---

void test_bitmap_demotion_matches_scan() {
  const std::filesystem::path pristine = fuzz::write_random_dataset(
      "integrity_demote_src", /*timesteps=*/1, /*rows=*/500, /*seed=*/0xdead,
      /*index_bins=*/24);
  const core::Engine reference = core::Engine::open(pristine);

  const std::filesystem::path dir =
      qdv::test::scratch_dir("integrity_demote") / "ds";
  std::filesystem::copy(pristine, dir,
                        std::filesystem::copy_options::recursive);
  const std::filesystem::path bmi = dir / io::step_dir_name(0) / "a.bmi";
  flip_byte_at(bmi, std::filesystem::file_size(bmi) - 9);

  const core::Engine engine = core::Engine::open(dir);
  const QueryPtr q = parse_query("a > 0");
  const auto want =
      reference.dataset().table(0).query(*q, EvalMode::kScan).to_positions();
  // First query demotes the damaged index to a column scan — same bits.
  CHECK(engine.select(q).bits(0)->to_positions() == want);
  const core::EngineStats after = engine.stats();
  CHECK(after.integrity_demotions >= 1);
  // Quarantine is sticky and counted once: a second query neither
  // re-verifies nor re-demotes.
  CHECK(engine.select("a > 0.5").bits(0)->to_positions() ==
        reference.select("a > 0.5").bits(0)->to_positions());
  CHECK_EQ(engine.stats().integrity_demotions, after.integrity_demotions);
  // Forcing the index path on a quarantined index is a typed error.
  CHECK_THROWS(engine.dataset().table(0).query(*q, EvalMode::kIndex));
}

void test_pyramid_demotion_matches_exact() {
  const std::filesystem::path pristine = fuzz::write_random_dataset(
      "integrity_pyr_src", /*timesteps=*/1, /*rows=*/500, /*seed=*/0xace,
      /*index_bins=*/24);
  const core::Engine reference = core::Engine::open(pristine);

  const std::filesystem::path dir =
      qdv::test::scratch_dir("integrity_pyr") / "ds";
  std::filesystem::copy(pristine, dir,
                        std::filesystem::copy_options::recursive);
  // Damage a level count array (levels live after the eager header+edges
  // block, so the tail of the file is always level payload). The level's
  // section checksum fails on first touch, counts a failure, and the whole
  // pyramid quarantines.
  const std::filesystem::path pyr =
      dir / io::step_dir_name(0) / agg::pyramid_filename("a");
  flip_byte_at(pyr, std::filesystem::file_size(pyr) - 5);

  const core::Engine engine = core::Engine::open(dir);
  const auto [lo, hi] = reference.dataset().global_domain("a");
  // Full-domain zooms at every level width (leaf is 32 bins): one of them
  // touches the damaged array. Mode-independence must hold on the damaged
  // store itself — after quarantine the pyramid reports as absent, so
  // kAuto and kExact re-resolve to the identical exact-kernel answer.
  bool served_exact = false;
  for (std::size_t nbins : {1, 2, 4, 8, 16, 32}) {
    const core::Zoom1DResult got = engine.all().zoom_histogram1d(
        0, "a", lo, hi, nbins, core::ZoomMode::kAuto);
    const core::Zoom1DResult want = engine.all().zoom_histogram1d(
        0, "a", lo, hi, nbins, core::ZoomMode::kExact);
    CHECK(got.hist.counts == want.hist.counts);
    CHECK(got.hist.bins.edges() == want.hist.bins.edges());
    if (!got.pyramid) served_exact = true;
  }
  CHECK(served_exact);  // the quarantined pyramid stopped serving
  const core::EngineStats stats = engine.stats();
  CHECK(stats.integrity_demotions >= 1);
  CHECK(stats.integrity_failures >= 1);
}

void test_corrupt_column_is_typed_error() {
  const std::filesystem::path pristine = fuzz::write_random_dataset(
      "integrity_col_src", /*timesteps=*/1, /*rows=*/300, /*seed=*/0xc01,
      /*index_bins=*/16);
  const std::filesystem::path dir =
      qdv::test::scratch_dir("integrity_col") / "ds";
  std::filesystem::copy(pristine, dir,
                        std::filesystem::copy_options::recursive);
  flip_byte_at(dir / io::step_dir_name(0) / "a.f64", 40);

  // Eager mode verifies the whole file on first column touch: typed
  // failure before any value is served.
  io::OpenOptions eager;
  eager.mode = io::LoadMode::kEager;
  CHECK_THROWS((void)io::Dataset::open(dir, eager).table(0).column("a"));

  // Lazy open succeeds; the scan of the damaged column — ground truth, no
  // fallback — fails typed on first touch.
  const core::Engine engine = core::Engine::open(dir);
  bool typed = false;
  try {
    (void)engine.dataset().table(0).query(*parse_query("a > 0"),
                                          EvalMode::kScan);
  } catch (const io::IntegrityError&) {
    typed = true;
  }
  CHECK(typed);
}

// ---------------------------------------------------------- service edges ---

void test_service_deadline_and_shedding() {
  const std::filesystem::path dir = fuzz::write_random_dataset(
      "integrity_svc", /*timesteps=*/1, /*rows=*/4000, /*seed=*/0x5e1f,
      /*index_bins=*/24);

  // Leg 1 — load shedding: one dispatch slot, a shed threshold far below
  // the flood size. Some requests execute, some bounce with kRetryLater.
  {
    svc::ServiceConfig config;
    config.max_concurrency = 1;
    config.cache_results = false;
    config.shed_queue_depth = 8;
    svc::QueryService service{core::Engine::open(dir), config};
    const auto session = service.open_session("shed");
    std::vector<svc::ResultFuture> futures;
    for (int i = 0; i < 64; ++i) {
      svc::Request r;
      r.kind = svc::RequestKind::kHistogram1D;
      r.var_x = "a";
      r.nxbins = 16 + i;  // distinct keys: no coalescing
      r.query = "a > " + std::to_string(i);
      futures.push_back(service.submit(session, std::move(r)));
    }
    std::size_t ok = 0, shed = 0;
    for (auto& f : futures) {
      const svc::ResultPtr r = f.get();
      if (r->status == svc::Status::kOk) ++ok;
      if (r->status == svc::Status::kRetryLater) ++shed;
    }
    service.drain();
    CHECK(ok > 0);
    CHECK(shed > 0);
    const svc::ServiceStats stats = service.stats();
    CHECK_EQ(stats.rejected_shed, shed);
    CHECK_EQ(ok + shed, futures.size());
    // The engine's integrity counters surface through the service stats
    // (pristine dataset: verifications happened, no failures).
    CHECK(stats.integrity_verified > 0);
    CHECK_EQ(stats.integrity_failures, 0u);
    CHECK_EQ(stats.integrity_demotions, 0u);
    service.close_session(session);
  }

  // Leg 2 — deadlines: no shedding, a few deliberately slow requests
  // (multi-million-bin histograms: allocation + zeroing alone dwarfs 1 ms)
  // hog the single worker, then a batch with a 1 ms budget queues behind
  // them. FIFO dispatch guarantees the batch waits out its budget.
  {
    svc::ServiceConfig config;
    config.max_concurrency = 1;
    config.cache_results = false;
    svc::QueryService service{core::Engine::open(dir), config};
    const auto session = service.open_session("deadline");
    std::vector<svc::ResultFuture> futures;
    for (int i = 0; i < 20; ++i) {
      svc::Request r;
      r.kind = svc::RequestKind::kHistogram1D;
      r.var_x = "a";
      if (i < 4) {
        r.nxbins = 4'000'000 + static_cast<std::size_t>(i);  // slow blocker
        r.query = "a > " + std::to_string(i);
      } else {
        r.nxbins = 16 + static_cast<std::size_t>(i);
        r.query = "a > " + std::to_string(i);
        r.deadline_ms = 1;
      }
      futures.push_back(service.submit(session, std::move(r)));
    }
    std::size_t ok = 0, expired = 0;
    for (auto& f : futures) {
      const svc::ResultPtr r = f.get();
      if (r->status == svc::Status::kOk) ++ok;
      if (r->status == svc::Status::kDeadlineExpired) ++expired;
    }
    service.drain();
    CHECK(ok > 0);
    CHECK(expired > 0);
    const svc::ServiceStats stats = service.stats();
    CHECK_EQ(stats.deadline_expired, expired);
    CHECK_EQ(ok + expired, futures.size());
    service.close_session(session);
  }
}

// --------------------------------------------------------------- protocol ---

void test_protocol_deadline_and_statuses() {
  svc::WireRequest wire;
  std::string error;
  CHECK(svc::parse_request_line("count t=0 deadline=250 q=a > 0", wire, error));
  CHECK_EQ(wire.request.deadline_ms, 250u);
  const std::string line = svc::format_request_line(wire);
  CHECK(line.find("deadline=250") != std::string::npos);
  svc::WireRequest back;
  CHECK(svc::parse_request_line(line, back, error));
  CHECK_EQ(back.request.deadline_ms, 250u);

  svc::Result r;
  r.status = svc::Status::kRetryLater;
  r.error = "shedding load; retry after 50 ms";
  CHECK(svc::format_response_line(r, 4).rfind("err retry-after", 0) == 0);
  r.status = svc::Status::kDeadlineExpired;
  CHECK(svc::format_response_line(r, 4).rfind("err deadline-expired", 0) == 0);

  svc::ServiceStats stats;
  stats.rejected_shed = 2;
  stats.deadline_expired = 1;
  stats.integrity_demotions = 3;
  const std::string sline = svc::format_stats_line(stats);
  CHECK(sline.find("shed=2") != std::string::npos);
  CHECK(sline.find("deadline_expired=1") != std::string::npos);
  CHECK(sline.find("integrity_demotions=3") != std::string::npos);
}

}  // namespace

int main() {
  test_crc32c_vectors();
  test_crc32c_file();
  test_sidecar_round_trip();
  test_fsck();
  test_fault_injector();
  test_bitmap_demotion_matches_scan();
  test_pyramid_demotion_matches_exact();
  test_corrupt_column_is_typed_error();
  test_service_deadline_and_shedding();
  test_protocol_deadline_and_statuses();
  return qdv::test::finish("test_integrity");
}
