// Planner canonicalization: cache-key stability under operand order and
// associativity, De Morgan push-down, interval fusion, and the explain()
// report. Dataset-free — structural checks only (test_engine covers the
// semantic equivalences against real tables).
#include <stdexcept>

#include "core/plan.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;
using core::canonicalize;
using core::cache_key;
using core::plan_query;

std::string key_of(const char* text) {
  const QueryPtr canonical = canonicalize(parse_query(text));
  CHECK(canonical != nullptr);
  return cache_key(*canonical);
}

void test_operand_order_is_canonical() {
  CHECK_EQ(key_of("a > 1 && b < 2"), key_of("b < 2 && a > 1"));
  CHECK_EQ(key_of("a > 1 || b < 2 || c == 3"), key_of("c == 3 || a > 1 || b < 2"));
}

void test_flattening_is_canonical() {
  CHECK_EQ(key_of("(a > 1 && b < 2) && c > 3"), key_of("a > 1 && (b < 2 && c > 3)"));
  CHECK_EQ(key_of("(a > 1 || b < 2) || c > 3"), key_of("a > 1 || (b < 2 || c > 3)"));
}

void test_duplicates_dropped() {
  CHECK_EQ(key_of("a > 1 && a > 1"), key_of("a > 1"));
  CHECK_EQ(key_of("a > 1 || (a > 1 || a > 1)"), key_of("a > 1"));
}

void test_de_morgan() {
  CHECK_EQ(key_of("!(a > 1 && b <= 2)"), key_of("a <= 1 || b > 2"));
  CHECK_EQ(key_of("!(a > 1 || b <= 2)"), key_of("a <= 1 && b > 2"));
  CHECK_EQ(key_of("!(!(a > 1))"), key_of("a > 1"));
  // Negated equality has no single-predicate complement: NOT stays, pushed
  // onto the leaf.
  const QueryPtr n = canonicalize(parse_query("!(a == 1 && b > 2)"));
  CHECK(n->kind() == Query::Kind::kOr);
}

void test_interval_fusion() {
  // lo < x && x < hi fuses into a single interval predicate.
  const QueryPtr q = canonicalize(parse_query("x > 1 && x <= 2"));
  CHECK(q->kind() == Query::Kind::kInterval);
  const auto& vq = static_cast<const IntervalQuery&>(*q);
  CHECK_EQ(vq.variable(), std::string("x"));
  CHECK(vq.interval() == (Interval{1.0, 2.0, true, false}));

  // Redundant bounds collapse to the tightest interval.
  const QueryPtr tight = canonicalize(parse_query("x > 1 && x < 5 && x < 3"));
  CHECK(tight->kind() == Query::Kind::kInterval);
  CHECK(static_cast<const IntervalQuery&>(*tight).interval() ==
        (Interval{1.0, 3.0, true, true}));

  // Same-direction bounds stay a single comparison, not an interval.
  const QueryPtr one_sided = canonicalize(parse_query("x > 1 && x >= 2"));
  CHECK(one_sided->kind() == Query::Kind::kCompare);
  const auto& cq = static_cast<const CompareQuery&>(*one_sided);
  CHECK(cq.op() == CompareOp::kGe);
  CHECK_EQ(cq.value(), 2.0);

  // A closed point becomes equality.
  const QueryPtr point = canonicalize(parse_query("x >= 1 && x <= 1"));
  CHECK(point->kind() == Query::Kind::kCompare);
  CHECK(static_cast<const CompareQuery&>(*point).op() == CompareOp::kEq);

  // Fusion only groups per variable; other conjuncts pass through.
  const QueryPtr mixed = canonicalize(parse_query("x > 1 && y > 0 && x < 2"));
  CHECK(mixed->kind() == Query::Kind::kAnd);
  CHECK_EQ(key_of("x > 1 && y > 0 && x < 2"), key_of("x > 1 && x < 2 && y > 0"));

  // No fusion across Or.
  const QueryPtr disjunct = canonicalize(parse_query("x > 1 || x < 0"));
  CHECK(disjunct->kind() == Query::Kind::kOr);
}

void test_fused_interval_round_trips() {
  // The fused predicate prints as a re-parseable conjunction that fuses
  // back to the identical key.
  const QueryPtr q = canonicalize(parse_query("x > 1 && x <= 2"));
  CHECK_EQ(key_of(q->to_string().c_str()), cache_key(*q));
}

void test_contradiction_folds_to_constant() {
  const QueryPtr q = canonicalize(parse_query("x > 5 && x < 1"));
  CHECK(q->kind() == Query::Kind::kInterval);
  CHECK(static_cast<const IntervalQuery&>(*q).interval().empty());
  const core::ExecutionPlan plan = plan_query(parse_query("x > 5 && x < 1"));
  CHECK(plan.steps().size() == 1);
  CHECK(plan.steps()[0].access == core::AccessPath::kConstant);
}

void test_explain_reports_fusion_and_access() {
  const core::ExecutionPlan plan =
      plan_query(parse_query("x > 1 && x < 3 && y > 0"));
  const std::string report = plan.explain();
  CHECK(report.find("fused interval") != std::string::npos);
  CHECK(report.find("bitmap-index(x)") != std::string::npos);
  CHECK(report.find("bitmap-index(y)") != std::string::npos);
  CHECK(report.find("cache-key:") != std::string::npos);
  CHECK_EQ(plan.steps().size(), 2u);
  CHECK(plan.steps()[0].fused || plan.steps()[1].fused);
}

void test_all_records_plan() {
  CHECK(canonicalize(nullptr) == nullptr);
  const core::ExecutionPlan plan = plan_query(nullptr);
  CHECK(plan.canonical() == nullptr);
  CHECK(plan.steps().empty());
  CHECK(plan.explain().find("<all records>") != std::string::npos);
}

void test_interval_intersect() {
  const Interval a = intersect(Interval::greater_than(1.0), Interval::at_most(3.0));
  CHECK(a == (Interval{1.0, 3.0, true, false}));
  // An open endpoint beats a closed one at the same value.
  const Interval b = intersect(Interval::greater_than(1.0), Interval::at_least(1.0));
  CHECK(b.lo_open);
  CHECK(intersect(Interval::less_than(1.0), Interval::greater_than(5.0)).empty());
  CHECK(!Interval::between(0.0, 1.0).empty());
  CHECK((Interval{2.0, 2.0, false, false}).contains(2.0));
  CHECK((Interval{2.0, 2.0, true, false}).empty());
}

}  // namespace

int main() {
  test_operand_order_is_canonical();
  test_flattening_is_canonical();
  test_duplicates_dropped();
  test_de_morgan();
  test_interval_fusion();
  test_fused_interval_round_trips();
  test_contradiction_folds_to_constant();
  test_explain_reports_fusion_and_access();
  test_all_records_plan();
  test_interval_intersect();
  return qdv::test::finish("test_plan");
}
