// Shared property-based fuzz machinery: the seeded xorshift generator, the
// random dataset writer (columns + bitmap/id indices + histogram pyramids +
// manifest), and the random query-AST generator. test_fuzz_query drives the single-process
// differential legs with it; test_dist reuses the exact same distributions
// for its scatter/gather-vs-local leg, so a distribution tweak here widens
// every fuzzer at once.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "agg/pyramid.hpp"
#include "bitmap/bitmap_index.hpp"
#include "core/query.hpp"
#include "io/checksum.hpp"
#include "io/dataset.hpp"
#include "test_common.hpp"

namespace qdv::test::fuzz {

inline std::uint64_t next(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

inline double uniform(std::uint64_t& state, double lo, double hi) {
  return lo + (hi - lo) * (static_cast<double>(next(state) % 1000003) / 1000003.0);
}

/// Iteration count for one fuzz leg: a reduced tier-1 default, deep runs
/// override with QDV_FUZZ_ITERS.
inline std::size_t iterations(std::size_t fallback = 60) {
  if (const char* env = std::getenv("QDV_FUZZ_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

inline const std::vector<std::string>& variables() {
  static const std::vector<std::string> vars = {"a", "b", "c"};
  return vars;
}

template <typename T>
void write_binary(const std::filesystem::path& file, const std::vector<T>& data) {
  std::ofstream out(file, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(T)));
  CHECK(out.good());
}

/// Random single-variable column: each variable gets a different shape so
/// the fuzz queries cross uniform, clustered (duplicate-heavy, so `==`
/// matches rows), and skewed positive data.
inline std::vector<double> random_column(const std::string& var,
                                         std::size_t rows,
                                         std::uint64_t& state) {
  std::vector<double> values(rows);
  for (double& v : values) {
    if (var == "a") {
      v = uniform(state, -100.0, 100.0);
    } else if (var == "b") {
      v = 0.5 * static_cast<double>(next(state) % 41) - 10.0;  // 0.5 grid
    } else {
      const double u = uniform(state, 0.0, 10.0);
      v = u * u * u;  // skewed, [0, 1000]
    }
  }
  return values;
}

/// Write a complete random dataset (columns + bitmap/id indices + meta +
/// manifest) the io layer can open in either load mode.
inline std::filesystem::path write_random_dataset(const std::string& name,
                                                  std::size_t timesteps,
                                                  std::size_t rows,
                                                  std::uint64_t seed,
                                                  std::size_t index_bins) {
  const std::filesystem::path dir = qdv::test::scratch_dir(name);
  std::uint64_t state = seed | 1;
  const auto& vars = variables();
  std::vector<std::pair<double, double>> global(vars.size(), {1e300, -1e300});
  for (std::size_t t = 0; t < timesteps; ++t) {
    const std::filesystem::path step = dir / io::step_dir_name(t);
    std::filesystem::create_directories(step);
    std::ofstream meta(step / "meta.txt");
    meta.precision(17);
    meta << "rows " << rows << "\n";
    std::vector<std::vector<double>> columns;
    std::vector<std::pair<double, double>> domains;
    for (std::size_t v = 0; v < vars.size(); ++v) {
      std::vector<double> column = random_column(vars[v], rows, state);
      double lo = column.front(), hi = column.front();
      for (const double x : column) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      meta << "domain " << vars[v] << ' ' << lo << ' ' << hi << "\n";
      global[v].first = std::min(global[v].first, lo);
      global[v].second = std::max(global[v].second, hi);
      write_binary(step / (vars[v] + ".f64"), column);
      const double safe_hi = hi > lo ? hi : lo + 1.0;
      const BitmapIndex index = BitmapIndex::build(
          column, make_uniform_bins(lo, safe_hi, index_bins));
      std::ofstream out(step / (vars[v] + ".bmi"), std::ios::binary);
      index.save(out);
      // Histogram pyramids next to the .bmi segments (DESIGN.md §14): a
      // 32-leaf 1D pyramid per variable so the zoom fuzz legs route through
      // the pyramid tier on the same random data.
      agg::Pyramid::build1d(column, make_uniform_bins(lo, safe_hi, 32))
          .save(step / agg::pyramid_filename(vars[v]));
      columns.push_back(std::move(column));
      domains.emplace_back(lo, safe_hi);
    }
    // Pair pyramid over (a, b) for conditioned-zoom coverage.
    agg::Pyramid::build2d(columns[0], columns[1],
                          make_uniform_bins(domains[0].first,
                                            domains[0].second, 16),
                          make_uniform_bins(domains[1].first,
                                            domains[1].second, 16))
        .save(step / agg::pyramid_filename(vars[0], vars[1]));
    // Shuffled unique ids so id lookups exercise real permutations.
    std::vector<std::uint64_t> ids(rows);
    for (std::size_t i = 0; i < rows; ++i) ids[i] = 1000 + i;
    for (std::size_t i = rows; i > 1; --i)
      std::swap(ids[i - 1], ids[next(state) % i]);
    write_binary(step / "id.u64", ids);
    const IdIndex id_index = IdIndex::build(ids);
    std::ofstream out(step / "id.idi", std::ios::binary);
    id_index.save(out);
  }
  std::ofstream manifest(dir / io::kManifestName);
  manifest.precision(17);
  manifest << "qdv_dataset 1\n";
  manifest << "timesteps " << timesteps << "\n";
  manifest << "variables";
  for (const auto& v : vars) manifest << ' ' << v;
  manifest << "\n";
  for (std::size_t v = 0; v < vars.size(); ++v)
    manifest << "domain " << vars[v] << ' ' << global[v].first << ' '
             << global[v].second << "\n";
  manifest.close();
  io::write_dataset_checksums(dir);
  return dir;
}

/// Random comparison leaf. Values mostly land inside the variable's domain
/// (interesting selectivities), sometimes outside (empty / full answers),
/// and for the clustered variable often exactly on a stored value so `==`
/// and boundary comparisons hit real rows.
inline QueryPtr random_leaf(std::uint64_t& state) {
  const auto& vars = variables();
  const std::string& var = vars[next(state) % vars.size()];
  static constexpr CompareOp kOps[] = {CompareOp::kLt, CompareOp::kLe,
                                       CompareOp::kGt, CompareOp::kGe,
                                       CompareOp::kEq};
  const CompareOp op = kOps[next(state) % 5];
  double value = 0.0;
  if (var == "a") {
    value = uniform(state, -120.0, 120.0);
  } else if (var == "b") {
    value = 0.5 * static_cast<double>(next(state) % 45) - 11.0;  // on-grid
  } else {
    value = uniform(state, -10.0, 1100.0);
  }
  return Query::compare(var, op, value);
}

inline QueryPtr random_query(std::uint64_t& state, std::size_t depth) {
  const std::uint64_t r = next(state) % 100;
  if (depth == 0 || r < 50) return random_leaf(state);
  if (r < 72) return Query::land(random_query(state, depth - 1),
                                 random_query(state, depth - 1));
  if (r < 92) return Query::lor(random_query(state, depth - 1),
                                random_query(state, depth - 1));
  return Query::lnot(random_query(state, depth - 1));
}

/// Corrupt valid query text for the malformed-input probes: truncation,
/// garbage insertion, operator mangling, unbalanced parens, numeric junk.
/// The result may occasionally still parse — the probes assert the server
/// answers every line with a typed ok/err and stays usable, not that every
/// probe is rejected.
inline std::string malform(std::uint64_t& state, std::string text) {
  switch (next(state) % 8) {
    case 0:  // truncate mid-token
      if (!text.empty()) text.resize(next(state) % text.size());
      return text;
    case 1:  // stray comparison with no right-hand side
      return text + " && a >";
    case 2:  // unbalanced paren
      return "(" + text;
    case 3:  // garbage token splice
      text.insert(next(state) % (text.size() + 1), " @#$ ");
      return text;
    case 4:  // doubled operator
      return text + " && && " + text;
    case 5:  // non-finite / overflowing literal
      return text + (next(state) % 2 ? " && a < inf" : " && b > 1e999");
    case 6:  // unknown variable
      return text + " && nosuchvar == 1";
    default:  // bare operator soup
      return "&& || ! " + text;
  }
}

}  // namespace qdv::test::fuzz
