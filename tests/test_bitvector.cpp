// WAH bitvector edge cases: tails off the 31-bit boundary, literal<->fill
// transitions, empty/all-set vectors, mixed-length operands, and or_many
// over 1, 2, and 33 inputs — each cross-checked against a plain
// std::vector<bool> reference model.
#include <cstdint>
#include <cstring>
#include <sstream>
#include <vector>

#include "bitmap/bitvector.hpp"
#include "test_common.hpp"

namespace {

using qdv::BitVector;

struct Model {
  BitVector v;
  std::vector<bool> ref;

  void append_run(bool value, std::uint64_t count) {
    v.append_run(value, count);
    ref.insert(ref.end(), count, value);
  }
};

std::uint64_t ref_count(const std::vector<bool>& ref) {
  std::uint64_t n = 0;
  for (const bool b : ref) n += b;
  return n;
}

void check_matches(const BitVector& v, const std::vector<bool>& ref) {
  CHECK_EQ(v.size(), ref.size());
  CHECK_EQ(v.count(), ref_count(ref));
  const std::vector<std::uint32_t> positions = v.to_positions();
  std::size_t pi = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (!ref[i]) continue;
    CHECK(pi < positions.size() && positions[pi] == i);
    ++pi;
  }
  CHECK_EQ(pi, positions.size());
}

std::vector<bool> ref_op(const std::vector<bool>& a, const std::vector<bool>& b,
                         char op) {
  std::vector<bool> out(std::max(a.size(), b.size()));
  for (std::size_t i = 0; i < out.size(); ++i) {
    const bool x = i < a.size() && a[i];
    const bool y = i < b.size() && b[i];
    out[i] = op == '&' ? (x && y) : op == '|' ? (x || y) : (x != y);
  }
  return out;
}

/// Deterministic run generator.
Model make_model(std::uint64_t nbits, std::uint64_t seed, std::uint64_t max_run) {
  Model m;
  std::uint64_t state = seed;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  bool value = next() & 1;
  std::uint64_t pos = 0;
  while (pos < nbits) {
    const std::uint64_t run = std::min(nbits - pos, 1 + next() % max_run);
    m.append_run(value, run);
    value = !value;
    pos += run;
  }
  return m;
}

void test_tail_not_on_group_boundary() {
  for (const std::uint64_t nbits : {1u, 5u, 30u, 31u, 32u, 61u, 62u, 63u, 95u}) {
    Model m;
    for (std::uint64_t i = 0; i < nbits; ++i) m.append_run(i % 3 == 0, 1);
    check_matches(m.v, m.ref);
    CHECK(m.v.test(0));
    if (nbits > 1) CHECK(!m.v.test(1));
  }
}

void test_literal_fill_transitions() {
  Model m;
  m.append_run(false, 100000);  // long 0-fill
  m.append_run(true, 7);        // literal
  m.append_run(true, 310000);   // long 1-fill extending past the literal
  m.append_run(false, 3);
  m.append_run(true, 62);       // exactly two full groups
  m.append_run(false, 1);
  check_matches(m.v, m.ref);
  // Compression actually engaged: far fewer words than groups.
  CHECK(m.v.word_count() < 40);
}

void test_empty_and_all_set() {
  const BitVector empty;
  CHECK_EQ(empty.count(), 0u);
  CHECK_EQ(empty.size(), 0u);
  CHECK(empty.to_positions().empty());

  const BitVector zeros = BitVector::zeros(1000);
  CHECK_EQ(zeros.count(), 0u);
  CHECK_EQ(zeros.size(), 1000u);

  const BitVector ones = BitVector::ones(1000);
  CHECK_EQ(ones.count(), 1000u);
  CHECK_EQ((~ones).count(), 0u);
  CHECK_EQ((~zeros).count(), 1000u);
  CHECK_EQ((zeros | ones).count(), 1000u);
  CHECK_EQ((zeros & ones).count(), 0u);
}

void test_logical_ops_against_model() {
  for (const std::uint64_t bits_a : {310u, 311u, 4096u}) {
    for (const std::uint64_t bits_b : {310u, 333u, 5000u}) {
      const Model a = make_model(bits_a, 1234 + bits_a, 50);
      const Model b = make_model(bits_b, 777 + bits_b, 13);
      check_matches(a.v & b.v, ref_op(a.ref, b.ref, '&'));
      check_matches(a.v | b.v, ref_op(a.ref, b.ref, '|'));
      check_matches(a.v ^ b.v, ref_op(a.ref, b.ref, '^'));
    }
  }
  // NOT flips every bit up to size().
  const Model m = make_model(1000, 99, 200);
  const BitVector inv = ~m.v;
  CHECK_EQ(inv.size(), m.v.size());
  CHECK_EQ(inv.count(), m.v.size() - m.v.count());
  CHECK_EQ((~inv), m.v);
}

void test_from_positions_roundtrip() {
  const Model m = make_model(2000, 4242, 97);
  const BitVector rebuilt = BitVector::from_positions(m.v.to_positions(), 2000);
  CHECK(rebuilt == m.v);
}

void test_or_many() {
  constexpr std::uint64_t kBits = 10000;
  for (const std::size_t n : {1u, 2u, 33u}) {
    std::vector<Model> models;
    models.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      models.push_back(make_model(kBits, 1000 + i, 301));
    std::vector<const BitVector*> ops;
    std::vector<bool> expect(kBits, false);
    for (const Model& m : models) {
      ops.push_back(&m.v);
      for (std::size_t i = 0; i < kBits; ++i)
        if (m.ref[i]) expect[i] = true;
    }
    check_matches(qdv::or_many(std::move(ops), kBits), expect);
  }
  // Empty operand list: all zeros at the requested width.
  const BitVector none = qdv::or_many({}, 512);
  CHECK_EQ(none.size(), 512u);
  CHECK_EQ(none.count(), 0u);
}

void test_load_validates_header() {
  const Model m = make_model(5000, 2024, 77);
  std::ostringstream saved;
  m.v.save(saved);
  const std::string good = saved.str();

  // Round trip still works.
  {
    std::istringstream in(good);
    CHECK(BitVector::load(in) == m.v);
  }
  // Serialized layout: nbits u64 | nwords u64 | active u32 | active_bits u32.
  const auto corrupt_at = [&](std::size_t offset, std::uint64_t value,
                              std::size_t width) {
    std::string bad = good;
    std::memcpy(bad.data() + offset, &value, width);
    std::istringstream in(bad);
    CHECK_THROWS(BitVector::load(in));
  };
  // A huge word count must throw before any allocation is attempted.
  corrupt_at(8, 0x7FFFFFFFFFFFFFFFull, 8);
  // Word count inconsistent with the bit count.
  corrupt_at(8, 5000 / 31 + 1, 8);
  // Tail width >= the group size, or inconsistent with nbits.
  corrupt_at(20, 31, 4);
  corrupt_at(20, 200, 4);
  // Garbage bits above the declared tail width.
  corrupt_at(16, 0xFFFFFFFFull, 4);
  // Truncated payload.
  {
    std::istringstream in(good.substr(0, good.size() - 3));
    CHECK_THROWS(BitVector::load(in));
  }
  // Truncated header.
  {
    std::istringstream in(good.substr(0, 10));
    CHECK_THROWS(BitVector::load(in));
  }
  // The span-based loader applies the same header validation.
  {
    std::string bad = good;
    const std::uint64_t nwords = 0x10000000000ull;
    std::memcpy(bad.data() + 8, &nwords, 8);
    std::size_t offset = 0;
    const std::span<const std::byte> image(
        reinterpret_cast<const std::byte*>(bad.data()), bad.size());
    CHECK_THROWS(BitVector::load(image, offset));
  }
  // ... and the group-coverage check: a bit-rotted fill count that keeps
  // the header plausible must still throw on either path.
  {
    std::string bad = good;
    const std::uint32_t fat_fill = 0x80000000u | 0x12345u;  // zero fill, huge
    std::memcpy(bad.data() + 24, &fat_fill, 4);  // first payload word
    std::size_t offset = 0;
    const std::span<const std::byte> image(
        reinterpret_cast<const std::byte*>(bad.data()), bad.size());
    CHECK_THROWS(BitVector::load(image, offset));
    std::istringstream in(bad);
    CHECK_THROWS(BitVector::load(in));
  }
}

void test_for_each_set_order() {
  const Model m = make_model(5000, 31337, 61);
  std::vector<std::uint32_t> seen;
  m.v.for_each_set([&](std::uint64_t pos) {
    seen.push_back(static_cast<std::uint32_t>(pos));
  });
  CHECK(seen == m.v.to_positions());
}

}  // namespace

int main() {
  test_tail_not_on_group_boundary();
  test_literal_fill_transitions();
  test_empty_and_all_set();
  test_logical_ops_against_model();
  test_from_positions_roundtrip();
  test_or_many();
  test_load_validates_header();
  test_for_each_set_order();
  return qdv::test::finish("test_bitvector");
}
