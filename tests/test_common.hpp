// Minimal assertion helpers for the qdv unit tests (no framework
// dependency; each test is a plain executable wired into ctest).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace qdv::test {

inline int failures = 0;

#define CHECK(cond)                                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #cond);                                        \
      ++qdv::test::failures;                                                \
    }                                                                       \
  } while (0)

#define CHECK_EQ(a, b)                                                      \
  do {                                                                      \
    const auto va = (a);                                                    \
    const auto vb = (b);                                                    \
    if (!(va == vb)) {                                                      \
      std::fprintf(stderr, "CHECK_EQ failed at %s:%d: %s != %s\n",          \
                   __FILE__, __LINE__, #a, #b);                             \
      ++qdv::test::failures;                                                \
    }                                                                       \
  } while (0)

#define CHECK_THROWS(expr)                                                  \
  do {                                                                      \
    bool thrown = false;                                                    \
    try {                                                                   \
      (void)(expr);                                                         \
    } catch (const std::exception&) {                                       \
      thrown = true;                                                        \
    }                                                                       \
    if (!thrown) {                                                          \
      std::fprintf(stderr, "CHECK_THROWS failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #expr);                                        \
      ++qdv::test::failures;                                                \
    }                                                                       \
  } while (0)

/// Scratch directory for tests that touch disk (fresh per test binary).
inline std::filesystem::path scratch_dir(const std::string& name) {
  std::filesystem::path base;
  if (const char* env = std::getenv("QDV_TEST_TMPDIR")) {
    base = env;
  } else {
    base = std::filesystem::temp_directory_path() / "qdv_tests";
  }
  const std::filesystem::path dir = base / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

inline int finish(const char* name) {
  if (failures == 0) {
    std::printf("%s: all checks passed\n", name);
    return 0;
  }
  std::fprintf(stderr, "%s: %d check(s) FAILED\n", name, failures);
  return 1;
}

}  // namespace qdv::test
