// core::Brush differential suite: the incremental delta path must be
// bit-identical to full re-execution, always. Legs: (1) fixed edit
// sequences (refine / invert / combine) verified against an independent
// scan of the tracked composed predicate, (2) delta-vs-full counter
// accounting incl. history-outrun fallback and pinned-snapshot stability,
// (3) memory-budget accounting of materialized brush slots, (4) a
// property fuzz over random edit/query interleavings (QDV_FUZZ_ITERS for
// deep runs), (5) four concurrent editor/reader threads (TSan-covered by
// the sanitizer CI job), and (6) a stale-cache probe through
// svc::QueryService — edit-then-requery must never serve the pre-edit
// cached result, and the brush_stale tripwire must stay zero.
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/brush.hpp"
#include "core/selection.hpp"
#include "fuzz_common.hpp"
#include "svc/query_service.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;
namespace fuzz = qdv::test::fuzz;

const std::filesystem::path& dataset_dir() {
  static const std::filesystem::path dir = fuzz::write_random_dataset(
      "brush", /*timesteps=*/3, /*rows=*/600, /*seed=*/0xb0b5u,
      /*index_bins=*/24);
  return dir;
}

/// The brush's bits at @p snap vs a naive scan of @p expected — the
/// independent twin: no planner, no caches, no delta machinery.
void check_matches_scan(core::Brush& brush, const core::Brush::Snapshot& snap,
                        const core::Engine& engine, const QueryPtr& expected) {
  for (std::size_t t = 0; t < engine.num_timesteps(); ++t) {
    const BitVector scanned =
        engine.dataset().table(t).query(*expected, EvalMode::kScan);
    CHECK(brush.bits(snap, t)->to_positions() == scanned.to_positions());
    CHECK_EQ(brush.count(snap, t), scanned.count());
  }
}

void test_fixed_differential() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  auto counters = std::make_shared<core::Brush::Counters>();
  core::Brush brush(engine.select("a > 0"), counters);
  QueryPtr expected = parse_query("a > 0");
  CHECK_EQ(brush.epoch(), 1u);
  check_matches_scan(brush, brush.snapshot(), engine, expected);

  // Refine: epoch bumps, composed tightens, delta == scan.
  std::uint64_t epoch = brush.refine(parse_query("b <= 2"));
  CHECK_EQ(epoch, 2u);
  expected = Query::land(expected, parse_query("b <= 2"));
  check_matches_scan(brush, brush.snapshot(), engine, expected);

  // Invert.
  epoch = brush.invert();
  CHECK_EQ(epoch, 3u);
  expected = Query::lnot(expected);
  check_matches_scan(brush, brush.snapshot(), engine, expected);

  // Combine with a second brush, all three operators.
  core::Brush other(engine.select("c > 100 || b == -10"), counters);
  const QueryPtr other_q = parse_query("c > 100 || b == -10");
  epoch = brush.combine(other, core::Brush::CombineOp::kAnd);
  CHECK_EQ(epoch, 4u);
  expected = Query::land(expected, other_q);
  check_matches_scan(brush, brush.snapshot(), engine, expected);

  epoch = brush.combine(other, core::Brush::CombineOp::kOr);
  expected = Query::lor(expected, other_q);
  check_matches_scan(brush, brush.snapshot(), engine, expected);

  epoch = brush.combine(other, core::Brush::CombineOp::kAndNot);
  expected = Query::land(expected, Query::lnot(other_q));
  CHECK_EQ(epoch, 6u);
  check_matches_scan(brush, brush.snapshot(), engine, expected);

  // Derived quantities agree with the equivalent Selection.
  const core::Selection twin = engine.select(expected);
  core::Brush::Snapshot snap = brush.snapshot();
  CHECK(brush.ids(snap, 1) == twin.ids(1));
  CHECK(brush.histogram1d(snap, 1, "a", 16).counts ==
        twin.histogram1d(1, "a", 16).counts);
  CHECK(brush.histogram2d(snap, 1, "a", "c", 8, 8).counts ==
        twin.histogram2d(1, "a", "c", 8, 8).counts);
  const core::SummaryStats s1 = brush.summary(snap, 2, "b");
  const core::SummaryStats s2 = twin.summary(2, "b");
  CHECK_EQ(s1.count, s2.count);
  CHECK_EQ(s1.mean, s2.mean);

  // Construction guards.
  CHECK_THROWS(core::Brush(engine.all()));       // select-all: no AST form
  CHECK_THROWS(core::Brush(core::Selection{}));  // default: invalid
  CHECK_THROWS(brush.refine(nullptr));
}

void test_delta_vs_full_accounting() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  auto counters = std::make_shared<core::Brush::Counters>();
  core::Brush brush(engine.select("a > -50"), counters);
  QueryPtr expected = parse_query("a > -50");

  // First touch executes the composed plan (full), and a repeat at the
  // same epoch is served from the brush slot (neither counter moves).
  (void)brush.count(brush.snapshot(), 0);
  CHECK_EQ(counters->full_evals.load(), 1u);
  CHECK_EQ(counters->delta_evals.load(), 0u);
  (void)brush.count(brush.snapshot(), 0);
  CHECK_EQ(counters->full_evals.load(), 1u);
  CHECK_EQ(counters->delta_evals.load(), 0u);

  // One edit then query: answered by the delta path.
  brush.refine(parse_query("b <= 5"));
  expected = Query::land(expected, parse_query("b <= 5"));
  CHECK_EQ(brush.count(brush.snapshot(), 0),
           engine.dataset().table(0).query(*expected, EvalMode::kScan).count());
  CHECK_EQ(counters->full_evals.load(), 1u);
  CHECK(counters->delta_evals.load() >= 1u);

  // A pinned snapshot keeps answering at its own epoch while the brush
  // moves on.
  const core::Brush::Snapshot pinned = brush.snapshot();
  const QueryPtr pinned_expected = expected;
  brush.refine(parse_query("c > 500"));
  expected = Query::land(expected, parse_query("c > 500"));
  check_matches_scan(brush, pinned, engine, pinned_expected);
  check_matches_scan(brush, brush.snapshot(), engine, expected);

  // An edit burst longer than kMaxHistory outruns the delta history; the
  // next evaluation falls back to one full execution and re-seeds.
  const std::uint64_t full_before = counters->full_evals.load();
  for (std::size_t i = 0; i <= core::Brush::kMaxHistory; ++i) {
    const std::string text = "a > " + std::to_string(-40 + static_cast<int>(i % 7));
    brush.refine(parse_query(text));
    expected = Query::land(expected, parse_query(text));
  }
  check_matches_scan(brush, brush.snapshot(), engine, expected);
  CHECK(counters->full_evals.load() > full_before);
  // Re-seeded: one more edit rides the delta path again.
  const std::uint64_t delta_before = counters->delta_evals.load();
  brush.refine(parse_query("b >= -8"));
  expected = Query::land(expected, parse_query("b >= -8"));
  check_matches_scan(brush, brush.snapshot(), engine, expected);
  CHECK(counters->delta_evals.load() > delta_before);
}

void test_budget_accounting() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  const auto budget = engine.dataset().memory_budget();
  const std::uint64_t entries_before =
      budget->stats().of(io::ResidentClass::kBrush).entries;
  {
    core::Brush brush(engine.select("a > 0"));
    CHECK_EQ(brush.resident_bytes(), 0u);  // nothing materialized yet
    (void)brush.count(brush.snapshot(), 0);
    (void)brush.count(brush.snapshot(), 1);
    CHECK(brush.resident_bytes() > 0u);
    CHECK(budget->stats().of(io::ResidentClass::kBrush).entries >=
          entries_before + 2);
    // An edit re-materializes; the superseded parent slot is erased, so
    // entries stay bounded by one per touched timestep.
    brush.refine(parse_query("b <= 0"));
    (void)brush.count(brush.snapshot(), 0);
    CHECK_EQ(budget->stats().of(io::ResidentClass::kBrush).entries,
             entries_before + 2);
  }
  // Destruction releases every slot (eviction hooks drain the byte count).
  CHECK_EQ(budget->stats().of(io::ResidentClass::kBrush).entries,
           entries_before);
}

void test_fuzz_edit_sequences() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  const std::size_t timesteps = engine.num_timesteps();
  std::uint64_t state = 0xbadb2u;
  const std::size_t iters = fuzz::iterations();
  for (std::size_t round = 0; round < iters; ++round) {
    QueryPtr expected = fuzz::random_query(state, 1 + fuzz::next(state) % 2);
    core::Selection initial = engine.select(expected);
    if (initial.selects_all()) continue;  // cannot seed a brush
    core::Brush brush(std::move(initial), nullptr);
    core::Brush other(engine.select("b >= 0"), nullptr);
    const QueryPtr other_q = parse_query("b >= 0");
    const std::size_t edits = 1 + fuzz::next(state) % 8;
    for (std::size_t i = 0; i < edits; ++i) {
      switch (fuzz::next(state) % 4) {
        case 0: {
          const QueryPtr extra = fuzz::random_query(state, 1);
          brush.refine(extra);
          expected = Query::land(expected, extra);
          break;
        }
        case 1:
          brush.invert();
          expected = Query::lnot(expected);
          break;
        case 2:
          brush.combine(other, core::Brush::CombineOp::kAndNot);
          expected = Query::land(expected, Query::lnot(other_q));
          break;
        default: {
          // Query mid-burst: shortens the delta chain the next edit sees.
          const std::size_t t = fuzz::next(state) % timesteps;
          const core::Brush::Snapshot snap = brush.snapshot();
          CHECK_EQ(brush.count(snap, t),
                   engine.dataset()
                       .table(t)
                       .query(*expected, EvalMode::kScan)
                       .count());
          break;
        }
      }
    }
    const std::size_t t = fuzz::next(state) % timesteps;
    const core::Brush::Snapshot snap = brush.snapshot();
    const BitVector scanned =
        engine.dataset().table(t).query(*expected, EvalMode::kScan);
    CHECK(brush.bits(snap, t)->to_positions() == scanned.to_positions());
  }
}

void test_concurrent_editors_and_readers() {
  // Two editors mutate one shared brush while two readers pin snapshots
  // and evaluate them: every answer must match an independent execution of
  // the snapshot's own pinned predicate (epoch consistency), under TSan in
  // the sanitizer job. Counters/slots are exercised but not asserted —
  // interleavings make exact counts nondeterministic.
  const core::Engine engine = core::Engine::open(dataset_dir());
  core::Brush brush(engine.select("a > 0"), nullptr);
  core::Brush other(engine.select("c <= 300"), nullptr);
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int e = 0; e < 2; ++e) {
    threads.emplace_back([&, e] {
      std::uint64_t state = 0x5eed0 + static_cast<std::uint64_t>(e);
      for (int i = 0; i < 40; ++i) {
        switch (fuzz::next(state) % 3) {
          case 0:
            brush.refine(parse_query(
                "b <= " +
                std::to_string(5 - static_cast<int>(fuzz::next(state) % 10))));
            break;
          case 1:
            brush.invert();
            break;
          default:
            brush.combine(other, core::Brush::CombineOp::kAnd);
            break;
        }
      }
      stop.store(true, std::memory_order_release);
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      std::uint64_t state = 0xface0 + static_cast<std::uint64_t>(r);
      do {
        const core::Brush::Snapshot snap = brush.snapshot();
        const std::size_t t = fuzz::next(state) % engine.num_timesteps();
        const std::uint64_t via_brush = brush.count(snap, t);
        const std::uint64_t via_plan = engine.select(snap.query).count(t);
        CHECK_EQ(via_brush, via_plan);
      } while (!stop.load(std::memory_order_acquire));
    });
  }
  for (std::thread& t : threads) t.join();

  // Settled: one final full differential against a scan.
  const core::Brush::Snapshot snap = brush.snapshot();
  const BitVector scanned =
      engine.dataset().table(0).query(*snap.query, EvalMode::kScan);
  CHECK(brush.bits(snap, 0)->to_positions() == scanned.to_positions());
}

void test_service_stale_cache_probe() {
  // Query / cache-hit / edit / re-query through svc::QueryService: the
  // epoch-tagged result-cache key must make the post-edit query miss the
  // pre-edit entry (fresh answer, brush_stale_hits == 0 — the tripwire).
  const core::Engine engine = core::Engine::open(dataset_dir());
  svc::QueryService service{core::Engine::open(dataset_dir())};
  const auto session = service.open_session("brush-probe");

  const svc::BrushOutcome created =
      service.brush_create(session, "B", "a > 0");
  CHECK(created.status == svc::Status::kOk);
  CHECK_EQ(created.epoch, 1u);

  svc::Request req;
  req.kind = svc::RequestKind::kCount;
  req.brush = "B";
  req.timestep = 0;
  const std::uint64_t before_edit = engine.select("a > 0").count(0);

  svc::ResultPtr r1 = service.execute(session, req);
  CHECK(r1->status == svc::Status::kOk);
  CHECK_EQ(r1->count, before_edit);
  CHECK_EQ(r1->brush_epoch, 1u);

  // Identical re-submission: served from the result cache, same epoch.
  svc::ResultPtr r2 = service.execute(session, req);
  CHECK_EQ(r2->count, before_edit);
  CHECK_EQ(r2->brush_epoch, 1u);
  CHECK(service.stats().result_cache_hits >= 1u);

  // Edit, then the same request again: the answer must move.
  const svc::BrushOutcome refined =
      service.brush_refine(session, "B", "b <= 0");
  CHECK(refined.status == svc::Status::kOk);
  CHECK_EQ(refined.epoch, 2u);
  svc::ResultPtr r3 = service.execute(session, req);
  CHECK(r3->status == svc::Status::kOk);
  CHECK_EQ(r3->brush_epoch, 2u);
  CHECK_EQ(r3->count, engine.select("a > 0 && b <= 0").count(0));

  const svc::ServiceStats stats = service.stats();
  CHECK_EQ(stats.brush_stale_hits, 0u);
  CHECK_EQ(stats.brush_creates, 1u);
  CHECK_EQ(stats.brush_edits, 1u);
  CHECK(stats.brush_queries >= 3u);
  CHECK(stats.brush_delta_evals >= 1u);
  CHECK_EQ(stats.brush_count, 1u);
  CHECK(stats.brush_bytes > 0u);

  // Brush/query exclusivity and lifecycle errors surface as typed errors,
  // never crashes.
  svc::Request bad = req;
  bad.query = "a > 0";
  CHECK(service.execute(session, bad)->status == svc::Status::kError);
  svc::Request zoom = req;
  zoom.kind = svc::RequestKind::kZoom1D;
  zoom.var_x = "a";
  zoom.view_lo_x = 0.0;
  zoom.view_hi_x = 1.0;
  CHECK(service.execute(session, zoom)->status == svc::Status::kError);
  svc::Request unknown = req;
  unknown.brush = "nope";
  CHECK(service.execute(session, unknown)->status == svc::Status::kError);
  CHECK(service.brush_refine(session, "nope", "a > 0").status ==
        svc::Status::kError);
  CHECK(service.brush_create(session, "B", "a > 1").status ==
        svc::Status::kError);  // duplicate name
  CHECK(service.brush_create(session, "bad name!", "a > 1").status ==
        svc::Status::kError);
  CHECK(service.brush_create(session, "C", "a >").status ==
        svc::Status::kError);  // malformed predicate: typed err

  const svc::BrushOutcome dropped = service.brush_drop(session, "B");
  CHECK(dropped.status == svc::Status::kOk);
  CHECK_EQ(service.stats().brush_count, 0u);
  CHECK_EQ(service.stats().brush_drops, 1u);
  CHECK(service.execute(session, req)->status == svc::Status::kError);

  // Brushes are session-scoped: another session cannot see them.
  const auto session2 = service.open_session("other");
  service.brush_create(session, "S", "a > 0");
  CHECK(service.brush_refine(session2, "S", "b <= 0").status ==
        svc::Status::kError);
  service.close_session(session2);
  service.close_session(session);
}

}  // namespace

int main() {
  test_fixed_differential();
  test_delta_vs_full_accounting();
  test_budget_accounting();
  test_fuzz_edit_sequences();
  test_concurrent_editors_and_readers();
  test_service_stale_cache_probe();
  if (qdv::test::failures == 0) std::puts("test_brush: all checks passed");
  return qdv::test::failures == 0 ? 0 : 1;
}
