// Histogram pyramids (agg::Pyramid, DESIGN.md §14): every pyramid-served
// count must equal the exact kernel path bit for bit. The suite checks the
// refinement invariants (parent == sum of children, root == unconditioned
// total), differential slices at every level over uniform and non-uniform
// leaf bins, NaN/±inf handling through build and save/open round-trips,
// empty selections, boundary-straddling viewports, and the dataset-level
// kAuto-vs-kExact twin contract including planner visibility.
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "agg/pyramid.hpp"
#include "core/engine.hpp"
#include "core/selection.hpp"
#include "io/dataset.hpp"
#include "sim/wakefield.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;

// Deterministic xorshift values in [lo, hi), with a sprinkling of NaN and
// ±inf when poison is set (the build must drop them, like the kernels do).
std::vector<double> make_values(std::size_t n, double lo, double hi,
                                bool poison, std::uint64_t seed) {
  std::vector<double> v;
  v.reserve(n);
  std::uint64_t s = seed * 6364136223846793005ull + 1442695040888963407ull;
  const auto next = [&] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (poison && next() % 17 == 0) {
      switch (next() % 3) {
        case 0: v.push_back(std::numeric_limits<double>::quiet_NaN()); break;
        case 1: v.push_back(std::numeric_limits<double>::infinity()); break;
        default: v.push_back(-std::numeric_limits<double>::infinity()); break;
      }
      continue;
    }
    // Overshoot the domain a little so some finite values are dropped too.
    const double f = static_cast<double>(next() % 10000) / 10000.0;
    v.push_back(lo - 0.1 * (hi - lo) + 1.2 * (hi - lo) * f);
  }
  return v;
}

// Scalar reference: tally with Bins::locate semantics (the differential
// baseline every histogram kernel is tested against).
std::vector<std::uint64_t> leaf_tally(const std::vector<double>& values,
                                      const Bins& leaf) {
  std::vector<std::uint64_t> counts(leaf.num_bins(), 0);
  for (double v : values) {
    const std::ptrdiff_t bin = leaf.locate(v);
    if (bin >= 0) ++counts[static_cast<std::size_t>(bin)];
  }
  return counts;
}

// Aggregate a leaf tally up to `level` by summing sibling groups.
std::vector<std::uint64_t> coarsen(const std::vector<std::uint64_t>& leaf,
                                   std::size_t leaf_log2, std::size_t level) {
  const std::size_t group = std::size_t{1} << (leaf_log2 - level);
  std::vector<std::uint64_t> out(std::size_t{1} << level, 0);
  for (std::size_t i = 0; i < leaf.size(); ++i) out[i / group] += leaf[i];
  return out;
}

void check_pyramid1d(const agg::Pyramid& pyr, const std::vector<double>& values,
                     const Bins& leaf) {
  const std::size_t L = pyr.leaf_log2();
  const std::vector<std::uint64_t> ref = leaf_tally(values, leaf);
  std::uint64_t total = 0;
  for (std::uint64_t c : ref) total += c;

  // Root == unconditioned in-domain total; every level == coarsened leaf
  // tally; parent == sum of its two children.
  CHECK_EQ(pyr.rows(), values.size());
  CHECK_EQ(pyr.level(0)->at(0), total);
  for (std::size_t l = 0; l <= L; ++l) {
    const auto lv = pyr.level(l);
    CHECK(*lv == coarsen(ref, L, l));
    if (l == 0) continue;
    const auto parent = pyr.level(l - 1);
    for (std::size_t j = 0; j < parent->size(); ++j)
      CHECK_EQ(parent->at(j), lv->at(2 * j) + lv->at(2 * j + 1));
  }

  // Full-window slices at every level match the coarsened reference, and
  // the served edges are the strided leaf-edge subset.
  for (std::size_t l = 0; l <= L; ++l) {
    const agg::SlicePlan plan{l, 0, pyr.bins_at(l)};
    CHECK(pyr.servable1d(plan, nullptr));
    CHECK(pyr.slice_counts1d(plan, nullptr) == coarsen(ref, L, l));
    const std::vector<double> edges = pyr.slice_edges(0, plan);
    CHECK_EQ(edges.size(), pyr.bins_at(l) + 1);
    for (std::size_t j = 0; j < edges.size(); ++j)
      CHECK_EQ(edges[j], leaf.edges()[j << (L - l)]);
  }

  // Partial windows (including ones straddling coarse-node boundaries)
  // against the reference at several levels.
  for (std::size_t l = 1; l <= L; ++l) {
    const std::size_t n = pyr.bins_at(l);
    const agg::SlicePlan plan{l, 1, n - 1};  // drops first and last bin
    const std::vector<std::uint64_t> got = pyr.slice_counts1d(plan, nullptr);
    const std::vector<std::uint64_t> all = coarsen(ref, L, l);
    CHECK_EQ(got.size(), n - 2);
    for (std::size_t j = 0; j < got.size(); ++j) CHECK_EQ(got[j], all[j + 1]);
  }

  // Conditions with endpoints on leaf edges are servable at any level and
  // match a filtered reference tally; an endpoint strictly inside a leaf
  // bin is not servable (the descent cannot terminate).
  const std::vector<double>& le = leaf.edges();
  const Interval aligned{le[1], le[le.size() - 2], false, true};  // [e1, e_k)
  const agg::SlicePlan root{0, 0, 1};
  CHECK(pyr.servable1d(root, &aligned));
  std::uint64_t want = 0;
  for (double v : values) {
    const std::ptrdiff_t bin = leaf.locate(v);
    if (bin >= 0 && aligned.contains(v)) ++want;
  }
  CHECK_EQ(pyr.slice_counts1d(root, &aligned)[0], want);
  const double inside = 0.5 * (le[0] + le[1]);  // strictly inside leaf bin 0
  const Interval unaligned{inside, le[le.size() - 2], false, true};
  CHECK(!pyr.servable1d(root, &unaligned));
}

void test_uniform_1d() {
  const Bins leaf = make_uniform_bins(-3.0, 5.0, 64);
  const std::vector<double> values = make_values(5000, -3.0, 5.0, false, 1);
  check_pyramid1d(agg::Pyramid::build1d(values, leaf), values, leaf);
}

void test_nonuniform_1d() {
  // Non-uniform leaf edges: quantile bins of a skewed sample, forced to a
  // power-of-two count.
  const std::vector<double> sample = make_values(4000, 0.0, 1.0, false, 7);
  std::vector<double> skewed;
  for (double v : sample) skewed.push_back(v * v * v);
  const Bins leaf = make_quantile_bins(skewed, 32);
  if (leaf.num_bins() != 32) {
    // Quantile binning may merge duplicate edges; this sample keeps 32.
    CHECK_EQ(leaf.num_bins(), 32u);
    return;
  }
  check_pyramid1d(agg::Pyramid::build1d(skewed, leaf), skewed, leaf);
}

void test_poisoned_build_and_roundtrip() {
  const Bins leaf = make_uniform_bins(-1.0, 1.0, 128);
  const std::vector<double> values = make_values(6000, -1.0, 1.0, true, 3);
  const agg::Pyramid built = agg::Pyramid::build1d(values, leaf);
  check_pyramid1d(built, values, leaf);

  // save/open round-trip (null budget): identical levels, edges, rows.
  const auto dir = test::scratch_dir("pyramid_roundtrip");
  built.save(dir / "v.pyr");
  const auto opened = agg::Pyramid::open(dir / "v.pyr");
  CHECK_EQ(opened->ndims(), 1u);
  CHECK_EQ(opened->rows(), built.rows());
  CHECK(opened->leaf_edges(0) == built.leaf_edges(0));
  for (std::size_t l = 0; l <= built.leaf_log2(); ++l)
    CHECK(*opened->level(l) == *built.level(l));
  check_pyramid1d(*opened, values, leaf);

  // And through a memory budget: same answers, pyramid bytes charged.
  const auto budget =
      std::make_shared<io::MemoryBudget>(io::MemoryBudget::kUnlimited);
  const auto budgeted = agg::Pyramid::open(dir / "v.pyr", budget, "t/v");
  check_pyramid1d(*budgeted, values, leaf);
  CHECK(budget->stats().of(io::ResidentClass::kPyramid).bytes > 0);

  CHECK_THROWS(agg::Pyramid::open(dir / "missing.pyr"));
}

void test_pyramid_2d() {
  const Bins bx = make_uniform_bins(0.0, 4.0, 16);
  const Bins by = make_uniform_bins(-2.0, 2.0, 16);
  const std::vector<double> vx = make_values(5000, 0.0, 4.0, true, 11);
  const std::vector<double> vy = make_values(5000, -2.0, 2.0, true, 12);
  const agg::Pyramid pyr = agg::Pyramid::build2d(vx, vy, bx, by);
  const std::size_t L = pyr.leaf_log2();
  CHECK_EQ(pyr.ndims(), 2u);
  CHECK_EQ(L, 4u);

  // Reference leaf grid with joint drop semantics: a row lands only when
  // both coordinates are in-domain.
  std::vector<std::uint64_t> ref(16 * 16, 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < vx.size(); ++i) {
    const std::ptrdiff_t jx = bx.locate(vx[i]);
    const std::ptrdiff_t jy = by.locate(vy[i]);
    if (jx < 0 || jy < 0) continue;
    ++ref[static_cast<std::size_t>(jx) * 16 + static_cast<std::size_t>(jy)];
    ++total;
  }
  CHECK_EQ(pyr.level(0)->at(0), total);

  // Every level equals the reference coarsened on both axes, and each
  // parent equals the sum of its four children.
  for (std::size_t l = 0; l <= L; ++l) {
    const std::size_t n = pyr.bins_at(l);
    const std::size_t group = std::size_t{1} << (L - l);
    const auto lv = pyr.level(l);
    std::vector<std::uint64_t> want(n * n, 0);
    for (std::size_t j0 = 0; j0 < 16; ++j0)
      for (std::size_t j1 = 0; j1 < 16; ++j1)
        want[(j0 / group) * n + j1 / group] += ref[j0 * 16 + j1];
    CHECK(*lv == want);
    if (l == 0) continue;
    const auto parent = pyr.level(l - 1);
    for (std::size_t j0 = 0; j0 + 1 < n; j0 += 2)
      for (std::size_t j1 = 0; j1 + 1 < n; j1 += 2)
        CHECK_EQ(parent->at((j0 / 2) * (n / 2) + j1 / 2),
                 lv->at(j0 * n + j1) + lv->at(j0 * n + j1 + 1) +
                     lv->at((j0 + 1) * n + j1) + lv->at((j0 + 1) * n + j1 + 1));
  }

  // Conditioned full-window slice: both conditions aligned to leaf edges.
  const Interval cx{bx.edges()[2], bx.edges()[14], false, true};
  const Interval cy{by.edges()[4], by.edges()[12], false, true};
  const agg::SlicePlan full{L, 0, 16};
  CHECK(pyr.servable2d(full, full, &cx, &cy));
  const std::vector<std::uint64_t> got =
      pyr.slice_counts2d(full, full, &cx, &cy);
  for (std::size_t j0 = 0; j0 < 16; ++j0)
    for (std::size_t j1 = 0; j1 < 16; ++j1) {
      const bool in = j0 >= 2 && j0 < 14 && j1 >= 4 && j1 < 12;
      CHECK_EQ(got[j0 * 16 + j1], in ? ref[j0 * 16 + j1] : 0u);
    }
}

void test_plan_slice_snapping() {
  const Bins leaf = make_uniform_bins(0.0, 1.0, 64);  // leaf_log2 = 6
  const std::vector<double> values = make_values(1000, 0.0, 1.0, false, 5);
  const agg::Pyramid pyr = agg::Pyramid::build1d(values, leaf);

  // A viewport straddling coarse-node boundaries must snap outward: the
  // snapped window covers the viewport and carries >= nbins bins.
  const auto plan = pyr.plan_slice(0, 0.26, 0.74, 8);
  CHECK(plan.has_value());
  const std::vector<double> edges = pyr.slice_edges(0, *plan);
  CHECK(plan->bins() >= 8);
  CHECK(edges.front() <= 0.26 && edges.back() >= 0.74);

  // Coarsest-covering-level rule: a half-domain viewport at nbins=2 snaps
  // to level 2 (the first level where the snapped window carries 2 bins),
  // not the leaf; at nbins=1 the root's single bin already covers it.
  const auto root = pyr.plan_slice(0, 0.0, 0.5, 1);
  CHECK(root.has_value());
  CHECK_EQ(root->level, 0u);
  const auto coarse = pyr.plan_slice(0, 0.0, 0.5, 2);
  CHECK(coarse.has_value());
  CHECK_EQ(coarse->level, 2u);
  CHECK_EQ(coarse->bins(), 2u);

  // Too narrow for nbins even at the leaf: exact fallback (nullopt).
  CHECK(!pyr.plan_slice(0, 0.50, 0.51, 32).has_value());

  // Entirely outside the domain: empty plan, not an error.
  const auto outside = pyr.plan_slice(0, 2.0, 3.0, 4);
  CHECK(outside.has_value());
  CHECK_EQ(outside->bins(), 0u);
}

// ---- dataset level: kAuto vs kExact twins through Engine/Selection ----

const std::filesystem::path& dataset_dir() {
  static const std::filesystem::path dir = [] {
    const std::filesystem::path d = test::scratch_dir("pyramid_ds");
    sim::WakefieldConfig cfg = sim::WakefieldConfig::preset_bench(3000, 2, 2);
    io::IndexConfig index_config;
    index_config.nbins = 64;  // 1D pyramids at 64 leaf bins
    index_config.pyramid_pair_bins = 32;
    sim::generate_dataset(cfg, d, index_config);
    return d;
  }();
  return dir;
}

void check_zoom1d_twin(const core::Selection& sel, std::size_t t,
                       const std::string& var, double lo, double hi,
                       std::size_t nbins, bool expect_pyramid) {
  const core::Zoom1DResult a =
      sel.zoom_histogram1d(t, var, lo, hi, nbins, core::ZoomMode::kAuto);
  const core::Zoom1DResult e =
      sel.zoom_histogram1d(t, var, lo, hi, nbins, core::ZoomMode::kExact);
  CHECK_EQ(a.pyramid, expect_pyramid);
  CHECK(!e.pyramid);
  CHECK(a.hist.counts == e.hist.counts);
  CHECK(a.hist.bins.edges() == e.hist.bins.edges());
}

void test_dataset_zoom1d() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  const auto& table = engine.dataset().table(0);
  const auto pyr = table.pyramid1d("px");
  CHECK(pyr != nullptr);
  const std::vector<double>& le = pyr->leaf_edges(0);
  const double lo = le.front(), hi = le.back();

  const core::Selection all = engine.all();
  // Wide viewports (served), including ones straddling node boundaries.
  check_zoom1d_twin(all, 0, "px", lo, hi, 16, true);
  check_zoom1d_twin(all, 0, "px", lo + 0.13 * (hi - lo), lo + 0.77 * (hi - lo),
                    8, true);
  // Narrow viewport below the leaf resolution: exact fallback.
  check_zoom1d_twin(all, 0, "px", lo + 0.40 * (hi - lo),
                    lo + 0.41 * (hi - lo), 32, false);
  // Viewport outside the domain: both modes agree on emptiness.
  const core::Zoom1DResult empty_a =
      all.zoom_histogram1d(0, "px", hi + 1.0, hi + 2.0, 8);
  const core::Zoom1DResult empty_e = all.zoom_histogram1d(
      0, "px", hi + 1.0, hi + 2.0, 8, core::ZoomMode::kExact);
  CHECK(empty_a.hist.counts == empty_e.hist.counts);
  CHECK_EQ(empty_a.hist.total(), 0u);

  // A condition aligned to the pyramid's own leaf edges is servable; the
  // empty selection (contradiction on the same variable) stays exact-equal.
  const core::Selection cond = engine.select(
      "px >= " + format_double(le[8]) + " && px < " + format_double(le[40]));
  check_zoom1d_twin(cond, 0, "px", lo, hi, 16, true);
  const core::Selection none =
      engine.select("px > " + format_double(le.back() + 1.0));
  CHECK_EQ(none.count(0), 0u);
  const core::Zoom1DResult na =
      none.zoom_histogram1d(0, "px", lo, hi, 16, core::ZoomMode::kAuto);
  const core::Zoom1DResult ne =
      none.zoom_histogram1d(0, "px", lo, hi, 16, core::ZoomMode::kExact);
  CHECK(na.hist.counts == ne.hist.counts);
  CHECK_EQ(na.hist.total(), 0u);

  // An unservable predicate shape (disjunction) must fall back — exactly.
  const core::Selection orsel = engine.select(
      "px < " + format_double(le[8]) + " || px >= " + format_double(le[40]));
  check_zoom1d_twin(orsel, 0, "px", lo, hi, 16, false);

  // Bad viewport throws; the plan probe returns nullopt instead.
  CHECK_THROWS(all.zoom_histogram1d(0, "px", hi, lo, 16));
  CHECK(!all.zoom_plan1d(0, "px", hi, lo, 16).has_value());

  // Served requests are visible in the engine's zoom-tier stats.
  const core::EngineStats stats = engine.stats();
  CHECK(stats.pyramid_served > 0);
  CHECK(stats.pyramid_fallback > 0);
}

void test_dataset_zoom2d() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  const auto& table = engine.dataset().table(1);
  const auto pair = table.pyramid2d("x", "px");
  CHECK(pair != nullptr);
  const std::vector<double>& xe = pair->leaf_edges(0);
  const std::vector<double>& ye = pair->leaf_edges(1);

  const core::Selection all = engine.all();
  const core::Zoom2DResult a = all.zoom_histogram2d(
      1, "x", "px", xe.front(), xe.back(), ye.front(), ye.back(), 8, 8);
  const core::Zoom2DResult e =
      all.zoom_histogram2d(1, "x", "px", xe.front(), xe.back(), ye.front(),
                           ye.back(), 8, 8, core::ZoomMode::kExact);
  CHECK(a.pyramid);
  CHECK(a.hist.counts == e.hist.counts);
  CHECK(a.hist.xbins.edges() == e.hist.xbins.edges());
  CHECK(a.hist.ybins.edges() == e.hist.ybins.edges());
  CHECK_EQ(a.hist.total(), e.hist.total());

  // 1D zoom on x conditioned on px routes through the pair pyramid when
  // the condition aligns with the pair's own px edges.
  const core::Selection cond = engine.select(
      "px >= " + format_double(ye[4]) + " && px < " + format_double(ye[20]));
  const auto plan = cond.zoom_plan1d(1, "x", xe.front(), xe.back(), 8);
  CHECK(plan.has_value());
  CHECK(plan->pair);
  check_zoom1d_twin(cond, 1, "x", xe.front(), xe.back(), 8, true);
}

void test_plan_explain_visibility() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  const core::Selection sel = engine.select("px > 1e9 && y > 0");
  const core::ExecutionPlan& plan = sel.plan();
  CHECK(plan.marginal_intervals().has_value());
  CHECK(!plan.zoom_steps().empty());
  bool pyramid_routed = false;
  for (const core::PredicateStep& s : plan.zoom_steps())
    pyramid_routed |= s.access == core::AccessPath::kPyramid;
  CHECK(pyramid_routed);
  const std::string text = plan.explain();
  CHECK(text.find("pyramid") != std::string::npos);

  // Disjunctions have no marginal shape: no zoom routing, and explain says
  // the zoom tier is unavailable for this query.
  const core::Selection orsel = engine.select("px > 1e9 || y > 0");
  CHECK(!orsel.plan().marginal_intervals().has_value());
  CHECK(orsel.plan().zoom_steps().empty());
}

}  // namespace

int main() {
  test_uniform_1d();
  test_nonuniform_1d();
  test_poisoned_build_and_roundtrip();
  test_pyramid_2d();
  test_plan_slice_snapping();
  test_dataset_zoom1d();
  test_dataset_zoom2d();
  test_plan_explain_visibility();
  return qdv::test::finish("test_pyramid");
}
