// Concurrency stress for svc::QueryService (and the TSan target): N client
// threads hammer one service with a seeded mix of coalescible (hot-pool)
// and distinct queries. Every response must be bit-identical to a serial
// re-execution through a fresh Engine, and — with an unlimited budget, so
// nothing seen can be evicted — every duplicate of an already-seen key must
// be served without re-execution: the executed count equals the distinct
// key count and the dedup rate equals the generated duplicate fraction.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/selection.hpp"
#include "sim/wakefield.hpp"
#include "svc/query_service.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;

constexpr std::size_t kClients = 8;
constexpr std::size_t kRequestsPerClient = 50;

const std::filesystem::path& dataset_dir() {
  static const std::filesystem::path dir = [] {
    const std::filesystem::path d = qdv::test::scratch_dir("service_stress");
    sim::WakefieldConfig cfg = sim::WakefieldConfig::preset_2d(600, /*seed=*/31);
    cfg.num_timesteps = 6;
    io::IndexConfig index_config;
    index_config.nbins = 64;
    CHECK(sim::generate_dataset(cfg, d, index_config) > 0);
    return d;
  }();
  return dir;
}

std::uint64_t next(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

svc::Request make_request(std::uint64_t& state, bool hot) {
  svc::Request r;
  r.timestep = next(state) % 6;
  const char* vars[] = {"px", "x", "y"};
  const std::string var = vars[next(state) % 3];
  // Hot thresholds come from a coarse grid (few distinct spellings); cold
  // ones from a fine grid, so cross-thread collisions are rare.
  const double frac =
      hot ? static_cast<double>(next(state) % 4) / 4.0
          : static_cast<double>(next(state) % 1000003) / 1000003.0;
  r.query = var + " > " + format_double(-1.0e10 + frac * 2.0e11);
  switch (next(state) % 5) {
    case 0:
      r.kind = svc::RequestKind::kCount;
      break;
    case 1:
      r.kind = svc::RequestKind::kIds;
      break;
    case 2:
      r.kind = svc::RequestKind::kHistogram1D;
      r.var_x = "px";
      r.nxbins = 32;
      break;
    case 3:
      r.kind = svc::RequestKind::kHistogram2D;
      r.var_x = "x";
      r.var_y = "px";
      r.nxbins = 16;
      r.nybins = 16;
      break;
    default:
      r.kind = svc::RequestKind::kSummary;
      r.var_x = "x";
      break;
  }
  r.priority = static_cast<svc::Priority>(next(state) % svc::kNumPriorities);
  return r;
}

/// The i-th request of client @p c — deterministic, 50% from the hot pool.
svc::Request request_for(std::size_t c, std::size_t i) {
  std::uint64_t state = 0x9e3779b97f4a7c15ull * (c + 1) + i * 2654435761ull + 1;
  const bool hot = i % 2 == 0;
  if (hot) {
    // Hot requests draw from a small shared pool: re-seed off the pool slot
    // only, so every client spells slot k identically.
    std::uint64_t slot_state = 77 + next(state) % 8;
    return make_request(slot_state, /*hot=*/true);
  }
  return make_request(state, /*hot=*/false);
}

void check_result_matches_serial(const core::Engine& reference,
                                 const svc::Request& req,
                                 const svc::Result& got) {
  CHECK_EQ(got.status, svc::Status::kOk);
  if (got.status != svc::Status::kOk) return;
  const core::Selection sel = reference.select(req.query);
  switch (req.kind) {
    case svc::RequestKind::kCount:
      CHECK_EQ(got.count, sel.count(req.timestep));
      break;
    case svc::RequestKind::kIds:
      CHECK(got.ids == sel.ids(req.timestep));
      break;
    case svc::RequestKind::kHistogram1D: {
      const Histogram1D h = sel.histogram1d(req.timestep, req.var_x, req.nxbins);
      CHECK(got.hist1d.counts == h.counts);
      CHECK(got.hist1d.bins == h.bins);
      break;
    }
    case svc::RequestKind::kHistogram2D: {
      const Histogram2D h = sel.histogram2d(req.timestep, req.var_x, req.var_y,
                                            req.nxbins, req.nybins);
      CHECK(got.hist2d.counts == h.counts);
      break;
    }
    case svc::RequestKind::kSummary: {
      const core::SummaryStats s = sel.summary(req.timestep, req.var_x);
      CHECK_EQ(got.summary.count, s.count);
      CHECK_EQ(got.summary.mean, s.mean);
      CHECK_EQ(got.summary.stddev, s.stddev);
      break;
    }
    case svc::RequestKind::kZoom1D:
    case svc::RequestKind::kZoom2D:
      // The stress mix never generates zoom requests; test_pyramid and the
      // bombard zoom scenario own that coverage.
      CHECK(false);
      break;
  }
}

void test_hammer_mixed_duplicates() {
  svc::QueryService service{core::Engine::open(dataset_dir())};
  std::vector<std::vector<svc::ResultPtr>> results(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&service, &results, c] {
      const auto session =
          service.open_session("stress-" + std::to_string(c));
      results[c].reserve(kRequestsPerClient);
      for (std::size_t i = 0; i < kRequestsPerClient; ++i)
        results[c].push_back(service.execute(session, request_for(c, i)));
      service.close_session(session);
    });
  }
  for (std::thread& t : threads) t.join();
  service.drain();

  // Zero mismatches vs serial execution through a fresh engine.
  const core::Engine reference = core::Engine::open(dataset_dir());
  for (std::size_t c = 0; c < kClients; ++c)
    for (std::size_t i = 0; i < kRequestsPerClient; ++i)
      check_result_matches_serial(reference, request_for(c, i), *results[c][i]);

  const svc::ServiceStats stats = service.stats();
  const std::uint64_t total = kClients * kRequestsPerClient;
  CHECK_EQ(stats.submitted, total);
  CHECK_EQ(stats.completed, total);
  CHECK_EQ(stats.failed, 0u);
  CHECK_EQ(stats.rejected_queue + stats.rejected_budget, 0u);
  CHECK_EQ(stats.executed + stats.coalesce_hits + stats.result_cache_hits, total);
  // The floor is derived, not a magic threshold: with an unlimited budget
  // (nothing cached is ever evicted, every payload here is far below the
  // cacheable-size cap) each distinct key executes exactly once and every
  // duplicate attaches in flight or hits the result cache. Distinct-by-text
  // over-counts keys that canonicalize together, so the rate bound below
  // is a true floor either way.
  std::unordered_set<std::string> keys;
  for (std::size_t c = 0; c < kClients; ++c)
    for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
      const svc::Request r = request_for(c, i);
      std::string key = std::to_string(static_cast<int>(r.kind));
      for (const std::string& part :
           {std::to_string(r.timestep), r.var_x, r.var_y,
            std::to_string(r.nxbins), std::to_string(r.nybins), r.query}) {
        key += '|';
        key += part;
      }
      keys.insert(std::move(key));
    }
  const std::size_t distinct = keys.size();
  const double dup_floor = 1.0 - static_cast<double>(distinct) / total;
  std::fprintf(stderr,
               "stress: %llu executed / %zu distinct, %llu coalesced, "
               "%llu cached (dedup rate %.1f%%, generated dup %.1f%%), "
               "p99 %.3f ms\n",
               static_cast<unsigned long long>(stats.executed), distinct,
               static_cast<unsigned long long>(stats.coalesce_hits),
               static_cast<unsigned long long>(stats.result_cache_hits),
               100.0 * stats.coalesce_rate(), 100.0 * dup_floor,
               stats.p99_seconds * 1e3);
  CHECK(stats.executed <= distinct);
  CHECK(stats.coalesce_rate() >= dup_floor - 1e-9);
  CHECK(stats.p50_seconds <= stats.p99_seconds);
  CHECK(stats.latency_samples == total);
}

void test_hammer_distinct_queries() {
  // All-distinct stream: nothing to coalesce, everything must still be
  // correct and the queue must fully drain.
  svc::ServiceConfig config;
  config.cache_results = false;
  svc::QueryService service{core::Engine::open(dataset_dir()), config};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&service, c] {
      const auto session = service.open_session();
      for (std::size_t i = 0; i < 20; ++i) {
        svc::Request r;
        r.kind = svc::RequestKind::kCount;
        r.timestep = i % 6;
        r.query = "px > " + std::to_string(1 + c * 1000 + i) + "e6";
        const svc::ResultPtr result = service.execute(session, r);
        CHECK_EQ(result->status, svc::Status::kOk);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  service.drain();
  const svc::ServiceStats stats = service.stats();
  CHECK_EQ(stats.completed, kClients * 20u);
  CHECK_EQ(stats.coalesce_hits, 0u);
  CHECK_EQ(stats.queue_depth, 0u);
  CHECK_EQ(stats.inflight, 0u);
}

}  // namespace

int main() {
  test_hammer_mixed_duplicates();
  test_hammer_distinct_queries();
  return qdv::test::finish("test_service_stress");
}
