// Differential tests for the block-oriented execution kernels (DESIGN.md
// Section 10): every kernel is pitted against its scalar reference across
// adversarial shapes — fills crossing the 30-bit fill-counter boundary,
// mixed-length operands, empty/all-ones vectors, selectivities from 1e-5
// to 1.0 — and results must be bit-identical.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

#include "bitmap/bins.hpp"
#include "bitmap/kernels.hpp"
#include "bitmap/simd.hpp"
#include "test_common.hpp"

namespace {

using qdv::Bins;
using qdv::BitVector;

/// Deterministic xorshift run generator; max_run controls the shape (short
/// runs = literal-heavy, long runs = fill-heavy).
BitVector make_runs(std::uint64_t nbits, std::uint64_t seed, std::uint64_t max_run) {
  BitVector v;
  std::uint64_t state = seed;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  bool value = next() & 1;
  std::uint64_t pos = 0;
  while (pos < nbits) {
    const std::uint64_t run = std::min(nbits - pos, 1 + next() % max_run);
    v.append_run(value, run);
    value = !value;
    pos += run;
  }
  return v;
}

/// Sparse vector at the given selectivity (fraction of set bits).
BitVector make_sparse(std::uint64_t nbits, double selectivity, std::uint64_t seed) {
  BitVector v;
  std::uint64_t state = seed | 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const auto threshold =
      static_cast<std::uint64_t>(selectivity * 18446744073709551615.0);
  for (std::uint64_t i = 0; i < nbits; ++i) v.append_bit(next() <= threshold);
  return v;
}

/// Scalar reference: positions via the element-at-a-time for_each_set.
std::vector<std::uint64_t> ref_positions(const BitVector& v) {
  std::vector<std::uint64_t> out;
  v.for_each_set([&](std::uint64_t pos) { out.push_back(pos); });
  return out;
}

/// The adversarial shape zoo shared by the cursor and OR tests.
std::vector<BitVector> shape_zoo() {
  std::vector<BitVector> shapes;
  shapes.emplace_back();                        // empty
  shapes.push_back(BitVector::zeros(1));        // single zero
  shapes.push_back(BitVector::ones(1));         // single one
  shapes.push_back(BitVector::zeros(100000));   // long zero fill
  shapes.push_back(BitVector::ones(100000));    // long one fill
  shapes.push_back(make_runs(31, 7, 5));        // exactly one group
  shapes.push_back(make_runs(62, 11, 9));       // exactly two groups
  shapes.push_back(make_runs(63, 13, 64));      // tail of 1 bit
  shapes.push_back(make_runs(12345, 17, 3));    // literal-heavy, odd tail
  shapes.push_back(make_runs(50000, 19, 4000)); // fill/literal interleave
  shapes.push_back(make_sparse(40000, 1e-5, 23));
  shapes.push_back(make_sparse(40000, 1e-3, 29));
  shapes.push_back(make_sparse(40000, 0.1, 31));
  shapes.push_back(make_sparse(40000, 0.5, 37));
  shapes.push_back(make_sparse(40000, 1.0, 41));
  // Dense buffer boundary: just below / at / above kBufWords * 64 bits of
  // consecutive literals.
  const std::uint64_t buf_bits = qdv::kern::DenseBlockCursor::kBufWords * 64;
  shapes.push_back(make_runs(buf_bits - 1, 43, 2));
  shapes.push_back(make_runs(buf_bits, 47, 2));
  shapes.push_back(make_runs(buf_bits + 65, 53, 2));
  // Fill exactly at the symbolic-run threshold boundary.
  {
    BitVector v = make_runs(310, 59, 2);
    v.append_run(true, qdv::kern::DenseBlockCursor::kRunThresholdBits);
    v.append_run(false, qdv::kern::DenseBlockCursor::kRunThresholdBits - 1);
    v.append_run(true, 17);
    shapes.push_back(std::move(v));
  }
  return shapes;
}

void test_cursor_matches_for_each_set() {
  for (const BitVector& v : shape_zoo()) {
    const std::vector<std::uint64_t> expect = ref_positions(v);
    std::vector<std::uint64_t> got;
    qdv::kern::for_each_set_blocked(v, [&](std::uint64_t pos) {
      got.push_back(pos);
    });
    CHECK(got == expect);
    CHECK_EQ(v.count(), expect.size());
    // to_positions rides the same cursor.
    const std::vector<std::uint32_t> pos32 = v.to_positions();
    CHECK_EQ(pos32.size(), expect.size());
    for (std::size_t i = 0; i < pos32.size(); ++i)
      CHECK_EQ(static_cast<std::uint64_t>(pos32[i]), expect[i]);
  }
}

void test_cursor_blocks_tile_and_stay_ordered() {
  for (const BitVector& v : shape_zoo()) {
    qdv::kern::DenseBlockCursor cursor(v);
    qdv::kern::DenseBlockCursor::Block b;
    std::uint64_t prev_end = 0;
    bool first = true;
    while (cursor.next(b)) {
      CHECK(b.nbits > 0);
      if (!first) CHECK_EQ(b.base, prev_end);  // contiguous tiling
      first = false;
      prev_end = b.base + b.nbits;
    }
    if (!first) CHECK(prev_end >= v.size());  // covers the whole vector
  }
}

void test_cursor_windows() {
  for (const BitVector& v : shape_zoo()) {
    const std::vector<std::uint64_t> all = ref_positions(v);
    const std::uint64_t n = v.size();
    const std::uint64_t windows[][2] = {
        {0, n},           {0, n / 2},       {n / 2, n},     {n / 3, 2 * n / 3},
        {0, 0},           {n, n},           {1, 2},         {31, 62},
        {30, 33},         {n > 5 ? n - 5 : 0, n},           {7, 8},
    };
    for (const auto& w : windows) {
      const std::uint64_t begin = w[0], end = w[1];
      std::vector<std::uint64_t> expect;
      for (const std::uint64_t p : all)
        if (p >= begin && p < end) expect.push_back(p);
      std::vector<std::uint64_t> got;
      qdv::kern::for_each_set_blocked(v, begin, end, [&](std::uint64_t pos) {
        got.push_back(pos);
      });
      CHECK(got == expect);
    }
  }
}

void test_giant_fills_cross_counter_boundary() {
  // A fill longer than the 30-bit group counter (kCountMask groups) must be
  // split across words; the kernels must still see one logical run.
  constexpr std::uint64_t kCounterGroups = 0x3FFFFFFFull;
  constexpr std::uint64_t kGiant = kCounterGroups * 31 + 200;  // crosses it
  {
    BitVector v;
    v.append_run(false, kGiant);
    v.append_run(true, 95);
    v.append_run(false, 40);
    CHECK_EQ(v.count(), 95u);
    std::uint64_t seen = 0, first = 0;
    qdv::kern::for_each_set_blocked(v, [&](std::uint64_t pos) {
      if (seen == 0) first = pos;
      ++seen;
    });
    CHECK_EQ(seen, 95u);
    CHECK_EQ(first, kGiant);
    // Windowed decode deep inside the giant fill.
    std::uint64_t in_window = 0;
    qdv::kern::for_each_set_blocked(v, kGiant - 10, kGiant + 5,
                                    [&](std::uint64_t) { ++in_window; });
    CHECK_EQ(in_window, 5u);
  }
  {
    BitVector v;
    v.append_run(true, kGiant);
    CHECK_EQ(v.count(), kGiant);
    // Count via run blocks only: iterating bits would take forever.
    qdv::kern::DenseBlockCursor cursor(v);
    qdv::kern::DenseBlockCursor::Block b;
    std::uint64_t ones = 0;
    std::size_t blocks = 0;
    while (cursor.next(b)) {
      ++blocks;
      if (b.is_run) {
        if (b.value) ones += b.nbits;
      } else {
        for (std::size_t w = 0; w < (b.nbits + 63) / 64; ++w)
          ones += static_cast<std::uint64_t>(std::popcount(b.words[w]));
      }
    }
    CHECK_EQ(ones, kGiant);
    CHECK(blocks <= 4);  // fills stay symbolic, never expanded
  }
}

void test_or_many_kway_vs_pairwise() {
  const std::vector<BitVector> shapes = shape_zoo();
  // Operand sets of mixed shapes and lengths, including duplicates.
  const std::size_t picks[][6] = {
      {3, 4, 0, 0, 0, 2},   {10, 11, 12, 13, 14, 6},  {1, 2, 3, 4, 5, 6},
      {9, 9, 9, 10, 15, 3}, {16, 17, 18, 14, 8, 5},
  };
  for (const auto& pick : picks) {
    const std::size_t k = pick[5];
    std::vector<const BitVector*> ops;
    std::uint64_t nbits = 0;
    for (std::size_t i = 0; i < k && i < 5; ++i) {
      ops.push_back(&shapes[pick[i]]);
      nbits = std::max(nbits, shapes[pick[i]].size());
    }
    const BitVector kway = qdv::kern::or_many_kway(ops, nbits);
    const BitVector pairwise = qdv::kern::ref::or_many_pairwise(ops, nbits);
    CHECK(kway == pairwise);
    CHECK_EQ(kway.size(), pairwise.size());
    // Also with extension beyond the longest operand.
    const BitVector kway_ext = qdv::kern::or_many_kway(ops, nbits + 777);
    const BitVector pair_ext = qdv::kern::ref::or_many_pairwise(ops, nbits + 777);
    CHECK(kway_ext == pair_ext);
  }
  // Wide fan-in: 33 sparse operands (the multi-bin range probe shape).
  std::vector<BitVector> bins;
  for (std::size_t i = 0; i < 33; ++i)
    bins.push_back(make_sparse(20000, 0.01, 1000 + i));
  std::vector<const BitVector*> ops;
  for (const BitVector& b : bins) ops.push_back(&b);
  CHECK(qdv::kern::or_many_kway(ops, 20000) ==
        qdv::kern::ref::or_many_pairwise(ops, 20000));
  // Degenerate inputs.
  CHECK_EQ(qdv::kern::or_many_kway({}, 512).size(), 512u);
  CHECK_EQ(qdv::kern::or_many_kway({}, 512).count(), 0u);
}

void test_locator_matches_locate() {
  std::uint64_t state = 99;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<Bins> bin_sets;
  bin_sets.push_back(qdv::make_uniform_bins(-3.5, 12.25, 64));
  bin_sets.push_back(qdv::make_uniform_bins(0.0, 1.0, 1024));
  bin_sets.push_back(qdv::make_precision_bins(-1.0, 1.0, 2, 4096));
  {
    std::vector<double> values;
    for (int i = 0; i < 5000; ++i)
      values.push_back(std::pow(static_cast<double>(next() % 1000) / 100.0, 2.0));
    bin_sets.push_back(qdv::make_quantile_bins(values, 32));  // non-uniform
    // NaN rows must not shape quantile edges (they can never land in a
    // bin): edges built from a NaN-polluted copy match the clean ones.
    std::vector<double> polluted = values;
    for (std::size_t i = 0; i < polluted.size(); i += 97)
      polluted[i] = std::numeric_limits<double>::quiet_NaN();
    std::vector<double> clean;
    for (std::size_t i = 0; i < values.size(); ++i)
      if (i % 97 != 0) clean.push_back(values[i]);
    CHECK(qdv::make_quantile_bins(polluted, 32) ==
          qdv::make_quantile_bins(clean, 32));
  }
  for (const Bins& bins : bin_sets) {
    const Bins::Locator locator = bins.locator();
    std::vector<double> probes;
    for (const double e : bins.edges()) {
      probes.push_back(e);
      probes.push_back(std::nextafter(e, -1e300));
      probes.push_back(std::nextafter(e, 1e300));
    }
    probes.push_back(bins.lo() - 1.0);
    probes.push_back(bins.hi() + 1.0);
    probes.push_back(std::numeric_limits<double>::quiet_NaN());
    probes.push_back(std::numeric_limits<double>::infinity());
    probes.push_back(-std::numeric_limits<double>::infinity());
    const double span = bins.hi() - bins.lo();
    for (int i = 0; i < 10000; ++i)
      probes.push_back(bins.lo() +
                       span * (static_cast<double>(next() % 1000003) / 1000003.0));
    for (const double v : probes) CHECK_EQ(locator(v), bins.locate(v));
  }
}

void test_gather_hist_nan_rows() {
  // NaN/±inf rows in the value columns: the block-gather kernels, the
  // sharded tally, and the scalar locate reference must agree exactly —
  // NaN never lands in a bin, ±inf only when the bin range reaches it.
  constexpr std::uint64_t kRows = 20011;
  std::uint64_t state = 1234;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<double> xs(kRows), ys(kRows);
  for (std::uint64_t i = 0; i < kRows; ++i) {
    xs[i] = static_cast<double>(next() % 2000) / 10.0 - 50.0;
    ys[i] = static_cast<double>(next() % 997) / 100.0;
    switch (next() % 23) {
      case 0: xs[i] = std::numeric_limits<double>::quiet_NaN(); break;
      case 1: xs[i] = std::numeric_limits<double>::infinity(); break;
      case 2: xs[i] = -std::numeric_limits<double>::infinity(); break;
      case 3: ys[i] = std::numeric_limits<double>::quiet_NaN(); break;
      default: break;
    }
  }
  const Bins xbins = qdv::make_uniform_bins(-50.0, 150.0, 48);
  std::vector<double> quantile_input(ys.begin(), ys.begin() + 5000);
  const Bins ybins = qdv::make_quantile_bins(quantile_input, 16);  // non-uniform
  const Bins::Locator xloc = xbins.locator();
  const Bins::Locator yloc = ybins.locator();

  for (const BitVector& rows :
       {make_sparse(kRows, 0.3, 5), make_sparse(kRows, 1e-3, 9),
        BitVector::ones(kRows), make_runs(kRows, 77, 3000)}) {
    // Scalar reference: element-at-a-time decode + Bins::locate.
    std::vector<std::uint64_t> ref1(xbins.num_bins(), 0);
    std::vector<std::uint64_t> ref2(xbins.num_bins() * ybins.num_bins(), 0);
    rows.for_each_set([&](std::uint64_t row) {
      const std::ptrdiff_t bx = xbins.locate(xs[row]);
      const std::ptrdiff_t by = ybins.locate(ys[row]);
      if (bx >= 0) ++ref1[static_cast<std::size_t>(bx)];
      if (bx >= 0 && by >= 0)
        ++ref2[static_cast<std::size_t>(bx) * ybins.num_bins() +
               static_cast<std::size_t>(by)];
    });
    std::uint64_t nan_dropped = 0;
    rows.for_each_set([&](std::uint64_t row) {
      if (std::isnan(xs[row])) ++nan_dropped;
    });
    if (rows.count() > 1000) CHECK(nan_dropped > 0);  // fixtures bite
    // Whole-vector gather (covers the sparse scalar-decode fallback too).
    std::vector<std::uint64_t> got1(ref1.size(), 0);
    qdv::kern::gather_hist1d(rows, 0, kRows, xs.data(), xloc, got1.data());
    CHECK(got1 == ref1);
    std::vector<std::uint64_t> got2(ref2.size(), 0);
    qdv::kern::gather_hist2d(rows, 0, kRows, xs.data(), ys.data(), xloc, yloc,
                             ybins.num_bins(), got2.data());
    CHECK(got2 == ref2);
    // Sharded path: per-shard windows, merged partials.
    for (const std::size_t nshards : {2u, 7u}) {
      std::vector<std::uint64_t> sharded(ref1.size(), 0);
      qdv::kern::sharded_tally(
          kRows, sharded.size(), sharded.data(),
          [&](std::uint64_t begin, std::uint64_t end, std::uint64_t* counts) {
            qdv::kern::gather_hist1d(rows, begin, end, xs.data(), xloc, counts);
          },
          nshards);
      CHECK(sharded == ref1);
    }
  }
}

void test_sharded_tally_matches_direct() {
  // Synthetic per-row tally: bucket = row % ncounts, weighted by a second
  // pass over a bitvector gather to exercise the windowed cursor per shard.
  constexpr std::uint64_t kRows = 100003;
  constexpr std::size_t kCounts = 97;
  const BitVector rows = make_sparse(kRows, 0.2, 4242);
  std::vector<std::uint64_t> direct(kCounts, 0);
  rows.for_each_set([&](std::uint64_t row) { ++direct[row % kCounts]; });
  for (const std::size_t nshards : {1u, 2u, 3u, 8u, 31u}) {
    std::vector<std::uint64_t> sharded(kCounts, 0);
    qdv::kern::sharded_tally(
        kRows, kCounts, sharded.data(),
        [&](std::uint64_t begin, std::uint64_t end, std::uint64_t* counts) {
          qdv::kern::for_each_set_blocked(rows, begin, end, [&](std::uint64_t r) {
            ++counts[r % kCounts];
          });
        },
        nshards);
    CHECK(sharded == direct);
  }
  // The auto-sharding overload must agree too.
  std::vector<std::uint64_t> autos(kCounts, 0);
  qdv::kern::sharded_tally(
      kRows, kCounts, autos.data(),
      [&](std::uint64_t begin, std::uint64_t end, std::uint64_t* counts) {
        qdv::kern::for_each_set_blocked(rows, begin, end, [&](std::uint64_t r) {
          ++counts[r % kCounts];
        });
      });
  CHECK(autos == direct);
}

// ------------------------------------------------------------------------
// SIMD dispatch layer: every compiled-and-supported ISA level must be
// bit-identical to the scalar level on adversarial fixtures.
// ------------------------------------------------------------------------

namespace simd = qdv::simd;

std::vector<simd::Isa> supported_levels() {
  std::vector<simd::Isa> levels = {simd::Isa::kScalar};
  if (simd::supported(simd::Isa::kAvx2)) levels.push_back(simd::Isa::kAvx2);
  if (simd::supported(simd::Isa::kAvx512)) levels.push_back(simd::Isa::kAvx512);
  return levels;
}

void test_simd_force_env_override() {
  // Must run before anything calls simd::force(): the ctest variants run
  // this binary under QDV_FORCE_ISA=<level>, and the first active() call
  // has to resolve to that level clamped to what the host supports.
  simd::Isa expect =
      simd::parse_isa(std::getenv("QDV_FORCE_ISA"), simd::best_supported());
  while (expect != simd::Isa::kScalar && !simd::supported(expect))
    expect = static_cast<simd::Isa>(static_cast<int>(expect) - 1);
  CHECK_EQ(static_cast<int>(simd::active()), static_cast<int>(expect));
  CHECK_EQ(static_cast<int>(simd::ops().isa), static_cast<int>(expect));
  CHECK(simd::supported(simd::active()));
}

void test_simd_position_kernels_differential() {
  const simd::Ops& scalar = simd::ops_for(simd::Isa::kScalar);
  std::uint64_t state = 777;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  // Word fixtures: all-zero, all-one, single bits at both ends, alternating,
  // plus random sparse/dense/mixed runs (ragged lengths).
  std::vector<std::vector<std::uint64_t>> word_sets;
  word_sets.push_back({});
  word_sets.push_back({0});
  word_sets.push_back({~std::uint64_t{0}});
  word_sets.push_back({1, std::uint64_t{1} << 63, 0x5555555555555555ull,
                       0xAAAAAAAAAAAAAAAAull, 0, ~std::uint64_t{0}});
  {
    std::vector<std::uint64_t> dense, sparse, mixed;
    for (int i = 0; i < 137; ++i) {
      dense.push_back(next());
      sparse.push_back(i % 9 == 0 ? std::uint64_t{1} << (next() % 64) : 0);
      mixed.push_back(i % 2 ? next() : (i % 4 ? 0 : ~std::uint64_t{0}));
    }
    word_sets.push_back(std::move(dense));
    word_sets.push_back(std::move(sparse));
    word_sets.push_back(std::move(mixed));
  }
  // Group fixtures: bit 31 set on some words must be ignored (fill flag
  // position is not payload).
  std::vector<std::vector<std::uint32_t>> group_sets;
  group_sets.push_back({});
  group_sets.push_back({0});
  group_sets.push_back({0x7FFFFFFFu});
  group_sets.push_back({0xFFFFFFFFu, 0x80000001u, 0x40000000u});
  {
    std::vector<std::uint32_t> random;
    for (int i = 0; i < 301; ++i)
      random.push_back(static_cast<std::uint32_t>(next()));
    group_sets.push_back(std::move(random));
  }
  const std::uint64_t bases[] = {0, 31, 64, 1000003};  // unaligned starts
  for (const simd::Isa level : supported_levels()) {
    const simd::Ops& ops = simd::ops_for(level);
    for (const auto& words : word_sets) {
      for (const std::uint64_t base : bases) {
        std::vector<std::uint32_t> a(words.size() * 64 + simd::kPositionSlack);
        std::vector<std::uint32_t> b(a.size());
        const std::size_t na =
            scalar.positions_from_words(words.data(), words.size(), base, a.data());
        const std::size_t nb =
            ops.positions_from_words(words.data(), words.size(), base, b.data());
        CHECK_EQ(na, nb);
        for (std::size_t i = 0; i < na; ++i) CHECK_EQ(a[i], b[i]);
      }
    }
    for (const auto& groups : group_sets) {
      for (const std::uint64_t base : bases) {
        std::vector<std::uint32_t> a(groups.size() * 31 + simd::kPositionSlack);
        std::vector<std::uint32_t> b(a.size());
        const std::size_t na = scalar.positions_from_groups(
            groups.data(), groups.size(), base, a.data());
        const std::size_t nb =
            ops.positions_from_groups(groups.data(), groups.size(), base, b.data());
        CHECK_EQ(na, nb);
        for (std::size_t i = 0; i < na; ++i) CHECK_EQ(a[i], b[i]);
      }
    }
  }
}

void test_simd_hist_kernels_differential() {
  constexpr std::size_t kN = 4099;  // ragged vs every vector width
  std::uint64_t state = 31337;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const Bins ubins = qdv::make_uniform_bins(-10.0, 10.0, 37);
  std::vector<double> sample;
  for (int i = 0; i < 3000; ++i)
    sample.push_back(std::pow(static_cast<double>(next() % 997) / 100.0, 1.5));
  const Bins qbins = qdv::make_quantile_bins(sample, 21);  // non-uniform
  for (const Bins* bins : {&ubins, &qbins}) {
    const Bins::Locator loc = bins->locator();
    const simd::LocatorView view = loc.view();
    // Values: randoms spanning past the bin range, exact edges and one-ulp
    // neighbours, NaN and ±inf sprinkled in.
    std::vector<double> xs(kN), ys(kN);
    const double lo = bins->lo(), hi = bins->hi();
    for (std::size_t i = 0; i < kN; ++i) {
      xs[i] = lo + (hi - lo) * 1.2 *
                  (static_cast<double>(next() % 1000003) / 1000003.0) -
              0.1 * (hi - lo);
      ys[i] = lo + (hi - lo) * (static_cast<double>(next() % 997) / 997.0);
      const std::uint64_t r = next() % 29;
      if (r < bins->edges().size())
        xs[i] = bins->edges()[r];
      else if (r == 24)
        xs[i] = std::numeric_limits<double>::quiet_NaN();
      else if (r == 25)
        xs[i] = std::numeric_limits<double>::infinity();
      else if (r == 26)
        xs[i] = -std::numeric_limits<double>::infinity();
      else if (r == 27)
        xs[i] = std::nextafter(bins->edges()[next() % bins->edges().size()],
                               -1e300);
      else if (r == 28)
        xs[i] = std::nextafter(bins->edges()[next() % bins->edges().size()],
                               1e300);
      if (next() % 31 == 0) ys[i] = std::numeric_limits<double>::quiet_NaN();
    }
    // Row sets: ragged lengths (vs 4/8/16-lane widths), unaligned starts,
    // and strided/duplicate-free shuffles.
    std::vector<std::uint32_t> all_rows(kN);
    for (std::size_t i = 0; i < kN; ++i)
      all_rows[i] = static_cast<std::uint32_t>(i);
    const std::size_t lengths[] = {0, 1, 3, 7, 8, 15, 16, 17, 33, 1023, kN};
    const std::size_t offsets[] = {0, 1, 5};
    const std::size_t ny = bins->num_bins();
    const simd::Ops& scalar = simd::ops_for(simd::Isa::kScalar);
    for (const simd::Isa level : supported_levels()) {
      const simd::Ops& ops = simd::ops_for(level);
      for (const std::size_t len : lengths) {
        for (const std::size_t off : offsets) {
          if (off + len > kN) continue;
          const std::uint32_t* rows = all_rows.data() + off;
          std::vector<std::uint64_t> a(ny, 0), b(ny, 0);
          scalar.hist1d_rows(rows, len, xs.data(), view, a.data());
          ops.hist1d_rows(rows, len, xs.data(), view, b.data());
          CHECK(a == b);
          std::vector<std::uint64_t> a2(ny * ny, 0), b2(ny * ny, 0);
          scalar.hist2d_rows(rows, len, xs.data(), ys.data(), view, view, ny,
                             a2.data());
          ops.hist2d_rows(rows, len, xs.data(), ys.data(), view, view, ny,
                          b2.data());
          CHECK(a2 == b2);
          std::vector<std::uint64_t> a3(ny, 0), b3(ny, 0);
          scalar.hist1d_dense(xs.data() + off, len, view, a3.data());
          ops.hist1d_dense(xs.data() + off, len, view, b3.data());
          CHECK(a3 == b3);
          std::vector<std::uint64_t> a4(ny * ny, 0), b4(ny * ny, 0);
          scalar.hist2d_dense(xs.data() + off, ys.data() + off, len, view,
                              view, ny, a4.data());
          ops.hist2d_dense(xs.data() + off, ys.data() + off, len, view, view,
                           ny, b4.data());
          CHECK(a4 == b4);
        }
      }
    }
  }
}

void test_simd_forced_levels_end_to_end() {
  // Force each supported level in turn and re-run the public kernels over
  // the shape zoo: to_positions, gather_hist1d/2d (whole-vector and
  // windowed) must be bit-identical across levels.
  const simd::Isa initial = simd::active();
  constexpr std::uint64_t kRows = 40000;
  std::uint64_t state = 4242;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<double> xs(kRows), ys(kRows);
  for (std::uint64_t i = 0; i < kRows; ++i) {
    xs[i] = static_cast<double>(next() % 4000) / 10.0 - 100.0;
    ys[i] = static_cast<double>(next() % 1009) / 50.0;
    if (next() % 41 == 0) xs[i] = std::numeric_limits<double>::quiet_NaN();
    if (next() % 43 == 0) ys[i] = std::numeric_limits<double>::infinity();
  }
  const Bins xbins = qdv::make_uniform_bins(-100.0, 300.0, 64);
  std::vector<double> sample(ys.begin(), ys.begin() + 4000);
  const Bins ybins = qdv::make_quantile_bins(sample, 24);
  const Bins::Locator xloc = xbins.locator();
  const Bins::Locator yloc = ybins.locator();
  const std::uint64_t windows[][2] = {
      {0, kRows}, {0, kRows / 2}, {kRows / 3, 2 * kRows / 3}, {31, 12345}};
  for (const BitVector& v : shape_zoo()) {
    // Per-shape scalar baselines, then each vector level against them.
    simd::force(simd::Isa::kScalar);
    const std::vector<std::uint32_t> base_pos = v.to_positions();
    std::vector<std::vector<std::uint64_t>> base1, base2;
    const std::uint64_t n = std::min<std::uint64_t>(v.size(), kRows);
    for (const auto& w : windows) {
      std::vector<std::uint64_t> h1(xbins.num_bins(), 0);
      std::vector<std::uint64_t> h2(xbins.num_bins() * ybins.num_bins(), 0);
      qdv::kern::gather_hist1d(v, std::min(w[0], n), std::min(w[1], n),
                               xs.data(), xloc, h1.data());
      qdv::kern::gather_hist2d(v, std::min(w[0], n), std::min(w[1], n),
                               xs.data(), ys.data(), xloc, yloc,
                               ybins.num_bins(), h2.data());
      base1.push_back(std::move(h1));
      base2.push_back(std::move(h2));
    }
    for (const simd::Isa level : supported_levels()) {
      CHECK_EQ(static_cast<int>(simd::force(level)), static_cast<int>(level));
      CHECK(v.to_positions() == base_pos);
      for (std::size_t wi = 0; wi < std::size(windows); ++wi) {
        std::vector<std::uint64_t> h1(xbins.num_bins(), 0);
        std::vector<std::uint64_t> h2(xbins.num_bins() * ybins.num_bins(), 0);
        qdv::kern::gather_hist1d(v, std::min(windows[wi][0], n),
                                 std::min(windows[wi][1], n), xs.data(), xloc,
                                 h1.data());
        qdv::kern::gather_hist2d(v, std::min(windows[wi][0], n),
                                 std::min(windows[wi][1], n), xs.data(),
                                 ys.data(), xloc, yloc, ybins.num_bins(),
                                 h2.data());
        CHECK(h1 == base1[wi]);
        CHECK(h2 == base2[wi]);
      }
    }
  }
  // Dispatch counters: forced-scalar runs count as scalar, vector levels as
  // vector.
  simd::reset_dispatch_counts();
  simd::force(simd::Isa::kScalar);
  BitVector probe = make_sparse(5000, 0.2, 7);
  (void)probe.to_positions();
  CHECK(simd::dispatch_counts().positions.scalar > 0);
  CHECK_EQ(simd::dispatch_counts().positions.vector, 0u);
  const simd::Isa best = simd::best_supported();
  if (best != simd::Isa::kScalar) {
    simd::force(best);
    (void)probe.to_positions();
    CHECK(simd::dispatch_counts().positions.vector > 0);
  }
  simd::force(initial);
}

}  // namespace

int main() {
  test_simd_force_env_override();
  test_cursor_matches_for_each_set();
  test_cursor_blocks_tile_and_stay_ordered();
  test_cursor_windows();
  test_giant_fills_cross_counter_boundary();
  test_or_many_kway_vs_pairwise();
  test_locator_matches_locate();
  test_gather_hist_nan_rows();
  test_sharded_tally_matches_direct();
  test_simd_position_kernels_differential();
  test_simd_hist_kernels_differential();
  test_simd_forced_levels_end_to_end();
  return qdv::test::finish("test_kernels");
}
