// Engine + Selection: semantic equivalence of canonicalized plans against
// scan evaluation, parse round-trips on a real table, cache hit/miss/evict
// accounting, selection reuse across session views, and the engine-shared
// parallel paths.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/selection.hpp"
#include "core/session.hpp"
#include "parallel/par_ops.hpp"
#include "sim/wakefield.hpp"
#include "test_common.hpp"

namespace {

using namespace qdv;

/// True when the suite runs under a byte budget (QDV_MEMORY_BUDGET, set by
/// the test_engine_budgeted ctest variant). Eviction pressure makes exact
/// hit/miss/entry counts nondeterministic, so the strict accounting checks
/// are skipped — every correctness check still runs, which is the point:
/// all query paths must produce identical answers out-of-core.
bool budgeted() { return std::getenv("QDV_MEMORY_BUDGET") != nullptr; }

const std::filesystem::path& dataset_dir() {
  static const std::filesystem::path dir = [] {
    const std::filesystem::path d = qdv::test::scratch_dir("engine");
    sim::WakefieldConfig cfg = sim::WakefieldConfig::preset_2d(300, /*seed=*/13);
    io::IndexConfig index_config;
    index_config.nbins = 64;
    CHECK(sim::generate_dataset(cfg, d, index_config) > 0);
    return d;
  }();
  return dir;
}

/// Queries exercising fusion, De Morgan, nesting, and mixed variables.
const std::vector<const char*>& corpus() {
  static const std::vector<const char*> texts = {
      "px > 8.872e10",
      "px > 1e10 && px < 9e10",
      "px > 1e10 && px <= 9e10 && y > 0",
      "!(px > 1e10 && y > 0)",
      "!(px <= 1e9 || xrel >= 0.9)",
      "y > 0 && y < 1e-5 && y > -1",
      "(px > 8.872e10 && y > 0) || (px > 8.872e10 && y <= 0)",
      "!(!(px > 1e10)) && x >= 0",
      "px == 0",
      "px > 5e10 && px < 1e10",  // contradiction
  };
  return texts;
}

void test_selection_matches_scan() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  const io::TimestepTable& table = engine.dataset().table(37);
  for (const char* text : corpus()) {
    const core::Selection sel = engine.select(text);
    const BitVector via_scan = table.query(text, EvalMode::kScan);
    CHECK(sel.bits(37)->to_positions() == via_scan.to_positions());
    CHECK_EQ(sel.count(37), via_scan.count());
  }
}

void test_parse_round_trip_semantics() {
  // parse_query(q->to_string()) selects exactly the same records as q, for
  // both the raw and the canonicalized tree.
  const core::Engine engine = core::Engine::open(dataset_dir());
  const io::TimestepTable& table = engine.dataset().table(37);
  for (const char* text : corpus()) {
    const QueryPtr q = parse_query(text);
    const QueryPtr reparsed = parse_query(q->to_string());
    CHECK(table.query(*q, EvalMode::kScan).to_positions() ==
          table.query(*reparsed, EvalMode::kScan).to_positions());
    const QueryPtr canonical = core::canonicalize(q);
    const QueryPtr canonical_reparsed = parse_query(canonical->to_string());
    CHECK(table.query(*canonical, EvalMode::kScan).to_positions() ==
          table.query(*canonical_reparsed, EvalMode::kScan).to_positions());
  }
}

void test_cache_accounting() {
  core::Engine engine = core::Engine::open(dataset_dir());
  const core::Selection sel = engine.select("px > 8.872e10 && y > 0");
  CHECK_EQ(engine.stats().hits, 0u);
  CHECK_EQ(engine.stats().misses, 0u);  // planning alone evaluates nothing

  const std::uint64_t cold = sel.count(37);
  const core::EngineStats after_cold = engine.stats();
  CHECK_EQ(sel.count(37), cold);  // warm: same answer, evictions or not
  const core::Selection refined = sel.refine("x >= 0");
  (void)refined.count(37);
  (void)sel.count(20);  // a different timestep is a different cache entry

  if (!budgeted()) {
    CHECK_EQ(after_cold.hits, 0u);
    CHECK(after_cold.misses >= 3);  // root + two leaves
    CHECK(after_cold.entries >= 3);
    CHECK(after_cold.bytes > 0);

    core::Engine strict = core::Engine::open(dataset_dir());
    const core::Selection s2 = strict.select("px > 8.872e10 && y > 0");
    (void)s2.count(37);
    const core::EngineStats c2 = strict.stats();
    (void)s2.count(37);  // warm: answered from the cache
    const core::EngineStats w2 = strict.stats();
    CHECK_EQ(w2.hits, c2.hits + 1);
    CHECK_EQ(w2.misses, c2.misses);

    // Refinement shares the leaf bitvectors it inherits.
    (void)s2.refine("x >= 0").count(37);
    const core::EngineStats r2 = strict.stats();
    CHECK(r2.hits >= w2.hits + 2);  // px and y leaves reused

    (void)s2.count(20);
    CHECK_EQ(strict.stats().misses, r2.misses + 3);
  }

  engine.clear_cache();
  CHECK_EQ(engine.stats().entries, 0u);
  CHECK_EQ(engine.stats().bytes, 0u);
}

void test_cache_eviction() {
  core::Engine engine = core::Engine::open(dataset_dir());
  engine.set_cache_capacity(2);
  (void)engine.select("px > 1e10").count(37);
  (void)engine.select("y > 0").count(37);
  (void)engine.select("x > 0").count(37);
  const core::EngineStats s = engine.stats();
  CHECK(s.entries <= 2);
  CHECK(s.evictions >= 1);
  // The least recently used entry is gone: re-evaluating it is a miss.
  const std::uint64_t misses_before = s.misses;
  (void)engine.select("px > 1e10").count(37);
  CHECK(engine.stats().misses > misses_before);

  // Shrinking the capacity evicts immediately.
  engine.set_cache_capacity(1);
  CHECK(engine.stats().entries <= 1);
}

void test_session_views_share_cache() {
  // The acceptance scenario: one focus drives a count, pair histograms, and
  // a parallel-coordinates render — the engine must show cache hits.
  core::ExplorationSession session =
      core::ExplorationSession::open(dataset_dir());
  const std::size_t t = 37;
  session.set_focus("px > 8.872e10");
  const std::uint64_t count = session.focus_count(t);
  CHECK(count > 0);
  const std::vector<std::string> axes = {"x", "y", "px"};
  const auto hists = session.pair_histograms(t, axes, 16, session.focus());
  CHECK_EQ(hists.size(), 2u);
  CHECK_EQ(hists[0].total(), count);
  (void)session.render_parallel_coordinates(t, axes);
  if (!budgeted()) {
    const core::EngineStats stats = session.engine().stats();
    CHECK(stats.hits >= 1);
    CHECK_EQ(stats.misses, 1u);  // the single focus leaf, evaluated once
  }

  // Selection handles agree with the session facade.
  const core::Selection sel = session.engine().select("px > 8.872e10");
  CHECK(sel.ids(t) == session.selected_ids(t));
  const core::SummaryStats summary = sel.summary(t, "px");
  CHECK_EQ(summary.count, count);
  CHECK(summary.min > 8.872e10);
}

void test_all_selection() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  const core::Selection all = engine.all();
  CHECK(all.selects_all());
  const io::TimestepTable& table = engine.dataset().table(37);
  CHECK_EQ(all.count(37), table.num_rows());
  CHECK_EQ(all.ids(37).size(), table.num_rows());
  CHECK_EQ(all.bits(37)->count(), table.num_rows());
  CHECK_EQ(all.summary(37, "px").count, table.num_rows());
  CHECK(all.explain().find("<all records>") != std::string::npos);
}

void test_explain_probes_real_indices() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  const core::Selection sel = engine.select("px > 1e10 && px < 9e10");
  const std::string report = sel.explain();
  CHECK(report.find("fused interval") != std::string::npos);
  CHECK(report.find("bitmap-index(px)") != std::string::npos);
}

void test_parallel_paths_share_engine_cache() {
  const core::Engine engine = core::Engine::open(dataset_dir());
  par::VirtualCluster cluster(4);
  par::HistogramWorkload workload;
  workload.pairs = {{"x", "px"}};
  workload.nbins = 32;
  workload.condition = parse_query("px > 1e10");

  const par::HistogramBatch cold = par::parallel_histograms(engine, workload, cluster);
  const par::HistogramBatch cold_tables =
      par::parallel_histograms(engine.dataset(), workload, cluster);
  CHECK_EQ(cold.total_records, cold_tables.total_records);

  const core::EngineStats between = engine.stats();
  const par::HistogramBatch warm = par::parallel_histograms(engine, workload, cluster);
  CHECK_EQ(warm.total_records, cold.total_records);
  if (!budgeted()) {
    const core::EngineStats after = engine.stats();
    CHECK_EQ(after.misses, between.misses);  // warm batch: all timesteps cached
    CHECK(after.hits >= between.hits + engine.num_timesteps());
  }

  // Engine-shared id tracking agrees with the per-table path.
  std::vector<std::uint64_t> ids = engine.select("px > 8.872e10").ids(37);
  if (ids.size() > 50) ids.resize(50);
  const par::TrackBatch a = par::parallel_track(engine, ids, cluster);
  const par::TrackBatch b =
      par::parallel_track(engine.dataset(), ids, EvalMode::kAuto, cluster);
  CHECK_EQ(a.total_hits, b.total_hits);
}

}  // namespace

int main() {
  test_selection_matches_scan();
  test_parse_round_trip_semantics();
  test_cache_accounting();
  test_cache_eviction();
  test_session_views_share_cache();
  test_all_selection();
  test_explain_probes_real_indices();
  test_parallel_paths_share_engine_cache();
  return qdv::test::finish("test_engine");
}
