// Stress tests for the persistent work-stealing thread pool: reuse across
// many batches, nested parallel_for from inside pool tasks, exception
// propagation (every index still runs, first error rethrown), concurrent
// external submitters, and the max_workers concurrency cap.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "test_common.hpp"

namespace {

using qdv::par::ThreadPool;

void test_basic_parallel_for() {
  for (const std::size_t nthreads : {1u, 2u, 4u}) {
    ThreadPool pool(nthreads);
    CHECK_EQ(pool.size(), nthreads);
    std::vector<std::atomic<int>> seen(257);
    pool.parallel_for(257, nthreads + 1, [&](std::size_t i) {
      seen[i].fetch_add(1);
    });
    for (const auto& s : seen) CHECK_EQ(s.load(), 1);
  }
}

void test_reuse_across_batches() {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.parallel_for(17, 4, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  CHECK_EQ(total.load(), 200u * 17u);
}

void test_nested_parallel_for() {
  ThreadPool pool(2);
  std::atomic<std::size_t> inner_total{0};
  // Outer tasks each fork an inner region on the same (busy) pool; the
  // caller-participates design means this can never deadlock even when
  // every worker is occupied by an outer task.
  pool.parallel_for(8, 3, [&](std::size_t) {
    pool.parallel_for(25, 3, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  CHECK_EQ(inner_total.load(), 8u * 25u);
}

void test_exception_propagation() {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> ran(64);
  bool threw = false;
  try {
    pool.parallel_for(64, 3, [&](std::size_t i) {
      ran[i].fetch_add(1);
      if (i % 13 == 5) throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  CHECK(threw);
  // Every index still ran exactly once despite the failures.
  for (const auto& r : ran) CHECK_EQ(r.load(), 1);
  // The pool survives the exception and keeps working.
  std::atomic<int> after{0};
  pool.parallel_for(10, 3, [&](std::size_t) { after.fetch_add(1); });
  CHECK_EQ(after.load(), 10);
}

void test_max_workers_cap() {
  ThreadPool pool(4);
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  pool.parallel_for(64, 2, [&](std::size_t) {
    const int now = active.fetch_add(1) + 1;
    int p = peak.load();
    while (now > p && !peak.compare_exchange_weak(p, now)) {
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    active.fetch_sub(1);
  });
  CHECK(peak.load() <= 2);  // caller + at most one helper
  // max_workers == 1 runs inline on the caller.
  std::atomic<int> inline_peak{0};
  pool.parallel_for(16, 1, [&](std::size_t) {
    CHECK_EQ(active.fetch_add(1) + 1, 1);
    active.fetch_sub(1);
    inline_peak.fetch_add(1);
  });
  CHECK_EQ(inline_peak.load(), 16);
}

void test_concurrent_external_submitters() {
  ThreadPool pool(3);
  std::atomic<std::size_t> done{0};
  constexpr std::size_t kPerThread = 500;
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i)
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  for (std::thread& t : submitters) t.join();
  // Drain: submitted work completes without any explicit flush call.
  while (done.load() < 4 * kPerThread) std::this_thread::yield();
  CHECK_EQ(done.load(), 4 * kPerThread);
}

void test_submit_from_worker() {
  ThreadPool pool(2);
  std::atomic<int> chained{0};
  pool.parallel_for(4, 3, [&](std::size_t) {
    // Tasks submitted from inside a pool task land on the submitting
    // worker's own deque.
    pool.submit([&chained] { chained.fetch_add(1); });
  });
  while (chained.load() < 4) std::this_thread::yield();
  CHECK_EQ(chained.load(), 4);
}

void test_cross_pool_submission() {
  // A worker of one pool is an external thread to every other pool: its
  // worker slot must never index the other pool's (smaller) deque array.
  ThreadPool wide(6);
  ThreadPool narrow(2);
  std::atomic<int> inner{0};
  wide.parallel_for(6, 7, [&](std::size_t) {
    narrow.parallel_for(8, 3, [&](std::size_t) { inner.fetch_add(1); });
    narrow.submit([&inner] { inner.fetch_add(1); });
  });
  while (inner.load() < 6 * 8 + 6) std::this_thread::yield();
  CHECK_EQ(inner.load(), 6 * 8 + 6);
}

void test_global_pool() {
  ThreadPool& g1 = ThreadPool::global();
  ThreadPool& g2 = ThreadPool::global();
  CHECK(&g1 == &g2);
  CHECK(g1.size() >= 1);
  std::atomic<int> n{0};
  g1.parallel_for(12, 8, [&](std::size_t) { n.fetch_add(1); });
  CHECK_EQ(n.load(), 12);
}

}  // namespace

void test_high_priority_lane() {
  // A single-worker pool with its worker gated: queue three normal tasks,
  // then one high-priority task — the high task must run first even though
  // it was submitted last.
  ThreadPool pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  bool gated = false;
  pool.submit([&] {
    std::unique_lock<std::mutex> lock(mutex);
    gated = true;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return gated; });
  }
  std::vector<int> order;
  std::mutex order_mutex;
  auto record = [&](int id) {
    return [&, id] {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(id);
    };
  };
  for (int i = 0; i < 3; ++i) pool.submit(record(i));
  pool.submit(record(100), qdv::par::TaskPriority::kHigh);
  {
    std::lock_guard<std::mutex> lock(mutex);
    open = true;
  }
  cv.notify_all();
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(order_mutex);
      if (order.size() == 4) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  CHECK_EQ(order.front(), 100);  // the high lane drains before any normal task
}

int main() {
  test_basic_parallel_for();
  test_reuse_across_batches();
  test_nested_parallel_for();
  test_exception_propagation();
  test_max_workers_cap();
  test_concurrent_external_submitters();
  test_submit_from_worker();
  test_cross_pool_submission();
  test_global_pool();
  test_high_priority_lane();
  return qdv::test::finish("test_thread_pool");
}
