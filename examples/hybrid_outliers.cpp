// Outlier-preserving hybrid parallel coordinates (Section III-A3 of the
// paper): dense bins render as aggregated histogram quads while records in
// very low-density bins are drawn as individual polylines, so statistical
// outliers — e.g. the first few trapped particles — stay visible at low
// levels of detail instead of being averaged away.
#include <iostream>
#include <vector>

#include "core/session.hpp"
#include "example_common.hpp"

int main() {
  using namespace qdv;

  const auto dir = examples::ensure_2d_dataset();
  core::ExplorationSession session = core::ExplorationSession::open(dir);
  const std::size_t t = 16;  // shortly after injection: beams are tiny outliers
  const std::vector<std::string> axes = {"x", "y", "px", "py"};

  std::vector<render::PcAxis> pc_axes;
  for (const auto& name : axes) {
    const auto [lo, hi] = session.global_domain(name);
    pc_axes.push_back({name, lo, hi});
  }
  const std::vector<Histogram2D> hists = session.pair_histograms(t, axes, 48);

  const io::TimestepTable& table = session.dataset().table(t);
  std::vector<std::span<const double>> columns;
  for (const auto& name : axes) columns.push_back(table.column(name));

  render::PcStyle style;
  style.color = render::colors::kWhite;
  style.max_alpha = 0.9f;

  // Pure histogram rendering: the few accelerated particles vanish into
  // near-black bins.
  {
    render::ParallelCoordinatesPlot plot(pc_axes);
    plot.draw_frame();
    plot.draw_histogram_layer(hists, style);
    const auto out = examples::output_dir() / "hybrid_off.ppm";
    plot.image().write_ppm(out);
    examples::report_image(out, "histogram-only rendering (outliers fade)");
  }

  // Hybrid rendering: records in bins below 2% of the peak density render
  // as individual lines.
  {
    render::ParallelCoordinatesPlot plot(pc_axes);
    plot.draw_frame();
    plot.draw_hybrid_layer(hists, columns, style, /*outlier_fraction=*/0.02);
    const auto out = examples::output_dir() / "hybrid_on.ppm";
    plot.image().write_ppm(out);
    examples::report_image(out, "hybrid rendering (outliers as polylines)");
  }

  // How many records were promoted to polylines?
  std::size_t outlier_records = 0;
  const Histogram2D& h = hists[2];  // (px, py) pair: where the beams separate
  double max_density = 0.0;
  for (std::size_t ix = 0; ix < h.nx(); ++ix)
    for (std::size_t iy = 0; iy < h.ny(); ++iy)
      if (h.at(ix, iy) != 0) max_density = std::max(max_density, h.density(ix, iy));
  for (std::size_t ix = 0; ix < h.nx(); ++ix)
    for (std::size_t iy = 0; iy < h.ny(); ++iy)
      if (h.at(ix, iy) != 0 && h.density(ix, iy) < 0.02 * max_density)
        outlier_records += h.at(ix, iy);
  std::cout << "records rendered as outlier polylines on the px-py pair: "
            << outlier_records << " of " << h.total() << "\n";
  return 0;
}
