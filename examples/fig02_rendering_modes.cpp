// Regenerates Figure 2 of the paper: four renderings of the same particle
// subset comparing (a) traditional polyline parallel coordinates,
// (b) high-resolution histogram-based rendering (700 bins/axis),
// (c) the same with a lower gamma (sparse bins fade out), and
// (d) a low-resolution 80-bin rendering.
#include <iostream>
#include <vector>

#include "core/session.hpp"
#include "example_common.hpp"
#include "render/pc_plot.hpp"

int main() {
  using namespace qdv;

  const auto dir = examples::ensure_3d_dataset();
  core::ExplorationSession session = core::ExplorationSession::open(dir);

  // The paper renders a subset of a 3D dataset with 7 data dimensions.
  const std::vector<std::string> axes = {"x", "y", "z", "px", "py", "pz", "xrel"};
  const std::size_t t = 14;

  std::vector<render::PcAxis> pc_axes;
  for (const auto& name : axes) {
    const auto [lo, hi] = session.global_domain(name);
    pc_axes.push_back({name, lo, hi});
  }

  // (a) Traditional polylines: one line per record -> clutter + occlusion.
  {
    render::ParallelCoordinatesPlot plot(pc_axes);
    plot.draw_frame();
    const io::TimestepTable& table = session.dataset().table(t);
    std::vector<std::span<const double>> columns;
    for (const auto& name : axes) columns.push_back(table.column(name));
    render::PcStyle style;
    style.color = render::colors::kWhite;
    style.max_alpha = 0.03f;  // heavy overdraw, as in the paper's Figure 2a
    plot.draw_polyline_layer(columns, style);
    const auto out = examples::output_dir() / "fig02a_polylines.ppm";
    plot.image().write_ppm(out);
    examples::report_image(out, "Fig 2a: line-based parallel coordinates");
  }

  const auto histogram_figure = [&](std::size_t bins, double gamma,
                                    const std::string& filename,
                                    const std::string& label) {
    render::ParallelCoordinatesPlot plot(pc_axes);
    plot.draw_frame();
    const std::vector<Histogram2D> hists =
        session.pair_histograms(t, axes, bins);
    render::PcStyle style;
    style.color = render::colors::kWhite;
    style.gamma = gamma;
    plot.draw_histogram_layer(hists, style);
    const auto out = examples::output_dir() / filename;
    plot.image().write_ppm(out);
    examples::report_image(out, label);
    std::size_t nonempty = 0;
    for (const Histogram2D& h : hists) nonempty += h.nonempty_bins();
    std::cout << "         " << bins << " bins/axis, gamma=" << gamma << ", "
              << nonempty << " non-empty 2D bins across " << hists.size()
              << " axis pairs\n";
  };

  // (b) Histogram-based, 700 bins per axis (paper's high-resolution case).
  histogram_figure(700, 1.0, "fig02b_hist700.ppm",
                   "Fig 2b: histogram-based, 700 bins/axis");
  // (c) Same, lower gamma: sparse bins drop out, dense features remain.
  histogram_figure(700, 0.35, "fig02c_hist700_lowgamma.ppm",
                   "Fig 2c: histogram-based, low gamma");
  // (d) 80 bins per axis: coarser level of detail.
  histogram_figure(80, 1.0, "fig02d_hist80.ppm",
                   "Fig 2d: histogram-based, 80 bins/axis");
  return 0;
}
