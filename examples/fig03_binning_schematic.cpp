// Regenerates the Figure 3 schematic of the paper: the same two-axis
// relationship rendered once with uniformly binned histogram quads
// (parallelograms connecting equal-size ranges) and once with adaptively
// binned quads (trapezoids connecting different-size ranges). With higher
// resolution in the dense region, the adaptive version represents the data
// trend more accurately at the same bin budget.
#include <iostream>

#include "bitmap/histogram.hpp"
#include "example_common.hpp"
#include "render/pc_plot.hpp"

int main() {
  using namespace qdv;

  // A synthetic two-variable relationship: 90% of records in a tight
  // correlated band, 10% spread widely.
  std::vector<double> a, b;
  std::uint64_t state = 12345;
  auto uniform = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (int i = 0; i < 20000; ++i) {
    if (uniform() < 0.9) {
      const double t = 0.2 + 0.1 * uniform();
      a.push_back(t);
      b.push_back(t + 0.02 * (uniform() - 0.5));
    } else {
      a.push_back(uniform());
      b.push_back(uniform());
    }
  }

  // Histogram both ways at a 6-bin budget.
  const Bins uniform_bins = make_uniform_bins(0.0, 1.0, 6);
  Histogram1D fine;
  fine.bins = make_uniform_bins(0.0, 1.0, 64);
  fine.counts.assign(64, 0);
  for (const double v : a) {
    const auto bin = fine.bins.locate(v);
    if (bin >= 0) ++fine.counts[static_cast<std::size_t>(bin)];
  }
  const Bins adaptive_bins = make_equal_weight_bins(fine, 6);

  const auto count2d = [&](const Bins& xb, const Bins& yb) {
    Histogram2D h;
    h.xbins = xb;
    h.ybins = yb;
    h.counts.assign(xb.num_bins() * yb.num_bins(), 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
      const auto bx = xb.locate(a[i]);
      const auto by = yb.locate(b[i]);
      if (bx >= 0 && by >= 0)
        ++h.at(static_cast<std::size_t>(bx), static_cast<std::size_t>(by));
    }
    return h;
  };

  render::PcStyle style;
  style.color = render::colors::kWhite;
  const std::vector<render::PcAxis> axes = {{"a", 0.0, 1.0}, {"b", 0.0, 1.0}};

  {
    render::ParallelCoordinatesPlot plot(axes);
    plot.draw_frame();
    const std::vector<Histogram2D> hists = {count2d(uniform_bins, uniform_bins)};
    plot.draw_histogram_layer(hists, style);
    const auto out = examples::output_dir() / "fig03a_uniform_schematic.ppm";
    plot.image().write_ppm(out);
    examples::report_image(out, "Fig 3 left: uniform 6-bin quads");
  }
  {
    render::ParallelCoordinatesPlot plot(axes);
    plot.draw_frame();
    const std::vector<Histogram2D> hists = {count2d(adaptive_bins, adaptive_bins)};
    plot.draw_histogram_layer(hists, style);
    const auto out = examples::output_dir() / "fig03b_adaptive_schematic.ppm";
    plot.image().write_ppm(out);
    examples::report_image(out, "Fig 3 right: adaptive 6-bin trapezoids");
  }

  std::cout << "adaptive edges over the dense band [0.2, 0.3]:";
  for (const double e : adaptive_bins.edges()) std::cout << ' ' << e;
  std::cout << "\n(most of the 6 bins land inside the band, as in Figure 3)\n";
  return 0;
}
