// Section IV-F of the paper (Figure 10): the 3D analysis example.
//
// Two-stage selection on the 3D dataset at t=12: first remove the background
// (px > 2e9, the context view), then select the compact first-bucket beam
// with px > 4.856e10 && x above a position threshold; trace the selection
// backwards to t=9 (injection) and forwards to t=14.
#include <algorithm>
#include <iostream>

#include "core/session.hpp"
#include "example_common.hpp"

int main() {
  using namespace qdv;

  const auto dir = examples::ensure_3d_dataset();
  core::ExplorationSession session = core::ExplorationSession::open(dir);
  const std::size_t t_sel = 12;

  // Background removal for the context view (paper: px > 2e9).
  session.set_context("px > 2e9");
  // Beam selection: momentum plus position threshold to exclude particles in
  // the secondary wake periods. The paper uses x > 5.649e-4 on its grid; we
  // compute the equivalent on ours from the window position.
  const io::TimestepTable& table = session.dataset().table(t_sel);
  const auto xs = table.column("x");
  double xmin = xs[0], xmax = xs[0];
  for (const double v : xs) {
    xmin = std::min(xmin, v);
    xmax = std::max(xmax, v);
  }
  const double x_threshold = xmin + 0.7 * (xmax - xmin);
  const std::string focus_text =
      "px > 4.856e10 && x > " + std::to_string(x_threshold);
  session.set_focus(focus_text);

  const std::uint64_t context_count = session.context().count(t_sel);
  const std::uint64_t focus_count = session.focus_count(t_sel);
  std::cout << "t=12: context (px > 2e9) keeps " << context_count
            << " particles; focus (" << focus_text << ") selects " << focus_count
            << "\n";

  // Figure 10a: parallel coordinates with context (gray) and focus (red).
  core::PcViewOptions options;
  options.context_bins = 120;
  options.focus_bins = 256;
  options.context_color = render::colors::kGray;
  options.focus_color = render::colors::kRed;
  const render::Image pc = session.render_parallel_coordinates(
      t_sel, {"x", "y", "z", "px", "py", "pz"}, options);
  const auto out_pc = examples::output_dir() / "fig10a_pc_3d.ppm";
  pc.write_ppm(out_pc);
  examples::report_image(out_pc, "Fig 10a: 3D beam selection parallel coordinates");

  // Figure 10b stand-in: physical-space pseudocolor view of the selection.
  const render::Image sc = session.render_scatter(t_sel, "x", "y", "px");
  const auto out_sc = examples::output_dir() / "fig10b_scatter_3d.ppm";
  sc.write_ppm(out_sc);
  examples::report_image(out_sc, "Fig 10b: selected beam in physical space");

  // Figure 10c: traces from t=9 (injection) to t=14, constant acceleration.
  std::vector<std::uint64_t> ids = session.selected_ids(t_sel);
  if (ids.size() > 300) ids.resize(300);
  const core::ParticleTracks tracks = session.track(ids, 9, 14, {"x", "px"});
  std::cout << "\n  t    present    mean px\n";
  for (std::size_t ti = 0; ti < tracks.timesteps().size(); ++ti)
    std::cout << "  " << tracks.timesteps()[ti] << "    "
              << tracks.count_present(ti) << "    " << tracks.mean(ti, "px") << "\n";
  std::cout << "(particles enter the window around t=9-10 and are constantly "
               "accelerated through t=14, as in Figure 10c)\n";
  return 0;
}
