// Sections IV-A/IV-B of the paper (Figure 5): beam selection and assessment.
//
// Select the accelerated particles at the final timestep (t=37) with
// px > 8.872e10, render the focus+context parallel coordinates and the
// pseudocolor physical-space view at t=27 and t=37, and quantify the
// dephasing of the first beam ("outruns the wave and decelerates").
#include <algorithm>
#include <iostream>

#include "core/session.hpp"
#include "example_common.hpp"

int main() {
  using namespace qdv;

  const auto dir = examples::ensure_2d_dataset();
  core::ExplorationSession session = core::ExplorationSession::open(dir);
  const std::size_t t_sel = session.num_timesteps() - 1;  // t = 37

  // --- selection at the last timestep --------------------------------------
  session.set_focus("px > 8.872e10");
  const std::uint64_t hits = session.focus_count(t_sel);
  std::cout << "selection px > 8.872e10 at t=" << t_sel << ": " << hits
            << " particles (the two beams)\n";

  for (const std::size_t t : {27u, 37u}) {
    core::PcViewOptions options;
    options.context_bins = 120;
    options.focus_bins = 256;
    options.context_color = render::colors::kRed;   // paper's context is red
    options.focus_color = render::colors::kGreen;   // focus beam in green
    const render::Image pc =
        session.render_parallel_coordinates(t, {"x", "y", "px", "py", "xrel"}, options);
    const auto pc_out = examples::output_dir() /
                        ("fig05_pc_t" + std::to_string(t) + ".ppm");
    pc.write_ppm(pc_out);
    examples::report_image(pc_out, "Fig 5a/c: parallel coordinates at t=" +
                                       std::to_string(t));

    const render::Image scatter = session.render_scatter(t, "x", "y", "px");
    const auto sc_out = examples::output_dir() /
                        ("fig05_pseudocolor_t" + std::to_string(t) + ".ppm");
    scatter.write_ppm(sc_out);
    examples::report_image(sc_out, "Fig 5b/d: pseudocolor plot at t=" +
                                       std::to_string(t));
  }

  // --- beam assessment: trace back and compare the two beams ----------------
  std::vector<std::uint64_t> ids = session.selected_ids(t_sel);
  std::vector<std::uint64_t> first_beam, second_beam;
  for (const std::uint64_t id : ids) {
    // Beam membership from the id namespace of the surrogate simulation.
    if (id < (1ull << 40)) continue;
    (((id - (1ull << 40)) >> 32) == 0 ? first_beam : second_beam).push_back(id);
  }
  const auto cap = [](std::vector<std::uint64_t>& v) {
    if (v.size() > 200) v.resize(200);
  };
  cap(first_beam);
  cap(second_beam);

  const core::ParticleTracks tracks1 = session.track(first_beam, 16, t_sel, {"px"});
  const core::ParticleTracks tracks2 = session.track(second_beam, 16, t_sel, {"px"});
  std::cout << "\n  t   first-beam px (rel.spread)   second-beam px (rel.spread)\n";
  for (std::size_t ti = 0; ti < tracks1.timesteps().size(); ti += 3) {
    std::cout << "  " << tracks1.timesteps()[ti] << "   " << tracks1.mean(ti, "px")
              << " (" << tracks1.relative_spread(ti, "px") << ")   "
              << tracks2.mean(ti, "px") << " (" << tracks2.relative_spread(ti, "px")
              << ")\n";
  }
  // The paper's observation: the first beam peaks around t=27 with a lower
  // momentum spread, then decelerates; the second keeps accelerating.
  const auto idx_of = [&](std::size_t t) {
    return t - tracks1.timesteps().front();
  };
  const double peak = tracks1.mean(idx_of(27), "px");
  const double last = tracks1.mean(idx_of(37), "px");
  std::cout << "\nfirst beam: px(27)=" << peak << "  px(37)=" << last
            << (last < peak ? "  -> outran the wave, now decelerating\n"
                            : "\n");
  return 0;
}
