// qdv_tool — command-line front end to the library.
//
// Subcommands:
//   generate <dir> [--preset 2d|3d|bench] [--particles N] [--timesteps N]
//            [--seed S] [--index-bins N]
//   info     <dir>
//   query    <dir> -t <timestep> -q "<query>" [--scan] [--eager]
//            [--budget <MiB>] [--count-only] [--stats]
//   explain  <dir> -q "<query>"
//   histogram <dir> -t <timestep> -x <var> -y <var> [--bins N] [--adaptive]
//            [-q "<query>"] [--csv <file>]
//   stats    <dir> -t <timestep> -v <var> [-q "<query>"]
//   track    <dir> -q "<query>" --select-at <t> [--from <t>] [--to <t>]
//            [--vars a,b,c] [--limit N]
//   render   <dir> -t <timestep> --axes a,b,c [-q "<query>"] [--bins N]
//            [--gamma G] -o <out.ppm>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "core/statistics.hpp"
#include "io/export.hpp"
#include "parallel/prefetch.hpp"
#include "sim/wakefield.hpp"

namespace {

using namespace qdv;

/// Tiny argument cursor: positional + --flag [value] parsing.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::optional<std::string> option(const std::string& name) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i)
      if (args_[i] == name) return args_[i + 1];
    return std::nullopt;
  }

  bool flag(const std::string& name) const {
    for (const std::string& a : args_)
      if (a == name) return true;
    return false;
  }

  std::string option_or(const std::string& name, const std::string& fallback) const {
    return option(name).value_or(fallback);
  }

  std::size_t size_option(const std::string& name, std::size_t fallback) const {
    const auto v = option(name);
    return v ? static_cast<std::size_t>(std::stoull(*v)) : fallback;
  }

  double double_option(const std::string& name, double fallback) const {
    const auto v = option(name);
    return v ? std::stod(*v) : fallback;
  }

 private:
  std::vector<std::string> args_;
};

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

int cmd_generate(const std::string& dir, const Args& args) {
  const std::string preset = args.option_or("--preset", "2d");
  const std::size_t particles = args.size_option("--particles", 100000);
  const std::uint64_t seed = args.size_option("--seed", 42);
  sim::WakefieldConfig cfg;
  if (preset == "2d") {
    cfg = sim::WakefieldConfig::preset_2d(particles, seed);
  } else if (preset == "3d") {
    cfg = sim::WakefieldConfig::preset_3d(particles, seed);
  } else if (preset == "bench") {
    cfg = sim::WakefieldConfig::preset_bench(particles,
                                             args.size_option("--timesteps", 10), seed);
  } else {
    std::cerr << "unknown preset '" << preset << "' (use 2d | 3d | bench)\n";
    return 2;
  }
  if (const auto t = args.option("--timesteps"); t && preset != "bench")
    cfg.num_timesteps = std::stoull(*t);
  io::IndexConfig index_config;
  index_config.nbins = args.size_option("--index-bins", 1024);
  const std::uint64_t bytes = sim::generate_dataset(cfg, dir, index_config);
  std::cout << "wrote " << cfg.num_timesteps << " timesteps, " << (bytes >> 20)
            << " MiB (data + indices) to " << dir << "\n";
  return 0;
}

int cmd_info(const std::string& dir) {
  const io::Dataset ds = io::Dataset::open(dir);
  std::cout << "dataset:    " << dir << "\n";
  std::cout << "timesteps:  " << ds.num_timesteps() << "\n";
  std::cout << "variables: ";
  for (const auto& v : ds.variables()) std::cout << ' ' << v;
  std::cout << "\n";
  std::uint64_t rows = 0;
  for (std::size_t t = 0; t < ds.num_timesteps(); ++t) rows += ds.table(t).num_rows();
  std::cout << "records:    " << rows << " total ("
            << rows / std::max<std::size_t>(1, ds.num_timesteps()) << " per step)\n";
  std::cout << "disk:       " << (ds.disk_bytes() >> 20) << " MiB\n";
  std::cout << "indices:    " << (ds.table(0).has_indices() ? "yes" : "no") << "\n";
  return 0;
}

int cmd_query(const std::string& dir, const Args& args) {
  const auto text = args.option("-q");
  if (!text) {
    std::cerr << "query: missing -q \"<query>\"\n";
    return 2;
  }
  const std::size_t t = args.size_option("-t", 0);
  io::OpenOptions options = io::default_open_options();
  if (args.flag("--eager")) options.mode = io::LoadMode::kEager;
  if (const auto mib = args.option("--budget"))
    options.budget_bytes = static_cast<std::uint64_t>(std::stoull(*mib)) << 20;
  const core::Engine engine(
      io::Dataset::open(dir, options),
      args.flag("--scan") ? EvalMode::kScan : EvalMode::kAuto);
  const core::Selection selection = engine.select(*text);
  const io::TimestepTable& table = engine.dataset().table(t);
  const auto hits = selection.bits(t);
  std::cout << hits->count() << " of " << table.num_rows() << " records match at t="
            << t << "\n";
  if (!args.flag("--count-only")) {
    std::size_t shown = 0;
    const auto ids = table.id_column("id");
    hits->for_each_set([&](std::uint64_t row) {
      if (shown < 10) std::cout << "  row " << row << "  id " << ids[row] << "\n";
      ++shown;
    });
    if (shown > 10) std::cout << "  ... " << (shown - 10) << " more\n";
  }
  if (args.flag("--stats")) {
    const core::EngineStats s = engine.stats();
    std::cout << "cache: " << s.hits << " hits, " << s.misses << " misses, "
              << s.entries << " entries, " << s.bytes << " bytes\n";
    std::cout << "memory: resident " << s.resident_bytes << " B";
    if (s.budget_bytes == io::MemoryBudget::kUnlimited)
      std::cout << " (no budget)";
    else
      std::cout << " / budget " << s.budget_bytes << " B";
    std::cout << ", columns " << s.column_bytes << " B, segments "
              << s.segment_bytes << " B\n";
    std::cout << "io: loaded " << s.loaded_bytes << " B total, "
              << s.io_evictions << " evictions\n";
  }
  return 0;
}

int cmd_explain(const std::string& dir, const Args& args) {
  const auto text = args.option("-q");
  if (!text) {
    std::cerr << "explain: missing -q \"<query>\"\n";
    return 2;
  }
  const core::Engine engine = core::Engine::open(dir);
  const core::Selection selection = engine.select(*text);
  std::cout << "input:     " << *text << "\n" << selection.explain();
  return 0;
}

int cmd_histogram(const std::string& dir, const Args& args) {
  const auto vx = args.option("-x");
  const auto vy = args.option("-y");
  if (!vx || !vy) {
    std::cerr << "histogram: missing -x/-y variables\n";
    return 2;
  }
  const core::Engine engine = core::Engine::open(dir);
  const std::size_t t = args.size_option("-t", 0);
  const std::size_t bins = args.size_option("--bins", 64);
  core::Selection selection = engine.all();
  if (const auto q = args.option("-q")) selection = engine.select(*q);
  const Histogram2D h = selection.histogram2d(
      t, *vx, *vy, bins, bins,
      args.flag("--adaptive") ? BinningMode::kAdaptive : BinningMode::kUniform);
  std::cout << "histogram " << *vx << " x " << *vy << " @ t=" << t << ": "
            << h.total() << " records, " << h.nonempty_bins() << "/"
            << h.nx() * h.ny() << " bins occupied, max count " << h.max_count()
            << "\n";
  if (const auto csv = args.option("--csv")) {
    io::export_csv(std::filesystem::path(*csv), h);
    std::cout << "wrote " << *csv << "\n";
  }
  return 0;
}

int cmd_stats(const std::string& dir, const Args& args) {
  const auto var = args.option("-v");
  if (!var) {
    std::cerr << "stats: missing -v <variable>\n";
    return 2;
  }
  const core::Engine engine = core::Engine::open(dir);
  const std::size_t t = args.size_option("-t", 0);
  core::Selection selection = engine.all();
  if (const auto q = args.option("-q")) selection = engine.select(*q);
  const core::SummaryStats s = selection.summary(t, *var);
  std::cout << *var << " @ t=" << t
            << (selection.selects_all() ? "" : " | " + selection.query()->to_string())
            << "\n";
  std::cout << "  count  " << s.count << "\n  min    " << s.min << "\n  max    "
            << s.max << "\n  mean   " << s.mean << "\n  stddev " << s.stddev << "\n";
  return 0;
}

int cmd_track(const std::string& dir, const Args& args) {
  const auto text = args.option("-q");
  if (!text) {
    std::cerr << "track: missing -q \"<selection query>\"\n";
    return 2;
  }
  core::ExplorationSession session = core::ExplorationSession::open(dir);
  const std::size_t t_sel =
      args.size_option("--select-at", session.num_timesteps() - 1);
  session.set_focus(*text);
  std::vector<std::uint64_t> ids = session.selected_ids(t_sel);
  const std::size_t limit = args.size_option("--limit", 1000);
  if (ids.size() > limit) ids.resize(limit);
  const std::size_t t_from = args.size_option("--from", 0);
  const std::size_t t_to = args.size_option("--to", session.num_timesteps() - 1);
  const std::vector<std::string> vars =
      split_csv(args.option_or("--vars", "x,px"));
  // Stream the trace: a background prefetcher maps id indices and tracked
  // columns ahead of the sequential track loop. Its bounded queue caps the
  // look-ahead distance, and tracking never probes the bitmap indices, so
  // their (pinned) segment directories are not opened.
  par::Prefetcher prefetch(session.dataset());
  for (std::size_t t = t_from; t <= t_to && t < session.num_timesteps(); ++t) {
    std::vector<std::string> wanted = vars;
    wanted.push_back("id");
    if (!prefetch.request(t, std::move(wanted), /*value_indices=*/false)) break;
  }
  const core::ParticleTracks tracks = session.track(ids, t_from, t_to, vars);
  std::cout << "tracking " << ids.size() << " particles selected at t=" << t_sel
            << " over t=[" << t_from << ", " << t_to << "]\n";
  std::cout << "t,present";
  for (const auto& v : vars) std::cout << ",mean_" << v;
  std::cout << "\n";
  for (std::size_t ti = 0; ti < tracks.timesteps().size(); ++ti) {
    std::cout << tracks.timesteps()[ti] << ',' << tracks.count_present(ti);
    for (const auto& v : vars) std::cout << ',' << tracks.mean(ti, v);
    std::cout << "\n";
  }
  return 0;
}

int cmd_render(const std::string& dir, const Args& args) {
  const auto axes_text = args.option("--axes");
  const auto out = args.option("-o");
  if (!axes_text || !out) {
    std::cerr << "render: missing --axes a,b,c or -o <out.ppm>\n";
    return 2;
  }
  core::ExplorationSession session = core::ExplorationSession::open(dir);
  const std::size_t t = args.size_option("-t", 0);
  if (const auto q = args.option("-q")) session.set_focus(*q);
  core::PcViewOptions options;
  options.context_bins = args.size_option("--bins", 120);
  options.focus_bins = args.size_option("--focus-bins", 256);
  options.context_gamma = args.double_option("--gamma", 1.0);
  const render::Image img =
      session.render_parallel_coordinates(t, split_csv(*axes_text), options);
  img.write_ppm(*out);
  std::cout << "wrote " << *out << " (" << img.width() << "x" << img.height()
            << ")\n";
  return 0;
}

void usage() {
  std::cout <<
      R"(qdv_tool — query-driven exploration of particle datasets

usage: qdv_tool <command> <dataset-dir> [options]

commands:
  generate   create a synthetic wakefield dataset (+ indices)
  info       dataset summary
  query      evaluate a Boolean range / id query at one timestep
  explain    print the canonicalized execution plan of a query
  histogram  conditional 2D histogram (optionally exported as CSV)
  stats      conditional summary statistics of one variable
  track      select particles, trace them across timesteps
  render     histogram-based parallel coordinates to a PPM image

run a command without options to see its required arguments.
full reference: docs/qdv_tool.md
)";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0 ||
                    std::strcmp(argv[1], "help") == 0)) {
    usage();
    return 0;
  }
  if (argc < 3) {
    usage();
    return argc < 2 ? 0 : 2;
  }
  const std::string command = argv[1];
  const std::string dir = argv[2];
  const Args args(argc - 2, argv + 2);
  try {
    if (command == "generate") return cmd_generate(dir, args);
    if (command == "info") return cmd_info(dir);
    if (command == "query") return cmd_query(dir, args);
    if (command == "explain") return cmd_explain(dir, args);
    if (command == "histogram") return cmd_histogram(dir, args);
    if (command == "stats") return cmd_stats(dir, args);
    if (command == "track") return cmd_track(dir, args);
    if (command == "render") return cmd_render(dir, args);
    std::cerr << "unknown command '" << command << "'\n";
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
