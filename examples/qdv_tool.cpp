// qdv_tool — command-line front end to the library.
//
// Subcommands:
//   generate <dir> [--preset 2d|3d|bench] [--particles N] [--timesteps N]
//            [--seed S] [--index-bins N] [--no-pyramids] [--pair-bins N]
//   info     <dir>
//   query    <dir> -t <timestep> -q "<query>" [--scan] [--eager]
//            [--budget <MiB>] [--count-only] [--stats]
//   explain  <dir> -q "<query>"
//   histogram <dir> -t <timestep> -x <var> -y <var> [--bins N] [--adaptive]
//            [-q "<query>"] [--csv <file>]
//   stats    <dir> -t <timestep> -v <var> [-q "<query>"]
//   track    <dir> -q "<query>" --select-at <t> [--from <t>] [--to <t>]
//            [--vars a,b,c] [--limit N]
//   render   <dir> -t <timestep> --axes a,b,c [-q "<query>"] [--bins N]
//            [--gamma G] -o <out.ppm>
//   serve    <dir> --socket <path> [--workers N] [--concurrency N]
//            [--no-cache] [--budget <MiB>]
//   worker   <dir> --socket <path>
//   bombard  <dir> [--socket <path>] [--workers N] [--clients N]
//            [--requests M] [--seed S] [--dup F] [--json <file>]
//            [--scenario mixed|zoom|brush] [--bins N] [--chaos]
//            [--chaos-spec <fault-spec>]
//   fsck     <dir> [--verbose]
//   corrupt  <dir> --file <rel-path> [--offset N | --tail N] [--xor B]
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "agg/pyramid.hpp"
#include "core/session.hpp"
#include "core/statistics.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "fault/fault.hpp"
#include "io/checksum.hpp"
#include "io/export.hpp"
#include "parallel/prefetch.hpp"
#include "sim/wakefield.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

namespace {

using namespace qdv;

/// Tiny argument cursor: positional + --flag [value] parsing.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::optional<std::string> option(const std::string& name) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i)
      if (args_[i] == name) return args_[i + 1];
    return std::nullopt;
  }

  bool flag(const std::string& name) const {
    for (const std::string& a : args_)
      if (a == name) return true;
    return false;
  }

  std::string option_or(const std::string& name, const std::string& fallback) const {
    return option(name).value_or(fallback);
  }

  // Strict numeric options via the wire parsers: std::stoull/std::stod
  // accept prefixes ("8x" parses as 8) and throw bare std::invalid_argument
  // on garbage; these reject the whole token with a message naming the
  // flag.
  std::size_t size_option(const std::string& name, std::size_t fallback) const {
    const auto v = option(name);
    if (!v) return fallback;
    std::size_t n = 0;
    if (!svc::parse_size(*v, n))
      throw std::runtime_error("bad value for " + name + ": '" + *v +
                               "' (need a non-negative integer)");
    return n;
  }

  double double_option(const std::string& name, double fallback) const {
    const auto v = option(name);
    if (!v) return fallback;
    double f = 0.0;
    if (!svc::parse_double(*v, f))
      throw std::runtime_error("bad value for " + name + ": '" + *v +
                               "' (need a finite number)");
    return f;
  }

 private:
  std::vector<std::string> args_;
};

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

int cmd_generate(const std::string& dir, const Args& args) {
  const std::string preset = args.option_or("--preset", "2d");
  const std::size_t particles = args.size_option("--particles", 100000);
  const std::uint64_t seed = args.size_option("--seed", 42);
  sim::WakefieldConfig cfg;
  if (preset == "2d") {
    cfg = sim::WakefieldConfig::preset_2d(particles, seed);
  } else if (preset == "3d") {
    cfg = sim::WakefieldConfig::preset_3d(particles, seed);
  } else if (preset == "bench") {
    cfg = sim::WakefieldConfig::preset_bench(particles,
                                             args.size_option("--timesteps", 10), seed);
  } else {
    std::cerr << "unknown preset '" << preset << "' (use 2d | 3d | bench)\n";
    return 2;
  }
  if (args.option("--timesteps") && preset != "bench")
    cfg.num_timesteps = args.size_option("--timesteps", cfg.num_timesteps);
  io::IndexConfig index_config;
  index_config.nbins = args.size_option("--index-bins", 1024);
  if (args.flag("--no-pyramids")) index_config.build_pyramids = false;
  index_config.pyramid_pair_bins =
      args.size_option("--pair-bins", index_config.pyramid_pair_bins);
  const std::uint64_t bytes = sim::generate_dataset(cfg, dir, index_config);
  std::cout << "wrote " << cfg.num_timesteps << " timesteps, " << (bytes >> 20)
            << " MiB (data + indices) to " << dir << "\n";
  return 0;
}

int cmd_info(const std::string& dir) {
  const io::Dataset ds = io::Dataset::open(dir);
  std::cout << "dataset:    " << dir << "\n";
  std::cout << "timesteps:  " << ds.num_timesteps() << "\n";
  std::cout << "variables: ";
  for (const auto& v : ds.variables()) std::cout << ' ' << v;
  std::cout << "\n";
  std::uint64_t rows = 0;
  for (std::size_t t = 0; t < ds.num_timesteps(); ++t) rows += ds.table(t).num_rows();
  std::cout << "records:    " << rows << " total ("
            << rows / std::max<std::size_t>(1, ds.num_timesteps()) << " per step)\n";
  std::cout << "disk:       " << (ds.disk_bytes() >> 20) << " MiB\n";
  std::cout << "indices:    " << (ds.table(0).has_indices() ? "yes" : "no") << "\n";
  return 0;
}

int cmd_fsck(const std::string& dir, const Args& args) {
  const io::FsckReport report = io::fsck_dataset(dir);
  const bool verbose = args.flag("--verbose");
  for (const io::FsckEntry& e : report.entries) {
    const char* status = e.status == io::FsckEntry::Status::kOk ? "ok"
                         : e.status == io::FsckEntry::Status::kFailed
                             ? "FAILED"
                             : "unverified";
    if (!verbose && e.status == io::FsckEntry::Status::kOk) continue;
    std::cout << "  " << status << "  " << e.rel;
    if (!e.detail.empty()) std::cout << "  (" << e.detail << ")";
    std::cout << "\n";
  }
  std::cout << "fsck " << dir << ": " << report.ok << " ok, " << report.failed
            << " failed, " << report.unverified << " unverified ("
            << report.sections_checked << " sections checked)\n";
  return report.damaged() ? 1 : 0;
}

/// Deterministic single-byte damage for integrity drills: flip one byte of
/// one artifact, leaving the checksum sidecars untouched so fsck and the
/// degradation paths see a genuine mismatch. Exercised by the chaos-smoke
/// CI job; never useful in production.
int cmd_corrupt(const std::string& dir, const Args& args) {
  const auto rel = args.option("--file");
  if (!rel) {
    std::cerr << "corrupt: missing --file <path relative to dataset root>\n";
    return 2;
  }
  const std::filesystem::path path = std::filesystem::path(dir) / *rel;
  if (!std::filesystem::is_regular_file(path)) {
    std::cerr << "corrupt: no such file: " << path << "\n";
    return 2;
  }
  const std::uint64_t size = std::filesystem::file_size(path);
  std::uint64_t offset = args.size_option("--offset", 0);
  if (args.option("--tail"))
    offset = size - std::min<std::uint64_t>(size, args.size_option("--tail", 0));
  if (offset >= size) {
    std::cerr << "corrupt: offset " << offset << " out of range (file is "
              << size << " bytes)\n";
    return 2;
  }
  const unsigned mask =
      static_cast<unsigned>(args.size_option("--xor", 0x40)) & 0xff;
  if (mask == 0) {
    std::cerr << "corrupt: --xor 0 would be a no-op\n";
    return 2;
  }
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.get(byte);
  file.seekp(static_cast<std::streamoff>(offset));
  file.put(static_cast<char>(static_cast<unsigned char>(byte) ^ mask));
  file.flush();
  if (!file) {
    std::cerr << "corrupt: write failed on " << path << "\n";
    return 1;
  }
  std::cout << "flipped byte " << offset << " of " << *rel << " (xor 0x"
            << std::hex << mask << std::dec << ")\n";
  return 0;
}

int cmd_query(const std::string& dir, const Args& args) {
  const auto text = args.option("-q");
  if (!text) {
    std::cerr << "query: missing -q \"<query>\"\n";
    return 2;
  }
  const std::size_t t = args.size_option("-t", 0);
  io::OpenOptions options = io::default_open_options();
  if (args.flag("--eager")) options.mode = io::LoadMode::kEager;
  if (args.option("--budget"))
    options.budget_bytes =
        static_cast<std::uint64_t>(args.size_option("--budget", 0)) << 20;
  const core::Engine engine(
      io::Dataset::open(dir, options),
      args.flag("--scan") ? EvalMode::kScan : EvalMode::kAuto);
  const core::Selection selection = engine.select(*text);
  const io::TimestepTable& table = engine.dataset().table(t);
  const auto hits = selection.bits(t);
  std::cout << hits->count() << " of " << table.num_rows() << " records match at t="
            << t << "\n";
  if (!args.flag("--count-only")) {
    std::size_t shown = 0;
    const auto ids = table.id_column("id");
    hits->for_each_set([&](std::uint64_t row) {
      if (shown < 10) std::cout << "  row " << row << "  id " << ids[row] << "\n";
      ++shown;
    });
    if (shown > 10) std::cout << "  ... " << (shown - 10) << " more\n";
  }
  if (args.flag("--stats")) {
    const core::EngineStats s = engine.stats();
    std::cout << "cache: " << s.hits << " hits, " << s.misses << " misses, "
              << s.entries << " entries, " << s.bytes << " bytes\n";
    std::cout << "memory: resident " << s.resident_bytes << " B";
    if (s.budget_bytes == io::MemoryBudget::kUnlimited)
      std::cout << " (no budget)";
    else
      std::cout << " / budget " << s.budget_bytes << " B";
    std::cout << ", columns " << s.column_bytes << " B, segments "
              << s.segment_bytes << " B\n";
    std::cout << "io: loaded " << s.loaded_bytes << " B total, "
              << s.io_evictions << " evictions\n";
    std::cout << "simd: " << s.simd_isa << " (positions "
              << s.positions_vector_calls << " vector / "
              << s.positions_scalar_calls << " scalar, hist1d "
              << s.hist1d_vector_calls << " vector / " << s.hist1d_scalar_calls
              << " scalar, hist2d " << s.hist2d_vector_calls << " vector / "
              << s.hist2d_scalar_calls << " scalar)\n";
  }
  return 0;
}

int cmd_explain(const std::string& dir, const Args& args) {
  const auto text = args.option("-q");
  if (!text) {
    std::cerr << "explain: missing -q \"<query>\"\n";
    return 2;
  }
  const core::Engine engine = core::Engine::open(dir);
  const core::Selection selection = engine.select(*text);
  std::cout << "input:     " << *text << "\n" << selection.explain();
  return 0;
}

int cmd_histogram(const std::string& dir, const Args& args) {
  const auto vx = args.option("-x");
  const auto vy = args.option("-y");
  if (!vx || !vy) {
    std::cerr << "histogram: missing -x/-y variables\n";
    return 2;
  }
  const core::Engine engine = core::Engine::open(dir);
  const std::size_t t = args.size_option("-t", 0);
  const std::size_t bins = args.size_option("--bins", 64);
  core::Selection selection = engine.all();
  if (const auto q = args.option("-q")) selection = engine.select(*q);
  const Histogram2D h = selection.histogram2d(
      t, *vx, *vy, bins, bins,
      args.flag("--adaptive") ? BinningMode::kAdaptive : BinningMode::kUniform);
  std::cout << "histogram " << *vx << " x " << *vy << " @ t=" << t << ": "
            << h.total() << " records, " << h.nonempty_bins() << "/"
            << h.nx() * h.ny() << " bins occupied, max count " << h.max_count()
            << "\n";
  if (const auto csv = args.option("--csv")) {
    io::export_csv(std::filesystem::path(*csv), h);
    std::cout << "wrote " << *csv << "\n";
  }
  return 0;
}

int cmd_stats(const std::string& dir, const Args& args) {
  const auto var = args.option("-v");
  if (!var) {
    std::cerr << "stats: missing -v <variable>\n";
    return 2;
  }
  const core::Engine engine = core::Engine::open(dir);
  const std::size_t t = args.size_option("-t", 0);
  core::Selection selection = engine.all();
  if (const auto q = args.option("-q")) selection = engine.select(*q);
  const core::SummaryStats s = selection.summary(t, *var);
  std::cout << *var << " @ t=" << t
            << (selection.selects_all() ? "" : " | " + selection.query()->to_string())
            << "\n";
  std::cout << "  count  " << s.count << "\n  min    " << s.min << "\n  max    "
            << s.max << "\n  mean   " << s.mean << "\n  stddev " << s.stddev << "\n";
  return 0;
}

int cmd_track(const std::string& dir, const Args& args) {
  const auto text = args.option("-q");
  if (!text) {
    std::cerr << "track: missing -q \"<selection query>\"\n";
    return 2;
  }
  core::ExplorationSession session = core::ExplorationSession::open(dir);
  const std::size_t t_sel =
      args.size_option("--select-at", session.num_timesteps() - 1);
  session.set_focus(*text);
  std::vector<std::uint64_t> ids = session.selected_ids(t_sel);
  const std::size_t limit = args.size_option("--limit", 1000);
  if (ids.size() > limit) ids.resize(limit);
  const std::size_t t_from = args.size_option("--from", 0);
  const std::size_t t_to = args.size_option("--to", session.num_timesteps() - 1);
  const std::vector<std::string> vars =
      split_csv(args.option_or("--vars", "x,px"));
  // Stream the trace: a background prefetcher maps id indices and tracked
  // columns ahead of the sequential track loop. Its bounded queue caps the
  // look-ahead distance, and tracking never probes the bitmap indices, so
  // their (pinned) segment directories are not opened.
  par::Prefetcher prefetch(session.dataset());
  for (std::size_t t = t_from; t <= t_to && t < session.num_timesteps(); ++t) {
    std::vector<std::string> wanted = vars;
    wanted.push_back("id");
    if (!prefetch.request(t, std::move(wanted), /*value_indices=*/false)) break;
  }
  const core::ParticleTracks tracks = session.track(ids, t_from, t_to, vars);
  std::cout << "tracking " << ids.size() << " particles selected at t=" << t_sel
            << " over t=[" << t_from << ", " << t_to << "]\n";
  std::cout << "t,present";
  for (const auto& v : vars) std::cout << ",mean_" << v;
  std::cout << "\n";
  for (std::size_t ti = 0; ti < tracks.timesteps().size(); ++ti) {
    std::cout << tracks.timesteps()[ti] << ',' << tracks.count_present(ti);
    for (const auto& v : vars) std::cout << ',' << tracks.mean(ti, v);
    std::cout << "\n";
  }
  return 0;
}

int cmd_render(const std::string& dir, const Args& args) {
  const auto axes_text = args.option("--axes");
  const auto out = args.option("-o");
  if (!axes_text || !out) {
    std::cerr << "render: missing --axes a,b,c or -o <out.ppm>\n";
    return 2;
  }
  core::ExplorationSession session = core::ExplorationSession::open(dir);
  const std::size_t t = args.size_option("-t", 0);
  if (const auto q = args.option("-q")) session.set_focus(*q);
  core::PcViewOptions options;
  options.context_bins = args.size_option("--bins", 120);
  options.focus_bins = args.size_option("--focus-bins", 256);
  options.context_gamma = args.double_option("--gamma", 1.0);
  const render::Image img =
      session.render_parallel_coordinates(t, split_csv(*axes_text), options);
  img.write_ppm(*out);
  std::cout << "wrote " << *out << " (" << img.width() << "x" << img.height()
            << ")\n";
  return 0;
}

svc::ServiceConfig service_config_from(const Args& args) {
  svc::ServiceConfig config;
  config.max_concurrency = args.size_option("--concurrency", 0);
  if (args.flag("--no-cache")) config.cache_results = false;
  return config;
}

core::Engine open_service_engine(const std::string& dir, const Args& args) {
  io::OpenOptions options = io::default_open_options();
  if (args.option("--budget"))
    options.budget_bytes =
        static_cast<std::uint64_t>(args.size_option("--budget", 0)) << 20;
  return core::Engine(io::Dataset::open(dir, options));
}

/// Blocking entry point of `qdv_tool worker`: one engine, one framed-wire
/// socket, serve until the coordinator sends kShutdown.
int cmd_worker(const std::string& dir, const Args& args) {
  const auto socket = args.option("--socket");
  if (!socket) {
    std::cerr << "worker: missing --socket <path>\n";
    return 2;
  }
  return dist::run_worker(dir, *socket);
}

/// Spawn @p n local worker processes (this binary, `worker` subcommand) on
/// `<base_socket>.wK` sockets and attach them all to a fresh coordinator.
/// The coordinator's destructor shuts the workers down and reaps them.
std::shared_ptr<dist::Coordinator> spawn_local_workers(
    const std::string& dir, const std::string& base_socket, std::size_t n,
    std::vector<pid_t>* pids_out = nullptr) {
  auto coordinator =
      std::make_shared<dist::Coordinator>(io::Dataset::open(dir));
  const std::string exe = dist::self_exe_path("qdv_tool");
  for (std::size_t w = 0; w < n; ++w) {
    const std::string wsock = base_socket + ".w" + std::to_string(w);
    const pid_t pid =
        dist::spawn_worker_process(exe, {"worker", dir, "--socket", wsock});
    coordinator->attach_worker(wsock, pid);
    if (pids_out) pids_out->push_back(pid);
  }
  return coordinator;
}

int cmd_serve(const std::string& dir, const Args& args) {
  const auto socket = args.option("--socket");
  if (!socket) {
    std::cerr << "serve: missing --socket <path>\n";
    return 2;
  }
  svc::QueryService service(open_service_engine(dir, args),
                            service_config_from(args));
  const std::size_t workers = args.size_option("--workers", 0);
  std::shared_ptr<dist::Coordinator> coordinator;
  if (workers > 0) {
    coordinator = spawn_local_workers(dir, *socket, workers);
    coordinator->save_manifest(*socket + ".shards");
    service.set_distributor(coordinator);
  }
  svc::SocketServer server(service, *socket);
  server.start();
  std::cout << "serving " << dir << " on " << *socket;
  if (coordinator)
    std::cout << " with " << coordinator->live_workers()
              << " worker processes (shard manifest: " << *socket
              << ".shards)";
  std::cout << " (line protocol; Ctrl-C to stop)\n";
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
}

/// Seeded mixed read workload: count / histogram / summary requests over a
/// hot pool (shared, coalescible) and cold unique thresholds.
class BombardWorkload {
 public:
  BombardWorkload(const io::Dataset& dataset, std::uint64_t seed,
                  double dup_fraction, std::size_t hot_pool)
      : timesteps_(dataset.num_timesteps()), dup_fraction_(dup_fraction) {
    for (const char* var : {"px", "x", "y"}) {
      if (std::find(dataset.variables().begin(), dataset.variables().end(),
                    var) != dataset.variables().end())
        domains_.emplace_back(var, dataset.global_domain(var));
    }
    if (domains_.empty())
      domains_.emplace_back(dataset.variables().front(),
                            dataset.global_domain(dataset.variables().front()));
    std::uint64_t state = seed * 2654435761u + 1;
    for (std::size_t i = 0; i < hot_pool; ++i)
      hot_.push_back(make_request(state, /*hot_index=*/static_cast<long>(i)));
  }

  /// The i-th request of @p client (deterministic in (seed, client, i)).
  svc::WireRequest request(std::uint64_t client_seed, std::size_t i) const {
    std::uint64_t state = client_seed * 1099511628211ull + i * 2654435761u + 17;
    if (!hot_.empty() &&
        static_cast<double>(next(state) % 1000) < dup_fraction_ * 1000.0)
      return hot_[next(state) % hot_.size()];
    return make_request(state, /*hot_index=*/-1);
  }

 private:
  static std::uint64_t next(std::uint64_t& state) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }

  svc::WireRequest make_request(std::uint64_t& state, long hot_index) const {
    svc::WireRequest wire;
    svc::Request& r = wire.request;
    r.timestep = next(state) % std::max<std::size_t>(1, timesteps_);
    const auto& [var, domain] = domains_[next(state) % domains_.size()];
    // Cold thresholds get a fine-grained fraction so repeats are unlikely;
    // hot ones are quantized by pool slot.
    const double frac =
        hot_index >= 0
            ? 0.1 + 0.8 * static_cast<double>(hot_index) /
                        static_cast<double>(std::max(1l, hot_index + 1))
            : static_cast<double>(next(state) % 100000) / 100000.0;
    const double threshold = domain.first + frac * (domain.second - domain.first);
    r.query = var + " > " + qdv::format_double(threshold);
    switch (next(state) % 10) {
      case 0: case 1: case 2: case 3: case 4:
        r.kind = svc::RequestKind::kCount;
        break;
      case 5: case 6: case 7:
        r.kind = svc::RequestKind::kHistogram1D;
        r.var_x = domains_.front().first;
        r.nxbins = 64;
        break;
      case 8:
        r.kind = svc::RequestKind::kHistogram2D;
        r.var_x = domains_.front().first;
        r.var_y = domains_.back().first;
        r.nxbins = r.nybins = 32;
        break;
      default:
        r.kind = svc::RequestKind::kSummary;
        r.var_x = domains_.front().first;
        break;
    }
    r.priority = next(state) % 4 == 0 ? svc::Priority::kInteractive
                                      : svc::Priority::kNormal;
    return wire;
  }

  std::size_t timesteps_;
  double dup_fraction_;
  std::vector<std::pair<std::string, std::pair<double, double>>> domains_;
  std::vector<svc::WireRequest> hot_;
};

/// Seeded zoom/pan workload (--scenario zoom): viewport histograms over
/// variables that carry 1D pyramids, plus a slice conditioned on the pair
/// partner with grid-aligned marginal intervals (served from the pair
/// pyramid), 2D zooms, and ~10% deep zooms whose viewport is too narrow for
/// the requested bins even at the leaf level — the exact-fallback traffic.
/// Viewports are drawn per timestep from that timestep's pyramid domain, so
/// a request is servable by construction unless deliberately deep.
class ZoomWorkload {
 public:
  ZoomWorkload(const io::Dataset& dataset, std::uint64_t seed, std::size_t bins,
               double dup_fraction, std::size_t hot_pool)
      : bins_(bins), dup_fraction_(dup_fraction) {
    for (std::size_t t = 0; t < dataset.num_timesteps(); ++t) {
      Step step;
      step.t = t;
      for (const char* var : {"px", "x", "y"}) {
        const auto pyr = dataset.table(t).pyramid1d(var);
        if (!pyr) continue;
        step.vars.push_back({var, pyr->leaf_edges(0).front(),
                             pyr->leaf_edges(0).back()});
      }
      if (const auto pair = dataset.table(t).pyramid2d("x", "px")) {
        step.pair = true;
        step.x_lo = pair->leaf_edges(0).front();
        step.x_hi = pair->leaf_edges(0).back();
        step.cond_edges = pair->leaf_edges(1);  // px axis of the pair grid
      }
      if (!step.vars.empty()) steps_.push_back(std::move(step));
    }
    if (steps_.empty())
      throw std::runtime_error(
          "zoom scenario needs .pyr pyramids (regenerate without "
          "--no-pyramids)");
    // Hot viewports shared by every client: pan/zoom sessions revisit the
    // same snapped windows, which is what the level-tagged result cache is
    // for. Hot entries are always servable (no deep zooms).
    std::uint64_t state = seed * 2654435761u + 5;
    for (std::size_t i = 0; i < hot_pool; ++i)
      hot_.push_back(make_request(state, /*allow_deep=*/false));
  }

  svc::WireRequest request(std::uint64_t client_seed, std::size_t i) const {
    std::uint64_t state = client_seed * 1099511628211ull + i * 2654435761u + 29;
    if (!hot_.empty() &&
        static_cast<double>(next(state) % 1000) < dup_fraction_ * 1000.0)
      return hot_[next(state) % hot_.size()];
    return make_request(state, /*allow_deep=*/true);
  }

 private:
  struct Var {
    std::string name;
    double lo = 0.0, hi = 0.0;
  };
  struct Step {
    std::size_t t = 0;
    std::vector<Var> vars;
    bool pair = false;
    double x_lo = 0.0, x_hi = 0.0;
    std::vector<double> cond_edges;
  };

  static std::uint64_t next(std::uint64_t& state) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }

  svc::WireRequest make_request(std::uint64_t& state, bool allow_deep) const {
    const Step& step = steps_[next(state) % steps_.size()];
    svc::WireRequest wire;
    svc::Request& r = wire.request;
    r.timestep = step.t;
    r.nxbins = r.nybins = bins_;
    const auto frac = [&] {
      return static_cast<double>(next(state) % 4096) / 4096.0;
    };
    // Quantize viewports to a modest lattice: repeated snapped windows are
    // what exercises the level-tagged result cache.
    const auto window = [&](double lo, double hi, double span_frac,
                            double& out_lo, double& out_hi) {
      const double span = (hi - lo) * span_frac;
      out_lo = lo + frac() * ((hi - lo) - span);
      out_hi = out_lo + span;
    };
    const std::uint64_t roll = next(state) % 20;
    if (roll < 13 || (roll >= 19 && !allow_deep) ||
        (!step.pair && roll < 19)) {
      // Plain servable 1D zoom, span 15%..90% of the domain.
      const Var& v = step.vars[next(state) % step.vars.size()];
      r.kind = svc::RequestKind::kZoom1D;
      r.var_x = v.name;
      window(v.lo, v.hi, 0.15 + 0.75 * frac(), r.view_lo_x, r.view_hi_x);
    } else if (roll < 16) {
      // Zoom on x conditioned on px, interval aligned to the pair pyramid's
      // px leaf edges (never the top edge: the closed last leaf bin makes a
      // `< domain_hi` condition unservable).
      r.kind = svc::RequestKind::kZoom1D;
      r.var_x = "x";
      window(step.x_lo, step.x_hi, 0.2 + 0.7 * frac(), r.view_lo_x,
             r.view_hi_x);
      const std::size_t n = step.cond_edges.size();
      const std::size_t i0 = next(state) % (n / 2);
      const std::size_t i1 = i0 + 1 + next(state) % (n - 2 - i0);
      r.query = "px >= " + qdv::format_double(step.cond_edges[i0]) +
                " && px < " + qdv::format_double(step.cond_edges[i1]);
    } else if (roll < 19) {
      // Unconditioned 2D zoom over the pair plane.
      r.kind = svc::RequestKind::kZoom2D;
      r.var_x = "x";
      r.var_y = "px";
      window(step.x_lo, step.x_hi, 0.2 + 0.7 * frac(), r.view_lo_x,
             r.view_hi_x);
      window(step.cond_edges.front(), step.cond_edges.back(),
             0.2 + 0.7 * frac(), r.view_lo_y, r.view_hi_y);
    } else {
      // Deep zoom: ~1% span cannot carry bins_ leaf bins -> exact fallback.
      const Var& v = step.vars[next(state) % step.vars.size()];
      r.kind = svc::RequestKind::kZoom1D;
      r.var_x = v.name;
      window(v.lo, v.hi, 0.01, r.view_lo_x, r.view_hi_x);
    }
    r.priority = svc::Priority::kInteractive;
    return wire;
  }

  std::size_t bins_;
  double dup_fraction_;
  std::vector<Step> steps_;
  std::vector<svc::WireRequest> hot_;
};

/// Untimed differential gate of the zoom scenario: every distinct request
/// is answered twice on a direct local engine — pyramid-auto and forced
/// exact — and must match bit for bit (counts and bin edges) before any
/// latency is measured. Returns the number of mismatches.
std::size_t verify_zoom_requests(
    const std::string& dir,
    const std::vector<svc::WireRequest>& distinct, std::size_t& served,
    std::size_t& fallback) {
  const core::Engine direct = core::Engine::open(dir);
  std::size_t failures = 0;
  for (const svc::WireRequest& wire : distinct) {
    const svc::Request& r = wire.request;
    const core::Selection sel =
        r.query.empty() ? direct.all() : direct.select(r.query);
    bool ok = true;
    bool pyramid = false;
    if (r.kind == svc::RequestKind::kZoom1D) {
      const core::Zoom1DResult a = sel.zoom_histogram1d(
          r.timestep, r.var_x, r.view_lo_x, r.view_hi_x, r.nxbins,
          core::ZoomMode::kAuto);
      const core::Zoom1DResult e = sel.zoom_histogram1d(
          r.timestep, r.var_x, r.view_lo_x, r.view_hi_x, r.nxbins,
          core::ZoomMode::kExact);
      ok = a.hist.counts == e.hist.counts &&
           a.hist.bins.edges() == e.hist.bins.edges();
      pyramid = a.pyramid;
    } else {
      const core::Zoom2DResult a = sel.zoom_histogram2d(
          r.timestep, r.var_x, r.var_y, r.view_lo_x, r.view_hi_x, r.view_lo_y,
          r.view_hi_y, r.nxbins, r.nybins, core::ZoomMode::kAuto);
      const core::Zoom2DResult e = sel.zoom_histogram2d(
          r.timestep, r.var_x, r.var_y, r.view_lo_x, r.view_hi_x, r.view_lo_y,
          r.view_hi_y, r.nxbins, r.nybins, core::ZoomMode::kExact);
      ok = a.hist.counts == e.hist.counts &&
           a.hist.xbins.edges() == e.hist.xbins.edges() &&
           a.hist.ybins.edges() == e.hist.ybins.edges();
      pyramid = a.pyramid;
    }
    if (!ok) {
      ++failures;
      std::cerr << "zoom verify mismatch: "
                << svc::format_request_line(wire) << "\n";
    }
    if (pyramid)
      ++served;
    else
      ++fallback;
  }
  return failures;
}

/// --scenario brush: each client owns one named brush and loops
/// edit-then-query — `brush refine` followed by `count ... brush=` — the
/// incremental delta path, recreating the brush every 32 edits to stay
/// within the delta history. Every client tracks its composed query text
/// locally; a cold phase then replays each text as a plain `count q=...`,
/// which re-plans and re-executes the whole AND chain — the no-brush
/// baseline. When self-hosting, the cold phase runs against a fresh
/// server instance so both phases warm their own node-level bitvector
/// caches and neither free-rides on leaves the other already evaluated
/// (an external --socket cannot be restarted; its shared caches favor
/// whichever phase runs second — the cold one, so the comparison stays
/// conservative). The replayed `count=` must equal the brush query's
/// count at the same step (differential exactness gate), and the server's
/// brush_stale counter must be zero.
int run_brush_bombard(const std::string& dir, const Args& args,
                      std::size_t clients, std::size_t edits,
                      std::uint64_t seed) {
  struct Step {  // one edit-then-query measurement
    std::string composed;           // full query text at this epoch
    std::size_t client = 0;
    std::size_t timestep = 0;
    std::uint64_t brush_count = 0;  // count= of the brush-side response
    double edit_us = 0.0;           // `brush refine` round trip
    double query_us = 0.0;          // `count brush=` round trip
  };

  std::vector<std::pair<std::string, std::pair<double, double>>> domains;
  std::size_t timesteps = 1;
  {
    const io::Dataset ds = io::Dataset::open(dir);
    timesteps = std::max<std::size_t>(1, ds.num_timesteps());
    for (const char* var : {"px", "x", "y"})
      if (std::find(ds.variables().begin(), ds.variables().end(), var) !=
          ds.variables().end())
        domains.emplace_back(var, ds.global_domain(var));
    if (domains.empty())
      domains.emplace_back(ds.variables().front(),
                           ds.global_domain(ds.variables().front()));
  }

  const auto next = [](std::uint64_t& state) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const auto count_of = [](const std::string& body) {
    unsigned long long n = 0;
    const std::size_t pos = body.find("count=");
    if (pos != std::string::npos)
      std::sscanf(body.c_str() + pos, "count=%llu", &n);
    return static_cast<std::uint64_t>(n);
  };
  const auto stat_field = [](const std::string& body, const std::string& key) {
    const std::size_t pos = body.find(" " + key + "=");
    if (pos == std::string::npos) return std::uint64_t{0};
    return static_cast<std::uint64_t>(
        std::strtoull(body.c_str() + pos + key.size() + 2, nullptr, 10));
  };

  // One fresh self-hosted server per phase (see the header comment). With
  // an external --socket both phases talk to that one server.
  std::string socket = args.option_or("--socket", "");
  const bool self_host = socket.empty();
  std::optional<svc::QueryService> service;
  std::optional<svc::SocketServer> server;
  if (self_host)
    socket = (std::filesystem::temp_directory_path() /
              ("qdv_bombard_" + std::to_string(::getpid()) + ".sock"))
                 .string();
  const auto fresh_server = [&] {
    if (!self_host) return;
    if (server) server->stop();
    server.reset();
    service.reset();
    service.emplace(open_service_engine(dir, args), service_config_from(args));
    server.emplace(*service, socket);
    server->start();
  };
  fresh_server();

  std::mutex merge_mutex;
  std::vector<Step> steps;
  std::uint64_t errors = 0;

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<Step> local;
      local.reserve(edits);
      std::uint64_t local_errors = 0;
      std::uint64_t state = (seed + c + 1) * 1099511628211ull + 13;
      const std::size_t t = c % timesteps;
      const std::string name = "b" + std::to_string(c);
      const std::string query_line =
          "count t=" + std::to_string(t) + " brush=" + name;
      // Base cuts keep most records; each refinement carves a thin random
      // slice out of one variable's domain — the brushing gesture — as
      // `(var <= a || var > b)`. Slice exclusions stay distinct OR
      // conjuncts under canonicalization (interval conjuncts would merge
      // into one canonical interval, letting the cold phase dedupe into
      // the result cache), so every step's canonical plan is new and the
      // cold baseline honestly pays the whole growing chain.
      const auto make_base = [&] {
        const auto& [var, domain] = domains[next(state) % domains.size()];
        const double f =
            0.05 + 0.15 * static_cast<double>(next(state) % 1000) / 1000.0;
        return var + " > " +
               qdv::format_double(domain.first +
                                  f * (domain.second - domain.first));
      };
      const auto make_refine = [&] {
        const auto& [var, domain] = domains[next(state) % domains.size()];
        const double span = domain.second - domain.first;
        const double lo =
            domain.first +
            (0.10 + 0.78 * static_cast<double>(next(state) % 4096) / 4096.0) *
                span;
        const double hi =
            lo + (0.02 + 0.03 * static_cast<double>(next(state) % 1000) /
                             1000.0) *
                     span;
        return "(" + var + " <= " + qdv::format_double(lo) + " || " + var +
               " > " + qdv::format_double(hi) + ")";
      };
      try {
        svc::SocketClient client{std::filesystem::path(socket)};
        std::string composed;
        std::string body;
        const auto create = [&] {
          composed = make_base();
          if (!svc::parse_response_line(
                  client.request("brush create name=" + name +
                                 " q=" + composed),
                  body))
            ++local_errors;
        };
        create();
        for (std::size_t i = 0; i < edits; ++i) {
          if (i > 0 && i % core::Brush::kMaxHistory == 0) {
            if (!svc::parse_response_line(
                    client.request("brush drop name=" + name), body))
              ++local_errors;
            create();
          }
          const std::string extra = make_refine();
          const auto t0 = std::chrono::steady_clock::now();
          const std::string edit_reply =
              client.request("brush refine name=" + name + " q=" + extra);
          const auto t1 = std::chrono::steady_clock::now();
          const std::string query_reply = client.request(query_line);
          const auto t2 = std::chrono::steady_clock::now();
          composed += " && " + extra;
          Step step;
          step.composed = composed;
          step.client = c;
          step.timestep = t;
          step.edit_us =
              std::chrono::duration<double, std::micro>(t1 - t0).count();
          step.query_us =
              std::chrono::duration<double, std::micro>(t2 - t1).count();
          if (!svc::parse_response_line(edit_reply, body)) ++local_errors;
          if (!svc::parse_response_line(query_reply, body)) {
            ++local_errors;
          } else {
            step.brush_count = count_of(body);
          }
          local.push_back(std::move(step));
        }
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(merge_mutex);
        std::cerr << "brush client " << c << ": " << e.what() << "\n";
        ++local_errors;
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      steps.insert(steps.end(), std::make_move_iterator(local.begin()),
                   std::make_move_iterator(local.end()));
      errors += local_errors;
    });
  }
  for (std::thread& t : threads) t.join();

  // Brush-phase server stats (the brush counters live on this instance;
  // read them before the cold phase replaces it).
  std::string server_stats = "unavailable";
  std::uint64_t stale_hits = 0, delta_evals = 0, full_evals = 0;
  try {
    svc::SocketClient client{std::filesystem::path(socket)};
    std::string body;
    if (svc::parse_response_line(client.request("stats"), body)) {
      server_stats = body;
      stale_hits = stat_field(body, "brush_stale");
      delta_evals = stat_field(body, "brush_delta");
      full_evals = stat_field(body, "brush_full");
    }
  } catch (const std::exception&) {
    // Report latencies even when the server died mid-run.
  }

  fresh_server();

  // Cold baseline + differential gate: every composed text replayed as a
  // plain query must execute from scratch (distinct texts, distinct keys,
  // cold caches) and report exactly the count the delta path reported.
  // Replayed at the same concurrency as the brush phase — one connection
  // per original client, each walking its own chain in order — so queue
  // contention is matched, not a thumb on either scale.
  std::vector<double> cold_us;
  cold_us.reserve(steps.size());
  std::size_t verify_failures = 0;
  std::uint64_t cold_cached = 0;
  {
    std::vector<std::thread> cold_threads;
    cold_threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      cold_threads.emplace_back([&, c] {
        std::vector<double> local_us;
        std::size_t local_failures = 0;
        std::uint64_t local_errors = 0;
        try {
          svc::SocketClient client{std::filesystem::path(socket)};
          for (const Step& step : steps) {
            if (step.client != c) continue;
            const std::string line = "count t=" +
                                     std::to_string(step.timestep) +
                                     " q=" + step.composed;
            const auto start = std::chrono::steady_clock::now();
            const std::string reply = client.request(line);
            local_us.push_back(std::chrono::duration<double, std::micro>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
            std::string body;
            if (!svc::parse_response_line(reply, body)) {
              ++local_errors;
            } else if (count_of(body) != step.brush_count) {
              ++local_failures;
              std::lock_guard<std::mutex> lock(merge_mutex);
              std::cerr << "brush verify mismatch: brush said "
                        << step.brush_count << ", cold re-execution said "
                        << count_of(body) << " for " << line << "\n";
            }
          }
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(merge_mutex);
          std::cerr << "cold baseline client " << c << ": " << e.what()
                    << "\n";
          ++local_errors;
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        cold_us.insert(cold_us.end(), local_us.begin(), local_us.end());
        verify_failures += local_failures;
        errors += local_errors;
      });
    }
    for (std::thread& t : cold_threads) t.join();
  }
  try {
    svc::SocketClient client{std::filesystem::path(socket)};
    std::string body;
    if (svc::parse_response_line(client.request("stats"), body))
      cold_cached = stat_field(body, "cached");
  } catch (const std::exception&) {
  }
  if (server) server->stop();

  std::vector<double> brush_us, edit_us, query_us;
  brush_us.reserve(steps.size());
  edit_us.reserve(steps.size());
  query_us.reserve(steps.size());
  for (const Step& step : steps) {
    brush_us.push_back(step.edit_us + step.query_us);
    edit_us.push_back(step.edit_us);
    query_us.push_back(step.query_us);
  }
  std::sort(brush_us.begin(), brush_us.end());
  std::sort(edit_us.begin(), edit_us.end());
  std::sort(query_us.begin(), query_us.end());
  std::sort(cold_us.begin(), cold_us.end());
  const auto brush_at = [&](double q) {
    return svc::sorted_percentile(brush_us, q);
  };
  const auto cold_at = [&](double q) {
    return svc::sorted_percentile(cold_us, q);
  };
  const double speedup_p50 =
      brush_at(0.50) > 0.0 ? cold_at(0.50) / brush_at(0.50) : 0.0;

  std::ostringstream json;
  json << "{\n"
       << "  \"workload\": {\"clients\": " << clients
       << ", \"edits_per_client\": " << edits << ", \"seed\": " << seed
       << ", \"scenario\": \"brush\"},\n"
       << "  \"brush\": {\"steps\": " << steps.size()
       << ", \"p50_us\": " << brush_at(0.50)
       << ", \"p95_us\": " << brush_at(0.95)
       << ", \"p99_us\": " << brush_at(0.99)
       << ", \"refine_p50_us\": " << svc::sorted_percentile(edit_us, 0.50)
       << ", \"query_p50_us\": " << svc::sorted_percentile(query_us, 0.50)
       << ", \"delta_evals\": " << delta_evals
       << ", \"full_evals\": " << full_evals << "},\n"
       << "  \"cold\": {\"steps\": " << cold_us.size()
       << ", \"p50_us\": " << cold_at(0.50)
       << ", \"p95_us\": " << cold_at(0.95)
       << ", \"p99_us\": " << cold_at(0.99)
       << ", \"result_cache_hits\": " << cold_cached << "},\n"
       << "  \"speedup_p50\": " << speedup_p50 << ",\n"
       << "  \"verify_failures\": " << verify_failures << ",\n"
       << "  \"stale_hits\": " << stale_hits << ",\n"
       << "  \"errors\": " << errors << ",\n"
       << "  \"server_stats\": \"" << server_stats << "\"\n"
       << "}\n";
  std::cout << "brush: " << steps.size() << " edit-then-query steps, p50 "
            << brush_at(0.50) << " us (refine "
            << svc::sorted_percentile(edit_us, 0.50) << " + query "
            << svc::sorted_percentile(query_us, 0.50) << ") vs cold p50 "
            << cold_at(0.50) << " us (speedup " << speedup_p50 << "x), "
            << delta_evals << " delta / " << full_evals << " full evals, "
            << verify_failures << " verify failures, " << stale_hits
            << " stale hits, " << errors << " errors\n";
  std::cout << "server: " << server_stats << "\n";
  if (const auto out = args.option("--json")) {
    std::ofstream file(*out);
    file << json.str();
    std::cout << "wrote " << *out << "\n";
  } else {
    std::cout << json.str();
  }
  return errors == 0 && verify_failures == 0 && stale_hits == 0 ? 0 : 1;
}

int cmd_bombard(const std::string& dir, const Args& args) {
  const std::size_t clients = args.size_option("--clients", 8);
  const std::size_t requests = args.size_option("--requests", 200);
  const std::uint64_t seed = args.size_option("--seed", 42);
  const double dup = args.double_option("--dup", 0.5);
  const std::size_t hot_pool = args.size_option("--hot", 8);
  const std::string scenario = args.option_or("--scenario", "mixed");
  const std::size_t zoom_bins = args.size_option("--bins", 64);
  if (scenario != "mixed" && scenario != "zoom" && scenario != "brush") {
    std::cerr << "bombard: unknown --scenario '" << scenario
              << "' (use mixed | zoom | brush)\n";
    return 2;
  }

  // --chaos: seeded fault injection on the coordinator<->worker wire plus
  // one SIGKILLed worker mid-run. Only detectable faults (connection reset,
  // EINTR, short transfers, latency) are in the default spec — the dist
  // frames carry no payload checksums, so a silent bit flip there is not a
  // survivable fault, and the differential verify below must stay clean.
  const bool chaos = args.flag("--chaos");
  const std::string chaos_spec = args.option_or(
      "--chaos-spec", "seed:" + std::to_string(seed) +
                          ",spec:wire.reset@0.02,spec:wire.eintr@0.05"
                          ",spec:wire.short@0.05,spec:wire.delay@0.01");
  if (chaos) {
    std::string error;
    if (!fault::configure(chaos_spec, &error)) {
      std::cerr << "bombard: bad --chaos-spec: " << error << "\n";
      return 2;
    }
  }

  // The brush scenario drives its own edit-then-query protocol exchange
  // (stateful per client) and manages its own per-phase servers, so it
  // bypasses the shared self-hosting and request matrix below.
  if (scenario == "brush")
    return run_brush_bombard(dir, args, clients, requests, seed);

  // Self-host unless pointed at an external server: spin up the service and
  // a socket in-process so one command measures the full wire path.
  const std::size_t dist_workers = args.size_option("--workers", 0);
  std::optional<svc::QueryService> service;
  std::optional<svc::SocketServer> server;
  std::shared_ptr<dist::Coordinator> coordinator;
  std::vector<pid_t> worker_pids;
  std::string socket = args.option_or("--socket", "");
  if (socket.empty()) {
    socket = (std::filesystem::temp_directory_path() /
              ("qdv_bombard_" + std::to_string(::getpid()) + ".sock"))
                 .string();
    service.emplace(open_service_engine(dir, args), service_config_from(args));
    if (dist_workers > 0) {
      coordinator = spawn_local_workers(dir, socket, dist_workers,
                                        &worker_pids);
      service->set_distributor(coordinator);
    }
    server.emplace(*service, socket);
    server->start();
  } else if (dist_workers > 0) {
    std::cerr << "bombard: --workers needs the self-hosted mode "
                 "(drop --socket)\n";
    return 2;
  }

  // Materialize the whole request matrix up front: the zoom scenario's
  // verify and exact-baseline phases must see exactly the lines the timed
  // phase will send.
  std::vector<std::vector<std::string>> lines(clients);
  std::vector<svc::WireRequest> distinct;  // zoom scenario only
  {
    const io::Dataset ds = io::Dataset::open(dir);
    std::unordered_set<std::string> seen;
    if (scenario == "zoom") {
      const ZoomWorkload workload(ds, seed, zoom_bins, dup, hot_pool);
      for (std::size_t c = 0; c < clients; ++c)
        for (std::size_t i = 0; i < requests; ++i) {
          const svc::WireRequest wire = workload.request(seed + c + 1, i);
          lines[c].push_back(svc::format_request_line(wire));
          if (seen.insert(lines[c].back()).second) distinct.push_back(wire);
        }
    } else {
      const BombardWorkload workload(ds, seed, dup, hot_pool);
      for (std::size_t c = 0; c < clients; ++c)
        for (std::size_t i = 0; i < requests; ++i)
          lines[c].push_back(
              svc::format_request_line(workload.request(seed + c + 1, i)));
    }
  }

  // Phase A (zoom): differential verification BEFORE any timing — a
  // mismatch makes the whole run exit nonzero, so no benchmark number can
  // come from an unverified pyramid path.
  std::size_t zoom_verify_failures = 0;
  std::size_t zoom_served = 0, zoom_fallback = 0;
  if (scenario == "zoom") {
    zoom_verify_failures =
        verify_zoom_requests(dir, distinct, zoom_served, zoom_fallback);
    std::cout << "zoom verify: " << distinct.size() << " distinct requests, "
              << zoom_served << " pyramid-servable, " << zoom_fallback
              << " exact-fallback, " << zoom_verify_failures
              << " mismatches\n";
  }

  // Phase B: the timed wire run. Zoom responses are tagged pyr=0|1, so the
  // client can split latencies by serving tier without trusting server
  // counters.
  std::mutex merge_mutex;
  std::vector<double> latencies_us;
  std::vector<double> pyramid_latencies_us;
  std::uint64_t pyr_responses = 0, zoom_responses = 0;
  std::uint64_t errors = 0;
  // Chaos: take one worker down mid-phase. The coordinator must detect the
  // death, reshard over the survivors, and keep every answer exact.
  bool chaos_killed = false;
  std::thread chaos_killer;
  if (chaos && !worker_pids.empty()) {
    chaos_killed = true;
    chaos_killer = std::thread([pid = worker_pids.front()] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      ::kill(pid, SIGKILL);
    });
  }
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double> local, local_pyr;
      local.reserve(requests);
      std::uint64_t local_errors = 0, local_pyr_hits = 0, local_zoom = 0;
      // A dead socket or a dropped connection is a counted failure, not a
      // std::terminate: the run still produces its report and exits 1.
      try {
        svc::SocketClient client{std::filesystem::path(socket)};
        for (std::size_t i = 0; i < requests; ++i) {
          const std::string& line = lines[c][i];
          const auto start = std::chrono::steady_clock::now();
          const std::string response = client.request(line);
          const double us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count();
          local.push_back(us);
          std::string body;
          if (!svc::parse_response_line(response, body)) ++local_errors;
          if (body.find(" pyr=") != std::string::npos) {
            ++local_zoom;
            if (body.find(" pyr=1") != std::string::npos) {
              ++local_pyr_hits;
              local_pyr.push_back(us);
            }
          }
        }
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(merge_mutex);
        std::cerr << "client " << c << ": " << e.what() << "\n";
        ++local_errors;
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies_us.insert(latencies_us.end(), local.begin(), local.end());
      pyramid_latencies_us.insert(pyramid_latencies_us.end(),
                                  local_pyr.begin(), local_pyr.end());
      pyr_responses += local_pyr_hits;
      zoom_responses += local_zoom;
      errors += local_errors;
    });
  }
  for (std::thread& t : threads) t.join();
  if (chaos_killer.joinable()) chaos_killer.join();

  // Phase C (zoom): sequential exact=1 re-run of the distinct requests —
  // the honest no-pyramid baseline (exact-mode zooms are never answered
  // from or stored in the result cache).
  std::vector<double> exact_latencies_us;
  if (scenario == "zoom") {
    try {
      svc::SocketClient client{std::filesystem::path(socket)};
      for (svc::WireRequest wire : distinct) {
        wire.request.zoom_mode = core::ZoomMode::kExact;
        const std::string line = svc::format_request_line(wire);
        const auto start = std::chrono::steady_clock::now();
        const std::string response = client.request(line);
        exact_latencies_us.push_back(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count());
        std::string body;
        if (!svc::parse_response_line(response, body)) ++errors;
      }
    } catch (const std::exception& e) {
      std::cerr << "exact baseline: " << e.what() << "\n";
      ++errors;
    }
  }

  std::string server_stats = "unavailable";
  try {
    svc::SocketClient client{std::filesystem::path(socket)};
    std::string body;
    if (svc::parse_response_line(client.request("stats"), body))
      server_stats = body;
  } catch (const std::exception&) {
    // Report latencies even when the server died mid-run.
  }
  if (server) server->stop();

  // Chaos accounting: what the injector actually fired, plus the kill.
  // Injection stops here — the verify phase below measures what state the
  // chaos left behind, not fresh faults.
  std::ostringstream chaos_json;
  if (chaos) {
    const auto wire = [](fault::Kind kind) {
      return fault::injected(fault::Site::kWire, kind);
    };
    chaos_json << "  \"chaos\": {\"spec\": \"" << chaos_spec
               << "\", \"killed_worker\": "
               << (chaos_killed ? "true" : "false")
               << ", \"injected\": {\"wire.reset\": "
               << wire(fault::Kind::kConnReset)
               << ", \"wire.eintr\": " << wire(fault::Kind::kEintr)
               << ", \"wire.short\": " << wire(fault::Kind::kShortRead)
               << ", \"wire.delay\": " << wire(fault::Kind::kLatency)
               << "}, \"injected_total\": " << fault::injected_total()
               << "},\n";
    std::cout << "chaos: " << fault::injected_total()
              << " faults injected (spec " << chaos_spec << ")"
              << (chaos_killed ? ", 1 worker killed" : "") << "\n";
    fault::reset();
  }

  // Distributed correctness guard: scatter one count per timestep and check
  // each merged answer against a direct single-process engine. Under
  // --chaos the whole fleet may have been declared dead (injected resets
  // can fail the reconnect probe that would have cleared a healthy
  // worker); that is graceful degradation, not a verification failure —
  // the timed phase already answered through the service's local fallback.
  std::size_t verify_failures = 0;
  std::ostringstream dist_json;
  if (coordinator) {
    const core::Engine direct = core::Engine::open(dir);
    const io::Dataset& ds = direct.dataset();
    const std::string& var = ds.variables().front();
    const auto domain = ds.global_domain(var);
    for (std::size_t t = 0; t < ds.num_timesteps(); ++t) {
      const std::string query =
          var + " > " +
          qdv::format_double(domain.first +
                             0.5 * (domain.second - domain.first));
      dist::GatherResult g;
      try {
        g = coordinator->execute(dist::ShardKind::kCount, t, query);
      } catch (const dist::NoLiveWorkers& e) {
        if (!chaos) throw;
        std::cout << "distributed verify skipped: " << e.what() << "\n";
        break;
      }
      const std::uint64_t expect = direct.select(query).bits(t)->count();
      if (!g.ok || g.count != expect) ++verify_failures;
    }
    const dist::DistStats dstats = coordinator->stats();
    dist_json << "  \"distributed\": {\"workers\": " << dstats.workers
              << ", \"alive\": " << dstats.alive
              << ", \"queries\": " << dstats.queries
              << ", \"scatters\": " << dstats.scatters
              << ", \"gathers\": " << dstats.gathers
              << ", \"retries\": " << dstats.retries
              << ", \"reshards\": " << dstats.reshards
              << ", \"deaths\": " << dstats.deaths
              << ", \"remote_errors\": " << dstats.remote_errors
              << ", \"verify_failures\": " << verify_failures << "},\n";
    std::cout << "distributed: " << dstats.alive << "/" << dstats.workers
              << " workers alive, " << dstats.scatters << " scatters, "
              << dstats.gathers << " gathers, " << verify_failures
              << " verify failures\n";
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  const auto at = [&](double q) { return svc::sorted_percentile(latencies_us, q); };
  double mean = 0.0;
  for (const double v : latencies_us) mean += v;
  if (!latencies_us.empty()) mean /= static_cast<double>(latencies_us.size());

  std::ostringstream pyramid_json;
  if (scenario == "zoom") {
    std::sort(pyramid_latencies_us.begin(), pyramid_latencies_us.end());
    std::sort(exact_latencies_us.begin(), exact_latencies_us.end());
    const auto pyr_at = [&](double q) {
      return svc::sorted_percentile(pyramid_latencies_us, q);
    };
    const auto exact_at = [&](double q) {
      return svc::sorted_percentile(exact_latencies_us, q);
    };
    const double hit_rate =
        zoom_responses == 0 ? 0.0
                            : static_cast<double>(pyr_responses) /
                                  static_cast<double>(zoom_responses);
    pyramid_json << "  \"pyramid\": {\"verified\": " << distinct.size()
                 << ", \"verify_failures\": " << zoom_verify_failures
                 << ", \"served\": " << zoom_served
                 << ", \"fallback\": " << zoom_fallback
                 << ", \"hit_rate\": " << hit_rate
                 << ", \"bins\": " << zoom_bins
                 << ",\n    \"latency_us\": {\"p50\": " << pyr_at(0.50)
                 << ", \"p95\": " << pyr_at(0.95)
                 << ", \"p99\": " << pyr_at(0.99)
                 << "},\n    \"exact_latency_us\": {\"p50\": " << exact_at(0.50)
                 << ", \"p95\": " << exact_at(0.95)
                 << ", \"p99\": " << exact_at(0.99) << "}},\n";
    std::cout << "pyramid: hit rate " << hit_rate << " (" << pyr_responses
              << "/" << zoom_responses << " wire responses), served p99 "
              << pyr_at(0.99) << " us vs exact p50 " << exact_at(0.50)
              << " us\n";
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"workload\": {\"clients\": " << clients
       << ", \"requests_per_client\": " << requests << ", \"seed\": " << seed
       << ", \"dup_fraction\": " << dup << ", \"hot_pool\": " << hot_pool
       << ", \"scenario\": \"" << scenario << "\"},\n"
       << "  \"latency_us\": {\"p50\": " << at(0.50) << ", \"p95\": " << at(0.95)
       << ", \"p99\": " << at(0.99)
       << ", \"max\": " << (latencies_us.empty() ? 0.0 : latencies_us.back())
       << ", \"mean\": " << mean << "},\n"
       << "  \"errors\": " << errors << ",\n"
       << pyramid_json.str()
       << chaos_json.str()
       << dist_json.str()
       << "  \"server_stats\": \"" << server_stats << "\"\n"
       << "}\n";
  std::cout << "bombard: " << clients << " clients x " << requests
            << " requests, p50 " << at(0.50) << " us, p95 " << at(0.95)
            << " us, p99 " << at(0.99) << " us, " << errors << " errors\n";
  std::cout << "server: " << server_stats << "\n";
  if (const auto out = args.option("--json")) {
    std::ofstream file(*out);
    file << json.str();
    std::cout << "wrote " << *out << "\n";
  } else {
    std::cout << json.str();
  }
  return errors == 0 && verify_failures == 0 && zoom_verify_failures == 0 ? 0
                                                                          : 1;
}

void usage() {
  std::cout <<
      R"(qdv_tool — query-driven exploration of particle datasets

usage: qdv_tool <command> <dataset-dir> [options]

commands:
  generate   create a synthetic wakefield dataset (+ indices)
  info       dataset summary
  query      evaluate a Boolean range / id query at one timestep
  explain    print the canonicalized execution plan of a query
  histogram  conditional 2D histogram (optionally exported as CSV)
  stats      conditional summary statistics of one variable
  track      select particles, trace them across timesteps
  render     histogram-based parallel coordinates to a PPM image
  serve      host the dataset as a concurrent query service (unix socket)
  worker     run one sharded worker process (spawned by serve --workers)
  bombard    replay a seeded concurrent workload against a service
  fsck       verify every on-disk artifact against its checksum sidecars
  corrupt    flip one byte of one artifact (integrity drills, CI chaos)

run a command without options to see its required arguments.
full reference: docs/qdv_tool.md
)";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0 ||
                    std::strcmp(argv[1], "help") == 0)) {
    usage();
    return 0;
  }
  if (argc < 3) {
    usage();
    return argc < 2 ? 0 : 2;
  }
  const std::string command = argv[1];
  const std::string dir = argv[2];
  const Args args(argc - 2, argv + 2);
  try {
    if (command == "generate") return cmd_generate(dir, args);
    if (command == "info") return cmd_info(dir);
    if (command == "query") return cmd_query(dir, args);
    if (command == "explain") return cmd_explain(dir, args);
    if (command == "histogram") return cmd_histogram(dir, args);
    if (command == "stats") return cmd_stats(dir, args);
    if (command == "track") return cmd_track(dir, args);
    if (command == "render") return cmd_render(dir, args);
    if (command == "serve") return cmd_serve(dir, args);
    if (command == "worker") return cmd_worker(dir, args);
    if (command == "bombard") return cmd_bombard(dir, args);
    if (command == "fsck") return cmd_fsck(dir, args);
    if (command == "corrupt") return cmd_corrupt(dir, args);
    std::cerr << "unknown command '" << command << "'\n";
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
