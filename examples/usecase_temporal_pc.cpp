// Section IV-E of the paper (Figure 9): temporal parallel coordinates.
//
// The beam is rendered at timesteps t=14..22 in one plot, one color per
// timestep, revealing the two beams' stable relative positions (x, xrel) and
// their diverging acceleration histories (px).
#include <iostream>

#include "core/session.hpp"
#include "example_common.hpp"

int main() {
  using namespace qdv;

  const auto dir = examples::ensure_2d_dataset();
  core::ExplorationSession session = core::ExplorationSession::open(dir);
  const std::size_t t_sel = session.num_timesteps() - 1;

  // Define the beam at the last timestep, then restrict all views to it.
  session.set_focus("px > 8.872e10");
  std::vector<std::uint64_t> beam_ids = session.selected_ids(t_sel);
  if (beam_ids.size() > 500) beam_ids.resize(500);
  session.set_focus(Query::id_in("id", beam_ids));
  std::cout << "temporal parallel coordinates of " << beam_ids.size()
            << " beam particles, t=14..22\n";

  core::PcViewOptions options;
  options.focus_bins = 128;
  options.layout.width = 1100;
  const render::Image img =
      session.render_temporal(14, 22, {"x", "xrel", "y", "px", "py"}, options);
  const auto out = examples::output_dir() / "fig09_temporal_pc.ppm";
  img.write_ppm(out);
  examples::report_image(out, "Fig 9: temporal parallel coordinates (t=14..22)");

  // Quantitative counterpart of the figure's narrative.
  const core::ParticleTracks tracks = session.track(beam_ids, 14, 22, {"px", "xrel"});
  std::cout << "\n  t    mean px      mean xrel\n";
  for (std::size_t ti = 0; ti < tracks.timesteps().size(); ++ti)
    std::cout << "  " << tracks.timesteps()[ti] << "    " << tracks.mean(ti, "px")
              << "    " << tracks.mean(ti, "xrel") << "\n";
  std::cout << "(xrel stays roughly stable while px grows: the beams ride the "
               "wake as the window advances)\n";
  return 0;
}
