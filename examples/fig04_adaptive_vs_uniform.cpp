// Regenerates Figures 3/4 of the paper: 32x32 uniformly binned versus
// adaptively (equal-weight) binned histogram parallel coordinates, with a
// focus selection (red) overlaid on the context. Adaptive binning spends its
// bins in dense regions, preserving the main data trends at low level of
// detail.
#include <iostream>

#include "core/session.hpp"
#include "example_common.hpp"

int main() {
  using namespace qdv;

  const auto dir = examples::ensure_2d_dataset();
  core::ExplorationSession session = core::ExplorationSession::open(dir);
  const std::vector<std::string> axes = {"x", "y", "px", "py"};
  const std::size_t t = 24;

  session.set_focus("px > 5e10");

  const auto render_variant = [&](BinningMode binning, const std::string& filename,
                                  const std::string& label) {
    core::PcViewOptions options;
    options.context_bins = 32;
    options.focus_bins = 32;
    options.binning = binning;
    options.context_color = render::colors::kGray;
    options.focus_color = render::colors::kRed;
    const render::Image img = session.render_parallel_coordinates(t, axes, options);
    const auto out = examples::output_dir() / filename;
    img.write_ppm(out);
    examples::report_image(out, label);
  };

  render_variant(BinningMode::kUniform, "fig04a_uniform32.ppm",
                 "Fig 4 left: 32x32 uniform bins");
  render_variant(BinningMode::kAdaptive, "fig04b_adaptive32.ppm",
                 "Fig 4 right: 32x32 adaptive bins");

  // Quantify what adaptive binning buys: bin-count concentration.
  const HistogramEngine engine = session.dataset().table(t).engine();
  const Histogram1D uniform = engine.histogram1d("px", 32);
  const Histogram1D adaptive =
      engine.histogram1d("px", 32, nullptr, BinningMode::kAdaptive);
  std::cout << "px, 32 bins  | max bin count: uniform=" << uniform.max_count()
            << " adaptive=" << adaptive.max_count()
            << " (adaptive flattens the distribution; narrow bins in dense areas)\n";
  return 0;
}
