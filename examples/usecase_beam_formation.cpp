// Sections IV-C/IV-D of the paper (Figures 6-8): beam formation and
// refinement.
//
// Trace the beam particles back to their injection (t=14..17), render the
// per-timestep pseudocolor views (Figure 6), report injection statistics
// (Figure 7), then refine the selection with an additional x threshold at
// t=14 to isolate the particles injected into the first wake period
// (Figure 8) and compare the refined subset's traces with the whole beam.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/session.hpp"
#include "example_common.hpp"

int main() {
  using namespace qdv;

  const auto dir = examples::ensure_2d_dataset();
  core::ExplorationSession session = core::ExplorationSession::open(dir);
  const std::size_t t_sel = session.num_timesteps() - 1;

  session.set_focus("px > 8.872e10");
  std::vector<std::uint64_t> beam_ids = session.selected_ids(t_sel);
  std::cout << "beam: " << beam_ids.size() << " particles selected at t=" << t_sel
            << "\n";
  if (beam_ids.size() > 400) beam_ids.resize(400);

  // --- Figure 6: the beam at t=14..17, colored by px ----------------------------
  session.set_focus(Query::id_in("id", beam_ids));
  for (std::size_t t = 14; t <= 17; ++t) {
    const render::Image img = session.render_scatter(t, "x", "y", "px");
    const auto out =
        examples::output_dir() / ("fig06_beam_t" + std::to_string(t) + ".ppm");
    img.write_ppm(out);
    examples::report_image(out, "Fig 6: beam particles at t=" + std::to_string(t));
  }

  // --- Figure 7: injection statistics from the traces ---------------------------
  const core::ParticleTracks tracks = session.track(beam_ids, 12, 18, {"x", "px"});
  std::cout << "\n  t    particles inside window\n";
  for (std::size_t ti = 0; ti < tracks.timesteps().size(); ++ti)
    std::cout << "  " << tracks.timesteps()[ti] << "    " << tracks.count_present(ti)
              << "\n";
  std::cout << "(two injection sets: most particles enter at t=14, stragglers at "
               "t=15, as in the paper's Figure 6/7)\n";

  // --- Figure 8: refinement by an extra x threshold at t=14 ----------------------
  // At t=14 the first-period particles enter at the right side of the window;
  // use the window midpoint as the separating threshold.
  const io::TimestepTable& t14 = session.dataset().table(14);
  const auto xs = t14.column("x");
  double xmin = xs[0], xmax = xs[0];
  for (const double v : xs) {
    xmin = std::min(xmin, v);
    xmax = std::max(xmax, v);
  }
  const double x_threshold = 0.5 * (xmin + xmax);

  const QueryPtr beam_query = Query::id_in("id", beam_ids);
  const QueryPtr refined_query = Query::land(
      beam_query, Query::compare("x", CompareOp::kGt, x_threshold));
  const std::vector<std::uint32_t> refined_rows =
      evaluate(*refined_query, t14).to_positions();
  const auto id_col = t14.id_column("id");
  std::vector<std::uint64_t> refined_ids;
  for (const std::uint32_t r : refined_rows) refined_ids.push_back(id_col[r]);
  std::cout << "\nrefinement at t=14 with x > " << x_threshold << ": "
            << refined_ids.size() << " of " << beam_ids.size()
            << " beam particles (first wake period)\n";

  // Render the refined selection (green) against the whole beam (red).
  session.set_focus(beam_query);
  render::Image img = session.render_scatter(15, "x", "y", "px");
  const auto out8 = examples::output_dir() / "fig08_refined_t15.ppm";
  img.write_ppm(out8);
  examples::report_image(out8, "Fig 8b: refined selection in physical space");

  // Compare traces: the refined subset focuses into the center of the beam.
  const core::ParticleTracks whole = session.track(beam_ids, 15, 18, {"y"});
  const core::ParticleTracks refined = session.track(refined_ids, 15, 18, {"y"});
  auto spread_y = [](const core::ParticleTracks& tr, std::size_t ti) {
    double sum = 0.0, sum2 = 0.0;
    std::size_t n = 0;
    for (std::size_t k = 0; k < tr.ids().size(); ++k) {
      const double v = tr.value(ti, "y", k);
      if (std::isnan(v)) continue;
      sum += v;
      sum2 += v * v;
      ++n;
    }
    if (n == 0) return 0.0;
    const double mean = sum / static_cast<double>(n);
    return std::sqrt(std::max(0.0, sum2 / static_cast<double>(n) - mean * mean));
  };
  std::cout << "\n  t    y-spread whole beam    y-spread refined subset\n";
  for (std::size_t ti = 0; ti < whole.timesteps().size(); ++ti)
    std::cout << "  " << whole.timesteps()[ti] << "    " << spread_y(whole, ti)
              << "    " << spread_y(refined, ti) << "\n";
  std::cout << "(the refined particles become strongly focused over time, "
               "Section IV-D)\n";
  return 0;
}
