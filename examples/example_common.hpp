// Shared helpers for the example applications: dataset caching and output
// directory handling.
//
// Examples generate their synthetic wakefield datasets once into
// `./qdv_example_data/<name>` (override with QDV_DATA_DIR) and write images
// into `./qdv_output` (override with QDV_OUTPUT_DIR).
#pragma once

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "io/dataset.hpp"
#include "sim/wakefield.hpp"

namespace qdv::examples {

inline std::filesystem::path data_root() {
  if (const char* env = std::getenv("QDV_DATA_DIR")) return env;
  return "qdv_example_data";
}

inline std::filesystem::path output_dir() {
  const std::filesystem::path dir = [] {
    if (const char* env = std::getenv("QDV_OUTPUT_DIR")) return std::filesystem::path(env);
    return std::filesystem::path("qdv_output");
  }();
  std::filesystem::create_directories(dir);
  return dir;
}

/// Generate (or reuse) a dataset under data_root()/name.
inline std::filesystem::path ensure_dataset(const std::string& name,
                                            const sim::WakefieldConfig& config) {
  const std::filesystem::path dir = data_root() / name;
  if (std::filesystem::exists(dir / "qdv_manifest.txt")) {
    std::cout << "[data] reusing dataset " << dir << "\n";
    return dir;
  }
  std::cout << "[data] generating dataset " << dir << " ("
            << config.num_timesteps << " timesteps)...\n";
  io::IndexConfig index_config;
  index_config.nbins = 512;
  const std::uint64_t bytes = sim::generate_dataset(config, dir, index_config);
  std::cout << "[data] wrote " << (bytes >> 20) << " MiB\n";
  return dir;
}

/// The paper-like 2D dataset shared by the use-case examples.
inline std::filesystem::path ensure_2d_dataset(std::size_t particles = 100000) {
  return ensure_dataset("wakefield2d", sim::WakefieldConfig::preset_2d(particles));
}

/// The paper-like 3D dataset.
inline std::filesystem::path ensure_3d_dataset(std::size_t particles = 150000) {
  return ensure_dataset("wakefield3d", sim::WakefieldConfig::preset_3d(particles));
}

inline void report_image(const std::filesystem::path& path, const std::string& what) {
  std::cout << "[image] " << what << " -> " << path << "\n";
}

}  // namespace qdv::examples
