// Quickstart: the minimal end-to-end tour of the library.
//
//   1. generate a synthetic laser-wakefield dataset (data + bitmap indices),
//   2. open it and run a compound multivariate range query,
//   3. compute conditional histograms through the FastBit-style engine,
//   4. select a particle beam, trace it through time,
//   5. render a histogram-based parallel coordinates plot to a PPM file.
#include <iostream>

#include "core/session.hpp"
#include "example_common.hpp"

int main() {
  using namespace qdv;

  // 1. Dataset: ~40k particles over 38 timesteps, two trapped beams.
  const auto dir = examples::ensure_dataset(
      "quickstart", sim::WakefieldConfig::preset_2d(40000, /*seed=*/7));

  // 2. Open an exploration session and query the last timestep.
  core::ExplorationSession session = core::ExplorationSession::open(dir);
  const std::size_t t_last = session.num_timesteps() - 1;

  session.set_focus("px > 8.872e10");  // the paper's beam-selection threshold
  std::cout << "focus 'px > 8.872e10' matches " << session.focus_count(t_last)
            << " of " << session.dataset().table(t_last).num_rows()
            << " particles at t=" << t_last << "\n";

  // Compound query combining momentum and position thresholds.
  session.set_focus("px > 8.872e10 && y > 0");
  std::cout << "adding 'y > 0' narrows it to " << session.focus_count(t_last)
            << " particles (upper half of the beam)\n";

  // 3. A conditional 2D histogram of the selection. The focus bitvector is
  // already cached from the count above — the histogram reuses it.
  const Histogram2D h = session.focus().histogram2d(t_last, "x", "px", 64, 64);
  std::cout << "conditional 64x64 histogram: " << h.total() << " records in "
            << h.nonempty_bins() << " non-empty bins\n";

  // 4. Trace the selected particles back through time.
  session.set_focus("px > 8.872e10");
  std::vector<std::uint64_t> ids = session.selected_ids(t_last);
  if (ids.size() > 100) ids.resize(100);
  const core::ParticleTracks tracks = session.track(ids, 10, t_last, {"x", "px"});
  for (const std::size_t ti : {0u, 8u, 17u, 27u}) {
    if (ti >= tracks.timesteps().size()) continue;
    std::cout << "  t=" << tracks.timesteps()[ti] << ": " << tracks.count_present(ti)
              << "/" << ids.size() << " tracked particles present, mean px = "
              << tracks.mean(ti, "px") << "\n";
  }

  // 5. Render the focus+context parallel coordinates view.
  core::PcViewOptions options;
  options.context_bins = 80;
  options.focus_bins = 256;
  options.focus_color = render::colors::kGreen;
  const render::Image img =
      session.render_parallel_coordinates(t_last, {"x", "y", "px", "py", "xrel"}, options);
  const auto out = examples::output_dir() / "quickstart_pc.ppm";
  img.write_ppm(out);
  examples::report_image(out, "focus+context parallel coordinates");

  // 6. The count, histogram, and render above all drove the same focus
  // selection — the engine evaluated each query once and served the rest
  // from its bitvector cache.
  const core::EngineStats stats = session.engine().stats();
  std::cout << "engine cache: " << stats.hits << " hits, " << stats.misses
            << " misses (" << static_cast<int>(stats.hit_rate() * 100.0)
            << "% hit rate), " << stats.entries << " cached bitvectors\n";
  return 0;
}
