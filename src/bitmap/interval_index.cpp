#include "bitmap/interval_index.hpp"

#include <algorithm>

namespace qdv {

IntervalEncodedIndex IntervalEncodedIndex::build(std::span<const double> values,
                                                 const Bins& bins) {
  IntervalEncodedIndex index;
  index.bins_ = bins;
  index.nrows_ = values.size();
  const std::size_t n = bins.num_bins();
  index.window_ = (n + 1) / 2;
  const detail::BinnedRows rows = detail::bin_rows(values, bins);
  const auto bin_bitmap = [&](std::size_t b) {
    const std::span<const std::uint32_t> slice(
        rows.grouped.data() + rows.offsets[b], rows.offsets[b + 1] - rows.offsets[b]);
    return BitVector::from_positions(slice, index.nrows_);
  };
  // I_0 = bins [0, m - 1]; I_{k+1} = (I_k \ bin_k) | bin_{k+m} — two WAH ops
  // per window instead of re-merging every window from scratch.
  const std::size_t nwindows = n >= index.window_ ? n - index.window_ + 1 : 1;
  index.windows_.reserve(nwindows);
  {
    std::vector<std::uint32_t> merged;
    for (std::size_t b = 0; b < index.window_ && b < n; ++b)
      merged.insert(merged.end(),
                    rows.grouped.begin() + static_cast<std::ptrdiff_t>(rows.offsets[b]),
                    rows.grouped.begin() + static_cast<std::ptrdiff_t>(rows.offsets[b + 1]));
    std::sort(merged.begin(), merged.end());
    index.windows_.push_back(BitVector::from_positions(merged, index.nrows_));
  }
  for (std::size_t k = 1; k < nwindows; ++k) {
    const BitVector dropped = bin_bitmap(k - 1);
    const BitVector added = bin_bitmap(k - 1 + index.window_);
    index.windows_.push_back((index.windows_.back() & ~dropped) | added);
  }
  index.outside_ = BitVector::from_positions(rows.outside, index.nrows_);
  return index;
}

BitVector IntervalEncodedIndex::suffix(std::ptrdiff_t first) const {
  const auto n = static_cast<std::ptrdiff_t>(bins_.num_bins());
  const auto m = static_cast<std::ptrdiff_t>(window_);
  if (first >= n) return BitVector::zeros(nrows_);
  if (first <= 0) return BitVector::ones(nrows_) & ~outside_;
  const std::ptrdiff_t last_window = n - m;  // largest stored k
  if (first <= last_window) {
    // [first, n-1] = I_first | I_{n-m}: the two windows overlap or abut
    // because the window spans at least half the bins.
    return windows_[static_cast<std::size_t>(first)] |
           windows_[static_cast<std::size_t>(last_window)];
  }
  // Short suffix inside the tail window: remove the leading bins of I_{n-m}
  // via the window ending just before @p first.
  return windows_[static_cast<std::size_t>(last_window)] &
         ~windows_[static_cast<std::size_t>(first - m)];
}

ApproxAnswer IntervalEncodedIndex::evaluate_approx(const Interval& iv) const {
  const detail::BinCoverage cov = detail::classify_bins(bins_, iv);
  ApproxAnswer out;
  if (cov.full_hi >= cov.full_lo) {
    out.hits = suffix(cov.full_lo) & ~suffix(cov.full_hi + 1);
  } else {
    out.hits = BitVector::zeros(nrows_);
  }
  std::vector<BitVector> partial_bitmaps;
  partial_bitmaps.reserve(cov.partial.size());
  for (const std::size_t b : cov.partial) {
    const auto pb = static_cast<std::ptrdiff_t>(b);
    partial_bitmaps.push_back(suffix(pb) & ~suffix(pb + 1));
  }
  std::vector<const BitVector*> ops;
  for (const BitVector& b : partial_bitmaps) ops.push_back(&b);
  if (outside_.count() > 0) ops.push_back(&outside_);
  out.candidates = or_many(std::move(ops), nrows_);
  return out;
}

BitVector IntervalEncodedIndex::evaluate(const Interval& iv,
                                         std::span<const double> values) const {
  return detail::resolve_candidates(iv, evaluate_approx(iv), values, nrows_);
}

std::size_t IntervalEncodedIndex::memory_bytes() const {
  std::size_t total = outside_.memory_bytes() +
                      bins_.edges().capacity() * sizeof(double);
  for (const BitVector& b : windows_) total += b.memory_bytes();
  return total;
}

}  // namespace qdv
