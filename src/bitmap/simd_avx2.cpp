// AVX2 level of the SIMD dispatch layer. Compiled with -mavx2 (per-file
// flag set in CMakeLists.txt); when the compiler lacks that target the TU
// degrades to a nullptr accessor and runtime dispatch skips the level.
//
// Kernels:
//  - position extraction: per 31-bit WAH literal group, branchless byte-LUT
//    expansion (kBytePositions + cvtepu8 widen + vector store) of all four
//    bytes — the sparse inline gate in kernels.cpp keeps short literal runs
//    out of this TU, and for the runs that do arrive a popcount gate's
//    mispredicts cost more than emitting empty bytes. 64-bit dense words
//    keep a small popcount gate (sparse words are common inside dense
//    blocks and decode faster bit-by-bit).
//  - locate: 4-lane uniform locate (cvttpd + clamp + edge settle; affine
//    bin sets synthesize the verify edges in-register, others gather them)
//    and 4-lane branchless halving search over the cached edges, exact
//    lane-wise twins of Bins::Locator (NaN fails the ordered compares and
//    routes to -1 exactly like the scalar path).
//  - histogram accumulate: gathered values -> vector locate -> bin indices
//    spilled to a lane buffer and accumulated scalar per lane, which is
//    conflict-safe by construction (no scatter) and exact for duplicate
//    bins within a vector. Batches whose rows are very sparse (average
//    spacing past a cache line) stay scalar: the gathers are latency-bound
//    there and vector setup cannot win.
#include "simd_common.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace qdv::simd {

namespace {

/// Compress a 4x64-bit double compare mask into 4x32-bit integer lanes.
inline __m128i mask_pd_to_epi32(__m256d m) {
  const __m256i perm = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  return _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_castpd_si256(m), perm));
}

/// 4-lane twin of the uniform branch of Bins::Locator::operator(). When
/// kAffine, the verify edges are synthesized as bin * width + lo (separate
/// mul and add, the exact rounding the affine detection in bins.cpp pinned
/// down) instead of gathered — the settle comparisons see bit-identical
/// edge values either way, so the result matches the scalar path exactly.
template <bool kAffine>
inline __m128i locate4_uniform(const LocatorView& L, __m256d v) {
  const __m256d lo = _mm256_set1_pd(L.lo);
  const __m128i valid = mask_pd_to_epi32(
      _mm256_and_pd(_mm256_cmp_pd(v, lo, _CMP_GE_OQ),
                    _mm256_cmp_pd(v, _mm256_set1_pd(L.hi), _CMP_LE_OQ)));
  const __m256d t =
      _mm256_mul_pd(_mm256_sub_pd(v, lo), _mm256_set1_pd(L.inv_width));
  const __m128i last4 = _mm_set1_epi32(static_cast<int>(L.last));
  __m128i bin = _mm_min_epi32(_mm256_cvttpd_epi32(t), last4);
  // Valid lanes satisfy 0 <= bin <= last; route invalid lanes (NaN converts
  // to INT_MIN) to index 0 so the edge gathers stay in bounds.
  const __m128i bing = _mm_blendv_epi8(_mm_setzero_si128(), bin, valid);
  const __m128i bing1 = _mm_add_epi32(bing, _mm_set1_epi32(1));
  __m256d e0, e1;
  if constexpr (kAffine) {
    const __m256d w = _mm256_set1_pd(L.width);
    e0 = _mm256_add_pd(_mm256_mul_pd(_mm256_cvtepi32_pd(bing), w), lo);
    // e1 at bing == last is never used (the inc mask requires bing < last),
    // so synthesizing past the checked affine range is harmless.
    e1 = _mm256_add_pd(_mm256_mul_pd(_mm256_cvtepi32_pd(bing1), w), lo);
  } else {
    e0 = _mm256_i32gather_pd(L.edges, bing, 8);
    // bing + 1 <= last + 1 = nedges - 1: always a readable edge.
    e1 = _mm256_i32gather_pd(L.edges, bing1, 8);
  }
  const __m128i dec = mask_pd_to_epi32(_mm256_cmp_pd(v, e0, _CMP_LT_OQ));
  __m128i inc = mask_pd_to_epi32(_mm256_cmp_pd(v, e1, _CMP_GE_OQ));
  inc = _mm_andnot_si128(dec, _mm_and_si128(inc, _mm_cmplt_epi32(bing, last4)));
  // Mask lanes hold -1: adding dec decrements, subtracting inc increments.
  bin = _mm_sub_epi32(_mm_add_epi32(bing, dec), inc);
  return _mm_blendv_epi8(_mm_set1_epi32(-1), bin, valid);
}

/// 4-lane twin of the halving-search branch: every lane takes the same
/// fixed halving sequence, so the result matches the scalar search exactly.
inline __m128i locate4_search(const LocatorView& L, __m256d v) {
  const __m128i valid = mask_pd_to_epi32(
      _mm256_and_pd(_mm256_cmp_pd(v, _mm256_set1_pd(L.lo), _CMP_GE_OQ),
                    _mm256_cmp_pd(v, _mm256_set1_pd(L.hi), _CMP_LE_OQ)));
  __m128i idx = _mm_setzero_si128();
  std::size_t n = L.nedges;
  while (n > 1) {
    const std::size_t half = n / 2;
    const __m128i halves = _mm_set1_epi32(static_cast<int>(half));
    // idx + half < nedges holds for every lane (same invariant as scalar).
    const __m256d e = _mm256_i32gather_pd(L.edges, _mm_add_epi32(idx, halves), 8);
    const __m128i le = mask_pd_to_epi32(_mm256_cmp_pd(e, v, _CMP_LE_OQ));
    idx = _mm_add_epi32(idx, _mm_and_si128(halves, le));
    n -= half;
  }
  idx = _mm_min_epi32(idx, _mm_set1_epi32(static_cast<int>(L.last)));
  return _mm_blendv_epi8(_mm_set1_epi32(-1), idx, valid);
}

inline __m128i locate4(const LocatorView& L, __m256d v) {
  if (!L.uniform) return locate4_search(L, v);
  return L.affine ? locate4_uniform<true>(L, v) : locate4_uniform<false>(L, v);
}

/// Below this popcount a 64-bit dense word decodes faster bit-by-bit than
/// through the byte LUT (8 shuffle+store steps regardless of content).
constexpr int kDenseWordBits = 4;

/// Nearly-contiguous row batches (mean spacing under ~3 doubles) stay
/// scalar in this TU: four-lane AVX2 gathers move one element per cycle
/// while the dense regime streams cache-resident lines, so the scalar
/// locate loop wins. AVX-512 (8 lanes + compressed index replay) still
/// profits there, so the gate is AVX2-local. Sparse batches are gated by
/// simd::rows_are_sparse (header; re-checked here for direct Ops users).
inline bool rows_are_dense_avx2(const std::uint32_t* rows, std::size_t n) {
  return static_cast<std::size_t>(rows[n - 1] - rows[0]) < n * 3;
}

inline std::size_t emit_byte(std::uint32_t m, std::uint32_t base,
                             std::uint32_t* out) {
  const __m256i pos = _mm256_cvtepu8_epi32(
      _mm_cvtsi64_si128(static_cast<long long>(kBytePositions[m])));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_add_epi32(pos, _mm256_set1_epi32(
                                                static_cast<int>(base))));
  return static_cast<std::size_t>(std::popcount(m));
}

std::size_t positions_from_words_avx2(const std::uint64_t* words,
                                      std::size_t nwords, std::uint64_t base,
                                      std::uint32_t* out) {
  std::size_t n = 0;
  for (std::size_t w = 0; w < nwords; ++w) {
    std::uint64_t bits = words[w];
    if (bits == 0) continue;
    const auto wbase = static_cast<std::uint32_t>(base + 64 * w);
    if (std::popcount(bits) <= kDenseWordBits) {
      while (bits) {
        out[n++] = wbase + static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
      }
      continue;
    }
    for (unsigned k = 0; k < 8; ++k)
      n += emit_byte(static_cast<std::uint32_t>((bits >> (8 * k)) & 0xFFu),
                     wbase + 8 * k, out + n);
  }
  return n;
}

std::size_t positions_from_groups_avx2(const std::uint32_t* groups,
                                       std::size_t ngroups, std::uint64_t base,
                                       std::uint32_t* out) {
  std::size_t n = 0;
  for (std::size_t g = 0; g < ngroups; ++g) {
    const std::uint32_t bits = groups[g] & 0x7FFFFFFFu;
    if (bits == 0) continue;
    const auto gbase = static_cast<std::uint32_t>(base + 31 * g);
    // No per-group density gate here: short literal runs (the sparse
    // regime where ctz would win) are decoded inline by the dispatcher
    // (kInlineRunGroups) and never reach this kernel, so a gate would only
    // add mispredicted branches to the dense regime.
    // All four bytes emitted unconditionally: an empty byte stores eight
    // dead lanes past the live prefix (covered by kPositionSlack) and
    // advances by zero, which is cheaper than a mispredicted skip.
    n += emit_byte(bits & 0xFFu, gbase, out + n);
    n += emit_byte((bits >> 8) & 0xFFu, gbase + 8, out + n);
    n += emit_byte((bits >> 16) & 0xFFu, gbase + 16, out + n);
    n += emit_byte(bits >> 24, gbase + 24, out + n);
  }
  return n;
}

void hist1d_rows_avx2(const std::uint32_t* rows, std::size_t n,
                      const double* values, const LocatorView& L,
                      std::uint64_t* counts) {
  if (L.empty || n < kMinVectorRows || rows_are_sparse(rows, n) ||
      rows_are_dense_avx2(rows, n)) {
    hist1d_rows_scalar(rows, n, values, L, counts);
    return;
  }
  alignas(16) std::int32_t bins[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Prefetch every row of the vector four iterations ahead: at low
    // selectivity each gathered row is its own cache line, so skipping
    // lanes would leave the gather waiting on unprefetched DRAM misses.
    if (i + 20 <= n)
      for (int l = 0; l < 4; ++l)
        _mm_prefetch(reinterpret_cast<const char*>(values + rows[i + 16 + l]),
                     _MM_HINT_T0);
    const __m128i r =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + i));
    const __m256d v = _mm256_i32gather_pd(values, r, 8);
    _mm_store_si128(reinterpret_cast<__m128i*>(bins), locate4(L, v));
    for (int l = 0; l < 4; ++l)
      if (bins[l] >= 0) ++counts[static_cast<std::size_t>(bins[l])];
  }
  hist1d_rows_scalar(rows + i, n - i, values, L, counts);
}

void hist2d_rows_avx2(const std::uint32_t* rows, std::size_t n,
                      const double* xs, const double* ys,
                      const LocatorView& xloc, const LocatorView& yloc,
                      std::size_t ny, std::uint64_t* counts) {
  if (xloc.empty || yloc.empty || n < kMinVectorRows ||
      rows_are_sparse(rows, n)) {
    hist2d_rows_scalar(rows, n, xs, ys, xloc, yloc, ny, counts);
    return;
  }
  alignas(16) std::int32_t bx[4];
  alignas(16) std::int32_t by[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 20 <= n)
      for (int l = 0; l < 4; ++l) {
        _mm_prefetch(reinterpret_cast<const char*>(xs + rows[i + 16 + l]),
                     _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(ys + rows[i + 16 + l]),
                     _MM_HINT_T0);
      }
    const __m128i r =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + i));
    _mm_store_si128(reinterpret_cast<__m128i*>(bx),
                    locate4(xloc, _mm256_i32gather_pd(xs, r, 8)));
    _mm_store_si128(reinterpret_cast<__m128i*>(by),
                    locate4(yloc, _mm256_i32gather_pd(ys, r, 8)));
    for (int l = 0; l < 4; ++l)
      if (bx[l] >= 0 && by[l] >= 0)
        ++counts[static_cast<std::size_t>(bx[l]) * ny +
                 static_cast<std::size_t>(by[l])];
  }
  hist2d_rows_scalar(rows + i, n - i, xs, ys, xloc, yloc, ny, counts);
}

void hist1d_dense_avx2(const double* values, std::size_t n,
                       const LocatorView& L, std::uint64_t* counts) {
  if (L.empty || n < kMinVectorRows) {
    hist1d_dense_scalar(values, n, L, counts);
    return;
  }
  alignas(16) std::int32_t bins[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_store_si128(reinterpret_cast<__m128i*>(bins),
                    locate4(L, _mm256_loadu_pd(values + i)));
    for (int l = 0; l < 4; ++l)
      if (bins[l] >= 0) ++counts[static_cast<std::size_t>(bins[l])];
  }
  hist1d_dense_scalar(values + i, n - i, L, counts);
}

void hist2d_dense_avx2(const double* xs, const double* ys, std::size_t n,
                       const LocatorView& xloc, const LocatorView& yloc,
                       std::size_t ny, std::uint64_t* counts) {
  if (xloc.empty || yloc.empty || n < kMinVectorRows) {
    hist2d_dense_scalar(xs, ys, n, xloc, yloc, ny, counts);
    return;
  }
  alignas(16) std::int32_t bx[4];
  alignas(16) std::int32_t by[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_store_si128(reinterpret_cast<__m128i*>(bx),
                    locate4(xloc, _mm256_loadu_pd(xs + i)));
    _mm_store_si128(reinterpret_cast<__m128i*>(by),
                    locate4(yloc, _mm256_loadu_pd(ys + i)));
    for (int l = 0; l < 4; ++l)
      if (bx[l] >= 0 && by[l] >= 0)
        ++counts[static_cast<std::size_t>(bx[l]) * ny +
                 static_cast<std::size_t>(by[l])];
  }
  hist2d_dense_scalar(xs + i, ys + i, n - i, xloc, yloc, ny, counts);
}

constexpr Ops kAvx2Ops = {
    Isa::kAvx2,
    &positions_from_words_avx2,
    &positions_from_groups_avx2,
    &hist1d_rows_avx2,
    &hist2d_rows_avx2,
    &hist1d_dense_avx2,
    &hist2d_dense_avx2,
};

}  // namespace

namespace detail {
const Ops* avx2_ops() { return &kAvx2Ops; }
}  // namespace detail

}  // namespace qdv::simd

#else  // !defined(__AVX2__)

namespace qdv::simd::detail {
const Ops* avx2_ops() { return nullptr; }
}  // namespace qdv::simd::detail

#endif
