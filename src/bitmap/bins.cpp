#include "bitmap/bins.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qdv {

Bins::Bins(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.size() < 2) throw std::invalid_argument("Bins: need at least 2 edges");
  if (!std::is_sorted(edges_.begin(), edges_.end()))
    throw std::invalid_argument("Bins: edges must be sorted");
  // Detect uniform spacing for the O(1) locate path. An infinite span (bin
  // sets whose outer edges are +-inf, e.g. quantile bins over data with
  // infinities) must take the search path: w = inf would make the tolerance
  // below infinite (accepting everything) and (value - lo) * inv_width NaN
  // for infinite values that still pass the [lo, hi] containment test.
  const double w = (edges_.back() - edges_.front()) / static_cast<double>(num_bins());
  uniform_ = std::isfinite(w) && w > 0.0;
  for (std::size_t i = 0; uniform_ && i + 1 < edges_.size(); ++i) {
    const double actual = edges_[i + 1] - edges_[i];
    if (std::abs(actual - w) > 1e-9 * std::max(1.0, std::abs(w))) uniform_ = false;
  }
  if (uniform_) {
    inv_width_ = 1.0 / w;
    width_ = w;
    // Affine detection for the vector locate: when every edge the uniform
    // verify step can read (k <= num_bins(); the final edge is never read —
    // e0's index is at most `last`, and e1 at `last + 1` only matters when
    // bin < last) equals lo + k*w under separate mul-then-add rounding, the
    // SIMD kernels compute their verify edges in-register instead of
    // gathering them. The volatile intermediate pins that rounding (no FMA
    // contraction), matching the vector mul/add instruction sequence.
    affine_ = true;
    for (std::size_t k = 0; affine_ && k + 1 < edges_.size(); ++k) {
      volatile const double m = w * static_cast<double>(k);
      if (m + edges_.front() != edges_[k]) affine_ = false;
    }
  }
}

std::ptrdiff_t Bins::locate(double value) const {
  // The negated comparison also rejects NaN (which would otherwise reach the
  // float->integer cast below, undefined behavior).
  if (edges_.empty() || !(value >= edges_.front() && value <= edges_.back()))
    return -1;
  const std::ptrdiff_t last = static_cast<std::ptrdiff_t>(num_bins()) - 1;
  if (uniform_) {
    auto bin = std::min(
        static_cast<std::ptrdiff_t>((value - edges_.front()) * inv_width_), last);
    // Settle one-ulp disagreements between the arithmetic and the stored
    // edges: index queries compare against the edges, so locate must too.
    if (value < edges_[static_cast<std::size_t>(bin)]) {
      --bin;
    } else if (bin < last && value >= edges_[static_cast<std::size_t>(bin) + 1]) {
      ++bin;
    }
    return bin;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  const auto bin = static_cast<std::ptrdiff_t>(it - edges_.begin()) - 1;
  return std::min(bin, last);
}

Bins make_uniform_bins(double lo, double hi, std::size_t nbins) {
  if (nbins == 0 || !(hi > lo))
    throw std::invalid_argument("make_uniform_bins: empty range");
  std::vector<double> edges(nbins + 1);
  const double w = (hi - lo) / static_cast<double>(nbins);
  for (std::size_t i = 0; i <= nbins; ++i)
    edges[i] = lo + w * static_cast<double>(i);
  edges.back() = hi;
  return Bins(std::move(edges));
}

Bins make_quantile_bins(std::span<const double> values, std::size_t nbins) {
  if (values.empty() || nbins == 0)
    throw std::invalid_argument("make_quantile_bins: empty input");
  // NaN rows never land in a bin (the locate contract), so they must not
  // shape the bin edges either — and sorting NaN is undefined behavior.
  std::vector<double> sorted;
  sorted.reserve(values.size());
  for (const double v : values)
    if (!std::isnan(v)) sorted.push_back(v);
  if (sorted.empty())
    throw std::invalid_argument("make_quantile_bins: all-NaN input");
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> edges;
  edges.reserve(nbins + 1);
  edges.push_back(sorted.front());
  for (std::size_t i = 1; i < nbins; ++i) {
    const std::size_t rank = i * sorted.size() / nbins;
    const double e = sorted[rank];
    if (e > edges.back()) edges.push_back(e);
  }
  if (sorted.back() > edges.back()) edges.push_back(sorted.back());
  if (edges.size() < 2) edges.push_back(edges.back() + 1.0);  // constant column
  return Bins(std::move(edges));
}

Bins make_precision_bins(double lo, double hi, int digits, std::size_t max_bins) {
  if (!(hi > lo) || digits < 1 || max_bins < 1)
    throw std::invalid_argument("make_precision_bins: bad arguments");
  // Resolution: the decade of the span, refined by (digits - 1) decimal
  // places; coarsened by 10x until the bin count fits.
  double step = std::pow(10.0, std::floor(std::log10(hi - lo)) -
                                   static_cast<double>(digits - 1));
  auto count_for = [&](double s) {
    return static_cast<std::size_t>(std::ceil(hi / s) - std::floor(lo / s));
  };
  while (count_for(step) > max_bins) step *= 10.0;
  const auto first = static_cast<long long>(std::floor(lo / step));
  const auto last = static_cast<long long>(std::ceil(hi / step));
  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(last - first) + 1);
  for (long long k = first; k <= last; ++k)
    edges.push_back(static_cast<double>(k) * step);
  return Bins(std::move(edges));
}

}  // namespace qdv
