// Internal scalar bodies shared by the per-ISA translation units of the
// SIMD dispatch layer (simd_scalar.cpp / simd_avx2.cpp / simd_avx512.cpp).
//
// Everything here is `static`: each TU is compiled with different target
// flags, and these helpers double as the tail/sparse paths of the vector
// levels, so they must NOT be merged across TUs by the linker — an
// AVX2-codegen copy picked for the scalar table would crash a non-AVX2
// host. Internal linkage keeps every TU self-contained.
//
// The locate body is the exact twin of Bins::Locator::operator() (and the
// differential tests hold all levels to Bins::locate); any change there
// must be mirrored here.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "bitmap/simd.hpp"

namespace qdv::simd {

#if defined(__GNUC__) || defined(__clang__)
#define QDV_SIMD_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define QDV_SIMD_PREFETCH(addr) ((void)0)
#endif

/// Prefetch distance (rows) for the gather kernels: far enough to cover
/// DRAM latency, near enough to stay inside one batch.
inline constexpr std::size_t kGatherPrefetch = 16;

static inline std::int64_t locate_view(const LocatorView& L, double value) {
  // The negated comparison also rejects NaN (which would otherwise reach
  // the float->integer cast, undefined behavior).
  if (L.empty || !(value >= L.lo && value <= L.hi)) return -1;
  if (L.uniform) {
    auto bin = static_cast<std::int64_t>((value - L.lo) * L.inv_width);
    bin = bin > L.last ? L.last : bin;
    if (value < L.edges[bin]) {
      --bin;
    } else if (bin < L.last && value >= L.edges[bin + 1]) {
      ++bin;
    }
    return bin;
  }
  std::size_t lo = 0;
  std::size_t n = L.nedges;
  while (n > 1) {
    const std::size_t half = n / 2;
    lo += L.edges[lo + half] <= value ? half : 0;
    n -= half;
  }
  const auto bin = static_cast<std::int64_t>(lo);
  return bin < L.last ? bin : L.last;
}

static inline std::size_t positions_from_words_scalar(
    const std::uint64_t* words, std::size_t nwords, std::uint64_t base,
    std::uint32_t* out) {
  std::size_t n = 0;
  for (std::size_t w = 0; w < nwords; ++w) {
    std::uint64_t bits = words[w];
    const auto wbase = static_cast<std::uint32_t>(base + 64 * w);
    while (bits) {
      out[n++] = wbase + static_cast<std::uint32_t>(std::countr_zero(bits));
      bits &= bits - 1;
    }
  }
  return n;
}

static inline std::size_t positions_from_groups_scalar(
    const std::uint32_t* groups, std::size_t ngroups, std::uint64_t base,
    std::uint32_t* out) {
  std::size_t n = 0;
  for (std::size_t g = 0; g < ngroups; ++g) {
    std::uint32_t bits = groups[g] & 0x7FFFFFFFu;
    const auto gbase = static_cast<std::uint32_t>(base + 31 * g);
    while (bits) {
      out[n++] = gbase + static_cast<std::uint32_t>(std::countr_zero(bits));
      bits &= bits - 1;
    }
  }
  return n;
}

static inline void hist1d_rows_scalar(const std::uint32_t* rows, std::size_t n,
                                      const double* values,
                                      const LocatorView& loc,
                                      std::uint64_t* counts) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kGatherPrefetch < n)
      QDV_SIMD_PREFETCH(values + rows[i + kGatherPrefetch]);
    const std::int64_t b = locate_view(loc, values[rows[i]]);
    if (b >= 0) ++counts[static_cast<std::size_t>(b)];
  }
}

static inline void hist2d_rows_scalar(const std::uint32_t* rows, std::size_t n,
                                      const double* xs, const double* ys,
                                      const LocatorView& xloc,
                                      const LocatorView& yloc, std::size_t ny,
                                      std::uint64_t* counts) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kGatherPrefetch < n) {
      QDV_SIMD_PREFETCH(xs + rows[i + kGatherPrefetch]);
      QDV_SIMD_PREFETCH(ys + rows[i + kGatherPrefetch]);
    }
    const std::int64_t bx = locate_view(xloc, xs[rows[i]]);
    const std::int64_t by = locate_view(yloc, ys[rows[i]]);
    if (bx >= 0 && by >= 0)
      ++counts[static_cast<std::size_t>(bx) * ny + static_cast<std::size_t>(by)];
  }
}

static inline void hist1d_dense_scalar(const double* values, std::size_t n,
                                       const LocatorView& loc,
                                       std::uint64_t* counts) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t b = locate_view(loc, values[i]);
    if (b >= 0) ++counts[static_cast<std::size_t>(b)];
  }
}

static inline void hist2d_dense_scalar(const double* xs, const double* ys,
                                       std::size_t n, const LocatorView& xloc,
                                       const LocatorView& yloc, std::size_t ny,
                                       std::uint64_t* counts) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t bx = locate_view(xloc, xs[i]);
    const std::int64_t by = locate_view(yloc, ys[i]);
    if (bx >= 0 && by >= 0)
      ++counts[static_cast<std::size_t>(bx) * ny + static_cast<std::size_t>(by)];
  }
}

/// Byte-decode table for the AVX2 position kernels: entry m packs the bit
/// positions (0-7) of the set bits of byte m into successive output bytes.
/// Internal linkage (const at namespace scope), so each TU owns its copy.
constexpr std::array<std::uint64_t, 256> kBytePositions = [] {
  std::array<std::uint64_t, 256> table{};
  for (unsigned m = 0; m < 256; ++m) {
    std::uint64_t packed = 0;
    unsigned count = 0;
    for (unsigned b = 0; b < 8; ++b)
      if ((m >> b) & 1u) packed |= static_cast<std::uint64_t>(b) << (8 * count++);
    table[m] = packed;
  }
  return table;
}();

}  // namespace qdv::simd
