// ISA-agnostic core of the SIMD dispatch layer: CPUID probing, the
// QDV_FORCE_ISA override, active-level state, and the dispatch counters.
// Deliberately compiled WITHOUT target flags — everything here must run on
// the weakest supported host.
#include "bitmap/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qdv::simd {

namespace {

bool cpu_supports(Isa isa) {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Isa::kAvx512:
      // Must match the target flags simd_avx512.cpp is built with.
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl");
  }
  return false;
#else
  return isa == Isa::kScalar;
#endif
}

const Ops* compiled_ops(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return detail::scalar_ops();
    case Isa::kAvx2:
      return detail::avx2_ops();
    case Isa::kAvx512:
      return detail::avx512_ops();
  }
  return nullptr;
}

/// Best usable level at or below @p isa.
Isa clamp_supported(Isa isa) {
  for (int level = static_cast<int>(isa); level > 0; --level)
    if (supported(static_cast<Isa>(level))) return static_cast<Isa>(level);
  return Isa::kScalar;
}

/// Active level; kUnset until the first active() call resolves the CPUID
/// probe and the QDV_FORCE_ISA override.
constexpr int kUnset = -1;
std::atomic<int> g_active{kUnset};

struct CounterPair {
  std::atomic<std::uint64_t> scalar{0};
  std::atomic<std::uint64_t> vector{0};

  void count(bool v) {
    (v ? vector : scalar).fetch_add(1, std::memory_order_relaxed);
  }
  KernelDispatch snapshot() const {
    return {scalar.load(std::memory_order_relaxed),
            vector.load(std::memory_order_relaxed)};
  }
  void reset() {
    scalar.store(0, std::memory_order_relaxed);
    vector.store(0, std::memory_order_relaxed);
  }
};

CounterPair g_positions_calls;
CounterPair g_hist1d_calls;
CounterPair g_hist2d_calls;

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool supported(Isa isa) {
  return compiled_ops(isa) != nullptr && cpu_supports(isa);
}

Isa best_supported() {
  static const Isa best = clamp_supported(Isa::kAvx512);
  return best;
}

Isa parse_isa(const char* text, Isa fallback) {
  if (text == nullptr) return fallback;
  if (std::strcmp(text, "scalar") == 0) return Isa::kScalar;
  if (std::strcmp(text, "avx2") == 0) return Isa::kAvx2;
  if (std::strcmp(text, "avx512") == 0) return Isa::kAvx512;
  return fallback;
}

Isa active() {
  int level = g_active.load(std::memory_order_acquire);
  if (level == kUnset) {
    Isa resolved = best_supported();
    if (const char* env = std::getenv("QDV_FORCE_ISA"))
      resolved = clamp_supported(parse_isa(env, resolved));
    int expected = kUnset;
    g_active.compare_exchange_strong(expected, static_cast<int>(resolved),
                                     std::memory_order_acq_rel);
    level = g_active.load(std::memory_order_acquire);
  }
  return static_cast<Isa>(level);
}

Isa force(Isa isa) {
  const Isa resolved = clamp_supported(isa);
  g_active.store(static_cast<int>(resolved), std::memory_order_release);
  return resolved;
}

const Ops& ops() { return ops_for(active()); }

const Ops& ops_for(Isa isa) {
  const Ops* table = compiled_ops(isa);
  if (table == nullptr) table = detail::scalar_ops();
  return *table;
}

DispatchCounts dispatch_counts() {
  return {g_positions_calls.snapshot(), g_hist1d_calls.snapshot(),
          g_hist2d_calls.snapshot()};
}

void reset_dispatch_counts() {
  g_positions_calls.reset();
  g_hist1d_calls.reset();
  g_hist2d_calls.reset();
}

void count_positions_call(bool vector) { g_positions_calls.count(vector); }
void count_hist1d_call(bool vector) { g_hist1d_calls.count(vector); }
void count_hist2d_call(bool vector) { g_hist2d_calls.count(vector); }

}  // namespace qdv::simd
