#include "bitmap/index_segments.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

namespace qdv {

using detail::read_unaligned;

SegmentedBitmapIndex SegmentedBitmapIndex::open(
    std::span<const std::byte> image, std::shared_ptr<const void> keeper) {
  SegmentedBitmapIndex index;
  index.image_ = image;
  index.keeper_ = std::move(keeper);
  std::size_t cursor = 0;
  index.nrows_ = read_unaligned<std::uint64_t>(image, cursor);
  cursor += 8;
  const auto nedges = read_unaligned<std::uint64_t>(image, cursor);
  cursor += 8;
  std::vector<double> edges(static_cast<std::size_t>(nedges));
  if (cursor + nedges * sizeof(double) > image.size())
    throw std::runtime_error("SegmentedBitmapIndex: truncated index image");
  std::memcpy(edges.data(), image.data() + cursor,
              static_cast<std::size_t>(nedges) * sizeof(double));
  cursor += static_cast<std::size_t>(nedges) * sizeof(double);
  index.bins_ = Bins(std::move(edges));
  const auto nbitmaps = read_unaligned<std::uint64_t>(image, cursor);
  cursor += 8;
  // The directory: walk the record headers only, never the payloads.
  index.offsets_.reserve(static_cast<std::size_t>(nbitmaps) + 2);
  index.offsets_.push_back(cursor);
  for (std::uint64_t b = 0; b <= nbitmaps; ++b) {  // bins, then outside
    cursor += BitVector::serialized_size(image, cursor);
    if (cursor > image.size())
      throw std::runtime_error("SegmentedBitmapIndex: truncated index image");
    index.offsets_.push_back(cursor);
  }
  index.outside_empty_ =
      index.decode_segment(index.outside_segment()).count() == 0;
  return index;
}

BitVector SegmentedBitmapIndex::decode_segment(std::size_t s) const {
  std::size_t cursor = static_cast<std::size_t>(offsets_[s]);
  return BitVector::load(image_, cursor);
}

ApproxAnswer SegmentedBitmapIndex::evaluate_approx(
    const Interval& iv, const SegmentFetch& fetch) const {
  const detail::BinCoverage cov = detail::classify_bins(bins_, iv);
  std::vector<std::size_t> full_segments, candidate_segments;
  for (std::ptrdiff_t b = cov.full_lo; b <= cov.full_hi; ++b)
    full_segments.push_back(static_cast<std::size_t>(b));
  candidate_segments = cov.partial;
  if (!outside_empty_) candidate_segments.push_back(outside_segment());

  // Pins (fetch path) or local decodes (direct path) backing the pointers
  // handed to or_many.
  std::vector<std::shared_ptr<const BitVector>> pins;
  std::vector<BitVector> decoded;
  decoded.reserve(full_segments.size() + candidate_segments.size());
  const auto resolve = [&](std::size_t s) -> const BitVector* {
    if (fetch) {
      pins.push_back(fetch(s));
      return pins.back().get();
    }
    decoded.push_back(decode_segment(s));
    return &decoded.back();
  };

  ApproxAnswer out;
  std::vector<const BitVector*> operands;
  operands.reserve(full_segments.size());
  for (const std::size_t s : full_segments) operands.push_back(resolve(s));
  out.hits = or_many(std::move(operands), nrows_);
  operands.clear();
  operands.reserve(candidate_segments.size());
  for (const std::size_t s : candidate_segments) operands.push_back(resolve(s));
  out.candidates = or_many(std::move(operands), nrows_);
  return out;
}

BitVector SegmentedBitmapIndex::evaluate(const Interval& iv,
                                         std::span<const double> values,
                                         const SegmentFetch& fetch) const {
  return detail::resolve_candidates(iv, evaluate_approx(iv, fetch), values,
                                    nrows_);
}

std::size_t SegmentedBitmapIndex::metadata_bytes() const {
  return bins_.edges().capacity() * sizeof(double) +
         offsets_.capacity() * sizeof(std::uint64_t);
}

}  // namespace qdv
