#include "bitmap/bitmap_index.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "bitmap/kernels.hpp"

namespace qdv {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Interval Interval::greater_than(double v) { return {v, kInf, true, true}; }
Interval Interval::at_least(double v) { return {v, kInf, false, true}; }
Interval Interval::less_than(double v) { return {-kInf, v, true, true}; }
Interval Interval::at_most(double v) { return {-kInf, v, true, false}; }
Interval Interval::between(double lo, double hi) { return {lo, hi, false, true}; }
Interval Interval::everything() { return {-kInf, kInf, true, true}; }

Interval intersect(const Interval& a, const Interval& b) {
  Interval out = a;
  if (b.lo > out.lo || (b.lo == out.lo && b.lo_open)) {
    out.lo = b.lo;
    out.lo_open = b.lo_open;
  }
  if (b.hi < out.hi || (b.hi == out.hi && b.hi_open)) {
    out.hi = b.hi;
    out.hi_open = b.hi_open;
  }
  return out;
}

namespace detail {

BinCoverage classify_bins(const Bins& bins, const Interval& iv) {
  BinCoverage cov;
  const std::size_t n = bins.num_bins();
  cov.full_lo = static_cast<std::ptrdiff_t>(n);
  cov.full_hi = -1;
  const auto& e = bins.edges();
  for (std::size_t b = 0; b < n; ++b) {
    const double e0 = e[b];
    const double e1 = e[b + 1];
    const bool last = (b + 1 == n);  // last bin is closed: [e0, e1]
    // Disjoint from the interval?
    const bool below = last ? (e1 < iv.lo || (e1 == iv.lo && iv.lo_open))
                            : (e1 <= iv.lo);
    const bool above = e0 > iv.hi || (e0 == iv.hi && iv.hi_open);
    if (below || above) continue;
    // Fully contained: every representable value of the bin satisfies iv.
    const bool lo_ok = e0 > iv.lo || (e0 == iv.lo && !iv.lo_open);
    const bool hi_ok = last ? (e1 < iv.hi || (e1 == iv.hi && !iv.hi_open))
                            : (e1 <= iv.hi);
    if (lo_ok && hi_ok) {
      cov.full_lo = std::min(cov.full_lo, static_cast<std::ptrdiff_t>(b));
      cov.full_hi = std::max(cov.full_hi, static_cast<std::ptrdiff_t>(b));
    } else {
      cov.partial.push_back(b);
    }
  }
  if (cov.full_lo > cov.full_hi) {
    cov.full_lo = 0;
    cov.full_hi = -1;
  }
  return cov;
}

BinnedRows bin_rows(std::span<const double> values, const Bins& bins) {
  const std::size_t n = bins.num_bins();
  BinnedRows out;
  std::vector<std::int32_t> bin_of(values.size());
  std::vector<std::size_t> counts(n, 0);
  const Bins::Locator locate = bins.locator();
  for (std::size_t row = 0; row < values.size(); ++row) {
    const std::ptrdiff_t b = locate(values[row]);
    bin_of[row] = static_cast<std::int32_t>(b);
    if (b >= 0)
      ++counts[static_cast<std::size_t>(b)];
    else
      out.outside.push_back(static_cast<std::uint32_t>(row));
  }
  out.offsets.assign(n + 1, 0);
  for (std::size_t b = 0; b < n; ++b) out.offsets[b + 1] = out.offsets[b] + counts[b];
  out.grouped.resize(out.offsets.back());
  std::vector<std::size_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (std::size_t row = 0; row < values.size(); ++row) {
    const std::int32_t b = bin_of[row];
    if (b >= 0)
      out.grouped[cursor[static_cast<std::size_t>(b)]++] =
          static_cast<std::uint32_t>(row);
  }
  return out;
}

BitVector resolve_candidates(const Interval& iv, ApproxAnswer approx,
                             std::span<const double> values,
                             std::uint64_t nrows) {
  std::vector<std::uint32_t> verified;
  const auto check = [&](std::uint64_t row) {
    if (iv.contains(values[row])) verified.push_back(static_cast<std::uint32_t>(row));
  };
  // Candidate sets are usually a couple of boundary bins — very sparse, the
  // scalar decoder's best regime; dense candidate sets take the block path.
  if (kern::prefer_scalar_decode(approx.candidates))
    approx.candidates.for_each_set(check);
  else
    kern::for_each_set_blocked(approx.candidates, check);
  if (verified.empty()) return std::move(approx.hits);
  return approx.hits | BitVector::from_positions(verified, nrows);
}

}  // namespace detail

BitmapIndex BitmapIndex::build(std::span<const double> values, const Bins& bins) {
  BitmapIndex index;
  index.bins_ = bins;
  index.nrows_ = values.size();
  const detail::BinnedRows rows = detail::bin_rows(values, bins);
  const std::size_t n = bins.num_bins();
  index.bitmaps_.reserve(n);
  for (std::size_t b = 0; b < n; ++b) {
    const std::span<const std::uint32_t> slice(
        rows.grouped.data() + rows.offsets[b], rows.offsets[b + 1] - rows.offsets[b]);
    index.bitmaps_.push_back(BitVector::from_positions(slice, index.nrows_));
  }
  index.outside_ = BitVector::from_positions(rows.outside, index.nrows_);
  return index;
}

ApproxAnswer BitmapIndex::evaluate_approx(const Interval& iv) const {
  const detail::BinCoverage cov = detail::classify_bins(bins_, iv);
  ApproxAnswer out;
  std::vector<const BitVector*> fulls;
  for (std::ptrdiff_t b = cov.full_lo; b <= cov.full_hi; ++b)
    fulls.push_back(&bitmaps_[static_cast<std::size_t>(b)]);
  out.hits = or_many(std::move(fulls), nrows_);
  std::vector<const BitVector*> partials;
  for (const std::size_t b : cov.partial) partials.push_back(&bitmaps_[b]);
  if (outside_.count() > 0) partials.push_back(&outside_);
  out.candidates = or_many(std::move(partials), nrows_);
  return out;
}

BitVector BitmapIndex::evaluate(const Interval& iv,
                                std::span<const double> values) const {
  return detail::resolve_candidates(iv, evaluate_approx(iv), values, nrows_);
}

std::size_t BitmapIndex::memory_bytes() const {
  std::size_t total = outside_.memory_bytes() +
                      bins_.edges().capacity() * sizeof(double);
  for (const BitVector& b : bitmaps_) total += b.memory_bytes();
  return total;
}

void BitmapIndex::save(std::ostream& out) const {
  const std::uint64_t nedges = bins_.edges().size();
  const std::uint64_t nbitmaps = bitmaps_.size();
  out.write(reinterpret_cast<const char*>(&nrows_), sizeof(nrows_));
  out.write(reinterpret_cast<const char*>(&nedges), sizeof(nedges));
  out.write(reinterpret_cast<const char*>(bins_.edges().data()),
            static_cast<std::streamsize>(nedges * sizeof(double)));
  out.write(reinterpret_cast<const char*>(&nbitmaps), sizeof(nbitmaps));
  for (const BitVector& b : bitmaps_) b.save(out);
  outside_.save(out);
}

BitmapIndex BitmapIndex::load(std::istream& in) {
  BitmapIndex index;
  std::uint64_t nedges = 0, nbitmaps = 0;
  in.read(reinterpret_cast<char*>(&index.nrows_), sizeof(index.nrows_));
  in.read(reinterpret_cast<char*>(&nedges), sizeof(nedges));
  std::vector<double> edges(nedges);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(nedges * sizeof(double)));
  index.bins_ = Bins(std::move(edges));
  in.read(reinterpret_cast<char*>(&nbitmaps), sizeof(nbitmaps));
  if (!in) throw std::runtime_error("BitmapIndex::load: truncated stream");
  index.bitmaps_.reserve(nbitmaps);
  for (std::uint64_t i = 0; i < nbitmaps; ++i)
    index.bitmaps_.push_back(BitVector::load(in));
  index.outside_ = BitVector::load(in);
  return index;
}

IdIndex IdIndex::build(std::span<const std::uint64_t> ids) {
  IdIndex index;
  index.rows_.resize(ids.size());
  for (std::uint32_t r = 0; r < ids.size(); ++r) index.rows_[r] = r;
  std::sort(index.rows_.begin(), index.rows_.end(),
            [&](std::uint32_t a, std::uint32_t b) { return ids[a] < ids[b]; });
  index.sorted_ids_.resize(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i)
    index.sorted_ids_[i] = ids[index.rows_[i]];
  return index;
}

std::vector<std::uint32_t> IdIndex::lookup_rows(
    std::span<const std::uint64_t> search) const {
  std::vector<std::uint32_t> out;
  out.reserve(search.size());
  for (const std::uint64_t id : search) {
    auto it = std::lower_bound(sorted_ids_.begin(), sorted_ids_.end(), id);
    for (; it != sorted_ids_.end() && *it == id; ++it)
      out.push_back(rows_[static_cast<std::size_t>(it - sorted_ids_.begin())]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::ptrdiff_t IdIndex::lookup_row(std::uint64_t id) const {
  const auto it = std::lower_bound(sorted_ids_.begin(), sorted_ids_.end(), id);
  if (it == sorted_ids_.end() || *it != id) return -1;
  return rows_[static_cast<std::size_t>(it - sorted_ids_.begin())];
}

std::size_t IdIndex::memory_bytes() const {
  return sorted_ids_.capacity() * sizeof(std::uint64_t) +
         rows_.capacity() * sizeof(std::uint32_t);
}

void IdIndex::save(std::ostream& out) const {
  const std::uint64_t n = sorted_ids_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(sorted_ids_.data()),
            static_cast<std::streamsize>(n * sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(rows_.data()),
            static_cast<std::streamsize>(n * sizeof(std::uint32_t)));
}

IdIndex IdIndex::load(std::istream& in) {
  IdIndex index;
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  index.sorted_ids_.resize(n);
  index.rows_.resize(n);
  in.read(reinterpret_cast<char*>(index.sorted_ids_.data()),
          static_cast<std::streamsize>(n * sizeof(std::uint64_t)));
  in.read(reinterpret_cast<char*>(index.rows_.data()),
          static_cast<std::streamsize>(n * sizeof(std::uint32_t)));
  if (!in) throw std::runtime_error("IdIndex::load: truncated stream");
  return index;
}

}  // namespace qdv
