// Scalar level of the SIMD dispatch layer: always built, always selectable,
// and the bit-identity reference the vector levels are tested against. The
// bodies live in simd_common.hpp (internal linkage) so the AVX TUs can
// reuse them for their tail/sparse paths without ODR-merging code compiled
// under different target flags.
#include "simd_common.hpp"

namespace qdv::simd::detail {

namespace {

constexpr Ops kScalarOps = {
    Isa::kScalar,
    &positions_from_words_scalar,
    &positions_from_groups_scalar,
    &hist1d_rows_scalar,
    &hist2d_rows_scalar,
    &hist1d_dense_scalar,
    &hist2d_dense_scalar,
};

}  // namespace

const Ops* scalar_ops() { return &kScalarOps; }

}  // namespace qdv::simd::detail
