#include "bitmap/bitvector.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "bitmap/kernels.hpp"

namespace qdv {

namespace {
constexpr std::uint32_t kFillFlag = 0x80000000u;
constexpr std::uint32_t kFillValueBit = 0x40000000u;
constexpr std::uint32_t kCountMask = 0x3FFFFFFFu;
constexpr std::uint32_t kLiteralMask = 0x7FFFFFFFu;
}  // namespace

void BitVector::append_group(std::uint32_t literal) {
  literal &= kLiteralMask;
  if (literal == 0) {
    append_fill(false, 1);
  } else if (literal == kLiteralMask) {
    append_fill(true, 1);
  } else {
    words_.push_back(literal);
  }
}

void BitVector::append_fill(bool value, std::uint64_t groups) {
  if (groups == 0) return;
  // Extend a trailing fill of the same value when possible.
  if (!words_.empty()) {
    const std::uint32_t last = words_.back();
    if ((last & kFillFlag) && ((last & kFillValueBit) != 0) == value) {
      const std::uint64_t have = last & kCountMask;
      const std::uint64_t take = std::min<std::uint64_t>(groups, kCountMask - have);
      if (take > 0) {
        words_.back() = kFillFlag | (value ? kFillValueBit : 0u) |
                        static_cast<std::uint32_t>(have + take);
        groups -= take;
      }
    }
  }
  while (groups > 0) {
    const std::uint64_t take = std::min<std::uint64_t>(groups, kCountMask);
    words_.push_back(kFillFlag | (value ? kFillValueBit : 0u) |
                     static_cast<std::uint32_t>(take));
    groups -= take;
  }
}

void BitVector::flush_active() {
  assert(active_bits_ == kGroupBits);
  append_group(active_);
  active_ = 0;
  active_bits_ = 0;
}

void BitVector::append_run(bool value, std::uint64_t count) {
  if (count == 0) return;
  nbits_ += count;
  // 1. Top up the partial tail group.
  if (active_bits_ > 0) {
    const std::uint32_t room = kGroupBits - active_bits_;
    const std::uint32_t take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(room, count));
    if (value) active_ |= ((take == 32 ? 0xFFFFFFFFu : ((1u << take) - 1u)) << active_bits_);
    active_bits_ += take;
    count -= take;
    if (active_bits_ == kGroupBits) flush_active();
    if (count == 0) return;
  }
  // 2. Whole groups become (or extend) a fill.
  const std::uint64_t groups = count / kGroupBits;
  append_fill(value, groups);
  count -= groups * kGroupBits;
  // 3. Remainder starts a fresh tail group.
  if (count > 0) {
    active_ = value ? ((1u << count) - 1u) : 0u;
    active_bits_ = static_cast<std::uint32_t>(count);
  }
}

BitVector BitVector::zeros(std::uint64_t nbits) {
  BitVector v;
  v.append_run(false, nbits);
  return v;
}

BitVector BitVector::ones(std::uint64_t nbits) {
  BitVector v;
  v.append_run(true, nbits);
  return v;
}

BitVector BitVector::from_positions(std::span<const std::uint32_t> positions,
                                    std::uint64_t nbits) {
  BitVector v;
  std::uint64_t cursor = 0;
  for (const std::uint32_t pos : positions) {
    if (pos < cursor) throw std::invalid_argument("from_positions: unsorted input");
    v.append_run(false, pos - cursor);
    v.append_bit(true);
    cursor = static_cast<std::uint64_t>(pos) + 1;
  }
  if (cursor > nbits) throw std::invalid_argument("from_positions: position beyond nbits");
  v.append_run(false, nbits - cursor);
  return v;
}

std::uint64_t BitVector::count() const { return kern::count_words(*this); }

std::vector<std::uint32_t> BitVector::to_positions() const {
  std::vector<std::uint32_t> out;
  kern::to_positions_blocked(*this, out);
  return out;
}

bool BitVector::test(std::uint64_t pos) const {
  std::uint64_t cursor = 0;
  for (const std::uint32_t w : words_) {
    if (w & kFillFlag) {
      const std::uint64_t run = static_cast<std::uint64_t>(w & kCountMask) * kGroupBits;
      if (pos < cursor + run) return (w & kFillValueBit) != 0;
      cursor += run;
    } else {
      if (pos < cursor + kGroupBits) return ((w >> (pos - cursor)) & 1u) != 0;
      cursor += kGroupBits;
    }
  }
  if (pos < cursor + active_bits_) return ((active_ >> (pos - cursor)) & 1u) != 0;
  return false;
}

/// Streaming decoder over the compressed words of a BitVector: yields runs of
/// whole groups (fills) or single literal groups, then zero-fills forever
/// (callers zero-extend shorter operands).
class BitRunDecoder {
 public:
  explicit BitRunDecoder(const BitVector& v) : v_(v) { advance(); }

  bool is_fill() const { return is_fill_; }
  bool fill_value() const { return fill_value_; }
  std::uint64_t groups() const { return groups_; }
  std::uint32_t literal() const { return literal_; }

  /// Consume @p n groups (n <= groups() when is_fill(); n == 1 for literals).
  void consume(std::uint64_t n) {
    groups_ -= n;
    if (groups_ == 0) advance();
  }

 private:
  void advance() {
    if (idx_ < v_.words_.size()) {
      const std::uint32_t w = v_.words_[idx_++];
      if (w & 0x80000000u) {
        is_fill_ = true;
        fill_value_ = (w & 0x40000000u) != 0;
        groups_ = w & 0x3FFFFFFFu;
      } else {
        is_fill_ = false;
        literal_ = w;
        groups_ = 1;
      }
      return;
    }
    if (!tail_emitted_ && v_.active_bits_ > 0) {
      // The partial tail group, zero-padded to a whole group (correct for
      // the zero-extension semantics of mixed-length operands).
      tail_emitted_ = true;
      is_fill_ = false;
      literal_ = v_.active_;
      groups_ = 1;
      return;
    }
    // Past the end: an infinite zero fill.
    is_fill_ = true;
    fill_value_ = false;
    groups_ = ~std::uint64_t{0};
  }

  const BitVector& v_;
  std::size_t idx_ = 0;
  bool tail_emitted_ = false;
  bool is_fill_ = false;
  bool fill_value_ = false;
  std::uint32_t literal_ = 0;
  std::uint64_t groups_ = 0;
};

namespace {

/// The 31-bit group with index @p group of @p v, zero-padded past the end:
/// one pass over the compressed words. Replaces the combine() tail path that
/// extracted the same bits one test() call each (O(31 * words) per operand).
std::uint32_t group_word(const BitVector& v, std::uint64_t group) {
  std::uint64_t g = 0;
  for (const std::uint32_t w : kern::BitVectorOps::words(v)) {
    if (w & kFillFlag) {
      const std::uint64_t run = w & kCountMask;
      if (group < g + run) return (w & kFillValueBit) ? kLiteralMask : 0u;
      g += run;
    } else {
      if (group == g) return w;
      ++g;
    }
  }
  return group == g ? kern::BitVectorOps::active(v) : 0u;
}

}  // namespace

template <typename Op>
BitVector combine(const BitVector& a, const BitVector& b, Op op) {
  BitVector out;
  const std::uint64_t nbits = std::max(a.nbits_, b.nbits_);
  const std::uint64_t full_groups = nbits / BitVector::kGroupBits;
  BitRunDecoder da(a), db(b);
  std::uint64_t done = 0;
  while (done < full_groups) {
    const std::uint64_t n =
        std::min({da.groups(), db.groups(), full_groups - done});
    if (da.is_fill() && db.is_fill()) {
      out.append_fill(op(da.fill_value() ? kLiteralMask : 0u,
                         db.fill_value() ? kLiteralMask : 0u) != 0,
                      n);
      da.consume(n);
      db.consume(n);
      done += n;
    } else {
      const std::uint32_t wa =
          da.is_fill() ? (da.fill_value() ? kLiteralMask : 0u) : da.literal();
      const std::uint32_t wb =
          db.is_fill() ? (db.fill_value() ? kLiteralMask : 0u) : db.literal();
      out.append_group(op(wa, wb) & kLiteralMask);
      da.consume(1);
      db.consume(1);
      ++done;
    }
  }
  out.nbits_ = full_groups * BitVector::kGroupBits;
  // Partial tail group: at most one operand still has literal tail bits.
  const std::uint32_t tail = static_cast<std::uint32_t>(nbits - out.nbits_);
  if (tail > 0) {
    const auto tail_word = [full_groups](const BitVector& v) -> std::uint32_t {
      if (v.nbits_ / BitVector::kGroupBits == full_groups && v.active_bits_ > 0)
        return v.active_;
      // The operand's tail region is covered by compressed words (or it is
      // shorter than nbits): extract the whole group in one pass.
      return group_word(v, full_groups);
    };
    out.active_ = op(tail_word(a), tail_word(b)) & ((1u << tail) - 1u);
    out.active_bits_ = tail;
    out.nbits_ = nbits;
  }
  return out;
}

BitVector operator&(const BitVector& a, const BitVector& b) {
  return combine(a, b, [](std::uint32_t x, std::uint32_t y) { return x & y; });
}

BitVector operator|(const BitVector& a, const BitVector& b) {
  return combine(a, b, [](std::uint32_t x, std::uint32_t y) { return x | y; });
}

BitVector operator^(const BitVector& a, const BitVector& b) {
  return combine(a, b, [](std::uint32_t x, std::uint32_t y) { return x ^ y; });
}

BitVector BitVector::operator~() const {
  BitVector out;
  for (const std::uint32_t w : words_) {
    if (w & kFillFlag) {
      out.append_fill((w & kFillValueBit) == 0, w & kCountMask);
    } else {
      out.append_group(~w & kLiteralMask);
    }
  }
  out.nbits_ = (nbits_ / kGroupBits) * kGroupBits;
  if (active_bits_ > 0) {
    out.active_ = ~active_ & ((1u << active_bits_) - 1u);
    out.active_bits_ = active_bits_;
    out.nbits_ = nbits_;
  }
  return out;
}

BitVector or_many(std::vector<const BitVector*> operands, std::uint64_t nbits) {
  return kern::or_many_kway(operands, nbits);
}

void BitVector::save(std::ostream& out) const {
  const std::uint64_t nwords = words_.size();
  out.write(reinterpret_cast<const char*>(&nbits_), sizeof(nbits_));
  out.write(reinterpret_cast<const char*>(&nwords), sizeof(nwords));
  out.write(reinterpret_cast<const char*>(&active_), sizeof(active_));
  out.write(reinterpret_cast<const char*>(&active_bits_), sizeof(active_bits_));
  out.write(reinterpret_cast<const char*>(words_.data()),
            static_cast<std::streamsize>(nwords * sizeof(std::uint32_t)));
}

namespace {

/// Header sanity shared by both load() paths, checked BEFORE any allocation
/// so a corrupt/truncated .bmi or cache file throws instead of attempting a
/// huge resize. The invariants are exactly what append_run maintains: the
/// tail group holds nbits % 31 bits with nothing above them, and every
/// compressed word covers at least one 31-bit group.
void validate_header(std::uint64_t nbits, std::uint64_t nwords,
                     std::uint32_t active, std::uint32_t active_bits) {
  if (active_bits >= BitVector::kGroupBits ||
      active_bits != nbits % BitVector::kGroupBits)
    throw std::runtime_error("BitVector::load: corrupt header (tail width)");
  if (active_bits == 0 ? active != 0 : (active >> active_bits) != 0)
    throw std::runtime_error("BitVector::load: corrupt header (tail bits)");
  if (nwords > nbits / BitVector::kGroupBits)
    throw std::runtime_error("BitVector::load: corrupt header (word count)");
}

}  // namespace

BitVector BitVector::load(std::istream& in) {
  BitVector v;
  std::uint64_t nwords = 0;
  in.read(reinterpret_cast<char*>(&v.nbits_), sizeof(v.nbits_));
  in.read(reinterpret_cast<char*>(&nwords), sizeof(nwords));
  in.read(reinterpret_cast<char*>(&v.active_), sizeof(v.active_));
  in.read(reinterpret_cast<char*>(&v.active_bits_), sizeof(v.active_bits_));
  if (!in) throw std::runtime_error("BitVector::load: truncated stream");
  validate_header(v.nbits_, nwords, v.active_, v.active_bits_);
  // Read the payload in bounded chunks: a forged header whose nbits/nwords
  // are mutually consistent but enormous must fail at the first short read,
  // never commit gigabytes up front (memory grows only as data arrives).
  constexpr std::uint64_t kChunkWords = 1u << 20;  // 4 MiB per chunk
  std::uint64_t read_words = 0;
  while (read_words < nwords) {
    const std::uint64_t n = std::min(kChunkWords, nwords - read_words);
    if (v.words_.capacity() < read_words + n)
      v.words_.reserve(std::max<std::uint64_t>(2 * v.words_.capacity(),
                                               read_words + n));
    v.words_.resize(static_cast<std::size_t>(read_words + n));
    in.read(reinterpret_cast<char*>(v.words_.data() + read_words),
            static_cast<std::streamsize>(n * sizeof(std::uint32_t)));
    if (!in) throw std::runtime_error("BitVector::load: truncated stream");
    read_words += n;
  }
  // The decoded groups must cover exactly the declared full-group count.
  std::uint64_t groups = 0;
  for (const std::uint32_t w : v.words_)
    groups += (w & kFillFlag) ? (w & kCountMask) : 1;
  if (groups != v.nbits_ / kGroupBits)
    throw std::runtime_error("BitVector::load: word/bit count mismatch");
  return v;
}

namespace {

// Serialized record layout (matching save()):
//   nbits (u64) | nwords (u64) | active (u32) | active_bits (u32) | words
constexpr std::size_t kRecordHeaderBytes = 24;

}  // namespace

std::size_t BitVector::serialized_size(std::span<const std::byte> image,
                                       std::size_t offset) {
  const auto nwords = detail::read_unaligned<std::uint64_t>(image, offset + 8);
  return kRecordHeaderBytes +
         static_cast<std::size_t>(nwords) * sizeof(std::uint32_t);
}

BitVector BitVector::load(std::span<const std::byte> image, std::size_t& offset) {
  BitVector v;
  v.nbits_ = detail::read_unaligned<std::uint64_t>(image, offset);
  const auto nwords = detail::read_unaligned<std::uint64_t>(image, offset + 8);
  v.active_ = detail::read_unaligned<std::uint32_t>(image, offset + 16);
  v.active_bits_ = detail::read_unaligned<std::uint32_t>(image, offset + 20);
  validate_header(v.nbits_, nwords, v.active_, v.active_bits_);
  const std::size_t payload =
      static_cast<std::size_t>(nwords) * sizeof(std::uint32_t);
  if (offset + kRecordHeaderBytes + payload > image.size())
    throw std::runtime_error("BitVector: truncated serialized image");
  v.words_.resize(static_cast<std::size_t>(nwords));
  std::memcpy(v.words_.data(), image.data() + offset + kRecordHeaderBytes,
              payload);
  offset += kRecordHeaderBytes + payload;
  // Same group-coverage consistency check as the stream loader: a mapped
  // .bmi with bit-rotted fill counts must throw, not silently decode to a
  // vector whose words disagree with its declared size.
  std::uint64_t groups = 0;
  for (const std::uint32_t w : v.words_)
    groups += (w & kFillFlag) ? (w & kCountMask) : 1;
  if (groups != v.nbits_ / kGroupBits)
    throw std::runtime_error("BitVector: corrupt serialized image (group count)");
  return v;
}

}  // namespace qdv
