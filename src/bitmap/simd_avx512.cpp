// AVX-512 level of the SIMD dispatch layer. Compiled with
// -mavx512f -mavx512dq -mavx512bw -mavx512vl (per-file flags set in
// CMakeLists.txt); runtime dispatch requires the matching CPUID bits, and
// when the compiler lacks the target the TU degrades to a nullptr accessor.
//
// Position extraction uses mask-compress stores: each 16-bit chunk of a
// word becomes a __mmask16 driving _mm512_mask_compressstoreu_epi32 over an
// iota+base vector, writing exactly popcount lanes (no overstore). The
// chunk loop is branchless — no per-word popcount gate and no empty-chunk
// skip — because at the mixed densities that reach this TU (the sparse
// inline gate in kernels.cpp already keeps short literal runs scalar) the
// mispredicted gates cost more than redundant compress stores. The locate
// and histogram kernels are 8-lane versions of the AVX2 shapes, using
// native __mmask8 predication instead of blend vectors; uniform bin sets
// with bit-exactly affine edges (LocatorView::affine) synthesize their
// verify edges in-register instead of gathering them, and hist2d runs two
// phases (vector bin compute + compressed flat indices, then a prefetched
// increment pass) to decouple the serial counts updates from the gathers.
#include "simd_common.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512BW__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

namespace qdv::simd {

namespace {

/// 8-lane twin of the uniform branch of Bins::Locator::operator(). When
/// kAffine, the verify edges are synthesized as bin * width + lo (separate
/// mul and add, the exact rounding the affine detection in bins.cpp pinned
/// down) instead of gathered — the settle comparisons see bit-identical
/// edge values either way, so the result matches the scalar path exactly.
template <bool kAffine>
inline __m256i locate8_uniform(const LocatorView& L, __m512d v) {
  const __m512d lo = _mm512_set1_pd(L.lo);
  const __mmask8 valid =
      _mm512_cmp_pd_mask(v, lo, _CMP_GE_OQ) &
      _mm512_cmp_pd_mask(v, _mm512_set1_pd(L.hi), _CMP_LE_OQ);
  const __m512d t =
      _mm512_mul_pd(_mm512_sub_pd(v, lo), _mm512_set1_pd(L.inv_width));
  const __m256i last8 = _mm256_set1_epi32(static_cast<int>(L.last));
  const __m256i bin = _mm256_min_epi32(_mm512_cvttpd_epi32(t), last8);
  // Valid lanes satisfy 0 <= bin <= last; zero invalid lanes (NaN converts
  // to INT_MIN) so the edge gathers stay in bounds.
  const __m256i bing = _mm256_maskz_mov_epi32(valid, bin);
  const __m256i bing1 = _mm256_add_epi32(bing, _mm256_set1_epi32(1));
  __m512d e0, e1;
  if constexpr (kAffine) {
    const __m512d w = _mm512_set1_pd(L.width);
    e0 = _mm512_add_pd(_mm512_mul_pd(_mm512_cvtepi32_pd(bing), w), lo);
    // e1 at bing == last is never used (the inc mask requires bing < last),
    // so synthesizing past the checked affine range is harmless.
    e1 = _mm512_add_pd(_mm512_mul_pd(_mm512_cvtepi32_pd(bing1), w), lo);
  } else {
    e0 = _mm512_i32gather_pd(bing, L.edges, 8);
    // bing + 1 <= last + 1 = nedges - 1: always a readable edge.
    e1 = _mm512_i32gather_pd(bing1, L.edges, 8);
  }
  const __mmask8 dec = _mm512_cmp_pd_mask(v, e0, _CMP_LT_OQ);
  const __mmask8 inc = static_cast<__mmask8>(
      _mm512_cmp_pd_mask(v, e1, _CMP_GE_OQ) &
      _mm256_cmp_epi32_mask(bing, last8, _MM_CMPINT_LT) & ~dec);
  __m256i r = _mm256_mask_sub_epi32(bing, dec, bing, _mm256_set1_epi32(1));
  r = _mm256_mask_add_epi32(r, inc, r, _mm256_set1_epi32(1));
  return _mm256_mask_mov_epi32(_mm256_set1_epi32(-1), valid, r);
}

/// 8-lane twin of the halving-search branch (same fixed halving sequence).
inline __m256i locate8_search(const LocatorView& L, __m512d v) {
  const __mmask8 valid =
      _mm512_cmp_pd_mask(v, _mm512_set1_pd(L.lo), _CMP_GE_OQ) &
      _mm512_cmp_pd_mask(v, _mm512_set1_pd(L.hi), _CMP_LE_OQ);
  __m256i idx = _mm256_setzero_si256();
  std::size_t n = L.nedges;
  while (n > 1) {
    const std::size_t half = n / 2;
    const __m256i halves = _mm256_set1_epi32(static_cast<int>(half));
    // idx + half < nedges holds for every lane (same invariant as scalar).
    const __m512d e =
        _mm512_i32gather_pd(_mm256_add_epi32(idx, halves), L.edges, 8);
    const __mmask8 le = _mm512_cmp_pd_mask(e, v, _CMP_LE_OQ);
    idx = _mm256_mask_add_epi32(idx, le, idx, halves);
    n -= half;
  }
  idx = _mm256_min_epi32(idx, _mm256_set1_epi32(static_cast<int>(L.last)));
  return _mm256_mask_mov_epi32(_mm256_set1_epi32(-1), valid, idx);
}

inline __m256i locate8(const LocatorView& L, __m512d v) {
  if (!L.uniform) return locate8_search(L, v);
  return L.affine ? locate8_uniform<true>(L, v) : locate8_uniform<false>(L, v);
}

// Batch-shape gates (kMinVectorRows / rows_are_sparse) live in simd.hpp:
// callers route sparse batches to the scalar table before dispatching, and
// the kernels below re-check for direct Ops users.

const __m512i kIota16 = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                          11, 12, 13, 14, 15);

std::size_t positions_from_words_avx512(const std::uint64_t* words,
                                        std::size_t nwords, std::uint64_t base,
                                        std::uint32_t* out) {
  std::size_t n = 0;
  for (std::size_t w = 0; w < nwords; ++w) {
    const std::uint64_t bits = words[w];
    if (bits == 0) continue;
    const auto wbase = static_cast<std::uint32_t>(base + 64 * w);
    for (unsigned c = 0; c < 4; ++c) {
      const auto m = static_cast<__mmask16>(bits >> (16 * c));
      const __m512i pos = _mm512_add_epi32(
          kIota16, _mm512_set1_epi32(static_cast<int>(wbase + 16 * c)));
      _mm512_mask_compressstoreu_epi32(out + n, m, pos);
      n += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(m)));
    }
  }
  return n;
}

std::size_t positions_from_groups_avx512(const std::uint32_t* groups,
                                         std::size_t ngroups,
                                         std::uint64_t base,
                                         std::uint32_t* out) {
  std::size_t n = 0;
  for (std::size_t g = 0; g < ngroups; ++g) {
    const std::uint32_t bits = groups[g] & 0x7FFFFFFFu;
    if (bits == 0) continue;
    const auto gbase = static_cast<std::uint32_t>(base + 31 * g);
    const __m512i b = _mm512_set1_epi32(static_cast<int>(gbase));
    _mm512_mask_compressstoreu_epi32(
        out + n, static_cast<__mmask16>(bits), _mm512_add_epi32(kIota16, b));
    n += static_cast<std::size_t>(
        std::popcount(static_cast<std::uint32_t>(bits & 0xFFFFu)));
    _mm512_mask_compressstoreu_epi32(
        out + n, static_cast<__mmask16>(bits >> 16),
        _mm512_add_epi32(_mm512_add_epi32(kIota16, _mm512_set1_epi32(16)), b));
    n += static_cast<std::size_t>(std::popcount(bits >> 16));
  }
  return n;
}

void hist1d_rows_avx512(const std::uint32_t* rows, std::size_t n,
                        const double* values, const LocatorView& L,
                        std::uint64_t* counts) {
  if (L.empty || n < kMinVectorRows || rows_are_sparse(rows, n)) {
    hist1d_rows_scalar(rows, n, values, L, counts);
    return;
  }
  alignas(32) std::int32_t bins[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Prefetch every row of the vector four iterations ahead: at low
    // selectivity each gathered row is its own cache line, so skipping
    // lanes would leave the gather waiting on unprefetched DRAM misses.
    if (i + 40 <= n)
      for (int l = 0; l < 8; ++l)
        _mm_prefetch(reinterpret_cast<const char*>(values + rows[i + 32 + l]),
                     _MM_HINT_T0);
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    const __m512d v = _mm512_i32gather_pd(r, values, 8);
    _mm256_store_si256(reinterpret_cast<__m256i*>(bins), locate8(L, v));
    for (int l = 0; l < 8; ++l)
      if (bins[l] >= 0) ++counts[static_cast<std::size_t>(bins[l])];
  }
  hist1d_rows_scalar(rows + i, n - i, values, L, counts);
}

void hist2d_rows_avx512(const std::uint32_t* rows, std::size_t n,
                        const double* xs, const double* ys,
                        const LocatorView& xloc, const LocatorView& yloc,
                        std::size_t ny, std::uint64_t* counts) {
  if (xloc.empty || yloc.empty || n < kMinVectorRows ||
      rows_are_sparse(rows, n)) {
    hist2d_rows_scalar(rows, n, xs, ys, xloc, yloc, ny, counts);
    return;
  }
  // Two-phase accumulate, software-pipelined across chunks: phase one
  // computes flat bin indices for a chunk of rows (pure vector work, no
  // serial dependency), compressing out the out-of-range lanes; phase two
  // replays the indices as counts increments. The replay of chunk k-1 is
  // interleaved into chunk k's gather loop (a 16-entry slice per 16-row
  // iteration) so the latency-bound increments — each waiting on an
  // L2/L3-resident counts line — hide under the bandwidth-bound value
  // gathers instead of running as a serial epilogue per chunk. Increments
  // are commutative, so reordering them keeps the counts bit-identical to
  // the scalar path. Needs the flat index to fit an i32 lane; huge grids
  // take the lane-buffer path.
  if ((xloc.last + 1) * static_cast<std::int64_t>(ny) <= INT32_MAX) {
    constexpr std::size_t kChunk = 1024;
    alignas(64) std::int32_t buf_a[kChunk + 8];
    alignas(64) std::int32_t buf_b[kChunk + 8];
    std::int32_t* idx = buf_a;        // indices being produced (chunk k)
    std::int32_t* replay = buf_b;     // indices being consumed (chunk k-1)
    std::size_t replay_m = 0;
    std::size_t rk = 0;
    std::size_t i = 0;
    while (i < n) {
      const std::size_t take = std::min<std::size_t>(n - i, kChunk);
      std::size_t m = 0;
      std::size_t j = 0;
      // Two row-vectors per iteration: the four value gathers are issued
      // back to back before any locate consumes them, so the L3-latency
      // loads overlap instead of serializing behind each locate. The
      // prefetch runs 64 rows ahead — far enough that scattered lines
      // arrive before the gathers need them (32 was inside L3 latency at
      // this loop's ~8 ns/row pace).
      const __m256i nyv = _mm256_set1_epi32(static_cast<int>(ny));
      for (; j + 16 <= take; j += 16) {
        if (i + j + 144 <= n)
          for (int l = 0; l < 16; ++l) {
            _mm_prefetch(
                reinterpret_cast<const char*>(xs + rows[i + j + 128 + l]),
                _MM_HINT_T0);
            _mm_prefetch(
                reinterpret_cast<const char*>(ys + rows[i + j + 128 + l]),
                _MM_HINT_T0);
          }
        const __m256i r0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i + j));
        const __m256i r1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(rows + i + j + 8));
        const __m512d x0 = _mm512_i32gather_pd(r0, xs, 8);
        const __m512d x1 = _mm512_i32gather_pd(r1, xs, 8);
        const __m512d y0 = _mm512_i32gather_pd(r0, ys, 8);
        const __m512d y1 = _mm512_i32gather_pd(r1, ys, 8);
        const __m256i bx0 = locate8(xloc, x0);
        const __m256i by0 = locate8(yloc, y0);
        const __mmask8 ok0 =
            _mm256_cmp_epi32_mask(bx0, _mm256_setzero_si256(),
                                  _MM_CMPINT_NLT) &
            _mm256_cmp_epi32_mask(by0, _mm256_setzero_si256(), _MM_CMPINT_NLT);
        _mm256_mask_compressstoreu_epi32(
            idx + m, ok0,
            _mm256_add_epi32(_mm256_mullo_epi32(bx0, nyv), by0));
        m += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(ok0)));
        const __m256i bx1 = locate8(xloc, x1);
        const __m256i by1 = locate8(yloc, y1);
        const __mmask8 ok1 =
            _mm256_cmp_epi32_mask(bx1, _mm256_setzero_si256(),
                                  _MM_CMPINT_NLT) &
            _mm256_cmp_epi32_mask(by1, _mm256_setzero_si256(), _MM_CMPINT_NLT);
        _mm256_mask_compressstoreu_epi32(
            idx + m, ok1,
            _mm256_add_epi32(_mm256_mullo_epi32(bx1, nyv), by1));
        m += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(ok1)));
        const std::size_t r_end = std::min(replay_m, rk + 16);
        for (; rk < r_end; ++rk) {
          if (rk + 32 < replay_m)
            _mm_prefetch(
                reinterpret_cast<const char*>(counts + replay[rk + 32]),
                _MM_HINT_T0);
          ++counts[static_cast<std::uint32_t>(replay[rk])];
        }
      }
      for (; j + 8 <= take; j += 8) {
        const __m256i r =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i + j));
        const __m256i bx = locate8(xloc, _mm512_i32gather_pd(r, xs, 8));
        const __m256i by = locate8(yloc, _mm512_i32gather_pd(r, ys, 8));
        const __mmask8 ok =
            _mm256_cmp_epi32_mask(bx, _mm256_setzero_si256(), _MM_CMPINT_NLT) &
            _mm256_cmp_epi32_mask(by, _mm256_setzero_si256(), _MM_CMPINT_NLT);
        const __m256i flat = _mm256_add_epi32(_mm256_mullo_epi32(bx, nyv), by);
        _mm256_mask_compressstoreu_epi32(idx + m, ok, flat);
        m += static_cast<std::size_t>(
            std::popcount(static_cast<unsigned>(ok)));
      }
      for (; j < take; ++j) {
        const std::int64_t bx = locate_view(xloc, xs[rows[i + j]]);
        if (bx < 0) continue;
        const std::int64_t by = locate_view(yloc, ys[rows[i + j]]);
        if (by < 0) continue;
        idx[m++] = static_cast<std::int32_t>(
            static_cast<std::size_t>(bx) * ny + static_cast<std::size_t>(by));
      }
      // Drain whatever the interleave did not cover (short chunks, entries
      // the 8-wide and scalar tails appended), then rotate the buffers:
      // this chunk's indices become the next chunk's interleaved replay.
      for (; rk < replay_m; ++rk) {
        if (rk + 32 < replay_m)
          _mm_prefetch(reinterpret_cast<const char*>(counts + replay[rk + 32]),
                       _MM_HINT_T0);
        ++counts[static_cast<std::uint32_t>(replay[rk])];
      }
      std::swap(idx, replay);
      replay_m = m;
      rk = 0;
      i += take;
    }
    for (; rk < replay_m; ++rk)
      ++counts[static_cast<std::uint32_t>(replay[rk])];
    return;
  }
  alignas(32) std::int32_t bx[8];
  alignas(32) std::int32_t by[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (i + 40 <= n)
      for (int l = 0; l < 8; ++l) {
        _mm_prefetch(reinterpret_cast<const char*>(xs + rows[i + 32 + l]),
                     _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(ys + rows[i + 32 + l]),
                     _MM_HINT_T0);
      }
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(bx),
                       locate8(xloc, _mm512_i32gather_pd(r, xs, 8)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(by),
                       locate8(yloc, _mm512_i32gather_pd(r, ys, 8)));
    for (int l = 0; l < 8; ++l)
      if (bx[l] >= 0 && by[l] >= 0)
        ++counts[static_cast<std::size_t>(bx[l]) * ny +
                 static_cast<std::size_t>(by[l])];
  }
  hist2d_rows_scalar(rows + i, n - i, xs, ys, xloc, yloc, ny, counts);
}

void hist1d_dense_avx512(const double* values, std::size_t n,
                         const LocatorView& L, std::uint64_t* counts) {
  if (L.empty || n < kMinVectorRows) {
    hist1d_dense_scalar(values, n, L, counts);
    return;
  }
  alignas(32) std::int32_t bins[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(bins),
                       locate8(L, _mm512_loadu_pd(values + i)));
    for (int l = 0; l < 8; ++l)
      if (bins[l] >= 0) ++counts[static_cast<std::size_t>(bins[l])];
  }
  hist1d_dense_scalar(values + i, n - i, L, counts);
}

void hist2d_dense_avx512(const double* xs, const double* ys, std::size_t n,
                         const LocatorView& xloc, const LocatorView& yloc,
                         std::size_t ny, std::uint64_t* counts) {
  if (xloc.empty || yloc.empty || n < kMinVectorRows) {
    hist2d_dense_scalar(xs, ys, n, xloc, yloc, ny, counts);
    return;
  }
  alignas(32) std::int32_t bx[8];
  alignas(32) std::int32_t by[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(bx),
                       locate8(xloc, _mm512_loadu_pd(xs + i)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(by),
                       locate8(yloc, _mm512_loadu_pd(ys + i)));
    for (int l = 0; l < 8; ++l)
      if (bx[l] >= 0 && by[l] >= 0)
        ++counts[static_cast<std::size_t>(bx[l]) * ny +
                 static_cast<std::size_t>(by[l])];
  }
  hist2d_dense_scalar(xs + i, ys + i, n - i, xloc, yloc, ny, counts);
}

constexpr Ops kAvx512Ops = {
    Isa::kAvx512,
    &positions_from_words_avx512,
    &positions_from_groups_avx512,
    &hist1d_rows_avx512,
    &hist2d_rows_avx512,
    &hist1d_dense_avx512,
    &hist2d_dense_avx512,
};

}  // namespace

namespace detail {
const Ops* avx512_ops() { return &kAvx512Ops; }
}  // namespace detail

}  // namespace qdv::simd

#else  // missing AVX-512 target support

namespace qdv::simd::detail {
const Ops* avx512_ops() { return nullptr; }
}  // namespace qdv::simd::detail

#endif
