#include "bitmap/kernels.hpp"

#include <algorithm>

#include "parallel/thread_pool.hpp"

namespace qdv::kern {

// ------------------------------------------------------------------------
// DenseBlockCursor
// ------------------------------------------------------------------------

DenseBlockCursor::DenseBlockCursor(const BitVector& v, std::uint64_t begin,
                                   std::uint64_t end)
    : words_(BitVectorOps::words(v)),
      active_(BitVectorOps::active(v)),
      active_bits_(BitVectorOps::active_bits(v)),
      begin_(std::min(begin, v.size())),
      end_(std::min(end, v.size())) {
  if (begin_ >= end_) done_ = true;
  dense_base_ = begin_;
}

bool DenseBlockCursor::next(Block& out) {
  for (;;) {
    if (have_pending_run_) {
      // Flush the dense buffer first so blocks come out in row order.
      if (nwords_ > 0 || accbits_ > 0) {
        emit_dense(out);
        return true;
      }
      out.base = pending_base_;
      out.nbits = pending_bits_;
      out.is_run = true;
      out.value = pending_value_;
      out.words = nullptr;
      have_pending_run_ = false;
      dense_base_ = pending_base_ + pending_bits_;
      return true;
    }
    if (done_) {
      if (nwords_ > 0 || accbits_ > 0) {
        emit_dense(out);
        return true;
      }
      return false;
    }
    if (nwords_ >= kBufWords) {
      emit_dense(out);
      return true;
    }
    // Hot path: consecutive literal groups fully inside the window need no
    // clipping and no per-word dispatch — this is the shape of every
    // moderately-selective bitmap between its fills.
    if (pos_ >= begin_) {
      while (idx_ < words_.size() && nwords_ < kBufWords &&
             pos_ + BitVectorOps::kGroupBits <= end_) {
        const std::uint32_t w = words_[idx_];
        if (w & BitVectorOps::kFillFlag) break;
        ++idx_;
        if (nwords_ == 0 && accbits_ == 0) dense_base_ = pos_;
        pos_ += BitVectorOps::kGroupBits;
        push_bits(w, BitVectorOps::kGroupBits);
      }
      if (nwords_ >= kBufWords) {
        emit_dense(out);
        return true;
      }
    }
    step();
  }
}

void DenseBlockCursor::step() {
  if (pos_ >= end_) {
    done_ = true;
    return;
  }
  if (idx_ < words_.size()) {
    const std::uint32_t w = words_[idx_++];
    if (w & BitVectorOps::kFillFlag) {
      handle_run((w & BitVectorOps::kFillValueBit) != 0,
                 static_cast<std::uint64_t>(w & BitVectorOps::kCountMask) *
                     BitVectorOps::kGroupBits);
    } else {
      handle_literal(w, BitVectorOps::kGroupBits);
    }
    return;
  }
  if (!tail_done_ && active_bits_ > 0) {
    tail_done_ = true;
    handle_literal(active_, active_bits_);
    return;
  }
  done_ = true;
}

void DenseBlockCursor::handle_run(bool value, std::uint64_t run_bits) {
  const std::uint64_t start = pos_;
  pos_ += run_bits;
  const std::uint64_t lo = std::max(start, begin_);
  const std::uint64_t hi = std::min(pos_, end_);
  if (lo >= hi) return;  // no overlap with the row window
  const std::uint64_t n = hi - lo;
  if (n >= (value ? kRunThresholdBits : kZeroRunThresholdBits)) {
    have_pending_run_ = true;
    pending_value_ = value;
    pending_base_ = lo;
    pending_bits_ = n;
    return;
  }
  // Short fill: absorb into the dense buffer (contiguous with it by
  // construction — either the buffer is empty or it ends exactly at lo).
  if (nwords_ == 0 && accbits_ == 0) dense_base_ = lo;
  if (value)
    push_ones(n);
  else
    push_zeros(n);
}

void DenseBlockCursor::handle_literal(std::uint32_t literal, std::uint32_t nbits) {
  const std::uint64_t start = pos_;
  pos_ += nbits;
  if (pos_ <= begin_ || start >= end_) return;  // fully outside the window
  std::uint32_t w = literal;
  // Mask window edges; the group itself stays whole, so dense blocks keep
  // 31-bit-group alignment and the masked bits read as zeros.
  if (start < begin_)
    w &= ~0u << static_cast<std::uint32_t>(begin_ - start);
  if (pos_ > end_)
    w &= (1u << static_cast<std::uint32_t>(end_ - start)) - 1u;
  if (nwords_ == 0 && accbits_ == 0) dense_base_ = start;
  push_bits(w, nbits);
}

void DenseBlockCursor::emit_dense(Block& out) {
  std::size_t nw = nwords_;
  const std::uint64_t nbits =
      static_cast<std::uint64_t>(nwords_) * 64 + accbits_;
  if (accbits_ > 0) buf_[nw++] = acc_;
  out.base = dense_base_;
  out.nbits = nbits;
  out.is_run = false;
  out.value = false;
  out.words = buf_.data();
  dense_base_ += nbits;
  nwords_ = 0;
  acc_ = 0;
  accbits_ = 0;
}

void DenseBlockCursor::push_bits(std::uint64_t bits, std::uint32_t n) {
  acc_ |= bits << accbits_;
  const std::uint32_t total = accbits_ + n;
  if (total >= 64) {
    buf_[nwords_++] = acc_;
    const std::uint32_t spilled = total - 64;
    acc_ = spilled > 0 ? (bits >> (n - spilled)) : 0;
    accbits_ = spilled;
  } else {
    accbits_ = total;
  }
}

void DenseBlockCursor::push_zeros(std::uint64_t n) {
  std::uint64_t total = accbits_ + n;
  if (total < 64) {
    accbits_ = static_cast<std::uint32_t>(total);
    return;
  }
  buf_[nwords_++] = acc_;
  acc_ = 0;
  total -= 64;
  while (total >= 64) {
    buf_[nwords_++] = 0;
    total -= 64;
  }
  accbits_ = static_cast<std::uint32_t>(total);
}

void DenseBlockCursor::push_ones(std::uint64_t n) {
  std::uint64_t total = accbits_ + n;
  acc_ |= ~std::uint64_t{0} << accbits_;
  if (total < 64) {
    acc_ &= (std::uint64_t{1} << total) - 1u;
    accbits_ = static_cast<std::uint32_t>(total);
    return;
  }
  buf_[nwords_++] = acc_;
  total -= 64;
  while (total >= 64) {
    buf_[nwords_++] = ~std::uint64_t{0};
    total -= 64;
  }
  acc_ = total > 0 ? (std::uint64_t{1} << total) - 1u : 0;
  accbits_ = static_cast<std::uint32_t>(total);
}

// ------------------------------------------------------------------------
// Position / count / gather kernels
// ------------------------------------------------------------------------

namespace {

/// Single-pass content walk of a WAH vector clipped to rows [begin, end):
/// zero fills are skipped arithmetically (never materialized), one-fill row
/// ranges are reported via on_ones(lo, hi), and maximal runs of literal
/// words are reported via on_groups(words, ngroups, base_row) *directly
/// over the compressed word array* — no intermediate dense-word buffer.
/// Window-straddling boundary groups are masked into a stack copy so
/// consumers never see out-of-window bits. This is the decode under
/// to_positions_blocked and the gather kernels: one pass, so sparse
/// selections cost exactly the scalar WAH decode (plus bulk group
/// extraction) with no density pre-scan.
template <bool kFullWindow, typename OnOnes, typename OnGroups>
void walk_content(const BitVector& v, std::uint64_t begin, std::uint64_t end,
                  OnOnes&& on_ones, OnGroups&& on_groups) {
  begin = std::min(begin, v.size());
  end = std::min(end, v.size());
  if (begin >= end) return;
  constexpr std::uint32_t G = BitVectorOps::kGroupBits;

  const auto emit_groups = [&](const std::uint32_t* groups, std::size_t ng,
                               std::uint64_t start) {
    if constexpr (kFullWindow) {
      // Full-window walk: WAH invariants put no content past size() and the
      // tail group is zero-padded, so no run needs clipping or masking —
      // this keeps the per-run cost of sparse bitmaps at the bare decode.
      on_groups(groups, ng, start);
      return;
    }
    const std::uint64_t stop = start + static_cast<std::uint64_t>(ng) * G;
    if (stop <= begin || start >= end) return;
    std::size_t g0 =
        start < begin ? static_cast<std::size_t>((begin - start) / G) : 0;
    const std::size_t g1 =
        stop > end ? static_cast<std::size_t>((end - start + G - 1) / G) : ng;
    const std::uint64_t first_base = start + static_cast<std::uint64_t>(g0) * G;
    const std::uint64_t last_base =
        start + static_cast<std::uint64_t>(g1 - 1) * G;
    const std::uint32_t drop_lo =
        begin > first_base ? static_cast<std::uint32_t>(begin - first_base) : 0;
    const std::uint32_t keep_hi =
        end < last_base + G ? static_cast<std::uint32_t>(end - last_base) : G;
    if (g0 + 1 == g1 && (drop_lo > 0 || keep_hi < G)) {
      std::uint32_t w = groups[g0] & BitVectorOps::kLiteralMask;
      if (drop_lo > 0) w &= ~0u << drop_lo;
      if (keep_hi < G) w &= (1u << keep_hi) - 1u;
      on_groups(&w, std::size_t{1}, first_base);
      return;
    }
    if (drop_lo > 0) {
      const std::uint32_t w =
          (groups[g0] & BitVectorOps::kLiteralMask) & (~0u << drop_lo);
      on_groups(&w, std::size_t{1}, first_base);
      ++g0;
    }
    const std::size_t mid_end = keep_hi < G ? g1 - 1 : g1;
    if (g0 < mid_end)
      on_groups(groups + g0, mid_end - g0,
                start + static_cast<std::uint64_t>(g0) * G);
    if (keep_hi < G) {
      const std::uint32_t w =
          (groups[g1 - 1] & BitVectorOps::kLiteralMask) & ((1u << keep_hi) - 1u);
      on_groups(&w, std::size_t{1}, last_base);
    }
  };

  const std::span<const std::uint32_t> words = BitVectorOps::words(v);
  const std::size_t nwords = words.size();
  std::uint64_t pos = 0;
  std::size_t i = 0;
  while (i < nwords && pos < end) {
    const std::uint32_t w = words[i];
    if (w & BitVectorOps::kFillFlag) {
      const std::uint64_t run =
          static_cast<std::uint64_t>(w & BitVectorOps::kCountMask) * G;
      if (w & BitVectorOps::kFillValueBit) {
        const std::uint64_t lo = std::max(pos, begin);
        const std::uint64_t hi = std::min(pos + run, end);
        if (lo < hi) on_ones(lo, hi);
      }
      pos += run;
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < nwords && !(words[j] & BitVectorOps::kFillFlag)) ++j;
    emit_groups(words.data() + i, j - i, pos);
    pos += static_cast<std::uint64_t>(j - i) * G;
    i = j;
  }
  if (pos < end && BitVectorOps::active_bits(v) > 0) {
    // The tail is one zero-padded literal group; rows past size() are zero
    // and end <= size(), so the window mask covers all clipping.
    const std::uint32_t tail = BitVectorOps::active(v);
    if (tail != 0) emit_groups(&tail, 1, pos);
  }
}

/// Row-batch capacity of the gather kernels below (plus position-kernel
/// overstore slack). Sized so per-batch costs (kernel-entry gate checks,
/// flush closures, vector-loop warmup) amortize to noise: at 1024 rows they
/// measured ~15% of gather_hist2d at sel=0.1 (≈1.5 us per batch across 390
/// batches); 8192-row batches cut that by 8x while the buffer (32 KiB)
/// still sits comfortably in L1/L2.
constexpr std::size_t kGatherBatch = 8192;

/// Literal runs at most this long decode inline (scalar ctz) instead of
/// through the dispatch table: the sparse half of the selectivity gate.
/// Low-selectivity bitmaps are isolated literal groups between fills, where
/// an indirect kernel call per one-group run would dominate the handful of
/// set bits; dense regions arrive as long runs and still take the table
/// (at 10% selectivity the mean literal run is already ~25 groups, so runs
/// this short only occur in the regime where scalar decode wins anyway).
constexpr std::size_t kInlineRunGroups = 4;

/// Density half of the selectivity gate: long literal runs can still be
/// nearly empty (at 1% selectivity the typical run is ~12 groups carrying
/// ~0.3 set bits each). The vector position kernels pay fixed work per
/// nonzero group while scalar ctz pays per set bit, so sample the head of
/// the run and require ~1.5 bits per group before taking the vector path.
/// The sampled words are about to be decoded either way, so the popcounts
/// are reads the decode would do anyway.
bool run_is_sparse(const std::uint32_t* groups, std::size_t ng) {
  // Sample up to 16 groups spread evenly across the run. Sampling only the
  // head mis-classifies long runs whose first words happen to be locally
  // dense, and a wrong "dense" verdict sends the whole run down the vector
  // path at densities where the scalar ctz loop wins.
  const std::size_t sample = std::min<std::size_t>(ng, 16);
  const std::size_t stride = ng / sample;
  std::uint32_t bits = 0;
  for (std::size_t g = 0; g < sample; ++g)
    bits += static_cast<std::uint32_t>(
        std::popcount(groups[g * stride] & BitVectorOps::kLiteralMask));
  if (bits * 2 < sample * 3) return true;
  // Short runs are counted exactly (stride 1). The vector kernel's fixed
  // entry cost needs a couple dozen set bits to amortize regardless of
  // density, so a tiny run that squeaked past the density check on a
  // handful of absolute bits still decodes scalar.
  return sample == ng && bits < 24;
}

std::size_t positions_inline(const std::uint32_t* groups, std::size_t ng,
                             std::uint64_t base, std::uint32_t* out) {
  std::size_t n = 0;
  for (std::size_t g = 0; g < ng; ++g) {
    std::uint32_t bits = groups[g] & BitVectorOps::kLiteralMask;
    const auto gbase =
        static_cast<std::uint32_t>(base + BitVectorOps::kGroupBits * g);
    while (bits) {
      out[n++] = gbase + static_cast<std::uint32_t>(std::countr_zero(bits));
      bits &= bits - 1;
    }
  }
  return n;
}

/// Whole-call compression gate shared by the gather kernels, mirroring the
/// one in to_positions_blocked: a strongly compressed full-range bitmap
/// (more than ~8 groups covered per stored word) is isolated literals
/// between zero fills, and walk_content's run-detection scan plus the
/// per-run density gates cost several ns per emitted run — which at one
/// set bit per run dominates the actual gather work. Decode word-at-a-time
/// instead; one-fills still route through on_ones so an all-ones bitmap
/// (also just a few words) keeps its dense kernel. Returns false when the
/// bitmap is literal-dominated and the caller should take the run walk.
template <typename OnOnes, typename OnLiteral>
bool sparse_full_walk(const BitVector& v, OnOnes&& on_ones,
                      OnLiteral&& on_literal) {
  const std::span<const std::uint32_t> words = BitVectorOps::words(v);
  const std::uint64_t total_groups =
      (v.size() + BitVectorOps::kGroupBits - 1) / BitVectorOps::kGroupBits;
  if (words.size() * 8 >= total_groups) return false;
  std::uint64_t pos = 0;
  for (const std::uint32_t w : words) {
    if (w & BitVectorOps::kFillFlag) {
      const std::uint64_t run =
          static_cast<std::uint64_t>(w & BitVectorOps::kCountMask) *
          BitVectorOps::kGroupBits;
      if (w & BitVectorOps::kFillValueBit)
        on_ones(pos, std::min(pos + run, v.size()));
      pos += run;
    } else {
      on_literal(w, pos);
      pos += BitVectorOps::kGroupBits;
    }
  }
  if (BitVectorOps::active_bits(v) > 0) {
    const std::uint32_t tail = BitVectorOps::active(v);
    if (tail != 0) on_literal(tail, pos);
  }
  return true;
}

}  // namespace

void to_positions_blocked(const BitVector& v, std::vector<std::uint32_t>& out) {
  const simd::Ops& ops = simd::ops();
  // Dispatch counting records whether any vector-table kernel actually ran,
  // not merely which table was active at entry: the density gates below can
  // route an entire call through the scalar decode, and the --stats counters
  // (and the bench's same-code detection) want the route taken, not the
  // route available.
  bool used_vector = false;
  std::size_t n = 0;
  // Geometric growth with the position-kernel slack on top; trimmed at the
  // end once the exact count is known. vector::resize value-initializes the
  // grown region, so the incoming size is kept as a high-water mark (not
  // cleared) and padded by one maximal emit: a reused buffer then never
  // resizes mid-walk, where re-zeroing through the doubling sequence on
  // every call would cost more than the decode at low selectivity.
  const auto ensure = [&](std::uint64_t extra) {
    const std::size_t need =
        n + static_cast<std::size_t>(extra) + simd::kPositionSlack;
    if (out.size() < need) out.resize(std::max(need, out.size() * 2));
  };
  out.resize(out.size() +
             2 * (BitVectorOps::kGroupBits + simd::kPositionSlack));
  // Selectivity gate: a strongly compressed bitmap (few words relative to the
  // groups it covers) is isolated literals between zero fills. For that shape
  // the run-detection scan and per-run emit of walk_content cost more than the
  // handful of set bits are worth, so decode word-at-a-time with scalar ctz.
  // Dense bitmaps (literal-dominated) keep the run walk + vector kernels.
  const std::span<const std::uint32_t> words = BitVectorOps::words(v);
  const std::uint64_t total_groups =
      (v.size() + BitVectorOps::kGroupBits - 1) / BitVectorOps::kGroupBits;
  if (words.size() * 8 < total_groups) {
    // The decode loop runs a store per set bit and a capacity check per
    // word, so both work on raw pointers: `dst` is the write cursor and
    // `lim` the highest address a single literal may start writing at.
    // Re-derived only on the (rare) grow, which keeps the vector's
    // begin/size loads out of the hot loop.
    std::uint32_t* dst = out.data() + n;
    const std::uint32_t* lim = out.data() + out.size() -
                               simd::kPositionSlack - BitVectorOps::kGroupBits;
    const auto grow = [&](std::uint64_t extra) {
      n = static_cast<std::size_t>(dst - out.data());
      ensure(extra);
      dst = out.data() + n;
      lim = out.data() + out.size() - simd::kPositionSlack -
            BitVectorOps::kGroupBits;
    };
    std::uint64_t pos = 0;
    for (const std::uint32_t w : words) {
      if (w & BitVectorOps::kFillFlag) {
        const std::uint64_t run =
            static_cast<std::uint64_t>(w & BitVectorOps::kCountMask) *
            BitVectorOps::kGroupBits;
        if (w & BitVectorOps::kFillValueBit) {
          grow(run);
          auto row = static_cast<std::uint32_t>(pos);
          for (std::uint64_t k = 0; k < run; ++k) *dst++ = row++;
        }
        pos += run;
      } else {
        if (dst > lim) grow(BitVectorOps::kGroupBits);
        std::uint32_t bits = w;
        while (bits) {
          *dst++ = static_cast<std::uint32_t>(pos) +
                   static_cast<std::uint32_t>(std::countr_zero(bits));
          bits &= bits - 1;
        }
        pos += BitVectorOps::kGroupBits;
      }
    }
    if (std::uint32_t bits =
            BitVectorOps::active_bits(v) > 0 ? BitVectorOps::active(v) : 0;
        bits != 0) {
      if (dst > lim) grow(BitVectorOps::kGroupBits);
      while (bits) {
        *dst++ = static_cast<std::uint32_t>(pos) +
                 static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
      }
    }
    out.resize(static_cast<std::size_t>(dst - out.data()));
    simd::count_positions_call(false);
    return;
  }
  walk_content<true>(
      v, 0, v.size(),
      [&](std::uint64_t lo, std::uint64_t hi) {
        ensure(hi - lo);
        auto row = static_cast<std::uint32_t>(lo);
        for (std::uint64_t k = lo; k < hi; ++k) out[n++] = row++;
      },
      [&](const std::uint32_t* groups, std::size_t ng, std::uint64_t base) {
        ensure(static_cast<std::uint64_t>(ng) * BitVectorOps::kGroupBits);
        if (ng <= kInlineRunGroups || run_is_sparse(groups, ng)) {
          n += positions_inline(groups, ng, base, out.data() + n);
        } else {
          used_vector = ops.isa != simd::Isa::kScalar;
          n += ops.positions_from_groups(groups, ng, base, out.data() + n);
        }
      });
  out.resize(n);
  simd::count_positions_call(used_vector);
}

void gather_hist1d(const BitVector& v, std::uint64_t begin, std::uint64_t end,
                   const double* values, const Bins::Locator& loc,
                   std::uint64_t* counts) {
  const simd::Ops& ops = simd::ops();
  // See to_positions_blocked: vector use is recorded per route taken, not
  // per table active at entry.
  const bool vt = ops.isa != simd::Isa::kScalar;
  bool used_vector = false;
  const simd::LocatorView L = loc.view();
  std::array<std::uint32_t, kGatherBatch + simd::kPositionSlack> rows;
  std::size_t n = 0;
  // Sparse or tiny batches dispatch to the scalar table directly: the
  // vector kernels would route them to their internal fallback anyway, and
  // the baseline-compiled scalar body is the tuned one (vector-TU copies
  // of it compile under wider target flags).
  const simd::Ops& sco = simd::ops_for(simd::Isa::kScalar);
  const auto flush = [&] {
    if (n > 0) {
      const bool vec =
          n >= simd::kMinVectorRows && !simd::rows_are_sparse(rows.data(), n);
      used_vector |= vec && vt;
      (vec ? ops : sco).hist1d_rows(rows.data(), n, values, L, counts);
      n = 0;
    }
  };
  const auto on_ones = [&](std::uint64_t lo, std::uint64_t hi) {
    flush();
    // One-fill: the rows are contiguous — no index materialization.
    used_vector |= vt;
    ops.hist1d_dense(values + lo, static_cast<std::size_t>(hi - lo), L, counts);
  };
  const auto on_groups = [&](const std::uint32_t* groups, std::size_t ng,
                             std::uint64_t base) {
    std::size_t g = 0;
    while (g < ng) {
      const std::size_t take =
          std::min(ng - g, (kGatherBatch - n) / BitVectorOps::kGroupBits);
      if (take == 0) {
        flush();
        continue;
      }
      const std::uint64_t b =
          base + static_cast<std::uint64_t>(g) * BitVectorOps::kGroupBits;
      if (take <= kInlineRunGroups || run_is_sparse(groups + g, take)) {
        n += positions_inline(groups + g, take, b, rows.data() + n);
      } else {
        used_vector |= vt;
        n += ops.positions_from_groups(groups + g, take, b, rows.data() + n);
      }
      g += take;
    }
  };
  if (begin == 0 && end >= v.size()) {
    if (!sparse_full_walk(v, on_ones,
                          [&](std::uint32_t w, std::uint64_t base) {
                            if (n + BitVectorOps::kGroupBits > kGatherBatch)
                              flush();
                            n += positions_inline(&w, 1, base, rows.data() + n);
                          }))
      walk_content<true>(v, 0, v.size(), on_ones, on_groups);
  } else {
    walk_content<false>(v, begin, end, on_ones, on_groups);
  }
  flush();
  simd::count_hist1d_call(used_vector);
}

void gather_hist2d(const BitVector& v, std::uint64_t begin, std::uint64_t end,
                   const double* xs, const double* ys,
                   const Bins::Locator& xloc, const Bins::Locator& yloc,
                   std::size_t ny, std::uint64_t* counts) {
  const simd::Ops& ops = simd::ops();
  // See to_positions_blocked: vector use is recorded per route taken, not
  // per table active at entry.
  const bool vt = ops.isa != simd::Isa::kScalar;
  bool used_vector = false;
  const simd::LocatorView Lx = xloc.view();
  const simd::LocatorView Ly = yloc.view();
  std::array<std::uint32_t, kGatherBatch + simd::kPositionSlack> rows;
  std::size_t n = 0;
  // See gather_hist1d: sparse batches go straight to the scalar table.
  const simd::Ops& sco = simd::ops_for(simd::Isa::kScalar);
  const auto flush = [&] {
    if (n > 0) {
      const bool vec =
          n >= simd::kMinVectorRows && !simd::rows_are_sparse(rows.data(), n);
      used_vector |= vec && vt;
      (vec ? ops : sco).hist2d_rows(rows.data(), n, xs, ys, Lx, Ly, ny, counts);
      n = 0;
    }
  };
  const auto on_ones = [&](std::uint64_t lo, std::uint64_t hi) {
    flush();
    used_vector |= vt;
    ops.hist2d_dense(xs + lo, ys + lo, static_cast<std::size_t>(hi - lo), Lx,
                     Ly, ny, counts);
  };
  const auto on_groups = [&](const std::uint32_t* groups, std::size_t ng,
                             std::uint64_t base) {
    std::size_t g = 0;
    while (g < ng) {
      const std::size_t take =
          std::min(ng - g, (kGatherBatch - n) / BitVectorOps::kGroupBits);
      if (take == 0) {
        flush();
        continue;
      }
      const std::uint64_t b =
          base + static_cast<std::uint64_t>(g) * BitVectorOps::kGroupBits;
      if (take <= kInlineRunGroups || run_is_sparse(groups + g, take)) {
        n += positions_inline(groups + g, take, b, rows.data() + n);
      } else {
        used_vector |= vt;
        n += ops.positions_from_groups(groups + g, take, b, rows.data() + n);
      }
      g += take;
    }
  };
  if (begin == 0 && end >= v.size()) {
    if (!sparse_full_walk(v, on_ones,
                          [&](std::uint32_t w, std::uint64_t base) {
                            if (n + BitVectorOps::kGroupBits > kGatherBatch)
                              flush();
                            n += positions_inline(&w, 1, base, rows.data() + n);
                          }))
      walk_content<true>(v, 0, v.size(), on_ones, on_groups);
  } else {
    walk_content<false>(v, begin, end, on_ones, on_groups);
  }
  flush();
  simd::count_hist2d_call(used_vector);
}

std::uint64_t count_words(const BitVector& v) {
  std::uint64_t total = 0;
  for (const std::uint32_t w : BitVectorOps::words(v)) {
    if (w & BitVectorOps::kFillFlag) {
      if (w & BitVectorOps::kFillValueBit)
        total += static_cast<std::uint64_t>(w & BitVectorOps::kCountMask) *
                 BitVectorOps::kGroupBits;
    } else {
      total += static_cast<std::uint32_t>(std::popcount(w));
    }
  }
  total += static_cast<std::uint32_t>(std::popcount(BitVectorOps::active(v)));
  return total;
}

// ------------------------------------------------------------------------
// K-way OR
// ------------------------------------------------------------------------

namespace {

/// Decoder over one operand's compressed words that only surfaces *content*
/// — literal groups and one-fills — skipping zero fills arithmetically. The
/// k-way OR never needs to look at an operand between its set regions, so
/// merging k sparse bin bitmaps costs O(content words * log k), not
/// O(groups * k): range probes OR hundreds of mostly-empty per-bin bitmaps.
struct ContentCursor {
  std::span<const std::uint32_t> words;
  std::uint32_t active = 0;
  std::uint32_t active_bits = 0;
  std::size_t idx = 0;
  bool tail_done = false;

  std::uint64_t pos = 0;         // group index where the current content starts
  std::uint64_t run_groups = 0;  // content length in groups (literal = 1)
  bool is_one_fill = false;
  std::uint32_t literal = 0;  // valid when !is_one_fill
  bool exhausted = false;

  explicit ContentCursor(const BitVector& v)
      : words(BitVectorOps::words(v)),
        active(BitVectorOps::active(v)),
        active_bits(BitVectorOps::active_bits(v)) {
    next_content();
  }

  /// Advance past the current content to the next literal / one-fill.
  void next_content() {
    pos += run_groups;
    run_groups = 0;
    for (;;) {
      if (idx < words.size()) {
        const std::uint32_t w = words[idx++];
        if (w & BitVectorOps::kFillFlag) {
          const std::uint64_t g = w & BitVectorOps::kCountMask;
          if (w & BitVectorOps::kFillValueBit) {
            is_one_fill = true;
            run_groups = g;
            return;
          }
          pos += g;  // zero fill: free skip
          continue;
        }
        is_one_fill = false;
        literal = w;
        run_groups = 1;
        return;
      }
      if (!tail_done && active_bits > 0) {
        tail_done = true;
        if (active != 0) {
          is_one_fill = false;
          literal = active;  // zero-padded to a whole group
          run_groups = 1;
          return;
        }
        pos += 1;
        continue;
      }
      exhausted = true;
      return;
    }
  }

  /// Ensure the current content starts at group >= @p group (consuming any
  /// part of it the output has already covered).
  void skip_to(std::uint64_t group) {
    while (!exhausted && pos + run_groups <= group) next_content();
    if (!exhausted && pos < group) {
      // Only a one-fill can straddle (literals span one group).
      run_groups -= group - pos;
      pos = group;
    }
  }
};

}  // namespace

namespace {

/// Dense-accumulator OR: scatter every operand's content into an
/// uncompressed per-group uint32 array, then recompress once. O(total
/// content words + groups) with no per-group coordination — the winner when
/// the operands' combined content is dense relative to the output range
/// (e.g. a threshold query ORing hundreds of well-filled bin bitmaps).
BitVector or_many_dense(std::span<const BitVector* const> operands,
                        std::uint64_t target) {
  const std::uint64_t full_groups = target / BitVectorOps::kGroupBits;
  const auto tail =
      static_cast<std::uint32_t>(target - full_groups * BitVectorOps::kGroupBits);
  std::vector<std::uint32_t> acc(full_groups + (tail > 0 ? 1 : 0), 0);
  for (const BitVector* v : operands) {
    std::size_t g = 0;
    for (const std::uint32_t w : BitVectorOps::words(*v)) {
      if (w & BitVectorOps::kFillFlag) {
        const std::uint64_t run = w & BitVectorOps::kCountMask;
        if (w & BitVectorOps::kFillValueBit)
          std::fill(acc.begin() + static_cast<std::ptrdiff_t>(g),
                    acc.begin() + static_cast<std::ptrdiff_t>(
                                      std::min<std::uint64_t>(g + run, acc.size())),
                    BitVectorOps::kLiteralMask);
        g += run;
      } else {
        acc[g++] |= w;
      }
    }
    if (BitVectorOps::active_bits(*v) > 0 && g < acc.size())
      acc[g] |= BitVectorOps::active(*v);
  }
  BitVector out;
  std::size_t g = 0;
  while (g < full_groups) {
    const std::uint32_t w = acc[g];
    if (w == 0 || w == BitVectorOps::kLiteralMask) {
      std::size_t e = g + 1;
      while (e < full_groups && acc[e] == w) ++e;
      BitVectorOps::append_fill(out, w != 0, e - g);
      g = e;
    } else {
      BitVectorOps::append_group(out, w);
      ++g;
    }
  }
  BitVectorOps::set_nbits(out, full_groups * BitVectorOps::kGroupBits);
  if (tail > 0) {
    BitVectorOps::set_tail(out, acc[full_groups] & ((1u << tail) - 1u), tail);
    BitVectorOps::set_nbits(out, target);
  }
  return out;
}

/// Scratch ceiling for the dense accumulator (groups -> 4 bytes each).
constexpr std::uint64_t kMaxDenseGroups = 1ull << 22;  // 16 MiB scratch

}  // namespace

BitVector or_many_kway(std::span<const BitVector* const> operands,
                       std::uint64_t nbits) {
  std::uint64_t target = nbits;
  std::uint64_t total_words = 0;
  for (const BitVector* v : operands) {
    target = std::max(target, v->size());
    total_words += v->word_count();
  }
  if (operands.empty()) return BitVector::zeros(target);
  if (operands.size() == 1) {
    BitVector out = *operands[0];
    if (out.size() < target) out.append_run(false, target - out.size());
    return out;
  }
  const std::uint64_t full_groups = target / BitVectorOps::kGroupBits;
  // Dense accumulation when the combined content is a meaningful fraction
  // of the range (total_words over-counts content by including fill words —
  // an acceptable bias toward the dense path, whose worst case is mild);
  // heap merge otherwise (and always for ranges too big to scatter into).
  if (full_groups <= kMaxDenseGroups && total_words >= full_groups / 8)
    return or_many_dense(operands, target);
  std::vector<ContentCursor> cursors;
  cursors.reserve(operands.size());
  for (const BitVector* v : operands) cursors.emplace_back(*v);

  // Min-heap of cursor indices ordered by content position.
  std::vector<std::size_t> heap;
  heap.reserve(cursors.size());
  const auto by_pos = [&](std::size_t a, std::size_t b) {
    return cursors[a].pos > cursors[b].pos;  // min-heap
  };
  for (std::size_t i = 0; i < cursors.size(); ++i)
    if (!cursors[i].exhausted) heap.push_back(i);
  std::make_heap(heap.begin(), heap.end(), by_pos);
  const auto pop_min = [&] {
    std::pop_heap(heap.begin(), heap.end(), by_pos);
    const std::size_t i = heap.back();
    heap.pop_back();
    return i;
  };
  const auto push = [&](std::size_t i) {
    heap.push_back(i);
    std::push_heap(heap.begin(), heap.end(), by_pos);
  };

  BitVector out;
  std::uint64_t done = 0;
  while (!heap.empty() && done < full_groups) {
    const std::size_t i = pop_min();
    ContentCursor& c = cursors[i];
    if (c.pos >= full_groups) break;  // heap min: every cursor is past the end
    if (c.pos < done) {
      // Content already covered by an emitted one-fill: fast-forward.
      c.skip_to(done);
      if (!c.exhausted) push(i);
      continue;
    }
    if (c.pos > done) {
      // Nothing has content before c.pos: the gap is all zeros.
      BitVectorOps::append_fill(out, false, c.pos - done);
      done = c.pos;
    }
    if (c.is_one_fill) {
      const std::uint64_t g = std::min(c.run_groups, full_groups - done);
      BitVectorOps::append_fill(out, true, g);
      done += g;
      c.skip_to(done);
      if (!c.exhausted) push(i);
      continue;
    }
    // Literal group at `done`: OR in every other cursor with content here.
    std::uint32_t w = c.literal;
    c.skip_to(done + 1);
    while (!heap.empty() && cursors[heap.front()].pos == done) {
      const std::size_t j = pop_min();
      ContentCursor& d = cursors[j];
      // A one-fill starting here covers this group entirely; its remainder
      // (starting at done + 1) is emitted by later heap pops.
      w |= d.is_one_fill ? BitVectorOps::kLiteralMask : d.literal;
      d.skip_to(done + 1);
      if (!d.exhausted) push(j);
    }
    BitVectorOps::append_group(out, w & BitVectorOps::kLiteralMask);
    ++done;
    if (!c.exhausted) push(i);
  }
  if (done < full_groups)
    BitVectorOps::append_fill(out, false, full_groups - done);
  BitVectorOps::set_nbits(out, full_groups * BitVectorOps::kGroupBits);
  const auto tail =
      static_cast<std::uint32_t>(target - full_groups * BitVectorOps::kGroupBits);
  if (tail > 0) {
    // The zero-padded tail group: OR of each operand's group at full_groups.
    std::uint32_t w = 0;
    for (ContentCursor& c : cursors) {
      c.skip_to(full_groups);
      if (!c.exhausted && c.pos == full_groups)
        w |= c.is_one_fill ? BitVectorOps::kLiteralMask : c.literal;
    }
    BitVectorOps::set_tail(out, w & ((1u << tail) - 1u), tail);
    BitVectorOps::set_nbits(out, target);
  }
  return out;
}

// ------------------------------------------------------------------------
// Sharded tally
// ------------------------------------------------------------------------

void sharded_tally(std::uint64_t nrows, std::size_t ncounts,
                   std::uint64_t* counts,
                   const std::function<void(std::uint64_t, std::uint64_t,
                                            std::uint64_t*)>& fill,
                   std::size_t nshards) {
  nshards = std::min<std::uint64_t>(nshards, nrows);
  if (nshards <= 1) {
    fill(0, nrows, counts);
    return;
  }
  std::vector<std::vector<std::uint64_t>> partials(
      nshards, std::vector<std::uint64_t>(ncounts, 0));
  par::ThreadPool::global().parallel_for(
      nshards, nshards, [&](std::size_t s) {
        const std::uint64_t begin = nrows * s / nshards;
        const std::uint64_t end = nrows * (s + 1) / nshards;
        fill(begin, end, partials[s].data());
      });
  for (const std::vector<std::uint64_t>& partial : partials)
    for (std::size_t i = 0; i < ncounts; ++i) counts[i] += partial[i];
}

void sharded_tally(std::uint64_t nrows, std::size_t ncounts,
                   std::uint64_t* counts,
                   const std::function<void(std::uint64_t, std::uint64_t,
                                            std::uint64_t*)>& fill) {
  // Inside a VirtualCluster task (or any SerialSection) fan-out is
  // forbidden: per-task timings feed the makespan model.
  if (par::SerialSection::active()) {
    fill(0, nrows, counts);
    return;
  }
  const std::size_t workers = par::ThreadPool::global().size() + 1;
  // Sharding pays an O(shards * ncounts) merge: only worth it when the row
  // count dominates both the bin count and the per-shard setup. The partial
  // arrays are scratch outside the io::MemoryBudget, so cap their total at
  // 32 MiB — on many-core hosts with big 2D bin grids this trims the shard
  // count instead of letting the transient burst blow past the configured
  // out-of-core ceiling.
  constexpr std::uint64_t kMaxScratchBytes = std::uint64_t{32} << 20;
  const std::uint64_t scratch_per_shard =
      static_cast<std::uint64_t>(ncounts) * sizeof(std::uint64_t);
  const std::size_t max_shards_by_mem = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, kMaxScratchBytes / std::max<std::uint64_t>(
                                                        1, scratch_per_shard)));
  const bool big = nrows >= (std::uint64_t{1} << 17) &&
                   nrows >= static_cast<std::uint64_t>(ncounts) * 8;
  const std::size_t nshards = std::min(workers, max_shards_by_mem);
  sharded_tally(nrows, ncounts, counts, fill, (big && nshards > 1) ? nshards : 1);
}

// ------------------------------------------------------------------------
// Scalar references (differential-test twins; do not optimize)
// ------------------------------------------------------------------------

namespace ref {

BitVector or_many_pairwise(std::span<const BitVector* const> operands,
                           std::uint64_t nbits) {
  if (operands.empty()) return BitVector::zeros(nbits);
  if (operands.size() == 1) {
    BitVector out = *operands[0];
    if (out.size() < nbits) out.append_run(false, nbits - out.size());
    return out;
  }
  std::vector<BitVector> level;
  level.reserve((operands.size() + 1) / 2);
  for (std::size_t i = 0; i + 1 < operands.size(); i += 2)
    level.push_back(*operands[i] | *operands[i + 1]);
  if (operands.size() % 2 == 1) level.push_back(*operands.back());
  while (level.size() > 1) {
    std::vector<BitVector> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(level[i] | level[i + 1]);
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  BitVector out = std::move(level.front());
  if (out.size() < nbits) out.append_run(false, nbits - out.size());
  return out;
}

}  // namespace ref

}  // namespace qdv::kern
