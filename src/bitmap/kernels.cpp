#include "bitmap/kernels.hpp"

#include <algorithm>

#include "parallel/thread_pool.hpp"

namespace qdv::kern {

// ------------------------------------------------------------------------
// DenseBlockCursor
// ------------------------------------------------------------------------

DenseBlockCursor::DenseBlockCursor(const BitVector& v, std::uint64_t begin,
                                   std::uint64_t end)
    : words_(BitVectorOps::words(v)),
      active_(BitVectorOps::active(v)),
      active_bits_(BitVectorOps::active_bits(v)),
      begin_(std::min(begin, v.size())),
      end_(std::min(end, v.size())) {
  if (begin_ >= end_) done_ = true;
  dense_base_ = begin_;
}

bool DenseBlockCursor::next(Block& out) {
  for (;;) {
    if (have_pending_run_) {
      // Flush the dense buffer first so blocks come out in row order.
      if (nwords_ > 0 || accbits_ > 0) {
        emit_dense(out);
        return true;
      }
      out.base = pending_base_;
      out.nbits = pending_bits_;
      out.is_run = true;
      out.value = pending_value_;
      out.words = nullptr;
      have_pending_run_ = false;
      dense_base_ = pending_base_ + pending_bits_;
      return true;
    }
    if (done_) {
      if (nwords_ > 0 || accbits_ > 0) {
        emit_dense(out);
        return true;
      }
      return false;
    }
    if (nwords_ >= kBufWords) {
      emit_dense(out);
      return true;
    }
    // Hot path: consecutive literal groups fully inside the window need no
    // clipping and no per-word dispatch — this is the shape of every
    // moderately-selective bitmap between its fills.
    if (pos_ >= begin_) {
      while (idx_ < words_.size() && nwords_ < kBufWords &&
             pos_ + BitVectorOps::kGroupBits <= end_) {
        const std::uint32_t w = words_[idx_];
        if (w & BitVectorOps::kFillFlag) break;
        ++idx_;
        if (nwords_ == 0 && accbits_ == 0) dense_base_ = pos_;
        pos_ += BitVectorOps::kGroupBits;
        push_bits(w, BitVectorOps::kGroupBits);
      }
      if (nwords_ >= kBufWords) {
        emit_dense(out);
        return true;
      }
    }
    step();
  }
}

void DenseBlockCursor::step() {
  if (pos_ >= end_) {
    done_ = true;
    return;
  }
  if (idx_ < words_.size()) {
    const std::uint32_t w = words_[idx_++];
    if (w & BitVectorOps::kFillFlag) {
      handle_run((w & BitVectorOps::kFillValueBit) != 0,
                 static_cast<std::uint64_t>(w & BitVectorOps::kCountMask) *
                     BitVectorOps::kGroupBits);
    } else {
      handle_literal(w, BitVectorOps::kGroupBits);
    }
    return;
  }
  if (!tail_done_ && active_bits_ > 0) {
    tail_done_ = true;
    handle_literal(active_, active_bits_);
    return;
  }
  done_ = true;
}

void DenseBlockCursor::handle_run(bool value, std::uint64_t run_bits) {
  const std::uint64_t start = pos_;
  pos_ += run_bits;
  const std::uint64_t lo = std::max(start, begin_);
  const std::uint64_t hi = std::min(pos_, end_);
  if (lo >= hi) return;  // no overlap with the row window
  const std::uint64_t n = hi - lo;
  if (n >= (value ? kRunThresholdBits : kZeroRunThresholdBits)) {
    have_pending_run_ = true;
    pending_value_ = value;
    pending_base_ = lo;
    pending_bits_ = n;
    return;
  }
  // Short fill: absorb into the dense buffer (contiguous with it by
  // construction — either the buffer is empty or it ends exactly at lo).
  if (nwords_ == 0 && accbits_ == 0) dense_base_ = lo;
  if (value)
    push_ones(n);
  else
    push_zeros(n);
}

void DenseBlockCursor::handle_literal(std::uint32_t literal, std::uint32_t nbits) {
  const std::uint64_t start = pos_;
  pos_ += nbits;
  if (pos_ <= begin_ || start >= end_) return;  // fully outside the window
  std::uint32_t w = literal;
  // Mask window edges; the group itself stays whole, so dense blocks keep
  // 31-bit-group alignment and the masked bits read as zeros.
  if (start < begin_)
    w &= ~0u << static_cast<std::uint32_t>(begin_ - start);
  if (pos_ > end_)
    w &= (1u << static_cast<std::uint32_t>(end_ - start)) - 1u;
  if (nwords_ == 0 && accbits_ == 0) dense_base_ = start;
  push_bits(w, nbits);
}

void DenseBlockCursor::emit_dense(Block& out) {
  std::size_t nw = nwords_;
  const std::uint64_t nbits =
      static_cast<std::uint64_t>(nwords_) * 64 + accbits_;
  if (accbits_ > 0) buf_[nw++] = acc_;
  out.base = dense_base_;
  out.nbits = nbits;
  out.is_run = false;
  out.value = false;
  out.words = buf_.data();
  dense_base_ += nbits;
  nwords_ = 0;
  acc_ = 0;
  accbits_ = 0;
}

void DenseBlockCursor::push_bits(std::uint64_t bits, std::uint32_t n) {
  acc_ |= bits << accbits_;
  const std::uint32_t total = accbits_ + n;
  if (total >= 64) {
    buf_[nwords_++] = acc_;
    const std::uint32_t spilled = total - 64;
    acc_ = spilled > 0 ? (bits >> (n - spilled)) : 0;
    accbits_ = spilled;
  } else {
    accbits_ = total;
  }
}

void DenseBlockCursor::push_zeros(std::uint64_t n) {
  std::uint64_t total = accbits_ + n;
  if (total < 64) {
    accbits_ = static_cast<std::uint32_t>(total);
    return;
  }
  buf_[nwords_++] = acc_;
  acc_ = 0;
  total -= 64;
  while (total >= 64) {
    buf_[nwords_++] = 0;
    total -= 64;
  }
  accbits_ = static_cast<std::uint32_t>(total);
}

void DenseBlockCursor::push_ones(std::uint64_t n) {
  std::uint64_t total = accbits_ + n;
  acc_ |= ~std::uint64_t{0} << accbits_;
  if (total < 64) {
    acc_ &= (std::uint64_t{1} << total) - 1u;
    accbits_ = static_cast<std::uint32_t>(total);
    return;
  }
  buf_[nwords_++] = acc_;
  total -= 64;
  while (total >= 64) {
    buf_[nwords_++] = ~std::uint64_t{0};
    total -= 64;
  }
  acc_ = total > 0 ? (std::uint64_t{1} << total) - 1u : 0;
  accbits_ = static_cast<std::uint32_t>(total);
}

// ------------------------------------------------------------------------
// Position / count kernels
// ------------------------------------------------------------------------

void to_positions_blocked(const BitVector& v, std::vector<std::uint32_t>& out) {
  out.clear();
  if (prefer_scalar_decode(v)) {
    v.for_each_set([&out](std::uint64_t pos) {
      out.push_back(static_cast<std::uint32_t>(pos));
    });
    return;
  }
  DenseBlockCursor cursor(v);
  DenseBlockCursor::Block b;
  while (cursor.next(b)) {
    if (b.is_run) {
      if (!b.value) continue;
      // A run of ones appends consecutive rows in bulk.
      const std::size_t old = out.size();
      out.resize(old + static_cast<std::size_t>(b.nbits));
      auto row = static_cast<std::uint32_t>(b.base);
      for (std::size_t i = old; i < out.size(); ++i) out[i] = row++;
      continue;
    }
    const std::size_t nw = (static_cast<std::size_t>(b.nbits) + 63) / 64;
    for (std::size_t w = 0; w < nw; ++w) {
      std::uint64_t bits = b.words[w];
      const std::uint64_t base = b.base + static_cast<std::uint64_t>(w) * 64;
      while (bits) {
        out.push_back(static_cast<std::uint32_t>(
            base + static_cast<std::uint64_t>(std::countr_zero(bits))));
        bits &= bits - 1;
      }
    }
  }
}

std::uint64_t count_words(const BitVector& v) {
  std::uint64_t total = 0;
  for (const std::uint32_t w : BitVectorOps::words(v)) {
    if (w & BitVectorOps::kFillFlag) {
      if (w & BitVectorOps::kFillValueBit)
        total += static_cast<std::uint64_t>(w & BitVectorOps::kCountMask) *
                 BitVectorOps::kGroupBits;
    } else {
      total += static_cast<std::uint32_t>(std::popcount(w));
    }
  }
  total += static_cast<std::uint32_t>(std::popcount(BitVectorOps::active(v)));
  return total;
}

// ------------------------------------------------------------------------
// K-way OR
// ------------------------------------------------------------------------

namespace {

/// Decoder over one operand's compressed words that only surfaces *content*
/// — literal groups and one-fills — skipping zero fills arithmetically. The
/// k-way OR never needs to look at an operand between its set regions, so
/// merging k sparse bin bitmaps costs O(content words * log k), not
/// O(groups * k): range probes OR hundreds of mostly-empty per-bin bitmaps.
struct ContentCursor {
  std::span<const std::uint32_t> words;
  std::uint32_t active = 0;
  std::uint32_t active_bits = 0;
  std::size_t idx = 0;
  bool tail_done = false;

  std::uint64_t pos = 0;         // group index where the current content starts
  std::uint64_t run_groups = 0;  // content length in groups (literal = 1)
  bool is_one_fill = false;
  std::uint32_t literal = 0;  // valid when !is_one_fill
  bool exhausted = false;

  explicit ContentCursor(const BitVector& v)
      : words(BitVectorOps::words(v)),
        active(BitVectorOps::active(v)),
        active_bits(BitVectorOps::active_bits(v)) {
    next_content();
  }

  /// Advance past the current content to the next literal / one-fill.
  void next_content() {
    pos += run_groups;
    run_groups = 0;
    for (;;) {
      if (idx < words.size()) {
        const std::uint32_t w = words[idx++];
        if (w & BitVectorOps::kFillFlag) {
          const std::uint64_t g = w & BitVectorOps::kCountMask;
          if (w & BitVectorOps::kFillValueBit) {
            is_one_fill = true;
            run_groups = g;
            return;
          }
          pos += g;  // zero fill: free skip
          continue;
        }
        is_one_fill = false;
        literal = w;
        run_groups = 1;
        return;
      }
      if (!tail_done && active_bits > 0) {
        tail_done = true;
        if (active != 0) {
          is_one_fill = false;
          literal = active;  // zero-padded to a whole group
          run_groups = 1;
          return;
        }
        pos += 1;
        continue;
      }
      exhausted = true;
      return;
    }
  }

  /// Ensure the current content starts at group >= @p group (consuming any
  /// part of it the output has already covered).
  void skip_to(std::uint64_t group) {
    while (!exhausted && pos + run_groups <= group) next_content();
    if (!exhausted && pos < group) {
      // Only a one-fill can straddle (literals span one group).
      run_groups -= group - pos;
      pos = group;
    }
  }
};

}  // namespace

namespace {

/// Dense-accumulator OR: scatter every operand's content into an
/// uncompressed per-group uint32 array, then recompress once. O(total
/// content words + groups) with no per-group coordination — the winner when
/// the operands' combined content is dense relative to the output range
/// (e.g. a threshold query ORing hundreds of well-filled bin bitmaps).
BitVector or_many_dense(std::span<const BitVector* const> operands,
                        std::uint64_t target) {
  const std::uint64_t full_groups = target / BitVectorOps::kGroupBits;
  const auto tail =
      static_cast<std::uint32_t>(target - full_groups * BitVectorOps::kGroupBits);
  std::vector<std::uint32_t> acc(full_groups + (tail > 0 ? 1 : 0), 0);
  for (const BitVector* v : operands) {
    std::size_t g = 0;
    for (const std::uint32_t w : BitVectorOps::words(*v)) {
      if (w & BitVectorOps::kFillFlag) {
        const std::uint64_t run = w & BitVectorOps::kCountMask;
        if (w & BitVectorOps::kFillValueBit)
          std::fill(acc.begin() + static_cast<std::ptrdiff_t>(g),
                    acc.begin() + static_cast<std::ptrdiff_t>(
                                      std::min<std::uint64_t>(g + run, acc.size())),
                    BitVectorOps::kLiteralMask);
        g += run;
      } else {
        acc[g++] |= w;
      }
    }
    if (BitVectorOps::active_bits(*v) > 0 && g < acc.size())
      acc[g] |= BitVectorOps::active(*v);
  }
  BitVector out;
  std::size_t g = 0;
  while (g < full_groups) {
    const std::uint32_t w = acc[g];
    if (w == 0 || w == BitVectorOps::kLiteralMask) {
      std::size_t e = g + 1;
      while (e < full_groups && acc[e] == w) ++e;
      BitVectorOps::append_fill(out, w != 0, e - g);
      g = e;
    } else {
      BitVectorOps::append_group(out, w);
      ++g;
    }
  }
  BitVectorOps::set_nbits(out, full_groups * BitVectorOps::kGroupBits);
  if (tail > 0) {
    BitVectorOps::set_tail(out, acc[full_groups] & ((1u << tail) - 1u), tail);
    BitVectorOps::set_nbits(out, target);
  }
  return out;
}

/// Scratch ceiling for the dense accumulator (groups -> 4 bytes each).
constexpr std::uint64_t kMaxDenseGroups = 1ull << 22;  // 16 MiB scratch

}  // namespace

BitVector or_many_kway(std::span<const BitVector* const> operands,
                       std::uint64_t nbits) {
  std::uint64_t target = nbits;
  std::uint64_t total_words = 0;
  for (const BitVector* v : operands) {
    target = std::max(target, v->size());
    total_words += v->word_count();
  }
  if (operands.empty()) return BitVector::zeros(target);
  if (operands.size() == 1) {
    BitVector out = *operands[0];
    if (out.size() < target) out.append_run(false, target - out.size());
    return out;
  }
  const std::uint64_t full_groups = target / BitVectorOps::kGroupBits;
  // Dense accumulation when the combined content is a meaningful fraction
  // of the range (total_words over-counts content by including fill words —
  // an acceptable bias toward the dense path, whose worst case is mild);
  // heap merge otherwise (and always for ranges too big to scatter into).
  if (full_groups <= kMaxDenseGroups && total_words >= full_groups / 8)
    return or_many_dense(operands, target);
  std::vector<ContentCursor> cursors;
  cursors.reserve(operands.size());
  for (const BitVector* v : operands) cursors.emplace_back(*v);

  // Min-heap of cursor indices ordered by content position.
  std::vector<std::size_t> heap;
  heap.reserve(cursors.size());
  const auto by_pos = [&](std::size_t a, std::size_t b) {
    return cursors[a].pos > cursors[b].pos;  // min-heap
  };
  for (std::size_t i = 0; i < cursors.size(); ++i)
    if (!cursors[i].exhausted) heap.push_back(i);
  std::make_heap(heap.begin(), heap.end(), by_pos);
  const auto pop_min = [&] {
    std::pop_heap(heap.begin(), heap.end(), by_pos);
    const std::size_t i = heap.back();
    heap.pop_back();
    return i;
  };
  const auto push = [&](std::size_t i) {
    heap.push_back(i);
    std::push_heap(heap.begin(), heap.end(), by_pos);
  };

  BitVector out;
  std::uint64_t done = 0;
  while (!heap.empty() && done < full_groups) {
    const std::size_t i = pop_min();
    ContentCursor& c = cursors[i];
    if (c.pos >= full_groups) break;  // heap min: every cursor is past the end
    if (c.pos < done) {
      // Content already covered by an emitted one-fill: fast-forward.
      c.skip_to(done);
      if (!c.exhausted) push(i);
      continue;
    }
    if (c.pos > done) {
      // Nothing has content before c.pos: the gap is all zeros.
      BitVectorOps::append_fill(out, false, c.pos - done);
      done = c.pos;
    }
    if (c.is_one_fill) {
      const std::uint64_t g = std::min(c.run_groups, full_groups - done);
      BitVectorOps::append_fill(out, true, g);
      done += g;
      c.skip_to(done);
      if (!c.exhausted) push(i);
      continue;
    }
    // Literal group at `done`: OR in every other cursor with content here.
    std::uint32_t w = c.literal;
    c.skip_to(done + 1);
    while (!heap.empty() && cursors[heap.front()].pos == done) {
      const std::size_t j = pop_min();
      ContentCursor& d = cursors[j];
      // A one-fill starting here covers this group entirely; its remainder
      // (starting at done + 1) is emitted by later heap pops.
      w |= d.is_one_fill ? BitVectorOps::kLiteralMask : d.literal;
      d.skip_to(done + 1);
      if (!d.exhausted) push(j);
    }
    BitVectorOps::append_group(out, w & BitVectorOps::kLiteralMask);
    ++done;
    if (!c.exhausted) push(i);
  }
  if (done < full_groups)
    BitVectorOps::append_fill(out, false, full_groups - done);
  BitVectorOps::set_nbits(out, full_groups * BitVectorOps::kGroupBits);
  const auto tail =
      static_cast<std::uint32_t>(target - full_groups * BitVectorOps::kGroupBits);
  if (tail > 0) {
    // The zero-padded tail group: OR of each operand's group at full_groups.
    std::uint32_t w = 0;
    for (ContentCursor& c : cursors) {
      c.skip_to(full_groups);
      if (!c.exhausted && c.pos == full_groups)
        w |= c.is_one_fill ? BitVectorOps::kLiteralMask : c.literal;
    }
    BitVectorOps::set_tail(out, w & ((1u << tail) - 1u), tail);
    BitVectorOps::set_nbits(out, target);
  }
  return out;
}

// ------------------------------------------------------------------------
// Sharded tally
// ------------------------------------------------------------------------

void sharded_tally(std::uint64_t nrows, std::size_t ncounts,
                   std::uint64_t* counts,
                   const std::function<void(std::uint64_t, std::uint64_t,
                                            std::uint64_t*)>& fill,
                   std::size_t nshards) {
  nshards = std::min<std::uint64_t>(nshards, nrows);
  if (nshards <= 1) {
    fill(0, nrows, counts);
    return;
  }
  std::vector<std::vector<std::uint64_t>> partials(
      nshards, std::vector<std::uint64_t>(ncounts, 0));
  par::ThreadPool::global().parallel_for(
      nshards, nshards, [&](std::size_t s) {
        const std::uint64_t begin = nrows * s / nshards;
        const std::uint64_t end = nrows * (s + 1) / nshards;
        fill(begin, end, partials[s].data());
      });
  for (const std::vector<std::uint64_t>& partial : partials)
    for (std::size_t i = 0; i < ncounts; ++i) counts[i] += partial[i];
}

void sharded_tally(std::uint64_t nrows, std::size_t ncounts,
                   std::uint64_t* counts,
                   const std::function<void(std::uint64_t, std::uint64_t,
                                            std::uint64_t*)>& fill) {
  // Inside a VirtualCluster task (or any SerialSection) fan-out is
  // forbidden: per-task timings feed the makespan model.
  if (par::SerialSection::active()) {
    fill(0, nrows, counts);
    return;
  }
  const std::size_t workers = par::ThreadPool::global().size() + 1;
  // Sharding pays an O(shards * ncounts) merge: only worth it when the row
  // count dominates both the bin count and the per-shard setup. The partial
  // arrays are scratch outside the io::MemoryBudget, so cap their total at
  // 32 MiB — on many-core hosts with big 2D bin grids this trims the shard
  // count instead of letting the transient burst blow past the configured
  // out-of-core ceiling.
  constexpr std::uint64_t kMaxScratchBytes = std::uint64_t{32} << 20;
  const std::uint64_t scratch_per_shard =
      static_cast<std::uint64_t>(ncounts) * sizeof(std::uint64_t);
  const std::size_t max_shards_by_mem = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, kMaxScratchBytes / std::max<std::uint64_t>(
                                                        1, scratch_per_shard)));
  const bool big = nrows >= (std::uint64_t{1} << 17) &&
                   nrows >= static_cast<std::uint64_t>(ncounts) * 8;
  const std::size_t nshards = std::min(workers, max_shards_by_mem);
  sharded_tally(nrows, ncounts, counts, fill, (big && nshards > 1) ? nshards : 1);
}

// ------------------------------------------------------------------------
// Scalar references (differential-test twins; do not optimize)
// ------------------------------------------------------------------------

namespace ref {

BitVector or_many_pairwise(std::span<const BitVector* const> operands,
                           std::uint64_t nbits) {
  if (operands.empty()) return BitVector::zeros(nbits);
  if (operands.size() == 1) {
    BitVector out = *operands[0];
    if (out.size() < nbits) out.append_run(false, nbits - out.size());
    return out;
  }
  std::vector<BitVector> level;
  level.reserve((operands.size() + 1) / 2);
  for (std::size_t i = 0; i + 1 < operands.size(); i += 2)
    level.push_back(*operands[i] | *operands[i + 1]);
  if (operands.size() % 2 == 1) level.push_back(*operands.back());
  while (level.size() > 1) {
    std::vector<BitVector> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(level[i] | level[i + 1]);
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  BitVector out = std::move(level.front());
  if (out.size() < nbits) out.append_run(false, nbits - out.size());
  return out;
}

}  // namespace ref

}  // namespace qdv::kern
