#include "bitmap/histogram.hpp"

#include <algorithm>
#include <stdexcept>

#include "bitmap/kernels.hpp"
#include "bitmap/simd.hpp"
#include "io/timestep_table.hpp"

namespace qdv {

std::uint64_t Histogram1D::total() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : counts) sum += c;
  return sum;
}

std::uint64_t Histogram1D::max_count() const {
  return counts.empty() ? 0 : *std::max_element(counts.begin(), counts.end());
}

std::size_t Histogram1D::nonempty_bins() const {
  return static_cast<std::size_t>(
      std::count_if(counts.begin(), counts.end(),
                    [](std::uint64_t c) { return c != 0; }));
}

double Histogram2D::density(std::size_t ix, std::size_t iy) const {
  const double area = xbins.width(ix) * ybins.width(iy);
  if (area <= 0.0) return 0.0;
  return static_cast<double>(at(ix, iy)) / area;
}

std::uint64_t Histogram2D::total() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : counts) sum += c;
  return sum;
}

std::uint64_t Histogram2D::max_count() const {
  return counts.empty() ? 0 : *std::max_element(counts.begin(), counts.end());
}

std::size_t Histogram2D::nonempty_bins() const {
  return static_cast<std::size_t>(
      std::count_if(counts.begin(), counts.end(),
                    [](std::uint64_t c) { return c != 0; }));
}

Bins make_equal_weight_bins(const Histogram1D& fine, std::size_t nbins) {
  if (nbins == 0) throw std::invalid_argument("make_equal_weight_bins: nbins == 0");
  const std::uint64_t total = fine.total();
  const std::size_t nfine = fine.bins.num_bins();
  if (total == 0 || nfine <= nbins) return fine.bins;
  const double target = static_cast<double>(total) / static_cast<double>(nbins);
  std::vector<double> edges;
  edges.reserve(nbins + 1);
  edges.push_back(fine.bins.edges().front());
  std::uint64_t acc = 0;
  std::size_t emitted = 0;
  for (std::size_t i = 0; i < nfine; ++i) {
    acc += fine.counts[i];
    // Close the current merged bin once it reaches its share, keeping enough
    // fine bins in reserve for the remaining merged bins.
    const std::size_t remaining_fine = nfine - i - 1;
    const std::size_t remaining_merged = nbins - emitted - 1;
    if (remaining_merged == 0) break;
    if (static_cast<double>(acc) >=
            target * static_cast<double>(emitted + 1) - 0.5 ||
        remaining_fine <= remaining_merged) {
      if (fine.bins.edges()[i + 1] > edges.back()) {
        edges.push_back(fine.bins.edges()[i + 1]);
        ++emitted;
      }
    }
  }
  if (fine.bins.edges().back() > edges.back())
    edges.push_back(fine.bins.edges().back());
  if (edges.size() < 2) return fine.bins;
  return Bins(std::move(edges));
}

Bins make_adaptive_bins(double lo, double hi, std::span<const double> values,
                        std::size_t nbins) {
  const double safe_hi = hi > lo ? hi : lo + 1.0;
  const std::size_t oversample = std::clamp<std::size_t>(nbins * 8, 1024, 16384);
  Histogram1D fine;
  fine.bins = make_uniform_bins(lo, safe_hi, oversample);
  fine.counts.assign(oversample, 0);
  // The oversampling bins are uniform: the vectorized locate turns the
  // per-value search into one multiply + clamp across lanes.
  const Bins::Locator locate = fine.bins.locator();
  const simd::LocatorView view = locate.view();
  const simd::Ops& ops = simd::ops();
  simd::count_hist1d_call(ops.isa != simd::Isa::kScalar);
  kern::sharded_tally(
      values.size(), fine.counts.size(), fine.counts.data(),
      [&](std::uint64_t begin, std::uint64_t end, std::uint64_t* counts) {
        ops.hist1d_dense(values.data() + begin,
                         static_cast<std::size_t>(end - begin), view, counts);
      });
  return make_equal_weight_bins(fine, nbins);
}

Bins HistogramEngine::bins_for(const std::string& variable, std::size_t nbins,
                               BinningMode binning) const {
  const auto [lo, hi] = table_->domain(variable);
  if (binning == BinningMode::kUniform)
    return make_uniform_bins(lo, hi > lo ? hi : lo + 1.0, nbins);
  return make_adaptive_bins(lo, hi, table_->column(variable), nbins);
}

Histogram1D HistogramEngine::histogram1d(const std::string& variable,
                                         std::size_t nbins, const Query* condition,
                                         BinningMode binning) const {
  if (condition != nullptr) {
    // Two-step conditional evaluation: index answer first, then gather only
    // the matching records.
    return histogram1d(variable, nbins, table_->query(*condition, mode_), binning);
  }
  Histogram1D h;
  h.bins = bins_for(variable, nbins, binning);
  h.counts.assign(h.bins.num_bins(), 0);
  const std::span<const double> values = table_->column(variable);
  const Bins::Locator locate = h.bins.locator();
  const simd::LocatorView view = locate.view();
  const simd::Ops& ops = simd::ops();
  simd::count_hist1d_call(ops.isa != simd::Isa::kScalar);
  kern::sharded_tally(
      values.size(), h.counts.size(), h.counts.data(),
      [&](std::uint64_t begin, std::uint64_t end, std::uint64_t* counts) {
        ops.hist1d_dense(values.data() + begin,
                         static_cast<std::size_t>(end - begin), view, counts);
      });
  return h;
}

Histogram1D HistogramEngine::histogram1d(const std::string& variable,
                                         std::size_t nbins, const BitVector& rows,
                                         BinningMode binning) const {
  Histogram1D h;
  h.bins = bins_for(variable, nbins, binning);
  h.counts.assign(h.bins.num_bins(), 0);
  const std::span<const double> values = table_->column(variable);
  const Bins::Locator locate = h.bins.locator();
  // Dense-block gather with value prefetch; each shard decodes only its row
  // window of the condition bitvector.
  kern::sharded_tally(
      values.size(), h.counts.size(), h.counts.data(),
      [&](std::uint64_t begin, std::uint64_t end, std::uint64_t* counts) {
        kern::gather_hist1d(rows, begin, end, values.data(), locate, counts);
      });
  return h;
}

Histogram1D HistogramEngine::histogram1d(const std::string& variable,
                                         const Bins& bins,
                                         const BitVector& rows) const {
  Histogram1D h;
  h.bins = bins;
  h.counts.assign(h.bins.num_bins(), 0);
  if (h.counts.empty()) return h;
  const std::span<const double> values = table_->column(variable);
  const Bins::Locator locate = h.bins.locator();
  kern::sharded_tally(
      values.size(), h.counts.size(), h.counts.data(),
      [&](std::uint64_t begin, std::uint64_t end, std::uint64_t* counts) {
        kern::gather_hist1d(rows, begin, end, values.data(), locate, counts);
      });
  return h;
}

Histogram2D HistogramEngine::histogram2d(const std::string& x, const std::string& y,
                                         std::size_t nxbins, std::size_t nybins,
                                         const Query* condition,
                                         BinningMode binning) const {
  if (condition != nullptr)
    return histogram2d(x, y, nxbins, nybins, table_->query(*condition, mode_),
                       binning);
  Histogram2D h;
  h.xbins = bins_for(x, nxbins, binning);
  h.ybins = bins_for(y, nybins, binning);
  h.counts.assign(h.xbins.num_bins() * h.ybins.num_bins(), 0);
  const std::span<const double> xs = table_->column(x);
  const std::span<const double> ys = table_->column(y);
  const std::size_t ny = h.ybins.num_bins();
  const Bins::Locator xloc = h.xbins.locator();
  const Bins::Locator yloc = h.ybins.locator();
  const simd::LocatorView xview = xloc.view();
  const simd::LocatorView yview = yloc.view();
  const simd::Ops& ops = simd::ops();
  simd::count_hist2d_call(ops.isa != simd::Isa::kScalar);
  kern::sharded_tally(
      xs.size(), h.counts.size(), h.counts.data(),
      [&](std::uint64_t begin, std::uint64_t end, std::uint64_t* counts) {
        ops.hist2d_dense(xs.data() + begin, ys.data() + begin,
                         static_cast<std::size_t>(end - begin), xview, yview,
                         ny, counts);
      });
  return h;
}

Histogram2D HistogramEngine::histogram2d(const std::string& x, const std::string& y,
                                         std::size_t nxbins, std::size_t nybins,
                                         const BitVector& rows,
                                         BinningMode binning) const {
  Histogram2D h;
  h.xbins = bins_for(x, nxbins, binning);
  h.ybins = bins_for(y, nybins, binning);
  h.counts.assign(h.xbins.num_bins() * h.ybins.num_bins(), 0);
  const std::span<const double> xs = table_->column(x);
  const std::span<const double> ys = table_->column(y);
  const std::size_t ny = h.ybins.num_bins();
  const Bins::Locator xloc = h.xbins.locator();
  const Bins::Locator yloc = h.ybins.locator();
  kern::sharded_tally(
      xs.size(), h.counts.size(), h.counts.data(),
      [&](std::uint64_t begin, std::uint64_t end, std::uint64_t* counts) {
        kern::gather_hist2d(rows, begin, end, xs.data(), ys.data(), xloc, yloc,
                            ny, counts);
      });
  return h;
}

Histogram2D HistogramEngine::histogram2d(const std::string& x, const std::string& y,
                                         const Bins& xbins, const Bins& ybins,
                                         const BitVector& rows) const {
  Histogram2D h;
  h.xbins = xbins;
  h.ybins = ybins;
  h.counts.assign(h.xbins.num_bins() * h.ybins.num_bins(), 0);
  if (h.counts.empty()) return h;
  const std::span<const double> xs = table_->column(x);
  const std::span<const double> ys = table_->column(y);
  const std::size_t ny = h.ybins.num_bins();
  const Bins::Locator xloc = h.xbins.locator();
  const Bins::Locator yloc = h.ybins.locator();
  kern::sharded_tally(
      xs.size(), h.counts.size(), h.counts.data(),
      [&](std::uint64_t begin, std::uint64_t end, std::uint64_t* counts) {
        kern::gather_hist2d(rows, begin, end, xs.data(), ys.data(), xloc, yloc,
                            ny, counts);
      });
  return h;
}

}  // namespace qdv
