#include "bitmap/range_index.hpp"

#include <algorithm>

namespace qdv {

RangeEncodedIndex RangeEncodedIndex::build(std::span<const double> values,
                                           const Bins& bins) {
  RangeEncodedIndex index;
  index.bins_ = bins;
  index.nrows_ = values.size();
  const detail::BinnedRows rows = detail::bin_rows(values, bins);
  const std::size_t n = bins.num_bins();
  // C_i accumulates the rows of bins 0..i; each cumulative bitmap is built
  // directly from the merged (sorted) row set of its prefix.
  std::vector<std::uint32_t> prefix_rows;
  index.cumulative_.reserve(n > 0 ? n - 1 : 0);
  for (std::size_t b = 0; b + 1 < n; ++b) {
    const auto mid = static_cast<std::ptrdiff_t>(prefix_rows.size());
    prefix_rows.insert(prefix_rows.end(),
                       rows.grouped.begin() + static_cast<std::ptrdiff_t>(rows.offsets[b]),
                       rows.grouped.begin() + static_cast<std::ptrdiff_t>(rows.offsets[b + 1]));
    std::inplace_merge(prefix_rows.begin(), prefix_rows.begin() + mid,
                       prefix_rows.end());
    index.cumulative_.push_back(BitVector::from_positions(prefix_rows, index.nrows_));
  }
  std::vector<std::uint32_t> outside(rows.outside);
  index.outside_ = BitVector::from_positions(outside, index.nrows_);
  return index;
}

BitVector RangeEncodedIndex::prefix(std::ptrdiff_t i) const {
  if (i < 0) return BitVector::zeros(nrows_);
  if (i >= static_cast<std::ptrdiff_t>(cumulative_.size())) {
    // All binned rows: everything except the outside set.
    return BitVector::ones(nrows_) & ~outside_;
  }
  return cumulative_[static_cast<std::size_t>(i)];
}

ApproxAnswer RangeEncodedIndex::evaluate_approx(const Interval& iv) const {
  const detail::BinCoverage cov = detail::classify_bins(bins_, iv);
  ApproxAnswer out;
  if (cov.full_hi >= cov.full_lo) {
    // Bins [full_lo, full_hi] = C_{full_hi} AND NOT C_{full_lo - 1}.
    out.hits = prefix(cov.full_hi) & ~prefix(cov.full_lo - 1);
  } else {
    out.hits = BitVector::zeros(nrows_);
  }
  std::vector<BitVector> partial_bitmaps;
  partial_bitmaps.reserve(cov.partial.size());
  for (const std::size_t b : cov.partial) {
    const auto pb = static_cast<std::ptrdiff_t>(b);
    partial_bitmaps.push_back(prefix(pb) & ~prefix(pb - 1));
  }
  std::vector<const BitVector*> ops;
  for (const BitVector& b : partial_bitmaps) ops.push_back(&b);
  if (outside_.count() > 0) ops.push_back(&outside_);
  out.candidates = or_many(std::move(ops), nrows_);
  return out;
}

BitVector RangeEncodedIndex::evaluate(const Interval& iv,
                                      std::span<const double> values) const {
  return detail::resolve_candidates(iv, evaluate_approx(iv), values, nrows_);
}

std::size_t RangeEncodedIndex::memory_bytes() const {
  std::size_t total = outside_.memory_bytes() +
                      bins_.edges().capacity() * sizeof(double);
  for (const BitVector& b : cumulative_) total += b.memory_bytes();
  return total;
}

}  // namespace qdv
