#include "svc/protocol.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace qdv::svc {

bool parse_size(const std::string& text, std::size_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  // from_chars rejects signs, spaces, locale forms, and overflow on its
  // own; ptr == end additionally rejects trailing garbage ("5junk", "1e3").
  return ec == std::errc{} && ptr == end;
}

bool parse_double(const std::string& text, double& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  // from_chars accepts the "inf"/"nan" spellings, but no wire field is
  // meaningfully non-finite (viewports, deadlines) — reject them too.
  return ec == std::errc{} && ptr == end && std::isfinite(out);
}

namespace {

/// Shortest round-trip-exact text of @p v: zoom viewports must survive the
/// wire bit for bit, or the client's verify phase would compare against a
/// subtly different window than the server actually answered.
std::string format_double(double v) {
  char buf[32];
  for (int prec = 15; prec <= 16; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0.0;
    if (parse_double(buf, back) && back == v) return buf;
  }
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const char* status_text(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kError: return "error";
    case Status::kRejectedQueue: return "queue-full";
    case Status::kRejectedBudget: return "over-budget";
    case Status::kShutdown: return "shutdown";
    case Status::kRetryLater: return "retry-after";
    case Status::kDeadlineExpired: return "deadline-expired";
  }
  return "?";
}

}  // namespace

bool parse_request_line(const std::string& line, WireRequest& out,
                        std::string& error) {
  out = WireRequest{};
  std::istringstream in(line);
  std::string op;
  if (!(in >> op)) {
    error = "empty request";
    return false;
  }
  if (op == "hello") {
    out.op = WireRequest::Op::kHello;
    std::string token;
    while (in >> token) {
      std::size_t n = 0;
      if (token.rfind("v=", 0) == 0 && parse_size(token.substr(2), n)) {
        out.hello_version = static_cast<unsigned>(n);
      } else {
        error = "bad hello option '" + token + "'";
        return false;
      }
    }
    if (out.hello_version == 0) {
      error = "hello needs v=<version>";
      return false;
    }
    return true;
  }
  if (op == "brush") {
    out.op = WireRequest::Op::kBrush;
    std::string action;
    if (!(in >> action)) {
      error = "brush needs an action (create|refine|invert|combine|drop)";
      return false;
    }
    using BA = WireRequest::BrushAction;
    if (action == "create") {
      out.brush_action = BA::kCreate;
    } else if (action == "refine") {
      out.brush_action = BA::kRefine;
    } else if (action == "invert") {
      out.brush_action = BA::kInvert;
    } else if (action == "combine") {
      out.brush_action = BA::kCombine;
    } else if (action == "drop") {
      out.brush_action = BA::kDrop;
    } else {
      error = "unknown brush action '" + action + "'";
      return false;
    }
    std::string token;
    bool op_given = false;
    while (in >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        error = "expected key=value, got '" + token + "'";
        return false;
      }
      const std::string key = token.substr(0, eq);
      std::string value = token.substr(eq + 1);
      if (key == "q") {
        std::string rest;
        std::getline(in, rest);
        out.request.query = value + rest;
        break;
      }
      if (key == "name") {
        out.brush_name = std::move(value);
      } else if (key == "with") {
        out.brush_with = std::move(value);
      } else if (key == "op") {
        if (value == "and") {
          out.brush_combine_op = core::Brush::CombineOp::kAnd;
        } else if (value == "or") {
          out.brush_combine_op = core::Brush::CombineOp::kOr;
        } else if (value == "andnot") {
          out.brush_combine_op = core::Brush::CombineOp::kAndNot;
        } else {
          error = "bad combine op '" + value + "' (and|or|andnot)";
          return false;
        }
        op_given = true;
      } else {
        error = "bad brush option '" + token + "'";
        return false;
      }
    }
    if (out.brush_name.empty()) {
      error = "brush " + action + " needs name=<brush>";
      return false;
    }
    const bool needs_q =
        out.brush_action == BA::kCreate || out.brush_action == BA::kRefine;
    if (needs_q && out.request.query.empty()) {
      error = "brush " + action + " needs q=<predicate>";
      return false;
    }
    if (!needs_q && !out.request.query.empty()) {
      error = "brush " + action + " takes no q=";
      return false;
    }
    if (out.brush_action == BA::kCombine) {
      if (out.brush_with.empty()) {
        error = "brush combine needs with=<brush>";
        return false;
      }
      if (!op_given) {
        error = "brush combine needs op=and|or|andnot";
        return false;
      }
    } else if (!out.brush_with.empty() || op_given) {
      error = "with=/op= are only for brush combine";
      return false;
    }
    return true;
  }
  if (op == "stats") {
    out.op = WireRequest::Op::kStats;
    return true;
  }
  if (op == "ping") {
    out.op = WireRequest::Op::kPing;
    return true;
  }
  if (op == "quit") {
    out.op = WireRequest::Op::kQuit;
    return true;
  }
  out.op = WireRequest::Op::kQuery;
  Request& r = out.request;
  if (op == "count") {
    r.kind = RequestKind::kCount;
  } else if (op == "ids") {
    r.kind = RequestKind::kIds;
  } else if (op == "hist1") {
    r.kind = RequestKind::kHistogram1D;
  } else if (op == "hist2") {
    r.kind = RequestKind::kHistogram2D;
  } else if (op == "sum") {
    r.kind = RequestKind::kSummary;
  } else if (op == "zoom1") {
    r.kind = RequestKind::kZoom1D;
  } else if (op == "zoom2") {
    r.kind = RequestKind::kZoom2D;
  } else {
    error = "unknown op '" + op + "'";
    return false;
  }
  std::string token;
  bool ybins_given = false;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      error = "expected key=value, got '" + token + "'";
      return false;
    }
    const std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "q") {
      // The query runs to the end of the line, spaces included.
      std::string rest;
      std::getline(in, rest);
      r.query = value + rest;
      return true;
    }
    std::size_t n = 0;
    double f = 0.0;
    if (key == "x") {
      r.var_x = std::move(value);
    } else if (key == "brush") {
      r.brush = std::move(value);
    } else if (key == "y") {
      r.var_y = std::move(value);
    } else if (key == "vlo" && parse_double(value, f)) {
      r.view_lo_x = f;
    } else if (key == "vhi" && parse_double(value, f)) {
      r.view_hi_x = f;
    } else if (key == "ylo" && parse_double(value, f)) {
      r.view_lo_y = f;
    } else if (key == "yhi" && parse_double(value, f)) {
      r.view_hi_y = f;
    } else if (key == "exact" && parse_size(value, n)) {
      r.zoom_mode = n != 0 ? core::ZoomMode::kExact : core::ZoomMode::kAuto;
    } else if (key == "t" && parse_size(value, n)) {
      r.timestep = n;
    } else if (key == "bins" && parse_size(value, n)) {
      r.nxbins = n;
      if (!ybins_given) r.nybins = n;  // bins= sets both unless ybins= given
    } else if (key == "ybins" && parse_size(value, n)) {
      r.nybins = n;
      ybins_given = true;
    } else if (key == "adaptive" && parse_size(value, n)) {
      r.binning = n != 0 ? BinningMode::kAdaptive : BinningMode::kUniform;
    } else if (key == "deadline" && parse_size(value, n)) {
      r.deadline_ms = n;
    } else if (key == "pri" && parse_size(value, n) && n < kNumPriorities) {
      r.priority = static_cast<Priority>(n);
    } else if (key == "limit" && parse_size(value, n)) {
      out.ids_limit = n;
    } else {
      error = "bad option '" + token + "'";
      return false;
    }
  }
  return true;
}

std::string format_request_line(const WireRequest& wire) {
  switch (wire.op) {
    case WireRequest::Op::kStats: return "stats";
    case WireRequest::Op::kPing: return "ping";
    case WireRequest::Op::kQuit: return "quit";
    case WireRequest::Op::kHello:
      return "hello v=" + std::to_string(wire.hello_version != 0
                                             ? wire.hello_version
                                             : kProtocolVersion);
    case WireRequest::Op::kBrush: {
      std::string line = "brush ";
      switch (wire.brush_action) {
        case WireRequest::BrushAction::kCreate: line += "create"; break;
        case WireRequest::BrushAction::kRefine: line += "refine"; break;
        case WireRequest::BrushAction::kInvert: line += "invert"; break;
        case WireRequest::BrushAction::kCombine: line += "combine"; break;
        case WireRequest::BrushAction::kDrop: line += "drop"; break;
      }
      line += " name=" + wire.brush_name;
      if (wire.brush_action == WireRequest::BrushAction::kCombine) {
        line += " with=" + wire.brush_with + " op=";
        switch (wire.brush_combine_op) {
          case core::Brush::CombineOp::kAnd: line += "and"; break;
          case core::Brush::CombineOp::kOr: line += "or"; break;
          case core::Brush::CombineOp::kAndNot: line += "andnot"; break;
        }
      }
      if (!wire.request.query.empty()) line += " q=" + wire.request.query;
      return line;
    }
    case WireRequest::Op::kQuery: break;
  }
  const Request& r = wire.request;
  std::ostringstream out;
  switch (r.kind) {
    case RequestKind::kCount: out << "count"; break;
    case RequestKind::kIds: out << "ids"; break;
    case RequestKind::kHistogram1D: out << "hist1"; break;
    case RequestKind::kHistogram2D: out << "hist2"; break;
    case RequestKind::kSummary: out << "sum"; break;
    case RequestKind::kZoom1D: out << "zoom1"; break;
    case RequestKind::kZoom2D: out << "zoom2"; break;
  }
  const bool zoom =
      r.kind == RequestKind::kZoom1D || r.kind == RequestKind::kZoom2D;
  out << " t=" << r.timestep;
  if (!r.brush.empty()) out << " brush=" << r.brush;
  if (!r.var_x.empty()) out << " x=" << r.var_x;
  if (!r.var_y.empty()) out << " y=" << r.var_y;
  if (r.kind == RequestKind::kHistogram1D || r.kind == RequestKind::kHistogram2D) {
    out << " bins=" << r.nxbins;
    if (r.kind == RequestKind::kHistogram2D && r.nybins != r.nxbins)
      out << " ybins=" << r.nybins;
    if (r.binning == BinningMode::kAdaptive) out << " adaptive=1";
  }
  if (zoom) {
    out << " bins=" << r.nxbins;
    if (r.kind == RequestKind::kZoom2D && r.nybins != r.nxbins)
      out << " ybins=" << r.nybins;
    out << " vlo=" << format_double(r.view_lo_x)
        << " vhi=" << format_double(r.view_hi_x);
    if (r.kind == RequestKind::kZoom2D)
      out << " ylo=" << format_double(r.view_lo_y)
          << " yhi=" << format_double(r.view_hi_y);
    if (r.zoom_mode == core::ZoomMode::kExact) out << " exact=1";
  }
  if (r.deadline_ms > 0) out << " deadline=" << r.deadline_ms;
  if (r.priority != Priority::kNormal)
    out << " pri=" << static_cast<unsigned>(r.priority);
  if (wire.ids_limit != 16) out << " limit=" << wire.ids_limit;
  if (!r.query.empty()) out << " q=" << r.query;
  return out.str();
}

std::string format_response_line(const Result& result, std::size_t ids_limit) {
  if (result.status != Status::kOk) {
    std::string line = "err ";
    line += status_text(result.status);
    if (!result.error.empty()) line += ": " + result.error;
    return line;
  }
  std::ostringstream out;
  out << "ok count=" << result.count;
  if (result.kind == RequestKind::kIds) {
    out << " ids=";
    const std::size_t n = std::min(result.ids.size(), ids_limit);
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0) out << ',';
      out << result.ids[i];
    }
    if (result.ids.size() > n) out << ",...";
  }
  if (result.kind == RequestKind::kHistogram1D ||
      result.kind == RequestKind::kZoom1D)
    out << " bins=" << result.hist1d.counts.size()
        << " nonempty=" << result.hist1d.nonempty_bins()
        << " maxbin=" << result.hist1d.max_count();
  if (result.kind == RequestKind::kHistogram2D ||
      result.kind == RequestKind::kZoom2D)
    out << " nx=" << result.hist2d.nx() << " ny=" << result.hist2d.ny()
        << " nonempty=" << result.hist2d.nonempty_bins()
        << " maxbin=" << result.hist2d.max_count();
  if (result.kind == RequestKind::kZoom1D ||
      result.kind == RequestKind::kZoom2D)
    out << " pyr=" << (result.pyramid ? 1 : 0)
        << " level=" << result.pyramid_level;
  if (result.kind == RequestKind::kSummary)
    out << " min=" << result.summary.min << " max=" << result.summary.max
        << " mean=" << result.summary.mean << " stddev=" << result.summary.stddev;
  if (result.brush_epoch > 0) out << " epoch=" << result.brush_epoch;
  out << " src=" << (result.served == Served::kCached ? "cache" : "exec");
  out << " exec_us="
      << static_cast<std::uint64_t>(result.exec_seconds * 1e6);
  return out.str();
}

std::string format_stats_line(const ServiceStats& s) {
  std::ostringstream out;
  out << "ok submitted=" << s.submitted << " completed=" << s.completed
      << " executed=" << s.executed << " coalesced=" << s.coalesce_hits
      << " cached=" << s.result_cache_hits << " failed=" << s.failed
      << " rejected=" << (s.rejected_queue + s.rejected_budget)
      << " shed=" << s.rejected_shed
      << " deadline_expired=" << s.deadline_expired
      << " queue=" << s.queue_depth << " peak_queue=" << s.peak_queue_depth
      << " sessions=" << s.open_sessions
      << " integrity_verified=" << s.integrity_verified
      << " integrity_failures=" << s.integrity_failures
      << " integrity_demotions=" << s.integrity_demotions
      << " integrity_unverified=" << s.integrity_unverified
      << " p50_us=" << static_cast<std::uint64_t>(s.p50_seconds * 1e6)
      << " p95_us=" << static_cast<std::uint64_t>(s.p95_seconds * 1e6)
      << " p99_us=" << static_cast<std::uint64_t>(s.p99_seconds * 1e6);
  if (s.pyramid_served + s.pyramid_fallback > 0)
    out << " pyr_served=" << s.pyramid_served
        << " pyr_fallback=" << s.pyramid_fallback;
  if (s.brush_creates + s.brush_edits + s.brush_queries > 0)
    out << " brush_count=" << s.brush_count
        << " brush_creates=" << s.brush_creates
        << " brush_edits=" << s.brush_edits
        << " brush_drops=" << s.brush_drops
        << " brush_queries=" << s.brush_queries
        << " brush_delta=" << s.brush_delta_evals
        << " brush_full=" << s.brush_full_evals
        << " brush_bytes=" << s.brush_bytes
        << " brush_stale=" << s.brush_stale_hits;
  if (s.dist_workers > 0)
    out << " dist_workers=" << s.dist_workers << " dist_alive=" << s.dist_alive
        << " dist_queries=" << s.dist_queries
        << " dist_scatters=" << s.dist_scatters
        << " dist_gathers=" << s.dist_gathers
        << " dist_retries=" << s.dist_retries
        << " dist_reshards=" << s.dist_reshards
        << " dist_deaths=" << s.dist_deaths
        << " dist_fallbacks=" << s.dist_local_fallbacks;
  return out.str();
}

std::string format_brush_response_line(const BrushOutcome& outcome) {
  if (outcome.status != Status::kOk) {
    std::string line = "err ";
    line += status_text(outcome.status);
    if (!outcome.error.empty()) line += ": " + outcome.error;
    return line;
  }
  std::ostringstream out;
  out << "ok brush=" << outcome.name << " epoch=" << outcome.epoch
      << " bytes=" << outcome.resident_bytes
      << " brushes=" << outcome.session_brushes;
  return out.str();
}

bool parse_response_line(const std::string& line, std::string& body) {
  if (line.rfind("ok", 0) == 0) {
    body = line.size() > 3 ? line.substr(3) : std::string();
    return true;
  }
  body = line.rfind("err ", 0) == 0 ? line.substr(4) : line;
  return false;
}

}  // namespace qdv::svc
