#include "svc/query_service.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/selection.hpp"
#include "dist/coordinator.hpp"
#include "io/memory_budget.hpp"
#include "parallel/thread_pool.hpp"

namespace qdv::svc {

namespace {

using Clock = std::chrono::steady_clock;
using SessionId = QueryService::SessionId;

double seconds_since(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

const char* kind_tag(RequestKind kind) {
  switch (kind) {
    case RequestKind::kCount: return "count";
    case RequestKind::kIds: return "ids";
    case RequestKind::kHistogram1D: return "hist1";
    case RequestKind::kHistogram2D: return "hist2";
    case RequestKind::kSummary: return "sum";
    case RequestKind::kZoom1D: return "zoom1";
    case RequestKind::kZoom2D: return "zoom2";
  }
  return "?";
}

bool is_zoom(RequestKind kind) {
  return kind == RequestKind::kZoom1D || kind == RequestKind::kZoom2D;
}

/// Shortest round-trip-exact rendering of @p v, for the raw-viewport leg of
/// zoom cache keys (servable requests use the snapped level/window instead,
/// which is already integral).
std::string key_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::uint64_t histogram1d_bytes(const Histogram1D& h) {
  return (h.counts.size() + h.bins.edges().size()) * 8;
}

std::uint64_t histogram2d_bytes(const Histogram2D& h) {
  return (h.counts.size() + h.xbins.edges().size() + h.ybins.edges().size()) * 8;
}

/// True when @p r decomposes into shard partials that merge bit-identically
/// to local execution: counts and ids always do; histograms only under
/// uniform binning (adaptive bins depend on the selected value
/// distribution, which no shard sees in full). Summaries stay local (their
/// floating-point moments are not order-independent).
bool distributable(const Request& r) {
  switch (r.kind) {
    case RequestKind::kCount:
    case RequestKind::kIds:
      return true;
    case RequestKind::kHistogram1D:
    case RequestKind::kHistogram2D:
      return r.binning == BinningMode::kUniform;
    case RequestKind::kSummary:
      return false;
    case RequestKind::kZoom1D:
    case RequestKind::kZoom2D:
      // Zooms stay local: the pyramid serve is O(visible bins) on resident
      // levels, so scattering it would cost more than answering it.
      return false;
  }
  return false;
}

dist::ShardKind shard_kind(RequestKind kind) {
  switch (kind) {
    case RequestKind::kIds: return dist::ShardKind::kBits;
    case RequestKind::kHistogram1D: return dist::ShardKind::kHist1;
    case RequestKind::kHistogram2D: return dist::ShardKind::kHist2;
    default: return dist::ShardKind::kCount;
  }
}

/// Brush names travel the wire as bare tokens and become cache-key and
/// stats material, so keep them to a tight charset.
bool valid_brush_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name)
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
          c == '-' || c == '.'))
      return false;
  return true;
}

ResultPtr make_rejection(Status status, std::string message) {
  auto r = std::make_shared<Result>();
  r->status = status;
  r->error = std::move(message);
  return r;
}

ResultFuture ready_future(ResultPtr result) {
  std::promise<ResultPtr> promise;
  promise.set_value(std::move(result));
  return promise.get_future().share();
}

}  // namespace

double sorted_percentile(std::span<const double> sorted_ascending, double q) {
  if (sorted_ascending.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ascending.size() - 1) + 0.5);
  return sorted_ascending[std::min(idx, sorted_ascending.size() - 1)];
}

/// One admitted execution: the unit of single-flight coalescing. The leader
/// request creates it; later requests with the same key attach (their
/// session + submit time recorded for latency/budget accounting) and share
/// the leader's future.
struct Flight {
  std::string key;
  Request request;
  std::shared_ptr<const core::Selection> selection;
  // Brush requests: the brush (kept alive even if dropped mid-queue) and
  // the (epoch, composed) snapshot pinned at submission — evaluation is
  // exact for that epoch no matter how the brush mutates meanwhile.
  std::shared_ptr<core::Brush> brush;
  core::Brush::Snapshot brush_snap;
  std::promise<ResultPtr> promise;
  ResultFuture future;
  // Absolute deadline (leader's submit time + deadline_ms); unset when the
  // request carries no time budget.
  std::optional<Clock::time_point> deadline;

  struct Attach {
    SessionId session = 0;
    Clock::time_point at{};
    std::uint64_t charged_bytes = 0;  // admission estimate held while in flight
  };
  std::vector<Attach> attaches;  // [0] = the leader
};

struct QueryService::Impl {
  Impl(core::Engine e, ServiceConfig c) : engine(std::move(e)), config(c) {}

  core::Engine engine;
  ServiceConfig config;
  std::shared_ptr<io::MemoryBudget> budget;  // the engine's unified budget
  std::size_t max_concurrency = 1;

  struct Session {
    std::string name;
    std::uint64_t budget_bytes = ServiceConfig::kUnlimitedBudget;
    std::uint64_t inflight_bytes = 0;  // admission estimates currently held
    std::uint64_t served_weight = 0;   // executed flights led by this session
    // Named brushes scoped to this session (DESIGN.md §16). brush_charge
    // holds the admission estimate charged per live brush — released on
    // drop and, crucially, when the session closes (a dead socket cannot
    // leak brush budget).
    std::unordered_map<std::string, std::shared_ptr<core::Brush>> brushes;
    std::uint64_t brush_charge = 0;
  };

  mutable std::mutex mutex;
  std::condition_variable idle_cv;
  bool stopping = false;
  SessionId next_session = 1;
  std::unordered_map<SessionId, Session> sessions;

  // Admission queue: per-priority, per-session FIFO lanes. The scheduler
  // serves the strongest non-empty priority class; inside a class it picks
  // the session with the least executed work (deficit fairness), so one
  // flooding client cannot starve its peers at equal priority.
  std::array<std::unordered_map<SessionId, std::deque<std::shared_ptr<Flight>>>,
             kNumPriorities>
      queue;
  std::size_t queued = 0;

  // Single-flight table: every queued or executing flight, by coalesce key.
  std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_by_key;
  std::size_t executing = 0;
  std::size_t active_workers = 0;
  std::uint64_t exec_ordinal = 0;  // dispatch order, exposed as Result::sequence

  // Distributed execution (optional). The handle is read per flight under
  // the mutex; the coordinator itself is internally synchronized.
  std::shared_ptr<dist::Coordinator> distributor_handle;
  std::uint64_t dist_local_fallbacks = 0;

  // Shared delta-vs-full evaluation counters, aggregated across every brush
  // this service creates (core::Brush increments them lock-free).
  std::shared_ptr<core::Brush::Counters> brush_counters =
      std::make_shared<core::Brush::Counters>();

  // Cumulative counters (the queue_depth/inflight/latency fields of the
  // public struct are derived in stats()).
  ServiceStats counters;
  std::vector<double> latencies;  // ring buffer of completed-request latencies
  std::size_t latency_pos = 0;
  double latency_max = 0.0;

  void record_latency_locked(double s) {
    ++counters.latency_samples;
    latency_max = std::max(latency_max, s);
    if (latencies.size() < config.latency_capacity) {
      latencies.push_back(s);
    } else if (!latencies.empty()) {
      latencies[latency_pos] = s;
      latency_pos = (latency_pos + 1) % latencies.size();
    }
  }

  /// Admission-time response-size estimate: what a session is charged while
  /// the request is queued/executing. Intentionally pessimistic for kIds
  /// (all rows could match), so id dumps are what a byte budget throttles.
  std::uint64_t estimate_bytes(const Request& r) const {
    switch (r.kind) {
      case RequestKind::kCount:
      case RequestKind::kSummary:
        return 64;
      case RequestKind::kHistogram1D:
      case RequestKind::kZoom1D:
        return (r.nxbins + r.nxbins + 1) * 8 + 64;
      case RequestKind::kHistogram2D:
      case RequestKind::kZoom2D:
        return (r.nxbins * r.nybins + r.nxbins + r.nybins + 2) * 8 + 64;
      case RequestKind::kIds:
        return engine.dataset().table(r.timestep).num_rows() * 8 + 64;
    }
    return 64;
  }

  /// Admission charge held per live brush: one materialized bitvector's
  /// worth, so brush state competes with in-flight requests under the same
  /// session byte ceiling.
  std::uint64_t brush_estimate() const {
    return engine.num_timesteps() == 0
               ? 64
               : engine.dataset().table(0).num_rows() / 8 + 64;
  }

  /// Highest-priority, fairness-ordered queued flight; nullptr when empty.
  std::shared_ptr<Flight> pop_locked() {
    for (auto& bucket : queue) {
      const SessionId* best = nullptr;
      std::uint64_t best_weight = 0;
      for (const auto& [sid, lane] : bucket) {
        if (lane.empty()) continue;
        const auto it = sessions.find(sid);
        const std::uint64_t weight =
            it == sessions.end() ? 0 : it->second.served_weight;
        if (best == nullptr || weight < best_weight ||
            (weight == best_weight && sid < *best)) {
          best = &sid;
          best_weight = weight;
        }
      }
      if (best == nullptr) continue;
      auto lane = bucket.find(*best);
      std::shared_ptr<Flight> flight = std::move(lane->second.front());
      lane->second.pop_front();
      if (lane->second.empty()) bucket.erase(lane);
      --queued;
      return flight;
    }
    return nullptr;
  }

  /// Distributed twin of the local evaluation switch. True when the
  /// coordinator produced @p r (a merged result or a remote query error);
  /// false to fall back to the local engine — the caller is still owed an
  /// answer when every worker is gone.
  bool run_distributed(const Flight& flight, dist::Coordinator& coordinator,
                       Result& r) {
    const Request& req = flight.request;
    try {
      const std::string query_text =
          flight.selection->selects_all()
              ? std::string()
              : flight.selection->query()->to_string();
      dist::GatherResult g =
          coordinator.execute(shard_kind(req.kind), req.timestep, query_text,
                              req.var_x, req.var_y, req.nxbins, req.nybins);
      if (!g.ok) {
        r.status = Status::kError;
        r.error = g.error;
        return true;
      }
      if (flight.deadline && Clock::now() > *flight.deadline) {
        // The scatter/gather (worker retries included) outran the time
        // budget: the merged answer is stale to its requester.
        r = Result{};
        r.kind = req.kind;
        r.status = Status::kDeadlineExpired;
        r.error = "deadline expired during distributed merge";
        std::lock_guard<std::mutex> lock(mutex);
        ++counters.deadline_expired;
        return true;
      }
      switch (req.kind) {
        case RequestKind::kCount:
          r.count = g.count;
          r.payload_bytes = 8;
          break;
        case RequestKind::kIds:
          r.ids = std::move(g.ids);
          r.count = r.ids.size();
          r.payload_bytes = r.ids.size() * 8;
          break;
        case RequestKind::kHistogram1D:
          r.hist1d = std::move(g.hist1d);
          r.count = g.count;
          r.payload_bytes = histogram1d_bytes(r.hist1d);
          break;
        case RequestKind::kHistogram2D:
          r.hist2d = std::move(g.hist2d);
          r.count = g.count;
          r.payload_bytes = histogram2d_bytes(r.hist2d);
          break;
        case RequestKind::kSummary:
        case RequestKind::kZoom1D:
        case RequestKind::kZoom2D:
          return false;  // never distributed (see distributable())
      }
      return true;
    } catch (const std::exception&) {
      // NoLiveWorkers, or any coordinator-side infrastructure failure:
      // answer from the local engine instead.
    }
    std::lock_guard<std::mutex> lock(mutex);
    ++dist_local_fallbacks;
    return false;
  }

  std::shared_ptr<Result> run_flight(const Flight& flight) {
    auto r = std::make_shared<Result>();
    r->kind = flight.request.kind;
    const Clock::time_point start = Clock::now();

    if (flight.brush) {
      // Brush flights never distribute: the whole point is the local delta
      // path against the cached parent bitvector (a remote worker re-parsing
      // the composed text would execute from scratch every time).
      try {
        const Request& req = flight.request;
        core::Brush& b = *flight.brush;
        const core::Brush::Snapshot& snap = flight.brush_snap;
        switch (req.kind) {
          case RequestKind::kCount:
            r->count = b.count(snap, req.timestep);
            r->payload_bytes = 8;
            break;
          case RequestKind::kIds:
            r->ids = b.ids(snap, req.timestep);
            r->count = r->ids.size();
            r->payload_bytes = r->ids.size() * 8;
            break;
          case RequestKind::kHistogram1D:
            r->hist1d = b.histogram1d(snap, req.timestep, req.var_x,
                                      req.nxbins, req.binning);
            r->count = r->hist1d.total();
            r->payload_bytes = histogram1d_bytes(r->hist1d);
            break;
          case RequestKind::kHistogram2D:
            r->hist2d = b.histogram2d(snap, req.timestep, req.var_x,
                                      req.var_y, req.nxbins, req.nybins,
                                      req.binning);
            r->count = r->hist2d.total();
            r->payload_bytes = histogram2d_bytes(r->hist2d);
            break;
          case RequestKind::kSummary:
            r->summary = b.summary(snap, req.timestep, req.var_x);
            r->count = r->summary.count;
            r->payload_bytes = 5 * 8;
            break;
          case RequestKind::kZoom1D:
          case RequestKind::kZoom2D:
            throw std::logic_error("zoom on a brush (rejected at submit)");
        }
        r->brush_epoch = snap.epoch;
      } catch (const std::exception& e) {
        r->status = Status::kError;
        r->error = e.what();
      }
      r->exec_seconds = seconds_since(start, Clock::now());
      return r;
    }

    std::shared_ptr<dist::Coordinator> coordinator;
    {
      std::lock_guard<std::mutex> lock(mutex);
      coordinator = distributor_handle;
    }
    if (coordinator && distributable(flight.request) &&
        run_distributed(flight, *coordinator, *r)) {
      r->exec_seconds = seconds_since(start, Clock::now());
      return r;
    }

    try {
      const core::Selection& sel = *flight.selection;
      const Request& req = flight.request;
      switch (req.kind) {
        case RequestKind::kCount:
          r->count = sel.count(req.timestep);
          r->payload_bytes = 8;
          break;
        case RequestKind::kIds:
          r->ids = sel.ids(req.timestep);
          r->count = r->ids.size();
          r->payload_bytes = r->ids.size() * 8;
          break;
        case RequestKind::kHistogram1D:
          r->hist1d = sel.histogram1d(req.timestep, req.var_x, req.nxbins,
                                      req.binning);
          r->count = r->hist1d.total();
          r->payload_bytes = histogram1d_bytes(r->hist1d);
          break;
        case RequestKind::kHistogram2D:
          r->hist2d = sel.histogram2d(req.timestep, req.var_x, req.var_y,
                                      req.nxbins, req.nybins, req.binning);
          r->count = r->hist2d.total();
          r->payload_bytes = histogram2d_bytes(r->hist2d);
          break;
        case RequestKind::kSummary:
          r->summary = sel.summary(req.timestep, req.var_x);
          r->count = r->summary.count;
          r->payload_bytes = 5 * 8;
          break;
        case RequestKind::kZoom1D: {
          core::Zoom1DResult z = sel.zoom_histogram1d(
              req.timestep, req.var_x, req.view_lo_x, req.view_hi_x,
              req.nxbins, req.zoom_mode);
          r->hist1d = std::move(z.hist);
          r->pyramid = z.pyramid;
          r->pyramid_level = z.level;
          r->count = r->hist1d.total();
          r->payload_bytes = histogram1d_bytes(r->hist1d);
          break;
        }
        case RequestKind::kZoom2D: {
          core::Zoom2DResult z = sel.zoom_histogram2d(
              req.timestep, req.var_x, req.var_y, req.view_lo_x,
              req.view_hi_x, req.view_lo_y, req.view_hi_y, req.nxbins,
              req.nybins, req.zoom_mode);
          r->hist2d = std::move(z.hist);
          r->pyramid = z.pyramid;
          r->pyramid_level = z.level;
          r->count = r->hist2d.total();
          r->payload_bytes = histogram2d_bytes(r->hist2d);
          break;
        }
      }
    } catch (const std::exception& e) {
      r->status = Status::kError;
      r->error = e.what();
    }
    r->exec_seconds = seconds_since(start, Clock::now());
    return r;
  }

  /// Drain loop of one dispatch slot: claim queued flights until none are
  /// left, then retire. Runs on the shared pool; nested parallel_for inside
  /// an evaluation is safe (the pool is nested-reentrant).
  void worker() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      std::shared_ptr<Flight> flight = pop_locked();
      if (!flight) break;
      ++executing;
      const std::uint64_t ordinal = ++exec_ordinal;
      if (const auto it = sessions.find(flight->attaches.front().session);
          it != sessions.end())
        ++it->second.served_weight;
      lock.unlock();

      // Dispatch-time deadline check: work whose requester has already
      // given up is not worth an evaluation.
      std::shared_ptr<Result> result;
      if (flight->deadline && Clock::now() > *flight->deadline) {
        result = std::make_shared<Result>();
        result->kind = flight->request.kind;
        result->status = Status::kDeadlineExpired;
        result->error = "deadline expired before dispatch";
        std::lock_guard<std::mutex> guard(mutex);
        ++counters.deadline_expired;
      } else {
        result = run_flight(*flight);
      }
      result->sequence = ordinal;
      // Exact-mode zooms are deliberately never cached: they exist to
      // measure/verify the kernel path (bombard's verify and baseline
      // phases), so every one must actually execute.
      const bool exact_zoom = is_zoom(flight->request.kind) &&
                              flight->request.zoom_mode == core::ZoomMode::kExact;
      if (config.cache_results && !exact_zoom && result->status == Status::kOk &&
          result->payload_bytes <= config.max_cached_result_bytes) {
        // Cache a copy marked kCached: later identical requests are served
        // from the budget (same LRU as columns/segments/bitvectors), while
        // the live flight's requesters see the kExecuted original.
        auto cached = std::make_shared<Result>(*result);
        cached->served = Served::kCached;
        cached->exec_seconds = 0.0;
        cached->sequence = 0;
        budget->put(flight->key, std::move(cached),
                    std::max<std::uint64_t>(result->payload_bytes, 64),
                    io::ResidentClass::kResult);
      }

      // Bookkeeping BEFORE fulfilling the promise: once a requester's
      // get() returns, stats() already reflects its request. Erasing the
      // key first also freezes the attach list — nothing can join a flight
      // that is no longer in the single-flight table.
      lock.lock();
      inflight_by_key.erase(flight->key);
      --executing;
      ++counters.executed;
      if (is_zoom(flight->request.kind) && result->status == Status::kOk) {
        if (result->pyramid)
          ++counters.pyramid_served;
        else
          ++counters.pyramid_fallback;
      }
      const Clock::time_point now = Clock::now();
      for (const Flight::Attach& attach : flight->attaches) {
        ++counters.completed;
        if (flight->brush) ++counters.brush_queries;
        if (result->status != Status::kOk) ++counters.failed;
        counters.bytes_served += result->payload_bytes;
        record_latency_locked(seconds_since(attach.at, now));
        if (const auto it = sessions.find(attach.session); it != sessions.end())
          it->second.inflight_bytes -=
              std::min(it->second.inflight_bytes, attach.charged_bytes);
      }
      if (queued == 0 && executing == 0) idle_cv.notify_all();
      lock.unlock();
      flight->promise.set_value(result);
      lock.lock();
    }
    --active_workers;
    if (queued == 0 && executing == 0 && active_workers == 0)
      idle_cv.notify_all();
  }
};

QueryService::QueryService(core::Engine engine, ServiceConfig config)
    : impl_(std::make_shared<Impl>(std::move(engine), config)) {
  impl_->budget = impl_->engine.dataset().memory_budget();
  // Entry-cap the result class (mirroring the engine's bitvector cap): an
  // unlimited byte budget must not let distinct results accrete forever.
  if (config.cache_results &&
      impl_->budget->class_entry_cap(io::ResidentClass::kResult) ==
          io::MemoryBudget::kNoEntryCap)
    impl_->budget->set_class_entry_cap(
        io::ResidentClass::kResult,
        std::max<std::size_t>(1, config.max_cached_results));
  impl_->max_concurrency = config.max_concurrency > 0
                               ? config.max_concurrency
                               : par::ThreadPool::global().size();
  impl_->latencies.reserve(std::min<std::size_t>(config.latency_capacity, 4096));
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;  // queued work still completes; new work bounces
  }
  drain();
}

QueryService::SessionId QueryService::open_session(std::string name,
                                                   std::uint64_t budget_bytes) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const SessionId id = impl_->next_session++;
  Impl::Session& s = impl_->sessions[id];
  s.name = std::move(name);
  s.budget_bytes = budget_bytes == ServiceConfig::kUnlimitedBudget
                       ? impl_->config.session_budget_bytes
                       : budget_bytes;
  return id;
}

void QueryService::close_session(SessionId session) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->sessions.erase(session);  // queued flights finish; accounting via find()
}

ResultFuture QueryService::submit(SessionId session, Request request) {
  const Clock::time_point now = Clock::now();
  const auto impl = impl_;

  // Parse/canonicalize/plan (shared, cached) and estimate the response size
  // before taking the service lock — both only touch their own locks.
  std::shared_ptr<const core::Selection> selection;
  std::shared_ptr<core::Brush> brush;
  core::Brush::Snapshot brush_snap;
  std::string key;
  std::uint64_t estimate = 0;
  try {
    if (request.timestep >= impl->engine.num_timesteps())
      throw std::invalid_argument("timestep out of range");
    if (request.kind != RequestKind::kCount && request.kind != RequestKind::kIds) {
      if (request.var_x.empty())
        throw std::invalid_argument("request needs a variable");
      if ((request.kind == RequestKind::kHistogram2D ||
           request.kind == RequestKind::kZoom2D) &&
          request.var_y.empty())
        throw std::invalid_argument("histogram2d needs a second variable");
      if (request.kind != RequestKind::kSummary &&
          (request.nxbins == 0 || request.nybins == 0))
        throw std::invalid_argument("zero histogram bins");
    }
    if (is_zoom(request.kind)) {
      if (!(request.view_hi_x > request.view_lo_x))
        throw std::invalid_argument("zoom viewport needs view_hi > view_lo");
      if (request.kind == RequestKind::kZoom2D &&
          !(request.view_hi_y > request.view_lo_y))
        throw std::invalid_argument("zoom viewport needs view_hi > view_lo");
    }
    if (!request.brush.empty()) {
      if (is_zoom(request.kind))
        throw std::invalid_argument(
            "zoom requests cannot target a brush (the pyramid tier serves "
            "plain marginal selections)");
      if (!request.query.empty())
        throw std::invalid_argument(
            "brush requests take no q= (edit the brush instead)");
      {
        std::lock_guard<std::mutex> resolve(impl->mutex);
        const auto sit = impl->sessions.find(session);
        if (sit == impl->sessions.end())
          throw std::invalid_argument("unknown session");
        const auto bit = sit->second.brushes.find(request.brush);
        if (bit == sit->second.brushes.end())
          throw std::invalid_argument("unknown brush '" + request.brush +
                                      "'");
        brush = bit->second;
      }
      // Pin (epoch, composed predicate) now: the flight evaluates exactly
      // this epoch no matter how the brush mutates while the request is
      // queued. No Selection is built — pinning never plans.
      brush_snap = brush->snapshot();
    } else {
      selection = impl->engine.select_shared(request.query);
    }
    key = "svc|";
    key += kind_tag(request.kind);
    key += "|t#" + std::to_string(request.timestep);
    if (request.kind != RequestKind::kCount && request.kind != RequestKind::kIds) {
      // '|' between every variable-length field: variable names may
      // themselves contain letters like 'x', so bare joins could collide.
      key += '|' + request.var_x;
      if (request.kind == RequestKind::kHistogram2D ||
          request.kind == RequestKind::kZoom2D)
        key += '|' + request.var_y;
      if (request.kind != RequestKind::kSummary && !is_zoom(request.kind)) {
        key += '#' + std::to_string(request.nxbins);
        if (request.kind == RequestKind::kHistogram2D)
          key += '#' + std::to_string(request.nybins);
        key += request.binning == BinningMode::kAdaptive ? 'a' : 'u';
      }
    }
    if (is_zoom(request.kind)) {
      // Level-tagged zoom keys: a servable request's answer depends only on
      // the snapped (level, bin window) — not on the raw viewport or nbins —
      // so two pans that snap identically share one cache entry. zoom_plan*
      // recomputes exactly the geometry the serve will use, so the key can
      // never disagree with the result. Unservable (or exact-mode) requests
      // key on the raw viewport; '#e' keeps the forced-exact universe
      // disjoint from the auto one.
      std::optional<core::ZoomPlan> plan;
      if (request.zoom_mode == core::ZoomMode::kAuto) {
        plan = request.kind == RequestKind::kZoom1D
                   ? selection->zoom_plan1d(request.timestep, request.var_x,
                                            request.view_lo_x, request.view_hi_x,
                                            request.nxbins)
                   : selection->zoom_plan2d(request.timestep, request.var_x,
                                            request.var_y, request.view_lo_x,
                                            request.view_hi_x, request.view_lo_y,
                                            request.view_hi_y, request.nxbins,
                                            request.nybins);
      }
      if (plan) {
        key += "#L" + std::to_string(plan->level) + ':' +
               std::to_string(plan->xlo) + '-' + std::to_string(plan->xhi);
        if (request.kind == RequestKind::kZoom2D)
          key += ':' + std::to_string(plan->ylo) + '-' +
                 std::to_string(plan->yhi);
        if (plan->pair) key += 'p';
      } else {
        key += '#' + key_double(request.view_lo_x) + ':' +
               key_double(request.view_hi_x);
        if (request.kind == RequestKind::kZoom2D)
          key += '#' + key_double(request.view_lo_y) + ':' +
                 key_double(request.view_hi_y);
        key += '#' + std::to_string(request.nxbins);
        if (request.kind == RequestKind::kZoom2D)
          key += '#' + std::to_string(request.nybins);
        if (request.zoom_mode == core::ZoomMode::kExact) key += "#e";
      }
    }
    // Brush keys carry (id, epoch): the id makes the namespace
    // session-scoped and collision-free across drops/recreates, the epoch
    // makes a mutated brush structurally unable to hit its parent's cached
    // result — together they identify the answer completely, so no
    // composed cache_key (which would force a plan) is appended.
    if (brush)
      key += "|brush#" + std::to_string(brush->id()) + "@e" +
             std::to_string(brush_snap.epoch);
    else
      key += '|' + selection->cache_key();
    estimate = impl->estimate_bytes(request);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(impl->mutex);
    ++impl->counters.submitted;
    ++impl->counters.completed;
    ++impl->counters.failed;
    return ready_future(make_rejection(Status::kError, e.what()));
  }

  std::unique_lock<std::mutex> lock(impl->mutex);
  ++impl->counters.submitted;
  if (impl->stopping) {
    ++impl->counters.rejected_shutdown;
    return ready_future(make_rejection(Status::kShutdown, "service stopping"));
  }
  const auto sit = impl->sessions.find(session);
  if (sit == impl->sessions.end()) {
    ++impl->counters.completed;
    ++impl->counters.failed;
    return ready_future(make_rejection(Status::kError, "unknown session"));
  }

  // Completed-result reuse: identical requests are answered from the
  // budget-resident cache without touching the queue.
  if (impl->config.cache_results) {
    if (auto cached = impl->budget->get(key, io::ResidentClass::kResult)) {
      auto result = std::static_pointer_cast<const Result>(cached);
      if (brush && result->brush_epoch != brush_snap.epoch) {
        // Tripwire (asserted zero in CI): the epoch-tagged key handed back
        // a result computed at a different epoch. Count it and fall through
        // to a fresh execution rather than serve a stale answer.
        ++impl->counters.brush_stale_hits;
      } else {
        ++impl->counters.result_cache_hits;
        ++impl->counters.completed;
        if (brush) ++impl->counters.brush_queries;
        impl->record_latency_locked(seconds_since(now, Clock::now()));
        impl->counters.bytes_served += result->payload_bytes;
        return ready_future(std::move(result));
      }
    }
  }

  // In-flight coalescing: attach to a queued/executing flight of this key.
  if (const auto it = impl->inflight_by_key.find(key);
      it != impl->inflight_by_key.end()) {
    ++impl->counters.coalesce_hits;
    it->second->attaches.push_back({session, now, 0});
    return it->second->future;
  }

  // Load shedding fires below the hard queue cap: kRetryLater tells a
  // well-behaved client to back off and come back, where kRejectedQueue
  // means the request was dropped outright.
  if (impl->config.shed_queue_depth > 0 &&
      impl->queued >= impl->config.shed_queue_depth) {
    ++impl->counters.rejected_shed;
    return ready_future(make_rejection(
        Status::kRetryLater,
        "shedding load; retry after " +
            std::to_string(impl->config.retry_after_ms) + " ms"));
  }
  if (impl->queued >= impl->config.max_queue) {
    ++impl->counters.rejected_queue;
    return ready_future(
        make_rejection(Status::kRejectedQueue, "admission queue full"));
  }
  Impl::Session& sess = sit->second;
  if (sess.budget_bytes != ServiceConfig::kUnlimitedBudget &&
      sess.inflight_bytes + sess.brush_charge + estimate > sess.budget_bytes) {
    ++impl->counters.rejected_budget;
    return ready_future(
        make_rejection(Status::kRejectedBudget, "session byte budget exhausted"));
  }
  sess.inflight_bytes += estimate;

  auto flight = std::make_shared<Flight>();
  flight->key = std::move(key);
  flight->request = std::move(request);
  flight->selection = std::move(selection);
  flight->brush = std::move(brush);
  flight->brush_snap = std::move(brush_snap);
  flight->future = flight->promise.get_future().share();
  flight->attaches.push_back({session, now, estimate});
  if (flight->request.deadline_ms > 0)
    flight->deadline =
        now + std::chrono::milliseconds(flight->request.deadline_ms);
  const auto priority = static_cast<unsigned>(flight->request.priority);
  impl->queue[priority < kNumPriorities ? priority : kNumPriorities - 1][session]
      .push_back(flight);
  ++impl->queued;
  impl->counters.peak_queue_depth =
      std::max<std::uint64_t>(impl->counters.peak_queue_depth, impl->queued);
  impl->inflight_by_key.emplace(flight->key, flight);
  ResultFuture future = flight->future;

  const bool spawn = impl->active_workers < impl->max_concurrency;
  if (spawn) ++impl->active_workers;
  lock.unlock();
  if (spawn)
    par::ThreadPool::global().submit([impl] { impl->worker(); },
                                     par::TaskPriority::kHigh);
  return future;
}

ResultPtr QueryService::execute(SessionId session, Request request) {
  return submit(session, std::move(request)).get();
}

namespace {

BrushOutcome brush_fail(std::string name, Status status, std::string message) {
  BrushOutcome out;
  out.status = status;
  out.error = std::move(message);
  out.name = std::move(name);
  return out;
}

}  // namespace

BrushOutcome QueryService::brush_create(SessionId session,
                                        const std::string& name,
                                        const std::string& query_text) {
  const auto impl = impl_;
  if (!valid_brush_name(name))
    return brush_fail(name, Status::kError,
                      "bad brush name '" + name +
                          "' (need 1-64 chars of [A-Za-z0-9_.-])");
  if (query_text.empty())
    return brush_fail(name, Status::kError, "brush create needs q=<predicate>");
  std::shared_ptr<core::Brush> brush;
  try {
    // Parse/canonicalize/plan outside the service lock; the Selection is
    // copied into the brush, which owns its composed chain from here on.
    auto sel = impl->engine.select_shared(query_text);
    brush = std::make_shared<core::Brush>(*sel, impl->brush_counters);
  } catch (const std::exception& e) {
    return brush_fail(name, Status::kError, e.what());
  }
  const std::uint64_t charge = impl->brush_estimate();
  std::lock_guard<std::mutex> lock(impl->mutex);
  const auto sit = impl->sessions.find(session);
  if (sit == impl->sessions.end())
    return brush_fail(name, Status::kError, "unknown session");
  Impl::Session& sess = sit->second;
  if (sess.brushes.count(name) != 0)
    return brush_fail(name, Status::kError,
                      "brush '" + name + "' already exists");
  if (sess.brushes.size() >= impl->config.max_brushes_per_session)
    return brush_fail(
        name, Status::kError,
        "session brush cap reached (" +
            std::to_string(impl->config.max_brushes_per_session) + ")");
  if (sess.budget_bytes != ServiceConfig::kUnlimitedBudget &&
      sess.inflight_bytes + sess.brush_charge + charge > sess.budget_bytes)
    return brush_fail(name, Status::kRejectedBudget,
                      "session byte budget exhausted (brush state counts "
                      "against it)");
  sess.brushes.emplace(name, brush);
  sess.brush_charge += charge;
  ++impl->counters.brush_creates;
  BrushOutcome out;
  out.name = name;
  out.epoch = brush->epoch();
  out.resident_bytes = brush->resident_bytes();
  out.session_brushes = sess.brushes.size();
  return out;
}

BrushOutcome QueryService::brush_refine(SessionId session,
                                        const std::string& name,
                                        const std::string& query_text) {
  const auto impl = impl_;
  if (query_text.empty())
    return brush_fail(name, Status::kError, "brush refine needs q=<predicate>");
  QueryPtr extra;
  try {
    extra = parse_query(query_text);
  } catch (const std::exception& e) {
    return brush_fail(name, Status::kError, e.what());
  }
  std::shared_ptr<core::Brush> brush;
  std::uint64_t session_brushes = 0;
  {
    std::lock_guard<std::mutex> lock(impl->mutex);
    const auto sit = impl->sessions.find(session);
    if (sit == impl->sessions.end())
      return brush_fail(name, Status::kError, "unknown session");
    const auto bit = sit->second.brushes.find(name);
    if (bit == sit->second.brushes.end())
      return brush_fail(name, Status::kError, "unknown brush '" + name + "'");
    brush = bit->second;
    session_brushes = sit->second.brushes.size();
  }
  BrushOutcome out;
  out.name = name;
  out.session_brushes = session_brushes;
  try {
    // Record the delta outside the service lock (refine plans the extra
    // predicate); concurrent queries keep evaluating their pinned epochs.
    out.epoch = brush->refine(std::move(extra));
  } catch (const std::exception& e) {
    return brush_fail(name, Status::kError, e.what());
  }
  out.resident_bytes = brush->resident_bytes();
  std::lock_guard<std::mutex> lock(impl->mutex);
  ++impl->counters.brush_edits;
  return out;
}

BrushOutcome QueryService::brush_invert(SessionId session,
                                        const std::string& name) {
  const auto impl = impl_;
  std::shared_ptr<core::Brush> brush;
  std::uint64_t session_brushes = 0;
  {
    std::lock_guard<std::mutex> lock(impl->mutex);
    const auto sit = impl->sessions.find(session);
    if (sit == impl->sessions.end())
      return brush_fail(name, Status::kError, "unknown session");
    const auto bit = sit->second.brushes.find(name);
    if (bit == sit->second.brushes.end())
      return brush_fail(name, Status::kError, "unknown brush '" + name + "'");
    brush = bit->second;
    session_brushes = sit->second.brushes.size();
  }
  BrushOutcome out;
  out.name = name;
  out.session_brushes = session_brushes;
  try {
    out.epoch = brush->invert();
  } catch (const std::exception& e) {
    return brush_fail(name, Status::kError, e.what());
  }
  out.resident_bytes = brush->resident_bytes();
  std::lock_guard<std::mutex> lock(impl->mutex);
  ++impl->counters.brush_edits;
  return out;
}

BrushOutcome QueryService::brush_combine(SessionId session,
                                         const std::string& name,
                                         const std::string& other,
                                         core::Brush::CombineOp op) {
  const auto impl = impl_;
  std::shared_ptr<core::Brush> brush;
  std::shared_ptr<core::Brush> operand;
  std::uint64_t session_brushes = 0;
  {
    std::lock_guard<std::mutex> lock(impl->mutex);
    const auto sit = impl->sessions.find(session);
    if (sit == impl->sessions.end())
      return brush_fail(name, Status::kError, "unknown session");
    const auto bit = sit->second.brushes.find(name);
    if (bit == sit->second.brushes.end())
      return brush_fail(name, Status::kError, "unknown brush '" + name + "'");
    const auto oit = sit->second.brushes.find(other);
    if (oit == sit->second.brushes.end())
      return brush_fail(name, Status::kError,
                        "unknown brush '" + other + "'");
    brush = bit->second;
    operand = oit->second;
    session_brushes = sit->second.brushes.size();
  }
  BrushOutcome out;
  out.name = name;
  out.session_brushes = session_brushes;
  try {
    out.epoch = brush->combine(*operand, op);
  } catch (const std::exception& e) {
    return brush_fail(name, Status::kError, e.what());
  }
  out.resident_bytes = brush->resident_bytes();
  std::lock_guard<std::mutex> lock(impl->mutex);
  ++impl->counters.brush_edits;
  return out;
}

BrushOutcome QueryService::brush_drop(SessionId session,
                                      const std::string& name) {
  const auto impl = impl_;
  std::shared_ptr<core::Brush> brush;  // destroyed outside the lock
  BrushOutcome out;
  out.name = name;
  std::lock_guard<std::mutex> lock(impl->mutex);
  const auto sit = impl->sessions.find(session);
  if (sit == impl->sessions.end())
    return brush_fail(name, Status::kError, "unknown session");
  Impl::Session& sess = sit->second;
  const auto bit = sess.brushes.find(name);
  if (bit == sess.brushes.end())
    return brush_fail(name, Status::kError, "unknown brush '" + name + "'");
  brush = std::move(bit->second);
  sess.brushes.erase(bit);
  const std::uint64_t charge = impl->brush_estimate();
  sess.brush_charge -= std::min(sess.brush_charge, charge);
  ++impl->counters.brush_drops;
  out.epoch = brush->epoch();
  out.session_brushes = sess.brushes.size();
  return out;
}

void QueryService::drain() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->idle_cv.wait(lock, [this] {
    return impl_->queued == 0 && impl_->executing == 0 &&
           impl_->active_workers == 0;
  });
}

void QueryService::set_distributor(
    std::shared_ptr<dist::Coordinator> coordinator) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->distributor_handle = std::move(coordinator);
}

std::shared_ptr<dist::Coordinator> QueryService::distributor() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->distributor_handle;
}

ServiceStats QueryService::stats() const {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  ServiceStats s = impl_->counters;
  s.queue_depth = impl_->queued;
  s.inflight = impl_->executing;
  s.open_sessions = impl_->sessions.size();
  for (const auto& [sid, sess] : impl_->sessions) {
    s.brush_count += sess.brushes.size();
    for (const auto& [bname, b] : sess.brushes)
      s.brush_bytes += b->resident_bytes();
  }
  s.brush_delta_evals =
      impl_->brush_counters->delta_evals.load(std::memory_order_relaxed);
  s.brush_full_evals =
      impl_->brush_counters->full_evals.load(std::memory_order_relaxed);
  s.max_seconds = impl_->latency_max;
  s.dist_local_fallbacks = impl_->dist_local_fallbacks;
  const io::IntegrityStats& integ = *impl_->engine.dataset().integrity_stats();
  s.integrity_verified = integ.verified.load(std::memory_order_relaxed);
  s.integrity_failures = integ.failures.load(std::memory_order_relaxed);
  s.integrity_demotions = integ.demotions.load(std::memory_order_relaxed);
  s.integrity_unverified = integ.unverified.load(std::memory_order_relaxed);
  const std::shared_ptr<dist::Coordinator> coordinator =
      impl_->distributor_handle;
  std::vector<double> sorted = impl_->latencies;
  lock.unlock();
  if (coordinator) {
    const dist::DistStats d = coordinator->stats();
    s.dist_workers = d.workers;
    s.dist_alive = d.alive;
    s.dist_queries = d.queries;
    s.dist_scatters = d.scatters;
    s.dist_gathers = d.gathers;
    s.dist_retries = d.retries;
    s.dist_reshards = d.reshards;
    s.dist_deaths = d.deaths;
    s.dist_remote_errors = d.remote_errors;
    s.dist_per_worker.reserve(d.per_worker.size());
    for (const dist::WorkerCounters& w : d.per_worker)
      s.dist_per_worker.push_back(
          {w.name, w.alive, w.requests, w.failures, w.retries});
  }
  std::sort(sorted.begin(), sorted.end());
  s.p50_seconds = sorted_percentile(sorted, 0.50);
  s.p95_seconds = sorted_percentile(sorted, 0.95);
  s.p99_seconds = sorted_percentile(sorted, 0.99);
  return s;
}

const core::Engine& QueryService::engine() const { return impl_->engine; }

}  // namespace qdv::svc
