#include "svc/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "io/io_util.hpp"
#include "svc/protocol.hpp"

namespace qdv::svc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_address(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string text = path.string();
  if (text.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + text);
  std::memcpy(addr.sun_path, text.c_str(), text.size() + 1);
  return addr;
}

/// Write all of @p line plus a newline; false once the peer is gone.
bool write_line(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  return io::send_full(fd, out.data(), out.size(), fault::Site::kSvc) ==
         io::XferResult::kOk;
}

/// Read up to the next newline (leftover bytes stay in @p buffer); false on
/// EOF / error with nothing buffered. On a receive timeout errno stays
/// EAGAIN for the caller to inspect.
bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t pos = buffer.find('\n');
    if (pos != std::string::npos) {
      line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    char chunk[4096];
    std::size_t got = 0;
    switch (io::recv_some(fd, chunk, sizeof chunk, fault::Site::kSvc, got)) {
      case io::XferResult::kOk:
        buffer.append(chunk, got);
        break;
      case io::XferResult::kTimeout:
        errno = EAGAIN;
        return false;
      case io::XferResult::kClosed:
        errno = 0;
        return false;
    }
  }
}

}  // namespace

struct SocketServer::Impl {
  QueryService& service;
  std::filesystem::path path;
  int listen_fd = -1;
  std::thread accept_thread;
  bool started = false;
  bool stopped = false;

  /// One live (or recently finished, not yet reaped) connection. `fd` is
  /// reset to -1 under the mutex before the handler closes it, so stop()
  /// can never shut down a kernel-reused descriptor; `done` flips as the
  /// handler's last step, making the thread joinable without blocking.
  struct Conn {
    int fd = -1;
    std::shared_ptr<std::atomic<bool>> done;
    std::thread thread;
  };

  std::mutex mutex;  // guards conns / counters
  std::vector<Conn> conns;
  std::uint64_t accepted = 0;

  explicit Impl(QueryService& s, std::filesystem::path p)
      : service(s), path(std::move(p)) {}

  void serve_connection(int fd, const std::shared_ptr<std::atomic<bool>>& done) {
    const QueryService::SessionId session = service.open_session("socket");
    try {
      handle_lines(fd, session);
    } catch (const std::exception&) {
      // A handler-side failure closes this connection only; the session
      // teardown below still runs, so a dying socket can never leak its
      // open_sessions slot or in-flight budget (it is released exactly
      // once, on this path or the normal one).
    }
    service.close_session(session);
    {
      std::lock_guard<std::mutex> lock(mutex);
      for (Conn& c : conns)
        if (c.done == done) c.fd = -1;
    }
    ::close(fd);
    done->store(true, std::memory_order_release);
  }

  void handle_lines(int fd, QueryService::SessionId session) {
    std::string buffer;
    std::string line;
    bool greeted = false;
    while (read_line(fd, buffer, line)) {
      if (line.empty()) continue;
      WireRequest wire;
      std::string error;
      std::string response;
      const bool parsed = parse_request_line(line, wire, error);
      // Version gate: the first line must be a matching `hello` greeting,
      // so a stale client fails loudly and immediately instead of
      // misparsing responses mid-session.
      if (!greeted) {
        if (parsed && wire.op == WireRequest::Op::kHello &&
            wire.hello_version == kProtocolVersion) {
          greeted = true;
          write_line(fd, "ok qdv v=" + std::to_string(kProtocolVersion));
          continue;
        }
        if (parsed && wire.op == WireRequest::Op::kHello) {
          write_line(fd, "err protocol version mismatch: server speaks v" +
                             std::to_string(kProtocolVersion) +
                             ", client greeted with v" +
                             std::to_string(wire.hello_version) +
                             " (upgrade the older side)");
        } else {
          write_line(fd,
                     "err protocol version mismatch: expected 'hello v=" +
                         std::to_string(kProtocolVersion) +
                         "' greeting before '" + line +
                         "' (stale client, or hand-driven session missing "
                         "the greeting)");
        }
        break;
      }
      if (!parsed) {
        response = "err " + error;
      } else if (wire.op == WireRequest::Op::kHello) {
        response = "ok qdv v=" + std::to_string(kProtocolVersion);
      } else if (wire.op == WireRequest::Op::kPing) {
        response = "ok pong";
      } else if (wire.op == WireRequest::Op::kQuit) {
        write_line(fd, "ok bye");
        break;
      } else if (wire.op == WireRequest::Op::kStats) {
        response = format_stats_line(service.stats());
      } else if (wire.op == WireRequest::Op::kBrush) {
        BrushOutcome outcome;
        switch (wire.brush_action) {
          case WireRequest::BrushAction::kCreate:
            outcome = service.brush_create(session, wire.brush_name,
                                           wire.request.query);
            break;
          case WireRequest::BrushAction::kRefine:
            outcome = service.brush_refine(session, wire.brush_name,
                                           wire.request.query);
            break;
          case WireRequest::BrushAction::kInvert:
            outcome = service.brush_invert(session, wire.brush_name);
            break;
          case WireRequest::BrushAction::kCombine:
            outcome = service.brush_combine(session, wire.brush_name,
                                            wire.brush_with,
                                            wire.brush_combine_op);
            break;
          case WireRequest::BrushAction::kDrop:
            outcome = service.brush_drop(session, wire.brush_name);
            break;
        }
        response = format_brush_response_line(outcome);
      } else {
        const ResultPtr result = service.execute(session, wire.request);
        response = format_response_line(*result, wire.ids_limit);
      }
      if (!write_line(fd, response)) break;
    }
  }

  /// Join and drop finished connections (called on each accept, so a
  /// long-running server does not accrete one zombie thread per client).
  void reap_locked() {
    for (std::size_t i = 0; i < conns.size();) {
      if (conns[i].done->load(std::memory_order_acquire)) {
        conns[i].thread.join();
        conns[i] = std::move(conns.back());
        conns.pop_back();
      } else {
        ++i;
      }
    }
  }

  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener closed by stop()
      }
      std::lock_guard<std::mutex> lock(mutex);
      ++accepted;
      reap_locked();
      Conn conn;
      conn.fd = fd;
      conn.done = std::make_shared<std::atomic<bool>>(false);
      conn.thread = std::thread(
          [this, fd, done = conn.done] { serve_connection(fd, done); });
      conns.push_back(std::move(conn));
    }
  }
};

SocketServer::SocketServer(QueryService& service, std::filesystem::path socket_path)
    : impl_(std::make_unique<Impl>(service, std::move(socket_path))) {
  std::filesystem::remove(impl_->path);
  impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) throw_errno("socket");
  const sockaddr_un addr = make_address(impl_->path);
  if (::bind(impl_->listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    ::close(impl_->listen_fd);
    throw_errno("bind " + impl_->path.string());
  }
  if (::listen(impl_->listen_fd, 64) != 0) {
    ::close(impl_->listen_fd);
    throw_errno("listen " + impl_->path.string());
  }
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  if (impl_->started) return;
  impl_->started = true;
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
}

void SocketServer::stop() {
  if (impl_->stopped) return;
  impl_->stopped = true;
  // Closing the listener pops accept() with an error; shutting the
  // connection sockets pops their reads. Threads then exit on their own.
  ::shutdown(impl_->listen_fd, SHUT_RDWR);
  ::close(impl_->listen_fd);
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  std::vector<Impl::Conn> conns;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const Impl::Conn& c : impl_->conns)
      if (c.fd >= 0) ::shutdown(c.fd, SHUT_RDWR);
    conns.swap(impl_->conns);
  }
  for (Impl::Conn& c : conns) c.thread.join();
  std::filesystem::remove(impl_->path);
}

const std::filesystem::path& SocketServer::socket_path() const {
  return impl_->path;
}

std::uint64_t SocketServer::connections() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->accepted;
}

SocketClient::SocketClient(const std::filesystem::path& socket_path,
                           std::chrono::milliseconds receive_timeout) {
  const sockaddr_un addr = make_address(socket_path);
  // The server may still be between bind() and listen(); retry briefly.
  for (int attempt = 0; fd_ < 0 && attempt < 50; ++attempt) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("socket");
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  if (fd_ < 0) throw std::runtime_error("cannot connect to " + socket_path.string());
  if (receive_timeout.count() > 0) {
    // SO_RCVTIMEO: a stalled or wedged server surfaces as a clear timeout
    // error on this client instead of blocking it forever.
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(receive_timeout.count() / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((receive_timeout.count() % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  // Version handshake: fail construction with the server's own message on
  // a mismatch. The destructor never runs for a partially constructed
  // object, so a throwing handshake must close the descriptor here.
  try {
    const std::string reply =
        request("hello v=" + std::to_string(kProtocolVersion));
    std::string body;
    if (!parse_response_line(reply, body))
      throw std::runtime_error("server rejected handshake: " + body);
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

SocketClient::SocketClient(SocketClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

std::string SocketClient::request(const std::string& line) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  if (!write_line(fd_, line)) throw std::runtime_error("connection lost (send)");
  std::string response;
  if (!read_line(fd_, buffer_, response)) {
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      throw std::runtime_error("receive timed out (server stalled?)");
    throw std::runtime_error("connection lost (recv)");
  }
  return response;
}

}  // namespace qdv::svc
