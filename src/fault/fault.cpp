#include "fault/fault.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace qdv::fault {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

struct Schedule {
  std::mutex mutex;
  // Fixed-point probability per (site, kind): fires when draw % kDenom < rate.
  static constexpr std::uint64_t kDenom = 1u << 20;
  std::array<std::array<std::uint64_t, kNumKinds>, kNumSites> rates{};
  std::array<std::array<std::uint64_t, kNumKinds>, kNumSites> fired{};
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
};

Schedule& sched() {
  static Schedule s;
  return s;
}

std::uint64_t xorshift(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

bool parse_site(const std::string& text, Site& out) {
  if (text == "file") out = Site::kFile;
  else if (text == "wire") out = Site::kWire;
  else if (text == "svc") out = Site::kSvc;
  else return false;
  return true;
}

bool parse_kind(const std::string& text, Kind& out) {
  if (text == "short") out = Kind::kShortRead;
  else if (text == "eintr") out = Kind::kEintr;
  else if (text == "enospc") out = Kind::kEnospc;
  else if (text == "flip") out = Kind::kBitFlip;
  else if (text == "trunc") out = Kind::kTruncate;
  else if (text == "reset") out = Kind::kConnReset;
  else if (text == "delay") out = Kind::kLatency;
  else return false;
  return true;
}

// One comma-separated token: "seed:<n>" or "spec:<site>.<kind>@<rate>".
bool apply_token(Schedule& s, const std::string& token, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error) *error = what + " in fault token '" + token + "'";
    return false;
  };
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos) return fail("missing ':'");
  const std::string key = token.substr(0, colon);
  const std::string value = token.substr(colon + 1);
  if (key == "seed") {
    char* end = nullptr;
    const unsigned long long seed = std::strtoull(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0') return fail("bad seed");
    s.rng = seed | 1;  // xorshift must not start at zero
    return true;
  }
  if (key != "spec") return fail("unknown key '" + key + "'");
  const std::size_t dot = value.find('.');
  const std::size_t at = value.find('@');
  if (dot == std::string::npos || at == std::string::npos || at < dot)
    return fail("expected <site>.<kind>@<rate>");
  Site site;
  Kind kind;
  if (!parse_site(value.substr(0, dot), site)) return fail("unknown site");
  if (!parse_kind(value.substr(dot + 1, at - dot - 1), kind))
    return fail("unknown kind");
  char* end = nullptr;
  const std::string rate_text = value.substr(at + 1);
  const double rate = std::strtod(rate_text.c_str(), &end);
  if (end == rate_text.c_str() || *end != '\0' || rate < 0.0 || rate > 1.0)
    return fail("rate must be in [0, 1]");
  s.rates[static_cast<unsigned>(site)][static_cast<unsigned>(kind)] =
      static_cast<std::uint64_t>(rate * static_cast<double>(Schedule::kDenom));
  return true;
}

// Parse QDV_FAULT once at process start so spawned tools/workers inherit
// the schedule without any code having to call configure().
const bool g_env_loaded = [] {
  if (const char* env = std::getenv("QDV_FAULT")) {
    std::string error;
    if (!configure(env, &error))
      std::fprintf(stderr, "qdv: ignoring QDV_FAULT: %s\n", error.c_str());
  }
  return true;
}();

}  // namespace

bool configure(const std::string& spec, std::string* error) {
  Schedule& s = sched();
  std::lock_guard<std::mutex> lock(s.mutex);
  decltype(s.rates) rates{};
  std::uint64_t rng = s.rng;
  // Parse into locals first so a malformed spec leaves the schedule alone.
  {
    Schedule scratch;
    scratch.rng = rng;
    std::size_t start = 0;
    while (start <= spec.size()) {
      const std::size_t comma = spec.find(',', start);
      const std::string token =
          spec.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      if (!token.empty() && !apply_token(scratch, token, error)) return false;
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    rates = scratch.rates;
    rng = scratch.rng;
  }
  s.rates = rates;
  s.rng = rng;
  s.fired = {};
  bool any = false;
  for (const auto& per_site : s.rates)
    for (const std::uint64_t r : per_site) any = any || r != 0;
  detail::g_enabled.store(any, std::memory_order_relaxed);
  return true;
}

void reset() {
  Schedule& s = sched();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.rates = {};
  s.fired = {};
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

bool roll(Site site, Kind kind) {
  Schedule& s = sched();
  std::lock_guard<std::mutex> lock(s.mutex);
  const std::uint64_t rate =
      s.rates[static_cast<unsigned>(site)][static_cast<unsigned>(kind)];
  if (rate == 0) return false;
  if (xorshift(s.rng) % Schedule::kDenom >= rate) return false;
  ++s.fired[static_cast<unsigned>(site)][static_cast<unsigned>(kind)];
  return true;
}

std::uint64_t draw() {
  Schedule& s = sched();
  std::lock_guard<std::mutex> lock(s.mutex);
  return xorshift(s.rng);
}

std::uint64_t injected(Site site, Kind kind) {
  Schedule& s = sched();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.fired[static_cast<unsigned>(site)][static_cast<unsigned>(kind)];
}

std::uint64_t injected_total() {
  Schedule& s = sched();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::uint64_t total = 0;
  for (const auto& per_site : s.fired)
    for (const std::uint64_t f : per_site) total += f;
  return total;
}

const char* site_name(Site site) {
  switch (site) {
    case Site::kFile: return "file";
    case Site::kWire: return "wire";
    case Site::kSvc: return "svc";
  }
  return "?";
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kShortRead: return "short";
    case Kind::kEintr: return "eintr";
    case Kind::kEnospc: return "enospc";
    case Kind::kBitFlip: return "flip";
    case Kind::kTruncate: return "trunc";
    case Kind::kConnReset: return "reset";
    case Kind::kLatency: return "delay";
  }
  return "?";
}

}  // namespace qdv::fault
