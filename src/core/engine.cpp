#include "core/engine.hpp"

#include <algorithm>

#include "core/selection.hpp"
#include "engine_state.hpp"

namespace qdv::core {

namespace detail {

std::string entry_key(std::size_t t, const std::string& node_key) {
  return "t#" + std::to_string(t) + "|" + node_key;
}

std::shared_ptr<const BitVector> EngineState::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = by_key.find(key);
  if (it == by_key.end()) {
    ++misses;
    return nullptr;
  }
  ++hits;
  lru.splice(lru.begin(), lru, it->second);  // refresh recency
  return it->second->bits;
}

void EngineState::insert(const std::string& key,
                         std::shared_ptr<const BitVector> bits) {
  std::lock_guard<std::mutex> lock(mutex);
  if (const auto it = by_key.find(key); it != by_key.end()) {
    // A concurrent miss computed the same entry first; keep it.
    lru.splice(lru.begin(), lru, it->second);
    return;
  }
  lru.push_front(CacheEntry{key, std::move(bits)});
  by_key.emplace(key, lru.begin());
  bytes += lru.front().bits->memory_bytes();
  evict_to_capacity_locked();
}

void EngineState::evict_to_capacity_locked() {
  while (lru.size() > capacity) {
    const CacheEntry& victim = lru.back();
    bytes -= victim.bits->memory_bytes();
    by_key.erase(victim.key);
    lru.pop_back();
    ++evictions;
  }
}

BitVector EngineState::compute(const Query& q, std::size_t t) {
  switch (q.kind()) {
    case Query::Kind::kAnd: {
      const auto& aq = static_cast<const AndQuery&>(q);
      return *evaluate(aq.lhs(), t) & *evaluate(aq.rhs(), t);
    }
    case Query::Kind::kOr: {
      const auto& oq = static_cast<const OrQuery&>(q);
      return *evaluate(oq.lhs(), t) | *evaluate(oq.rhs(), t);
    }
    case Query::Kind::kNot:
      return ~*evaluate(static_cast<const NotQuery&>(q).operand(), t);
    case Query::Kind::kCompare:
    case Query::Kind::kInterval:
    case Query::Kind::kIdIn:
      return dataset.table(t).query(q, mode);
  }
  throw std::logic_error("EngineState::compute: bad query kind");
}

std::shared_ptr<const BitVector> EngineState::evaluate(const Query& q,
                                                       std::size_t t) {
  const std::string key = entry_key(t, q.to_string());
  if (auto cached = lookup(key)) return cached;
  auto bits = std::make_shared<const BitVector>(compute(q, t));
  insert(key, bits);
  return bits;
}

std::shared_ptr<const BitVector> EngineState::all_rows(std::size_t t) {
  const std::string key = entry_key(t, "<all records>");
  if (auto cached = lookup(key)) return cached;
  auto bits =
      std::make_shared<const BitVector>(BitVector::ones(dataset.table(t).num_rows()));
  insert(key, bits);
  return bits;
}

}  // namespace detail

Engine Engine::open(const std::filesystem::path& dir) {
  return Engine(io::Dataset::open(dir));
}

Engine::Engine(io::Dataset dataset, EvalMode mode)
    : state_(std::make_shared<detail::EngineState>()) {
  state_->dataset = std::move(dataset);
  state_->mode = mode;
}

const io::Dataset& Engine::dataset() const { return state_->dataset; }

std::size_t Engine::num_timesteps() const { return state_->dataset.num_timesteps(); }

Selection Engine::select(const std::string& query_text) const {
  return select(parse_query(query_text));
}

Selection Engine::select(QueryPtr query) const {
  const io::TimestepTable* probe =
      state_->dataset.num_timesteps() > 0 ? &state_->dataset.table(0) : nullptr;
  auto plan = std::make_shared<const ExecutionPlan>(
      plan_query(std::move(query), probe));
  return Selection(state_, std::move(plan));
}

Selection Engine::all() const { return select(QueryPtr{}); }

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  EngineStats s;
  s.hits = state_->hits;
  s.misses = state_->misses;
  s.evictions = state_->evictions;
  s.entries = state_->lru.size();
  s.bytes = state_->bytes;
  return s;
}

void Engine::clear_cache() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->lru.clear();
  state_->by_key.clear();
  state_->bytes = 0;
}

void Engine::set_cache_capacity(std::size_t entries) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->capacity = std::max<std::size_t>(1, entries);
  state_->evict_to_capacity_locked();
}

std::size_t Engine::cache_capacity() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->capacity;
}

}  // namespace qdv::core
