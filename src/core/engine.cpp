#include "core/engine.hpp"

#include <algorithm>

#include "bitmap/simd.hpp"
#include "core/selection.hpp"
#include "engine_state.hpp"

namespace qdv::core {

namespace detail {

namespace {
constexpr std::size_t kDefaultCacheEntries = 1024;
}  // namespace

std::string entry_key(std::size_t t, const std::string& node_key) {
  return "bv|t#" + std::to_string(t) + "|" + node_key;
}

BitVector EngineState::compute(const Query& q, std::size_t t) {
  switch (q.kind()) {
    case Query::Kind::kAnd: {
      const auto& aq = static_cast<const AndQuery&>(q);
      return *evaluate(aq.lhs(), t) & *evaluate(aq.rhs(), t);
    }
    case Query::Kind::kOr: {
      const auto& oq = static_cast<const OrQuery&>(q);
      return *evaluate(oq.lhs(), t) | *evaluate(oq.rhs(), t);
    }
    case Query::Kind::kNot:
      return ~*evaluate(static_cast<const NotQuery&>(q).operand(), t);
    case Query::Kind::kCompare:
    case Query::Kind::kInterval:
    case Query::Kind::kIdIn:
      return dataset.table(t).query(q, mode);
  }
  throw std::logic_error("EngineState::compute: bad query kind");
}

std::shared_ptr<const BitVector> EngineState::evaluate(const Query& q,
                                                       std::size_t t) {
  const std::string key = entry_key(t, q.to_string());
  if (auto cached = budget->get(key, io::ResidentClass::kBitVector)) {
    hits.fetch_add(1, std::memory_order_relaxed);
    return std::static_pointer_cast<const BitVector>(cached);
  }
  misses.fetch_add(1, std::memory_order_relaxed);
  auto bits = std::make_shared<const BitVector>(compute(q, t));
  budget->put(key, bits, bits->memory_bytes(), io::ResidentClass::kBitVector);
  return bits;
}

std::shared_ptr<const BitVector> EngineState::all_rows(std::size_t t) {
  const std::string key = entry_key(t, "<all records>");
  if (auto cached = budget->get(key, io::ResidentClass::kBitVector)) {
    hits.fetch_add(1, std::memory_order_relaxed);
    return std::static_pointer_cast<const BitVector>(cached);
  }
  misses.fetch_add(1, std::memory_order_relaxed);
  auto bits =
      std::make_shared<const BitVector>(BitVector::ones(dataset.table(t).num_rows()));
  budget->put(key, bits, bits->memory_bytes(), io::ResidentClass::kBitVector);
  return bits;
}

}  // namespace detail

Engine Engine::open(const std::filesystem::path& dir) {
  return Engine(io::Dataset::open(dir));
}

Engine::Engine(io::Dataset dataset, EvalMode mode)
    : state_(std::make_shared<detail::EngineState>()) {
  state_->dataset = std::move(dataset);
  state_->mode = mode;
  state_->budget = state_->dataset.memory_budget();
  if (state_->budget->class_entry_cap(io::ResidentClass::kBitVector) ==
      io::MemoryBudget::kNoEntryCap)
    state_->budget->set_class_entry_cap(io::ResidentClass::kBitVector,
                                        detail::kDefaultCacheEntries);
}

const io::Dataset& Engine::dataset() const { return state_->dataset; }

std::size_t Engine::num_timesteps() const { return state_->dataset.num_timesteps(); }

Selection Engine::select(const std::string& query_text) const {
  return select(parse_query(query_text));
}

Selection Engine::select(QueryPtr query) const {
  const io::TimestepTable* probe =
      state_->dataset.num_timesteps() > 0 ? &state_->dataset.table(0) : nullptr;
  auto plan = std::make_shared<const ExecutionPlan>(
      plan_query(std::move(query), probe));
  return Selection(state_, std::move(plan));
}

Selection Engine::all() const { return select(QueryPtr{}); }

std::shared_ptr<const Selection> Engine::select_shared(
    const std::string& query_text) const {
  std::shared_ptr<const ExecutionPlan> plan;
  {
    std::lock_guard<std::mutex> lock(state_->plan_mutex);
    const auto it = state_->plan_cache.find(query_text);
    if (it != state_->plan_cache.end()) plan = it->second;
  }
  if (!plan) {
    // Parse/plan outside the lock (pure, idempotent); two racing threads
    // may both plan — the first insert wins, matching the bitvector cache
    // race.
    const io::TimestepTable* probe =
        state_->dataset.num_timesteps() > 0 ? &state_->dataset.table(0) : nullptr;
    plan = std::make_shared<const ExecutionPlan>(
        plan_query(query_text.empty() ? QueryPtr{} : parse_query(query_text),
                   probe));
    std::lock_guard<std::mutex> lock(state_->plan_mutex);
    if (state_->plan_cache.size() >= detail::EngineState::kPlanCacheCap)
      state_->plan_cache.clear();
    plan = state_->plan_cache.try_emplace(query_text, std::move(plan))
               .first->second;
  }
  // The Selection handle itself is two shared_ptr copies — built per call
  // so the cache never stores anything that points back at this state.
  return std::make_shared<const Selection>(Selection(state_, std::move(plan)));
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.hits = state_->hits.load(std::memory_order_relaxed);
  s.misses = state_->misses.load(std::memory_order_relaxed);
  const io::MemoryBudgetStats b = state_->budget->stats();
  s.entries = b.of(io::ResidentClass::kBitVector).entries;
  s.bytes = b.of(io::ResidentClass::kBitVector).bytes;
  s.evictions = b.of(io::ResidentClass::kBitVector).evictions;
  s.budget_bytes = b.budget_bytes;
  s.resident_bytes = b.resident_bytes;
  s.column_bytes = b.of(io::ResidentClass::kColumn).bytes;
  s.segment_bytes = b.of(io::ResidentClass::kIndexSegment).bytes;
  // I/O volume only: bitvectors are computed in memory, not read from disk.
  s.loaded_bytes = b.of(io::ResidentClass::kColumn).loaded_bytes +
                   b.of(io::ResidentClass::kIndexSegment).loaded_bytes +
                   b.of(io::ResidentClass::kPyramid).loaded_bytes;
  s.io_evictions = b.of(io::ResidentClass::kColumn).evictions +
                   b.of(io::ResidentClass::kIndexSegment).evictions +
                   b.of(io::ResidentClass::kPyramid).evictions;
  s.pyramid_bytes = b.of(io::ResidentClass::kPyramid).bytes;
  s.pyramid_evictions = b.of(io::ResidentClass::kPyramid).evictions;
  s.pyramid_served = state_->pyramid_served.load(std::memory_order_relaxed);
  s.pyramid_fallback =
      state_->pyramid_fallback.load(std::memory_order_relaxed);
  const io::IntegrityStats& integ = *state_->dataset.integrity_stats();
  s.integrity_verified = integ.verified.load(std::memory_order_relaxed);
  s.integrity_failures = integ.failures.load(std::memory_order_relaxed);
  s.integrity_demotions = integ.demotions.load(std::memory_order_relaxed);
  s.integrity_unverified = integ.unverified.load(std::memory_order_relaxed);
  s.simd_isa = simd::isa_name(simd::active());
  const simd::DispatchCounts d = simd::dispatch_counts();
  s.positions_vector_calls = d.positions.vector;
  s.positions_scalar_calls = d.positions.scalar;
  s.hist1d_vector_calls = d.hist1d.vector;
  s.hist1d_scalar_calls = d.hist1d.scalar;
  s.hist2d_vector_calls = d.hist2d.vector;
  s.hist2d_scalar_calls = d.hist2d.scalar;
  return s;
}

void Engine::clear_cache() {
  state_->budget->clear_class(io::ResidentClass::kBitVector);
}

void Engine::set_cache_capacity(std::size_t entries) {
  state_->budget->set_class_entry_cap(io::ResidentClass::kBitVector,
                                      std::max<std::size_t>(1, entries));
}

std::size_t Engine::cache_capacity() const {
  return state_->budget->class_entry_cap(io::ResidentClass::kBitVector);
}

void Engine::set_memory_budget(std::uint64_t bytes) {
  state_->budget->set_budget(bytes);
}

std::uint64_t Engine::memory_budget() const { return state_->budget->budget(); }

}  // namespace qdv::core
