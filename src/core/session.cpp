#include "core/session.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "bitmap/kernels.hpp"

namespace qdv::core {

ExplorationSession ExplorationSession::open(const std::filesystem::path& dir) {
  return ExplorationSession(Engine::open(dir));
}

ExplorationSession::ExplorationSession(Engine engine)
    : engine_(std::move(engine)),
      focus_(engine_.all()),
      context_(engine_.all()) {}

void ExplorationSession::set_focus(const std::string& query_text) {
  focus_ = engine_.select(query_text);
}

void ExplorationSession::set_focus(QueryPtr query) {
  focus_ = engine_.select(std::move(query));
}

void ExplorationSession::set_focus(Selection selection) {
  focus_ = std::move(selection);
}

void ExplorationSession::clear_focus() { focus_ = engine_.all(); }

void ExplorationSession::set_context(const std::string& query_text) {
  context_ = engine_.select(query_text);
}

void ExplorationSession::set_context(QueryPtr query) {
  context_ = engine_.select(std::move(query));
}

void ExplorationSession::set_context(Selection selection) {
  context_ = std::move(selection);
}

void ExplorationSession::clear_context() { context_ = engine_.all(); }

std::uint64_t ExplorationSession::focus_count(std::size_t t) const {
  return focus_.count(t);
}

std::vector<std::uint64_t> ExplorationSession::selected_ids(std::size_t t) const {
  return focus_.ids(t);
}

std::pair<double, double> ExplorationSession::global_domain(
    const std::string& name) const {
  return dataset().global_domain(name);
}

namespace {

/// Bins of one axis over its global (cross-timestep) domain, so histograms
/// of different timesteps and pairs align.
Bins axis_bins(const io::Dataset& dataset, std::size_t t, const std::string& name,
               std::size_t nbins, BinningMode binning) {
  const auto [lo, hi] = dataset.global_domain(name);
  if (binning == BinningMode::kUniform)
    return make_uniform_bins(lo, hi > lo ? hi : lo + 1.0, nbins);
  return make_adaptive_bins(lo, hi, dataset.table(t).column(name), nbins);
}

}  // namespace

std::vector<Histogram2D> ExplorationSession::pair_histograms(
    std::size_t t, const std::vector<std::string>& axes, std::size_t bins_per_axis,
    const Selection& selection, BinningMode binning) const {
  if (axes.size() < 2)
    throw std::invalid_argument("pair_histograms: need at least 2 axes");
  const io::TimestepTable& table = dataset().table(t);
  std::vector<Bins> bins;
  std::vector<std::span<const double>> columns;
  bins.reserve(axes.size());
  columns.reserve(axes.size());
  for (const std::string& name : axes) {
    bins.push_back(axis_bins(dataset(), t, name, bins_per_axis, binning));
    columns.push_back(table.column(name));
  }
  // One cached evaluation serves every pair histogram of the walk.
  const bool all_rows = !selection.valid() || selection.selects_all();
  std::shared_ptr<const BitVector> rows;
  if (!all_rows) rows = selection.bits(t);
  std::vector<Histogram2D> hists;
  hists.reserve(axes.size() - 1);
  for (std::size_t pair = 0; pair + 1 < axes.size(); ++pair) {
    Histogram2D h;
    h.xbins = bins[pair];
    h.ybins = bins[pair + 1];
    h.counts.assign(h.nx() * h.ny(), 0);
    const std::span<const double> xs = columns[pair];
    const std::span<const double> ys = columns[pair + 1];
    const Bins::Locator xloc = h.xbins.locator();
    const Bins::Locator yloc = h.ybins.locator();
    const auto tally = [&](std::uint64_t row) {
      const std::ptrdiff_t bx = xloc(xs[row]);
      const std::ptrdiff_t by = yloc(ys[row]);
      if (bx >= 0 && by >= 0)
        ++h.at(static_cast<std::size_t>(bx), static_cast<std::size_t>(by));
    };
    if (all_rows) {
      for (std::uint64_t row = 0; row < xs.size(); ++row) tally(row);
    } else {
      kern::for_each_set_blocked(*rows, tally);
    }
    hists.push_back(std::move(h));
  }
  return hists;
}

std::vector<Histogram2D> ExplorationSession::pair_histograms(
    std::size_t t, const std::vector<std::string>& axes, std::size_t bins_per_axis,
    BinningMode binning) const {
  return pair_histograms(t, axes, bins_per_axis, Selection(), binning);
}

ParticleTracks ExplorationSession::track(
    const std::vector<std::uint64_t>& ids, std::size_t t_from, std::size_t t_to,
    const std::vector<std::string>& variables) const {
  if (t_to >= num_timesteps()) t_to = num_timesteps() - 1;
  if (t_from > t_to) t_from = t_to;
  std::vector<std::size_t> steps;
  for (std::size_t t = t_from; t <= t_to; ++t) steps.push_back(t);
  ParticleTracks tracks(ids, steps, variables);
  for (std::size_t ti = 0; ti < steps.size(); ++ti) {
    const io::TimestepTable& table = dataset().table(steps[ti]);
    // Row of each tracked id at this timestep (-1 when absent).
    std::vector<std::ptrdiff_t> row_of(ids.size(), -1);
    if (const IdIndex* index = table.id_index("id")) {
      for (std::size_t k = 0; k < ids.size(); ++k)
        row_of[k] = index->lookup_row(ids[k]);
    } else {
      std::unordered_map<std::uint64_t, std::uint32_t> lookup;
      const std::span<const std::uint64_t> id_col = table.id_column("id");
      lookup.reserve(id_col.size());
      for (std::uint32_t r = 0; r < id_col.size(); ++r) lookup.emplace(id_col[r], r);
      for (std::size_t k = 0; k < ids.size(); ++k)
        if (const auto it = lookup.find(ids[k]); it != lookup.end())
          row_of[k] = it->second;
    }
    for (std::size_t vi = 0; vi < variables.size(); ++vi) {
      const std::span<const double> values = table.column(variables[vi]);
      std::vector<double>& slot = tracks.values_slot(ti, vi);
      for (std::size_t k = 0; k < ids.size(); ++k)
        if (row_of[k] >= 0) slot[k] = values[static_cast<std::size_t>(row_of[k])];
    }
  }
  return tracks;
}

std::vector<render::PcAxis> ExplorationSession::make_axes(
    const std::vector<std::string>& names) const {
  std::vector<render::PcAxis> axes;
  axes.reserve(names.size());
  for (const std::string& name : names) {
    const auto [lo, hi] = global_domain(name);
    axes.push_back({name, lo, hi > lo ? hi : lo + 1.0});
  }
  return axes;
}

render::Image ExplorationSession::render_parallel_coordinates(
    std::size_t t, const std::vector<std::string>& axes,
    const PcViewOptions& options) const {
  render::ParallelCoordinatesPlot plot(make_axes(axes), options.layout);
  plot.draw_frame();
  {
    render::PcStyle style;
    style.color = options.context_color;
    style.gamma = options.context_gamma;
    style.max_alpha = 0.85f;
    plot.draw_histogram_layer(
        pair_histograms(t, axes, options.context_bins, context_, options.binning),
        style);
  }
  if (!focus_.selects_all()) {
    render::PcStyle style;
    style.color = options.focus_color;
    style.gamma = options.focus_gamma;
    plot.draw_histogram_layer(
        pair_histograms(t, axes, options.focus_bins, focus_, options.binning),
        style);
  }
  return plot.image();
}

render::Image ExplorationSession::render_temporal(
    std::size_t t_from, std::size_t t_to, const std::vector<std::string>& axes,
    const PcViewOptions& options) const {
  if (t_to >= num_timesteps()) t_to = num_timesteps() - 1;
  render::ParallelCoordinatesPlot plot(make_axes(axes), options.layout);
  plot.draw_frame();
  for (std::size_t t = t_from; t <= t_to; ++t) {
    render::PcStyle style;
    style.color = render::palette_color(t - t_from);
    style.gamma = options.focus_gamma;
    style.max_alpha = 0.9f;
    plot.draw_histogram_layer(
        pair_histograms(t, axes, options.focus_bins, focus_, options.binning),
        style);
  }
  return plot.image();
}

render::Image ExplorationSession::render_scatter(
    std::size_t t, const std::string& x, const std::string& y,
    const std::string& color_variable) const {
  constexpr std::size_t kWidth = 800, kHeight = 600, kMargin = 24;
  render::Image img(kWidth, kHeight);
  const io::TimestepTable& table = dataset().table(t);
  const std::span<const double> xs = table.column(x);
  const std::span<const double> ys = table.column(y);
  const std::span<const double> cs = table.column(color_variable);
  const auto [xlo, xhi] = global_domain(x);
  const auto [ylo, yhi] = global_domain(y);
  const auto [clo, chi] = global_domain(color_variable);
  const double xspan = xhi > xlo ? xhi - xlo : 1.0;
  const double yspan = yhi > ylo ? yhi - ylo : 1.0;
  const double cspan = chi > clo ? chi - clo : 1.0;
  const auto px = [&](double v) {
    return static_cast<std::ptrdiff_t>(
        kMargin + (v - xlo) / xspan * static_cast<double>(kWidth - 2 * kMargin));
  };
  const auto py = [&](double v) {
    return static_cast<std::ptrdiff_t>(
        (kHeight - kMargin) -
        (v - ylo) / yspan * static_cast<double>(kHeight - 2 * kMargin));
  };
  // Context: every record (or the context selection) as a dim backdrop.
  const auto draw_dim = [&](std::uint64_t row) {
    img.add(px(xs[row]), py(ys[row]), render::colors::kGray, 0.18f);
  };
  if (context_.selects_all()) {
    for (std::uint64_t row = 0; row < xs.size(); ++row) draw_dim(row);
  } else {
    kern::for_each_set_blocked(*context_.bits(t), draw_dim);
  }
  // Focus (or everything when unset): pseudocolored by the color variable.
  const auto draw_colored = [&](std::uint64_t row) {
    const render::Color c = render::pseudocolor((cs[row] - clo) / cspan);
    const std::ptrdiff_t cx = px(xs[row]);
    const std::ptrdiff_t cy = py(ys[row]);
    for (std::ptrdiff_t dx = 0; dx < 2; ++dx)
      for (std::ptrdiff_t dy = 0; dy < 2; ++dy) img.set(cx + dx, cy + dy, c);
  };
  if (focus_.selects_all()) {
    for (std::uint64_t row = 0; row < xs.size(); ++row) draw_colored(row);
  } else {
    kern::for_each_set_blocked(*focus_.bits(t), draw_colored);
  }
  return img;
}

}  // namespace qdv::core
