#include "core/plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "io/timestep_table.hpp"

namespace qdv::core {

namespace {

/// De Morgan push-down: returns @p q with every NOT moved onto a leaf, and
/// double negations eliminated. Comparisons absorb the negation by flipping
/// the operator; kEq, IdIn, and Interval leaves keep an explicit NOT (their
/// complements are not single predicates).
QueryPtr push_not(const Query& q, bool negate) {
  switch (q.kind()) {
    case Query::Kind::kNot:
      return push_not(static_cast<const NotQuery&>(q).operand(), !negate);
    case Query::Kind::kAnd: {
      const auto& aq = static_cast<const AndQuery&>(q);
      QueryPtr lhs = push_not(aq.lhs(), negate);
      QueryPtr rhs = push_not(aq.rhs(), negate);
      return negate ? Query::lor(std::move(lhs), std::move(rhs))
                    : Query::land(std::move(lhs), std::move(rhs));
    }
    case Query::Kind::kOr: {
      const auto& oq = static_cast<const OrQuery&>(q);
      QueryPtr lhs = push_not(oq.lhs(), negate);
      QueryPtr rhs = push_not(oq.rhs(), negate);
      return negate ? Query::land(std::move(lhs), std::move(rhs))
                    : Query::lor(std::move(lhs), std::move(rhs));
    }
    case Query::Kind::kCompare: {
      const auto& cq = static_cast<const CompareQuery&>(q);
      if (!negate) return Query::compare(cq.variable(), cq.op(), cq.value());
      switch (cq.op()) {
        case CompareOp::kLt:
          return Query::compare(cq.variable(), CompareOp::kGe, cq.value());
        case CompareOp::kLe:
          return Query::compare(cq.variable(), CompareOp::kGt, cq.value());
        case CompareOp::kGt:
          return Query::compare(cq.variable(), CompareOp::kLe, cq.value());
        case CompareOp::kGe:
          return Query::compare(cq.variable(), CompareOp::kLt, cq.value());
        case CompareOp::kEq:
          return Query::lnot(Query::compare(cq.variable(), cq.op(), cq.value()));
      }
      throw std::logic_error("push_not: bad compare op");
    }
    case Query::Kind::kInterval: {
      const auto& vq = static_cast<const IntervalQuery&>(q);
      QueryPtr leaf = Query::interval(vq.variable(), vq.interval());
      return negate ? Query::lnot(std::move(leaf)) : leaf;
    }
    case Query::Kind::kIdIn: {
      const auto& iq = static_cast<const IdInQuery&>(q);
      QueryPtr leaf = Query::id_in(iq.variable(), iq.ids());
      return negate ? Query::lnot(std::move(leaf)) : leaf;
    }
  }
  throw std::logic_error("push_not: bad query kind");
}

QueryPtr normalize(const Query& q);

/// Collect the operand list of a maximal same-kind And/Or chain.
void flatten_into(const Query& q, Query::Kind kind, std::vector<QueryPtr>& out) {
  if (q.kind() == kind) {
    if (kind == Query::Kind::kAnd) {
      const auto& aq = static_cast<const AndQuery&>(q);
      flatten_into(aq.lhs(), kind, out);
      flatten_into(aq.rhs(), kind, out);
    } else {
      const auto& oq = static_cast<const OrQuery&>(q);
      flatten_into(oq.lhs(), kind, out);
      flatten_into(oq.rhs(), kind, out);
    }
    return;
  }
  out.push_back(normalize(q));
}

/// The interval matched by a fusable leaf (kCompare or kInterval).
bool fusable_interval(const Query& q, std::string* variable, Interval* iv) {
  if (q.kind() == Query::Kind::kCompare) {
    const auto& cq = static_cast<const CompareQuery&>(q);
    *variable = cq.variable();
    *iv = interval_for(cq.op(), cq.value());
    return true;
  }
  if (q.kind() == Query::Kind::kInterval) {
    const auto& vq = static_cast<const IntervalQuery&>(q);
    *variable = vq.variable();
    *iv = vq.interval();
    return true;
  }
  return false;
}

/// The tightest single-predicate form of a fused interval: a closed point
/// becomes ==, a one-sided bound becomes a plain comparison, a genuine
/// two-sided range stays an IntervalQuery.
QueryPtr predicate_for(const std::string& variable, const Interval& iv) {
  if (iv.empty()) return Query::interval(variable, iv);
  if (iv.bounded_below() && iv.bounded_above()) {
    if (iv.lo == iv.hi && !iv.lo_open && !iv.hi_open)
      return Query::compare(variable, CompareOp::kEq, iv.lo);
    return Query::interval(variable, iv);
  }
  if (iv.bounded_below())
    return Query::compare(variable, iv.lo_open ? CompareOp::kGt : CompareOp::kGe,
                          iv.lo);
  if (iv.bounded_above())
    return Query::compare(variable, iv.hi_open ? CompareOp::kLt : CompareOp::kLe,
                          iv.hi);
  return Query::interval(variable, iv);  // everything; kept, never produced
}

/// Fuse all comparison leaves of an And-operand list that share a variable
/// into one interval predicate each; other operands pass through.
std::vector<QueryPtr> fuse_and_operands(std::vector<QueryPtr> operands) {
  std::vector<QueryPtr> out;
  std::vector<std::string> order;           // first-seen variable order
  std::vector<Interval> merged;             // interval per order[i]
  for (QueryPtr& op : operands) {
    std::string variable;
    Interval iv{};
    if (!fusable_interval(*op, &variable, &iv)) {
      out.push_back(std::move(op));
      continue;
    }
    const auto it = std::find(order.begin(), order.end(), variable);
    if (it == order.end()) {
      order.push_back(variable);
      merged.push_back(iv);
    } else {
      const std::size_t i = static_cast<std::size_t>(it - order.begin());
      merged[i] = intersect(merged[i], iv);
    }
  }
  for (std::size_t i = 0; i < order.size(); ++i)
    out.push_back(predicate_for(order[i], merged[i]));
  return out;
}

/// Sort by canonical text, drop duplicates, and rebuild a left-deep chain.
QueryPtr rebuild(std::vector<QueryPtr> operands, Query::Kind kind) {
  std::vector<std::pair<std::string, QueryPtr>> keyed;
  keyed.reserve(operands.size());
  for (QueryPtr& op : operands) keyed.emplace_back(op->to_string(), std::move(op));
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  keyed.erase(std::unique(keyed.begin(), keyed.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first;
                          }),
              keyed.end());
  QueryPtr result = std::move(keyed.front().second);
  for (std::size_t i = 1; i < keyed.size(); ++i)
    result = kind == Query::Kind::kAnd
                 ? Query::land(std::move(result), std::move(keyed[i].second))
                 : Query::lor(std::move(result), std::move(keyed[i].second));
  return result;
}

/// Flatten + fuse + sort, bottom-up, over a NOT-pushed tree.
QueryPtr normalize(const Query& q) {
  switch (q.kind()) {
    case Query::Kind::kAnd: {
      std::vector<QueryPtr> operands;
      flatten_into(q, Query::Kind::kAnd, operands);
      return rebuild(fuse_and_operands(std::move(operands)), Query::Kind::kAnd);
    }
    case Query::Kind::kOr: {
      std::vector<QueryPtr> operands;
      flatten_into(q, Query::Kind::kOr, operands);
      return rebuild(std::move(operands), Query::Kind::kOr);
    }
    case Query::Kind::kNot:
      return Query::lnot(normalize(static_cast<const NotQuery&>(q).operand()));
    case Query::Kind::kCompare:
    case Query::Kind::kInterval:
    case Query::Kind::kIdIn: {
      std::string variable;
      Interval iv{};
      // A lone fusable leaf still gets its tightest form (e.g. an interval
      // [v, v] becomes ==), so builders and parsed text converge.
      if (fusable_interval(q, &variable, &iv)) return predicate_for(variable, iv);
      const auto& iq = static_cast<const IdInQuery&>(q);
      return Query::id_in(iq.variable(), iq.ids());
    }
  }
  throw std::logic_error("normalize: bad query kind");
}

const char* access_text(AccessPath access) {
  switch (access) {
    case AccessPath::kBitmapIndex: return "bitmap-index";
    case AccessPath::kIdIndex: return "id-index";
    case AccessPath::kScan: return "scan";
    case AccessPath::kConstant: return "constant-empty";
    case AccessPath::kPyramid: return "pyramid";
  }
  return "?";
}

/// Marginal-conjunction extraction (the pyramid-servable predicate shape):
/// true when @p q is built only from And over Compare/Interval leaves, with
/// the per-variable intersected intervals appended to @p out.
bool collect_marginals(const Query& q,
                       std::vector<std::pair<std::string, Interval>>& out) {
  const auto merge = [&out](const std::string& variable, const Interval& iv) {
    for (auto& [var, merged] : out) {
      if (var == variable) {
        merged = intersect(merged, iv);
        return;
      }
    }
    out.emplace_back(variable, iv);
  };
  switch (q.kind()) {
    case Query::Kind::kAnd: {
      const auto& aq = static_cast<const AndQuery&>(q);
      return collect_marginals(aq.lhs(), out) &&
             collect_marginals(aq.rhs(), out);
    }
    case Query::Kind::kCompare: {
      const auto& cq = static_cast<const CompareQuery&>(q);
      merge(cq.variable(), interval_for(cq.op(), cq.value()));
      return true;
    }
    case Query::Kind::kInterval: {
      const auto& vq = static_cast<const IntervalQuery&>(q);
      merge(vq.variable(), vq.interval());
      return true;
    }
    default:
      return false;  // Or/Not/IdIn: not a marginal conjunction
  }
}

void collect_steps(const Query& q, const io::TimestepTable* probe,
                   std::vector<PredicateStep>& steps) {
  switch (q.kind()) {
    case Query::Kind::kAnd: {
      const auto& aq = static_cast<const AndQuery&>(q);
      collect_steps(aq.lhs(), probe, steps);
      collect_steps(aq.rhs(), probe, steps);
      return;
    }
    case Query::Kind::kOr: {
      const auto& oq = static_cast<const OrQuery&>(q);
      collect_steps(oq.lhs(), probe, steps);
      collect_steps(oq.rhs(), probe, steps);
      return;
    }
    case Query::Kind::kNot:
      collect_steps(static_cast<const NotQuery&>(q).operand(), probe, steps);
      return;
    case Query::Kind::kCompare: {
      const auto& cq = static_cast<const CompareQuery&>(q);
      PredicateStep step;
      step.predicate = cq.to_string();
      step.variable = cq.variable();
      step.demoted = probe && probe->index_quarantined(cq.variable());
      step.access = (!step.demoted &&
                     (!probe || probe->has_value_index(cq.variable())))
                        ? AccessPath::kBitmapIndex
                        : AccessPath::kScan;
      steps.push_back(std::move(step));
      return;
    }
    case Query::Kind::kInterval: {
      const auto& vq = static_cast<const IntervalQuery&>(q);
      PredicateStep step;
      step.predicate = vq.to_string();
      step.variable = vq.variable();
      step.fused = true;
      if (vq.interval().empty()) {
        step.access = AccessPath::kConstant;
      } else {
        step.demoted = probe && probe->index_quarantined(vq.variable());
        step.access = (!step.demoted &&
                       (!probe || probe->has_value_index(vq.variable())))
                          ? AccessPath::kBitmapIndex
                          : AccessPath::kScan;
      }
      steps.push_back(std::move(step));
      return;
    }
    case Query::Kind::kIdIn: {
      const auto& iq = static_cast<const IdInQuery&>(q);
      PredicateStep step;
      step.predicate = iq.to_string();
      step.variable = iq.variable();
      step.access = (!probe || probe->has_id_index(iq.variable()))
                        ? AccessPath::kIdIndex
                        : AccessPath::kScan;
      steps.push_back(std::move(step));
      return;
    }
  }
  throw std::logic_error("collect_steps: bad query kind");
}

}  // namespace

QueryPtr canonicalize(const QueryPtr& query) {
  if (!query) return nullptr;
  const QueryPtr pushed = push_not(*query, false);
  return normalize(*pushed);
}

std::string cache_key(const Query& canonical_query) {
  return canonical_query.to_string();
}

ExecutionPlan plan_query(QueryPtr query, const io::TimestepTable* probe) {
  ExecutionPlan plan;
  plan.canonical_ = canonicalize(query);
  if (!plan.canonical_) {
    plan.key_ = "<all records>";
    plan.marginal_.emplace();  // unconditioned: trivially pyramid-servable
    return plan;
  }
  plan.key_ = cache_key(*plan.canonical_);
  collect_steps(*plan.canonical_, probe, plan.steps_);
  std::vector<std::pair<std::string, Interval>> marginals;
  if (collect_marginals(*plan.canonical_, marginals)) {
    for (const auto& [variable, iv] : marginals) {
      PredicateStep step;
      step.predicate = predicate_for(variable, iv)->to_string();
      step.variable = variable;
      step.access = (!probe || probe->has_pyramid(variable))
                        ? AccessPath::kPyramid
                        : AccessPath::kScan;
      plan.zoom_steps_.push_back(std::move(step));
    }
    plan.marginal_ = std::move(marginals);
  }
  return plan;
}

std::vector<std::string> ExecutionPlan::variables() const {
  std::vector<std::string> out;
  for (const PredicateStep& step : steps_)
    if (std::find(out.begin(), out.end(), step.variable) == out.end())
      out.push_back(step.variable);
  return out;
}

std::string ExecutionPlan::explain() const {
  std::ostringstream out;
  out << "query:     " << (canonical_ ? canonical_->to_string() : "<all records>")
      << "\n";
  out << "cache-key: " << key_ << "\n";
  out << "steps:\n";
  if (steps_.empty()) out << "  (none — every record matches)\n";
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const PredicateStep& step = steps_[i];
    out << "  [" << i << "] " << step.predicate << "  ->  "
        << access_text(step.access) << "(" << step.variable << ")";
    if (step.fused) out << "  [fused interval]";
    if (step.demoted) out << "  [demoted: index quarantined]";
    out << "\n";
  }
  if (marginal_) {
    out << "zoom:      pyramid-servable (marginal conjunction)\n";
    for (std::size_t i = 0; i < zoom_steps_.size(); ++i) {
      const PredicateStep& step = zoom_steps_[i];
      out << "  [z" << i << "] " << step.predicate << "  ->  "
          << access_text(step.access) << "(" << step.variable << ")\n";
    }
  } else {
    out << "zoom:      exact-only (non-marginal predicate)\n";
  }
  return out.str();
}

}  // namespace qdv::core
