#include "core/selection.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "agg/pyramid.hpp"
#include "bitmap/kernels.hpp"
#include "engine_state.hpp"

namespace qdv::core {

namespace {

using MarginalList = std::vector<std::pair<std::string, Interval>>;

/// A resolved, fully-servable pyramid route for a 1D zoom: either the
/// column's own pyramid (ndims 1) or a pair pyramid marginalized over its
/// other axis (when the selection also conditions one other variable).
struct Resolved1D {
  std::shared_ptr<const agg::Pyramid> pyr;
  std::size_t axis = 0;  // the zoom variable's axis within pyr
  agg::SlicePlan plan;
  const Interval* cond_var = nullptr;    // condition on the zoom variable
  const Interval* cond_other = nullptr;  // condition on the pair's other axis
};

/// A resolved pair-pyramid route for a 2D zoom (both axes at one level).
struct Resolved2D {
  std::shared_ptr<const agg::Pyramid> pyr;
  bool swapped = false;  // pyramid stored as (y, x)
  agg::SlicePlan plan_x;
  agg::SlicePlan plan_y;
  const Interval* cond_x = nullptr;
  const Interval* cond_y = nullptr;
};

std::optional<Resolved1D> resolve_zoom1d(const io::TimestepTable& tbl,
                                         const MarginalList* marginals,
                                         const std::string& variable,
                                         double view_lo, double view_hi,
                                         std::size_t nbins) {
  if (!marginals) return std::nullopt;  // non-marginal predicate: exact only
  Resolved1D r;
  std::string other;
  for (const auto& [var, iv] : *marginals) {
    if (var == variable) {
      r.cond_var = &iv;
    } else if (other.empty()) {
      other = var;
      r.cond_other = &iv;
    } else {
      return std::nullopt;  // conditions on two other variables: no pyramid
    }
  }
  if (other.empty()) {
    r.pyr = tbl.pyramid1d(variable);
    if (!r.pyr || r.pyr->ndims() != 1) return std::nullopt;
    const auto plan = r.pyr->plan_slice(0, view_lo, view_hi, nbins);
    if (!plan || !r.pyr->servable1d(*plan, r.cond_var)) return std::nullopt;
    r.plan = *plan;
    return r;
  }
  // One condition on another variable: marginalize a pair pyramid that
  // holds both columns (either orientation).
  r.pyr = tbl.pyramid2d(variable, other);
  if (!r.pyr) {
    r.pyr = tbl.pyramid2d(other, variable);
    r.axis = 1;
  }
  if (!r.pyr || r.pyr->ndims() != 2) return std::nullopt;
  const auto plan = r.pyr->plan_slice(r.axis, view_lo, view_hi, nbins);
  if (!plan) return std::nullopt;
  const agg::SlicePlan full{plan->level, 0, r.pyr->bins_at(plan->level)};
  const agg::SlicePlan& p0 = r.axis == 0 ? *plan : full;
  const agg::SlicePlan& p1 = r.axis == 0 ? full : *plan;
  const Interval* c0 = r.axis == 0 ? r.cond_var : r.cond_other;
  const Interval* c1 = r.axis == 0 ? r.cond_other : r.cond_var;
  if (!r.pyr->servable2d(p0, p1, c0, c1)) return std::nullopt;
  r.plan = *plan;
  return r;
}

std::optional<Resolved2D> resolve_zoom2d(
    const io::TimestepTable& tbl, const MarginalList* marginals,
    const std::string& x, const std::string& y, double view_lo_x,
    double view_hi_x, double view_lo_y, double view_hi_y, std::size_t nxbins,
    std::size_t nybins) {
  if (!marginals) return std::nullopt;
  Resolved2D r;
  for (const auto& [var, iv] : *marginals) {
    if (var == x)
      r.cond_x = &iv;
    else if (var == y)
      r.cond_y = &iv;
    else
      return std::nullopt;  // condition off the zoom plane: no pyramid
  }
  r.pyr = tbl.pyramid2d(x, y);
  if (!r.pyr) {
    r.pyr = tbl.pyramid2d(y, x);
    r.swapped = true;
  }
  if (!r.pyr || r.pyr->ndims() != 2) return std::nullopt;
  const std::size_t axis_x = r.swapped ? 1 : 0;
  const std::size_t axis_y = 1 - axis_x;
  const auto px = r.pyr->plan_slice(axis_x, view_lo_x, view_hi_x, nxbins);
  const auto py = r.pyr->plan_slice(axis_y, view_lo_y, view_hi_y, nybins);
  if (!px || !py) return std::nullopt;
  // Both axes must serve from one level: take the finer of the two snaps.
  const std::size_t level = std::max(px->level, py->level);
  r.plan_x = px->level == level
                 ? *px
                 : r.pyr->plan_slice_at(axis_x, level, view_lo_x, view_hi_x);
  r.plan_y = py->level == level
                 ? *py
                 : r.pyr->plan_slice_at(axis_y, level, view_lo_y, view_hi_y);
  const agg::SlicePlan& p0 = r.swapped ? r.plan_y : r.plan_x;
  const agg::SlicePlan& p1 = r.swapped ? r.plan_x : r.plan_y;
  const Interval* c0 = r.swapped ? r.cond_y : r.cond_x;
  const Interval* c1 = r.swapped ? r.cond_x : r.cond_y;
  if (!r.pyr->servable2d(p0, p1, c0, c1)) return std::nullopt;
  return r;
}

/// The value set a snapped window covers, as a refinable interval: level
/// bins [lo, hi) hold exactly {v : edge(lo) <= v < edge(hi)}, except a
/// window reaching the top of the domain, whose last bin is closed.
Interval window_interval(const agg::Pyramid& pyr, const agg::SlicePlan& plan,
                         const std::vector<double>& edges) {
  return Interval{edges.front(), edges.back(), /*lo_open=*/false,
                  /*hi_open=*/plan.hi != pyr.bins_at(plan.level)};
}

}  // namespace

Selection::Selection(std::shared_ptr<detail::EngineState> state,
                     std::shared_ptr<const ExecutionPlan> plan)
    : state_(std::move(state)), plan_(std::move(plan)) {}

const io::TimestepTable& Selection::table(std::size_t t) const {
  if (!state_) throw std::logic_error("Selection: invalid (default-constructed)");
  return state_->dataset.table(t);
}

bool Selection::selects_all() const { return !plan_ || !plan_->canonical(); }

std::shared_ptr<const BitVector> Selection::bits(std::size_t t) const {
  if (!state_) throw std::logic_error("Selection: invalid (default-constructed)");
  if (selects_all()) return state_->all_rows(t);
  return state_->evaluate(*plan_->canonical(), t);
}

std::uint64_t Selection::count(std::size_t t) const {
  if (selects_all()) return table(t).num_rows();
  return bits(t)->count();
}

std::vector<std::uint64_t> Selection::ids(std::size_t t) const {
  const std::span<const std::uint64_t> id_col = table(t).id_column("id");
  std::vector<std::uint64_t> out;
  if (selects_all()) {
    out.assign(id_col.begin(), id_col.end());
    return out;
  }
  kern::for_each_set_blocked(
      *bits(t), [&](std::uint64_t row) { out.push_back(id_col[row]); });
  return out;
}

Selection Selection::refine(const std::string& query_text) const {
  return refine(parse_query(query_text));
}

Selection Selection::refine(QueryPtr extra) const {
  if (!state_) throw std::logic_error("Selection: invalid (default-constructed)");
  if (!extra) return *this;
  QueryPtr combined =
      selects_all() ? std::move(extra)
                    : Query::land(plan_->canonical(), std::move(extra));
  return engine().select(std::move(combined));
}

Histogram1D Selection::histogram1d(std::size_t t, const std::string& variable,
                                   std::size_t nbins, BinningMode binning) const {
  const HistogramEngine engine = table(t).engine();
  if (selects_all()) return engine.histogram1d(variable, nbins, nullptr, binning);
  return engine.histogram1d(variable, nbins, *bits(t), binning);
}

Histogram2D Selection::histogram2d(std::size_t t, const std::string& x,
                                   const std::string& y, std::size_t nxbins,
                                   std::size_t nybins, BinningMode binning) const {
  const HistogramEngine engine = table(t).engine();
  if (selects_all())
    return engine.histogram2d(x, y, nxbins, nybins, nullptr, binning);
  return engine.histogram2d(x, y, nxbins, nybins, *bits(t), binning);
}

Zoom1DResult Selection::zoom_histogram1d(std::size_t t,
                                         const std::string& variable,
                                         double view_lo, double view_hi,
                                         std::size_t nbins,
                                         ZoomMode mode) const {
  if (!(view_hi > view_lo) || nbins == 0)
    throw std::invalid_argument(
        "zoom_histogram1d: need view_hi > view_lo and nbins > 0");
  const io::TimestepTable& tbl = table(t);
  const auto& marginals = plan().marginal_intervals();
  const auto r = resolve_zoom1d(tbl, marginals ? &*marginals : nullptr,
                                variable, view_lo, view_hi, nbins);

  Zoom1DResult out;
  if (r && mode == ZoomMode::kAuto) try {
    std::vector<std::uint64_t> counts;
    if (r->pyr->ndims() == 1) {
      counts = r->pyr->slice_counts1d(r->plan, r->cond_var);
    } else {
      // Marginalize the pair pyramid over its other (fully-spanned) axis.
      const std::size_t nfull = r->pyr->bins_at(r->plan.level);
      const agg::SlicePlan full{r->plan.level, 0, nfull};
      counts.assign(r->plan.bins(), 0);
      if (r->axis == 0) {
        const auto c2 = r->pyr->slice_counts2d(r->plan, full, r->cond_var,
                                               r->cond_other);
        for (std::size_t j = 0; j < counts.size(); ++j)
          for (std::size_t k = 0; k < nfull; ++k)
            counts[j] += c2[j * nfull + k];
      } else {
        const auto c2 = r->pyr->slice_counts2d(full, r->plan, r->cond_other,
                                               r->cond_var);
        for (std::size_t k = 0; k < nfull; ++k)
          for (std::size_t j = 0; j < counts.size(); ++j)
            counts[j] += c2[k * counts.size() + j];
      }
    }
    const std::vector<double> edges = r->pyr->slice_edges(r->axis, r->plan);
    if (!edges.empty()) out.hist.bins = Bins(edges);
    out.hist.counts = std::move(counts);
    out.pyramid = true;
    out.level = static_cast<int>(r->plan.level);
    state_->pyramid_served.fetch_add(1, std::memory_order_relaxed);
    return out;
  } catch (const io::IntegrityError&) {
    // A level failed its checksum mid-serve. The pyramid quarantined itself
    // (it now reports as absent from the table), so re-resolving routes
    // this — and every later — zoom to the exact path, and kAuto keeps
    // agreeing with kExact bit-for-bit (DESIGN.md §15).
    return zoom_histogram1d(t, variable, view_lo, view_hi, nbins, mode);
  }

  if (r) {
    // kExact on a servable request: the differential twin — identical
    // snapped grid, answered by the kernel path. Restricting the selection
    // to the window's value interval (not the raw viewport) reproduces the
    // node semantics exactly, including the closed top bin.
    out.level = static_cast<int>(r->plan.level);
    const std::vector<double> edges = r->pyr->slice_edges(r->axis, r->plan);
    if (edges.empty()) return out;  // empty window: empty histogram
    const Interval view = window_interval(*r->pyr, r->plan, edges);
    const Selection refined = refine(Query::interval(variable, view));
    out.hist = tbl.engine().histogram1d(variable, Bins(edges),
                                        *refined.bits(t));
    return out;
  }

  // Below the resolution threshold, no pyramid on disk, or a non-marginal
  // predicate: exact kernels over viewport-uniform bins.
  if (mode == ZoomMode::kAuto)
    state_->pyramid_fallback.fetch_add(1, std::memory_order_relaxed);
  const Bins bins = make_uniform_bins(view_lo, view_hi, nbins);
  const Selection refined =
      refine(Query::interval(variable, Interval{view_lo, view_hi,
                                                /*lo_open=*/false,
                                                /*hi_open=*/false}));
  out.hist = tbl.engine().histogram1d(variable, bins, *refined.bits(t));
  return out;
}

Zoom2DResult Selection::zoom_histogram2d(
    std::size_t t, const std::string& x, const std::string& y,
    double view_lo_x, double view_hi_x, double view_lo_y, double view_hi_y,
    std::size_t nxbins, std::size_t nybins, ZoomMode mode) const {
  if (!(view_hi_x > view_lo_x) || !(view_hi_y > view_lo_y) || nxbins == 0 ||
      nybins == 0)
    throw std::invalid_argument(
        "zoom_histogram2d: need view_hi > view_lo and nbins > 0 on both axes");
  const io::TimestepTable& tbl = table(t);
  const auto& marginals = plan().marginal_intervals();
  const auto r = resolve_zoom2d(tbl, marginals ? &*marginals : nullptr, x, y,
                                view_lo_x, view_hi_x, view_lo_y, view_hi_y,
                                nxbins, nybins);

  Zoom2DResult out;
  if (r && mode == ZoomMode::kAuto) try {
    const agg::SlicePlan& p0 = r->swapped ? r->plan_y : r->plan_x;
    const agg::SlicePlan& p1 = r->swapped ? r->plan_x : r->plan_y;
    const auto c2 = r->pyr->slice_counts2d(p0, p1,
                                           r->swapped ? r->cond_y : r->cond_x,
                                           r->swapped ? r->cond_x : r->cond_y);
    const std::size_t nx = r->plan_x.bins();
    const std::size_t ny = r->plan_y.bins();
    out.hist.counts.assign(nx * ny, 0);
    if (r->swapped) {
      for (std::size_t jy = 0; jy < ny; ++jy)  // c2 is [jy * nx + jx]
        for (std::size_t jx = 0; jx < nx; ++jx)
          out.hist.counts[jx * ny + jy] = c2[jy * nx + jx];
    } else {
      out.hist.counts = c2;
    }
    const std::vector<double> xedges =
        r->pyr->slice_edges(r->swapped ? 1 : 0, r->plan_x);
    const std::vector<double> yedges =
        r->pyr->slice_edges(r->swapped ? 0 : 1, r->plan_y);
    if (!xedges.empty()) out.hist.xbins = Bins(xedges);
    if (!yedges.empty()) out.hist.ybins = Bins(yedges);
    out.pyramid = true;
    out.level = static_cast<int>(r->plan_x.level);
    state_->pyramid_served.fetch_add(1, std::memory_order_relaxed);
    return out;
  } catch (const io::IntegrityError&) {
    // Same recovery as the 1D serve: the quarantined pyramid reports as
    // absent on re-resolve, so the exact path answers.
    return zoom_histogram2d(t, x, y, view_lo_x, view_hi_x, view_lo_y,
                            view_hi_y, nxbins, nybins, mode);
  }

  if (r) {
    out.level = static_cast<int>(r->plan_x.level);
    const std::vector<double> xedges =
        r->pyr->slice_edges(r->swapped ? 1 : 0, r->plan_x);
    const std::vector<double> yedges =
        r->pyr->slice_edges(r->swapped ? 0 : 1, r->plan_y);
    if (xedges.empty() || yedges.empty()) {
      if (!xedges.empty()) out.hist.xbins = Bins(xedges);
      if (!yedges.empty()) out.hist.ybins = Bins(yedges);
      return out;
    }
    const Interval view_x = window_interval(*r->pyr, r->plan_x, xedges);
    const Interval view_y = window_interval(*r->pyr, r->plan_y, yedges);
    const Selection refined =
        refine(Query::land(Query::interval(x, view_x),
                           Query::interval(y, view_y)));
    out.hist = tbl.engine().histogram2d(x, y, Bins(xedges), Bins(yedges),
                                        *refined.bits(t));
    return out;
  }

  if (mode == ZoomMode::kAuto)
    state_->pyramid_fallback.fetch_add(1, std::memory_order_relaxed);
  const Bins xbins = make_uniform_bins(view_lo_x, view_hi_x, nxbins);
  const Bins ybins = make_uniform_bins(view_lo_y, view_hi_y, nybins);
  const Selection refined = refine(Query::land(
      Query::interval(x, Interval{view_lo_x, view_hi_x, false, false}),
      Query::interval(y, Interval{view_lo_y, view_hi_y, false, false})));
  out.hist = tbl.engine().histogram2d(x, y, xbins, ybins, *refined.bits(t));
  return out;
}

std::optional<ZoomPlan> Selection::zoom_plan1d(std::size_t t,
                                               const std::string& variable,
                                               double view_lo, double view_hi,
                                               std::size_t nbins) const {
  if (!state_ || !(view_hi > view_lo) || nbins == 0) return std::nullopt;
  const auto& marginals = plan().marginal_intervals();
  const auto r = resolve_zoom1d(table(t), marginals ? &*marginals : nullptr,
                                variable, view_lo, view_hi, nbins);
  if (!r) return std::nullopt;
  ZoomPlan zp;
  zp.level = r->plan.level;
  zp.xlo = r->plan.lo;
  zp.xhi = r->plan.hi;
  zp.pair = r->pyr->ndims() == 2;
  return zp;
}

std::optional<ZoomPlan> Selection::zoom_plan2d(
    std::size_t t, const std::string& x, const std::string& y,
    double view_lo_x, double view_hi_x, double view_lo_y, double view_hi_y,
    std::size_t nxbins, std::size_t nybins) const {
  if (!state_ || !(view_hi_x > view_lo_x) || !(view_hi_y > view_lo_y) ||
      nxbins == 0 || nybins == 0)
    return std::nullopt;
  const auto& marginals = plan().marginal_intervals();
  const auto r = resolve_zoom2d(table(t), marginals ? &*marginals : nullptr,
                                x, y, view_lo_x, view_hi_x, view_lo_y,
                                view_hi_y, nxbins, nybins);
  if (!r) return std::nullopt;
  ZoomPlan zp;
  zp.level = r->plan_x.level;
  zp.xlo = r->plan_x.lo;
  zp.xhi = r->plan_x.hi;
  zp.ylo = r->plan_y.lo;
  zp.yhi = r->plan_y.hi;
  zp.pair = true;
  return zp;
}

SummaryStats Selection::summary(std::size_t t, const std::string& variable) const {
  if (selects_all()) return conditional_stats(table(t), variable);
  return conditional_stats(table(t), variable, *bits(t));
}

const ExecutionPlan& Selection::plan() const {
  if (!plan_) throw std::logic_error("Selection: invalid (default-constructed)");
  return *plan_;
}

const QueryPtr& Selection::query() const {
  if (!plan_) {
    static const QueryPtr kNull;
    return kNull;
  }
  return plan_->canonical();
}

const std::string& Selection::cache_key() const { return plan().key(); }

std::string Selection::explain() const {
  std::string out = plan().explain();
  if (!state_) return out;
  // Live cache / memory-budget snapshot (the engine-side counters the plan
  // alone cannot know).
  const io::MemoryBudgetStats b = state_->budget->stats();
  std::ostringstream os;
  os << "cache:     " << state_->hits.load() << " hits, "
     << state_->misses.load() << " misses, "
     << b.of(io::ResidentClass::kBitVector).entries << " bitvectors ("
     << b.of(io::ResidentClass::kBitVector).bytes << " B)\n";
  os << "memory:    resident " << b.resident_bytes << " B";
  if (b.budget_bytes == io::MemoryBudget::kUnlimited)
    os << " (no budget)";
  else
    os << " / budget " << b.budget_bytes << " B";
  os << ", columns " << b.of(io::ResidentClass::kColumn).bytes
     << " B, segments " << b.of(io::ResidentClass::kIndexSegment).bytes
     << " B, evictions " << b.evictions << "\n";
  return out + os.str();
}

Engine Selection::engine() const {
  Engine e;
  e.state_ = state_;
  return e;
}

}  // namespace qdv::core
