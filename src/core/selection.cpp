#include "core/selection.hpp"

#include <sstream>
#include <stdexcept>

#include "bitmap/kernels.hpp"
#include "engine_state.hpp"

namespace qdv::core {

Selection::Selection(std::shared_ptr<detail::EngineState> state,
                     std::shared_ptr<const ExecutionPlan> plan)
    : state_(std::move(state)), plan_(std::move(plan)) {}

const io::TimestepTable& Selection::table(std::size_t t) const {
  if (!state_) throw std::logic_error("Selection: invalid (default-constructed)");
  return state_->dataset.table(t);
}

bool Selection::selects_all() const { return !plan_ || !plan_->canonical(); }

std::shared_ptr<const BitVector> Selection::bits(std::size_t t) const {
  if (!state_) throw std::logic_error("Selection: invalid (default-constructed)");
  if (selects_all()) return state_->all_rows(t);
  return state_->evaluate(*plan_->canonical(), t);
}

std::uint64_t Selection::count(std::size_t t) const {
  if (selects_all()) return table(t).num_rows();
  return bits(t)->count();
}

std::vector<std::uint64_t> Selection::ids(std::size_t t) const {
  const std::span<const std::uint64_t> id_col = table(t).id_column("id");
  std::vector<std::uint64_t> out;
  if (selects_all()) {
    out.assign(id_col.begin(), id_col.end());
    return out;
  }
  kern::for_each_set_blocked(
      *bits(t), [&](std::uint64_t row) { out.push_back(id_col[row]); });
  return out;
}

Selection Selection::refine(const std::string& query_text) const {
  return refine(parse_query(query_text));
}

Selection Selection::refine(QueryPtr extra) const {
  if (!state_) throw std::logic_error("Selection: invalid (default-constructed)");
  if (!extra) return *this;
  QueryPtr combined =
      selects_all() ? std::move(extra)
                    : Query::land(plan_->canonical(), std::move(extra));
  return engine().select(std::move(combined));
}

Histogram1D Selection::histogram1d(std::size_t t, const std::string& variable,
                                   std::size_t nbins, BinningMode binning) const {
  const HistogramEngine engine = table(t).engine();
  if (selects_all()) return engine.histogram1d(variable, nbins, nullptr, binning);
  return engine.histogram1d(variable, nbins, *bits(t), binning);
}

Histogram2D Selection::histogram2d(std::size_t t, const std::string& x,
                                   const std::string& y, std::size_t nxbins,
                                   std::size_t nybins, BinningMode binning) const {
  const HistogramEngine engine = table(t).engine();
  if (selects_all())
    return engine.histogram2d(x, y, nxbins, nybins, nullptr, binning);
  return engine.histogram2d(x, y, nxbins, nybins, *bits(t), binning);
}

SummaryStats Selection::summary(std::size_t t, const std::string& variable) const {
  if (selects_all()) return conditional_stats(table(t), variable);
  return conditional_stats(table(t), variable, *bits(t));
}

const ExecutionPlan& Selection::plan() const {
  if (!plan_) throw std::logic_error("Selection: invalid (default-constructed)");
  return *plan_;
}

const QueryPtr& Selection::query() const {
  if (!plan_) {
    static const QueryPtr kNull;
    return kNull;
  }
  return plan_->canonical();
}

const std::string& Selection::cache_key() const { return plan().key(); }

std::string Selection::explain() const {
  std::string out = plan().explain();
  if (!state_) return out;
  // Live cache / memory-budget snapshot (the engine-side counters the plan
  // alone cannot know).
  const io::MemoryBudgetStats b = state_->budget->stats();
  std::ostringstream os;
  os << "cache:     " << state_->hits.load() << " hits, "
     << state_->misses.load() << " misses, "
     << b.of(io::ResidentClass::kBitVector).entries << " bitvectors ("
     << b.of(io::ResidentClass::kBitVector).bytes << " B)\n";
  os << "memory:    resident " << b.resident_bytes << " B";
  if (b.budget_bytes == io::MemoryBudget::kUnlimited)
    os << " (no budget)";
  else
    os << " / budget " << b.budget_bytes << " B";
  os << ", columns " << b.of(io::ResidentClass::kColumn).bytes
     << " B, segments " << b.of(io::ResidentClass::kIndexSegment).bytes
     << " B, evictions " << b.evictions << "\n";
  return out + os.str();
}

Engine Selection::engine() const {
  Engine e;
  e.state_ = state_;
  return e;
}

}  // namespace qdv::core
