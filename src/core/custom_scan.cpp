#include "core/custom_scan.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace qdv::core {

namespace {

/// Compile the query into a per-record predicate over the raw columns.
std::function<bool(std::uint32_t)> compile(const Query& q,
                                           const io::TimestepTable& table) {
  switch (q.kind()) {
    case Query::Kind::kCompare: {
      const auto& cq = static_cast<const CompareQuery&>(q);
      const std::span<const double> values = table.column(cq.variable());
      const Interval iv = interval_for(cq.op(), cq.value());
      return [values, iv](std::uint32_t row) { return iv.contains(values[row]); };
    }
    case Query::Kind::kInterval: {
      const auto& vq = static_cast<const IntervalQuery&>(q);
      const std::span<const double> values = table.column(vq.variable());
      const Interval iv = vq.interval();
      return [values, iv](std::uint32_t row) { return iv.contains(values[row]); };
    }
    case Query::Kind::kIdIn: {
      const auto& iq = static_cast<const IdInQuery&>(q);
      const std::span<const std::uint64_t> ids = table.id_column(iq.variable());
      const std::vector<std::uint64_t>& search = iq.ids();
      return [ids, &search](std::uint32_t row) {
        return std::binary_search(search.begin(), search.end(), ids[row]);
      };
    }
    case Query::Kind::kAnd: {
      const auto& aq = static_cast<const AndQuery&>(q);
      auto lhs = compile(aq.lhs(), table);
      auto rhs = compile(aq.rhs(), table);
      return [lhs = std::move(lhs), rhs = std::move(rhs)](std::uint32_t row) {
        return lhs(row) && rhs(row);
      };
    }
    case Query::Kind::kOr: {
      const auto& oq = static_cast<const OrQuery&>(q);
      auto lhs = compile(oq.lhs(), table);
      auto rhs = compile(oq.rhs(), table);
      return [lhs = std::move(lhs), rhs = std::move(rhs)](std::uint32_t row) {
        return lhs(row) || rhs(row);
      };
    }
    case Query::Kind::kNot: {
      const auto& nq = static_cast<const NotQuery&>(q);
      auto inner = compile(nq.operand(), table);
      return [inner = std::move(inner)](std::uint32_t row) { return !inner(row); };
    }
  }
  throw std::logic_error("CustomScan: bad query kind");
}

}  // namespace

Histogram2D CustomScan::histogram2d(const std::string& x, const std::string& y,
                                    std::size_t nxbins, std::size_t nybins,
                                    const Query* condition) const {
  const std::span<const double> xs = table_->column(x);
  const std::span<const double> ys = table_->column(y);
  const auto [xlo, xhi] = table_->domain(x);
  const auto [ylo, yhi] = table_->domain(y);
  const Bins xbins = make_uniform_bins(xlo, xhi > xlo ? xhi : xlo + 1.0, nxbins);
  const Bins ybins = make_uniform_bins(ylo, yhi > ylo ? yhi : ylo + 1.0, nybins);
  // Nested per-row count arrays: the layout the paper's custom code used.
  std::vector<std::vector<std::uint64_t>> counts(
      nxbins, std::vector<std::uint64_t>(nybins, 0));
  std::function<bool(std::uint32_t)> predicate;
  if (condition != nullptr) predicate = compile(*condition, *table_);
  for (std::uint32_t row = 0; row < xs.size(); ++row) {
    if (predicate && !predicate(row)) continue;
    const std::ptrdiff_t bx = xbins.locate(xs[row]);
    const std::ptrdiff_t by = ybins.locate(ys[row]);
    if (bx >= 0 && by >= 0)
      ++counts[static_cast<std::size_t>(bx)][static_cast<std::size_t>(by)];
  }
  Histogram2D h;
  h.xbins = xbins;
  h.ybins = ybins;
  h.counts.assign(nxbins * nybins, 0);
  for (std::size_t ix = 0; ix < nxbins; ++ix)
    for (std::size_t iy = 0; iy < nybins; ++iy) h.at(ix, iy) = counts[ix][iy];
  return h;
}

std::vector<std::uint32_t> CustomScan::find_ids(
    const std::vector<std::uint64_t>& search) const {
  std::vector<std::uint64_t> sorted(search);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  const std::span<const std::uint64_t> ids = table_->id_column("id");
  std::vector<std::uint32_t> out;
  for (std::uint32_t row = 0; row < ids.size(); ++row)
    if (std::binary_search(sorted.begin(), sorted.end(), ids[row]))
      out.push_back(row);
  return out;
}

}  // namespace qdv::core
