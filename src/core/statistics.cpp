#include "core/statistics.hpp"

#include <cmath>
#include <limits>

namespace qdv::core {

SummaryStats conditional_stats(const io::TimestepTable& table,
                               const std::string& variable,
                               const Query* condition, EvalMode mode) {
  const std::span<const double> values = table.column(variable);
  SummaryStats s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0, sum2 = 0.0;
  const auto accumulate = [&](std::uint64_t row) {
    const double v = values[row];
    ++s.count;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
    sum2 += v * v;
  };
  if (condition == nullptr) {
    for (std::uint64_t row = 0; row < values.size(); ++row) accumulate(row);
  } else {
    table.query(*condition, mode).for_each_set(accumulate);
  }
  if (s.count == 0) {
    s.min = s.max = 0.0;
    return s;
  }
  const double n = static_cast<double>(s.count);
  s.mean = sum / n;
  s.stddev = std::sqrt(std::max(0.0, sum2 / n - s.mean * s.mean));
  return s;
}

}  // namespace qdv::core
