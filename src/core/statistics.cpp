#include "core/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <span>

#include "bitmap/kernels.hpp"

namespace qdv::core {

namespace {

/// Accumulator shared by the query-driven and bitvector-driven entry points.
class StatsAccumulator {
 public:
  explicit StatsAccumulator(std::span<const double> values) : values_(values) {
    s_.min = std::numeric_limits<double>::infinity();
    s_.max = -std::numeric_limits<double>::infinity();
  }

  void operator()(std::uint64_t row) {
    const double v = values_[row];
    ++s_.count;
    s_.min = std::min(s_.min, v);
    s_.max = std::max(s_.max, v);
    sum_ += v;
    sum2_ += v * v;
  }

  SummaryStats finish() {
    if (s_.count == 0) {
      s_.min = s_.max = 0.0;
      return s_;
    }
    const double n = static_cast<double>(s_.count);
    s_.mean = sum_ / n;
    s_.stddev = std::sqrt(std::max(0.0, sum2_ / n - s_.mean * s_.mean));
    return s_;
  }

 private:
  std::span<const double> values_;
  SummaryStats s_;
  double sum_ = 0.0;
  double sum2_ = 0.0;
};

}  // namespace

SummaryStats conditional_stats(const io::TimestepTable& table,
                               const std::string& variable,
                               const Query* condition, EvalMode mode) {
  const std::span<const double> values = table.column(variable);
  StatsAccumulator accumulate(values);
  if (condition == nullptr) {
    for (std::uint64_t row = 0; row < values.size(); ++row) accumulate(row);
  } else {
    // Dense-block gather: same ascending row order as the scalar
    // for_each_set, so the floating-point sums are bit-identical.
    kern::for_each_set_blocked(table.query(*condition, mode),
                               std::ref(accumulate));
  }
  return accumulate.finish();
}

SummaryStats conditional_stats(const io::TimestepTable& table,
                               const std::string& variable,
                               const BitVector& rows) {
  StatsAccumulator accumulate(table.column(variable));
  kern::for_each_set_blocked(rows, std::ref(accumulate));
  return accumulate.finish();
}

}  // namespace qdv::core
