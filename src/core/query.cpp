#include "core/query.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>
#include <stdexcept>

namespace qdv {

namespace {
const char* op_text(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
    case CompareOp::kEq: return "==";
  }
  return "?";
}
}  // namespace

std::string format_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

Interval interval_for(CompareOp op, double value) {
  switch (op) {
    case CompareOp::kLt: return Interval::less_than(value);
    case CompareOp::kLe: return Interval::at_most(value);
    case CompareOp::kGt: return Interval::greater_than(value);
    case CompareOp::kGe: return Interval::at_least(value);
    case CompareOp::kEq: return Interval{value, value, false, false};
  }
  throw std::logic_error("interval_for: bad op");
}

std::string CompareQuery::to_string() const {
  return variable_ + ' ' + op_text(op_) + ' ' + format_double(value_);
}

std::string IntervalQuery::to_string() const {
  const char* opl = interval_.lo_open ? ">" : ">=";
  const char* oph = interval_.hi_open ? "<" : "<=";
  if (!interval_.bounded_below() && interval_.bounded_above())
    return variable_ + ' ' + oph + ' ' + format_double(interval_.hi);
  if (interval_.bounded_below() && !interval_.bounded_above())
    return variable_ + ' ' + opl + ' ' + format_double(interval_.lo);
  return "(" + variable_ + ' ' + opl + ' ' + format_double(interval_.lo) +
         " && " + variable_ + ' ' + oph + ' ' + format_double(interval_.hi) + ")";
}

IdInQuery::IdInQuery(std::string variable, std::vector<std::uint64_t> ids)
    : variable_(std::move(variable)), ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  // The search set is folded into the text form as an FNV-1a digest so the
  // string is usable as a semantic cache key (two different id sets of the
  // same size must not collide). Fixed here: ids_ is immutable from now on,
  // and to_string() runs on every cache lookup.
  digest_ = 14695981039346656037ull;
  for (const std::uint64_t id : ids_)
    for (int byte = 0; byte < 8; ++byte) {
      digest_ ^= (id >> (8 * byte)) & 0xffu;
      digest_ *= 1099511628211ull;
    }
}

std::string IdInQuery::to_string() const {
  std::ostringstream out;
  out << variable_ << " IN (" << ids_.size() << " ids #" << std::hex << digest_
      << ")";
  return out.str();
}

std::string AndQuery::to_string() const {
  return "(" + a_->to_string() + " && " + b_->to_string() + ")";
}

std::string OrQuery::to_string() const {
  return "(" + a_->to_string() + " || " + b_->to_string() + ")";
}

std::string NotQuery::to_string() const { return "!(" + a_->to_string() + ")"; }

QueryPtr Query::compare(std::string variable, CompareOp op, double value) {
  return std::make_shared<CompareQuery>(std::move(variable), op, value);
}

QueryPtr Query::interval(std::string variable, Interval iv) {
  return std::make_shared<IntervalQuery>(std::move(variable), iv);
}

QueryPtr Query::id_in(std::string variable, std::vector<std::uint64_t> ids) {
  return std::make_shared<IdInQuery>(std::move(variable), std::move(ids));
}

QueryPtr Query::land(QueryPtr a, QueryPtr b) {
  return std::make_shared<AndQuery>(std::move(a), std::move(b));
}

QueryPtr Query::lor(QueryPtr a, QueryPtr b) {
  return std::make_shared<OrQuery>(std::move(a), std::move(b));
}

QueryPtr Query::lnot(QueryPtr a) { return std::make_shared<NotQuery>(std::move(a)); }

namespace {

/// Recursive-descent parser over the expression grammar:
///   expr    := andExpr ( '||' andExpr )*
///   andExpr := unary ( '&&' unary )*
///   unary   := '!' unary | '(' expr ')' | comparison
///   comparison := identifier op number
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  QueryPtr parse() {
    QueryPtr q = parse_or();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing input");
    return q;
  }

 private:
  QueryPtr parse_or() {
    QueryPtr lhs = parse_and();
    while (consume("||")) lhs = Query::lor(std::move(lhs), parse_and());
    return lhs;
  }

  QueryPtr parse_and() {
    QueryPtr lhs = parse_unary();
    while (consume("&&")) lhs = Query::land(std::move(lhs), parse_unary());
    return lhs;
  }

  QueryPtr parse_unary() {
    skip_ws();
    if (consume("!")) return Query::lnot(parse_unary());
    if (consume("(")) {
      QueryPtr inner = parse_or();
      if (!consume(")")) fail("expected ')'");
      return inner;
    }
    return parse_comparison();
  }

  QueryPtr parse_comparison() {
    const std::string var = parse_identifier();
    skip_ws();
    CompareOp op;
    if (consume("<=")) {
      op = CompareOp::kLe;
    } else if (consume(">=")) {
      op = CompareOp::kGe;
    } else if (consume("==")) {
      op = CompareOp::kEq;
    } else if (consume("<")) {
      op = CompareOp::kLt;
    } else if (consume(">")) {
      op = CompareOp::kGt;
    } else {
      fail("expected comparison operator");
      return nullptr;  // unreachable
    }
    return Query::compare(var, op, parse_number());
  }

  std::string parse_identifier() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_'))
      ++pos_;
    if (pos_ == start) fail("expected variable name");
    return text_.substr(start, pos_ - start);
  }

  double parse_number() {
    skip_ws();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double value = 0.0;
    const auto [next, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{}) fail("expected number");
    pos_ += static_cast<std::size_t>(next - begin);
    return value;
  }

  bool consume(const std::string& token) {
    skip_ws();
    if (text_.compare(pos_, token.size(), token) != 0) return false;
    // Don't let "<" swallow the prefix of "<=" at call sites ordered
    // longest-first; ordering in parse_comparison handles that.
    pos_ += token.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  [[noreturn]] void fail(const std::string& what) {
    throw std::invalid_argument("parse_query: " + what + " at position " +
                                std::to_string(pos_) + " in \"" + text_ + "\"");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

QueryPtr parse_query(const std::string& text) { return Parser(text).parse(); }

}  // namespace qdv
