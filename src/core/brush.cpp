#include "core/brush.hpp"

#include <atomic>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bitmap/kernels.hpp"

namespace qdv::core {

namespace {

std::uint64_t next_brush_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Brush::Brush(Selection initial, std::shared_ptr<Counters> counters)
    : id_(next_brush_id()),
      counters_(counters ? std::move(counters)
                         : std::make_shared<Counters>()) {
  if (!initial.valid())
    throw std::invalid_argument("Brush: needs a valid selection");
  if (initial.selects_all())
    throw std::invalid_argument(
        "Brush: needs a concrete predicate (select-all has no invertible "
        "AST form)");
  slot_bytes_ = std::make_shared<std::atomic<std::uint64_t>>(0);
  engine_ = initial.engine();
  composed_ = initial.query();
  budget_ = engine_.dataset().memory_budget();
}

Brush::~Brush() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [t, slot] : slots_)
    if (slot.valid) budget_->erase(slot_key(t, slot.epoch));
}

std::uint64_t Brush::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

Brush::Snapshot Brush::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Snapshot{epoch_, composed_};
}

std::uint64_t Brush::bump_locked(Op op) {
  history_.push_back(std::move(op));
  if (history_.size() > kMaxHistory) history_.pop_front();
  return ++epoch_;
}

std::uint64_t Brush::refine(QueryPtr extra) {
  if (!extra) throw std::invalid_argument("Brush::refine: needs a predicate");
  std::lock_guard<std::mutex> lock(mutex_);
  Op rec;
  rec.kind = Op::Kind::kRefine;
  // The extra predicate as its own Selection: the delta path evaluates it
  // through the shared node cache (a leaf probe), never the composed tree.
  // Planning the leaf is O(leaf); the composed predicate itself is only
  // spliced, never re-planned — that is what keeps an edit O(1).
  rec.operand = engine_.select(extra);
  composed_ = Query::land(std::move(composed_), std::move(extra));
  return bump_locked(std::move(rec));
}

std::uint64_t Brush::invert() {
  std::lock_guard<std::mutex> lock(mutex_);
  composed_ = Query::lnot(std::move(composed_));
  Op rec;
  rec.kind = Op::Kind::kInvert;
  return bump_locked(std::move(rec));
}

std::uint64_t Brush::combine(const Brush& other, CombineOp op) {
  // Pin the operand first: only other's lock is held, and it is released
  // before ours is taken, so A.combine(B) racing B.combine(A) cannot
  // deadlock (and self-combination degenerates to two sequential locks).
  Snapshot theirs = other.snapshot();
  // The operand Selection (other's pinned composed, planned) is what the
  // delta path ANDs/ORs against; built before taking our lock.
  Selection operand = engine_.select(theirs.query);
  std::lock_guard<std::mutex> lock(mutex_);
  QueryPtr merged;
  switch (op) {
    case CombineOp::kAnd:
      merged = Query::land(composed_, theirs.query);
      break;
    case CombineOp::kOr:
      merged = Query::lor(composed_, theirs.query);
      break;
    case CombineOp::kAndNot:
      merged = Query::land(composed_, Query::lnot(theirs.query));
      break;
  }
  composed_ = std::move(merged);
  Op rec;
  rec.kind = Op::Kind::kCombine;
  rec.operand = std::move(operand);
  rec.combine_op = op;
  return bump_locked(std::move(rec));
}

std::string Brush::slot_key(std::size_t t, std::uint64_t epoch) const {
  return "brush|#" + std::to_string(id_) + "|t#" + std::to_string(t) +
         "|e#" + std::to_string(epoch);
}

void Brush::store_slot(std::size_t t, std::uint64_t epoch,
                       const std::shared_ptr<const BitVector>& bits) {
  const std::uint64_t bytes = bits->memory_bytes();
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[t];
  if (slot.valid && slot.epoch >= epoch) return;  // lost to a newer store
  if (slot.valid) budget_->erase(slot_key(t, slot.epoch));
  slot.valid = true;
  slot.epoch = epoch;
  auto counter = slot_bytes_;
  counter->fetch_add(bytes, std::memory_order_relaxed);
  // The hook fires on LRU eviction and on erase alike, keeping
  // resident_bytes() an honest picture of what the budget actually holds;
  // it must stay lock-free (it runs under the budget's mutex).
  budget_->put(slot_key(t, epoch), bits, bytes, io::ResidentClass::kBrush,
               [counter, bytes] {
                 counter->fetch_sub(bytes, std::memory_order_relaxed);
               });
}

std::shared_ptr<const BitVector> Brush::bits(const Snapshot& snap,
                                             std::size_t t) {
  // Route decision under the lock; all evaluation outside it, so readers
  // never serialize behind each other or behind an editing session.
  bool slot_current = false;
  std::uint64_t parent_epoch = 0;
  std::vector<Op> deltas;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = slots_.find(t);
    if (it != slots_.end() && it->second.valid) {
      const Slot& slot = it->second;
      const std::uint64_t oldest = epoch_ - history_.size();
      if (slot.epoch == snap.epoch) {
        slot_current = true;
      } else if (slot.epoch < snap.epoch && snap.epoch <= epoch_ &&
                 slot.epoch >= oldest) {
        parent_epoch = slot.epoch;
        deltas.reserve(static_cast<std::size_t>(snap.epoch - slot.epoch));
        for (std::uint64_t e = slot.epoch; e < snap.epoch; ++e)
          deltas.push_back(history_[static_cast<std::size_t>(e - oldest)]);
      }
    }
  }

  if (slot_current) {
    if (auto cached =
            budget_->get(slot_key(t, snap.epoch), io::ResidentClass::kBrush))
      return std::static_pointer_cast<const BitVector>(cached);
  }

  if (!deltas.empty()) {
    if (auto cached = budget_->get(slot_key(t, parent_epoch),
                                   io::ResidentClass::kBrush)) {
      auto bits = std::static_pointer_cast<const BitVector>(cached);
      for (const Op& op : deltas) {
        switch (op.kind) {
          case Op::Kind::kRefine:
            bits = std::make_shared<const BitVector>(*bits &
                                                     *op.operand.bits(t));
            break;
          case Op::Kind::kInvert:
            bits = std::make_shared<const BitVector>(~*bits);
            break;
          case Op::Kind::kCombine: {
            const BitVector& other = *op.operand.bits(t);
            switch (op.combine_op) {
              case CombineOp::kAnd:
                bits = std::make_shared<const BitVector>(*bits & other);
                break;
              case CombineOp::kOr:
                bits = std::make_shared<const BitVector>(*bits | other);
                break;
              case CombineOp::kAndNot:
                bits = std::make_shared<const BitVector>(*bits & ~other);
                break;
            }
            break;
          }
        }
      }
      counters_->delta_evals.fetch_add(1, std::memory_order_relaxed);
      store_slot(t, snap.epoch, bits);
      return bits;
    }
  }

  // Parent evicted, history outrun, or first touch: plan and execute the
  // pinned composed predicate from scratch. This is the only place the
  // composed AST meets the planner, and it re-seeds the delta chain.
  auto bits = engine_.select(snap.query).bits(t);
  counters_->full_evals.fetch_add(1, std::memory_order_relaxed);
  store_slot(t, snap.epoch, bits);
  return bits;
}

std::uint64_t Brush::count(const Snapshot& snap, std::size_t t) {
  return bits(snap, t)->count();
}

std::vector<std::uint64_t> Brush::ids(const Snapshot& snap, std::size_t t) {
  const io::TimestepTable& tbl = engine_.dataset().table(t);
  const std::span<const std::uint64_t> id_col = tbl.id_column("id");
  std::vector<std::uint64_t> out;
  kern::for_each_set_blocked(
      *bits(snap, t), [&](std::uint64_t row) { out.push_back(id_col[row]); });
  return out;
}

Histogram1D Brush::histogram1d(const Snapshot& snap, std::size_t t,
                               const std::string& variable, std::size_t nbins,
                               BinningMode binning) {
  const io::TimestepTable& tbl = engine_.dataset().table(t);
  return tbl.engine().histogram1d(variable, nbins, *bits(snap, t), binning);
}

Histogram2D Brush::histogram2d(const Snapshot& snap, std::size_t t,
                               const std::string& x, const std::string& y,
                               std::size_t nxbins, std::size_t nybins,
                               BinningMode binning) {
  const io::TimestepTable& tbl = engine_.dataset().table(t);
  return tbl.engine().histogram2d(x, y, nxbins, nybins, *bits(snap, t),
                                  binning);
}

SummaryStats Brush::summary(const Snapshot& snap, std::size_t t,
                            const std::string& variable) {
  const io::TimestepTable& tbl = engine_.dataset().table(t);
  return conditional_stats(tbl, variable, *bits(snap, t));
}

}  // namespace qdv::core
