#include "core/tracks.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace qdv::core {

ParticleTracks::ParticleTracks(std::vector<std::uint64_t> ids,
                               std::vector<std::size_t> timesteps,
                               std::vector<std::string> variables)
    : ids_(std::move(ids)),
      timesteps_(std::move(timesteps)),
      variables_(std::move(variables)) {
  values_.assign(timesteps_.size() * variables_.size(),
                 std::vector<double>(ids_.size(),
                                     std::numeric_limits<double>::quiet_NaN()));
}

std::size_t ParticleTracks::var_index(const std::string& variable) const {
  for (std::size_t i = 0; i < variables_.size(); ++i)
    if (variables_[i] == variable) return i;
  throw std::out_of_range("ParticleTracks: variable '" + variable +
                          "' was not tracked");
}

std::size_t ParticleTracks::count_present(std::size_t ti) const {
  if (variables_.empty()) return 0;
  const std::vector<double>& vals = values_[ti * variables_.size()];
  std::size_t n = 0;
  for (const double v : vals)
    if (!std::isnan(v)) ++n;
  return n;
}

double ParticleTracks::value(std::size_t ti, const std::string& variable,
                             std::size_t k) const {
  return values_[ti * variables_.size() + var_index(variable)][k];
}

double ParticleTracks::mean(std::size_t ti, const std::string& variable) const {
  const std::vector<double>& vals =
      values_[ti * variables_.size() + var_index(variable)];
  double sum = 0.0;
  std::size_t n = 0;
  for (const double v : vals) {
    if (std::isnan(v)) continue;
    sum += v;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double ParticleTracks::relative_spread(std::size_t ti,
                                       const std::string& variable) const {
  const std::vector<double>& vals =
      values_[ti * variables_.size() + var_index(variable)];
  double sum = 0.0, sum2 = 0.0;
  std::size_t n = 0;
  for (const double v : vals) {
    if (std::isnan(v)) continue;
    sum += v;
    sum2 += v * v;
    ++n;
  }
  if (n == 0) return 0.0;
  const double mean = sum / static_cast<double>(n);
  if (mean == 0.0) return 0.0;
  const double var = std::max(0.0, sum2 / static_cast<double>(n) - mean * mean);
  return std::sqrt(var) / std::abs(mean);
}

}  // namespace qdv::core
