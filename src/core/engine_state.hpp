// Shared mutable state behind Engine and Selection handles: the dataset
// plus the unified memory budget that caches evaluated per-timestep
// bitvectors alongside the io layer's mapped columns and index segments.
// Private to src/core — the public API never exposes this type completely.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "bitmap/bitvector.hpp"
#include "core/plan.hpp"
#include "io/dataset.hpp"
#include "io/memory_budget.hpp"

namespace qdv::core::detail {

struct EngineState {
  io::Dataset dataset;
  EvalMode mode = EvalMode::kAuto;

  // Plan cache behind Engine::select_shared(): query text -> planned
  // ExecutionPlan. Plans only (never Selection handles — a Selection holds
  // this state, so caching one here would be a shared_ptr cycle). Guarded
  // by its own mutex (planning never holds the budget lock); cleared
  // wholesale when it outgrows kPlanCacheCap so a long-lived service
  // cannot accrete plans for unbounded distinct texts.
  static constexpr std::size_t kPlanCacheCap = 1024;
  std::mutex plan_mutex;
  std::unordered_map<std::string, std::shared_ptr<const ExecutionPlan>>
      plan_cache;

  // The dataset's budget, adopted at Engine construction: bitvector cache
  // entries (ResidentClass::kBitVector) live next to the io residents, so
  // one byte ceiling governs everything the engine can re-create from disk.
  // Evaluation happens outside the budget's lock: two threads missing the
  // same key may both compute it (idempotent; the first insert wins).
  std::shared_ptr<io::MemoryBudget> budget;
  std::atomic<std::uint64_t> hits{0};    // bitvector evaluations from cache
  std::atomic<std::uint64_t> misses{0};  // bitvector evaluations computed
  // Zoom tier routing (Selection::zoom_histogram* under ZoomMode::kAuto).
  std::atomic<std::uint64_t> pyramid_served{0};
  std::atomic<std::uint64_t> pyramid_fallback{0};

  /// Cached evaluation of one canonical AST node at timestep @p t. Every
  /// node of the tree is cached under its own key, so a refined selection
  /// reuses the leaf (and subtree) bitvectors of the selection it came from.
  std::shared_ptr<const BitVector> evaluate(const Query& canonical, std::size_t t);

  /// Cached all-rows bitvector of timestep @p t (the match-everything plan).
  std::shared_ptr<const BitVector> all_rows(std::size_t t);

 private:
  BitVector compute(const Query& canonical, std::size_t t);
};

/// Cache key of one (timestep, canonical node) pair.
std::string entry_key(std::size_t t, const std::string& node_key);

}  // namespace qdv::core::detail
