// Shared mutable state behind Engine and Selection handles: the dataset plus
// the thread-safe LRU cache of evaluated per-timestep bitvectors. Private to
// src/core — the public API never exposes this type completely.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "bitmap/bitvector.hpp"
#include "core/plan.hpp"
#include "io/dataset.hpp"

namespace qdv::core::detail {

struct EngineState {
  io::Dataset dataset;
  EvalMode mode = EvalMode::kAuto;

  struct CacheEntry {
    std::string key;
    std::shared_ptr<const BitVector> bits;
  };

  // All cache fields are guarded by `mutex`. Evaluation happens outside the
  // lock: two threads missing the same key may both compute it (idempotent;
  // one result wins), but no lock is ever held across I/O or bit operations.
  mutable std::mutex mutex;
  std::size_t capacity = 1024;               // entries
  std::list<CacheEntry> lru;                 // front = most recently used
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> by_key;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes = 0;                   // compressed bytes held

  /// Cached evaluation of one canonical AST node at timestep @p t. Every
  /// node of the tree is cached under its own key, so a refined selection
  /// reuses the leaf (and subtree) bitvectors of the selection it came from.
  std::shared_ptr<const BitVector> evaluate(const Query& canonical, std::size_t t);

  /// Cached all-rows bitvector of timestep @p t (the match-everything plan).
  std::shared_ptr<const BitVector> all_rows(std::size_t t);

  /// Drop LRU entries until size <= capacity. Caller must hold `mutex`.
  void evict_to_capacity_locked();

 private:
  BitVector compute(const Query& canonical, std::size_t t);
  std::shared_ptr<const BitVector> lookup(const std::string& key);
  void insert(const std::string& key, std::shared_ptr<const BitVector> bits);
};

/// Cache key of one (timestep, canonical node) pair.
std::string entry_key(std::size_t t, const std::string& node_key);

}  // namespace qdv::core::detail
