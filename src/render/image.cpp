#include "render/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace qdv::render {

Image::Image(std::size_t width, std::size_t height, Color background)
    : width_(width), height_(height), rgb_(width * height * 3) {
  for (std::size_t i = 0; i < width_ * height_; ++i) {
    rgb_[3 * i + 0] = background.r;
    rgb_[3 * i + 1] = background.g;
    rgb_[3 * i + 2] = background.b;
  }
}

void Image::add(std::ptrdiff_t x, std::ptrdiff_t y, const Color& color, float alpha) {
  if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(width_) ||
      y >= static_cast<std::ptrdiff_t>(height_))
    return;
  const std::size_t i =
      (static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)) * 3;
  rgb_[i + 0] += color.r * alpha;
  rgb_[i + 1] += color.g * alpha;
  rgb_[i + 2] += color.b * alpha;
}

void Image::set(std::ptrdiff_t x, std::ptrdiff_t y, const Color& color) {
  if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(width_) ||
      y >= static_cast<std::ptrdiff_t>(height_))
    return;
  const std::size_t i =
      (static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)) * 3;
  rgb_[i + 0] = color.r;
  rgb_[i + 1] = color.g;
  rgb_[i + 2] = color.b;
}

void Image::draw_line(double x0, double y0, double x1, double y1,
                      const Color& color, float alpha) {
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  const int steps =
      std::max(1, static_cast<int>(std::ceil(std::max(std::abs(dx), std::abs(dy)))));
  for (int i = 0; i <= steps; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(steps);
    add(static_cast<std::ptrdiff_t>(std::lround(x0 + dx * t)),
        static_cast<std::ptrdiff_t>(std::lround(y0 + dy * t)), color, alpha);
  }
}

void Image::write_ppm(const std::filesystem::path& path) const {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write image: " + path.string());
  out << "P6\n" << width_ << ' ' << height_ << "\n255\n";
  std::vector<unsigned char> row(width_ * 3);
  for (std::size_t y = 0; y < height_; ++y) {
    for (std::size_t x = 0; x < width_ * 3; ++x) {
      const float v = std::clamp(rgb_[y * width_ * 3 + x], 0.0f, 1.0f);
      row[x] = static_cast<unsigned char>(std::lround(v * 255.0f));
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
}

Color pseudocolor(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // Blue -> cyan -> yellow -> red ramp.
  const auto lerp = [](float a, float b, double u) {
    return static_cast<float>(a + (b - a) * u);
  };
  if (t < 1.0 / 3.0) {
    const double u = t * 3.0;
    return {lerp(0.15f, 0.10f, u), lerp(0.25f, 0.75f, u), lerp(0.90f, 0.85f, u)};
  }
  if (t < 2.0 / 3.0) {
    const double u = (t - 1.0 / 3.0) * 3.0;
    return {lerp(0.10f, 0.95f, u), lerp(0.75f, 0.85f, u), lerp(0.85f, 0.20f, u)};
  }
  const double u = (t - 2.0 / 3.0) * 3.0;
  return {lerp(0.95f, 0.95f, u), lerp(0.85f, 0.15f, u), lerp(0.20f, 0.10f, u)};
}

Color palette_color(std::size_t i) {
  static constexpr Color kPalette[] = {
      colors::kRed,  colors::kOrange, colors::kYellow,  colors::kGreen,
      colors::kCyan, colors::kBlue,   colors::kMagenta, colors::kWhite,
      colors::kGray,
  };
  return kPalette[i % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

}  // namespace qdv::render
