#include "render/pc_plot.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qdv::render {

namespace {
constexpr Color kFrameColor{0.35f, 0.35f, 0.38f};
}  // namespace

ParallelCoordinatesPlot::ParallelCoordinatesPlot(std::vector<PcAxis> axes,
                                                 PcLayout layout)
    : axes_(std::move(axes)),
      layout_(layout),
      image_(layout_.width, layout_.height) {
  if (axes_.size() < 2)
    throw std::invalid_argument("ParallelCoordinatesPlot: need at least 2 axes");
}

double ParallelCoordinatesPlot::axis_x(std::size_t axis) const {
  const double usable =
      static_cast<double>(layout_.width - 2 * layout_.margin);
  return static_cast<double>(layout_.margin) +
         usable * static_cast<double>(axis) /
             static_cast<double>(axes_.size() - 1);
}

double ParallelCoordinatesPlot::value_y(std::size_t axis, double value) const {
  const PcAxis& a = axes_[axis];
  const double span = a.hi > a.lo ? a.hi - a.lo : 1.0;
  const double t = std::clamp((value - a.lo) / span, 0.0, 1.0);
  const double usable =
      static_cast<double>(layout_.height - 2 * layout_.margin);
  return static_cast<double>(layout_.height - layout_.margin) - t * usable;
}

void ParallelCoordinatesPlot::draw_frame() {
  const auto top = static_cast<std::ptrdiff_t>(layout_.margin);
  const auto bottom = static_cast<std::ptrdiff_t>(layout_.height - layout_.margin);
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const auto x = static_cast<std::ptrdiff_t>(std::lround(axis_x(a)));
    for (std::ptrdiff_t y = top; y <= bottom; ++y) image_.set(x, y, kFrameColor);
  }
}

void ParallelCoordinatesPlot::draw_histogram_layer(
    const std::vector<Histogram2D>& hists, const PcStyle& style) {
  const std::size_t npairs = std::min(hists.size(), axes_.size() - 1);
  for (std::size_t pair = 0; pair < npairs; ++pair) {
    const Histogram2D& h = hists[pair];
    const std::uint64_t maxc = h.max_count();
    if (maxc == 0) continue;
    const double xl = axis_x(pair);
    const double xr = axis_x(pair + 1);
    const auto px0 = static_cast<std::ptrdiff_t>(std::ceil(xl));
    const auto px1 = static_cast<std::ptrdiff_t>(std::floor(xr));
    for (std::size_t bx = 0; bx < h.nx(); ++bx) {
      for (std::size_t by = 0; by < h.ny(); ++by) {
        const std::uint64_t c = h.at(bx, by);
        if (c == 0) continue;
        const float intensity =
            style.max_alpha *
            static_cast<float>(std::pow(static_cast<double>(c) /
                                            static_cast<double>(maxc),
                                        style.gamma));
        // Quad between the bin's value range on the left axis and on the
        // right axis; filled column by column.
        const double la = value_y(pair, h.xbins.edges()[bx]);
        const double lb = value_y(pair, h.xbins.edges()[bx + 1]);
        const double ra = value_y(pair + 1, h.ybins.edges()[by]);
        const double rb = value_y(pair + 1, h.ybins.edges()[by + 1]);
        for (std::ptrdiff_t px = px0; px <= px1; ++px) {
          const double t = (static_cast<double>(px) - xl) / (xr - xl);
          const double ya = la + (ra - la) * t;
          const double yb = lb + (rb - lb) * t;
          const auto ylo = static_cast<std::ptrdiff_t>(std::lround(std::min(ya, yb)));
          const auto yhi = static_cast<std::ptrdiff_t>(std::lround(std::max(ya, yb)));
          for (std::ptrdiff_t y = ylo; y <= yhi; ++y)
            image_.add(px, y, style.color, intensity);
        }
      }
    }
  }
}

void ParallelCoordinatesPlot::draw_polyline_layer(
    const std::vector<std::span<const double>>& columns, const PcStyle& style) {
  const std::size_t npairs = std::min(columns.size(), axes_.size()) - 1;
  if (columns.empty()) return;
  const std::size_t rows = columns.front().size();
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t pair = 0; pair < npairs; ++pair) {
      image_.draw_line(axis_x(pair), value_y(pair, columns[pair][row]),
                       axis_x(pair + 1), value_y(pair + 1, columns[pair + 1][row]),
                       style.color, style.max_alpha);
    }
  }
}

void ParallelCoordinatesPlot::draw_hybrid_layer(
    const std::vector<Histogram2D>& hists,
    const std::vector<std::span<const double>>& columns, const PcStyle& style,
    double outlier_fraction) {
  draw_histogram_layer(hists, style);
  if (columns.empty()) return;
  const std::size_t npairs =
      std::min({hists.size(), columns.size() - 1, axes_.size() - 1});
  // Per-pair density cutoffs below which a bin's records render as lines.
  std::vector<double> cutoff(npairs, 0.0);
  for (std::size_t pair = 0; pair < npairs; ++pair) {
    const Histogram2D& h = hists[pair];
    double max_density = 0.0;
    for (std::size_t bx = 0; bx < h.nx(); ++bx)
      for (std::size_t by = 0; by < h.ny(); ++by)
        if (h.at(bx, by) != 0)
          max_density = std::max(max_density, h.density(bx, by));
    cutoff[pair] = outlier_fraction * max_density;
  }
  // Cached locators hoist the per-row bin search out of the hot loop.
  std::vector<Bins::Locator> xloc;
  std::vector<Bins::Locator> yloc;
  xloc.reserve(npairs);
  yloc.reserve(npairs);
  for (std::size_t pair = 0; pair < npairs; ++pair) {
    xloc.push_back(hists[pair].xbins.locator());
    yloc.push_back(hists[pair].ybins.locator());
  }
  const std::size_t rows = columns.front().size();
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t pair = 0; pair < npairs; ++pair) {
      const Histogram2D& h = hists[pair];
      const std::ptrdiff_t bx = xloc[pair](columns[pair][row]);
      const std::ptrdiff_t by = yloc[pair](columns[pair + 1][row]);
      const bool sparse =
          bx < 0 || by < 0 ||
          h.density(static_cast<std::size_t>(bx), static_cast<std::size_t>(by)) <
              cutoff[pair];
      if (!sparse) continue;
      image_.draw_line(axis_x(pair), value_y(pair, columns[pair][row]),
                       axis_x(pair + 1), value_y(pair + 1, columns[pair + 1][row]),
                       style.color, style.max_alpha);
    }
  }
}

}  // namespace qdv::render
