#include "io/dataset.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace qdv::io {

std::string step_dir_name(std::size_t t) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "t%05zu", t);
  return buf;
}

struct Dataset::Impl {
  std::filesystem::path dir;
  std::size_t timesteps = 0;
  LoadMode mode = LoadMode::kLazy;
  std::shared_ptr<MemoryBudget> budget;
  std::shared_ptr<IntegrityStats> integrity;
  std::vector<std::string> variables;
  std::unordered_map<std::string, std::pair<double, double>> domains;

  mutable std::mutex mutex;
  mutable std::vector<std::shared_ptr<TimestepTable>> cache;
};

OpenOptions default_open_options() {
  OpenOptions options;
  if (const char* env = std::getenv("QDV_MEMORY_BUDGET")) {
    const long long bytes = std::atoll(env);
    if (bytes > 0) options.budget_bytes = static_cast<std::uint64_t>(bytes);
  }
  return options;
}

Dataset Dataset::open(const std::filesystem::path& dir) {
  return open(dir, default_open_options());
}

Dataset Dataset::open(const std::filesystem::path& dir,
                      const OpenOptions& options) {
  auto impl = std::make_shared<Impl>();
  impl->dir = dir;
  impl->mode = options.mode;
  impl->budget = std::make_shared<MemoryBudget>(options.budget_bytes);
  impl->integrity = std::make_shared<IntegrityStats>();
  // The root sidecar covers the manifest — ground truth for timestep count
  // and variables, so a mismatch is a typed open failure, while a missing
  // sidecar (pre-checksum dataset) just counts as unverified.
  try {
    if (auto sums = ChecksumSet::load_dir(dir)) {
      if (const auto* sum = sums->file(kManifestName)) {
        if (crc32c_file(dir / kManifestName) != sum->crc) {
          impl->integrity->failures.fetch_add(1, std::memory_order_relaxed);
          throw IntegrityError("checksum mismatch in " +
                               (dir / kManifestName).string());
        }
        impl->integrity->verified.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      impl->integrity->unverified.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const IntegrityError&) {
    throw;
  } catch (const std::exception&) {
    // Corrupt sidecar (or the manifest is unreadable — the open below will
    // say so): record the failure, open unverified.
    impl->integrity->failures.fetch_add(1, std::memory_order_relaxed);
  }
  std::ifstream manifest(dir / kManifestName);
  if (!manifest)
    throw std::runtime_error("not a qdv dataset (no " + std::string(kManifestName) +
                             "): " + dir.string());
  std::string line;
  while (std::getline(manifest, line)) {
    std::istringstream ss(line);
    std::string key;
    ss >> key;
    if (key == "timesteps") {
      ss >> impl->timesteps;
    } else if (key == "variables") {
      std::string var;
      while (ss >> var) impl->variables.push_back(var);
    } else if (key == "domain") {
      std::string var;
      double lo = 0.0, hi = 0.0;
      ss >> var >> lo >> hi;
      impl->domains[var] = {lo, hi};
    }
  }
  if (impl->timesteps == 0)
    throw std::runtime_error("manifest declares no timesteps: " + dir.string());
  impl->cache.resize(impl->timesteps);
  Dataset ds;
  ds.impl_ = std::move(impl);
  return ds;
}

std::size_t Dataset::num_timesteps() const { return impl_->timesteps; }

const std::vector<std::string>& Dataset::variables() const {
  return impl_->variables;
}

const std::filesystem::path& Dataset::path() const { return impl_->dir; }

std::filesystem::path Dataset::step_dir(std::size_t t) const {
  return impl_->dir / step_dir_name(t);
}

const TimestepTable& Dataset::table(std::size_t t) const {
  if (t >= impl_->timesteps)
    throw std::out_of_range("timestep out of range: " + std::to_string(t));
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->cache[t])
    impl_->cache[t] = std::make_shared<TimestepTable>(
        step_dir(t), t, impl_->mode, impl_->budget, impl_->integrity);
  return *impl_->cache[t];
}

std::shared_ptr<TimestepTable> Dataset::open_table(std::size_t t,
                                                   LoadMode mode) const {
  if (t >= impl_->timesteps)
    throw std::out_of_range("timestep out of range: " + std::to_string(t));
  return std::make_shared<TimestepTable>(step_dir(t), t, mode, nullptr,
                                         impl_->integrity);
}

const std::shared_ptr<MemoryBudget>& Dataset::memory_budget() const {
  return impl_->budget;
}

const std::shared_ptr<IntegrityStats>& Dataset::integrity_stats() const {
  return impl_->integrity;
}

std::pair<double, double> Dataset::global_domain(const std::string& name) const {
  const auto it = impl_->domains.find(name);
  if (it == impl_->domains.end())
    throw std::out_of_range("unknown variable '" + name + "' in manifest");
  return it->second;
}

std::uint64_t Dataset::disk_bytes() const {
  std::uint64_t total = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(impl_->dir))
    if (entry.is_regular_file()) total += entry.file_size();
  return total;
}

void Dataset::drop_cache() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& table : impl_->cache) table.reset();
  // Residents charged by the dropped tables (and bitvectors derived from
  // them) are gone with the tables; reset the budget accounting to match.
  impl_->budget->clear();
}

}  // namespace qdv::io
