#include "io/timestep_table.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "agg/pyramid.hpp"

namespace qdv::io {

namespace {

template <typename T>
std::vector<T> read_binary_column(const std::filesystem::path& file,
                                  std::uint64_t rows) {
  std::ifstream in(file, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open column file " + file.string());
  std::vector<T> data(rows);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(rows * sizeof(T)));
  if (!in) throw std::runtime_error("truncated column file " + file.string());
  return data;
}

}  // namespace

TimestepTable::TimestepTable(std::filesystem::path dir, std::size_t step,
                             LoadMode mode, std::shared_ptr<MemoryBudget> budget)
    : dir_(std::move(dir)), step_(step), mode_(mode), budget_(std::move(budget)) {
  budget_prefix_ = dir_.string();
  std::ifstream meta(dir_ / "meta.txt");
  if (!meta)
    throw std::runtime_error("timestep has no meta.txt: " + dir_.string());
  std::string line;
  while (std::getline(meta, line)) {
    std::istringstream ss(line);
    std::string key;
    ss >> key;
    if (key == "rows") {
      ss >> rows_;
    } else if (key == "domain") {
      std::string var;
      double lo = 0.0, hi = 0.0;
      ss >> var >> lo >> hi;
      domains_[var] = {lo, hi};
      variables_.push_back(var);
    }
  }
}

template <typename T>
std::span<const T> TimestepTable::lazy_column(
    std::unordered_map<std::string, ColumnHandle<T>>& handles,
    const std::string& name, const char* extension) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles.find(name);
  if (it == handles.end())
    it = handles.emplace(name, ColumnHandle<T>(dir_ / (name + extension), rows_))
             .first;
  ColumnHandle<T>& handle = it->second;
  if (!budget_) return handle.load();
  const std::string key = budget_prefix_ + "|col|" + name;
  if (budget_->get(key, ResidentClass::kColumn) && handle.loaded())
    return handle.values();
  const std::span<const T> values = handle.load();
  // A column larger than the whole budget streams through the page cache:
  // hint sequential access and let put() evict the charge right back out —
  // the mapping (and every span into it) stays valid regardless.
  if (budget_->budget() != MemoryBudget::kUnlimited &&
      handle.bytes() > budget_->budget())
    handle.mapping()->advise_sequential();
  budget_->put(key, handle.mapping(), handle.bytes(), ResidentClass::kColumn,
               [mapping = handle.mapping()] { mapping->release_pages(); });
  return values;
}

std::span<const double> TimestepTable::column(const std::string& name) const {
  if (mode_ == LoadMode::kLazy)
    return lazy_column(column_handles_, name, ".f64");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = columns_.find(name);
  if (it == columns_.end()) {
    it = columns_
             .emplace(name, read_binary_column<double>(dir_ / (name + ".f64"), rows_))
             .first;
  }
  return it->second;
}

std::span<const std::uint64_t> TimestepTable::id_column(const std::string& name) const {
  if (mode_ == LoadMode::kLazy) return lazy_column(id_handles_, name, ".u64");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = id_columns_.find(name);
  if (it == id_columns_.end()) {
    it = id_columns_
             .emplace(name,
                      read_binary_column<std::uint64_t>(dir_ / (name + ".u64"), rows_))
             .first;
  }
  return it->second;
}

void TimestepTable::prefetch_column(const std::string& name) const {
  (void)column(name);  // map (kLazy) or read (kEager) + charge the budget
  if (mode_ != LoadMode::kLazy) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = column_handles_.find(name);
  if (it != column_handles_.end() && it->second.loaded())
    it->second.mapping()->advise_willneed();
}

void TimestepTable::prefetch_id_column(const std::string& name) const {
  (void)id_column(name);
  if (mode_ != LoadMode::kLazy) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = id_handles_.find(name);
  if (it != id_handles_.end() && it->second.loaded())
    it->second.mapping()->advise_willneed();
}

const SegmentedBitmapIndex* TimestepTable::value_index(
    const std::string& name) const {
  if (mode_ == LoadMode::kEager) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = seg_indices_.find(name);
  if (it == seg_indices_.end()) {
    std::optional<SegmentedBitmapIndex> opened;
    const std::filesystem::path file = dir_ / (name + ".bmi");
    if (std::filesystem::exists(file)) {
      auto mapped = MappedFile::map(file);
      opened = SegmentedBitmapIndex::open(mapped->bytes(), mapped);
      // The directory (edges + offsets) is pinned: raw pointers to the
      // index are handed out, so it must never be evicted.
      if (budget_)
        budget_->put(budget_prefix_ + "|idxmeta|" + name, mapped,
                     opened->metadata_bytes(), ResidentClass::kIndexSegment,
                     {}, /*pinned=*/true);
    }
    it = seg_indices_.emplace(name, std::move(opened)).first;
  }
  return it->second ? &*it->second : nullptr;
}

const BitmapIndex* TimestepTable::index(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = indices_.find(name);
  if (it == indices_.end()) {
    std::optional<BitmapIndex> loaded;
    const std::filesystem::path file = dir_ / (name + ".bmi");
    if (std::ifstream in(file, std::ios::binary); in)
      loaded = BitmapIndex::load(in);
    it = indices_.emplace(name, std::move(loaded)).first;
  }
  return it->second ? &*it->second : nullptr;
}

const IdIndex* TimestepTable::id_index(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = id_indices_.find(name);
  if (it == id_indices_.end()) {
    std::optional<IdIndex> loaded;
    const std::filesystem::path file = dir_ / (name + ".idi");
    if (std::ifstream in(file, std::ios::binary); in) loaded = IdIndex::load(in);
    // Pinned accounting-only charge: the id index is handed out as a raw
    // pointer and must stay whole for binary search.
    if (loaded && budget_)
      budget_->put(budget_prefix_ + "|ididx|" + name, nullptr,
                   loaded->memory_bytes(), ResidentClass::kIndexSegment, {},
                   /*pinned=*/true);
    it = id_indices_.emplace(name, std::move(loaded)).first;
  }
  return it->second ? &*it->second : nullptr;
}

bool TimestepTable::has_value_index(const std::string& name) const {
  return std::filesystem::exists(dir_ / (name + ".bmi"));
}

bool TimestepTable::has_id_index(const std::string& name) const {
  return std::filesystem::exists(dir_ / (name + ".idi"));
}

std::shared_ptr<const agg::Pyramid> TimestepTable::open_pyramid(
    const std::string& stem) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = pyramids_.find(stem);
  if (it != pyramids_.end()) return it->second;
  std::shared_ptr<const agg::Pyramid> pyramid;
  const std::filesystem::path file = dir_ / (stem + ".pyr");
  if (std::filesystem::exists(file))
    pyramid =
        agg::Pyramid::open(file, budget_, budget_prefix_ + "|pyr|" + stem);
  pyramids_.emplace(stem, pyramid);
  return pyramid;
}

std::shared_ptr<const agg::Pyramid> TimestepTable::pyramid1d(
    const std::string& name) const {
  return open_pyramid(name);
}

std::shared_ptr<const agg::Pyramid> TimestepTable::pyramid2d(
    const std::string& x, const std::string& y) const {
  return open_pyramid(x + "__" + y);
}

bool TimestepTable::has_pyramid(const std::string& name) const {
  return std::filesystem::exists(dir_ / (name + ".pyr"));
}

bool TimestepTable::has_pyramid(const std::string& x,
                                const std::string& y) const {
  return std::filesystem::exists(dir_ / (x + "__" + y + ".pyr"));
}

bool TimestepTable::has_indices() const {
  for (const std::string& var : variables_)
    if (std::filesystem::exists(dir_ / (var + ".bmi"))) return true;
  return std::filesystem::exists(dir_ / "id.idi");
}

SegmentedBitmapIndex::SegmentFetch TimestepTable::segment_fetch(
    const std::string& name, const SegmentedBitmapIndex& idx) const {
  if (!budget_) return {};  // no budget: decode directly, cache nothing
  return [budget = budget_, prefix = budget_prefix_ + "|seg|" + name + "|",
          index = &idx](std::size_t s) {
    const std::string key = prefix + std::to_string(s);
    if (auto cached = budget->get(key, ResidentClass::kIndexSegment))
      return std::static_pointer_cast<const BitVector>(cached);
    auto decoded = std::make_shared<const BitVector>(index->decode_segment(s));
    budget->put(key, decoded, decoded->memory_bytes(),
                ResidentClass::kIndexSegment);
    return std::shared_ptr<const BitVector>(decoded);
  };
}

std::pair<double, double> TimestepTable::domain(const std::string& name) const {
  const auto it = domains_.find(name);
  if (it == domains_.end())
    throw std::out_of_range("unknown variable '" + name + "' in " + dir_.string());
  return it->second;
}

namespace {

/// Append one bit per row, coalescing equal neighbors into append_run calls
/// so the WAH encoder sees whole runs instead of 31 single-bit appends per
/// group (scan results are run-heavy at both selectivity extremes).
template <typename Pred>
BitVector scan_predicate(std::uint64_t rows, Pred&& pred) {
  BitVector out;
  std::uint64_t run_start = 0;
  bool run_value = false;
  for (std::uint64_t row = 0; row < rows; ++row) {
    const bool v = pred(row);
    if (row == 0) {
      run_value = v;
    } else if (v != run_value) {
      out.append_run(run_value, row - run_start);
      run_start = row;
      run_value = v;
    }
  }
  out.append_run(run_value, rows - run_start);
  return out;
}

BitVector scan_interval(const TimestepTable& table, const std::string& variable,
                        const Interval& iv) {
  const std::span<const double> values = table.column(variable);
  return scan_predicate(values.size(),
                        [&](std::uint64_t row) { return iv.contains(values[row]); });
}

/// Shared index-first path of kCompare and kInterval: two-step evaluation
/// when an index exists, sequential scan otherwise. The lazy path decodes
/// only the per-bin segments the interval's bin coverage touches.
BitVector eval_interval(const TimestepTable& table, const std::string& variable,
                        const Interval& iv, EvalMode mode, std::uint64_t rows) {
  if (mode != EvalMode::kScan) {
    if (table.load_mode() == LoadMode::kLazy) {
      if (const SegmentedBitmapIndex* idx = table.value_index(variable)) {
        ApproxAnswer approx =
            idx->evaluate_approx(iv, table.segment_fetch(variable, *idx));
        // Load the raw column only when boundary bins need checking —
        // index-only answers (precision binning) never touch the data.
        if (approx.candidates.count() == 0) return std::move(approx.hits);
        return detail::resolve_candidates(iv, std::move(approx),
                                          table.column(variable), rows);
      }
    } else if (const BitmapIndex* idx = table.index(variable)) {
      ApproxAnswer approx = idx->evaluate_approx(iv);
      if (approx.candidates.count() == 0) return std::move(approx.hits);
      return detail::resolve_candidates(iv, std::move(approx),
                                        table.column(variable), rows);
    }
    if (mode == EvalMode::kIndex)
      throw std::runtime_error("no bitmap index for variable " + variable);
  }
  return scan_interval(table, variable, iv);
}

BitVector scan_id_in(const TimestepTable& table, const IdInQuery& q) {
  const std::span<const std::uint64_t> ids = table.id_column(q.variable());
  const std::vector<std::uint64_t>& search = q.ids();
  return scan_predicate(ids.size(), [&](std::uint64_t row) {
    return std::binary_search(search.begin(), search.end(), ids[row]);
  });
}

}  // namespace

BitVector TimestepTable::query(const Query& q, EvalMode mode) const {
  switch (q.kind()) {
    case Query::Kind::kCompare: {
      const auto& cq = static_cast<const CompareQuery&>(q);
      return eval_interval(*this, cq.variable(), interval_for(cq.op(), cq.value()),
                           mode, rows_);
    }
    case Query::Kind::kInterval: {
      const auto& vq = static_cast<const IntervalQuery&>(q);
      if (vq.interval().empty()) return BitVector::zeros(rows_);
      return eval_interval(*this, vq.variable(), vq.interval(), mode, rows_);
    }
    case Query::Kind::kIdIn: {
      const auto& iq = static_cast<const IdInQuery&>(q);
      if (mode != EvalMode::kScan) {
        if (const IdIndex* idx = id_index(iq.variable()))
          return BitVector::from_positions(idx->lookup_rows(iq.ids()), rows_);
        if (mode == EvalMode::kIndex)
          throw std::runtime_error("no id index for variable " + iq.variable());
      }
      return scan_id_in(*this, iq);
    }
    case Query::Kind::kAnd: {
      const auto& aq = static_cast<const AndQuery&>(q);
      return query(aq.lhs(), mode) & query(aq.rhs(), mode);
    }
    case Query::Kind::kOr: {
      const auto& oq = static_cast<const OrQuery&>(q);
      return query(oq.lhs(), mode) | query(oq.rhs(), mode);
    }
    case Query::Kind::kNot: {
      const auto& nq = static_cast<const NotQuery&>(q);
      return ~query(nq.operand(), mode);
    }
  }
  throw std::logic_error("TimestepTable::query: bad query kind");
}

BitVector TimestepTable::query(const std::string& text, EvalMode mode) const {
  return query(*parse_query(text), mode);
}

}  // namespace qdv::io

namespace qdv {

BitVector evaluate(const Query& query, const io::TimestepTable& table,
                   EvalMode mode) {
  return table.query(query, mode);
}

}  // namespace qdv
