#include "io/timestep_table.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "agg/pyramid.hpp"

namespace qdv::io {

namespace {

template <typename T>
std::vector<T> read_binary_column(const std::filesystem::path& file,
                                  std::uint64_t rows) {
  std::ifstream in(file, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open column file " + file.string());
  std::vector<T> data(rows);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(rows * sizeof(T)));
  if (!in) throw std::runtime_error("truncated column file " + file.string());
  return data;
}

// Verify one recorded section of @p filename against @p bytes (the exact
// range a decode is about to trust). Unrecorded sections count as
// unverified; a mismatch counts a failure and throws IntegrityError — the
// caller decides whether that demotes (index artifacts) or surfaces
// (ground truth).
void verify_section(const ChecksumSet* sums, IntegrityStats& stats,
                    const std::filesystem::path& dir,
                    const std::string& filename, std::uint64_t offset,
                    std::span<const std::byte> bytes) {
  const ChecksumSet::Section* sum =
      sums ? sums->section(filename, offset, bytes.size()) : nullptr;
  if (!sum) {
    stats.unverified.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (crc32c(bytes.data(), bytes.size()) != sum->crc) {
    stats.failures.fetch_add(1, std::memory_order_relaxed);
    throw IntegrityError("checksum mismatch at offset " +
                         std::to_string(offset) + " of " +
                         (dir / filename).string());
  }
  stats.verified.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TimestepTable::TimestepTable(std::filesystem::path dir, std::size_t step,
                             LoadMode mode, std::shared_ptr<MemoryBudget> budget,
                             std::shared_ptr<IntegrityStats> integrity)
    : dir_(std::move(dir)), step_(step), mode_(mode), budget_(std::move(budget)),
      integrity_(integrity ? std::move(integrity)
                           : std::make_shared<IntegrityStats>()) {
  budget_prefix_ = dir_.string();
  try {
    sums_ = ChecksumSet::load_dir(dir_);
  } catch (const std::exception&) {
    // A corrupt sidecar must not take the dataset down: treat the
    // directory as unverified and record the failure.
    integrity_->failures.fetch_add(1, std::memory_order_relaxed);
    sums_ = nullptr;
  }
  // meta.txt is ground truth for row counts and domains — verify it before
  // trusting a parse of it.
  if (sums_) {
    if (const auto* sum = sums_->file("meta.txt")) {
      if (crc32c_file(dir_ / "meta.txt") != sum->crc) {
        integrity_->failures.fetch_add(1, std::memory_order_relaxed);
        throw IntegrityError("checksum mismatch in " +
                             (dir_ / "meta.txt").string());
      }
      integrity_->verified.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::ifstream meta(dir_ / "meta.txt");
  if (!meta)
    throw std::runtime_error("timestep has no meta.txt: " + dir_.string());
  std::string line;
  while (std::getline(meta, line)) {
    std::istringstream ss(line);
    std::string key;
    ss >> key;
    if (key == "rows") {
      ss >> rows_;
    } else if (key == "domain") {
      std::string var;
      double lo = 0.0, hi = 0.0;
      ss >> var >> lo >> hi;
      domains_[var] = {lo, hi};
      variables_.push_back(var);
    }
  }
}

void TimestepTable::verify_file_locked(const std::string& filename,
                                       const void* data,
                                       std::size_t nbytes) const {
  if (verified_files_.count(filename)) return;
  verified_files_.insert(filename);
  const ChecksumSet::FileSum* sum = sums_ ? sums_->file(filename) : nullptr;
  if (!sum) {
    integrity_->unverified.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (sum->size != nbytes || crc32c(data, nbytes) != sum->crc) {
    integrity_->failures.fetch_add(1, std::memory_order_relaxed);
    verified_files_.erase(filename);  // re-check (and re-throw) on retry
    throw IntegrityError("checksum mismatch in " +
                         (dir_ / filename).string());
  }
  integrity_->verified.fetch_add(1, std::memory_order_relaxed);
}

void TimestepTable::verify_disk_locked(const std::string& filename) const {
  if (verified_files_.count(filename)) return;
  verified_files_.insert(filename);
  const ChecksumSet::FileSum* sum = sums_ ? sums_->file(filename) : nullptr;
  if (!sum) {
    integrity_->unverified.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::filesystem::path file = dir_ / filename;
  if (std::filesystem::file_size(file) != sum->size ||
      crc32c_file(file) != sum->crc) {
    integrity_->failures.fetch_add(1, std::memory_order_relaxed);
    verified_files_.erase(filename);
    throw IntegrityError("checksum mismatch in " + file.string());
  }
  integrity_->verified.fetch_add(1, std::memory_order_relaxed);
}

template <typename T>
std::span<const T> TimestepTable::lazy_column(
    std::unordered_map<std::string, ColumnHandle<T>>& handles,
    const std::string& name, const char* extension) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles.find(name);
  if (it == handles.end())
    it = handles.emplace(name, ColumnHandle<T>(dir_ / (name + extension), rows_))
             .first;
  ColumnHandle<T>& handle = it->second;
  if (!budget_) {
    const std::span<const T> loaded = handle.load();
    verify_file_locked(name + extension, handle.mapping()->bytes().data(),
                       handle.mapping()->size());
    return loaded;
  }
  const std::string key = budget_prefix_ + "|col|" + name;
  if (budget_->get(key, ResidentClass::kColumn) && handle.loaded())
    return handle.values();
  const std::span<const T> values = handle.load();
  // Whole-file verification on first touch (columns are the scan-path
  // ground truth, so a mismatch is a typed error, not a demotion).
  verify_file_locked(name + extension, handle.mapping()->bytes().data(),
                     handle.mapping()->size());
  // A column larger than the whole budget streams through the page cache:
  // hint sequential access and let put() evict the charge right back out —
  // the mapping (and every span into it) stays valid regardless.
  if (budget_->budget() != MemoryBudget::kUnlimited &&
      handle.bytes() > budget_->budget())
    handle.mapping()->advise_sequential();
  budget_->put(key, handle.mapping(), handle.bytes(), ResidentClass::kColumn,
               [mapping = handle.mapping()] { mapping->release_pages(); });
  return values;
}

std::span<const double> TimestepTable::column(const std::string& name) const {
  if (mode_ == LoadMode::kLazy)
    return lazy_column(column_handles_, name, ".f64");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = columns_.find(name);
  if (it == columns_.end()) {
    verify_disk_locked(name + ".f64");
    it = columns_
             .emplace(name, read_binary_column<double>(dir_ / (name + ".f64"), rows_))
             .first;
  }
  return it->second;
}

std::span<const std::uint64_t> TimestepTable::id_column(const std::string& name) const {
  if (mode_ == LoadMode::kLazy) return lazy_column(id_handles_, name, ".u64");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = id_columns_.find(name);
  if (it == id_columns_.end()) {
    verify_disk_locked(name + ".u64");
    it = id_columns_
             .emplace(name,
                      read_binary_column<std::uint64_t>(dir_ / (name + ".u64"), rows_))
             .first;
  }
  return it->second;
}

void TimestepTable::prefetch_column(const std::string& name) const {
  (void)column(name);  // map (kLazy) or read (kEager) + charge the budget
  if (mode_ != LoadMode::kLazy) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = column_handles_.find(name);
  if (it != column_handles_.end() && it->second.loaded())
    it->second.mapping()->advise_willneed();
}

void TimestepTable::prefetch_id_column(const std::string& name) const {
  (void)id_column(name);
  if (mode_ != LoadMode::kLazy) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = id_handles_.find(name);
  if (it != id_handles_.end() && it->second.loaded())
    it->second.mapping()->advise_willneed();
}

const SegmentedBitmapIndex* TimestepTable::value_index(
    const std::string& name) const {
  if (mode_ == LoadMode::kEager) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string fname = name + ".bmi";
  if (quarantined_.count(fname)) return nullptr;
  auto it = seg_indices_.find(name);
  if (it == seg_indices_.end()) {
    std::optional<SegmentedBitmapIndex> opened;
    const std::filesystem::path file = dir_ / fname;
    if (std::filesystem::exists(file)) {
      try {
        auto mapped = MappedFile::map(file);
        opened = SegmentedBitmapIndex::open(mapped->bytes(), mapped);
        // open() decodes the header and the outside bitmap, so both must
        // verify before anything trusts them; per-bin segments verify
        // lazily inside segment_fetch().
        verify_section(sums_.get(), *integrity_, dir_, fname, 0,
                       mapped->bytes().first(opened->segment_offset(0)));
        const std::size_t outside = opened->outside_segment();
        verify_section(sums_.get(), *integrity_, dir_, fname,
                       opened->segment_offset(outside),
                       opened->segment_image(outside));
        // The directory (edges + offsets) is pinned: raw pointers to the
        // index are handed out, so it must never be evicted.
        if (budget_)
          budget_->put(budget_prefix_ + "|idxmeta|" + name, mapped,
                       opened->metadata_bytes(), ResidentClass::kIndexSegment,
                       {}, /*pinned=*/true);
      } catch (const std::exception&) {
        // Corrupt or truncated index: quarantine it — its predicates
        // demote to the scan path (DESIGN.md §15).
        if (quarantined_.insert(fname).second)
          integrity_->demotions.fetch_add(1, std::memory_order_relaxed);
        opened.reset();
        return nullptr;
      }
    }
    it = seg_indices_.emplace(name, std::move(opened)).first;
  }
  return it->second ? &*it->second : nullptr;
}

const BitmapIndex* TimestepTable::index(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string fname = name + ".bmi";
  if (quarantined_.count(fname)) return nullptr;
  auto it = indices_.find(name);
  if (it == indices_.end()) {
    std::optional<BitmapIndex> loaded;
    const std::filesystem::path file = dir_ / fname;
    if (std::filesystem::exists(file)) {
      try {
        // Eager loads deserialize everything, so verification is the
        // whole-file sum (still once per file).
        verify_disk_locked(fname);
        if (std::ifstream in(file, std::ios::binary); in)
          loaded = BitmapIndex::load(in);
      } catch (const std::exception&) {
        if (quarantined_.insert(fname).second)
          integrity_->demotions.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
    }
    it = indices_.emplace(name, std::move(loaded)).first;
  }
  return it->second ? &*it->second : nullptr;
}

const IdIndex* TimestepTable::id_index(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string fname = name + ".idi";
  if (quarantined_.count(fname)) return nullptr;
  auto it = id_indices_.find(name);
  if (it == id_indices_.end()) {
    std::optional<IdIndex> loaded;
    const std::filesystem::path file = dir_ / fname;
    if (std::filesystem::exists(file)) {
      try {
        verify_disk_locked(fname);
        if (std::ifstream in(file, std::ios::binary); in)
          loaded = IdIndex::load(in);
      } catch (const std::exception&) {
        if (quarantined_.insert(fname).second)
          integrity_->demotions.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
      // Pinned accounting-only charge: the id index is handed out as a raw
      // pointer and must stay whole for binary search.
      if (loaded && budget_)
        budget_->put(budget_prefix_ + "|ididx|" + name, nullptr,
                     loaded->memory_bytes(), ResidentClass::kIndexSegment, {},
                     /*pinned=*/true);
    }
    it = id_indices_.emplace(name, std::move(loaded)).first;
  }
  return it->second ? &*it->second : nullptr;
}

bool TimestepTable::has_value_index(const std::string& name) const {
  return std::filesystem::exists(dir_ / (name + ".bmi"));
}

bool TimestepTable::has_id_index(const std::string& name) const {
  return std::filesystem::exists(dir_ / (name + ".idi"));
}

bool TimestepTable::index_quarantined(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_.count(name + ".bmi") > 0;
}

void TimestepTable::quarantine_index(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (quarantined_.insert(name + ".bmi").second)
    integrity_->demotions.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const agg::Pyramid> TimestepTable::open_pyramid(
    const std::string& stem) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string fname = stem + ".pyr";
  if (quarantined_.count(fname)) return nullptr;
  auto it = pyramids_.find(stem);
  if (it != pyramids_.end()) return it->second;
  std::shared_ptr<const agg::Pyramid> pyramid;
  const std::filesystem::path file = dir_ / fname;
  if (std::filesystem::exists(file)) {
    try {
      pyramid = agg::Pyramid::open(file, budget_,
                                   budget_prefix_ + "|pyr|" + stem,
                                   agg::PyramidIntegrity{sums_, fname, integrity_});
    } catch (const std::exception&) {
      // Corrupt or truncated header: quarantine the pyramid — zoom queries
      // fall back to the exact kernels (DESIGN.md §15).
      if (quarantined_.insert(fname).second)
        integrity_->demotions.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
  }
  pyramids_.emplace(stem, pyramid);
  return pyramid;
}

std::shared_ptr<const agg::Pyramid> TimestepTable::pyramid1d(
    const std::string& name) const {
  auto p = open_pyramid(name);
  // A quarantined pyramid reports as absent, so kAuto and kExact resolve a
  // zoom the same way after a mid-query demotion.
  return (p && p->quarantined()) ? nullptr : p;
}

std::shared_ptr<const agg::Pyramid> TimestepTable::pyramid2d(
    const std::string& x, const std::string& y) const {
  auto p = open_pyramid(x + "__" + y);
  return (p && p->quarantined()) ? nullptr : p;
}

bool TimestepTable::has_pyramid(const std::string& name) const {
  return std::filesystem::exists(dir_ / (name + ".pyr"));
}

bool TimestepTable::has_pyramid(const std::string& x,
                                const std::string& y) const {
  return std::filesystem::exists(dir_ / (x + "__" + y + ".pyr"));
}

bool TimestepTable::has_indices() const {
  for (const std::string& var : variables_)
    if (std::filesystem::exists(dir_ / (var + ".bmi"))) return true;
  return std::filesystem::exists(dir_ / "id.idi");
}

SegmentedBitmapIndex::SegmentFetch TimestepTable::segment_fetch(
    const std::string& name, const SegmentedBitmapIndex& idx) const {
  // The fetch is where a decode first trusts a segment's bytes, so it is
  // also where per-segment checksums verify — which is why a fetch is
  // returned even without a budget (it just caches nothing then). A cached
  // segment was verified when it was decoded; eviction re-decodes and
  // therefore re-verifies.
  auto verify_and_decode = [sums = sums_, integrity = integrity_, dir = dir_,
                            fname = name + ".bmi", index = &idx](std::size_t s) {
    verify_section(sums.get(), *integrity, dir, fname,
                   index->segment_offset(s), index->segment_image(s));
    return std::make_shared<const BitVector>(index->decode_segment(s));
  };
  if (!budget_)
    return [verify_and_decode](std::size_t s) {
      return std::shared_ptr<const BitVector>(verify_and_decode(s));
    };
  return [budget = budget_, prefix = budget_prefix_ + "|seg|" + name + "|",
          verify_and_decode](std::size_t s) {
    const std::string key = prefix + std::to_string(s);
    if (auto cached = budget->get(key, ResidentClass::kIndexSegment))
      return std::static_pointer_cast<const BitVector>(cached);
    auto decoded = verify_and_decode(s);
    budget->put(key, decoded, decoded->memory_bytes(),
                ResidentClass::kIndexSegment);
    return std::shared_ptr<const BitVector>(decoded);
  };
}

std::pair<double, double> TimestepTable::domain(const std::string& name) const {
  const auto it = domains_.find(name);
  if (it == domains_.end())
    throw std::out_of_range("unknown variable '" + name + "' in " + dir_.string());
  return it->second;
}

namespace {

/// Append one bit per row, coalescing equal neighbors into append_run calls
/// so the WAH encoder sees whole runs instead of 31 single-bit appends per
/// group (scan results are run-heavy at both selectivity extremes).
template <typename Pred>
BitVector scan_predicate(std::uint64_t rows, Pred&& pred) {
  BitVector out;
  std::uint64_t run_start = 0;
  bool run_value = false;
  for (std::uint64_t row = 0; row < rows; ++row) {
    const bool v = pred(row);
    if (row == 0) {
      run_value = v;
    } else if (v != run_value) {
      out.append_run(run_value, row - run_start);
      run_start = row;
      run_value = v;
    }
  }
  out.append_run(run_value, rows - run_start);
  return out;
}

BitVector scan_interval(const TimestepTable& table, const std::string& variable,
                        const Interval& iv) {
  const std::span<const double> values = table.column(variable);
  return scan_predicate(values.size(),
                        [&](std::uint64_t row) { return iv.contains(values[row]); });
}

/// Shared index-first path of kCompare and kInterval: two-step evaluation
/// when an index exists, sequential scan otherwise. The lazy path decodes
/// only the per-bin segments the interval's bin coverage touches.
BitVector eval_interval(const TimestepTable& table, const std::string& variable,
                        const Interval& iv, EvalMode mode, std::uint64_t rows) {
  if (mode != EvalMode::kScan) {
    if (table.index_quarantined(variable)) {
      // Already demoted: go straight to the scan path, no re-verification
      // per query. kIndex callers explicitly refused the fallback.
      if (mode == EvalMode::kIndex)
        throw IntegrityError("bitmap index for variable " + variable +
                             " is quarantined");
    } else {
      bool have_index = false;
      std::optional<ApproxAnswer> approx;
      try {
        if (table.load_mode() == LoadMode::kLazy) {
          if (const SegmentedBitmapIndex* idx = table.value_index(variable)) {
            have_index = true;
            approx =
                idx->evaluate_approx(iv, table.segment_fetch(variable, *idx));
          }
        } else if (const BitmapIndex* idx = table.index(variable)) {
          have_index = true;
          approx = idx->evaluate_approx(iv);
        }
      } catch (const IntegrityError&) {
        // A segment failed its checksum mid-evaluation: quarantine the
        // index and demote this predicate to the scan path — same bits,
        // no index (DESIGN.md §15).
        if (mode == EvalMode::kIndex) throw;
        table.quarantine_index(variable);
        approx.reset();
      }
      if (approx) {
        // Load the raw column only when boundary bins need checking —
        // index-only answers (precision binning) never touch the data.
        // Column access stays outside the catch: a corrupt column is
        // ground truth damage, not an index demotion.
        if (approx->candidates.count() == 0) return std::move(approx->hits);
        return detail::resolve_candidates(iv, std::move(*approx),
                                          table.column(variable), rows);
      }
      if (mode == EvalMode::kIndex && !have_index)
        throw std::runtime_error("no bitmap index for variable " + variable);
    }
  }
  return scan_interval(table, variable, iv);
}

BitVector scan_id_in(const TimestepTable& table, const IdInQuery& q) {
  const std::span<const std::uint64_t> ids = table.id_column(q.variable());
  const std::vector<std::uint64_t>& search = q.ids();
  return scan_predicate(ids.size(), [&](std::uint64_t row) {
    return std::binary_search(search.begin(), search.end(), ids[row]);
  });
}

}  // namespace

BitVector TimestepTable::query(const Query& q, EvalMode mode) const {
  switch (q.kind()) {
    case Query::Kind::kCompare: {
      const auto& cq = static_cast<const CompareQuery&>(q);
      return eval_interval(*this, cq.variable(), interval_for(cq.op(), cq.value()),
                           mode, rows_);
    }
    case Query::Kind::kInterval: {
      const auto& vq = static_cast<const IntervalQuery&>(q);
      if (vq.interval().empty()) return BitVector::zeros(rows_);
      return eval_interval(*this, vq.variable(), vq.interval(), mode, rows_);
    }
    case Query::Kind::kIdIn: {
      const auto& iq = static_cast<const IdInQuery&>(q);
      if (mode != EvalMode::kScan) {
        if (const IdIndex* idx = id_index(iq.variable()))
          return BitVector::from_positions(idx->lookup_rows(iq.ids()), rows_);
        if (mode == EvalMode::kIndex)
          throw std::runtime_error("no id index for variable " + iq.variable());
      }
      return scan_id_in(*this, iq);
    }
    case Query::Kind::kAnd: {
      const auto& aq = static_cast<const AndQuery&>(q);
      return query(aq.lhs(), mode) & query(aq.rhs(), mode);
    }
    case Query::Kind::kOr: {
      const auto& oq = static_cast<const OrQuery&>(q);
      return query(oq.lhs(), mode) | query(oq.rhs(), mode);
    }
    case Query::Kind::kNot: {
      const auto& nq = static_cast<const NotQuery&>(q);
      return ~query(nq.operand(), mode);
    }
  }
  throw std::logic_error("TimestepTable::query: bad query kind");
}

BitVector TimestepTable::query(const std::string& text, EvalMode mode) const {
  return query(*parse_query(text), mode);
}

}  // namespace qdv::io

namespace qdv {

BitVector evaluate(const Query& query, const io::TimestepTable& table,
                   EvalMode mode) {
  return table.query(query, mode);
}

}  // namespace qdv
