#include "io/io_util.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

namespace qdv::io {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

// Flip one seeded-random bit in a freshly transferred span — downstream
// checksums / frame validation must catch it.
void flip_bit(void* data, std::size_t n) {
  if (n == 0) return;
  const std::uint64_t r = fault::draw();
  static_cast<unsigned char*>(data)[(r >> 3) % n] ^=
      static_cast<unsigned char>(1u << (r & 7));
}

void maybe_delay(fault::Site site) {
  if (fault::roll(site, fault::Kind::kLatency))
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1 + fault::draw() % 10));
}

}  // namespace

std::size_t pread_full(int fd, void* dst, std::size_t n, std::uint64_t offset) {
  auto* out = static_cast<char*>(dst);
  std::size_t total = 0;
  while (total < n) {
    std::size_t ask = n - total;
    if (fault::enabled()) {
      maybe_delay(fault::Site::kFile);
      if (fault::roll(fault::Site::kFile, fault::Kind::kEintr)) continue;
      if (fault::roll(fault::Site::kFile, fault::Kind::kTruncate))
        return total;  // simulated premature EOF
      if (ask > 1 && fault::roll(fault::Site::kFile, fault::Kind::kShortRead))
        ask = 1 + ask / 2;
    }
    const ssize_t got =
        ::pread(fd, out + total, ask, static_cast<off_t>(offset + total));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread failed");
    }
    if (got == 0) return total;  // end of file
    if (fault::enabled() &&
        fault::roll(fault::Site::kFile, fault::Kind::kBitFlip))
      flip_bit(out + total, static_cast<std::size_t>(got));
    total += static_cast<std::size_t>(got);
  }
  return total;
}

std::size_t read_full(int fd, void* dst, std::size_t n) {
  auto* out = static_cast<char*>(dst);
  std::size_t total = 0;
  while (total < n) {
    std::size_t ask = n - total;
    if (fault::enabled()) {
      maybe_delay(fault::Site::kFile);
      if (fault::roll(fault::Site::kFile, fault::Kind::kEintr)) continue;
      if (fault::roll(fault::Site::kFile, fault::Kind::kTruncate)) return total;
      if (ask > 1 && fault::roll(fault::Site::kFile, fault::Kind::kShortRead))
        ask = 1 + ask / 2;
    }
    const ssize_t got = ::read(fd, out + total, ask);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw_errno("read failed");
    }
    if (got == 0) return total;
    if (fault::enabled() &&
        fault::roll(fault::Site::kFile, fault::Kind::kBitFlip))
      flip_bit(out + total, static_cast<std::size_t>(got));
    total += static_cast<std::size_t>(got);
  }
  return total;
}

void write_full(int fd, const void* src, std::size_t n) {
  const auto* in = static_cast<const char*>(src);
  std::size_t total = 0;
  while (total < n) {
    if (fault::enabled()) {
      maybe_delay(fault::Site::kFile);
      if (fault::roll(fault::Site::kFile, fault::Kind::kEintr)) continue;
      if (fault::roll(fault::Site::kFile, fault::Kind::kEnospc)) {
        errno = ENOSPC;
        throw_errno("write failed");
      }
    }
    const ssize_t put = ::write(fd, in + total, n - total);
    if (put < 0) {
      if (errno == EINTR) continue;
      throw_errno("write failed");
    }
    total += static_cast<std::size_t>(put);
  }
}

XferResult send_full(int fd, const void* src, std::size_t n,
                     fault::Site site) {
  const auto* in = static_cast<const char*>(src);
  std::size_t total = 0;
  while (total < n) {
    if (fault::enabled()) {
      maybe_delay(site);
      if (fault::roll(site, fault::Kind::kEintr)) continue;
      if (fault::roll(site, fault::Kind::kConnReset) ||
          fault::roll(site, fault::Kind::kTruncate))
        return XferResult::kClosed;
    }
    const ssize_t put = ::send(fd, in + total, n - total, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return XferResult::kTimeout;
      return XferResult::kClosed;  // EPIPE / ECONNRESET / ...
    }
    total += static_cast<std::size_t>(put);
  }
  return XferResult::kOk;
}

XferResult recv_full(int fd, void* dst, std::size_t n, fault::Site site) {
  auto* out = static_cast<char*>(dst);
  std::size_t total = 0;
  while (total < n) {
    std::size_t ask = n - total;
    if (fault::enabled()) {
      maybe_delay(site);
      if (fault::roll(site, fault::Kind::kEintr)) continue;
      if (fault::roll(site, fault::Kind::kConnReset) ||
          fault::roll(site, fault::Kind::kTruncate))
        return XferResult::kClosed;
      if (ask > 1 && fault::roll(site, fault::Kind::kShortRead))
        ask = 1 + ask / 2;
    }
    const ssize_t got = ::recv(fd, out + total, ask, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return XferResult::kTimeout;
      return XferResult::kClosed;
    }
    if (got == 0) return XferResult::kClosed;  // orderly peer shutdown
    if (fault::enabled() && fault::roll(site, fault::Kind::kBitFlip))
      flip_bit(out + total, static_cast<std::size_t>(got));
    total += static_cast<std::size_t>(got);
  }
  return XferResult::kOk;
}

XferResult recv_some(int fd, void* dst, std::size_t cap, fault::Site site,
                     std::size_t& got) {
  got = 0;
  for (;;) {
    if (fault::enabled()) {
      maybe_delay(site);
      if (fault::roll(site, fault::Kind::kEintr)) continue;
      if (fault::roll(site, fault::Kind::kConnReset) ||
          fault::roll(site, fault::Kind::kTruncate))
        return XferResult::kClosed;
    }
    const ssize_t n = ::recv(fd, dst, cap, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return XferResult::kTimeout;
      return XferResult::kClosed;
    }
    if (n == 0) return XferResult::kClosed;
    if (fault::enabled() && fault::roll(site, fault::Kind::kBitFlip))
      flip_bit(dst, static_cast<std::size_t>(n));
    got = static_cast<std::size_t>(n);
    return XferResult::kOk;
  }
}

}  // namespace qdv::io
