#include "io/memory_budget.hpp"

namespace qdv::io {

namespace {
unsigned idx(ResidentClass cls) { return static_cast<unsigned>(cls); }
}  // namespace

MemoryBudget::MemoryBudget(std::uint64_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

std::shared_ptr<const void> MemoryBudget::get(const std::string& key,
                                              ResidentClass cls) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    ++cls_[idx(cls)].misses;
    return nullptr;
  }
  ++cls_[idx(cls)].hits;
  Entry& entry = *it->second;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  if (!entry.pinned) {
    ClassList& clist = class_lru_[idx(entry.cls)];
    clist.splice(clist.begin(), clist, entry.class_pos);
  }
  return entry.payload;
}

void MemoryBudget::put(const std::string& key,
                       std::shared_ptr<const void> payload, std::uint64_t bytes,
                       ResidentClass cls, ReleaseHook on_evict, bool pinned) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = by_key_.find(key); it != by_key_.end()) {
    // A concurrent miss charged the same resident first; keep it.
    Entry& entry = *it->second;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (!entry.pinned) {
      ClassList& clist = class_lru_[idx(entry.cls)];
      clist.splice(clist.begin(), clist, entry.class_pos);
    }
    return;
  }
  lru_.push_front(Entry{key, std::move(payload), bytes, cls,
                        std::move(on_evict), pinned, {}});
  if (!pinned) {
    class_lru_[idx(cls)].push_front(lru_.begin());
    lru_.front().class_pos = class_lru_[idx(cls)].begin();
  }
  by_key_.emplace(key, lru_.begin());
  resident_bytes_ += bytes;
  ++cls_[idx(cls)].entries;
  cls_[idx(cls)].bytes += bytes;
  cls_[idx(cls)].loaded_bytes += bytes;
  enforce_locked();
}

void MemoryBudget::remove_locked(EntryList::iterator it, bool count_eviction) {
  if (it->on_evict) it->on_evict();
  resident_bytes_ -= it->bytes;
  --cls_[idx(it->cls)].entries;
  cls_[idx(it->cls)].bytes -= it->bytes;
  if (count_eviction) ++cls_[idx(it->cls)].evictions;
  if (!it->pinned) class_lru_[idx(it->cls)].erase(it->class_pos);
  by_key_.erase(it->key);
  lru_.erase(it);
}

void MemoryBudget::enforce_locked() {
  // Byte budget: walk from the LRU tail, skipping pinned residents.
  if (budget_bytes_ != kUnlimited && resident_bytes_ > budget_bytes_) {
    auto it = lru_.end();
    while (it != lru_.begin() && resident_bytes_ > budget_bytes_) {
      --it;
      if (it->pinned) continue;
      auto victim = it++;
      remove_locked(victim, /*count_eviction=*/true);
    }
  }
  // Per-class entry caps (the engine's bitvector-cache capacity knob): pop
  // that class's own recency tail — pinned entries never appear in it.
  for (unsigned c = 0; c < kNumResidentClasses; ++c) {
    if (entry_caps_[c] == kNoEntryCap) continue;
    while (cls_[c].entries > entry_caps_[c] && !class_lru_[c].empty())
      remove_locked(class_lru_[c].back(), /*count_eviction=*/true);
  }
}

void MemoryBudget::erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) remove_locked(it->second, /*count_eviction=*/false);
}

void MemoryBudget::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  while (!lru_.empty()) remove_locked(lru_.begin(), /*count_eviction=*/false);
}

void MemoryBudget::clear_class(ResidentClass cls) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (!class_lru_[idx(cls)].empty())
    remove_locked(class_lru_[idx(cls)].back(), /*count_eviction=*/false);
  // Pinned entries of the class are not in the recency list; drop them too.
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto entry = it++;
    if (entry->cls == cls) remove_locked(entry, /*count_eviction=*/false);
  }
}

void MemoryBudget::set_budget(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  budget_bytes_ = bytes;
  enforce_locked();
}

std::uint64_t MemoryBudget::budget() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_bytes_;
}

void MemoryBudget::set_class_entry_cap(ResidentClass cls,
                                       std::size_t max_entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  entry_caps_[idx(cls)] = max_entries;
  enforce_locked();
}

std::size_t MemoryBudget::class_entry_cap(ResidentClass cls) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entry_caps_[idx(cls)];
}

MemoryBudgetStats MemoryBudget::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MemoryBudgetStats s;
  s.budget_bytes = budget_bytes_;
  s.resident_bytes = resident_bytes_;
  s.entries = lru_.size();
  for (unsigned c = 0; c < kNumResidentClasses; ++c) {
    s.cls[c] = cls_[c];
    s.evictions += cls_[c].evictions;
    s.loaded_bytes += cls_[c].loaded_bytes;
  }
  return s;
}

}  // namespace qdv::io
