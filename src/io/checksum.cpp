#include "io/checksum.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "agg/pyramid.hpp"
#include "bitmap/index_segments.hpp"
#include "io/dataset.hpp"

namespace qdv::io {

namespace {

// Slice-by-8 CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78)
// — pure software so the library stays dependency-free; ~1 B/cycle, far
// faster than any disk this guards.
struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 8> t;
  Crc32cTables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k)
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (std::size_t slice = 1; slice < 8; ++slice)
        t[slice][i] = (t[slice - 1][i] >> 8) ^ t[0][t[slice - 1][i] & 0xFF];
  }
};

const Crc32cTables& tables() {
  static const Crc32cTables tbl;
  return tbl;
}

std::vector<std::byte> read_file_bytes(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + file.string());
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size))
    throw std::runtime_error("cannot read " + file.string());
  return bytes;
}

bool has_extension(const std::string& name, const char* ext) {
  const std::size_t n = std::string(ext).size();
  return name.size() > n && name.compare(name.size() - n, n, ext) == 0;
}

// Record @p file into @p set: whole-file always; per-section for the
// lazily-decoded formats.
void record_file(ChecksumSet& set, const std::filesystem::path& file) {
  const std::string name = file.filename().string();
  const std::vector<std::byte> bytes = read_file_bytes(file);
  set.set_file(name, bytes.size(), crc32c(bytes.data(), bytes.size()));
  const auto crc_range = [&](std::uint64_t offset, std::uint64_t length) {
    return crc32c(bytes.data() + offset, static_cast<std::size_t>(length));
  };
  if (has_extension(name, ".bmi")) {
    auto keeper = std::make_shared<std::vector<std::byte>>(bytes);
    const SegmentedBitmapIndex index = SegmentedBitmapIndex::open(
        std::span<const std::byte>(keeper->data(), keeper->size()), keeper);
    set.add_section(name, 0, index.segment_offset(0),
                    crc_range(0, index.segment_offset(0)));
    for (std::size_t s = 0; s < index.num_segments(); ++s)
      set.add_section(name, index.segment_offset(s), index.segment_bytes(s),
                      crc_range(index.segment_offset(s),
                                index.segment_bytes(s)));
  } else if (has_extension(name, ".pyr")) {
    const auto pyramid = agg::Pyramid::open(file);
    for (const auto& [offset, length] : pyramid->file_sections())
      set.add_section(name, offset, length, crc_range(offset, length));
  }
}

std::vector<std::filesystem::path> step_directories(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> steps;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.is_directory() &&
        std::filesystem::exists(entry.path() / "meta.txt"))
      steps.push_back(entry.path());
  std::sort(steps.begin(), steps.end());
  return steps;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed) {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  while (n >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n--) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  return ~crc;
}

std::uint32_t crc32c_file(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + file.string());
  std::array<char, 1 << 16> buffer;
  std::uint32_t crc = 0;
  while (in) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const std::streamsize got = in.gcount();
    if (got > 0)
      crc = crc32c(buffer.data(), static_cast<std::size_t>(got), crc);
  }
  return crc;
}

std::shared_ptr<const ChecksumSet> ChecksumSet::load_dir(
    const std::filesystem::path& dir) {
  const std::filesystem::path sidecar = dir / kChecksumSidecarName;
  std::ifstream in(sidecar);
  if (!in) return nullptr;
  auto set = std::make_shared<ChecksumSet>();
  std::string line;
  if (!std::getline(in, line) || line.rfind("qdv_checksums ", 0) != 0)
    throw std::runtime_error("malformed checksum sidecar " + sidecar.string());
  // Hand-rolled field scan: sidecars run to thousands of section lines and
  // this parse sits on the cold-open path of every table, where a
  // stringstream per line costs more than the checksums it describes.
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const char* p = line.c_str();
    const auto word = [&p] {
      while (*p == ' ') ++p;
      const char* start = p;
      while (*p && *p != ' ') ++p;
      return std::string_view(start, static_cast<std::size_t>(p - start));
    };
    bool ok = true;
    const auto number = [&p, &ok](int base) -> std::uint64_t {
      while (*p == ' ') ++p;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(p, &end, base);
      ok = ok && end != p;
      p = end;
      return v;
    };
    const std::string_view tag = word();
    const std::string name(word());
    ok = !name.empty();
    if (tag == "file") {
      const std::uint64_t size = number(10);
      const std::uint32_t crc = static_cast<std::uint32_t>(number(16));
      if (!ok)
        throw std::runtime_error("malformed file line in " + sidecar.string());
      set->set_file(name, size, crc);
    } else if (tag == "section") {
      const std::uint64_t offset = number(10);
      const std::uint64_t length = number(10);
      const std::uint32_t crc = static_cast<std::uint32_t>(number(16));
      if (!ok)
        throw std::runtime_error("malformed section line in " +
                                 sidecar.string());
      set->add_section(name, offset, length, crc);
    } else {
      throw std::runtime_error("unknown record '" + std::string(tag) +
                               "' in " + sidecar.string());
    }
  }
  return set;
}

const ChecksumSet::FileSum* ChecksumSet::file(const std::string& name) const {
  const auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

const ChecksumSet::Section* ChecksumSet::section(const std::string& name,
                                                 std::uint64_t offset,
                                                 std::uint64_t length) const {
  const auto it = sections_.find(name);
  if (it == sections_.end()) return nullptr;
  const auto& list = it->second;
  const auto pos = std::lower_bound(
      list.begin(), list.end(), offset,
      [](const Section& s, std::uint64_t off) { return s.offset < off; });
  if (pos == list.end() || pos->offset != offset || pos->length != length)
    return nullptr;
  return &*pos;
}

const std::vector<ChecksumSet::Section>* ChecksumSet::sections(
    const std::string& name) const {
  const auto it = sections_.find(name);
  return it == sections_.end() ? nullptr : &it->second;
}

std::vector<std::string> ChecksumSet::file_names() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, sum] : files_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void ChecksumSet::set_file(const std::string& name, std::uint64_t size,
                           std::uint32_t crc) {
  files_[name] = FileSum{size, crc};
}

void ChecksumSet::add_section(const std::string& name, std::uint64_t offset,
                              std::uint64_t length, std::uint32_t crc) {
  // Writers and the sidecar loader record sections in file order, so this
  // is almost always a plain append; keep the sorted-insert fallback for
  // out-of-order callers. (A sort-per-insert here made loading a
  // thousand-section sidecar quadratic — 30 ms on every cold table open.)
  auto& list = sections_[name];
  const Section entry{offset, length, crc};
  if (list.empty() || list.back().offset <= offset) {
    list.push_back(entry);
    return;
  }
  const auto pos = std::upper_bound(
      list.begin(), list.end(), offset,
      [](std::uint64_t off, const Section& s) { return off < s.offset; });
  list.insert(pos, entry);
}

void ChecksumSet::save_dir(const std::filesystem::path& dir) const {
  const std::filesystem::path sidecar = dir / kChecksumSidecarName;
  const std::filesystem::path tmp = sidecar.string() + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out)
      throw std::runtime_error("cannot write " + tmp.string());
    out << "qdv_checksums 1\n";
    char crc_hex[16];
    for (const std::string& name : file_names()) {
      const FileSum& sum = files_.at(name);
      std::snprintf(crc_hex, sizeof crc_hex, "%08x", sum.crc);
      out << "file " << name << ' ' << sum.size << ' ' << crc_hex << "\n";
      if (const auto* list = sections(name))
        for (const Section& s : *list) {
          std::snprintf(crc_hex, sizeof crc_hex, "%08x", s.crc);
          out << "section " << name << ' ' << s.offset << ' ' << s.length
              << ' ' << crc_hex << "\n";
        }
    }
    if (!out.good())
      throw std::runtime_error("cannot write " + tmp.string());
  }
  std::filesystem::rename(tmp, sidecar);
}

void write_dataset_checksums(const std::filesystem::path& dir) {
  {
    ChecksumSet root;
    const std::filesystem::path manifest = dir / kManifestName;
    if (std::filesystem::exists(manifest)) {
      const std::vector<std::byte> bytes = read_file_bytes(manifest);
      root.set_file(kManifestName, bytes.size(),
                    crc32c(bytes.data(), bytes.size()));
    }
    root.save_dir(dir);
  }
  for (const std::filesystem::path& step : step_directories(dir)) {
    ChecksumSet set;
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(step))
      if (entry.is_regular_file() &&
          entry.path().filename() != kChecksumSidecarName &&
          entry.path().extension() != ".tmp")
        files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const std::filesystem::path& file : files) record_file(set, file);
    set.save_dir(step);
  }
}

namespace {

void fsck_directory(const std::filesystem::path& root,
                    const std::filesystem::path& dir, FsckReport& report) {
  const std::string prefix =
      dir == root ? ""
                  : std::filesystem::relative(dir, root).string() + "/";
  std::shared_ptr<const ChecksumSet> sums;
  try {
    sums = ChecksumSet::load_dir(dir);
  } catch (const std::exception& e) {
    report.entries.push_back({prefix + kChecksumSidecarName,
                              FsckEntry::Status::kFailed, e.what()});
    ++report.failed;
    return;
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.is_regular_file() &&
        entry.path().filename() != kChecksumSidecarName)
      files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& file : files) {
    const std::string name = file.filename().string();
    // The root directory holds only the manifest worth checking; skip
    // benches/readmes a user may have dropped next to it.
    if (dir == root && name != kManifestName) continue;
    FsckEntry entry{prefix + name, FsckEntry::Status::kOk, ""};
    const ChecksumSet::FileSum* sum = sums ? sums->file(name) : nullptr;
    if (!sum) {
      entry.status = FsckEntry::Status::kUnverified;
      entry.detail = sums ? "no recorded checksum" : "no checksum sidecar";
      ++report.unverified;
      report.entries.push_back(std::move(entry));
      continue;
    }
    const std::uint64_t size = std::filesystem::file_size(file);
    if (size != sum->size) {
      entry.status = FsckEntry::Status::kFailed;
      entry.detail = "size " + std::to_string(size) + ", recorded " +
                     std::to_string(sum->size);
      ++report.failed;
      report.entries.push_back(std::move(entry));
      continue;
    }
    const auto* section_list = sums->sections(name);
    if (section_list) {
      // Verify per-section too, so damage is reported at the granularity
      // the lazy readers would hit it.
      const std::vector<std::byte> bytes = read_file_bytes(file);
      std::size_t bad_sections = 0;
      std::string first_bad;
      for (const auto& s : *section_list) {
        ++report.sections_checked;
        if (s.offset + s.length > bytes.size() ||
            crc32c(bytes.data() + s.offset,
                   static_cast<std::size_t>(s.length)) != s.crc) {
          ++bad_sections;
          if (first_bad.empty())
            first_bad = "section [" + std::to_string(s.offset) + ", +" +
                        std::to_string(s.length) + ")";
        }
      }
      const std::uint32_t whole = crc32c(bytes.data(), bytes.size());
      if (bad_sections > 0 || whole != sum->crc) {
        entry.status = FsckEntry::Status::kFailed;
        entry.detail = bad_sections > 0
                           ? first_bad +
                                 (bad_sections > 1
                                      ? " and " +
                                            std::to_string(bad_sections - 1) +
                                            " more"
                                      : "")
                           : "whole-file checksum mismatch";
        ++report.failed;
        report.entries.push_back(std::move(entry));
        continue;
      }
    } else if (crc32c_file(file) != sum->crc) {
      entry.status = FsckEntry::Status::kFailed;
      entry.detail = "checksum mismatch";
      ++report.failed;
      report.entries.push_back(std::move(entry));
      continue;
    }
    ++report.ok;
    report.entries.push_back(std::move(entry));
  }
  // Recorded files that vanished are damage too.
  if (sums)
    for (const std::string& name : sums->file_names())
      if (!std::filesystem::exists(dir / name)) {
        report.entries.push_back(
            {prefix + name, FsckEntry::Status::kFailed, "missing"});
        ++report.failed;
      }
}

}  // namespace

FsckReport fsck_dataset(const std::filesystem::path& dir) {
  if (!std::filesystem::exists(dir / kManifestName))
    throw std::runtime_error("not a qdv dataset (no " +
                             std::string(kManifestName) + "): " +
                             dir.string());
  FsckReport report;
  fsck_directory(dir, dir, report);
  for (const std::filesystem::path& step : step_directories(dir))
    fsck_directory(dir, step, report);
  return report;
}

}  // namespace qdv::io
