#include "io/export.hpp"

#include <fstream>
#include <stdexcept>

namespace qdv::io {

namespace {
std::ofstream open_csv(const std::filesystem::path& path) {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write CSV: " + path.string());
  out.precision(17);
  return out;
}
}  // namespace

void export_csv(const std::filesystem::path& path, const Histogram2D& histogram) {
  std::ofstream out = open_csv(path);
  out << "x_lo,x_hi,y_lo,y_hi,count\n";
  for (std::size_t ix = 0; ix < histogram.nx(); ++ix)
    for (std::size_t iy = 0; iy < histogram.ny(); ++iy) {
      const std::uint64_t c = histogram.at(ix, iy);
      if (c == 0) continue;
      out << histogram.xbins.edges()[ix] << ',' << histogram.xbins.edges()[ix + 1]
          << ',' << histogram.ybins.edges()[iy] << ','
          << histogram.ybins.edges()[iy + 1] << ',' << c << "\n";
    }
}

void export_csv(const std::filesystem::path& path, const Histogram1D& histogram) {
  std::ofstream out = open_csv(path);
  out << "lo,hi,count\n";
  for (std::size_t i = 0; i < histogram.bins.num_bins(); ++i)
    out << histogram.bins.edges()[i] << ',' << histogram.bins.edges()[i + 1] << ','
        << histogram.counts[i] << "\n";
}

}  // namespace qdv::io
