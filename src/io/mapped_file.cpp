#include "io/mapped_file.hpp"

#include <cstdlib>

#include "io/io_util.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define QDV_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define QDV_HAVE_MMAP 0
#endif

namespace qdv::io {

namespace {

bool mmap_disabled() {
  const char* env = std::getenv("QDV_NO_MMAP");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Heap fallback when mmap is unavailable: one EINTR-safe full read through
// io_util (the fault injector's file-site choke point).
std::vector<std::byte> read_whole_file(const std::filesystem::path& file,
                                       std::size_t size) {
  const int fd = ::open(file.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw std::runtime_error("cannot open file " + file.string());
  std::vector<std::byte> data(size);
  try {
    if (read_full(fd, data.data(), size) != size)
      throw std::runtime_error("short read from " + file.string());
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return data;
}

}  // namespace

std::shared_ptr<MappedFile> MappedFile::map(const std::filesystem::path& file) {
  auto out = std::shared_ptr<MappedFile>(new MappedFile());
  out->path_ = file;
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(file, ec);
  if (ec) throw std::runtime_error("cannot stat file " + file.string());
  out->size_ = static_cast<std::size_t>(size);
  if (out->size_ == 0) return out;  // empty file: empty span, nothing to map

#if QDV_HAVE_MMAP
  if (!mmap_disabled()) {
    const int fd = ::open(file.c_str(), O_RDONLY);
    if (fd >= 0) {
      void* addr = ::mmap(nullptr, out->size_, PROT_READ, MAP_SHARED, fd, 0);
      ::close(fd);  // the mapping keeps its own reference to the file
      if (addr != MAP_FAILED) {
        out->data_ = static_cast<const std::byte*>(addr);
        out->mmapped_ = true;
        return out;
      }
    }
  }
#endif
  out->fallback_ = read_whole_file(file, out->size_);
  out->data_ = out->fallback_.data();
  return out;
}

MappedFile::~MappedFile() {
#if QDV_HAVE_MMAP
  if (mmapped_ && data_ != nullptr)
    ::munmap(const_cast<std::byte*>(data_), size_);
#endif
}

void MappedFile::advise_sequential() const {
#if QDV_HAVE_MMAP
  if (mmapped_ && data_ != nullptr)
    ::madvise(const_cast<std::byte*>(data_), size_, MADV_SEQUENTIAL);
#endif
}

void MappedFile::advise_willneed() const {
#if QDV_HAVE_MMAP
  if (mmapped_ && data_ != nullptr)
    ::madvise(const_cast<std::byte*>(data_), size_, MADV_WILLNEED);
#endif
}

void MappedFile::release_pages() const {
#if QDV_HAVE_MMAP
  if (mmapped_ && data_ != nullptr)
    ::madvise(const_cast<std::byte*>(data_), size_, MADV_DONTNEED);
#endif
}

}  // namespace qdv::io
