#include "agg/pyramid.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "io/io_util.hpp"

namespace qdv::agg {
namespace {

constexpr char kMagic[8] = {'q', 'd', 'v', 'p', 'y', 'r', '1', '\0'};

void read_exact(int fd, void* dst, std::size_t n, std::uint64_t offset) {
  if (io::pread_full(fd, dst, n, offset) != n)
    throw std::runtime_error("qdv::agg: truncated .pyr read");
}

void bump(const std::shared_ptr<io::IntegrityStats>& stats,
          std::atomic<std::uint64_t> io::IntegrityStats::* counter) {
  if (stats) ((*stats).*counter).fetch_add(1, std::memory_order_relaxed);
}

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

std::size_t checked_leaf_log2(const Bins& leaf) {
  const std::size_t nbins = leaf.num_bins();
  if (nbins == 0 || (nbins & (nbins - 1)) != 0)
    throw std::invalid_argument(
        "qdv::agg: pyramid leaf bin count must be a power of two");
  return static_cast<std::size_t>(std::countr_zero(nbins));
}

void check_edges(const std::vector<double>& edges, std::size_t leaf_log2) {
  if (edges.size() != (std::size_t{1} << leaf_log2) + 1)
    throw std::runtime_error("qdv::agg: .pyr edge count mismatch");
  for (std::size_t i = 1; i < edges.size(); ++i)
    if (!(edges[i - 1] < edges[i]))
      throw std::runtime_error("qdv::agg: .pyr edges not strictly ascending");
}

}  // namespace

struct Pyramid::LevelIo {
  ~LevelIo() {
    if (fd >= 0) ::close(fd);
  }
  int fd = -1;
  std::uint64_t data_offset = 0;
  std::shared_ptr<io::MemoryBudget> budget;
  std::string prefix;
  PyramidIntegrity integrity;
  std::atomic<bool> quarantined{false};
  // Fallback cache when the caller supplied no budget (tools, tests).
  std::mutex mutex;
  std::vector<std::shared_ptr<const std::vector<std::uint64_t>>> local;
};

Pyramid Pyramid::build1d(std::span<const double> values, Bins leaf) {
  Pyramid p;
  p.leaf_log2_ = checked_leaf_log2(leaf);
  p.rows_ = values.size();

  std::vector<std::uint64_t> counts(leaf.num_bins(), 0);
  const Bins::Locator locate{leaf};
  for (const double v : values) {
    const std::ptrdiff_t bin = locate(v);
    if (bin >= 0) ++counts[static_cast<std::size_t>(bin)];
  }
  p.edges_.push_back(leaf.edges());

  p.built_.resize(p.num_levels());
  p.built_[p.leaf_log2_] =
      std::make_shared<std::vector<std::uint64_t>>(std::move(counts));
  for (std::size_t l = p.leaf_log2_; l-- > 0;) {
    const auto& child = *p.built_[l + 1];
    std::vector<std::uint64_t> parent(std::size_t{1} << l, 0);
    for (std::size_t j = 0; j < parent.size(); ++j)
      parent[j] = child[2 * j] + child[2 * j + 1];
    p.built_[l] =
        std::make_shared<std::vector<std::uint64_t>>(std::move(parent));
  }
  return p;
}

Pyramid Pyramid::build2d(std::span<const double> v0,
                         std::span<const double> v1, Bins leaf0, Bins leaf1) {
  if (v0.size() != v1.size())
    throw std::invalid_argument("qdv::agg: pair columns differ in length");
  Pyramid p;
  p.leaf_log2_ = checked_leaf_log2(leaf0);
  if (checked_leaf_log2(leaf1) != p.leaf_log2_)
    throw std::invalid_argument(
        "qdv::agg: pair pyramid axes must share one leaf bin count");
  p.rows_ = v0.size();

  const std::size_t n = leaf0.num_bins();
  std::vector<std::uint64_t> counts(n * n, 0);
  const Bins::Locator loc0{leaf0};
  const Bins::Locator loc1{leaf1};
  for (std::size_t i = 0; i < v0.size(); ++i) {
    const std::ptrdiff_t b0 = loc0(v0[i]);
    const std::ptrdiff_t b1 = loc1(v1[i]);
    if (b0 >= 0 && b1 >= 0)
      ++counts[static_cast<std::size_t>(b0) * n + static_cast<std::size_t>(b1)];
  }
  p.edges_.push_back(leaf0.edges());
  p.edges_.push_back(leaf1.edges());

  p.built_.resize(p.num_levels());
  p.built_[p.leaf_log2_] =
      std::make_shared<std::vector<std::uint64_t>>(std::move(counts));
  for (std::size_t l = p.leaf_log2_; l-- > 0;) {
    const auto& child = *p.built_[l + 1];
    const std::size_t np = std::size_t{1} << l;
    const std::size_t nc = np * 2;
    std::vector<std::uint64_t> parent(np * np, 0);
    for (std::size_t j0 = 0; j0 < np; ++j0)
      for (std::size_t j1 = 0; j1 < np; ++j1)
        parent[j0 * np + j1] = child[(2 * j0) * nc + 2 * j1] +
                               child[(2 * j0) * nc + 2 * j1 + 1] +
                               child[(2 * j0 + 1) * nc + 2 * j1] +
                               child[(2 * j0 + 1) * nc + 2 * j1 + 1];
    p.built_[l] =
        std::make_shared<std::vector<std::uint64_t>>(std::move(parent));
  }
  return p;
}

void Pyramid::save(const std::filesystem::path& file) const {
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("qdv::agg: cannot write " + file.string());
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, static_cast<std::uint32_t>(ndims()));
  write_pod(out, static_cast<std::uint32_t>(leaf_log2_));
  write_pod(out, rows_);
  for (const auto& axis : edges_) {
    write_pod(out, static_cast<std::uint64_t>(axis.size()));
    out.write(reinterpret_cast<const char*>(axis.data()),
              static_cast<std::streamsize>(axis.size() * sizeof(double)));
  }
  for (std::size_t l = 0; l < num_levels(); ++l) {
    const auto counts = level(l);
    out.write(reinterpret_cast<const char*>(counts->data()),
              static_cast<std::streamsize>(counts->size() * sizeof(std::uint64_t)));
  }
  if (!out) throw std::runtime_error("qdv::agg: short write to " + file.string());
}

std::shared_ptr<Pyramid> Pyramid::open(const std::filesystem::path& file,
                                       std::shared_ptr<io::MemoryBudget> budget,
                                       std::string budget_prefix,
                                       PyramidIntegrity integrity) {
  const int fd = ::open(file.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    throw std::runtime_error("qdv::agg: cannot open " + file.string());
  auto io = std::make_shared<LevelIo>();
  io->fd = fd;
  io->budget = std::move(budget);
  io->prefix = std::move(budget_prefix);
  io->integrity = std::move(integrity);

  std::shared_ptr<Pyramid> p{new Pyramid()};
  {
    std::uint64_t offset = 0;
    char magic[sizeof(kMagic)];
    read_exact(fd, magic, sizeof(magic), offset);
    offset += sizeof(magic);
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
      throw std::runtime_error("qdv::agg: bad .pyr magic in " + file.string());
    std::uint32_t ndims = 0;
    std::uint32_t leaf_log2 = 0;
    read_exact(fd, &ndims, sizeof(ndims), offset);
    offset += sizeof(ndims);
    read_exact(fd, &leaf_log2, sizeof(leaf_log2), offset);
    offset += sizeof(leaf_log2);
    if ((ndims != 1 && ndims != 2) || leaf_log2 > 30)
      throw std::runtime_error("qdv::agg: bad .pyr header in " + file.string());
    p->leaf_log2_ = leaf_log2;
    read_exact(fd, &p->rows_, sizeof(p->rows_), offset);
    offset += sizeof(p->rows_);
    for (std::uint32_t axis = 0; axis < ndims; ++axis) {
      std::uint64_t nedges = 0;
      read_exact(fd, &nedges, sizeof(nedges), offset);
      offset += sizeof(nedges);
      if (nedges != (std::uint64_t{1} << leaf_log2) + 1)
        throw std::runtime_error("qdv::agg: bad .pyr edge count in " +
                                 file.string());
      std::vector<double> edges(nedges);
      read_exact(fd, edges.data(), nedges * sizeof(double), offset);
      offset += nedges * sizeof(double);
      check_edges(edges, leaf_log2);
      p->edges_.push_back(std::move(edges));
    }
    io->data_offset = offset;
  }
  // Header checksum (io/checksum.hpp): the header region is [0,
  // data_offset) — verify it once here so corrupt edges can never steer a
  // serve. A corrupt header that fails to parse threw above instead; both
  // roads lead the caller to the exact-path fallback.
  if (const auto& sums = io->integrity.sums) {
    if (const auto* s =
            sums->section(io->integrity.file_name, 0, io->data_offset)) {
      std::vector<std::byte> header(static_cast<std::size_t>(io->data_offset));
      read_exact(io->fd, header.data(), header.size(), 0);
      if (io::crc32c(header.data(), header.size()) != s->crc) {
        bump(io->integrity.stats, &io::IntegrityStats::failures);
        throw io::IntegrityError("qdv::agg: header checksum mismatch in " +
                                 file.string());
      }
      bump(io->integrity.stats, &io::IntegrityStats::verified);
    } else {
      bump(io->integrity.stats, &io::IntegrityStats::unverified);
    }
  } else {
    bump(io->integrity.stats, &io::IntegrityStats::unverified);
  }
  p->io_ = std::move(io);
  return p;
}

bool Pyramid::quarantined() const {
  return io_ && io_->quarantined.load(std::memory_order_relaxed);
}

void Pyramid::quarantine() const {
  if (io_ && !io_->quarantined.exchange(true, std::memory_order_relaxed))
    bump(io_->integrity.stats, &io::IntegrityStats::demotions);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Pyramid::file_sections()
    const {
  if (!io_)
    throw std::logic_error(
        "qdv::agg: file_sections() requires a file-backed pyramid");
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sections;
  sections.emplace_back(0, io_->data_offset);
  std::uint64_t offset = io_->data_offset;
  for (std::size_t l = 0; l < num_levels(); ++l) {
    const std::uint64_t bytes = level_entries(l) * sizeof(std::uint64_t);
    sections.emplace_back(offset, bytes);
    offset += bytes;
  }
  return sections;
}

std::shared_ptr<const std::vector<std::uint64_t>> Pyramid::level(
    std::size_t l) const {
  if (l >= num_levels())
    throw std::out_of_range("qdv::agg: pyramid level out of range");
  if (!built_.empty()) return built_[l];

  if (quarantined())
    throw io::IntegrityError("qdv::agg: pyramid is quarantined");
  const std::uint64_t entries = level_entries(l);
  auto load = [&] {
    std::uint64_t offset = io_->data_offset;
    for (std::size_t k = 0; k < l; ++k)
      offset += level_entries(k) * sizeof(std::uint64_t);
    const std::uint64_t nbytes = entries * sizeof(std::uint64_t);
    auto counts = std::make_shared<std::vector<std::uint64_t>>(entries);
    read_exact(io_->fd, counts->data(), nbytes, offset);
    // Per-level checksum, verified at decode granularity: a cached level is
    // never re-verified; a mismatch quarantines the whole pyramid and the
    // zoom layer falls back to the exact kernels.
    const auto& integrity = io_->integrity;
    const auto* s = integrity.sums
                        ? integrity.sums->section(integrity.file_name, offset,
                                                  nbytes)
                        : nullptr;
    if (s) {
      if (io::crc32c(counts->data(), static_cast<std::size_t>(nbytes)) !=
          s->crc) {
        bump(integrity.stats, &io::IntegrityStats::failures);
        quarantine();
        throw io::IntegrityError(
            "qdv::agg: level " + std::to_string(l) +
            " checksum mismatch in " + integrity.file_name);
      }
      bump(integrity.stats, &io::IntegrityStats::verified);
    } else {
      bump(integrity.stats, &io::IntegrityStats::unverified);
    }
    return counts;
  };

  if (io_->budget) {
    const std::string key = io_->prefix + "|L" + std::to_string(l);
    if (auto hit = io_->budget->get(key, io::ResidentClass::kPyramid))
      return std::static_pointer_cast<const std::vector<std::uint64_t>>(hit);
    auto counts = load();
    io_->budget->put(key, counts, entries * sizeof(std::uint64_t),
                     io::ResidentClass::kPyramid);
    return counts;
  }
  std::lock_guard<std::mutex> lock(io_->mutex);
  if (io_->local.empty()) io_->local.resize(num_levels());
  if (!io_->local[l]) io_->local[l] = load();
  return io_->local[l];
}

SlicePlan Pyramid::plan_slice_at(std::size_t axis, std::size_t level,
                                 double view_lo, double view_hi) const {
  const auto& e = edges_[axis];
  const double a = view_lo > e.front() ? view_lo : e.front();
  const double b = view_hi < e.back() ? view_hi : e.back();
  SlicePlan p;
  p.level = level;
  if (!(a < b)) return p;  // viewport misses the domain (or is NaN): empty

  const std::size_t n = bins_at(level);
  // Last level edge <= a (edge(0) <= a holds after clamping).
  std::size_t lo = 0, hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (edge(axis, level, mid) <= a)
      lo = mid;
    else
      hi = mid - 1;
  }
  p.lo = lo;
  // First level edge >= b (edge(n) >= b holds after clamping).
  lo = 0;
  hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (edge(axis, level, mid) >= b)
      hi = mid;
    else
      lo = mid + 1;
  }
  p.hi = lo > p.lo ? lo : p.lo;
  return p;
}

std::optional<SlicePlan> Pyramid::plan_slice(std::size_t axis, double view_lo,
                                             double view_hi,
                                             std::size_t nbins) const {
  if (nbins == 0) return std::nullopt;
  SlicePlan coarsest = plan_slice_at(axis, 0, view_lo, view_hi);
  if (coarsest.bins() == 0) return coarsest;  // empty at every level
  for (std::size_t l = 0; l <= leaf_log2_; ++l) {
    SlicePlan p = l == 0 ? coarsest : plan_slice_at(axis, l, view_lo, view_hi);
    if (p.bins() >= nbins) return p;
  }
  return std::nullopt;  // below the resolution threshold even at the leaf
}

std::vector<double> Pyramid::slice_edges(std::size_t axis,
                                         const SlicePlan& plan) const {
  std::vector<double> out;
  if (plan.bins() == 0) return out;
  out.reserve(plan.bins() + 1);
  for (std::size_t j = plan.lo; j <= plan.hi; ++j)
    out.push_back(edge(axis, plan.level, j));
  return out;
}

Cover Pyramid::classify(std::size_t axis, std::size_t level, std::size_t j,
                        const Interval& c) const {
  if (c.empty()) return Cover::kOutside;
  const double a = edge(axis, level, j);
  const double b = edge(axis, level, j + 1);
  // The node's value set is [a, b), except the last node of a level which is
  // closed at the domain top (Bins::locate clamps the final edge in).
  const bool last = j + 1 == bins_at(level);
  if (c.hi < a || (c.hi == a && c.hi_open)) return Cover::kOutside;
  if (last ? (c.lo > b || (c.lo == b && c.lo_open)) : !(c.lo < b))
    return Cover::kOutside;
  const bool lo_in = c.lo < a || (c.lo == a && !c.lo_open);
  const bool hi_in =
      last ? (c.hi > b || (c.hi == b && !c.hi_open)) : !(c.hi < b);
  return lo_in && hi_in ? Cover::kInside : Cover::kPartial;
}

bool Pyramid::node_servable(std::size_t axis, std::size_t level, std::size_t j,
                            const Interval& cond) const {
  if (classify(axis, level, j, cond) != Cover::kPartial) return true;
  if (level == leaf_log2_) return false;
  return node_servable(axis, level + 1, 2 * j, cond) &&
         node_servable(axis, level + 1, 2 * j + 1, cond);
}

bool Pyramid::servable1d(const SlicePlan& plan, const Interval* cond) const {
  if (!cond) return true;
  for (std::size_t j = plan.lo; j < plan.hi; ++j)
    if (!node_servable(0, plan.level, j, *cond)) return false;
  return true;
}

bool Pyramid::servable2d(const SlicePlan& p0, const SlicePlan& p1,
                         const Interval* c0, const Interval* c1) const {
  // Classification is per-axis, so the 2D descent terminates exactly when
  // each axis's descent terminates over its own window.
  if (c0)
    for (std::size_t j = p0.lo; j < p0.hi; ++j)
      if (!node_servable(0, p0.level, j, *c0)) return false;
  if (c1)
    for (std::size_t j = p1.lo; j < p1.hi; ++j)
      if (!node_servable(1, p1.level, j, *c1)) return false;
  return true;
}

const std::vector<std::uint64_t>& Pyramid::level_pinned(
    std::size_t l,
    std::vector<std::shared_ptr<const std::vector<std::uint64_t>>>& pins)
    const {
  if (pins[l] == nullptr) pins[l] = level(l);
  return *pins[l];
}

std::uint64_t Pyramid::node_count1d(
    std::size_t level, std::size_t j, const Interval* cond,
    std::vector<std::shared_ptr<const std::vector<std::uint64_t>>>& pins)
    const {
  if (cond) {
    switch (classify(0, level, j, *cond)) {
      case Cover::kOutside:
        return 0;
      case Cover::kInside:
        break;
      case Cover::kPartial:
        if (level == leaf_log2_)
          throw std::logic_error(
              "qdv::agg: descent past the leaf (caller skipped servable1d)");
        return node_count1d(level + 1, 2 * j, cond, pins) +
               node_count1d(level + 1, 2 * j + 1, cond, pins);
    }
  }
  return level_pinned(level, pins)[j];
}

std::vector<std::uint64_t> Pyramid::slice_counts1d(const SlicePlan& plan,
                                                   const Interval* cond) const {
  std::vector<std::shared_ptr<const std::vector<std::uint64_t>>> pins(
      num_levels());
  std::vector<std::uint64_t> out(plan.bins(), 0);
  for (std::size_t j = plan.lo; j < plan.hi; ++j)
    out[j - plan.lo] = node_count1d(plan.level, j, cond, pins);
  return out;
}

std::uint64_t Pyramid::node_count2d(
    std::size_t level, std::size_t j0, std::size_t j1, const Interval* c0,
    const Interval* c1,
    std::vector<std::shared_ptr<const std::vector<std::uint64_t>>>& pins)
    const {
  const Cover v0 = c0 ? classify(0, level, j0, *c0) : Cover::kInside;
  if (v0 == Cover::kOutside) return 0;
  const Cover v1 = c1 ? classify(1, level, j1, *c1) : Cover::kInside;
  if (v1 == Cover::kOutside) return 0;
  if (v0 == Cover::kInside && v1 == Cover::kInside)
    return level_pinned(level, pins)[j0 * bins_at(level) + j1];
  if (level == leaf_log2_)
    throw std::logic_error(
        "qdv::agg: descent past the leaf (caller skipped servable2d)");
  std::uint64_t total = 0;
  for (std::size_t a = 0; a < 2; ++a)
    for (std::size_t b = 0; b < 2; ++b)
      total +=
          node_count2d(level + 1, 2 * j0 + a, 2 * j1 + b, c0, c1, pins);
  return total;
}

std::vector<std::uint64_t> Pyramid::slice_counts2d(const SlicePlan& p0,
                                                   const SlicePlan& p1,
                                                   const Interval* c0,
                                                   const Interval* c1) const {
  if (p0.level != p1.level)
    throw std::invalid_argument("qdv::agg: 2D slice plans must share a level");
  std::vector<std::shared_ptr<const std::vector<std::uint64_t>>> pins(
      num_levels());
  std::vector<std::uint64_t> out(p0.bins() * p1.bins(), 0);
  for (std::size_t j0 = p0.lo; j0 < p0.hi; ++j0)
    for (std::size_t j1 = p1.lo; j1 < p1.hi; ++j1)
      out[(j0 - p0.lo) * p1.bins() + (j1 - p1.lo)] =
          node_count2d(p0.level, j0, j1, c0, c1, pins);
  return out;
}

std::uint64_t Pyramid::total_count_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t l = 0; l < num_levels(); ++l)
    total += level_entries(l) * sizeof(std::uint64_t);
  return total;
}

std::string pyramid_filename(const std::string& var) { return var + ".pyr"; }

std::string pyramid_filename(const std::string& x, const std::string& y) {
  return x + "__" + y + ".pyr";
}

}  // namespace qdv::agg
