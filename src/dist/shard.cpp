#include "dist/shard.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qdv::dist {

std::vector<ShardRange> partition_rows(std::uint64_t nrows,
                                       std::span<const std::size_t> workers) {
  std::vector<ShardRange> out;
  if (workers.empty())
    throw std::runtime_error("partition_rows: no workers to assign");
  const std::uint64_t k = workers.size();
  const std::uint64_t base = nrows / k;
  const std::uint64_t extra = nrows % k;
  std::uint64_t begin = 0;
  for (std::uint64_t i = 0; i < k; ++i) {
    const std::uint64_t len = base + (i < extra ? 1 : 0);
    if (len == 0) continue;
    out.push_back({workers[static_cast<std::size_t>(i)], begin, begin + len});
    begin += len;
  }
  return out;
}

ShardManifest ShardManifest::build(
    const std::vector<std::uint64_t>& rows_per_timestep,
    std::size_t num_workers) {
  if (num_workers == 0)
    throw std::runtime_error("shard manifest needs at least one worker");
  ShardManifest m;
  m.num_workers_ = num_workers;
  std::vector<std::size_t> all(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) all[w] = w;
  m.ranges_.reserve(rows_per_timestep.size());
  for (const std::uint64_t nrows : rows_per_timestep)
    m.ranges_.push_back(partition_rows(nrows, all));
  return m;
}

const std::vector<ShardRange>& ShardManifest::ranges(std::size_t t) const {
  if (t >= ranges_.size())
    throw std::out_of_range("shard manifest: timestep out of range");
  return ranges_[t];
}

std::size_t ShardManifest::reassign(std::size_t dead,
                                    const std::vector<bool>& alive) {
  std::vector<std::size_t> live;
  for (std::size_t w = 0; w < alive.size(); ++w)
    if (alive[w] && w != dead) live.push_back(w);
  if (live.empty())
    throw std::runtime_error("shard manifest: no live workers to reassign to");
  std::size_t moved = 0;
  for (auto& step : ranges_) {
    std::vector<ShardRange> next;
    next.reserve(step.size());
    for (const ShardRange& r : step) {
      if (r.worker != dead) {
        next.push_back(r);
        continue;
      }
      // Split the dead worker's window across the survivors so no single
      // survivor inherits the whole load.
      for (ShardRange piece : partition_rows(r.end - r.begin, live)) {
        piece.begin += r.begin;
        piece.end += r.begin;
        next.push_back(piece);
        ++moved;
      }
    }
    std::sort(next.begin(), next.end(),
              [](const ShardRange& a, const ShardRange& b) {
                return a.begin < b.begin;
              });
    step = std::move(next);
  }
  return moved;
}

std::string ShardManifest::to_text() const {
  std::ostringstream out;
  out << "qdv-shard-manifest v1\n";
  out << "workers " << num_workers_ << "\n";
  out << "timesteps " << ranges_.size() << "\n";
  for (std::size_t t = 0; t < ranges_.size(); ++t)
    for (const ShardRange& r : ranges_[t])
      out << "t " << t << " " << r.worker << " " << r.begin << " " << r.end
          << "\n";
  return out.str();
}

ShardManifest ShardManifest::from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "qdv-shard-manifest v1")
    throw std::runtime_error("not a qdv shard manifest");
  ShardManifest m;
  std::string tag;
  std::size_t timesteps = 0;
  if (!(in >> tag >> m.num_workers_) || tag != "workers")
    throw std::runtime_error("shard manifest: bad workers line");
  if (!(in >> tag >> timesteps) || tag != "timesteps")
    throw std::runtime_error("shard manifest: bad timesteps line");
  m.ranges_.resize(timesteps);
  std::size_t t = 0;
  ShardRange r;
  while (in >> tag >> t >> r.worker >> r.begin >> r.end) {
    if (tag != "t" || t >= timesteps || r.worker >= m.num_workers_ ||
        r.begin >= r.end)
      throw std::runtime_error("shard manifest: bad range line");
    m.ranges_[t].push_back(r);
  }
  return m;
}

void ShardManifest::save(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << to_text();
}

}  // namespace qdv::dist
