#include "dist/coordinator.hpp"

#include <signal.h>
#include <sys/wait.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

#include "bitmap/bitvector.hpp"
#include "bitmap/kernels.hpp"
#include "io/timestep_table.hpp"

namespace qdv::dist {

namespace {

/// One shard sub-request in flight during execute(): the window, which
/// worker it is currently assigned to, and how often that worker has been
/// retried for it.
struct Sub {
  ShardRange range;
  int attempts = 0;
  // Per-round transient state:
  std::uint32_t seq = 0;
  bool sent = false;
  bool failed = false;
};

struct Partial {
  ShardRange range;
  Frame frame;
};

double read_exec_seconds(const Frame& frame) {
  WireReader r(frame.payload);
  return r.f64();
}

}  // namespace

std::chrono::milliseconds backoff_delay(int attempt,
                                        std::chrono::milliseconds base,
                                        std::chrono::milliseconds max,
                                        std::uint64_t& state) {
  // xorshift64: tiny, seedable, and good enough for jitter (a zero state
  // would stick at zero, so it is nudged to 1).
  if (state == 0) state = 1;
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  const double jitter =
      0.5 + 0.5 * static_cast<double>(state >> 11) /
                      static_cast<double>(std::uint64_t{1} << 53);
  const int k = std::clamp(attempt, 0, 30);
  double ms = static_cast<double>(base.count()) * std::ldexp(1.0, k);
  ms = std::min(ms, static_cast<double>(max.count())) * jitter;
  return std::max(std::chrono::milliseconds(static_cast<std::int64_t>(ms)),
                  std::chrono::milliseconds(1));
}

struct Coordinator::Impl {
  io::Dataset dataset;
  DistConfig config;

  struct Worker {
    std::filesystem::path socket;
    std::string name;
    pid_t pid = -1;
    bool reaped = false;

    std::mutex qmutex;  // query channel, one scatter at a time
    Channel query;
    std::mutex cmutex;  // control channel (heartbeat / shutdown)
    Channel control;

    std::atomic<bool> alive{true};
    int hb_misses = 0;  // heartbeat thread only

    // Guarded by state_mutex:
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
    std::uint64_t retries = 0;
  };

  mutable std::mutex state_mutex;  // manifest, liveness, counters
  std::vector<std::unique_ptr<Worker>> workers;
  std::size_t alive_count = 0;
  ShardManifest manifest;
  std::vector<std::uint64_t> rows_per_timestep;

  std::uint64_t backoff_state = 0;  // jitter PRNG, guarded by state_mutex

  std::uint64_t queries = 0;
  std::uint64_t scatters = 0;
  std::uint64_t gathers = 0;
  std::uint64_t retries = 0;
  std::uint64_t reshards = 0;
  std::uint64_t deaths = 0;
  std::uint64_t remote_errors = 0;

  std::atomic<std::uint32_t> next_seq{1};

  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread hb_thread;

  bool workers_shut_down = false;

  Impl(io::Dataset d, DistConfig c)
      : dataset(std::move(d)), config(std::move(c)),
        backoff_state(config.backoff_seed) {
    rows_per_timestep.reserve(dataset.num_timesteps());
    for (std::size_t t = 0; t < dataset.num_timesteps(); ++t)
      rows_per_timestep.push_back(dataset.table(t).num_rows());
  }

  // ------------------------------------------------------------ liveness ---

  std::vector<bool> alive_mask_locked() const {
    std::vector<bool> mask(workers.size());
    for (std::size_t w = 0; w < workers.size(); ++w)
      mask[w] = workers[w]->alive.load(std::memory_order_relaxed);
    return mask;
  }

  /// Declare worker @p index dead and move its manifest windows onto the
  /// survivors. Idempotent; safe from execute() and the heartbeat thread.
  void mark_dead(std::size_t index) {
    std::lock_guard<std::mutex> lock(state_mutex);
    Worker& w = *workers[index];
    if (!w.alive.exchange(false, std::memory_order_relaxed)) return;
    ++deaths;
    --alive_count;
    try {
      reshards += manifest.reassign(index, alive_mask_locked());
    } catch (const std::exception&) {
      // No survivors: the manifest keeps the stale assignment; execute()
      // reports NoLiveWorkers before consulting it.
    }
  }

  void rebuild_manifest_locked() {
    manifest = ShardManifest::build(rows_per_timestep,
                                    std::max<std::size_t>(workers.size(), 1));
    for (std::size_t w = 0; w < workers.size(); ++w)
      if (!workers[w]->alive.load(std::memory_order_relaxed))
        manifest.reassign(w, alive_mask_locked());
  }

  // ----------------------------------------------------------- heartbeat ---

  void heartbeat_loop() {
    std::unique_lock<std::mutex> lock(hb_mutex);
    while (!hb_stop) {
      hb_cv.wait_for(lock, config.heartbeat_interval);
      if (hb_stop) break;
      lock.unlock();
      probe_workers();
      lock.lock();
    }
  }

  void probe_workers() {
    for (std::size_t i = 0; i < workers.size(); ++i) {
      Worker& w = *workers[i];
      if (!w.alive.load(std::memory_order_relaxed)) continue;
      // A spawned child that exited is dead no matter what its socket says.
      if (w.pid > 0 && !w.reaped) {
        int status = 0;
        if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
          w.reaped = true;
          mark_dead(i);
          continue;
        }
      }
      std::lock_guard<std::mutex> lock(w.cmutex);
      try {
        Frame probe;
        probe.type = MsgType::kHeartbeat;
        probe.seq = next_seq.fetch_add(1, std::memory_order_relaxed);
        if (!w.control.open())
          w.control = Channel::connect(w.socket, config.connect_timeout,
                                       config.request_timeout);
        w.control.send(probe);
        const Frame ack = w.control.recv();
        if (ack.type != MsgType::kHeartbeatAck)
          throw std::runtime_error("unexpected heartbeat reply");
        w.hb_misses = 0;
      } catch (const std::exception&) {
        w.control.close();
        if (++w.hb_misses >= config.heartbeat_misses) mark_dead(i);
      }
    }
  }

  // -------------------------------------------------------------- expire ---

  void stop_heartbeat() {
    {
      std::lock_guard<std::mutex> lock(hb_mutex);
      hb_stop = true;
      hb_cv.notify_all();
    }
    if (hb_thread.joinable()) hb_thread.join();
  }

  void shutdown_workers() {
    {
      std::lock_guard<std::mutex> lock(state_mutex);
      if (workers_shut_down) return;
      workers_shut_down = true;
    }
    for (auto& wp : workers) {
      Worker& w = *wp;
      if (w.alive.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(w.cmutex);
        try {
          if (!w.control.open())
            w.control = Channel::connect(w.socket, config.connect_timeout,
                                         std::chrono::milliseconds(500));
          Frame bye;
          bye.type = MsgType::kShutdown;
          bye.seq = next_seq.fetch_add(1, std::memory_order_relaxed);
          w.control.send(bye);
          (void)w.control.recv();  // kShutdownAck (best effort)
        } catch (const std::exception&) {
        }
        w.control.close();
      }
      {
        std::lock_guard<std::mutex> lock(w.qmutex);
        w.query.close();
      }
    }
    for (auto& wp : workers) {
      Worker& w = *wp;
      if (w.pid <= 0 || w.reaped) continue;
      int status = 0;
      for (int i = 0; i < 100; ++i) {  // ~2s of graceful exit budget
        if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
          w.reaped = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      if (!w.reaped) {
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, &status, 0);
        w.reaped = true;
      }
    }
  }

  // --------------------------------------------------------------- query ---

  Frame make_query_frame(ShardKind kind, std::size_t timestep,
                         const std::string& query, const std::string& var_x,
                         const std::string& var_y, std::size_t nxbins,
                         std::size_t nybins, const ShardRange& range,
                         std::uint32_t seq) const {
    ShardQuery q;
    q.kind = kind;
    q.timestep = timestep;
    q.row_begin = range.begin;
    q.row_end = range.end;
    q.nxbins = nxbins;
    q.nybins = nybins;
    q.var_x = var_x;
    q.var_y = var_y;
    q.query = query;
    Frame f;
    f.type = MsgType::kShardQuery;
    f.seq = seq;
    f.payload = q.encode();
    return f;
  }

  /// One scatter round over @p pending: send everything first, then gather
  /// every reply — workers compute their shards concurrently while the
  /// coordinator waits, whatever the local thread count. Successful
  /// partials are appended; failed subs are returned for retry/re-shard.
  std::vector<Sub> scatter_round(std::vector<Sub> pending, ShardKind kind,
                                 std::size_t timestep, const std::string& query,
                                 const std::string& var_x,
                                 const std::string& var_y, std::size_t nxbins,
                                 std::size_t nybins,
                                 std::vector<Partial>& partials,
                                 std::string& remote_error) {
    std::sort(pending.begin(), pending.end(), [](const Sub& a, const Sub& b) {
      return a.range.worker < b.range.worker ||
             (a.range.worker == b.range.worker && a.range.begin < b.range.begin);
    });
    // Lock every involved worker's query channel, ascending by index (the
    // one lock order everywhere, so concurrent executes cannot deadlock).
    std::vector<std::unique_lock<std::mutex>> locks;
    for (std::size_t i = 0; i < pending.size(); ++i)
      if (i == 0 || pending[i].range.worker != pending[i - 1].range.worker)
        locks.emplace_back(workers[pending[i].range.worker]->qmutex);

    std::uint64_t sent_count = 0;
    for (Sub& sub : pending) {
      Worker& w = *workers[sub.range.worker];
      if (!w.alive.load(std::memory_order_relaxed)) {
        sub.failed = true;
        continue;
      }
      sub.seq = next_seq.fetch_add(1, std::memory_order_relaxed);
      try {
        w.query.send(make_query_frame(kind, timestep, query, var_x, var_y,
                                      nxbins, nybins, sub.range, sub.seq));
        sub.sent = true;
        ++sent_count;
      } catch (const std::exception&) {
        sub.failed = true;
      }
    }
    for (Sub& sub : pending) {
      if (!sub.sent) continue;
      Worker& w = *workers[sub.range.worker];
      try {
        Frame reply = w.query.recv();
        if (reply.seq != sub.seq)
          throw std::runtime_error("reply out of sequence");
        if (reply.type == MsgType::kError) {
          WireReader r(reply.payload);
          if (remote_error.empty()) remote_error = r.str();
        } else {
          partials.push_back({sub.range, std::move(reply)});
        }
      } catch (const std::exception&) {
        sub.failed = true;
        w.query.close();  // a desynced/timed-out stream cannot be reused
      }
    }
    locks.clear();

    {
      std::lock_guard<std::mutex> lock(state_mutex);
      scatters += sent_count;
      for (const Sub& sub : pending) {
        Worker& w = *workers[sub.range.worker];
        if (sub.sent) ++w.requests;
        if (sub.failed) ++w.failures;
      }
    }
    std::vector<Sub> failed;
    for (Sub& sub : pending)
      if (sub.failed) {
        sub.sent = false;
        sub.failed = false;
        failed.push_back(sub);
      }
    return failed;
  }

  /// Decide each failed sub's fate: bounded reconnect-and-resend on the
  /// same worker, or declare the worker dead and split the window across
  /// the survivors.
  std::vector<Sub> handle_failures(std::vector<Sub> failed) {
    std::vector<Sub> requeued;
    for (Sub& sub : failed) {
      const std::size_t wi = sub.range.worker;
      Worker& w = *workers[wi];
      bool retry = false;
      if (w.alive.load(std::memory_order_relaxed) &&
          sub.attempts < config.max_retries) {
        // Back off before touching the worker again — even before the
        // reconnect, so a worker restarting its listener gets the same
        // breathing room as one that is merely slow.
        std::chrono::milliseconds delay{};
        {
          std::lock_guard<std::mutex> lock(state_mutex);
          delay = backoff_delay(sub.attempts, config.backoff_base,
                                config.backoff_max, backoff_state);
        }
        if (config.backoff_sleep)
          config.backoff_sleep(delay);
        else
          std::this_thread::sleep_for(delay);
        std::lock_guard<std::mutex> lock(w.qmutex);
        try {
          if (!w.query.open())
            w.query = Channel::connect(w.socket, config.connect_timeout,
                                       config.request_timeout);
          retry = true;
        } catch (const std::exception&) {
        }
      }
      if (retry) {
        {
          std::lock_guard<std::mutex> lock(state_mutex);
          ++retries;
          ++w.retries;
        }
        ++sub.attempts;
        requeued.push_back(sub);
        continue;
      }
      mark_dead(wi);
      std::lock_guard<std::mutex> lock(state_mutex);
      std::vector<std::size_t> live;
      for (std::size_t i = 0; i < workers.size(); ++i)
        if (workers[i]->alive.load(std::memory_order_relaxed)) live.push_back(i);
      if (live.empty())
        throw NoLiveWorkers("worker '" + w.name +
                            "' died and no live workers remain");
      for (ShardRange piece :
           partition_rows(sub.range.end - sub.range.begin, live)) {
        piece.begin += sub.range.begin;
        piece.end += sub.range.begin;
        ++reshards;
        requeued.push_back({piece, 0, 0, false, false});
      }
    }
    return requeued;
  }

  // --------------------------------------------------------------- merge ---

  GatherResult merge(ShardKind kind, std::size_t timestep,
                     std::vector<Partial> partials) {
    GatherResult out;
    out.shards = partials.size();
    std::uint64_t covered = 0;
    for (const Partial& p : partials) {
      const double s = read_exec_seconds(p.frame);
      out.sum_shard_seconds += s;
      out.max_shard_seconds = std::max(out.max_shard_seconds, s);
      covered += p.range.end - p.range.begin;
    }
    if (covered != rows_per_timestep[timestep])
      throw std::runtime_error("gathered windows do not tile the timestep");

    switch (kind) {
      case ShardKind::kCount: {
        for (const Partial& p : partials) {
          WireReader r(p.frame.payload);
          r.f64();
          out.count += r.u64();
        }
        break;
      }
      case ShardKind::kBits: {
        // OR-merge the windowed selection bitvectors (disjoint windows, so
        // this is exactly the single-process bitvector), then map rows
        // through the id column — the same row-ascending walk as
        // Selection::ids.
        std::vector<BitVector> parts;
        parts.reserve(partials.size());
        for (const Partial& p : partials) {
          WireReader r(p.frame.payload);
          r.f64();
          std::istringstream blob(r.str());
          parts.push_back(BitVector::load(blob));
        }
        std::vector<const BitVector*> ptrs;
        ptrs.reserve(parts.size());
        for (const BitVector& b : parts) ptrs.push_back(&b);
        const BitVector merged =
            kern::or_many_kway(ptrs, rows_per_timestep[timestep]);
        const std::span<const std::uint64_t> id_col =
            dataset.table(timestep).id_column("id");
        out.ids.reserve(merged.count());
        kern::for_each_set_blocked(merged, [&](std::uint64_t row) {
          out.ids.push_back(id_col[row]);
        });
        out.count = out.ids.size();
        break;
      }
      case ShardKind::kHist1: {
        std::vector<double> edges;
        for (const Partial& p : partials) {
          WireReader r(p.frame.payload);
          r.f64();
          const std::uint32_t nedges = r.u32();
          std::vector<double> e(nedges);
          for (auto& v : e) v = r.f64();
          const std::uint32_t ncounts = r.u32();
          if (edges.empty()) {
            edges = std::move(e);
            out.hist1d.counts.assign(ncounts, 0);
          } else if (e != edges || ncounts != out.hist1d.counts.size()) {
            throw std::runtime_error("partial histogram shapes disagree");
          }
          for (std::uint32_t i = 0; i < ncounts; ++i)
            out.hist1d.counts[i] += r.u64();
        }
        out.hist1d.bins = Bins(std::move(edges));
        out.count = out.hist1d.total();
        break;
      }
      case ShardKind::kHist2: {
        std::vector<double> xedges;
        std::vector<double> yedges;
        for (const Partial& p : partials) {
          WireReader r(p.frame.payload);
          r.f64();
          const std::uint32_t nx = r.u32();
          std::vector<double> xe(nx);
          for (auto& v : xe) v = r.f64();
          const std::uint32_t ny = r.u32();
          std::vector<double> ye(ny);
          for (auto& v : ye) v = r.f64();
          const std::uint32_t ncounts = r.u32();
          if (xedges.empty() && yedges.empty()) {
            xedges = std::move(xe);
            yedges = std::move(ye);
            out.hist2d.counts.assign(ncounts, 0);
          } else if (xe != xedges || ye != yedges ||
                     ncounts != out.hist2d.counts.size()) {
            throw std::runtime_error("partial histogram shapes disagree");
          }
          for (std::uint32_t i = 0; i < ncounts; ++i)
            out.hist2d.counts[i] += r.u64();
        }
        out.hist2d.xbins = Bins(std::move(xedges));
        out.hist2d.ybins = Bins(std::move(yedges));
        out.count = out.hist2d.total();
        break;
      }
    }
    {
      std::lock_guard<std::mutex> lock(state_mutex);
      gathers += partials.size();
    }
    return out;
  }
};

Coordinator::Coordinator(io::Dataset dataset, DistConfig config)
    : impl_(std::make_shared<Impl>(std::move(dataset), config)) {
  if (config.heartbeats)
    impl_->hb_thread = std::thread([impl = impl_] { impl->heartbeat_loop(); });
}

Coordinator::~Coordinator() {
  impl_->stop_heartbeat();
  impl_->shutdown_workers();
}

std::size_t Coordinator::attach_worker(const std::filesystem::path& socket,
                                       pid_t pid) {
  auto w = std::make_unique<Impl::Worker>();
  w->socket = socket;
  w->name = socket.filename().string();
  w->pid = pid;
  w->query = Channel::connect(socket, impl_->config.connect_timeout,
                              impl_->config.request_timeout);
  w->control = Channel::connect(socket, impl_->config.connect_timeout,
                                impl_->config.request_timeout);

  Frame hello;
  hello.type = MsgType::kHello;
  hello.seq = impl_->next_seq.fetch_add(1, std::memory_order_relaxed);
  WireWriter payload;
  payload.u16(kWireVersion);
  payload.str(impl_->dataset.path().string());
  hello.payload = payload.take();
  w->query.send(hello);
  const Frame ack = w->query.recv();
  if (ack.type == MsgType::kError) {
    WireReader r(ack.payload);
    throw std::runtime_error("worker handshake failed: " + r.str());
  }
  if (ack.type != MsgType::kHelloAck)
    throw std::runtime_error("worker handshake failed: unexpected reply");
  WireReader r(ack.payload);
  r.u64();  // worker pid (informational)
  const std::uint64_t timesteps = r.u64();
  if (timesteps != impl_->dataset.num_timesteps())
    throw std::runtime_error(
        "worker handshake failed: worker sees " + std::to_string(timesteps) +
        " timesteps, coordinator sees " +
        std::to_string(impl_->dataset.num_timesteps()));

  std::lock_guard<std::mutex> lock(impl_->state_mutex);
  const std::size_t index = impl_->workers.size();
  impl_->workers.push_back(std::move(w));
  ++impl_->alive_count;
  impl_->rebuild_manifest_locked();
  return index;
}

GatherResult Coordinator::execute(ShardKind kind, std::size_t timestep,
                                  const std::string& query,
                                  const std::string& var_x,
                                  const std::string& var_y, std::size_t nxbins,
                                  std::size_t nybins) {
  Impl& impl = *impl_;
  std::vector<Sub> pending;
  std::size_t worker_count = 0;
  {
    std::lock_guard<std::mutex> lock(impl.state_mutex);
    ++impl.queries;
    if (impl.alive_count == 0)
      throw NoLiveWorkers("no live workers attached");
    if (timestep >= impl.manifest.num_timesteps())
      throw std::runtime_error("timestep out of range");
    for (const ShardRange& r : impl.manifest.ranges(timestep))
      pending.push_back({r, 0, 0, false, false});
    worker_count = impl.workers.size();
  }
  if (pending.empty())
    throw NoLiveWorkers("timestep has no sharded rows");

  std::vector<Partial> partials;
  std::string remote_error;
  std::size_t round = 0;
  while (!pending.empty()) {
    if (++round > worker_count + 3)
      throw NoLiveWorkers("scatter kept failing across every worker");
    std::vector<Sub> failed = impl.scatter_round(
        std::move(pending), kind, timestep, query, var_x, var_y, nxbins,
        nybins, partials, remote_error);
    pending = impl.handle_failures(std::move(failed));
  }
  if (!remote_error.empty()) {
    std::lock_guard<std::mutex> lock(impl.state_mutex);
    ++impl.remote_errors;
    GatherResult out;
    out.ok = false;
    out.error = remote_error;
    return out;
  }
  return impl.merge(kind, timestep, std::move(partials));
}

std::size_t Coordinator::workers() const {
  std::lock_guard<std::mutex> lock(impl_->state_mutex);
  return impl_->workers.size();
}

std::size_t Coordinator::live_workers() const {
  std::lock_guard<std::mutex> lock(impl_->state_mutex);
  return impl_->alive_count;
}

DistStats Coordinator::stats() const {
  std::lock_guard<std::mutex> lock(impl_->state_mutex);
  DistStats s;
  s.workers = impl_->workers.size();
  s.alive = impl_->alive_count;
  s.queries = impl_->queries;
  s.scatters = impl_->scatters;
  s.gathers = impl_->gathers;
  s.retries = impl_->retries;
  s.reshards = impl_->reshards;
  s.deaths = impl_->deaths;
  s.remote_errors = impl_->remote_errors;
  s.per_worker.reserve(impl_->workers.size());
  for (const auto& w : impl_->workers)
    s.per_worker.push_back({w->name, w->alive.load(std::memory_order_relaxed),
                            w->requests, w->failures, w->retries});
  return s;
}

ShardManifest Coordinator::manifest_snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->state_mutex);
  return impl_->manifest;
}

void Coordinator::save_manifest(const std::filesystem::path& path) const {
  manifest_snapshot().save(path);
}

void Coordinator::shutdown_workers() { impl_->shutdown_workers(); }

}  // namespace qdv::dist
