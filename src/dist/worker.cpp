#include "dist/worker.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <memory>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "bitmap/bitvector.hpp"
#include "bitmap/histogram.hpp"
#include "core/engine.hpp"
#include "core/selection.hpp"
#include "dist/wire.hpp"

extern char** environ;

namespace qdv::dist {

namespace {

/// Shard timing uses process CPU time, not wall time: workers time-share
/// host cores with each other (and the coordinator), so wall time around
/// the evaluation would charge this shard for the other processes' slices.
/// CPU seconds are what the shard costs on a dedicated core — the unit the
/// coordinator's makespan statistics (max/sum_shard_seconds) aggregate.
/// The process-wide clock (not thread) also covers engine pool threads.
double cpu_seconds() {
  timespec ts{};
  ::clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_address(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string text = path.string();
  if (text.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + text);
  std::memcpy(addr.sun_path, text.c_str(), text.size() + 1);
  return addr;
}

Frame error_frame(std::uint32_t seq, const std::string& message) {
  Frame f;
  f.type = MsgType::kError;
  f.seq = seq;
  WireWriter w;
  w.str(message);
  f.payload = w.take();
  return f;
}

/// Zeros outside [begin, end), ones inside — ANDed against the selection
/// bitvector to window it to this worker's shard. Run-length encoded, so
/// the mask costs O(1) words regardless of the window size.
BitVector window_mask(std::uint64_t begin, std::uint64_t end,
                      std::uint64_t nrows) {
  BitVector m;
  m.append_run(false, begin);
  m.append_run(true, end - begin);
  m.append_run(false, nrows - end);
  return m;
}

}  // namespace

struct WorkerServer::Impl {
  core::Engine engine;
  std::filesystem::path dataset_dir;
  std::filesystem::path path;
  int listen_fd = -1;
  std::thread accept_thread;
  bool started = false;
  bool stopped = false;

  std::mutex shutdown_mutex;
  std::condition_variable shutdown_cv;
  bool shutdown_requested = false;

  std::atomic<std::uint64_t> requests{0};

  struct Conn {
    int fd = -1;
    std::shared_ptr<std::atomic<bool>> done;
    std::thread thread;
  };
  std::mutex mutex;  // guards conns
  std::vector<Conn> conns;

  // Windowed-selection cache. The coordinator's shard windows are static
  // between re-shards, so the same (plan, timestep, window) triple arrives
  // for every kind of query over a selection; windowing the full-timestep
  // bitvector is O(total rows) while everything downstream is O(window),
  // and without this cache that AND would dominate per-shard compute and
  // cap the scatter speedup. Bounded by wholesale clear — entries are
  // cheap to rebuild and the working set (plans x windows) is tiny.
  std::mutex window_mutex;
  std::unordered_map<std::string, std::shared_ptr<const BitVector>> window_cache;
  static constexpr std::size_t kWindowCacheMax = 256;

  std::shared_ptr<const BitVector> windowed_rows(const core::Selection& selection,
                                                 const ShardQuery& q,
                                                 std::uint64_t nrows) {
    std::string key = selection.cache_key();
    key += '|';
    key += std::to_string(q.timestep);
    key += ':';
    key += std::to_string(q.row_begin);
    key += '-';
    key += std::to_string(q.row_end);
    {
      std::lock_guard<std::mutex> lock(window_mutex);
      const auto it = window_cache.find(key);
      if (it != window_cache.end()) return it->second;
    }
    const std::shared_ptr<const BitVector> bits =
        selection.bits(static_cast<std::size_t>(q.timestep));
    auto rows = std::make_shared<const BitVector>(
        *bits & window_mask(q.row_begin, q.row_end, nrows));
    std::lock_guard<std::mutex> lock(window_mutex);
    if (window_cache.size() >= kWindowCacheMax) window_cache.clear();
    window_cache.emplace(std::move(key), rows);
    return rows;
  }

  Impl(const std::filesystem::path& dir, std::filesystem::path p)
      : engine(core::Engine::open(dir)), dataset_dir(dir), path(std::move(p)) {}

  Frame handle(const Frame& request) {
    switch (request.type) {
      case MsgType::kHello:
        return handle_hello(request);
      case MsgType::kHeartbeat: {
        Frame f;
        f.type = MsgType::kHeartbeatAck;
        f.seq = request.seq;
        return f;
      }
      case MsgType::kShardQuery:
        ++requests;
        return handle_query(request);
      case MsgType::kShutdown: {
        Frame f;
        f.type = MsgType::kShutdownAck;
        f.seq = request.seq;
        return f;
      }
      default:
        return error_frame(request.seq, "unexpected frame type");
    }
  }

  Frame handle_hello(const Frame& request) {
    try {
      WireReader r(request.payload);
      const std::uint16_t peer_version = r.u16();
      const std::string peer_dataset = r.str();
      if (peer_version != kWireVersion)
        return error_frame(
            request.seq,
            "wire version mismatch: worker speaks v" +
                std::to_string(kWireVersion) + ", coordinator sent v" +
                std::to_string(peer_version));
      // Both sides must read the same files; a canonical-path mismatch
      // means merged partials would silently describe two datasets.
      std::error_code ec;
      const auto ours = std::filesystem::weakly_canonical(dataset_dir, ec);
      const auto theirs = std::filesystem::weakly_canonical(peer_dataset, ec);
      if (!peer_dataset.empty() && ours != theirs)
        return error_frame(request.seq, "dataset mismatch: worker serves " +
                                            dataset_dir.string() +
                                            ", coordinator expects " +
                                            peer_dataset);
      std::uint64_t total_rows = 0;
      for (std::size_t t = 0; t < engine.num_timesteps(); ++t)
        total_rows += engine.dataset().table(t).num_rows();
      Frame f;
      f.type = MsgType::kHelloAck;
      f.seq = request.seq;
      WireWriter w;
      w.u64(static_cast<std::uint64_t>(::getpid()));
      w.u64(engine.num_timesteps());
      w.u64(total_rows);
      f.payload = w.take();
      return f;
    } catch (const std::exception& e) {
      return error_frame(request.seq, e.what());
    }
  }

  Frame handle_query(const Frame& request) {
    try {
      const ShardQuery q = ShardQuery::decode(request.payload);
      if (q.timestep >= engine.num_timesteps())
        throw std::invalid_argument("timestep out of range");
      const io::TimestepTable& table =
          engine.dataset().table(static_cast<std::size_t>(q.timestep));
      const std::uint64_t nrows = table.num_rows();
      if (q.row_begin > q.row_end || q.row_end > nrows)
        throw std::invalid_argument("shard row window out of range");

      const double start = cpu_seconds();
      const auto selection = engine.select_shared(q.query);
      const std::shared_ptr<const BitVector> rows_ptr =
          windowed_rows(*selection, q, nrows);
      const BitVector& rows = *rows_ptr;

      Frame f;
      f.seq = request.seq;
      WireWriter w;
      switch (q.kind) {
        case ShardKind::kCount: {
          const std::uint64_t count = rows.count();
          w.f64(cpu_seconds() - start);
          w.u64(count);
          f.type = MsgType::kPartialCount;
          break;
        }
        case ShardKind::kBits: {
          std::ostringstream blob;
          rows.save(blob);
          w.f64(cpu_seconds() - start);
          w.str(blob.str());
          f.type = MsgType::kPartialBits;
          break;
        }
        case ShardKind::kHist1: {
          // Uniform bins derive from the table domain alone, so every
          // worker produces identical edges and partial counts sum to the
          // single-process histogram bit for bit.
          const Histogram1D h = table.engine().histogram1d(
              q.var_x, static_cast<std::size_t>(q.nxbins), rows,
              BinningMode::kUniform);
          w.f64(cpu_seconds() - start);
          w.u32(static_cast<std::uint32_t>(h.bins.edges().size()));
          for (const double e : h.bins.edges()) w.f64(e);
          w.u32(static_cast<std::uint32_t>(h.counts.size()));
          for (const std::uint64_t c : h.counts) w.u64(c);
          f.type = MsgType::kPartialHist1;
          break;
        }
        case ShardKind::kHist2: {
          const Histogram2D h = table.engine().histogram2d(
              q.var_x, q.var_y, static_cast<std::size_t>(q.nxbins),
              static_cast<std::size_t>(q.nybins), rows, BinningMode::kUniform);
          w.f64(cpu_seconds() - start);
          w.u32(static_cast<std::uint32_t>(h.xbins.edges().size()));
          for (const double e : h.xbins.edges()) w.f64(e);
          w.u32(static_cast<std::uint32_t>(h.ybins.edges().size()));
          for (const double e : h.ybins.edges()) w.f64(e);
          w.u32(static_cast<std::uint32_t>(h.counts.size()));
          for (const std::uint64_t c : h.counts) w.u64(c);
          f.type = MsgType::kPartialHist2;
          break;
        }
        default:
          throw std::invalid_argument("unknown shard kind");
      }
      f.payload = w.take();
      return f;
    } catch (const std::exception& e) {
      return error_frame(request.seq, e.what());
    }
  }

  void serve_connection(int fd, const std::shared_ptr<std::atomic<bool>>& done) {
    Channel channel(fd);  // no recv timeout: idle between requests is normal
    bool request_shutdown = false;
    for (;;) {
      Frame request;
      try {
        request = channel.recv();
      } catch (const WireVersionError& e) {
        // The frame was drained, the stream is still synced: tell the
        // stale peer exactly what went wrong before hanging up.
        try {
          channel.send(error_frame(0, e.what()));
        } catch (...) {
        }
        break;
      } catch (...) {
        break;  // EOF / peer gone / corrupt stream
      }
      const Frame reply = handle(request);
      request_shutdown = request.type == MsgType::kShutdown;
      try {
        channel.send(reply);
      } catch (...) {
        break;
      }
      if (request_shutdown) break;
    }
    channel.close();
    {
      std::lock_guard<std::mutex> lock(mutex);
      for (Conn& c : conns)
        if (c.done == done) c.fd = -1;
    }
    done->store(true, std::memory_order_release);
    if (request_shutdown) {
      std::lock_guard<std::mutex> lock(shutdown_mutex);
      shutdown_requested = true;
      shutdown_cv.notify_all();
    }
  }

  void reap_locked() {
    for (std::size_t i = 0; i < conns.size();) {
      if (conns[i].done->load(std::memory_order_acquire)) {
        conns[i].thread.join();
        conns[i] = std::move(conns.back());
        conns.pop_back();
      } else {
        ++i;
      }
    }
  }

  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener closed by stop()
      }
      std::lock_guard<std::mutex> lock(mutex);
      reap_locked();
      Conn conn;
      conn.fd = fd;
      conn.done = std::make_shared<std::atomic<bool>>(false);
      conn.thread = std::thread(
          [this, fd, done = conn.done] { serve_connection(fd, done); });
      conns.push_back(std::move(conn));
    }
  }
};

WorkerServer::WorkerServer(const std::filesystem::path& dataset_dir,
                           std::filesystem::path socket_path)
    : impl_(std::make_unique<Impl>(dataset_dir, std::move(socket_path))) {
  std::filesystem::remove(impl_->path);
  impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) throw_errno("socket");
  const sockaddr_un addr = make_address(impl_->path);
  if (::bind(impl_->listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    ::close(impl_->listen_fd);
    throw_errno("bind " + impl_->path.string());
  }
  if (::listen(impl_->listen_fd, 64) != 0) {
    ::close(impl_->listen_fd);
    throw_errno("listen " + impl_->path.string());
  }
}

WorkerServer::~WorkerServer() { stop(); }

void WorkerServer::start() {
  if (impl_->started) return;
  impl_->started = true;
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
}

void WorkerServer::stop() {
  if (impl_->stopped) return;
  impl_->stopped = true;
  ::shutdown(impl_->listen_fd, SHUT_RDWR);
  ::close(impl_->listen_fd);
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  std::vector<Impl::Conn> conns;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const Impl::Conn& c : impl_->conns)
      if (c.fd >= 0) ::shutdown(c.fd, SHUT_RDWR);
    conns.swap(impl_->conns);
  }
  for (Impl::Conn& c : conns) c.thread.join();
  std::filesystem::remove(impl_->path);
}

void WorkerServer::wait_shutdown() {
  std::unique_lock<std::mutex> lock(impl_->shutdown_mutex);
  impl_->shutdown_cv.wait(lock, [this] { return impl_->shutdown_requested; });
}

const std::filesystem::path& WorkerServer::socket_path() const {
  return impl_->path;
}

std::uint64_t WorkerServer::requests_served() const {
  return impl_->requests.load(std::memory_order_relaxed);
}

int run_worker(const std::filesystem::path& dataset_dir,
               const std::filesystem::path& socket_path) {
  try {
    WorkerServer server(dataset_dir, socket_path);
    server.start();
    server.wait_shutdown();
    server.stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qdv worker: %s\n", e.what());
    return 1;
  }
}

pid_t spawn_worker_process(
    const std::string& exe, const std::vector<std::string>& args,
    const std::vector<std::pair<std::string, std::string>>& env) {
  // Build argv/envp before fork(): only async-signal-safe calls are legal
  // between fork and exec in a multithreaded parent.
  std::vector<std::string> arg_storage;
  arg_storage.reserve(args.size() + 1);
  arg_storage.push_back(exe);
  for (const std::string& a : args) arg_storage.push_back(a);
  std::vector<char*> argv;
  for (std::string& a : arg_storage) argv.push_back(a.data());
  argv.push_back(nullptr);

  std::vector<std::string> env_storage;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const std::string_view entry(*e);
    const std::size_t eq = entry.find('=');
    const std::string_view name = entry.substr(0, eq);
    bool overridden = false;
    for (const auto& [k, v] : env) overridden = overridden || k == name;
    if (!overridden) env_storage.emplace_back(entry);
  }
  for (const auto& [k, v] : env) env_storage.push_back(k + "=" + v);
  std::vector<char*> envp;
  for (std::string& e : env_storage) envp.push_back(e.data());
  envp.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw_errno("fork");
  if (pid == 0) {
    ::execve(exe.c_str(), argv.data(), envp.data());
    _exit(127);
  }
  return pid;
}

std::string self_exe_path(const std::string& fallback) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return fallback;
  buf[n] = '\0';
  return std::string(buf);
}

}  // namespace qdv::dist
