#include "dist/wire.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "io/io_util.hpp"

namespace qdv::dist {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_address(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string text = path.string();
  if (text.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + text);
  std::memcpy(addr.sun_path, text.c_str(), text.size() + 1);
  return addr;
}

void put_le(std::string& buf, std::uint64_t v, std::size_t nbytes) {
  for (std::size_t i = 0; i < nbytes; ++i)
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

// 16-byte frame header: magic u32, version u16, type u16, seq u32,
// payload_bytes u32.
constexpr std::size_t kHeaderBytes = 16;

void encode_header(std::string& out, MsgType type, std::uint32_t seq,
                   std::uint32_t payload_bytes) {
  put_le(out, kWireMagic, 4);
  put_le(out, kWireVersion, 2);
  put_le(out, static_cast<std::uint16_t>(type), 2);
  put_le(out, seq, 4);
  put_le(out, payload_bytes, 4);
}

std::uint64_t get_le(const unsigned char* p, std::size_t nbytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < nbytes; ++i)
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

WireVersionError::WireVersionError(std::uint16_t peer, std::uint16_t ours)
    : std::runtime_error("wire version mismatch: peer speaks v" +
                         std::to_string(peer) + ", this build speaks v" +
                         std::to_string(ours) +
                         " (rebuild or upgrade the stale side)"),
      peer_version(peer) {}

void WireWriter::u8(std::uint8_t v) { put_le(buf_, v, 1); }
void WireWriter::u16(std::uint16_t v) { put_le(buf_, v, 2); }
void WireWriter::u32(std::uint32_t v) { put_le(buf_, v, 4); }
void WireWriter::u64(std::uint64_t v) { put_le(buf_, v, 8); }

void WireWriter::f64(double v) {
  std::uint64_t image = 0;
  static_assert(sizeof image == sizeof v);
  std::memcpy(&image, &v, sizeof image);
  u64(image);
}

void WireWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.append(v.data(), v.size());
}

std::uint8_t WireReader::u8() {
  if (pos_ + 1 > data_.size()) throw std::runtime_error("truncated frame");
  return static_cast<std::uint8_t>(
      get_le(reinterpret_cast<const unsigned char*>(data_.data()) + pos_++, 1));
}

std::uint16_t WireReader::u16() {
  if (pos_ + 2 > data_.size()) throw std::runtime_error("truncated frame");
  const auto v = static_cast<std::uint16_t>(
      get_le(reinterpret_cast<const unsigned char*>(data_.data()) + pos_, 2));
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  if (pos_ + 4 > data_.size()) throw std::runtime_error("truncated frame");
  const auto v = static_cast<std::uint32_t>(
      get_le(reinterpret_cast<const unsigned char*>(data_.data()) + pos_, 4));
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  if (pos_ + 8 > data_.size()) throw std::runtime_error("truncated frame");
  const std::uint64_t v =
      get_le(reinterpret_cast<const unsigned char*>(data_.data()) + pos_, 8);
  pos_ += 8;
  return v;
}

double WireReader::f64() {
  const std::uint64_t image = u64();
  double v = 0;
  std::memcpy(&v, &image, sizeof v);
  return v;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  if (pos_ + n > data_.size()) throw std::runtime_error("truncated frame");
  std::string v(data_.substr(pos_, n));
  pos_ += n;
  return v;
}

std::string ShardQuery::encode() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(timestep);
  w.u64(row_begin);
  w.u64(row_end);
  w.u64(nxbins);
  w.u64(nybins);
  w.str(var_x);
  w.str(var_y);
  w.str(query);
  return w.take();
}

ShardQuery ShardQuery::decode(std::string_view payload) {
  WireReader r(payload);
  ShardQuery q;
  q.kind = static_cast<ShardKind>(r.u8());
  q.timestep = r.u64();
  q.row_begin = r.u64();
  q.row_end = r.u64();
  q.nxbins = r.u64();
  q.nybins = r.u64();
  q.var_x = r.str();
  q.var_y = r.str();
  q.query = r.str();
  return q;
}

Channel::Channel(int fd, std::chrono::milliseconds recv_timeout) : fd_(fd) {
  if (fd_ >= 0 && recv_timeout.count() > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(recv_timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((recv_timeout.count() % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
}

Channel Channel::connect(const std::filesystem::path& socket,
                         std::chrono::milliseconds connect_timeout,
                         std::chrono::milliseconds recv_timeout) {
  const sockaddr_un addr = make_address(socket);
  const auto deadline =
      std::chrono::steady_clock::now() + connect_timeout;
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0)
      return Channel(fd, recv_timeout);
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline)
      throw std::runtime_error("cannot connect to worker at " +
                               socket.string() + ": " + std::strerror(errno));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

Channel::~Channel() { close(); }

Channel::Channel(Channel&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Channel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Channel::send(const Frame& frame) {
  if (fd_ < 0) throw std::runtime_error("channel not connected");
  if (frame.payload.size() > kMaxFramePayload)
    throw std::runtime_error("frame payload too large");
  std::string out;
  out.reserve(kHeaderBytes + frame.payload.size());
  encode_header(out, frame.type, frame.seq,
                static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  switch (io::send_full(fd_, out.data(), out.size(), fault::Site::kWire)) {
    case io::XferResult::kOk:
      return;
    case io::XferResult::kTimeout:
      close();
      throw std::runtime_error("channel send timed out");
    case io::XferResult::kClosed:
      close();
      throw std::runtime_error("channel send failed: peer closed");
  }
}

Frame Channel::recv() {
  if (fd_ < 0) throw std::runtime_error("channel not connected");
  // io::recv_full handles EINTR restarts and partial-read accumulation;
  // EAGAIN/EWOULDBLOCK (the SO_RCVTIMEO expiring) surfaces as kTimeout.
  const auto read_exact = [this](char* dst, std::size_t nbytes) {
    switch (io::recv_full(fd_, dst, nbytes, fault::Site::kWire)) {
      case io::XferResult::kOk:
        return;
      case io::XferResult::kTimeout:
        close();
        throw std::runtime_error("channel receive timed out");
      case io::XferResult::kClosed:
        close();
        throw std::runtime_error("peer closed the channel");
    }
  };

  unsigned char header[kHeaderBytes];
  read_exact(reinterpret_cast<char*>(header), kHeaderBytes);
  const auto magic = static_cast<std::uint32_t>(get_le(header, 4));
  const auto version = static_cast<std::uint16_t>(get_le(header + 4, 2));
  const auto type = static_cast<std::uint16_t>(get_le(header + 6, 2));
  const auto seq = static_cast<std::uint32_t>(get_le(header + 8, 4));
  const auto payload_bytes = static_cast<std::uint32_t>(get_le(header + 12, 4));
  if (magic != kWireMagic) {
    close();
    throw std::runtime_error("bad frame magic (not a qdv dist peer)");
  }
  if (payload_bytes > kMaxFramePayload) {
    close();
    throw std::runtime_error("frame payload length corrupt");
  }
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.seq = seq;
  frame.payload.resize(payload_bytes);
  if (payload_bytes > 0) read_exact(frame.payload.data(), payload_bytes);
  // The header layout is fixed across versions, so a mismatched frame can
  // be drained in full: the stream stays synced and the caller may still
  // send a clear kError reply before giving up.
  if (version != kWireVersion) throw WireVersionError(version, kWireVersion);
  return frame;
}

}  // namespace qdv::dist
