#include "sim/wakefield.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "agg/pyramid.hpp"
#include "io/checksum.hpp"

namespace qdv::sim {

namespace {

constexpr std::uint64_t kBeamIdBase = 1ull << 40;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic uniform in [0, 1) keyed by (seed, tag, index).
double uniform(std::uint64_t seed, std::uint64_t tag, std::uint64_t index) {
  return static_cast<double>(
             splitmix64(seed ^ splitmix64(tag * 0x2545F4914F6CDD1Dull + index)) >> 11) *
         0x1.0p-53;
}

/// Deterministic uniform in [-1, 1).
double symmetric(std::uint64_t seed, std::uint64_t tag, std::uint64_t index) {
  return 2.0 * uniform(seed, tag, index) - 1.0;
}

struct Columns {
  std::vector<double> x, y, z, px, py, pz, xrel;
  std::vector<std::uint64_t> id;

  void push(double xv, double yv, double zv, double pxv, double pyv, double pzv,
            double xrelv, std::uint64_t idv) {
    x.push_back(xv);
    y.push_back(yv);
    z.push_back(zv);
    px.push_back(pxv);
    py.push_back(pyv);
    pz.push_back(pzv);
    xrel.push_back(xrelv);
    id.push_back(idv);
  }
};

template <typename T>
void write_binary(const std::filesystem::path& file, const std::vector<T>& data) {
  std::ofstream out(file, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + file.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(T)));
  if (!out) throw std::runtime_error("short write to " + file.string());
}

std::pair<double, double> minmax_of(const std::vector<double>& v) {
  if (v.empty()) return {0.0, 0.0};
  const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
  return {*lo, *hi};
}

}  // namespace

std::size_t apply_particle_cap(std::size_t particles) {
  if (const char* env = std::getenv("QDV_MAX_PARTICLES")) {
    const long long cap = std::atoll(env);
    if (cap > 0)
      particles = std::min(particles, static_cast<std::size_t>(cap));
  }
  return std::max<std::size_t>(particles, 200);
}

WakefieldConfig WakefieldConfig::preset_2d(std::size_t particles,
                                           std::uint64_t seed) {
  WakefieldConfig cfg;
  cfg.num_particles = apply_particle_cap(particles);
  cfg.num_timesteps = 38;
  cfg.seed = seed;
  cfg.dims = 2;
  const std::size_t beam = std::max<std::size_t>(16, cfg.num_particles / 150);
  // First beam: injected into the first wake period at t=14, dephases after
  // t=27 (outruns the wave), low momentum spread.
  cfg.beams.push_back({beam, 14, 8.5e9, 27, 1.5e9, 0.74, 0.003, 0.02, 0.25, 0.08});
  // Second beam: the t=15 stragglers in the second period; keeps
  // accelerating through the end of the run, larger spread.
  cfg.beams.push_back(
      {std::max<std::size_t>(16, beam * 2 / 3), 15, 6.0e9, ~std::size_t{0}, 0.0,
       0.45, 0.0, 0.06, 0.40, 0.03});
  return cfg;
}

WakefieldConfig WakefieldConfig::preset_3d(std::size_t particles,
                                           std::uint64_t seed) {
  WakefieldConfig cfg;
  cfg.num_particles = apply_particle_cap(particles);
  cfg.num_timesteps = 16;
  cfg.seed = seed + 1;
  cfg.dims = 3;
  // First-bucket beam: injected at t=9, px(12) ~ 6.8e10 > the paper's
  // 4.856e10 selection threshold, far right in the window.
  cfg.beams.push_back({std::max<std::size_t>(16, cfg.num_particles / 120), 9,
                       1.7e10, ~std::size_t{0}, 0.0, 0.78, 0.002, 0.03, 0.2, 0.06});
  // Slower second-period group injected at t=10; px(12) ~ 3.6e10 stays
  // below the selection threshold.
  cfg.beams.push_back({std::max<std::size_t>(16, cfg.num_particles / 400), 10,
                       1.2e10, ~std::size_t{0}, 0.0, 0.45, 0.0, 0.05, 0.35, 0.02});
  return cfg;
}

WakefieldConfig WakefieldConfig::preset_bench(std::size_t particles,
                                              std::size_t timesteps,
                                              std::uint64_t seed) {
  WakefieldConfig cfg;
  cfg.num_particles = apply_particle_cap(particles);
  cfg.num_timesteps = std::max<std::size_t>(1, timesteps);
  cfg.seed = seed + 2;
  cfg.dims = 3;
  cfg.tail_fraction = 0.10;  // denser tail: usable hit-count sweeps
  const std::size_t beam = std::max<std::size_t>(300, cfg.num_particles / 250);
  cfg.beams.push_back(
      {beam, 0, 1.2e9, ~std::size_t{0}, 0.0, 0.75, 0.0, 0.02, 0.25, 0.0});
  cfg.beams.push_back(
      {beam, 0, 0.9e9, ~std::size_t{0}, 0.0, 0.45, 0.0, 0.05, 0.35, 0.0});
  return cfg;
}

namespace {

/// Background momentum: thermal bulk with a bounded heavy tail. Constant
/// per particle (the plasma is at rest; the window moves).
double background_px(const WakefieldConfig& cfg, std::uint64_t j) {
  if (uniform(cfg.seed, 11, j) < cfg.tail_fraction) {
    const double e = -std::log(1.0 - uniform(cfg.seed, 12, j));
    return std::min(cfg.px_tail_scale * e, cfg.px_tail_max);
  }
  const double e = std::min(4.0, -std::log(1.0 - uniform(cfg.seed, 13, j)));
  return cfg.px_thermal * e;
}

double beam_px_base(const BeamSpec& beam, std::size_t t) {
  const double steps = static_cast<double>(t - beam.inject_step + 1);
  double px = beam.ramp * steps;
  if (t > beam.peak_step)
    px = beam.ramp * static_cast<double>(beam.peak_step - beam.inject_step + 1) -
         beam.decline * static_cast<double>(t - beam.peak_step);
  return px;
}

Columns generate_step(const WakefieldConfig& cfg, std::size_t t) {
  Columns c;
  const double w0 = static_cast<double>(t) * cfg.window_step;
  const double w1 = w0 + cfg.window_width;
  const double density =
      static_cast<double>(cfg.num_particles) / cfg.window_width;
  // Background plasma: particle j sits at a fixed, roughly index-ordered
  // position; only the slice inside the moving window is materialized.
  const auto first =
      static_cast<std::uint64_t>(std::max(0.0, std::floor(w0 * density) - 2.0));
  const auto last = static_cast<std::uint64_t>(std::ceil(w1 * density) + 2.0);
  for (std::uint64_t j = first; j <= last; ++j) {
    const double x = (static_cast<double>(j) + uniform(cfg.seed, 1, j)) / density;
    if (x < w0 || x >= w1) continue;
    const double y = symmetric(cfg.seed, 2, j) * cfg.y_max;
    const double z = symmetric(cfg.seed, 3, j) * cfg.z_max *
                     (cfg.dims == 3 ? 1.0 : 0.02);
    const double px = background_px(cfg, j);
    const double py = symmetric(cfg.seed, 4, j) * cfg.px_thermal * 0.2;
    const double pz = symmetric(cfg.seed, 5, j) * cfg.px_thermal * 0.2 *
                      (cfg.dims == 3 ? 1.0 : 0.1);
    c.push(x, y, z, px, py, pz, (x - w0) / cfg.window_width, j);
  }
  // Trapped beams ride the window.
  for (std::size_t b = 0; b < cfg.beams.size(); ++b) {
    const BeamSpec& beam = cfg.beams[b];
    if (t < beam.inject_step) continue;
    const double steps_in = static_cast<double>(t - beam.inject_step);
    const double px_base = beam_px_base(beam, t);
    const double xrel_center = beam.xrel0 + beam.xrel_drift * steps_in;
    const double y_sigma =
        cfg.y_max * beam.y_sigma0 * std::max(0.3, 1.0 - beam.y_shrink * steps_in);
    for (std::uint64_t k = 0; k < beam.count; ++k) {
      const std::uint64_t key = (static_cast<std::uint64_t>(b) << 32) | k;
      const double px = px_base * (1.0 + beam.px_spread * symmetric(cfg.seed, 21, key));
      const double xrel =
          std::clamp(xrel_center + 0.015 * symmetric(cfg.seed, 22, key), 0.0, 1.0);
      const double x = w0 + xrel * cfg.window_width;
      const double y = y_sigma * symmetric(cfg.seed, 23, key);
      const double z = (cfg.dims == 3 ? y_sigma : 0.02 * cfg.z_max) *
                       symmetric(cfg.seed, 24, key);
      const double py = 0.01 * px * symmetric(cfg.seed, 25, key);
      const double pz = 0.01 * px * symmetric(cfg.seed, 26, key) *
                        (cfg.dims == 3 ? 1.0 : 0.1);
      c.push(x, y, z, px, py, pz, xrel,
             kBeamIdBase + (static_cast<std::uint64_t>(b) << 32) + k);
    }
  }
  return c;
}

}  // namespace

std::uint64_t generate_dataset(const WakefieldConfig& config,
                               const std::filesystem::path& dir,
                               const io::IndexConfig& index_config) {
  if (config.num_timesteps == 0)
    throw std::invalid_argument("generate_dataset: no timesteps");
  std::filesystem::create_directories(dir);
  const std::vector<std::string> variables = {"x",  "y",  "z",   "px",
                                              "py", "pz", "xrel"};
  std::vector<std::pair<double, double>> global(
      variables.size(), {std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity()});
  for (std::size_t t = 0; t < config.num_timesteps; ++t) {
    const Columns c = generate_step(config, t);
    const std::filesystem::path step_dir = dir / io::step_dir_name(t);
    std::filesystem::create_directories(step_dir);
    const std::vector<const std::vector<double>*> column_data = {
        &c.x, &c.y, &c.z, &c.px, &c.py, &c.pz, &c.xrel};
    std::ofstream meta(step_dir / "meta.txt");
    meta.precision(17);
    meta << "rows " << c.id.size() << "\n";
    for (std::size_t v = 0; v < variables.size(); ++v) {
      const auto [lo, hi] = minmax_of(*column_data[v]);
      meta << "domain " << variables[v] << ' ' << lo << ' ' << hi << "\n";
      global[v].first = std::min(global[v].first, lo);
      global[v].second = std::max(global[v].second, hi);
      write_binary(step_dir / (variables[v] + ".f64"), *column_data[v]);
      if (index_config.build_value_indices && index_config.nbins > 0) {
        const double safe_hi = hi > lo ? hi : lo + 1.0;
        const BitmapIndex index = BitmapIndex::build(
            *column_data[v], make_uniform_bins(lo, safe_hi, index_config.nbins));
        std::ofstream out(step_dir / (variables[v] + ".bmi"), std::ios::binary);
        index.save(out);
      }
      if (index_config.build_pyramids && index_config.nbins > 0) {
        // Same lo/safe_hi convention as the .bmi above, so pyramid leaves
        // and index bins describe the same domain; the leaf count rounds up
        // to the power of two the level tree needs.
        const double safe_hi = hi > lo ? hi : lo + 1.0;
        const std::size_t leaf = std::bit_ceil(index_config.nbins);
        agg::Pyramid::build1d(*column_data[v],
                              make_uniform_bins(lo, safe_hi, leaf))
            .save(step_dir / agg::pyramid_filename(variables[v]));
      }
    }
    if (index_config.build_pyramids && index_config.pyramid_pair_bins > 0) {
      const std::size_t leaf = std::bit_ceil(index_config.pyramid_pair_bins);
      for (const auto& [a, b] : index_config.pyramid_pairs) {
        const auto find = [&](const std::string& name)
            -> const std::vector<double>* {
          for (std::size_t v = 0; v < variables.size(); ++v)
            if (variables[v] == name) return column_data[v];
          return nullptr;
        };
        const std::vector<double>* da = find(a);
        const std::vector<double>* db = find(b);
        if (da == nullptr || db == nullptr) continue;
        const auto edges = [&](const std::vector<double>& col) {
          const auto [lo, hi] = minmax_of(col);
          return make_uniform_bins(lo, hi > lo ? hi : lo + 1.0, leaf);
        };
        agg::Pyramid::build2d(*da, *db, edges(*da), edges(*db))
            .save(step_dir / agg::pyramid_filename(a, b));
      }
    }
    write_binary(step_dir / "id.u64", c.id);
    if (index_config.build_id_index) {
      const IdIndex index = IdIndex::build(c.id);
      std::ofstream out(step_dir / "id.idi", std::ios::binary);
      index.save(out);
    }
  }
  std::ofstream manifest(dir / io::kManifestName);
  manifest << "qdv_dataset 1\n";
  manifest << "timesteps " << config.num_timesteps << "\n";
  manifest << "variables";
  for (const std::string& v : variables) manifest << ' ' << v;
  manifest << "\n";
  manifest.precision(17);
  for (std::size_t v = 0; v < variables.size(); ++v)
    manifest << "domain " << variables[v] << ' ' << global[v].first << ' '
             << global[v].second << "\n";
  manifest.close();
  io::write_dataset_checksums(dir);
  std::uint64_t bytes = 0;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(dir))
    if (entry.is_regular_file()) bytes += entry.file_size();
  return bytes;
}

}  // namespace qdv::sim
