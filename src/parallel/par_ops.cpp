#include "parallel/par_ops.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "core/custom_scan.hpp"
#include "parallel/prefetch.hpp"
#include "parallel/thread_pool.hpp"

namespace qdv::par {

double ClusterRun::makespan(std::size_t nodes) const {
  if (nodes == 0) throw std::invalid_argument("makespan: zero nodes");
  std::vector<double> node_time(std::min(nodes, task_seconds.size() + 1), 0.0);
  for (std::size_t t = 0; t < task_seconds.size(); ++t)
    node_time[t % nodes % node_time.size()] += task_seconds[t];
  double worst = 0.0;
  for (const double s : node_time) worst = std::max(worst, s);
  return worst;
}

double ClusterRun::speedup(std::size_t nodes) const {
  const double base = makespan(1);
  const double now = makespan(nodes);
  return now > 0.0 ? base / now : 0.0;
}

VirtualCluster::VirtualCluster(std::size_t host_threads)
    : host_threads_(std::max<std::size_t>(1, host_threads)) {}

ClusterRun VirtualCluster::run(std::size_t ntasks,
                               const std::function<void(std::size_t)>& task) const {
  using clock = std::chrono::steady_clock;
  ClusterRun result;
  result.task_seconds.assign(ntasks, 0.0);
  const auto batch_start = clock::now();
  // Every task runs inside a SerialSection: its measured time feeds the
  // makespan model, so intra-task kernels must not fan out underneath it.
  if (host_threads_ == 1) {
    for (std::size_t t = 0; t < ntasks; ++t) {
      const SerialSection serial;
      const auto start = clock::now();
      task(t);
      result.task_seconds[t] =
          std::chrono::duration<double>(clock::now() - start).count();
    }
  } else {
    // Persistent pool instead of a thread spawn/join per batch: the calling
    // thread participates and host_threads_ caps the concurrency. Exceptions
    // are recorded per task (so its time is still measured) and the first
    // one is rethrown after the batch drains, as before.
    std::exception_ptr error;
    std::mutex error_mutex;
    ThreadPool::global().parallel_for(ntasks, host_threads_, [&](std::size_t t) {
      const SerialSection serial;
      const auto start = clock::now();
      try {
        task(t);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      result.task_seconds[t] =
          std::chrono::duration<double>(clock::now() - start).count();
    });
    if (error) std::rethrow_exception(error);
  }
  result.wall_seconds =
      std::chrono::duration<double>(clock::now() - batch_start).count();
  return result;
}

HistogramBatch parallel_histograms(const io::Dataset& dataset,
                                   const HistogramWorkload& workload,
                                   VirtualCluster& cluster) {
  HistogramBatch batch;
  std::atomic<std::uint64_t> total{0};
  batch.run = cluster.run(dataset.num_timesteps(), [&](std::size_t t) {
    // A fresh table per task: each virtual node owns its timestep file and
    // pays its own column reads, as in the paper's setup.
    const auto table = dataset.open_table(t);
    const HistogramEngine engine = table->engine(workload.mode);
    std::uint64_t local = 0;
    for (const auto& [x, y] : workload.pairs) {
      const Histogram2D h = engine.histogram2d(
          x, y, workload.nbins, workload.nbins,
          workload.condition ? workload.condition.get() : nullptr,
          workload.binning);
      local += h.total();
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  batch.total_records = total.load();
  return batch;
}

HistogramBatch parallel_histograms(const core::Engine& engine,
                                   const HistogramWorkload& workload,
                                   VirtualCluster& cluster) {
  HistogramBatch batch;
  std::atomic<std::uint64_t> total{0};
  // One Selection shared by every worker: each timestep's condition
  // bitvector is evaluated once (whichever thread gets there first) and
  // every histogram of that timestep reads it from the cache.
  const core::Selection selection = workload.condition
                                        ? engine.select(workload.condition)
                                        : engine.all();
  // Read-ahead for sequential traversals: while timestep t computes, the
  // prefetcher loads the columns and index directories timestep t+1 will
  // touch (plan leaves + histogram axes). With several host threads the
  // workers overlap their own I/O (t+1 is already claimed by a peer), so
  // the prefetcher would only duplicate work — skip it.
  // Plan variables get their index directories too; axis-only variables
  // are read as raw columns by the histogram path, so their (pinned)
  // directories are not opened.
  const std::vector<std::string> plan_vars = selection.plan().variables();
  std::vector<std::string> axis_vars;
  for (const auto& [x, y] : workload.pairs) {
    for (const std::string& v : {x, y})
      if (std::find(plan_vars.begin(), plan_vars.end(), v) == plan_vars.end() &&
          std::find(axis_vars.begin(), axis_vars.end(), v) == axis_vars.end())
        axis_vars.push_back(v);
  }
  std::optional<Prefetcher> prefetch;
  if (cluster.host_threads() == 1) prefetch.emplace(engine.dataset());
  batch.run = cluster.run(engine.num_timesteps(), [&](std::size_t t) {
    if (prefetch) {
      if (!plan_vars.empty()) prefetch->request(t + 1, plan_vars);
      if (!axis_vars.empty())
        prefetch->request(t + 1, axis_vars, /*value_indices=*/false);
    }
    std::uint64_t local = 0;
    for (const auto& [x, y] : workload.pairs) {
      const Histogram2D h = selection.histogram2d(t, x, y, workload.nbins,
                                                  workload.nbins, workload.binning);
      local += h.total();
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  batch.total_records = total.load();
  return batch;
}

TrackBatch parallel_track(const io::Dataset& dataset,
                          const std::vector<std::uint64_t>& ids, EvalMode mode,
                          VirtualCluster& cluster) {
  TrackBatch batch;
  std::atomic<std::uint64_t> hits{0};
  const QueryPtr query = Query::id_in("id", ids);
  batch.run = cluster.run(dataset.num_timesteps(), [&](std::size_t t) {
    const auto table = dataset.open_table(t);
    hits.fetch_add(table->query(*query, mode).count(), std::memory_order_relaxed);
  });
  batch.total_hits = hits.load();
  return batch;
}

TrackBatch parallel_track(const core::Engine& engine,
                          const std::vector<std::uint64_t>& ids,
                          VirtualCluster& cluster) {
  TrackBatch batch;
  std::atomic<std::uint64_t> hits{0};
  const core::Selection selection = engine.select(Query::id_in("id", ids));
  std::optional<Prefetcher> prefetch;
  if (cluster.host_threads() == 1) prefetch.emplace(engine.dataset());
  batch.run = cluster.run(engine.num_timesteps(), [&](std::size_t t) {
    if (prefetch) prefetch->request(t + 1, {"id"});
    hits.fetch_add(selection.count(t), std::memory_order_relaxed);
  });
  batch.total_hits = hits.load();
  return batch;
}

}  // namespace qdv::par
