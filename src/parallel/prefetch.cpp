#include "parallel/prefetch.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "parallel/thread_pool.hpp"

namespace qdv::par {

struct Prefetcher::State {
  State(io::Dataset d, std::size_t q)
      : dataset(std::move(d)), max_queue(std::max<std::size_t>(1, q)) {}

  io::Dataset dataset;
  std::size_t max_queue;
  mutable std::mutex mutex;
  std::condition_variable idle_cv;
  std::size_t inflight = 0;
  std::uint64_t completed = 0;
  bool stop = false;
};

Prefetcher::Prefetcher(io::Dataset dataset, std::size_t max_queue)
    : state_(std::make_shared<State>(std::move(dataset), max_queue)) {}

Prefetcher::~Prefetcher() {
  // In-flight tasks co-own the state; queued-but-unstarted ones see stop and
  // skip their I/O. Nothing to join.
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->stop = true;
}

bool Prefetcher::request(std::size_t t, std::vector<std::string> variables,
                         bool value_indices) {
  std::shared_ptr<State> state = state_;
  if (t >= state->dataset.num_timesteps()) return false;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->stop || state->inflight >= state->max_queue) return false;
    ++state->inflight;
  }
  ThreadPool::global().submit(
      [state, t, variables = std::move(variables), value_indices] {
        bool stopped;
        {
          std::lock_guard<std::mutex> lock(state->mutex);
          stopped = state->stop;
        }
        if (!stopped) {
          try {
            const io::TimestepTable& table = state->dataset.table(t);
            for (const std::string& var : variables) {
              if (var == "id") {
                table.prefetch_id_column("id");  // map + kernel read-ahead
                (void)table.id_index("id");
              } else {
                table.prefetch_column(var);
                if (value_indices)
                  (void)table.value_index(var);  // segment directory only
              }
            }
          } catch (...) {
            // Advisory: a failed prefetch means the traversal pays the load.
          }
        }
        {
          std::lock_guard<std::mutex> lock(state->mutex);
          --state->inflight;
          if (!stopped) ++state->completed;
        }
        state->idle_cv.notify_all();
      });
  return true;
}

void Prefetcher::wait_idle() {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->idle_cv.wait(lock, [this] { return state_->inflight == 0; });
}

std::uint64_t Prefetcher::completed() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->completed;
}

}  // namespace qdv::par
