#include "parallel/prefetch.hpp"

#include <algorithm>

namespace qdv::par {

Prefetcher::Prefetcher(io::Dataset dataset, std::size_t max_queue)
    : dataset_(std::move(dataset)),
      max_queue_(std::max<std::size_t>(1, max_queue)),
      worker_([this] { run(); }) {}

Prefetcher::~Prefetcher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    queue_.clear();  // abandon what has not started; finish the in-flight one
  }
  work_cv_.notify_all();
  worker_.join();
}

bool Prefetcher::request(std::size_t t, std::vector<std::string> variables,
                         bool value_indices) {
  if (t >= dataset_.num_timesteps()) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || queue_.size() >= max_queue_) return false;
    queue_.push_back(Job{t, std::move(variables), value_indices});
  }
  work_cv_.notify_one();
  return true;
}

void Prefetcher::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

std::uint64_t Prefetcher::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

void Prefetcher::run() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    try {
      const io::TimestepTable& table = dataset_.table(job.t);
      for (const std::string& var : job.variables) {
        if (var == "id") {
          table.prefetch_id_column("id");  // map + kernel read-ahead
          (void)table.id_index("id");
        } else {
          table.prefetch_column(var);
          if (job.value_indices)
            (void)table.value_index(var);  // opens the segment directory only
        }
      }
    } catch (...) {
      // Advisory: a failed prefetch just means the traversal pays the load.
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_ = false;
      ++completed_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace qdv::par
