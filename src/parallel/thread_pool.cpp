#include "parallel/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace qdv::par {

namespace {

struct Batch {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::mutex error_mutex;
  std::exception_ptr error;
  std::mutex done_mutex;
  std::condition_variable done_cv;  // signalled on the final done increment
};

/// Claim indices off the shared counter until the batch is exhausted.
/// Helpers arriving after exhaustion (body may already be dangling) return
/// without touching it.
void run_batch(Batch& batch) {
  for (;;) {
    const std::size_t t = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (t >= batch.n) return;
    try {
      (*batch.body)(t);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.error_mutex);
      if (!batch.error) batch.error = std::current_exception();
    }
    if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.n) {
      std::lock_guard<std::mutex> lock(batch.done_mutex);
      batch.done_cv.notify_all();
    }
  }
}

}  // namespace

struct ThreadPool::Impl {
  struct WorkDeque {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
    // High-priority lane: claimed FIFO by everyone before any normal task.
    std::deque<std::function<void()>> high;
  };

  /// Worker identity of the current thread: the pool it belongs to and its
  /// 1-based slot there. Both must be consulted together — a worker of one
  /// pool is an external thread to every other pool (indexing another
  /// pool's deques by this slot would be out of bounds).
  static thread_local Impl* tls_pool;
  static thread_local std::size_t tls_worker_slot;

  std::vector<std::unique_ptr<WorkDeque>> deques;
  std::vector<std::thread> threads;
  std::mutex sleep_mutex;
  std::condition_variable wake_cv;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> pending{0};
  std::atomic<std::size_t> high_pending{0};
  std::atomic<std::size_t> round_robin{0};

  /// Claim the high-priority lanes first (FIFO across all deques), then pop
  /// from deque @p self's back (LIFO for locality), else steal from the
  /// front of a peer; run the task. False when every deque was empty.
  /// The high-lane scan is gated on an atomic count so pure parallel_for
  /// workloads never pay the extra per-claim deque locking.
  bool try_run_one(std::size_t self) {
    if (pending.load(std::memory_order_acquire) == 0) return false;
    std::function<void()> task;
    const std::size_t nd = deques.size();
    if (high_pending.load(std::memory_order_acquire) > 0) {
      for (std::size_t k = 0; k < nd && !task; ++k) {
        WorkDeque& d = *deques[(self + k) % nd];
        std::lock_guard<std::mutex> lock(d.mutex);
        if (d.high.empty()) continue;
        task = std::move(d.high.front());
        d.high.pop_front();
        high_pending.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
    for (std::size_t k = 0; k < nd && !task; ++k) {
      const std::size_t i = (self + k) % nd;
      WorkDeque& d = *deques[i];
      std::lock_guard<std::mutex> lock(d.mutex);
      if (d.tasks.empty()) continue;
      if (k == 0) {
        task = std::move(d.tasks.back());
        d.tasks.pop_back();
      } else {
        task = std::move(d.tasks.front());
        d.tasks.pop_front();
      }
    }
    if (!task) return false;
    pending.fetch_sub(1, std::memory_order_acq_rel);
    task();
    return true;
  }

  void push(std::function<void()> task, TaskPriority priority) {
    const std::size_t slot =
        tls_pool == this && tls_worker_slot > 0
            ? tls_worker_slot - 1
            : round_robin.fetch_add(1, std::memory_order_relaxed) % deques.size();
    // Count BEFORE enqueueing: a pop can only follow the enqueue, so its
    // decrement always sees this increment — enqueue-first would let two
    // pops race two half-finished pushes and wrap pending below zero.
    pending.fetch_add(1, std::memory_order_release);
    if (priority == TaskPriority::kHigh)
      high_pending.fetch_add(1, std::memory_order_release);
    {
      WorkDeque& d = *deques[slot];
      std::lock_guard<std::mutex> lock(d.mutex);
      if (priority == TaskPriority::kHigh)
        d.high.push_back(std::move(task));
      else
        d.tasks.push_back(std::move(task));
    }
    {
      // Empty critical section: a worker between its predicate check and
      // wait() either sees pending > 0 or gets this notification.
      std::lock_guard<std::mutex> lock(sleep_mutex);
    }
    wake_cv.notify_one();
  }

  void worker_loop(std::size_t id) {
    tls_pool = this;
    tls_worker_slot = id + 1;
    for (;;) {
      if (try_run_one(id)) continue;
      std::unique_lock<std::mutex> lock(sleep_mutex);
      wake_cv.wait(lock, [this] {
        return stop.load(std::memory_order_acquire) ||
               pending.load(std::memory_order_acquire) > 0;
      });
      if (stop.load(std::memory_order_acquire) &&
          pending.load(std::memory_order_acquire) == 0)
        return;
    }
  }
};

thread_local ThreadPool::Impl* ThreadPool::Impl::tls_pool = nullptr;
thread_local std::size_t ThreadPool::Impl::tls_worker_slot = 0;

int& SerialSection::depth() {
  static thread_local int depth = 0;
  return depth;
}

ThreadPool::ThreadPool(std::size_t nthreads) : impl_(std::make_unique<Impl>()) {
  const std::size_t n = nthreads > 0 ? nthreads : 1;
  impl_->deques.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    impl_->deques.push_back(std::make_unique<Impl::WorkDeque>());
  impl_->threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    impl_->threads.emplace_back([this, i] { impl_->worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  impl_->stop.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(impl_->sleep_mutex);
  }
  impl_->wake_cv.notify_all();
  for (std::thread& t : impl_->threads) t.join();
}

std::size_t ThreadPool::size() const { return impl_->threads.size(); }

void ThreadPool::submit(std::function<void()> task) {
  impl_->push(std::move(task), TaskPriority::kNormal);
}

void ThreadPool::submit(std::function<void()> task, TaskPriority priority) {
  impl_->push(std::move(task), priority);
}

void ThreadPool::parallel_for(std::size_t n, std::size_t max_workers,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (max_workers == 0) max_workers = 1;
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->body = &body;
  const std::size_t helpers =
      std::min({max_workers - 1, impl_->threads.size(), n - 1});
  for (std::size_t h = 0; h < helpers; ++h)
    impl_->push([batch] { run_batch(*batch); }, TaskPriority::kNormal);
  run_batch(*batch);
  // Only helpers mid-index remain: block on the batch's completion signal.
  // The caller must NOT steal other pool work here — batch progress never
  // depends on it (the caller exhausts the index counter itself; nested
  // regions complete through their own callers), and stealing could run an
  // unrelated long task (e.g. a prefetch I/O job) inline, adding its full
  // latency to this batch.
  {
    std::unique_lock<std::mutex> lock(batch->done_mutex);
    batch->done_cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) >= n;
    });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("QDV_THREADS")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hc > 0 ? hc : 1);
  }());
  return pool;
}

}  // namespace qdv::par
