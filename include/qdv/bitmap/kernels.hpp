// Block-oriented execution kernels over WAH bitvectors (DESIGN.md
// Section 10): the dense-block cursor that decodes compressed words into
// aligned 64-bit machine words (fills stay symbolic run descriptors), the
// k-way single-pass OR used by every multi-bin range probe, and the sharded
// tally driver for intra-timestep parallel histograms.
//
// Every kernel here has a scalar reference twin in qdv::kern::ref used by
// the differential tests (tests/test_kernels.cpp); the references are the
// original element-at-a-time implementations and must never be "optimized".
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "bitmap/bins.hpp"
#include "bitmap/bitvector.hpp"
#include "bitmap/simd.hpp"

namespace qdv::kern {

#if defined(__GNUC__) || defined(__clang__)
#define QDV_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define QDV_PREFETCH(addr) ((void)0)
#endif

/// Access shim for the kernel layer: BitVector grants friendship to this
/// struct alone, so every kernel reads the compressed words through one
/// audited surface instead of each being a friend.
struct BitVectorOps {
  static constexpr std::uint32_t kFillFlag = 0x80000000u;
  static constexpr std::uint32_t kFillValueBit = 0x40000000u;
  static constexpr std::uint32_t kCountMask = 0x3FFFFFFFu;
  static constexpr std::uint32_t kLiteralMask = 0x7FFFFFFFu;
  static constexpr std::uint32_t kGroupBits = BitVector::kGroupBits;

  static std::span<const std::uint32_t> words(const BitVector& v) {
    return v.words_;
  }
  static std::uint32_t active(const BitVector& v) { return v.active_; }
  static std::uint32_t active_bits(const BitVector& v) { return v.active_bits_; }
  static void append_fill(BitVector& v, bool value, std::uint64_t groups) {
    v.append_fill(value, groups);
  }
  static void append_group(BitVector& v, std::uint32_t literal) {
    v.append_group(literal);
  }
  static void set_tail(BitVector& v, std::uint32_t active,
                       std::uint32_t active_bits) {
    v.active_ = active;
    v.active_bits_ = active_bits;
  }
  static void set_nbits(BitVector& v, std::uint64_t nbits) { v.nbits_ = nbits; }
};

/// Streaming decoder of a WAH BitVector into dense blocks.
///
/// Each block is either a *run* — `nbits` identical bits starting at `base`,
/// never expanded — or a *dense span* of 64-bit words (LSB-first within each
/// word, word w covers rows [base + 64w, base + 64w + 63]). Short fills
/// (under kRunThresholdBits) are absorbed into the dense buffer so sparse
/// literal/fill interleavings don't fragment into tiny blocks; long fills
/// stay symbolic so an all-ones gigabit vector costs O(1) blocks.
///
/// An optional row window [begin, end) restricts decoding for sharded
/// consumers: set bits outside the window are masked off (dense spans may
/// still start/stop on 31-bit group boundaries that straddle the window, with
/// the out-of-window bits cleared), and run blocks are clipped exactly. A
/// windowed cursor skips words before `begin` with one cheap step each, so a
/// sharded gather pays O(shards * words) aggregate skip work — acceptable
/// because sharded_tally caps the shard count (pool size, scratch ceiling).
///
/// The dense words live in a buffer owned by the cursor and are only valid
/// until the next call to next().
class DenseBlockCursor {
 public:
  struct Block {
    std::uint64_t base = 0;   // row of bit 0 of the block
    std::uint64_t nbits = 0;  // rows covered
    bool is_run = false;      // true: nbits copies of `value`, words == nullptr
    bool value = false;
    const std::uint64_t* words = nullptr;  // ceil(nbits / 64) words when dense
  };

  /// Dense buffer capacity (bits per dense block before a flush).
  static constexpr std::size_t kBufWords = 256;
  /// One-fills at least this long stay symbolic run blocks; shorter ones
  /// are expanded into the dense buffer (33 groups = 1023 bits).
  static constexpr std::uint64_t kRunThresholdBits = 33 * BitVector::kGroupBits;
  /// Zero fills go symbolic much sooner: consumers skip zero runs for free,
  /// while expanding them costs buffer writes — on very sparse vectors
  /// (selectivity ~1e-3 and below) the gaps between set bits would
  /// otherwise dominate the decode.
  static constexpr std::uint64_t kZeroRunThresholdBits = 8 * BitVector::kGroupBits;

  explicit DenseBlockCursor(const BitVector& v)
      : DenseBlockCursor(v, 0, v.size()) {}

  /// Restrict decoding to rows [begin, end) — clamped to v.size().
  DenseBlockCursor(const BitVector& v, std::uint64_t begin, std::uint64_t end);

  /// Produce the next block; false once the (windowed) vector is exhausted.
  bool next(Block& out);

 private:
  void step();
  void handle_run(bool value, std::uint64_t run_bits);
  void handle_literal(std::uint32_t literal, std::uint32_t nbits);
  void emit_dense(Block& out);
  void push_bits(std::uint64_t bits, std::uint32_t n);
  void push_zeros(std::uint64_t n);
  void push_ones(std::uint64_t n);

  std::span<const std::uint32_t> words_;
  std::uint32_t active_ = 0;
  std::uint32_t active_bits_ = 0;
  std::uint64_t begin_ = 0;
  std::uint64_t end_ = 0;

  std::uint64_t pos_ = 0;  // logical bit position of the next undecoded group
  std::size_t idx_ = 0;    // next compressed word
  bool tail_done_ = false;
  bool done_ = false;

  // Dense accumulation state: buf_[0..nwords_) full words plus accbits_
  // pending bits in acc_, covering rows starting at dense_base_.
  std::uint64_t dense_base_ = 0;
  std::size_t nwords_ = 0;
  std::uint64_t acc_ = 0;
  std::uint32_t accbits_ = 0;
  // Headroom so one absorbed sub-threshold fill can never overflow.
  std::array<std::uint64_t, kBufWords + (kRunThresholdBits / 64) + 2> buf_;

  // A long fill waiting to be emitted once the dense buffer has flushed.
  bool have_pending_run_ = false;
  bool pending_value_ = false;
  std::uint64_t pending_base_ = 0;
  std::uint64_t pending_bits_ = 0;
};

/// Invoke fn(row) for every set bit of @p v inside [begin, end), ascending,
/// via dense blocks: one-runs become straight row loops (no per-bit decode)
/// and dense words are walked with countr_zero. The scalar twin is
/// BitVector::for_each_set.
template <typename Fn>
inline void for_each_set_blocked(const BitVector& v, std::uint64_t begin,
                                 std::uint64_t end, Fn&& fn) {
  DenseBlockCursor cursor(v, begin, end);
  DenseBlockCursor::Block b;
  while (cursor.next(b)) {
    if (b.is_run) {
      if (b.value)
        for (std::uint64_t i = 0; i < b.nbits; ++i) fn(b.base + i);
      continue;
    }
    const std::size_t nw = (b.nbits + 63) / 64;
    for (std::size_t w = 0; w < nw; ++w) {
      std::uint64_t bits = b.words[w];
      const std::uint64_t base = b.base + static_cast<std::uint64_t>(w) * 64;
      while (bits) {
        fn(base + static_cast<std::uint64_t>(std::countr_zero(bits)));
        bits &= bits - 1;
      }
    }
  }
}

/// Whole-vector variant of the windowed overload above.
template <typename Fn>
inline void for_each_set_blocked(const BitVector& v, Fn&& fn) {
  for_each_set_blocked(v, 0, v.size(), std::forward<Fn>(fn));
}

/// Invoke fn(std::span<const std::uint32_t>) over batches (<= 1024 rows) of
/// the set rows of @p v inside [begin, end), ascending. Materializing rows
/// in batches lets gather loops issue software prefetches a fixed distance
/// ahead — the conditional-histogram gather is DRAM-latency-bound at
/// moderate selectivity, where consecutive set rows land on different cache
/// lines of the value columns.
template <typename Fn>
inline void for_each_set_batched(const BitVector& v, std::uint64_t begin,
                                 std::uint64_t end, Fn&& fn) {
  const simd::Ops& ops = simd::ops();
  DenseBlockCursor cursor(v, begin, end);
  DenseBlockCursor::Block b;
  constexpr std::size_t kBatch = 1024;
  std::array<std::uint32_t, kBatch + simd::kPositionSlack> rows;
  while (cursor.next(b)) {
    if (b.is_run) {
      if (!b.value) continue;
      std::uint64_t base = b.base;
      std::uint64_t left = b.nbits;
      while (left > 0) {
        const auto n =
            static_cast<std::size_t>(std::min<std::uint64_t>(left, kBatch));
        for (std::size_t i = 0; i < n; ++i)
          rows[i] = static_cast<std::uint32_t>(base + i);
        fn(std::span<const std::uint32_t>(rows.data(), n));
        base += n;
        left -= n;
      }
      continue;
    }
    // Dense words go through the dispatched position-extraction kernel in
    // spans sized so each span's worst case (all bits set) fits the batch.
    const std::size_t nw = (static_cast<std::size_t>(b.nbits) + 63) / 64;
    std::size_t n = 0;
    std::size_t w = 0;
    while (w < nw) {
      const std::size_t take = std::min(nw - w, (kBatch - n) / 64);
      if (take == 0) {
        fn(std::span<const std::uint32_t>(rows.data(), n));
        n = 0;
        continue;
      }
      n += ops.positions_from_words(
          b.words + w, take, b.base + static_cast<std::uint64_t>(w) * 64,
          rows.data() + n);
      w += take;
    }
    if (n > 0) fn(std::span<const std::uint32_t>(rows.data(), n));
  }
}

/// Prefetch distance (rows) for the gather kernels below: far enough to
/// cover DRAM latency, near enough to stay inside one batch.
inline constexpr std::size_t kGatherPrefetch = 16;

/// True when @p v is so sparse (under ~1 set bit per 64) that the scalar
/// WAH decode — which skips zero fills arithmetically and never
/// materializes words — beats the dense-block cursor. Dense and run-heavy
/// vectors take the block path. The scan bails out the moment the density
/// threshold is crossed, so on dense vectors it touches only a prefix of
/// the words (a one-fill exits immediately); on sparse vectors a bounded
/// prefix decides from its own density — the old full scan cost as much as
/// the decode it was trying to avoid (the to_positions 0.48x regression at
/// sel=1e-3).
inline bool prefer_scalar_decode(const BitVector& v) {
  constexpr std::size_t kMaxScanWords = 1024;
  const std::uint64_t threshold = v.size() / 64;
  std::uint64_t count = 0;
  std::uint64_t groups = 0;
  std::size_t scanned = 0;
  for (const std::uint32_t w : BitVectorOps::words(v)) {
    if (w & BitVectorOps::kFillFlag) {
      const std::uint64_t g = w & BitVectorOps::kCountMask;
      groups += g;
      if (w & BitVectorOps::kFillValueBit)
        count += g * BitVectorOps::kGroupBits;
    } else {
      groups += 1;
      count += static_cast<std::uint32_t>(std::popcount(w));
    }
    if (count >= threshold) return false;
    if (++scanned >= kMaxScanWords)
      return count * 64 < groups * BitVectorOps::kGroupBits;
  }
  count += static_cast<std::uint32_t>(std::popcount(BitVectorOps::active(v)));
  return count < threshold;
}

/// Conditional 1D histogram gather over the set rows of @p v in
/// [begin, end): counts[loc(values[row])]++. Walks the compressed words in
/// a single pass (zero fills skipped arithmetically, one-fills handed to
/// the dense accumulate kernel, literal runs position-extracted in
/// batches) and routes every inner loop through the SIMD dispatch table.
void gather_hist1d(const BitVector& v, std::uint64_t begin, std::uint64_t end,
                   const double* values, const Bins::Locator& loc,
                   std::uint64_t* counts);

/// Conditional 2D histogram gather (row-major counts[bx * ny + by]); same
/// single-pass structure as gather_hist1d.
void gather_hist2d(const BitVector& v, std::uint64_t begin, std::uint64_t end,
                   const double* xs, const double* ys,
                   const Bins::Locator& xloc, const Bins::Locator& yloc,
                   std::size_t ny, std::uint64_t* counts);

/// Set-bit positions of @p v via the dense-block cursor (one-runs are bulk
/// appended). Backs BitVector::to_positions.
void to_positions_blocked(const BitVector& v, std::vector<std::uint32_t>& out);

/// Set-bit count via a single pass over the compressed words (fills are
/// arithmetic, literals popcount). Backs BitVector::count.
std::uint64_t count_words(const BitVector& v);

/// K-way OR: merges all operands' run decoders in one pass, appending fills
/// and literal groups directly to the output — no pairwise intermediate
/// BitVectors. Inputs shorter than @p nbits are zero-extended; the result is
/// as long as the longest of {nbits, operands}. Backs qdv::or_many.
BitVector or_many_kway(std::span<const BitVector* const> operands,
                       std::uint64_t nbits);

/// Shard [0, nrows) across the global thread pool, give each shard a private
/// zeroed count array of @p ncounts cells, and sum the partials into
/// @p counts at the end. fill(shard_begin, shard_end, partial) must only
/// write its partial array. Falls back to a single direct fill(0, nrows,
/// counts) when the work or the pool is too small to shard.
void sharded_tally(std::uint64_t nrows, std::size_t ncounts,
                   std::uint64_t* counts,
                   const std::function<void(std::uint64_t, std::uint64_t,
                                            std::uint64_t*)>& fill);

/// Test seam: explicit shard-count control (nshards <= 1 runs the direct
/// path).
void sharded_tally(std::uint64_t nrows, std::size_t ncounts,
                   std::uint64_t* counts,
                   const std::function<void(std::uint64_t, std::uint64_t,
                                            std::uint64_t*)>& fill,
                   std::size_t nshards);

namespace ref {

/// Scalar reference twin of or_many_kway: the original pairwise tree
/// reduction over operator|.
BitVector or_many_pairwise(std::span<const BitVector* const> operands,
                           std::uint64_t nbits);

}  // namespace ref

}  // namespace qdv::kern
