// WAH-compressed bitvector: the core data structure of the query engine.
//
// Bits are grouped into 31-bit groups packed into 32-bit words (see
// DESIGN.md Section 1 for the word layout). Logical operations cost
// O(compressed words), not O(bits), which is what makes bitmap indices
// viable for the paper's query-driven workloads.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <vector>

namespace qdv {

namespace kern {
struct BitVectorOps;
}  // namespace kern

namespace detail {
/// memcpy-based unaligned read from a serialized byte image (mapped files
/// give no alignment guarantees past the page start). Throws on overrun.
template <typename T>
T read_unaligned(std::span<const std::byte> image, std::size_t offset) {
  if (offset + sizeof(T) > image.size())
    throw std::runtime_error("truncated serialized image");
  T value;
  std::memcpy(&value, image.data() + offset, sizeof(T));
  return value;
}
}  // namespace detail

class BitVector {
 public:
  /// Number of payload bits per compressed word.
  static constexpr std::uint32_t kGroupBits = 31;

  BitVector() = default;

  /// Append @p count copies of @p value at the end of the vector.
  void append_run(bool value, std::uint64_t count);

  /// Append a single bit.
  void append_bit(bool value) { append_run(value, 1); }

  /// A vector of @p nbits zeros / ones.
  static BitVector zeros(std::uint64_t nbits);
  static BitVector ones(std::uint64_t nbits);

  /// Build from a sorted list of set-bit positions, padded to @p nbits.
  static BitVector from_positions(std::span<const std::uint32_t> positions,
                                  std::uint64_t nbits);

  /// Logical operations; operands of different lengths are zero-extended.
  friend BitVector operator&(const BitVector& a, const BitVector& b);
  friend BitVector operator|(const BitVector& a, const BitVector& b);
  friend BitVector operator^(const BitVector& a, const BitVector& b);
  BitVector operator~() const;

  bool operator==(const BitVector& other) const = default;

  /// Number of set bits.
  std::uint64_t count() const;

  /// Total number of bits appended so far.
  std::uint64_t size() const { return nbits_; }

  /// Number of compressed words (excluding the partial tail group).
  std::size_t word_count() const { return words_.size(); }

  /// Heap bytes used by the compressed representation.
  std::size_t memory_bytes() const { return words_.capacity() * sizeof(std::uint32_t); }

  /// Positions of all set bits, ascending.
  std::vector<std::uint32_t> to_positions() const;

  /// Value of bit @p pos (linear in compressed words; intended for tests).
  bool test(std::uint64_t pos) const;

  /// Invoke @p fn(position) for every set bit, ascending.
  ///
  /// Scalar reference implementation: one callback per set bit, fills
  /// expanded bit by bit. Hot paths use qdv::kern::for_each_set_blocked
  /// (bitmap/kernels.hpp) instead; this stays element-at-a-time on purpose —
  /// it is the differential-test baseline for the dense-block kernels.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    std::uint64_t pos = 0;
    for (const std::uint32_t w : words_) {
      if (w & kFillFlag) {
        const std::uint64_t run_bits = static_cast<std::uint64_t>(w & kCountMask) * kGroupBits;
        if (w & kFillValueBit)
          for (std::uint64_t i = 0; i < run_bits; ++i) fn(pos + i);
        pos += run_bits;
      } else {
        std::uint32_t bits = w;
        while (bits) {
          fn(pos + static_cast<std::uint32_t>(std::countr_zero(bits)));
          bits &= bits - 1;
        }
        pos += kGroupBits;
      }
    }
    std::uint32_t bits = active_;
    while (bits) {
      fn(pos + static_cast<std::uint32_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }

  /// Binary serialization (used by the on-disk index format). load()
  /// validates the header (word count consistent with the bit count, tail
  /// width below a group) before allocating, so a corrupt or truncated
  /// stream throws instead of attempting a huge resize.
  void save(std::ostream& out) const;
  static BitVector load(std::istream& in);

  /// Deserialize one record from a serialized image (e.g. a memory-mapped
  /// index file), starting at @p offset and advancing it past the record.
  static BitVector load(std::span<const std::byte> image, std::size_t& offset);

  /// Byte length of the serialized record at @p offset, computed from its
  /// header alone — used to skip records without decoding them.
  static std::size_t serialized_size(std::span<const std::byte> image,
                                     std::size_t offset);

 private:
  static constexpr std::uint32_t kFillFlag = 0x80000000u;
  static constexpr std::uint32_t kFillValueBit = 0x40000000u;
  static constexpr std::uint32_t kCountMask = 0x3FFFFFFFu;
  static constexpr std::uint32_t kLiteralMask = 0x7FFFFFFFu;

  void append_fill(bool value, std::uint64_t groups);
  void append_group(std::uint32_t literal);
  void flush_active();

  friend class BitRunDecoder;
  friend struct kern::BitVectorOps;
  template <typename Op>
  friend BitVector combine(const BitVector& a, const BitVector& b, Op op);

  std::vector<std::uint32_t> words_;
  std::uint32_t active_ = 0;  // partial tail group, LSB-first
  std::uint32_t active_bits_ = 0;
  std::uint64_t nbits_ = 0;
};

/// K-way OR: used to assemble range queries from many per-bin bitmaps.
/// Merges every operand's run decoder in a single pass (kern::or_many_kway);
/// inputs shorter than @p nbits are zero-extended.
BitVector or_many(std::vector<const BitVector*> operands, std::uint64_t nbits);

}  // namespace qdv
